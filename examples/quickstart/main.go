// Quickstart: generate a labelled workload, run the standard tool suite,
// and print the classic benchmark table — each tool's confusion matrix and
// headline metrics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/dsn2015/vdbench"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A labelled benchmark corpus: 120 synthetic web services with
	//    seeded injection vulnerabilities. Ground truth is computed by an
	//    exhaustive oracle during generation, so labels are never wrong.
	corpus, err := vdbench.GenerateWorkload(vdbench.WorkloadConfig{
		Services:         120,
		TargetPrevalence: 0.35,
		Seed:             1,
	})
	if err != nil {
		return fmt.Errorf("generate workload: %w", err)
	}
	fmt.Printf("corpus: %d services, %d sinks, %d vulnerable (prevalence %.2f)\n\n",
		len(corpus.Cases), corpus.TotalSinks(), corpus.VulnerableSinks(), corpus.Prevalence())

	// 2. The standard tool suite: real miniature static analysers and
	//    penetration testers, plus one simulated heuristic tool.
	tools, err := vdbench.StandardTools()
	if err != nil {
		return fmt.Errorf("tool suite: %w", err)
	}

	// 3. Run the campaign and score every tool at sink granularity. The
	//    context-first entry point adds fault tolerance: with this
	//    well-behaved suite every guard is a no-op and the output is
	//    byte-identical to the zero-value options, but a tool that
	//    panicked or hung would cost only its own cells (recorded in
	//    res.Exec) instead of the whole campaign.
	campaign, err := vdbench.RunCampaignCtx(context.Background(), corpus, tools,
		vdbench.CampaignOptions{
			Seed:           1,
			PerToolTimeout: 30 * time.Second,
			Degraded:       vdbench.DegradedSkip,
		})
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}

	// 4. The benchmark table.
	recall := vdbench.MustMetric("recall")
	precision := vdbench.MustMetric("precision")
	f1 := vdbench.MustMetric("f1")
	mcc := vdbench.MustMetric("mcc")
	fmt.Printf("%-14s %-10s %5s %5s %5s %5s  %7s %9s %7s %7s\n",
		"tool", "class", "TP", "FP", "FN", "TN", "recall", "precision", "F1", "MCC")
	for _, res := range campaign.Results {
		r, err := res.MetricValue(recall)
		if err != nil {
			return err
		}
		p, err := res.MetricValue(precision)
		if err != nil {
			return err
		}
		f, err := res.MetricValue(f1)
		if err != nil {
			return err
		}
		m, err := res.MetricValue(mcc)
		if err != nil {
			return err
		}
		c := res.Overall
		fmt.Printf("%-14s %-10s %5d %5d %5d %5d  %7.3f %9.3f %7.3f %7.3f\n",
			res.Tool, res.Class, c.TP, c.FP, c.FN, c.TN, r, p, f, m)
	}
	fmt.Println("\nNote the shape: penetration testers trade recall for near-perfect")
	fmt.Println("precision; aggressive static analysis does the reverse. Which tool")
	fmt.Println("is \"best\" depends on the metric — that is the paper's point.")
	return nil
}
