// Tool selection: end-to-end use of the paper's methodology. Given a
// usage scenario, first select the right *metric* for that scenario (the
// paper's contribution), then rank the candidate tools under the selected
// metric.
//
// Run with:
//
//	go run ./examples/toolselection [scenario-id]
//
// Scenario IDs: dev-triage, security-audit, auto-gating, procurement.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/dsn2015/vdbench"
)

func main() {
	scenarioID := "security-audit"
	if len(os.Args) > 1 {
		scenarioID = os.Args[1]
	}
	if err := run(scenarioID); err != nil {
		log.Fatal(err)
	}
}

func run(scenarioID string) error {
	s, ok := vdbench.ScenarioByID(scenarioID)
	if !ok {
		return fmt.Errorf("unknown scenario %q", scenarioID)
	}
	fmt.Printf("scenario: %s — %s\n%s\n\n", s.ID, s.Name, s.Description)

	// Step 1: profile every candidate metric (computed properties:
	// prevalence robustness, chance correction, stability, ...).
	fmt.Println("profiling the metric catalogue...")
	profiles, err := vdbench.AnalyzeMetrics(vdbench.DefaultPropConfig(), 2015)
	if err != nil {
		return fmt.Errorf("profile metrics: %w", err)
	}

	// Step 2: select the metric this scenario should use, and validate
	// the choice with AHP over an encoded expert panel.
	selection, err := vdbench.SelectMetric(s, profiles)
	if err != nil {
		return fmt.Errorf("select metric: %w", err)
	}
	validation, err := vdbench.ValidateSelection(s, profiles, 5, 0.1, 2015)
	if err != nil {
		return fmt.Errorf("validate selection: %w", err)
	}
	fmt.Printf("selected metric: %s (top 3: %v)\n", selection.Best(), selection.Top(3))
	fmt.Printf("AHP validation: winner %s, CR=%.3f, tau vs analytical=%.2f\n\n",
		validation.Selection.Best(), validation.AHP.Consistency.CR, validation.AgreementTau)

	// Step 3: benchmark the tools and rank them under the selected metric.
	corpus, err := vdbench.GenerateWorkload(vdbench.WorkloadConfig{
		Services:         200,
		TargetPrevalence: 0.35,
		Seed:             7,
	})
	if err != nil {
		return fmt.Errorf("generate workload: %w", err)
	}
	tools, err := vdbench.StandardTools()
	if err != nil {
		return err
	}
	campaign, err := vdbench.RunCampaign(corpus, tools, 7)
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	metric := vdbench.MustMetric(selection.Best())
	fmt.Printf("tool ranking under %s:\n", metric.ID)
	type entry struct {
		tool  string
		value float64
	}
	var entries []entry
	for _, res := range campaign.Results {
		v, err := metric.ValueOr(res.Overall, 0)
		if err != nil {
			return err
		}
		entries = append(entries, entry{res.Tool, v})
	}
	// Sort by goodness (handles lower-is-better metrics).
	for i := range entries {
		for j := i + 1; j < len(entries); j++ {
			if metric.Better(entries[j].value, entries[i].value) {
				entries[i], entries[j] = entries[j], entries[i]
			}
		}
	}
	for i, e := range entries {
		fmt.Printf("  %d. %-14s %s=%.3f\n", i+1, e.tool, metric.ID, e.value)
	}
	return nil
}
