// Custom tool: how a downstream user plugs their own detector into the
// benchmark. This example implements a naive "sink spotter" (reports every
// sink whose expression is not a plain literal), benchmarks it against the
// standard suite, combines it with a pentester, and loads a hand-written
// external corpus alongside the generated one.
//
// Run with:
//
//	go run ./examples/customtool
package main

import (
	"fmt"
	"log"

	"github.com/dsn2015/vdbench"
	"github.com/dsn2015/vdbench/internal/detectors"
	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/workload"
)

// sinkSpotter is the user-defined tool: it flags every sink whose value
// expression is anything but a constant. Maximum recall, terrible
// precision — a useful lower bound.
type sinkSpotter struct{}

var _ detectors.Tool = sinkSpotter{}

func (sinkSpotter) Name() string           { return "sink-spotter" }
func (sinkSpotter) Class() detectors.Class { return detectors.ClassSAST }

// Analyze implements detectors.Tool.
func (sinkSpotter) Analyze(cs workload.Case, _ *stats.RNG) ([]detectors.Report, error) {
	if cs.Service == nil {
		return nil, fmt.Errorf("sink-spotter: nil service")
	}
	var out []detectors.Report
	for _, sk := range cs.Service.Sinks() {
		if _, isLit := sk.Expr.(svclang.Lit); isLit {
			continue
		}
		out = append(out, detectors.Report{
			Service:    cs.Service.Name,
			SinkID:     sk.ID,
			Kind:       sk.Kind,
			Confidence: 0.2,
		})
	}
	return out, nil
}

// externalCorpus is a hand-written workload in the textual format,
// demonstrating bring-your-own-benchmark.
const externalCorpus = `
# Two hand-written services: one vulnerable, one fixed.
service LookupRaw
  param user
  sink sql concat("SELECT id FROM accounts WHERE name='", user, "'")
end

service LookupFixed
  param user
  sink sql concat("SELECT id FROM accounts WHERE name='", escape_sql(user), "'")
end
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Generated corpus plus the hand-written external one.
	generated, err := vdbench.GenerateWorkload(vdbench.WorkloadConfig{
		Services:         150,
		TargetPrevalence: 0.35,
		Seed:             5,
	})
	if err != nil {
		return err
	}
	external, err := vdbench.LoadWorkload(externalCorpus)
	if err != nil {
		return err
	}
	fmt.Printf("external corpus labelled by the oracle: %d sinks, %d vulnerable\n\n",
		external.TotalSinks(), external.VulnerableSinks())

	// Standard suite + the custom tool + a combination with a pentester.
	tools, err := vdbench.StandardTools()
	if err != nil {
		return err
	}
	custom := sinkSpotter{}
	pt := detectors.NewPentester(detectors.PentesterConfig{Name: "pt", ExploreInputs: true})
	combo, err := vdbench.CombineTools("spotter∩pt", vdbench.Intersection,
		[]vdbench.Tool{custom, pt})
	if err != nil {
		return err
	}
	tools = append(tools, custom, combo)

	campaign, err := vdbench.RunCampaign(generated, tools, 5)
	if err != nil {
		return err
	}
	recall := vdbench.MustMetric("recall")
	precision := vdbench.MustMetric("precision")
	fmt.Printf("%-14s %8s %10s\n", "tool", "recall", "precision")
	for _, res := range campaign.Results {
		r, err := recall.ValueOr(res.Overall, 0)
		if err != nil {
			return err
		}
		p, err := precision.ValueOr(res.Overall, 0)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %8.3f %10.3f\n", res.Tool, r, p)
	}
	fmt.Println("\nThe naive spotter catches everything and drowns the user in noise;")
	fmt.Println("intersecting it with a pentester restores precision at the cost of")
	fmt.Println("the pentester's blind spots.")
	return nil
}
