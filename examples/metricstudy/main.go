// Metric study: the paper's cautionary tales, live. Shows (1) how
// accuracy and precision drift with workload prevalence while
// chance-corrected metrics stay put, and (2) a concrete ranking flip —
// the same two tools, the same behaviour, opposite benchmark verdicts at
// different prevalence.
//
// Run with:
//
//	go run ./examples/metricstudy
package main

import (
	"fmt"
	"log"

	"github.com/dsn2015/vdbench"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// expected builds the exact-expectation confusion matrix of a tool with
// the given true/false positive rates on a workload of the given size and
// prevalence.
func expected(tpr, fpr float64, size int, prevalence float64) vdbench.Confusion {
	pos := int(float64(size)*prevalence + 0.5)
	neg := size - pos
	tp := int(float64(pos)*tpr + 0.5)
	fp := int(float64(neg)*fpr + 0.5)
	return vdbench.Confusion{TP: tp, FN: pos - tp, FP: fp, TN: neg - fp}
}

func run() error {
	const size = 100000
	sweep := []float64{0.01, 0.05, 0.1, 0.2, 0.35, 0.5, 0.7, 0.9}

	// Part 1: one tool, fixed intrinsic quality, varying prevalence.
	fmt.Println("Part 1 — fixed tool (TPR=0.70, FPR=0.10), varying prevalence")
	ids := []string{"accuracy", "precision", "recall", "f1", "mcc", "informedness"}
	fmt.Printf("%-11s", "prevalence")
	for _, id := range ids {
		fmt.Printf(" %12s", id)
	}
	fmt.Println()
	for _, p := range sweep {
		c := expected(0.70, 0.10, size, p)
		fmt.Printf("%-11.2f", p)
		for _, id := range ids {
			m := vdbench.MustMetric(id)
			v, err := m.ValueOr(c, -1)
			if err != nil {
				return err
			}
			fmt.Printf(" %12.3f", v)
		}
		fmt.Println()
	}
	fmt.Println("\nThe tool never changed; accuracy and precision did. Recall and")
	fmt.Println("informedness are flat: they measure the tool, not the workload.")

	// Part 2: the ranking flip.
	fmt.Println("\nPart 2 — two tools, who wins by accuracy?")
	fmt.Println("  tool A: TPR=0.90, FPR=0.15  (genuinely informative)")
	fmt.Println("  tool B: TPR=0.55, FPR=0.02  (mostly refuses to alarm)")
	acc := vdbench.MustMetric("accuracy")
	inf := vdbench.MustMetric("informedness")
	fmt.Printf("%-11s %10s %10s %8s %8s\n", "prevalence", "acc(A)", "acc(B)", "by acc", "by inf")
	for _, p := range sweep {
		ca := expected(0.90, 0.15, size, p)
		cb := expected(0.55, 0.02, size, p)
		accA, err := acc.Value(ca)
		if err != nil {
			return err
		}
		accB, err := acc.Value(cb)
		if err != nil {
			return err
		}
		infA, err := inf.Value(ca)
		if err != nil {
			return err
		}
		infB, err := inf.Value(cb)
		if err != nil {
			return err
		}
		fmt.Printf("%-11.2f %10.4f %10.4f %8s %8s\n", p, accA, accB, winner(accA, accB), winner(infA, infB))
	}
	fmt.Println("\nAccuracy flips its verdict as prevalence grows; informedness never")
	fmt.Println("does. A benchmark that reports accuracy is ranking the workload,")
	fmt.Println("not the tools.")
	return nil
}

func winner(a, b float64) string {
	switch {
	case a > b:
		return "A"
	case b > a:
		return "B"
	default:
		return "tie"
	}
}
