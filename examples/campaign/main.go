// Campaign deep-dive: run the standard suite on a larger corpus and break
// the results down by vulnerability class (CWE) and case difficulty, the
// way the original benchmarking campaigns reported them. Also computes
// threshold-free quality (ROC AUC) from tool confidence scores.
//
// Run with:
//
//	go run ./examples/campaign
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/dsn2015/vdbench"
	"github.com/dsn2015/vdbench/internal/metrics"
	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	corpus, err := vdbench.GenerateWorkload(vdbench.WorkloadConfig{
		Services:         300,
		TargetPrevalence: 0.35,
		Seed:             11,
	})
	if err != nil {
		return err
	}
	tools, err := vdbench.StandardTools()
	if err != nil {
		return err
	}
	campaign, err := vdbench.RunCampaign(corpus, tools, 11)
	if err != nil {
		return err
	}
	f1 := vdbench.MustMetric("f1")

	fmt.Println("Per-class F1 (how tool strength varies across CWE classes):")
	fmt.Printf("%-14s", "tool")
	for _, kind := range svclang.AllSinkKinds() {
		fmt.Printf(" %8s", kind)
	}
	fmt.Println()
	for _, res := range campaign.Results {
		fmt.Printf("%-14s", res.Tool)
		for _, kind := range svclang.AllSinkKinds() {
			v, err := f1.ValueOr(res.ByKind[kind], 0)
			if err != nil {
				return err
			}
			fmt.Printf(" %8.3f", v)
		}
		fmt.Println()
	}

	fmt.Println("\nPer-difficulty recall (the hard tail separates the tools):")
	recall := vdbench.MustMetric("recall")
	difficulties := []workload.Difficulty{workload.Easy, workload.Medium, workload.Hard}
	fmt.Printf("%-14s %8s %8s %8s\n", "tool", "easy", "medium", "hard")
	for _, res := range campaign.Results {
		fmt.Printf("%-14s", res.Tool)
		for _, d := range difficulties {
			v, err := recall.ValueOr(res.ByDifficulty[d], 0)
			if err != nil {
				return err
			}
			fmt.Printf(" %8.3f", v)
		}
		fmt.Println()
	}

	fmt.Println("\nThreshold-free quality (ROC AUC over confidence scores):")
	type entry struct {
		tool string
		auc  float64
	}
	var entries []entry
	for _, res := range campaign.Results {
		auc, err := metrics.AUC(res.ScoredInstances())
		if err != nil {
			return fmt.Errorf("%s: %w", res.Tool, err)
		}
		entries = append(entries, entry{res.Tool, auc})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].auc > entries[j].auc })
	for i, e := range entries {
		fmt.Printf("  %d. %-14s AUC=%.3f\n", i+1, e.tool, e.auc)
	}
	return nil
}
