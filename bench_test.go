package vdbench

// One benchmark per reproduced table/figure (E1-E10), plus
// micro-benchmarks for the load-bearing substrates. The experiment
// benchmarks use the quick configuration so `go test -bench=.` terminates
// in minutes; the numbers in EXPERIMENTS.md come from the default
// configuration via cmd/vdbench.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/dsn2015/vdbench/internal/detectors"
	"github.com/dsn2015/vdbench/internal/experiments"
	"github.com/dsn2015/vdbench/internal/harness"
	"github.com/dsn2015/vdbench/internal/mcda"
	"github.com/dsn2015/vdbench/internal/metrics"
	"github.com/dsn2015/vdbench/internal/ranking"
	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/svclang/compile"
	"github.com/dsn2015/vdbench/internal/workload"
)

// benchExperiment regenerates one experiment artefact per iteration,
// end to end (corpus, campaign, profiles included where the experiment
// needs them).
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.QuickConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runner, err := experiments.NewRunner(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := runner.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables)+len(res.Figures) == 0 {
			b.Fatalf("%s produced no artefacts", id)
		}
	}
}

func BenchmarkE1MetricCatalog(b *testing.B)     { benchExperiment(b, "e1") }
func BenchmarkE2MetricProperties(b *testing.B)  { benchExperiment(b, "e2") }
func BenchmarkE3Campaign(b *testing.B)          { benchExperiment(b, "e3") }
func BenchmarkE4MetricValues(b *testing.B)      { benchExperiment(b, "e4") }
func BenchmarkE5Rankings(b *testing.B)          { benchExperiment(b, "e5") }
func BenchmarkE6Prevalence(b *testing.B)        { benchExperiment(b, "e6") }
func BenchmarkE7Discrimination(b *testing.B)    { benchExperiment(b, "e7") }
func BenchmarkE8ScenarioSelection(b *testing.B) { benchExperiment(b, "e8") }
func BenchmarkE9AHP(b *testing.B)               { benchExperiment(b, "e9") }
func BenchmarkE10Sensitivity(b *testing.B)      { benchExperiment(b, "e10") }
func BenchmarkE11MethodAgreement(b *testing.B)  { benchExperiment(b, "e11") }
func BenchmarkE12ThresholdFree(b *testing.B)    { benchExperiment(b, "e12") }
func BenchmarkE13MicroMacro(b *testing.B)       { benchExperiment(b, "e13") }

// --- substrate micro-benchmarks ---

var benchMatrix = metrics.Confusion{TP: 40, FP: 10, FN: 20, TN: 130}

func BenchmarkMetricMCC(b *testing.B) {
	m := metrics.MustByID(metrics.IDMCC)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Value(benchMatrix); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMetricCatalogAllValues(b *testing.B) {
	cat := metrics.Catalog()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range cat {
			v, err := m.Value(benchMatrix)
			if err != nil {
				b.Fatal(err)
			}
			_ = v
		}
	}
}

var benchServiceSrc = `
service Bench
  param id
  param mode
  var q
  if not matches(id, alnum)
    reject
  end
  if eq(mode, "alpha")
    q = concat("SELECT * FROM t WHERE a='", escape_sql(id), "'")
  else
    q = concat("SELECT * FROM t WHERE a='", id, "'")
  end
  repeat 3
    q = concat(q, numeric(id))
  end
  sink sql q
end
`

func BenchmarkSvclangParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := svclang.ParseOne(benchServiceSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSvclangExecute(b *testing.B) {
	svc, err := svclang.ParseOne(benchServiceSrc)
	if err != nil {
		b.Fatal(err)
	}
	req := svclang.Request{"id": "abc123", "mode": "alpha"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svclang.Execute(svc, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOracleAnalyze(b *testing.B) {
	svc, err := svclang.ParseOne(benchServiceSrc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svclang.Analyze(svc); err != nil {
			b.Fatal(err)
		}
	}
}

// benchInterpProbe adapts the exported interpreter to the oracle's
// streaming probe interface, so the two search strategies can be priced
// against each other without the engine's content-addressed ground-truth
// cache absorbing the repeat derivations.
func benchInterpProbe(svc *svclang.Service, req svclang.Request, store *svclang.SessionStore, obs svclang.ProbeObserver) error {
	res, err := svclang.ExecuteInSession(svc, req, store)
	if err != nil {
		return err
	}
	for _, ev := range res.Events {
		obs(ev.SinkID, ev.Kind, svclang.StructuralTaint(ev.Kind, ev.Value))
	}
	return nil
}

// BenchmarkAnalyzeOracle prices the ground-truth search strategies
// against each other on the same service: the influence-guided pruned
// search (the default) versus the exhaustive value-pool sweep. Labels
// are identical (TestAnalyzePruningMatchesExhaustive); only the probe
// count moves. BENCH_pr9.json records this pair.
func BenchmarkAnalyzeOracle(b *testing.B) {
	svc, err := svclang.ParseOne(benchServiceSrc)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		analyze func(*svclang.Service, svclang.ProbeFunc) ([]svclang.GroundTruth, error)
	}{
		{"pruned", svclang.AnalyzeProbing},
		{"exhaustive", svclang.AnalyzeProbingExhaustive},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				truths, err := mode.analyze(svc, benchInterpProbe)
				if err != nil {
					b.Fatal(err)
				}
				if len(truths) == 0 {
					b.Fatal("no ground truth")
				}
			}
		})
	}
}

// BenchmarkCorpusGeneration prices the content-addressed oracle cache:
// cold generates corpora whose service bodies the cache has never seen
// (a fresh seed per iteration), warm regenerates one fixed corpus whose
// every ground-truth derivation the cache already holds. BENCH_pr9.json
// records this pair.
func BenchmarkCorpusGeneration(b *testing.B) {
	cfg := workload.Config{Services: 50, TargetPrevalence: 0.35}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg.Seed = uint64(100000 + i)
			if _, err := workload.Generate(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Fresh seeds still share template bodies with earlier iterations
	// through the content-addressed cache, so "cold" converges on the
	// steady state of a long-running process; run with -benchtime=1x in
	// a fresh process for the truly cold first-corpus cost.
	b.Run("cold-exhaustive", func(b *testing.B) {
		ecfg := cfg
		ecfg.OracleExhaustive = true
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ecfg.Seed = uint64(200000 + i)
			if _, err := workload.Generate(ecfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		cfg.Seed = 424242
		if _, err := workload.Generate(cfg); err != nil { // prime the cache
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := workload.Generate(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchCase(b *testing.B) workload.Case {
	b.Helper()
	tpl, ok := workload.TemplateByName("guarded-splice")
	if !ok {
		b.Fatal("template missing")
	}
	svc, _ := tpl.Build("bench", svclang.SinkSQL, true)
	truths, err := svclang.Analyze(svc)
	if err != nil {
		b.Fatal(err)
	}
	return workload.Case{Service: svc, Template: "guarded-splice", Difficulty: workload.Hard, Truths: truths}
}

func BenchmarkTaintSAST(b *testing.B) {
	cs := benchCase(b)
	tool := detectors.NewTaintSAST(detectors.TaintSASTConfig{
		Name: "bench", SinkAware: true, ValidatorAware: true,
		PruneDeadBranches: true, TrackLoops: true,
	})
	rng := stats.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tool.Analyze(cs, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPentester(b *testing.B) {
	cs := benchCase(b)
	tool := detectors.NewPentester(detectors.PentesterConfig{Name: "bench", ExploreInputs: true})
	rng := stats.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tool.Analyze(cs, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Generate(workload.Config{
			Services:         20,
			TargetPrevalence: 0.35,
			Seed:             uint64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAHPPriorities(b *testing.B) {
	weights := []float64{9, 5, 3, 7, 2, 4, 6, 8, 1}
	pw, err := mcda.FromWeights(weights)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pw.Priorities(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKendallTau(b *testing.B) {
	rng := stats.NewRNG(4)
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ranking.KendallTau(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBootstrapMean(b *testing.B) {
	rng := stats.NewRNG(5)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	cfg := stats.BootstrapConfig{Resamples: 200, Confidence: 0.95}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.Bootstrap(rng, xs, cfg, func(s []float64) float64 {
			m, _ := stats.Mean(s)
			return m
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// campaignWorkerCounts is the worker-pool sweep reported in README.md.
var campaignWorkerCounts = []int{1, 2, 4, 8}

// BenchmarkCampaignWorkers measures the raw campaign harness at several
// pool sizes over one fixed corpus and tool suite. The output is
// byte-identical across sub-benchmarks (see TestRunParallelEquivalence in
// internal/harness); only the wall clock moves.
func BenchmarkCampaignWorkers(b *testing.B) {
	corpus, err := workload.Generate(workload.Config{
		Services:         200,
		TargetPrevalence: 0.35,
		Seed:             1,
	})
	if err != nil {
		b.Fatal(err)
	}
	tools, err := detectors.StandardSuite()
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range campaignWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				camp, err := harness.RunParallel(corpus, tools, 1, workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(camp.Results) == 0 {
					b.Fatal("empty campaign")
				}
			}
		})
	}
}

// BenchmarkCampaignEngines prices the execution engines against each
// other inside one binary: the same 200-service standard-suite campaign
// on the default bytecode VM versus the reference tree-walking
// interpreter. Outputs are deep-equal (TestInterpreterOptionEquivalence);
// only the cost moves. BENCH_pr6.json records this pair.
func BenchmarkCampaignEngines(b *testing.B) {
	corpus, err := workload.Generate(workload.Config{
		Services:         200,
		TargetPrevalence: 0.35,
		Seed:             1,
	})
	if err != nil {
		b.Fatal(err)
	}
	tools, err := detectors.StandardSuite()
	if err != nil {
		b.Fatal(err)
	}
	for _, eng := range []struct {
		name        string
		interpreter bool
	}{{"vm", false}, {"interpreter", true}} {
		b.Run(eng.name, func(b *testing.B) {
			opts := harness.Options{Seed: 1, Workers: 1, Interpreter: eng.interpreter}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				camp, err := harness.RunCtx(context.Background(), corpus, tools, opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(camp.Results) == 0 {
					b.Fatal("empty campaign")
				}
			}
		})
	}
}

// BenchmarkSvclangExecuteVM is the compiled-execution counterpart of
// BenchmarkSvclangExecute: the same service and request through the
// bytecode VM's pooled arenas. The pair prices the compilation work's
// single-service win inside one binary.
func BenchmarkSvclangExecuteVM(b *testing.B) {
	svc, err := svclang.ParseOne(benchServiceSrc)
	if err != nil {
		b.Fatal(err)
	}
	eng := compile.NewEngine(false)
	req := svclang.Request{"id": "abc123", "mode": "alpha"}
	if _, err := eng.Execute(svc, req); err != nil { // compile outside the loop
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Execute(svc, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3CampaignWorkers regenerates the E3 artefact end to end at
// several campaign pool sizes: the experiment-level view of the same
// sweep.
func BenchmarkE3CampaignWorkers(b *testing.B) {
	for _, workers := range campaignWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := experiments.QuickConfig()
			cfg.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runner, err := experiments.NewRunner(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := runner.Run("e3")
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Tables) == 0 {
					b.Fatal("e3 produced no tables")
				}
			}
		})
	}
}

// BenchmarkE3CampaignEngines prices the execution engines on the
// standard-suite E3 campaign regenerated end to end — corpus, ground
// truth and campaign included, everything downstream of the engine
// switch. This is the ≥10x allocation pair BENCH_pr6.json records; the
// rendered artefact is byte-identical between sub-benchmarks
// (TestAllIdenticalInterpreterVsVM in internal/experiments).
func BenchmarkE3CampaignEngines(b *testing.B) {
	for _, eng := range []struct {
		name        string
		interpreter bool
	}{{"vm", false}, {"interpreter", true}} {
		b.Run(eng.name, func(b *testing.B) {
			cfg := experiments.QuickConfig()
			cfg.Interpreter = eng.interpreter
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runner, err := experiments.NewRunner(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := runner.Run("e3")
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Tables) == 0 {
					b.Fatal("e3 produced no tables")
				}
			}
		})
	}
}

// BenchmarkAllExperiments runs the entire `vdbench all` pipeline — every
// driver, shared campaign and profiles included — at several worker
// budgets. This is the tentpole sweep recorded in BENCH_pr4.json: the
// output is byte-identical across sub-benchmarks (see
// TestAllIdenticalAcrossWorkers in internal/experiments); only the wall
// clock moves with the budget.
func BenchmarkAllExperiments(b *testing.B) {
	for _, workers := range campaignWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := experiments.QuickConfig()
			cfg.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runner, err := experiments.NewRunner(cfg)
				if err != nil {
					b.Fatal(err)
				}
				results, err := runner.All()
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != len(experiments.IDs()) {
					b.Fatalf("got %d results", len(results))
				}
			}
		})
	}
}

// BenchmarkBootstrapWorkers sweeps the resampling loop's worker budget on
// a bootstrap large enough for per-block fan-out to matter. Intervals are
// byte-identical across sub-benchmarks (TestBootstrapIdenticalAcrossWorkers).
func BenchmarkBootstrapWorkers(b *testing.B) {
	seedRNG := stats.NewRNG(5)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = seedRNG.NormFloat64()
	}
	for _, workers := range campaignWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := stats.BootstrapConfig{Resamples: 2000, Confidence: 0.95, Workers: workers}
			rng := stats.NewRNG(6)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := stats.Bootstrap(rng, xs, cfg, func(s []float64) float64 {
					m, _ := stats.Mean(s)
					return m
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE14Combination(b *testing.B) { benchExperiment(b, "e14") }

func BenchmarkE15DecisionImpact(b *testing.B) { benchExperiment(b, "e15") }

func BenchmarkE16FailureMap(b *testing.B) { benchExperiment(b, "e16") }

func BenchmarkE17Redundancy(b *testing.B) { benchExperiment(b, "e17") }

func BenchmarkE18Degradation(b *testing.B) { benchExperiment(b, "e18") }

// BenchmarkCampaignEngineOverhead prices the fault-tolerant execution
// layer on a fault-free campaign: the same 200-service standard-suite
// run with no guards versus with every guard armed (per-tool deadline,
// retry budget, skip policy). With a well-behaved suite no deadline
// fires and no retry happens, so the gap is pure bookkeeping — context
// plumbing, panic-isolation frames and ledger accounting. BENCH_pr5.json
// records the sweep against the PR 4 baseline (<5% required).
func BenchmarkCampaignEngineOverhead(b *testing.B) {
	corpus, err := workload.Generate(workload.Config{
		Services:         200,
		TargetPrevalence: 0.35,
		Seed:             1,
	})
	if err != nil {
		b.Fatal(err)
	}
	tools, err := detectors.StandardSuite()
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name string
		opts harness.Options
	}{
		{"plain", harness.Options{Seed: 1, Workers: 1}},
		{"guarded", harness.Options{
			Seed:           1,
			Workers:        1,
			PerToolTimeout: 30 * time.Second,
			Retry:          harness.RetryPolicy{MaxRetries: 2, Backoff: time.Millisecond},
			Degraded:       harness.DegradedSkip,
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				camp, err := harness.RunCtx(context.Background(), corpus, tools, v.opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(camp.Results) == 0 {
					b.Fatal("empty campaign")
				}
			}
		})
	}
}
