package vdbench_test

import (
	"fmt"
	"log"

	"github.com/dsn2015/vdbench"
)

// Example_campaign generates a small labelled workload, runs the standard
// tool suite, and prints each tool's recall — the minimal end-to-end use
// of the framework.
func Example_campaign() {
	corpus, err := vdbench.GenerateWorkload(vdbench.WorkloadConfig{
		Services:         50,
		TargetPrevalence: 0.35,
		Seed:             1,
	})
	if err != nil {
		log.Fatal(err)
	}
	tools, err := vdbench.StandardTools()
	if err != nil {
		log.Fatal(err)
	}
	campaign, err := vdbench.RunCampaign(corpus, tools, 1)
	if err != nil {
		log.Fatal(err)
	}
	recall := vdbench.MustMetric("recall")
	best := ""
	bestV := -1.0
	for _, res := range campaign.Results {
		v, err := res.MetricValue(recall)
		if err != nil {
			log.Fatal(err)
		}
		if v > bestV {
			best, bestV = res.Tool, v
		}
	}
	fmt.Printf("highest recall: %s\n", best)
	// Output:
	// highest recall: ts-precise
}

// Example_metricValues computes several metrics on one confusion matrix,
// including a degenerate case where precision is undefined.
func Example_metricValues() {
	c := vdbench.Confusion{TP: 40, FP: 10, FN: 20, TN: 130}
	for _, id := range []string{"recall", "precision", "mcc"} {
		m := vdbench.MustMetric(id)
		v, err := m.Value(c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s = %.3f\n", id, v)
	}
	// Precision is undefined when the tool reports nothing; ValueOr
	// substitutes a fallback.
	silent := vdbench.Confusion{FN: 5, TN: 95}
	v, err := vdbench.MustMetric("precision").ValueOr(silent, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("precision (nothing reported, fallback) = %.1f\n", v)
	// Output:
	// recall = 0.667
	// precision = 0.800
	// mcc = 0.630
	// precision (nothing reported, fallback) = 0.0
}

// Example_scenarioSelection runs the paper's methodology: profile the
// metric catalogue, then select the right metric for a usage scenario.
func Example_scenarioSelection() {
	cfg := vdbench.PropConfig{
		MonotonicitySamples:  500,
		WorkloadSize:         2000,
		StabilityTrials:      120,
		DiscriminationTrials: 200,
		Tolerance:            1e-9,
	}
	profiles, err := vdbench.AnalyzeMetrics(cfg, 2015)
	if err != nil {
		log.Fatal(err)
	}
	s, _ := vdbench.ScenarioByID("security-audit")
	sel, err := vdbench.SelectMetric(s, profiles)
	if err != nil {
		log.Fatal(err)
	}
	// Informedness and balanced accuracy are affine equivalents; which of
	// the two lands on top varies with the analysis seed, so check the
	// family rather than one member.
	inTop := false
	for _, id := range sel.Top(2) {
		if id == "informedness" || id == "balanced-accuracy" {
			inTop = true
		}
	}
	fmt.Printf("informedness family tops %s: %t\n", s.ID, inTop)
	// Output:
	// informedness family tops security-audit: true
}

// Example_externalWorkload labels a hand-written service with the
// exhaustive oracle.
func Example_externalWorkload() {
	corpus, err := vdbench.LoadWorkload(`
service Lookup
  param user
  sink sql concat("SELECT * FROM t WHERE u='", user, "'")
end
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vulnerable sinks: %d of %d\n", corpus.VulnerableSinks(), corpus.TotalSinks())
	// Output:
	// vulnerable sinks: 1 of 1
}
