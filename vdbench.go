// Package vdbench is a benchmark framework for vulnerability detection
// tools, reproducing Antunes & Vieira, "On the Metrics for Benchmarking
// Vulnerability Detection Tools" (DSN 2015).
//
// The package is the public facade over the internal building blocks:
//
//   - a catalogue of 29 candidate benchmark metrics over confusion
//     matrices, with computed property profiles (boundedness, prevalence
//     robustness, chance correction, stability, discriminative power, ...);
//   - a workload generator producing labelled corpora of synthetic web
//     services with seeded injection vulnerabilities, ground truth verified
//     by an exhaustive structural-taint oracle;
//   - a suite of real miniature detection tools (AST-walker and CFG
//     dataflow taint SASTs, signature SAST, differential penetration
//     testers) plus calibrated simulated tools;
//   - a campaign harness scoring tools at sink granularity;
//   - usage scenarios with per-scenario criterion weights, an analytical
//     metric selector, and MCDA validation (AHP with encoded expert
//     panels; weighted-sum, weighted-product and TOPSIS baselines).
//
// # Quick start
//
//	corpus, err := vdbench.GenerateWorkload(vdbench.WorkloadConfig{
//		Services:         100,
//		TargetPrevalence: 0.35,
//		Seed:             1,
//	})
//	// handle err
//	tools, err := vdbench.StandardTools()
//	// handle err
//	campaign, err := vdbench.RunCampaignCtx(ctx, corpus, tools, vdbench.CampaignOptions{
//		Seed:           1,
//		Workers:        4,                      // output is identical for every value
//		PerToolTimeout: 30 * time.Second,       // bound each tool invocation
//		Retry:          vdbench.RetryPolicy{MaxRetries: 1},
//		Degraded:       vdbench.DegradedSkip,   // complete with partial results
//	})
//	// handle err
//	recall := vdbench.MustMetric("recall")
//	for _, res := range campaign.Results {
//		v, _ := res.MetricValue(recall)
//		fmt.Printf("%s recall=%.3f (failed cases: %d)\n", res.Tool, v, res.Exec.Failed)
//	}
//
// To reproduce the paper's experiments, see RunExperiment and the
// cmd/vdbench command.
package vdbench

import (
	"context"
	"errors"

	"github.com/dsn2015/vdbench/internal/core"
	"github.com/dsn2015/vdbench/internal/detectors"
	"github.com/dsn2015/vdbench/internal/dist"
	"github.com/dsn2015/vdbench/internal/experiments"
	"github.com/dsn2015/vdbench/internal/harness"
	"github.com/dsn2015/vdbench/internal/metricprop"
	"github.com/dsn2015/vdbench/internal/metrics"
	"github.com/dsn2015/vdbench/internal/scenario"
	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/svclang/cfg"
	"github.com/dsn2015/vdbench/internal/svclang/compile"
	"github.com/dsn2015/vdbench/internal/workload"
)

// Re-exported core types. The aliases form the public API surface; the
// internal packages stay internal.
type (
	// Confusion is a binary confusion matrix (TP/FP/FN/TN) over sinks.
	Confusion = metrics.Confusion
	// Metric is one candidate benchmark metric with its metadata.
	Metric = metrics.Metric
	// MetricProfile is the computed property profile of a metric.
	MetricProfile = metricprop.Profile
	// PropConfig configures the metric property analysis.
	PropConfig = metricprop.Config
	// WorkloadConfig configures corpus generation.
	WorkloadConfig = workload.Config
	// Corpus is a generated, ground-truth-labelled workload.
	Corpus = workload.Corpus
	// Case is one labelled service of a corpus.
	Case = workload.Case
	// Tool is a vulnerability detection tool under benchmark.
	Tool = detectors.Tool
	// Report is one tool finding.
	Report = detectors.Report
	// Campaign is the scored result of running tools over a corpus.
	Campaign = harness.Campaign
	// ToolResult is one tool's scored campaign outcome.
	ToolResult = harness.ToolResult
	// Scenario is a benchmark usage scenario with criterion weights.
	Scenario = scenario.Scenario
	// Criterion is one characteristic of a good benchmark metric.
	Criterion = scenario.Criterion
	// Selection is a per-scenario metric selection outcome.
	Selection = core.Selection
	// Validation is the MCDA validation outcome for a scenario.
	Validation = core.Validation
	// Service is a workload program in the mini service language.
	Service = svclang.Service
	// ExperimentConfig parameterises the paper experiments E1-E17.
	ExperimentConfig = experiments.Config
	// ExperimentResult is one experiment's rendered tables and figures.
	// It renders to text, CSV, Markdown or canonical JSON via Render.
	ExperimentResult = experiments.Result
	// ExperimentInfo identifies one reproducible experiment (ID + title).
	ExperimentInfo = experiments.Info
	// CampaignOptions configures fault-tolerant campaign execution for
	// RunCampaignCtx: seed, worker pool, per-tool deadline, retry budget
	// and the degraded-cell scoring policy.
	CampaignOptions = harness.Options
	// RetryPolicy bounds re-execution of retryable tool failures.
	RetryPolicy = harness.RetryPolicy
	// DegradedPolicy decides how the scoring layer treats a (tool, case)
	// cell whose every execution attempt failed.
	DegradedPolicy = harness.DegradedPolicy
	// ExecLedger is the per-tool execution accounting on every ToolResult:
	// attempts, retries, and failed cases split by failure kind.
	ExecLedger = harness.ExecLedger
	// ExecError records the final failure of one (tool, case) cell.
	ExecError = harness.ExecError
	// FailureKind classifies how a cell failed (panic, timeout, error).
	FailureKind = harness.FailureKind
	// ExecTotals is the process-wide snapshot of engine fault counters.
	ExecTotals = harness.ExecTotals
	// CampaignProgressEvent describes one finished (tool, case) cell of a
	// running campaign: monotone done/total counts plus the cell's
	// confusion-matrix delta for incremental metric estimates.
	CampaignProgressEvent = harness.ProgressEvent
	// CampaignProgressFunc receives per-cell progress events; it is called
	// from campaign worker goroutines and must be concurrency-safe and
	// fast (buffer and shed in the listener, not the campaign).
	CampaignProgressFunc = harness.ProgressFunc
	// OracleTotals is the process-wide snapshot of ground-truth oracle
	// search counters: probes executed, probes pruned away by the
	// influence analysis, and sweeps cut short by early exit.
	OracleTotals = svclang.OracleTotals
	// ContextTool is an optional Tool extension for implementations that
	// observe cancellation mid-analysis; the execution engine passes such
	// tools the per-attempt deadline context.
	ContextTool = detectors.ContextAnalyzer
)

// Degraded-cell scoring policies for CampaignOptions.Degraded.
const (
	// DegradedAbort fails the campaign on the first degraded cell — the
	// historical fail-fast behaviour and the zero value.
	DegradedAbort = harness.DegradedAbort
	// DegradedSkip omits failed cases from the tool's confusion matrices.
	DegradedSkip = harness.DegradedSkip
	// DegradedCountMiss scores every sink of a failed case as unflagged.
	DegradedCountMiss = harness.DegradedCountMiss
)

// Failure kinds recorded in execution ledgers.
const (
	FailPanic   = harness.FailPanic
	FailTimeout = harness.FailTimeout
	FailError   = harness.FailError
)

// Metrics returns the full candidate metric catalogue in presentation
// order.
func Metrics() []Metric { return metrics.Catalog() }

// MetricByID looks a metric up by ID or alias.
func MetricByID(id string) (Metric, bool) { return metrics.ByID(id) }

// MustMetric returns the metric with the given ID and panics when it does
// not exist; intended for fixed IDs in example and test code.
func MustMetric(id string) Metric { return metrics.MustByID(id) }

// GenerateWorkload builds a labelled benchmark corpus. Every sink label is
// verified against the exhaustive ground-truth oracle during generation.
func GenerateWorkload(cfg WorkloadConfig) (*Corpus, error) {
	return workload.Generate(cfg)
}

// ParseServices parses service definitions in the textual mini-language
// format (see the svclang grammar in the README).
func ParseServices(src string) ([]*Service, error) { return svclang.Parse(src) }

// PrintService renders a service in the canonical textual form.
func PrintService(svc *Service) string { return svclang.Print(svc) }

// LoadWorkload builds a labelled corpus from externally authored service
// sources; ground truth is computed by the exhaustive oracle exactly as
// for generated corpora.
func LoadWorkload(src string) (*Corpus, error) { return workload.FromSources(src) }

// StandardTools returns the benchmark campaign's standard tool suite:
// six static tools (four AST-walker taint configurations plus two CFG
// dataflow engines), two penetration testers and one simulated heuristic
// tool.
func StandardTools() ([]Tool, error) { return detectors.StandardSuite() }

// CombineMode selects how CombineTools merges member findings.
type CombineMode = detectors.CombineMode

// Combination modes for CombineTools.
const (
	Union        = detectors.Union
	Intersection = detectors.Intersection
	Majority     = detectors.Majority
)

// CombineTools builds a tool that merges the findings of at least two
// member tools under the given mode (union raises recall, intersection
// raises precision, majority votes).
func CombineTools(name string, mode CombineMode, members []Tool) (Tool, error) {
	return detectors.NewCombined(name, mode, members)
}

// RunCampaignCtx is the campaign entry point: it executes every tool
// over every corpus case under ctx and scores the reports at sink
// granularity. Execution is fault tolerant — every tool invocation runs
// under panic isolation and, when opts.PerToolTimeout is set, a
// per-attempt deadline; errors the tool marked retryable (MarkRetryable)
// are retried up to opts.Retry.MaxRetries times with deterministic
// backoff. Cells that still fail are handled per opts.Degraded: abort the
// campaign (zero value, the historical behaviour), skip them, or count
// them as misses — under the latter two the campaign always completes
// with partial results and a populated ExecLedger per tool.
//
// The result is byte-identical for every opts.Workers value: per-(tool,
// case) RNG streams are pre-split in serial order and outcomes merged
// back in corpus order. Custom Tool implementations must tolerate
// concurrent Analyze calls on distinct cases (keep per-request state in
// the call frame, as the standard suite does). Cancelling ctx aborts the
// campaign at the next case boundary.
func RunCampaignCtx(ctx context.Context, corpus *Corpus, tools []Tool, opts CampaignOptions) (*Campaign, error) {
	return harness.RunCtx(ctx, corpus, tools, opts)
}

// RunCampaign executes every tool over every corpus case and scores the
// reports at sink granularity. The seed drives simulated tools only; real
// tools are deterministic.
//
// Deprecated: use RunCampaignCtx, which adds cancellation, per-tool
// deadlines, retries and partial-result policies. RunCampaign is
// RunCampaignCtx with a background context and CampaignOptions{Seed:
// seed, Workers: 1}, kept for existing callers.
func RunCampaign(corpus *Corpus, tools []Tool, seed uint64) (*Campaign, error) {
	return harness.Run(corpus, tools, seed)
}

// RunCampaignParallel is RunCampaign over a worker pool. The result is
// byte-identical to RunCampaign for every worker count. workers <= 0
// selects runtime.GOMAXPROCS(0).
//
// Deprecated: use RunCampaignCtx, which adds cancellation, per-tool
// deadlines, retries and partial-result policies. RunCampaignParallel is
// RunCampaignCtx with a background context and CampaignOptions{Seed:
// seed, Workers: workers}, kept for existing callers.
func RunCampaignParallel(corpus *Corpus, tools []Tool, seed uint64, workers int) (*Campaign, error) {
	return harness.RunParallel(corpus, tools, seed, workers)
}

// WithCampaignProgress returns a context carrying fn as the campaign
// progress listener: any campaign executed under the returned context —
// directly via RunCampaignCtx or through RunExperimentCtx — reports each
// finished (tool, case) cell to fn. Reporting is observation only;
// results are byte-identical with or without a listener.
func WithCampaignProgress(ctx context.Context, fn CampaignProgressFunc) context.Context {
	return harness.WithProgress(ctx, fn)
}

// MarkRetryable wraps err so the execution engine may re-run the failing
// attempt (with an identical RNG stream) up to the campaign's retry
// budget. Custom tools wrap transient faults — flaky I/O, resource
// contention — whose repetition is expected to succeed; deterministic
// analysis failures must be returned unwrapped.
func MarkRetryable(err error) error { return detectors.MarkRetryable(err) }

// IsRetryable reports whether err (or any error in its chain) was marked
// retryable via MarkRetryable.
func IsRetryable(err error) bool { return detectors.IsRetryable(err) }

// ParseDegradedPolicy maps the textual policy names ("abort", "skip",
// "count-miss") onto DegradedPolicy values; both daemons' CLI flags
// accept exactly this set.
func ParseDegradedPolicy(s string) (DegradedPolicy, error) {
	return harness.ParseDegradedPolicy(s)
}

// ExecutionTotals returns the process-wide cumulative fault counters of
// the campaign execution engine: recovered panics, deadline expiries,
// exhausted errors and retries across every campaign this process has
// run. Totals are monotone; cmd/vdserved folds their deltas onto
// /metrics.
func ExecutionTotals() ExecTotals { return harness.ExecTotalsSnapshot() }

// CompileCacheTotals returns the process-wide compile-cache counters:
// hits served a memoised control-flow graph, misses lowered one. The
// parallel campaign harness shares one cache per campaign across every
// CFG-based tool, so misses grow with distinct (service, options) pairs
// and hits with the redundant builds the cache absorbed. Both values are
// monotonically non-decreasing; cmd/vdserved exposes them on /metrics.
func CompileCacheTotals() (hits, misses uint64) {
	return cfg.CacheTotals()
}

// OracleSearchTotals returns the process-wide cumulative counters of the
// ground-truth oracle's probe search: probes executed, probes the
// influence-guided plan pruned away, and sweeps stopped early once every
// sink was proven vulnerable. Executed + pruned always equals the size
// of the exhaustive probe space, so the pair measures the pruning ratio
// directly. Totals are monotone; cmd/vdserved folds their deltas onto
// /metrics.
func OracleSearchTotals() OracleTotals { return svclang.OracleTotalsSnapshot() }

// OracleCacheTotals returns the process-wide content-addressed oracle
// cache counters: hits served a memoised ground-truth derivation for a
// structurally identical service, misses derived one. Both values are
// monotonically non-decreasing; cmd/vdserved exposes them on /metrics.
func OracleCacheTotals() (hits, misses uint64) {
	return compile.OracleCacheTotals()
}

// DefaultPropConfig returns the property-analysis configuration used by
// the published experiment numbers.
func DefaultPropConfig() PropConfig { return metricprop.DefaultConfig() }

// AnalyzeMetrics computes property profiles for the whole metric
// catalogue. The analysis is deterministic in the seed.
func AnalyzeMetrics(cfg PropConfig, seed uint64) ([]MetricProfile, error) {
	return metricprop.AnalyzeCatalog(cfg, stats.NewRNG(seed))
}

// Scenarios returns the benchmark usage scenarios.
func Scenarios() []Scenario { return scenario.Scenarios() }

// ScenarioByID looks a scenario up by ID (see Scenarios for the
// catalogue).
func ScenarioByID(id string) (Scenario, bool) { return scenario.ByID(id) }

// Criteria returns the characteristics of a good benchmark metric used by
// the scenario analysis.
func Criteria() []Criterion { return scenario.Criteria() }

// SelectMetric performs the analytical per-scenario metric selection.
func SelectMetric(s Scenario, profiles []MetricProfile) (Selection, error) {
	return core.Select(s, profiles)
}

// ValidateSelection validates a scenario's metric selection with the
// Analytic Hierarchy Process over an encoded expert panel of the given
// size and judgment-noise level.
func ValidateSelection(s Scenario, profiles []MetricProfile, panelSize int, sigma float64, seed uint64) (Validation, error) {
	return core.Validate(s, profiles, panelSize, sigma, stats.NewRNG(seed))
}

// DefaultExperimentConfig returns the configuration behind the numbers in
// EXPERIMENTS.md.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// QuickExperimentConfig returns a reduced configuration for smoke runs
// (same code paths, roughly an order of magnitude faster).
func QuickExperimentConfig() ExperimentConfig { return experiments.QuickConfig() }

// ExperimentIDs lists the reproducible experiments (e1..e10) in
// presentation order.
func ExperimentIDs() []string { return experiments.IDs() }

// Experiments returns the experiment catalogue (ID and title) in
// presentation order; the serving API exposes it at /v1/experiments.
func Experiments() []ExperimentInfo { return experiments.Catalog() }

// ResultFormats lists the render formats ExperimentResult.Render
// supports ("text", "csv", "markdown", "json"). cmd/vdbench -format and
// the serving API's ?format= parameter accept exactly this set, backed
// by one encoder per format.
func ResultFormats() []string { return experiments.Formats() }

// ExperimentCacheKey returns the content address of an experiment run: a
// SHA-256 over the experiment ID and every result-affecting field of the
// configuration. Workers is excluded because experiment output is
// byte-identical for every worker count (see RunCampaignParallel), which
// is precisely the invariance that makes memoising results sound — the
// serving layer (internal/service, cmd/vdserved) keys its result cache
// and singleflight table on this.
func ExperimentCacheKey(id string, cfg ExperimentConfig) string {
	return experiments.CacheKey(id, cfg)
}

// RunExperimentCtx reproduces one of the paper's tables or figures by ID
// under ctx. Cancellation is observed between experiment stages and,
// inside campaigns, between cases; a cancelled run returns an error
// wrapping ctx.Err(). The serving layer (internal/service) runs every
// job through this entry point so DELETE and shutdown actually stop work.
func RunExperimentCtx(ctx context.Context, id string, cfg ExperimentConfig) (ExperimentResult, error) {
	runner, err := experiments.NewRunner(cfg)
	if err != nil {
		return ExperimentResult{}, err
	}
	return runner.RunCtx(ctx, id)
}

// RunExperiment reproduces one of the paper's tables or figures by ID.
// It is RunExperimentCtx without cancellation.
func RunExperiment(id string, cfg ExperimentConfig) (ExperimentResult, error) {
	return RunExperimentCtx(context.Background(), id, cfg)
}

// RunAllExperimentsCtx reproduces every table and figure under ctx.
// Sharing one call (rather than looping over RunExperimentCtx) reuses the
// corpus, campaign and metric profiles across experiments.
func RunAllExperimentsCtx(ctx context.Context, cfg ExperimentConfig) ([]ExperimentResult, error) {
	runner, err := experiments.NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	return runner.AllCtx(ctx)
}

// RunAllExperiments reproduces every table and figure. It is
// RunAllExperimentsCtx without cancellation.
func RunAllExperiments(cfg ExperimentConfig) ([]ExperimentResult, error) {
	return RunAllExperimentsCtx(context.Background(), cfg)
}

// RunExperimentDistributedCtx is RunExperimentCtx with the benchmark
// campaign executed on the worker fleet behind the coordinator at
// coordinatorURL (a vdserved -coordinator process). Everything outside
// the campaign — metric profiles, selection, MCDA — still runs locally.
// The distributed campaign is byte-identical to the local one, so the
// experiment output (and its cache key) is too. shardCases tunes the
// shard granularity; 0 keeps the coordinator default.
func RunExperimentDistributedCtx(ctx context.Context, id string, cfg ExperimentConfig, coordinatorURL string, shardCases int) (ExperimentResult, error) {
	runner, err := experiments.NewRunner(cfg)
	if err != nil {
		return ExperimentResult{}, err
	}
	client := dist.NewClient(coordinatorURL)
	client.ShardCases = shardCases
	runner.SetCampaignExecutor(client)
	return runner.RunCtx(ctx, id)
}

// RunAllExperimentsDistributedCtx is RunAllExperimentsCtx with the
// benchmark campaign executed on the worker fleet behind coordinatorURL;
// see RunExperimentDistributedCtx.
func RunAllExperimentsDistributedCtx(ctx context.Context, cfg ExperimentConfig, coordinatorURL string, shardCases int) ([]ExperimentResult, error) {
	runner, err := experiments.NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	client := dist.NewClient(coordinatorURL)
	client.ShardCases = shardCases
	runner.SetCampaignExecutor(client)
	return runner.AllCtx(ctx)
}

// WilsonInterval computes the Wilson score interval for a binomial rate
// (k successes in n trials) at the given confidence level. Rate metrics
// (recall, precision, ...) are binomial proportions, so this is the
// standard way to put error bars on them.
func WilsonInterval(k, n int, confidence float64) (stats.Interval, error) {
	return stats.Wilson(k, n, confidence)
}

// CompareTools runs McNemar's paired test on two tools' outcomes from the
// same campaign: the statistically appropriate significance test for "do
// these tools classify this workload differently?".
func CompareTools(a, b *ToolResult) (stats.McNemarResult, error) {
	if a == nil || b == nil {
		return stats.McNemarResult{}, errors.New("vdbench: nil tool result")
	}
	if len(a.Outcomes) != len(b.Outcomes) {
		return stats.McNemarResult{}, errors.New("vdbench: tools come from different campaigns")
	}
	aCorrect := make([]bool, len(a.Outcomes))
	bCorrect := make([]bool, len(b.Outcomes))
	for i := range a.Outcomes {
		aCorrect[i] = a.Outcomes[i].Vulnerable == a.Outcomes[i].Flagged
		bCorrect[i] = b.Outcomes[i].Vulnerable == b.Outcomes[i].Flagged
	}
	return stats.McNemarFromOutcomes(aCorrect, bCorrect)
}
