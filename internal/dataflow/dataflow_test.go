package dataflow

import (
	"strings"
	"testing"
)

// testGraph is an adjacency-list graph with entry 0.
type testGraph [][]int

func (g testGraph) NumNodes() int     { return len(g) }
func (g testGraph) Entry() int        { return 0 }
func (g testGraph) Succs(n int) []int { return g[n] }

// bitsLattice is the powerset lattice over small bit sets, with -1 as an
// explicit bottom distinct from the empty set.
type bitsLattice struct{}

func (bitsLattice) Bottom() int { return -1 }
func (bitsLattice) Join(a, b int) int {
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	return a | b
}
func (bitsLattice) Equal(a, b int) bool { return a == b }

func TestDiamondJoinsBothArms(t *testing.T) {
	// 0 -> 1 -> 3, 0 -> 2 -> 3: each arm contributes a bit, the join sees
	// both.
	g := testGraph{{1, 2}, {3}, {3}, nil}
	res := Solve[int](g, bitsLattice{}, 0, func(n, in int) int {
		switch n {
		case 1:
			return in | 1
		case 2:
			return in | 2
		}
		return in
	})
	if res.In[3] != 3 {
		t.Fatalf("join in-fact = %b, want 11", res.In[3])
	}
	if res.Out[3] != 3 {
		t.Fatalf("join out-fact = %b, want 11", res.Out[3])
	}
}

func TestLoopConverges(t *testing.T) {
	// 0 -> 1 <-> 2, 1 -> 3. Node 2 adds a bit each time around; the
	// fixpoint saturates after one lap per bit.
	g := testGraph{{1}, {2, 3}, {1}, nil}
	gain := []int{0, 0, 1, 0}
	res := Solve[int](g, bitsLattice{}, 4, func(n, in int) int {
		return in | gain[n]
	})
	if res.In[3] != 5 {
		t.Fatalf("loop exit fact = %b, want 101", res.In[3])
	}
	// Reverse-postorder scheduling keeps revisits minimal: well under the
	// nodes × height product for this 4-node, 4-bit lattice.
	if res.Visits > 16 {
		t.Fatalf("loop took %d visits", res.Visits)
	}
}

func TestUnreachableNodesNeverVisited(t *testing.T) {
	// Node 2 has no in-edges.
	g := testGraph{{1}, nil, {1}}
	visited := map[int]bool{}
	res := Solve[int](g, bitsLattice{}, 1, func(n, in int) int {
		visited[n] = true
		return in
	})
	if visited[2] {
		t.Fatal("unreachable node evaluated")
	}
	if res.In[2] != -1 || res.Out[2] != -1 {
		t.Fatalf("unreachable node facts = %d/%d, want bottom", res.In[2], res.Out[2])
	}
}

func TestDeterministicVisitSequence(t *testing.T) {
	g := testGraph{{1, 2}, {3}, {3}, {1, 4}, nil}
	record := func() []int {
		var seq []int
		Solve[int](g, bitsLattice{}, 1, func(n, in int) int {
			seq = append(seq, n)
			return in | n
		})
		return seq
	}
	first := record()
	for i := 0; i < 5; i++ {
		again := record()
		if len(again) != len(first) {
			t.Fatalf("visit count varies: %v vs %v", first, again)
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("visit sequence varies at %d: %v vs %v", j, first, again)
			}
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	res := Solve[int](testGraph{}, bitsLattice{}, 1, func(n, in int) int { return in })
	if res.Visits != 0 || len(res.In) != 0 {
		t.Fatalf("empty graph solved to %+v", res)
	}
}

func TestNonMonotoneTransferPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("oscillating transfer did not panic")
		}
		if !strings.Contains(r.(string), "not monotone") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	// A broken lattice whose "join" is last-writer-wins lets an
	// alternating transfer oscillate forever on a self-loop; the visit
	// budget must trip instead of hanging.
	g := testGraph{{0}}
	Solve[int](g, lastWriterWins{}, 1, func(n, in int) int {
		if in == 1 {
			return 2
		}
		return 1
	})
}

// lastWriterWins violates the join-semilattice laws on purpose: Join is
// neither commutative nor idempotent-growing, so facts can shrink.
type lastWriterWins struct{}

func (lastWriterWins) Bottom() int { return -1 }
func (lastWriterWins) Join(a, b int) int {
	if b < 0 {
		return a
	}
	return b
}
func (lastWriterWins) Equal(a, b int) bool { return a == b }
