// Package dataflow implements a generic monotone dataflow framework: a
// join-semilattice interface and a worklist fixpoint solver over an
// arbitrary directed graph. It is the engine room for CFG-based analyses
// (see internal/svclang/cfg and the DataflowSAST detector): the client
// supplies the lattice and a monotone transfer function, the solver
// iterates to the least fixpoint, joining facts at merge points and
// converging around loops instead of relying on a fixed pass count.
//
// The solver is deterministic: the worklist is ordered by reverse
// postorder, so identical inputs produce identical visit sequences and —
// because transfer functions may carry deterministic side effects such as
// report recording — identical outputs.
package dataflow

import (
	"fmt"
	"math/bits"
)

// Lattice describes a join-semilattice over facts of type T. Join must be
// commutative, associative and idempotent (the property tests in
// internal/detectors check this for the taint lattice), must treat
// Bottom() as its identity, and must not mutate its arguments.
type Lattice[T any] interface {
	// Bottom returns the least element: the fact for unreached code.
	Bottom() T
	// Join returns the least upper bound of a and b without mutating
	// either.
	Join(a, b T) T
	// Equal reports whether two facts are identical.
	Equal(a, b T) bool
}

// Graph is the shape the solver needs: a finite node set, a distinguished
// entry, and successor edges. *cfg.Graph satisfies it.
type Graph interface {
	// NumNodes returns the number of nodes; node IDs are 0..NumNodes()-1.
	NumNodes() int
	// Entry returns the entry node's ID.
	Entry() int
	// Succs returns the successors of node n in deterministic order.
	Succs(n int) []int
}

// Transfer computes the out-fact of node n from its in-fact. It must be
// monotone (a larger in-fact never yields a smaller out-fact) and must not
// mutate in; side effects must be deterministic functions of (n, in).
type Transfer[T any] func(n int, in T) T

// Result carries the fixpoint solution.
type Result[T any] struct {
	// In and Out hold the per-node facts, indexed by node ID. Nodes not
	// reachable from the entry keep Bottom and are never visited.
	In, Out []T
	// Visits counts transfer evaluations. For a monotone transfer over a
	// lattice of height h the solver needs at most NumNodes·(h+1) of them;
	// the property tests pin this bound on generated workloads.
	Visits int
}

// visitBudget bounds transfer evaluations per node as a runaway guard: a
// non-monotone transfer (a client bug) could otherwise oscillate forever.
// Far above the height of any lattice used in this module.
const visitBudget = 1 << 12

// Solve iterates the transfer function to the least fixpoint. The entry
// node starts from entryFact; every other node starts from Bottom and is
// only evaluated once some predecessor's out-fact reaches it, so
// unreachable nodes are never visited. Nodes are drained in reverse
// postorder, which reaches loop fixpoints with the fewest re-visits and
// makes the visit sequence deterministic.
//
// Solve panics if any node is evaluated more than visitBudget times; that
// only happens when the transfer function is not monotone.
func Solve[T any](g Graph, lat Lattice[T], entryFact T, f Transfer[T]) Result[T] {
	n := g.NumNodes()
	res := Result[T]{In: make([]T, n), Out: make([]T, n)}
	for i := 0; i < n; i++ {
		res.In[i] = lat.Bottom()
		res.Out[i] = lat.Bottom()
	}
	if n == 0 {
		return res
	}

	order := rpo(g)
	entry := g.Entry()
	res.In[entry] = entryFact

	// pos maps node IDs to reverse-postorder positions (-1 for nodes the
	// entry cannot reach); pending is a packed bitset over those
	// positions, so "earliest pending node in RPO" is a trailing-zeros
	// scan over a few words instead of a linear walk of the order slice.
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, id := range order {
		pos[id] = i
	}
	pending := make([]uint64, (len(order)+63)/64)
	pending[pos[entry]>>6] |= 1 << (uint(pos[entry]) & 63)
	visitsPerNode := make([]int, n)
	for {
		node := -1
		for w, word := range pending {
			if word != 0 {
				p := w<<6 | bits.TrailingZeros64(word)
				pending[w] = word & (word - 1) // clear the lowest set bit
				node = order[p]
				break
			}
		}
		if node < 0 {
			return res
		}
		visitsPerNode[node]++
		if visitsPerNode[node] > visitBudget {
			panic(fmt.Sprintf("dataflow: node %d evaluated %d times; transfer function is not monotone", node, visitsPerNode[node]))
		}
		res.Visits++
		out := f(node, res.In[node])
		if lat.Equal(out, res.Out[node]) {
			continue
		}
		res.Out[node] = out
		for _, succ := range g.Succs(node) {
			joined := lat.Join(res.In[succ], out)
			if !lat.Equal(joined, res.In[succ]) {
				res.In[succ] = joined
				p := pos[succ] // successors of a reached node are in the RPO
				pending[p>>6] |= 1 << (uint(p) & 63)
			}
		}
	}
}

// rpo returns the reverse postorder of the nodes reachable from the
// entry.
func rpo(g Graph) []int {
	seen := make([]bool, g.NumNodes())
	var post []int
	var walk func(id int)
	walk = func(id int) {
		seen[id] = true
		for _, s := range g.Succs(id) {
			if !seen[s] {
				walk(s)
			}
		}
		post = append(post, id)
	}
	walk(g.Entry())
	order := make([]int, len(post))
	for i, id := range post {
		order[len(post)-1-i] = id
	}
	return order
}
