package mcda

import (
	"math"
	"testing"

	"github.com/dsn2015/vdbench/internal/stats"
)

func sampleProblem() Problem {
	return Problem{
		Criteria:     []string{"c1", "c2", "c3"},
		Alternatives: []string{"a", "b", "c"},
		Scores: [][]float64{
			{0.9, 0.2, 0.5},
			{0.5, 0.8, 0.5},
			{0.1, 0.1, 0.5},
		},
	}
}

func TestProblemValidate(t *testing.T) {
	if err := sampleProblem().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Problem{
		{},
		{Criteria: []string{"c"}},
		{Criteria: []string{"c"}, Alternatives: []string{"a"}, Scores: [][]float64{}},
		{Criteria: []string{"c"}, Alternatives: []string{"a"}, Scores: [][]float64{{1, 2}}},
		{Criteria: []string{"c"}, Alternatives: []string{"a"}, Scores: [][]float64{{math.NaN()}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
}

func TestWeightedSumDominance(t *testing.T) {
	p := sampleProblem()
	// Equal weights: alternative c is dominated and must rank last.
	scores, err := WeightedSum(p, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !(scores[2] < scores[0] && scores[2] < scores[1]) {
		t.Fatalf("dominated alternative not last: %v", scores)
	}
	// Weight tilted to c1: a wins. Tilted to c2: b wins.
	s1, _ := WeightedSum(p, []float64{10, 1, 1})
	if !(s1[0] > s1[1]) {
		t.Fatalf("c1-heavy weights should favour a: %v", s1)
	}
	s2, _ := WeightedSum(p, []float64{1, 10, 1})
	if !(s2[1] > s2[0]) {
		t.Fatalf("c2-heavy weights should favour b: %v", s2)
	}
}

func TestWeightedSumWeightValidation(t *testing.T) {
	p := sampleProblem()
	if _, err := WeightedSum(p, []float64{1, 1}); err == nil {
		t.Error("wrong weight count accepted")
	}
	if _, err := WeightedSum(p, []float64{1, -1, 1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := WeightedSum(p, []float64{0, 0, 0}); err == nil {
		t.Error("zero weights accepted")
	}
}

func TestWeightedSumConstantColumn(t *testing.T) {
	// Column c3 is constant: it must not influence the ordering.
	p := sampleProblem()
	with, _ := WeightedSum(p, []float64{1, 1, 1})
	p2 := sampleProblem()
	for i := range p2.Scores {
		p2.Scores[i][2] = 99 // different constant
	}
	without, _ := WeightedSum(p2, []float64{1, 1, 1})
	for i := range with {
		if math.Abs(with[i]-without[i]) > 1e-12 {
			t.Fatalf("constant column affected scores: %v vs %v", with, without)
		}
	}
}

func TestTOPSISAgreesOnDominance(t *testing.T) {
	p := sampleProblem()
	scores, err := TOPSIS(p, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !(scores[2] < scores[0] && scores[2] < scores[1]) {
		t.Fatalf("TOPSIS missed the dominated alternative: %v", scores)
	}
	for _, s := range scores {
		if s < 0 || s > 1 {
			t.Fatalf("closeness %g out of [0,1]", s)
		}
	}
}

func TestTOPSISIdenticalAlternatives(t *testing.T) {
	p := Problem{
		Criteria:     []string{"c"},
		Alternatives: []string{"a", "b"},
		Scores:       [][]float64{{1}, {1}},
	}
	scores, err := TOPSIS(p, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if scores[0] != 0.5 || scores[1] != 0.5 {
		t.Fatalf("identical alternatives should tie at 0.5: %v", scores)
	}
}

func TestPairwiseBasics(t *testing.T) {
	pw, err := NewPairwise(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := pw.Set(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if pw.At(0, 1) != 3 || math.Abs(pw.At(1, 0)-1.0/3.0) > 1e-12 {
		t.Fatal("reciprocal not maintained")
	}
	if err := pw.Set(0, 0, 2); err == nil {
		t.Error("diagonal set accepted")
	}
	if err := pw.Set(0, 1, 0); err == nil {
		t.Error("zero judgment accepted")
	}
	if err := pw.Set(0, 1, 10); err == nil {
		t.Error("judgment beyond Saaty scale accepted")
	}
	if _, err := NewPairwise(1); err == nil {
		t.Error("1x1 pairwise accepted")
	}
}

func TestPrioritiesConsistentMatrix(t *testing.T) {
	// Perfectly consistent judgments recover the weights with CR = 0.
	want := []float64{0.6, 0.3, 0.1}
	pw, err := FromWeights(want)
	if err != nil {
		t.Fatal(err)
	}
	prio, err := pw.Priorities()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(prio.Weights[i]-want[i]) > 1e-6 {
			t.Fatalf("weights = %v, want %v", prio.Weights, want)
		}
	}
	if prio.CR > 1e-9 || !prio.Consistent() {
		t.Fatalf("consistent matrix has CR = %g", prio.CR)
	}
	if math.Abs(prio.LambdaMax-3) > 1e-6 {
		t.Fatalf("lambdaMax = %g, want 3", prio.LambdaMax)
	}
}

func TestPrioritiesSaatyExample(t *testing.T) {
	// Mildly inconsistent 3x3 judgment: CR must be positive but small.
	pw, _ := NewPairwise(3)
	mustSet(t, pw, 0, 1, 2)
	mustSet(t, pw, 0, 2, 5)
	mustSet(t, pw, 1, 2, 2)
	prio, err := pw.Priorities()
	if err != nil {
		t.Fatal(err)
	}
	if prio.CR <= 0 || prio.CR > 0.1 {
		t.Fatalf("CR = %g, want small positive", prio.CR)
	}
	if !(prio.Weights[0] > prio.Weights[1] && prio.Weights[1] > prio.Weights[2]) {
		t.Fatalf("weights not ordered: %v", prio.Weights)
	}
}

func TestPrioritiesInconsistentMatrix(t *testing.T) {
	// Circular judgments: a >> b >> c >> a. CR must exceed 0.1.
	pw, _ := NewPairwise(3)
	mustSet(t, pw, 0, 1, 9)
	mustSet(t, pw, 1, 2, 9)
	mustSet(t, pw, 0, 2, 1.0/9.0)
	prio, err := pw.Priorities()
	if err != nil {
		t.Fatal(err)
	}
	if prio.Consistent() {
		t.Fatalf("circular judgments pass the consistency check: CR = %g", prio.CR)
	}
}

func mustSet(t *testing.T, pw *Pairwise, i, j int, v float64) {
	t.Helper()
	if err := pw.Set(i, j, v); err != nil {
		t.Fatal(err)
	}
}

func TestFromWeightsValidation(t *testing.T) {
	if _, err := FromWeights([]float64{1, 0}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := FromWeights([]float64{1}); err == nil {
		t.Error("single weight accepted")
	}
	// Extreme ratios clamp to the Saaty scale instead of failing.
	pw, err := FromWeights([]float64{100, 1})
	if err != nil {
		t.Fatal(err)
	}
	if pw.At(0, 1) != 9 {
		t.Fatalf("ratio not clamped: %g", pw.At(0, 1))
	}
}

func TestAHPEndToEnd(t *testing.T) {
	p := sampleProblem()
	// Judgments: c2 strongly dominates. Alternative b (best on c2) wins.
	pw, err := FromWeights([]float64{1, 6, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := AHP(pw, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistency.Consistent() {
		t.Fatalf("CR = %g", res.Consistency.CR)
	}
	if !(res.Scores[1] > res.Scores[0] && res.Scores[1] > res.Scores[2]) {
		t.Fatalf("c2-dominant judgments should rank b first: %v", res.Scores)
	}
	var wsum float64
	for _, w := range res.CriteriaWeights {
		wsum += w
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Fatalf("criteria weights sum to %g", wsum)
	}
}

func TestAHPValidation(t *testing.T) {
	p := sampleProblem()
	if _, err := AHP(nil, p); err == nil {
		t.Error("nil judgments accepted")
	}
	pw, _ := NewPairwise(2)
	if _, err := AHP(pw, p); err == nil {
		t.Error("judgment size mismatch accepted")
	}
}

func TestPerturb(t *testing.T) {
	pw, _ := FromWeights([]float64{0.5, 0.3, 0.2})
	rng := stats.NewRNG(4)
	noisy, err := Perturb(pw, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if math.Abs(noisy.At(i, j)-pw.At(i, j)) > 1e-12 {
				changed = true
			}
			if math.Abs(noisy.At(i, j)*noisy.At(j, i)-1) > 1e-9 {
				t.Fatal("perturbed matrix lost reciprocity")
			}
			if noisy.At(i, j) < 1.0/9.0-1e-9 || noisy.At(i, j) > 9+1e-9 {
				t.Fatal("perturbed judgment escaped Saaty scale")
			}
		}
	}
	if !changed {
		t.Fatal("perturbation changed nothing")
	}
	// Zero sigma is the identity.
	same, err := Perturb(pw, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if same.At(i, j) != pw.At(i, j) {
				t.Fatal("sigma=0 should not change judgments")
			}
		}
	}
}

func TestPerturbValidation(t *testing.T) {
	pw, _ := NewPairwise(2)
	if _, err := Perturb(nil, 0.1, stats.NewRNG(1)); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := Perturb(pw, -1, stats.NewRNG(1)); err == nil {
		t.Error("negative sigma accepted")
	}
	if _, err := Perturb(pw, 0.1, nil); err == nil {
		t.Error("nil RNG accepted")
	}
}

func TestMethodsAgreeOnClearWinner(t *testing.T) {
	// When one alternative dominates everywhere, WSM, TOPSIS and AHP must
	// all rank it first: the method-independence sanity check.
	p := Problem{
		Criteria:     []string{"c1", "c2"},
		Alternatives: []string{"best", "mid", "worst"},
		Scores: [][]float64{
			{0.9, 0.9},
			{0.5, 0.5},
			{0.1, 0.1},
		},
	}
	weights := []float64{1, 2}
	wsm, err := WeightedSum(p, weights)
	if err != nil {
		t.Fatal(err)
	}
	top, err := TOPSIS(p, weights)
	if err != nil {
		t.Fatal(err)
	}
	pw, _ := FromWeights(weights)
	ahp, err := AHP(pw, p)
	if err != nil {
		t.Fatal(err)
	}
	for name, scores := range map[string][]float64{"wsm": wsm, "topsis": top, "ahp": ahp.Scores} {
		if !(scores[0] > scores[1] && scores[1] > scores[2]) {
			t.Errorf("%s failed to rank the dominating alternative first: %v", name, scores)
		}
	}
}

func TestWeightedProductDominance(t *testing.T) {
	p := sampleProblem()
	scores, err := WeightedProduct(p, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !(scores[2] < scores[0] && scores[2] < scores[1]) {
		t.Fatalf("WPM missed the dominated alternative: %v", scores)
	}
	for _, s := range scores {
		if s <= 0 || s > 1 {
			t.Fatalf("WPM score %g out of (0,1]", s)
		}
	}
	// Weight tilts work as in WSM.
	s1, _ := WeightedProduct(p, []float64{10, 1, 1})
	if !(s1[0] > s1[1]) {
		t.Fatalf("c1-heavy WPM should favour a: %v", s1)
	}
}

func TestWeightedProductValidation(t *testing.T) {
	p := sampleProblem()
	if _, err := WeightedProduct(p, []float64{1, 1}); err == nil {
		t.Error("wrong weight count accepted")
	}
	if _, err := WeightedProduct(Problem{}, []float64{1}); err == nil {
		t.Error("invalid problem accepted")
	}
}

func TestWeightedProductPunishesWeakestCriterion(t *testing.T) {
	// WPM's defining property vs WSM: a near-zero score on any criterion
	// drags the product down harder than the sum.
	// A third anchor alternative keeps min-max normalisation from
	// degenerating to {0, 1} columns.
	p := Problem{
		Criteria:     []string{"c1", "c2"},
		Alternatives: []string{"balanced", "lopsided", "anchor"},
		Scores: [][]float64{
			{0.6, 0.6},
			{1.0, 0.0},
			{0.0, 0.0},
		},
	}
	weights := []float64{1, 1}
	wsm, err := WeightedSum(p, weights)
	if err != nil {
		t.Fatal(err)
	}
	wpm, err := WeightedProduct(p, weights)
	if err != nil {
		t.Fatal(err)
	}
	// Under WSM the two are comparable (0.8 vs 0.5); under WPM the
	// lopsided alternative's zero criterion collapses its product.
	if wpm[1] >= wpm[0] {
		t.Fatalf("WPM should punish the lopsided alternative: %v", wpm)
	}
	if wpm[0]-wpm[1] <= wsm[0]-wsm[1] {
		t.Fatalf("WPM gap (%g) should exceed the WSM gap (%g)",
			wpm[0]-wpm[1], wsm[0]-wsm[1])
	}
}
