// Package mcda implements the multi-criteria decision analysis methods the
// paper uses to validate metric selection: the Analytic Hierarchy Process
// (pairwise expert judgments, principal-eigenvector priorities, Saaty
// consistency ratio) as the primary method, with weighted-sum and TOPSIS
// as baselines to check that conclusions are not artefacts of one method.
package mcda

import (
	"errors"
	"fmt"
	"math"

	"github.com/dsn2015/vdbench/internal/stats"
)

// Problem is a generic MCDA decision problem: alternatives scored on
// benefit criteria (higher raw score is better on every criterion;
// cost-like criteria must be inverted by the caller before building the
// problem).
type Problem struct {
	// Criteria names the decision criteria.
	Criteria []string
	// Alternatives names the options being ranked.
	Alternatives []string
	// Scores[i][j] is the raw performance of alternative i on criterion j.
	Scores [][]float64
}

// Validate reports whether the problem is well-formed.
func (p Problem) Validate() error {
	if len(p.Criteria) == 0 {
		return errors.New("mcda: no criteria")
	}
	if len(p.Alternatives) == 0 {
		return errors.New("mcda: no alternatives")
	}
	if len(p.Scores) != len(p.Alternatives) {
		return fmt.Errorf("mcda: %d score rows for %d alternatives", len(p.Scores), len(p.Alternatives))
	}
	for i, row := range p.Scores {
		if len(row) != len(p.Criteria) {
			return fmt.Errorf("mcda: alternative %d has %d scores for %d criteria", i, len(row), len(p.Criteria))
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("mcda: score (%d,%d) is not finite", i, j)
			}
		}
	}
	return nil
}

// checkWeights validates a weight vector against the problem.
func (p Problem) checkWeights(weights []float64) error {
	if len(weights) != len(p.Criteria) {
		return fmt.Errorf("mcda: %d weights for %d criteria", len(weights), len(p.Criteria))
	}
	var sum float64
	for _, w := range weights {
		if w < 0 {
			return fmt.Errorf("mcda: negative weight %g", w)
		}
		sum += w
	}
	if sum == 0 {
		return errors.New("mcda: weights sum to zero")
	}
	return nil
}

// normalizeColumnsMinMax rescales each criterion column to [0,1]
// ((x-min)/(max-min)); constant columns map to 0.5 (no discriminating
// information either way).
func normalizeColumnsMinMax(p Problem) [][]float64 {
	nAlt, nCrit := len(p.Alternatives), len(p.Criteria)
	out := make([][]float64, nAlt)
	for i := range out {
		out[i] = make([]float64, nCrit)
	}
	for j := 0; j < nCrit; j++ {
		lo, hi := p.Scores[0][j], p.Scores[0][j]
		for i := 1; i < nAlt; i++ {
			if p.Scores[i][j] < lo {
				lo = p.Scores[i][j]
			}
			if p.Scores[i][j] > hi {
				hi = p.Scores[i][j]
			}
		}
		for i := 0; i < nAlt; i++ {
			if hi == lo {
				out[i][j] = 0.5
			} else {
				out[i][j] = (p.Scores[i][j] - lo) / (hi - lo)
			}
		}
	}
	return out
}

// WeightedSum ranks alternatives by the weighted sum of min-max normalised
// criterion scores. Returns one aggregate score per alternative in [0,1].
func WeightedSum(p Problem, weights []float64) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.checkWeights(weights); err != nil {
		return nil, err
	}
	w := append([]float64(nil), weights...)
	var sum float64
	for _, x := range w {
		sum += x
	}
	for i := range w {
		w[i] /= sum
	}
	norm := normalizeColumnsMinMax(p)
	out := make([]float64, len(p.Alternatives))
	for i := range out {
		var s float64
		for j := range p.Criteria {
			s += w[j] * norm[i][j]
		}
		out[i] = s
	}
	return out, nil
}

// TOPSIS ranks alternatives by closeness to the ideal solution: vector-
// normalised weighted scores, Euclidean distances to the per-criterion
// best (ideal) and worst (anti-ideal) points, closeness = d⁻/(d⁺+d⁻).
// Returns closeness coefficients in [0,1], higher is better.
func TOPSIS(p Problem, weights []float64) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.checkWeights(weights); err != nil {
		return nil, err
	}
	nAlt, nCrit := len(p.Alternatives), len(p.Criteria)
	w := append([]float64(nil), weights...)
	var wsum float64
	for _, x := range w {
		wsum += x
	}
	for i := range w {
		w[i] /= wsum
	}
	// Vector normalisation per column, then weighting.
	v := make([][]float64, nAlt)
	for i := range v {
		v[i] = make([]float64, nCrit)
	}
	for j := 0; j < nCrit; j++ {
		var ss float64
		for i := 0; i < nAlt; i++ {
			ss += p.Scores[i][j] * p.Scores[i][j]
		}
		den := math.Sqrt(ss)
		for i := 0; i < nAlt; i++ {
			if den == 0 {
				v[i][j] = 0
			} else {
				v[i][j] = w[j] * p.Scores[i][j] / den
			}
		}
	}
	ideal := make([]float64, nCrit)
	anti := make([]float64, nCrit)
	for j := 0; j < nCrit; j++ {
		ideal[j], anti[j] = v[0][j], v[0][j]
		for i := 1; i < nAlt; i++ {
			if v[i][j] > ideal[j] {
				ideal[j] = v[i][j]
			}
			if v[i][j] < anti[j] {
				anti[j] = v[i][j]
			}
		}
	}
	out := make([]float64, nAlt)
	for i := 0; i < nAlt; i++ {
		var dPlus, dMinus float64
		for j := 0; j < nCrit; j++ {
			dPlus += (v[i][j] - ideal[j]) * (v[i][j] - ideal[j])
			dMinus += (v[i][j] - anti[j]) * (v[i][j] - anti[j])
		}
		dPlus = math.Sqrt(dPlus)
		dMinus = math.Sqrt(dMinus)
		if dPlus+dMinus == 0 {
			out[i] = 0.5 // all alternatives identical
		} else {
			out[i] = dMinus / (dPlus + dMinus)
		}
	}
	return out, nil
}

// Perturb returns a copy of the pairwise matrix with each
// upper-triangular judgment multiplied by exp(sigma·N(0,1)) (log-normal
// noise), reciprocals maintained. It models inter-expert disagreement for
// the sensitivity analysis.
func Perturb(pw *Pairwise, sigma float64, rng *stats.RNG) (*Pairwise, error) {
	if pw == nil {
		return nil, errors.New("mcda: nil pairwise matrix")
	}
	if sigma < 0 {
		return nil, fmt.Errorf("mcda: negative sigma %g", sigma)
	}
	if rng == nil {
		return nil, errors.New("mcda: nil RNG")
	}
	out, err := NewPairwise(pw.N())
	if err != nil {
		return nil, err
	}
	for i := 0; i < pw.N(); i++ {
		for j := i + 1; j < pw.N(); j++ {
			noisy := pw.At(i, j) * math.Exp(sigma*rng.NormFloat64())
			// Clamp to the Saaty scale bounds to stay a plausible judgment.
			if noisy < 1.0/9.0 {
				noisy = 1.0 / 9.0
			}
			if noisy > 9 {
				noisy = 9
			}
			if err := out.Set(i, j, noisy); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// WeightedProduct ranks alternatives by the weighted product of min-max
// normalised criterion scores (WPM): Π score_j^(w_j). A small epsilon
// keeps zero scores from annihilating an alternative outright, matching
// common practice. Returns one aggregate score per alternative in (0, 1].
func WeightedProduct(p Problem, weights []float64) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.checkWeights(weights); err != nil {
		return nil, err
	}
	w := append([]float64(nil), weights...)
	var sum float64
	for _, x := range w {
		sum += x
	}
	for i := range w {
		w[i] /= sum
	}
	const eps = 1e-3
	norm := normalizeColumnsMinMax(p)
	out := make([]float64, len(p.Alternatives))
	for i := range out {
		logScore := 0.0
		for j := range p.Criteria {
			s := norm[i][j]
			if s < eps {
				s = eps
			}
			logScore += w[j] * math.Log(s)
		}
		out[i] = math.Exp(logScore)
	}
	return out, nil
}
