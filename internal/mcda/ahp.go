package mcda

import (
	"errors"
	"fmt"

	"github.com/dsn2015/vdbench/internal/linalg"
)

// Pairwise is a positive reciprocal pairwise-comparison matrix on the
// Saaty 1–9 scale: entry (i,j) states how much more important element i is
// than element j. The diagonal is fixed at 1 and (j,i) is maintained as
// the reciprocal of (i,j).
type Pairwise struct {
	m *linalg.Matrix
}

// NewPairwise returns an n×n identity-judgment matrix (everything equally
// important).
func NewPairwise(n int) (*Pairwise, error) {
	if n < 2 {
		return nil, fmt.Errorf("mcda: pairwise matrix needs n >= 2, got %d", n)
	}
	m, err := linalg.New(n, n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, 1)
		}
	}
	return &Pairwise{m: m}, nil
}

// N returns the matrix dimension.
func (p *Pairwise) N() int { return p.m.Rows() }

// At returns judgment (i, j).
func (p *Pairwise) At(i, j int) float64 { return p.m.At(i, j) }

// Set records that element i is v times as important as element j
// (1/9 <= v <= 9, v > 0) and maintains the reciprocal entry. Setting a
// diagonal element is an error.
func (p *Pairwise) Set(i, j int, v float64) error {
	if i == j {
		return errors.New("mcda: cannot set a diagonal judgment")
	}
	if v <= 0 {
		return fmt.Errorf("mcda: judgment must be positive, got %g", v)
	}
	if v < 1.0/9.0-1e-12 || v > 9+1e-12 {
		return fmt.Errorf("mcda: judgment %g outside the Saaty scale [1/9, 9]", v)
	}
	p.m.Set(i, j, v)
	p.m.Set(j, i, 1/v)
	return nil
}

// FromWeights builds the perfectly consistent pairwise matrix implied by a
// positive weight vector (a_ij = w_i / w_j), clamped to the Saaty scale.
// It is the canonical way to encode an expert preference profile.
func FromWeights(weights []float64) (*Pairwise, error) {
	n := len(weights)
	pw, err := NewPairwise(n)
	if err != nil {
		return nil, err
	}
	for _, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("mcda: weights must be positive, got %g", w)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			r := weights[i] / weights[j]
			if r < 1.0/9.0 {
				r = 1.0 / 9.0
			}
			if r > 9 {
				r = 9
			}
			if err := pw.Set(i, j, r); err != nil {
				return nil, err
			}
		}
	}
	return pw, nil
}

// randomIndex is Saaty's RI table for n = 1..15 (0-indexed by n-1). It
// calibrates the consistency ratio against random matrices.
var randomIndex = []float64{
	0, 0, 0.58, 0.90, 1.12, 1.24, 1.32, 1.41, 1.45, 1.49,
	1.51, 1.54, 1.56, 1.57, 1.58,
}

// Priorities holds the result of an AHP priority derivation.
type Priorities struct {
	// Weights is the principal eigenvector normalised to sum to 1.
	Weights []float64
	// LambdaMax is the principal eigenvalue (>= n; equality iff perfectly
	// consistent).
	LambdaMax float64
	// CI is the consistency index (lambdaMax - n) / (n - 1).
	CI float64
	// CR is the consistency ratio CI / RI(n). Judgments with CR > 0.1 are
	// conventionally considered too inconsistent to use.
	CR float64
}

// Consistent reports whether the judgments pass Saaty's CR < 0.1 rule.
func (p Priorities) Consistent() bool { return p.CR < 0.1 }

// Priorities derives the priority vector and consistency diagnostics from
// the pairwise judgments.
func (p *Pairwise) Priorities() (Priorities, error) {
	n := p.N()
	res, err := linalg.PowerIteration(p.m, 10000, 1e-12)
	if err != nil {
		return Priorities{}, fmt.Errorf("mcda: priority derivation: %w", err)
	}
	ci := (res.Eigenvalue - float64(n)) / float64(n-1)
	if ci < 0 {
		ci = 0 // numerical guard: lambdaMax >= n analytically
	}
	var cr float64
	if n-1 < len(randomIndex) && randomIndex[n-1] > 0 {
		cr = ci / randomIndex[n-1]
	} else if n <= 2 {
		cr = 0 // 2x2 reciprocal matrices are always consistent
	} else {
		return Priorities{}, fmt.Errorf("mcda: no random index for n = %d", n)
	}
	return Priorities{
		Weights:   res.Eigenvector,
		LambdaMax: res.Eigenvalue,
		CI:        ci,
		CR:        cr,
	}, nil
}

// AHPResult is the outcome of a full AHP run over a decision problem.
type AHPResult struct {
	// CriteriaWeights are the priorities derived from the expert pairwise
	// judgments.
	CriteriaWeights []float64
	// Scores are the aggregate alternative scores under those weights
	// (ratings-mode AHP: min-max normalised criterion performance).
	Scores []float64
	// Consistency carries the judgment-consistency diagnostics.
	Consistency Priorities
}

// AHP runs the ratings variant of the Analytic Hierarchy Process: criteria
// weights come from the pairwise expert judgments; alternatives are scored
// by their normalised measured performance on each criterion. This is the
// standard formulation when alternative performance is measured (as here)
// rather than judged pairwise.
func AHP(judgments *Pairwise, p Problem) (AHPResult, error) {
	if judgments == nil {
		return AHPResult{}, errors.New("mcda: nil judgments")
	}
	if err := p.Validate(); err != nil {
		return AHPResult{}, err
	}
	if judgments.N() != len(p.Criteria) {
		return AHPResult{}, fmt.Errorf("mcda: %d×%d judgments for %d criteria", judgments.N(), judgments.N(), len(p.Criteria))
	}
	prio, err := judgments.Priorities()
	if err != nil {
		return AHPResult{}, err
	}
	scores, err := WeightedSum(p, prio.Weights)
	if err != nil {
		return AHPResult{}, err
	}
	return AHPResult{
		CriteriaWeights: prio.Weights,
		Scores:          scores,
		Consistency:     prio,
	}, nil
}
