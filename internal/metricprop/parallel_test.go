package metricprop

import (
	"reflect"
	"testing"

	"github.com/dsn2015/vdbench/internal/stats"
)

// testConfig is a reduced-effort configuration for the cross-worker
// equality matrix (same code paths, far fewer samples).
func testConfig(workers int) Config {
	return Config{
		MonotonicitySamples:  60,
		WorkloadSize:         150,
		StabilityTrials:      15,
		DiscriminationTrials: 20,
		Tolerance:            1e-9,
		Workers:              workers,
	}
}

// TestAnalyzeCatalogIdenticalAcrossWorkers pins the parallel catalogue
// analysis to the serial one, profile for profile, across seeds and
// worker counts.
func TestAnalyzeCatalogIdenticalAcrossWorkers(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		want, err := AnalyzeCatalog(testConfig(1), stats.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 13} {
			got, err := AnalyzeCatalog(testConfig(workers), stats.NewRNG(seed))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d workers %d: profiles differ from serial run", seed, workers)
			}
		}
	}
}

func TestConfigRejectsNegativeWorkers(t *testing.T) {
	cfg := testConfig(-1)
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative Workers accepted")
	}
}
