// Package metricprop analyses candidate benchmark metrics against the
// characteristics of a good metric for the vulnerability detection domain.
//
// The paper's first contribution is a qualitative analysis of a large
// metric set against such characteristics. This package turns each
// characteristic into a programmatic check, so the resulting property table
// (experiment E2) is computed evidence rather than assertion:
//
//   - boundedness: the metric has a finite theoretical range
//   - definedness: how often the metric is defined on realistic and
//     degenerate confusion matrices
//   - monotonicity: converting a miss into a detection never worsens the
//     metric; adding a false alarm never improves it
//   - prevalence invariance: for fixed intrinsic tool quality (TPR, FPR),
//     the metric does not drift as workload prevalence changes
//   - chance correction: all uninformative classifiers (TPR == FPR) map to
//     one constant value
//   - stability: low sampling variance on finite workloads
//   - discrimination: ability to order two close tools correctly from one
//     sampled workload
package metricprop

import (
	"errors"
	"fmt"
	"math"

	"github.com/dsn2015/vdbench/internal/metrics"
	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/workpool"
)

// Config controls the sampling effort and tolerances of the analysis.
type Config struct {
	// MonotonicitySamples is the number of random matrices used for the
	// monotonicity checks.
	MonotonicitySamples int
	// WorkloadSize is the synthetic workload size used by the prevalence,
	// stability and discrimination checks.
	WorkloadSize int
	// StabilityTrials is the number of sampled workloads for the stability
	// estimate.
	StabilityTrials int
	// DiscriminationTrials is the number of sampled workloads for the
	// discrimination estimate.
	DiscriminationTrials int
	// Tolerance is the absolute tolerance used when deciding invariance
	// properties from sampled spreads.
	Tolerance float64
	// Workers bounds AnalyzeCatalog's concurrency: 0 selects
	// runtime.GOMAXPROCS(0), 1 forces serial execution. The profiles are
	// byte-identical for every value (one pre-split RNG stream per
	// metric, results merged in catalogue order).
	Workers int
}

// DefaultConfig returns the configuration used by experiment E2.
func DefaultConfig() Config {
	return Config{
		MonotonicitySamples:  2000,
		WorkloadSize:         2000,
		StabilityTrials:      200,
		DiscriminationTrials: 400,
		Tolerance:            1e-9,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.MonotonicitySamples <= 0 || c.WorkloadSize <= 0 || c.StabilityTrials <= 0 || c.DiscriminationTrials <= 0 {
		return fmt.Errorf("metricprop: all sample counts must be positive: %+v", c)
	}
	if c.Tolerance <= 0 {
		return fmt.Errorf("metricprop: tolerance must be positive, got %g", c.Tolerance)
	}
	if c.Workers < 0 {
		return fmt.Errorf("metricprop: workers must be non-negative, got %d", c.Workers)
	}
	return nil
}

// Profile is the computed property profile of one metric.
type Profile struct {
	MetricID string

	// Bounded is true when the declared theoretical range is finite.
	Bounded bool

	// DefinednessRate is the fraction of sampled matrices (including
	// deliberately degenerate ones) on which the metric is defined.
	DefinednessRate float64

	// MonotoneDetections is true when converting a miss (FN) into a
	// detection (TP) never worsened the metric in any sampled matrix.
	MonotoneDetections bool
	// MonotoneFalseAlarms is true when converting a true negative into a
	// false alarm (FP) never improved the metric in any sampled matrix.
	MonotoneFalseAlarms bool

	// PrevalenceSpread is the max-min spread of the metric across the
	// prevalence sweep at fixed tool quality. PrevalenceInvariant is true
	// when the spread is below tolerance.
	PrevalenceSpread    float64
	PrevalenceInvariant bool

	// ChanceSpread is the max-min spread of the metric across
	// uninformative classifiers (TPR == FPR) of varying rate and
	// prevalence. ChanceCorrected is true when the spread is below
	// tolerance, i.e. all uninformative classifiers collapse to one value.
	ChanceSpread    float64
	ChanceCorrected bool

	// Stability is the standard deviation of the metric across sampled
	// workloads at fixed tool quality, normalised by the metric's range
	// when bounded (smaller is more stable).
	Stability float64

	// Discrimination is the fraction of sampled workloads on which the
	// metric ordered a strictly better tool above a strictly worse one.
	Discrimination float64

	// MissSensitivity and FalseAlarmSensitivity quantify which error type
	// the metric emphasises. Both are the product of (a) the metric's
	// share of reaction attributable to that error type when 10% of
	// detections become misses vs. false alarms appear on 10% of clean
	// instances, and (b) a responsiveness factor that zeroes out metrics
	// that barely react at all. Values are in [0, 1] and comparable across
	// metrics regardless of their ranges: recall scores (1, 0), precision
	// close to (0.1, 0.9), balanced metrics near (0.5, 0.5).
	MissSensitivity       float64
	FalseAlarmSensitivity float64
}

// ToolQuality describes the intrinsic quality of a (simulated) detection
// tool: the probability it reports a vulnerable instance and the
// probability it reports a clean one.
type ToolQuality struct {
	TPR float64
	FPR float64
}

// Validate reports whether the quality values are probabilities.
func (q ToolQuality) Validate() error {
	if q.TPR < 0 || q.TPR > 1 || q.FPR < 0 || q.FPR > 1 {
		return fmt.Errorf("metricprop: tool quality out of [0,1]: %+v", q)
	}
	return nil
}

// reference tool qualities used by the sweeps. The pair used by the
// discrimination check is deliberately close: the better tool dominates in
// both dimensions but only slightly.
var (
	refQuality    = ToolQuality{TPR: 0.70, FPR: 0.10}
	betterQuality = ToolQuality{TPR: 0.72, FPR: 0.09}
	worseQuality  = ToolQuality{TPR: 0.68, FPR: 0.11}

	prevalenceSweep = []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.7, 0.9}
	chanceRates     = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
)

// Analyze computes the property profile of m. The analysis is deterministic
// given the RNG seed.
func Analyze(m metrics.Metric, cfg Config, rng *stats.RNG) (Profile, error) {
	if err := cfg.Validate(); err != nil {
		return Profile{}, err
	}
	if rng == nil {
		return Profile{}, errors.New("metricprop: nil RNG")
	}
	p := Profile{
		MetricID: m.ID,
		Bounded:  m.Bounded(),
	}
	p.DefinednessRate = definednessRate(m, rng.Split())
	p.MonotoneDetections, p.MonotoneFalseAlarms = monotonicity(m, cfg, rng.Split())
	p.PrevalenceSpread = prevalenceSpread(m, cfg)
	p.PrevalenceInvariant = p.PrevalenceSpread <= cfg.Tolerance
	p.ChanceSpread = chanceSpread(m)
	p.ChanceCorrected = p.ChanceSpread <= cfg.Tolerance
	var err error
	p.Stability, err = stability(m, cfg, rng.Split())
	if err != nil {
		return Profile{}, err
	}
	p.Discrimination, err = discrimination(m, cfg, rng.Split())
	if err != nil {
		return Profile{}, err
	}
	p.MissSensitivity, p.FalseAlarmSensitivity = sensitivities(m, cfg)
	return p, nil
}

// sensitivities measures the goodness drops when (a) 10% of detections
// become misses and (b) false alarms appear on 10% of clean instances, at
// the reference operating point, then converts the two drops into
// comparable emphasis scores: share-of-reaction times a responsiveness
// factor. Metrics undefined at any of the three points score zero.
func sensitivities(m metrics.Metric, cfg Config) (miss, fa float64) {
	base := expectedMatrix(refQuality, cfg.WorkloadSize, 0.35)
	baseVal, err := m.Value(base)
	if err != nil {
		return 0, 0
	}
	shift := base.TP / 10
	if shift == 0 {
		shift = 1
	}
	missed := metrics.Confusion{TP: base.TP - shift, FN: base.FN + shift, FP: base.FP, TN: base.TN}
	extra := base.TN / 10
	if extra == 0 {
		extra = 1
	}
	alarmed := metrics.Confusion{TP: base.TP, FN: base.FN, FP: base.FP + extra, TN: base.TN - extra}

	// Normalise the drops: by range for bounded metrics, relative to the
	// base value for unbounded ones (the only scale they have).
	norm := 1.0
	if m.Bounded() && m.Hi > m.Lo {
		norm = m.Hi - m.Lo
	} else {
		norm = abs(baseVal) + 1
	}
	var missDelta, faDelta float64
	if v, err := m.Value(missed); err == nil {
		missDelta = (m.Goodness(baseVal) - m.Goodness(v)) / norm
	}
	if v, err := m.Value(alarmed); err == nil {
		faDelta = (m.Goodness(baseVal) - m.Goodness(v)) / norm
	}
	if missDelta < 0 {
		missDelta = 0
	}
	if faDelta < 0 {
		faDelta = 0
	}
	total := missDelta + faDelta
	if total == 0 {
		return 0, 0
	}
	// Responsiveness: a metric whose combined reaction to 10% degradations
	// is below 5% of its scale barely registers tool differences.
	responsiveness := total / 0.05
	if responsiveness > 1 {
		responsiveness = 1
	}
	return responsiveness * missDelta / total, responsiveness * faDelta / total
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// AnalyzeCatalog profiles every metric in the catalogue with one shared
// config. Results are in catalogue order. Metrics are analysed
// concurrently up to cfg.Workers; each metric's RNG stream is split off
// the caller's generator in catalogue order before any analysis starts,
// so the profiles are byte-identical for every worker count (and to the
// historical serial loop, which split in the same order).
func AnalyzeCatalog(cfg Config, rng *stats.RNG) ([]Profile, error) {
	if rng == nil {
		return nil, errors.New("metricprop: nil RNG")
	}
	cat := metrics.Catalog()
	rngs := make([]*stats.RNG, len(cat))
	for i := range rngs {
		rngs[i] = rng.Split()
	}
	out := make([]Profile, len(cat))
	err := workpool.New(cfg.Workers).ForEach(len(cat), func(_, i int) error {
		p, err := Analyze(cat[i], cfg, rngs[i])
		if err != nil {
			return fmt.Errorf("analyze %s: %w", cat[i].ID, err)
		}
		out[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// definednessRate evaluates the metric on a fixed family of degenerate
// matrices (every subset of cells zeroed) plus random dense matrices, and
// returns the fraction on which it is defined.
func definednessRate(m metrics.Metric, rng *stats.RNG) float64 {
	var total, defined int
	// All 16 zero-patterns with remaining cells set to a nominal count.
	for mask := 0; mask < 16; mask++ {
		c := metrics.Confusion{}
		if mask&1 != 0 {
			c.TP = 25
		}
		if mask&2 != 0 {
			c.FP = 25
		}
		if mask&4 != 0 {
			c.FN = 25
		}
		if mask&8 != 0 {
			c.TN = 25
		}
		total++
		if _, err := m.Value(c); err == nil {
			defined++
		}
	}
	// Random dense matrices: these should essentially always be defined.
	for i := 0; i < 200; i++ {
		c := metrics.Confusion{
			TP: 1 + rng.Intn(100),
			FP: 1 + rng.Intn(100),
			FN: 1 + rng.Intn(100),
			TN: 1 + rng.Intn(100),
		}
		total++
		if _, err := m.Value(c); err == nil {
			defined++
		}
	}
	return float64(defined) / float64(total)
}

// monotonicity samples random matrices and applies the two elementary
// improving/worsening moves, checking the metric's goodness direction.
func monotonicity(m metrics.Metric, cfg Config, rng *stats.RNG) (detectionsOK, falseAlarmsOK bool) {
	detectionsOK, falseAlarmsOK = true, true
	const eps = 1e-12
	for i := 0; i < cfg.MonotonicitySamples; i++ {
		c := metrics.Confusion{
			TP: 1 + rng.Intn(60),
			FP: 1 + rng.Intn(60),
			FN: 1 + rng.Intn(60),
			TN: 1 + rng.Intn(60),
		}
		base, err := m.Value(c)
		if err != nil {
			continue
		}
		// Miss -> detection: TP+1, FN-1 (same totals, same prevalence).
		improved := metrics.Confusion{TP: c.TP + 1, FP: c.FP, FN: c.FN - 1, TN: c.TN}
		if v, err := m.Value(improved); err == nil {
			if m.Goodness(v) < m.Goodness(base)-eps {
				detectionsOK = false
			}
		}
		// Clean -> false alarm: FP+1, TN-1.
		worsened := metrics.Confusion{TP: c.TP, FP: c.FP + 1, FN: c.FN, TN: c.TN - 1}
		if v, err := m.Value(worsened); err == nil {
			if m.Goodness(v) > m.Goodness(base)+eps {
				falseAlarmsOK = false
			}
		}
	}
	return detectionsOK, falseAlarmsOK
}

// expectedMatrix builds the exact-expectation confusion matrix for a tool
// of quality q on a workload of the given size and prevalence. Rounding is
// to nearest; totals are preserved.
func expectedMatrix(q ToolQuality, size int, prevalence float64) metrics.Confusion {
	pos := int(math.Round(float64(size) * prevalence))
	neg := size - pos
	tp := int(math.Round(float64(pos) * q.TPR))
	fp := int(math.Round(float64(neg) * q.FPR))
	return metrics.Confusion{TP: tp, FN: pos - tp, FP: fp, TN: neg - fp}
}

// prevalenceSpread computes the metric for the reference tool across the
// prevalence sweep and returns the max-min spread. Undefined points are
// skipped; a metric undefined on more than half the sweep gets +Inf spread
// (it cannot be relied on across prevalence regimes at all).
func prevalenceSpread(m metrics.Metric, cfg Config) float64 {
	// A large fixed workload keeps integer rounding noise far below any
	// meaningful spread.
	const size = 200000
	var vals []float64
	for _, p := range prevalenceSweep {
		c := expectedMatrix(refQuality, size, p)
		if v, err := m.Value(c); err == nil {
			vals = append(vals, v)
		}
	}
	if len(vals) < len(prevalenceSweep)/2 {
		return math.Inf(1)
	}
	lo, hi, err := stats.MinMax(vals)
	if err != nil {
		return math.Inf(1)
	}
	spread := hi - lo
	// Integer rounding on the 200k-instance matrix perturbs rates by
	// ~1e-5; treat spreads at that scale as zero.
	if spread < 1e-4 {
		return 0
	}
	return spread
}

// chanceSpread evaluates the metric on uninformative classifiers
// (TPR == FPR == r) across rates and prevalences, returning the max-min
// spread of the defined values. A chance-corrected metric collapses all of
// them to a single constant.
func chanceSpread(m metrics.Metric) float64 {
	const size = 200000
	var vals []float64
	for _, r := range chanceRates {
		for _, p := range prevalenceSweep {
			c := expectedMatrix(ToolQuality{TPR: r, FPR: r}, size, p)
			if v, err := m.Value(c); err == nil {
				vals = append(vals, v)
			}
		}
	}
	if len(vals) == 0 {
		return math.Inf(1)
	}
	lo, hi, err := stats.MinMax(vals)
	if err != nil {
		return math.Inf(1)
	}
	spread := hi - lo
	if spread < 1e-4 {
		return 0
	}
	return spread
}

// sampleMatrix draws a binomially sampled confusion matrix for a tool of
// quality q on a workload with the given positives/negatives split.
func sampleMatrix(rng *stats.RNG, q ToolQuality, positives, negatives int) metrics.Confusion {
	var c metrics.Confusion
	for i := 0; i < positives; i++ {
		if rng.Bernoulli(q.TPR) {
			c.TP++
		} else {
			c.FN++
		}
	}
	for i := 0; i < negatives; i++ {
		if rng.Bernoulli(q.FPR) {
			c.FP++
		} else {
			c.TN++
		}
	}
	return c
}

// stability estimates the sampling standard deviation of the metric at the
// reference quality and 0.35 prevalence, normalised by range when bounded.
func stability(m metrics.Metric, cfg Config, rng *stats.RNG) (float64, error) {
	pos := int(math.Round(float64(cfg.WorkloadSize) * 0.35))
	neg := cfg.WorkloadSize - pos
	var vals []float64
	for i := 0; i < cfg.StabilityTrials; i++ {
		c := sampleMatrix(rng, refQuality, pos, neg)
		if v, err := m.Value(c); err == nil {
			vals = append(vals, v)
		}
	}
	if len(vals) < 2 {
		return math.Inf(1), nil
	}
	sd, err := stats.StdDev(vals)
	if err != nil {
		return 0, err
	}
	if m.Bounded() && m.Hi > m.Lo {
		return sd / (m.Hi - m.Lo), nil
	}
	return sd, nil
}

// discrimination estimates how often the metric orders the strictly better
// tool above the strictly worse one when both are evaluated on the same
// sampled workload.
func discrimination(m metrics.Metric, cfg Config, rng *stats.RNG) (float64, error) {
	pos := int(math.Round(float64(cfg.WorkloadSize) * 0.35))
	neg := cfg.WorkloadSize - pos
	correct, decided := 0, 0
	for i := 0; i < cfg.DiscriminationTrials; i++ {
		cBetter := sampleMatrix(rng, betterQuality, pos, neg)
		cWorse := sampleMatrix(rng, worseQuality, pos, neg)
		vb, err1 := m.Value(cBetter)
		vw, err2 := m.Value(cWorse)
		if err1 != nil || err2 != nil {
			continue
		}
		decided++
		if m.Better(vb, vw) {
			correct++
		}
	}
	if decided == 0 {
		return 0, nil
	}
	return float64(correct) / float64(decided), nil
}
