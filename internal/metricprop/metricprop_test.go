package metricprop

import (
	"math"
	"testing"

	"github.com/dsn2015/vdbench/internal/metrics"
	"github.com/dsn2015/vdbench/internal/stats"
)

// fastConfig keeps unit tests quick while exercising every code path.
func fastConfig() Config {
	return Config{
		MonotonicitySamples:  300,
		WorkloadSize:         600,
		StabilityTrials:      60,
		DiscriminationTrials: 80,
		Tolerance:            1e-9,
	}
}

func analyze(t *testing.T, id string) Profile {
	t.Helper()
	p, err := Analyze(metrics.MustByID(id), fastConfig(), stats.NewRNG(11))
	if err != nil {
		t.Fatalf("Analyze(%s): %v", id, err)
	}
	return p
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{MonotonicitySamples: 0, WorkloadSize: 1, StabilityTrials: 1, DiscriminationTrials: 1, Tolerance: 1},
		{MonotonicitySamples: 1, WorkloadSize: 0, StabilityTrials: 1, DiscriminationTrials: 1, Tolerance: 1},
		{MonotonicitySamples: 1, WorkloadSize: 1, StabilityTrials: 0, DiscriminationTrials: 1, Tolerance: 1},
		{MonotonicitySamples: 1, WorkloadSize: 1, StabilityTrials: 1, DiscriminationTrials: 0, Tolerance: 1},
		{MonotonicitySamples: 1, WorkloadSize: 1, StabilityTrials: 1, DiscriminationTrials: 1, Tolerance: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestToolQualityValidate(t *testing.T) {
	if err := (ToolQuality{TPR: 0.5, FPR: 0.1}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, q := range []ToolQuality{{TPR: -0.1}, {TPR: 1.1}, {FPR: -0.1}, {FPR: 1.1}} {
		if err := q.Validate(); err == nil {
			t.Errorf("invalid quality %+v accepted", q)
		}
	}
}

func TestAnalyzeRejectsNilRNG(t *testing.T) {
	if _, err := Analyze(metrics.MustByID(metrics.IDRecall), fastConfig(), nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
	if _, err := AnalyzeCatalog(fastConfig(), nil); err == nil {
		t.Fatal("nil RNG accepted by AnalyzeCatalog")
	}
}

func TestAnalyzeRejectsBadConfig(t *testing.T) {
	if _, err := Analyze(metrics.MustByID(metrics.IDRecall), Config{}, stats.NewRNG(1)); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	m := metrics.MustByID(metrics.IDF1)
	p1, err1 := Analyze(m, fastConfig(), stats.NewRNG(5))
	p2, err2 := Analyze(m, fastConfig(), stats.NewRNG(5))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if p1 != p2 {
		t.Fatalf("same seed produced different profiles:\n%+v\n%+v", p1, p2)
	}
}

func TestAccuracyIsPrevalenceDependent(t *testing.T) {
	p := analyze(t, metrics.IDAccuracy)
	if p.PrevalenceInvariant {
		t.Fatal("accuracy must NOT be prevalence invariant — this is the paper's key negative result")
	}
	if p.PrevalenceSpread < 0.1 {
		t.Fatalf("accuracy prevalence spread = %g, expected substantial drift", p.PrevalenceSpread)
	}
	if p.ChanceCorrected {
		t.Fatal("accuracy is not chance corrected")
	}
}

func TestPrecisionIsPrevalenceDependent(t *testing.T) {
	p := analyze(t, metrics.IDPrecision)
	if p.PrevalenceInvariant {
		t.Fatal("precision must not be prevalence invariant")
	}
	// Precision collapses at low prevalence: the spread should be large.
	if p.PrevalenceSpread < 0.3 {
		t.Fatalf("precision prevalence spread = %g, expected > 0.3", p.PrevalenceSpread)
	}
}

func TestRecallIsPrevalenceInvariant(t *testing.T) {
	p := analyze(t, metrics.IDRecall)
	if !p.PrevalenceInvariant {
		t.Fatalf("recall should be prevalence invariant, spread = %g", p.PrevalenceSpread)
	}
}

func TestInformednessProperties(t *testing.T) {
	p := analyze(t, metrics.IDInformedness)
	if !p.PrevalenceInvariant {
		t.Fatalf("informedness should be prevalence invariant, spread = %g", p.PrevalenceSpread)
	}
	if !p.ChanceCorrected {
		t.Fatalf("informedness should be chance corrected, spread = %g", p.ChanceSpread)
	}
	if !p.MonotoneDetections || !p.MonotoneFalseAlarms {
		t.Fatal("informedness should be monotone in both directions")
	}
}

func TestMCCChanceCorrected(t *testing.T) {
	p := analyze(t, metrics.IDMCC)
	if !p.ChanceCorrected {
		t.Fatalf("MCC should be chance corrected, spread = %g", p.ChanceSpread)
	}
	// MCC is NOT prevalence invariant (it mixes markedness in).
	if p.PrevalenceInvariant {
		t.Fatal("MCC should not be fully prevalence invariant")
	}
}

func TestMonotonicityOfClassicMetrics(t *testing.T) {
	for _, id := range []string{
		metrics.IDRecall, metrics.IDPrecision, metrics.IDAccuracy,
		metrics.IDF1, metrics.IDF2, metrics.IDF05, metrics.IDErrorRate,
		metrics.IDJaccard, metrics.IDMCC, metrics.IDKappa,
		metrics.IDBalancedAccuracy, metrics.IDFPR, metrics.IDFNR,
	} {
		p := analyze(t, id)
		if !p.MonotoneDetections {
			t.Errorf("%s: converting a miss into a detection worsened the metric", id)
		}
		if !p.MonotoneFalseAlarms {
			t.Errorf("%s: adding a false alarm improved the metric", id)
		}
	}
}

func TestDetectedCountIgnoresFalseAlarms(t *testing.T) {
	// The absolute TP count is monotone in detections but completely blind
	// to false alarms — the reason the paper rejects absolute counts.
	p := analyze(t, metrics.IDDetectedCount)
	if !p.MonotoneDetections {
		t.Fatal("detected-count should improve with detections")
	}
	// Blindness shows up as perfect "monotonicity" (no change at all) but
	// near-zero discrimination between close tools... actually it still
	// discriminates via TP differences, so check prevalence spread instead:
	// TP count grows linearly with prevalence.
	if p.PrevalenceInvariant {
		t.Fatal("absolute count cannot be prevalence invariant")
	}
}

func TestDefinednessRates(t *testing.T) {
	// Accuracy is defined on every non-empty matrix: rate close to 1
	// (only the all-zero pattern fails: 1 of 216 samples).
	acc := analyze(t, metrics.IDAccuracy)
	if acc.DefinednessRate < 0.99 {
		t.Fatalf("accuracy definedness = %g", acc.DefinednessRate)
	}
	// DOR needs all four marginals non-trivial: rate clearly below 1.
	dor := analyze(t, metrics.IDDOR)
	if dor.DefinednessRate > 0.97 {
		t.Fatalf("DOR definedness = %g, expected visible gaps", dor.DefinednessRate)
	}
	if acc.DefinednessRate <= dor.DefinednessRate {
		t.Fatal("accuracy should be defined strictly more often than DOR")
	}
}

func TestStabilityBoundedMetrics(t *testing.T) {
	// On a 600-instance workload the sampling noise of F1 should be small
	// but non-zero.
	p := analyze(t, metrics.IDF1)
	if p.Stability <= 0 || p.Stability > 0.1 {
		t.Fatalf("F1 stability = %g, expected (0, 0.1]", p.Stability)
	}
}

func TestDiscriminationOfGoodMetrics(t *testing.T) {
	// Informedness and F1 should order the dominating tool first most of
	// the time even on modest workloads.
	for _, id := range []string{metrics.IDInformedness, metrics.IDF1, metrics.IDMCC} {
		p := analyze(t, id)
		if p.Discrimination < 0.6 {
			t.Errorf("%s discrimination = %g, expected >= 0.6", id, p.Discrimination)
		}
	}
}

func TestPrevalenceMetricProfile(t *testing.T) {
	// The "prevalence" pseudo-metric depends on nothing but prevalence:
	// maximal spread, no discrimination ability.
	p := analyze(t, metrics.IDPrevalence)
	if p.PrevalenceInvariant {
		t.Fatal("prevalence metric invariant to prevalence?")
	}
	if p.Discrimination > 0.6 {
		t.Fatalf("prevalence pseudo-metric discriminates tools (%g)?", p.Discrimination)
	}
}

func TestAnalyzeCatalog(t *testing.T) {
	profiles, err := AnalyzeCatalog(fastConfig(), stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != len(metrics.Catalog()) {
		t.Fatalf("profiled %d of %d metrics", len(profiles), len(metrics.Catalog()))
	}
	for _, p := range profiles {
		if p.MetricID == "" {
			t.Fatal("profile missing metric ID")
		}
		if math.IsNaN(p.DefinednessRate) || p.DefinednessRate < 0 || p.DefinednessRate > 1 {
			t.Fatalf("%s definedness rate out of range: %g", p.MetricID, p.DefinednessRate)
		}
		if p.Discrimination < 0 || p.Discrimination > 1 {
			t.Fatalf("%s discrimination out of range: %g", p.MetricID, p.Discrimination)
		}
	}
}

func TestExpectedMatrixConsistency(t *testing.T) {
	c := expectedMatrix(ToolQuality{TPR: 0.7, FPR: 0.1}, 1000, 0.3)
	if c.Total() != 1000 {
		t.Fatalf("total = %d", c.Total())
	}
	if c.Positives() != 300 {
		t.Fatalf("positives = %d", c.Positives())
	}
	if c.TP != 210 || c.FP != 70 {
		t.Fatalf("expected matrix = %+v", c)
	}
}

func TestSampleMatrixTotals(t *testing.T) {
	rng := stats.NewRNG(2)
	c := sampleMatrix(rng, ToolQuality{TPR: 0.5, FPR: 0.5}, 100, 200)
	if c.Positives() != 100 || c.Negatives() != 200 {
		t.Fatalf("sampled matrix marginals wrong: %+v", c)
	}
}

func TestSensitivitiesRecallVsPrecision(t *testing.T) {
	rec := analyze(t, metrics.IDRecall)
	prec := analyze(t, metrics.IDPrecision)
	// Recall reacts to misses and ignores false alarms; precision the
	// mirror image.
	if rec.MissSensitivity <= 0.05 {
		t.Fatalf("recall miss sensitivity = %g, want clearly positive", rec.MissSensitivity)
	}
	if rec.FalseAlarmSensitivity != 0 {
		t.Fatalf("recall false-alarm sensitivity = %g, want 0", rec.FalseAlarmSensitivity)
	}
	if prec.FalseAlarmSensitivity <= 0.02 {
		t.Fatalf("precision false-alarm sensitivity = %g, want clearly positive", prec.FalseAlarmSensitivity)
	}
	if prec.FalseAlarmSensitivity <= prec.MissSensitivity {
		t.Fatalf("precision should react more to false alarms (%g) than to misses (%g)",
			prec.FalseAlarmSensitivity, prec.MissSensitivity)
	}
	if rec.MissSensitivity <= rec.FalseAlarmSensitivity {
		t.Fatal("recall should react more to misses than to false alarms")
	}
}

func TestSensitivitiesBalancedMetrics(t *testing.T) {
	// F1 and informedness react to both error types.
	for _, id := range []string{metrics.IDF1, metrics.IDInformedness, metrics.IDMCC} {
		p := analyze(t, id)
		if p.MissSensitivity <= 0 || p.FalseAlarmSensitivity <= 0 {
			t.Errorf("%s sensitivities = (%g, %g), want both positive",
				id, p.MissSensitivity, p.FalseAlarmSensitivity)
		}
	}
}

func TestSensitivitiesFBetaOrdering(t *testing.T) {
	// F2 leans towards misses more than F0.5 does, and vice versa.
	f2 := analyze(t, metrics.IDF2)
	f05 := analyze(t, metrics.IDF05)
	if f2.MissSensitivity <= f05.MissSensitivity {
		t.Fatalf("F2 miss sensitivity (%g) should exceed F0.5's (%g)",
			f2.MissSensitivity, f05.MissSensitivity)
	}
	if f05.FalseAlarmSensitivity <= f2.FalseAlarmSensitivity {
		t.Fatalf("F0.5 false-alarm sensitivity (%g) should exceed F2's (%g)",
			f05.FalseAlarmSensitivity, f2.FalseAlarmSensitivity)
	}
}
