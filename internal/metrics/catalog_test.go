package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

// reference matrix used across value tests:
//
//	TP=40 FP=10 FN=20 TN=130, total=200, prevalence=0.3
var refMatrix = Confusion{TP: 40, FP: 10, FN: 20, TN: 130}

func value(t *testing.T, id string, c Confusion) float64 {
	t.Helper()
	m := MustByID(id)
	v, err := m.Value(c)
	if err != nil {
		t.Fatalf("%s on %s: %v", id, c, err)
	}
	return v
}

func TestKnownMetricValues(t *testing.T) {
	cases := []struct {
		id   string
		want float64
	}{
		{IDRecall, 40.0 / 60.0},
		{IDPrecision, 40.0 / 50.0},
		{IDSpecificity, 130.0 / 140.0},
		{IDNPV, 130.0 / 150.0},
		{IDAccuracy, 170.0 / 200.0},
		{IDErrorRate, 30.0 / 200.0},
		{IDFPR, 10.0 / 140.0},
		{IDFNR, 20.0 / 60.0},
		{IDFDR, 10.0 / 50.0},
		{IDFOR, 20.0 / 150.0},
		{IDJaccard, 40.0 / 70.0},
		{IDPrevalence, 0.3},
		{IDDetectedCount, 40},
		{IDFalseAlarmCount, 10},
		{IDBalancedAccuracy, (40.0/60.0 + 130.0/140.0) / 2},
		{IDInformedness, 40.0/60.0 + 130.0/140.0 - 1},
		{IDMarkedness, 40.0/50.0 + 130.0/150.0 - 1},
		{IDGMean, math.Sqrt(40.0 / 60.0 * 130.0 / 140.0)},
		{IDFowlkesMallows, math.Sqrt(40.0 / 50.0 * 40.0 / 60.0)},
		{IDDOR, 40.0 * 130.0 / (10.0 * 20.0)},
		{IDLRPlus, (40.0 / 60.0) / (10.0 / 140.0)},
		{IDLRMinus, (20.0 / 60.0) / (130.0 / 140.0)},
	}
	for _, c := range cases {
		if got := value(t, c.id, refMatrix); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s = %.15g, want %.15g", c.id, got, c.want)
		}
	}
}

func TestF1HarmonicMean(t *testing.T) {
	p := value(t, IDPrecision, refMatrix)
	r := value(t, IDRecall, refMatrix)
	want := 2 * p * r / (p + r)
	if got := value(t, IDF1, refMatrix); math.Abs(got-want) > 1e-12 {
		t.Fatalf("F1 = %g, want harmonic mean %g", got, want)
	}
}

func TestFBetaOrdering(t *testing.T) {
	// On a matrix where recall < precision, F2 (recall-leaning) must be
	// below F1, and F0.5 (precision-leaning) above.
	f05 := value(t, IDF05, refMatrix)
	f1 := value(t, IDF1, refMatrix)
	f2 := value(t, IDF2, refMatrix)
	if !(f2 < f1 && f1 < f05) {
		t.Fatalf("expected F2 < F1 < F0.5 when recall < precision, got %g, %g, %g", f2, f1, f05)
	}
}

func TestFBetaPanicsOnBadBeta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FBeta(0) did not panic")
		}
	}()
	FBeta(0)
}

func TestMCCKnownValue(t *testing.T) {
	tp, fp, fn, tn := 40.0, 10.0, 20.0, 130.0
	want := (tp*tn - fp*fn) / math.Sqrt((tp+fp)*(tp+fn)*(tn+fp)*(tn+fn))
	if got := value(t, IDMCC, refMatrix); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MCC = %g, want %g", got, want)
	}
}

func TestKappaKnownValue(t *testing.T) {
	po := 170.0 / 200.0
	pe := (60.0*50.0 + 140.0*150.0) / (200.0 * 200.0)
	want := (po - pe) / (1 - pe)
	if got := value(t, IDKappa, refMatrix); math.Abs(got-want) > 1e-12 {
		t.Fatalf("kappa = %g, want %g", got, want)
	}
}

func TestPerfectClassifier(t *testing.T) {
	perfect := Confusion{TP: 30, FP: 0, FN: 0, TN: 70}
	for _, id := range []string{IDRecall, IDPrecision, IDSpecificity, IDNPV, IDAccuracy, IDF1, IDMCC, IDInformedness, IDMarkedness, IDBalancedAccuracy, IDGMean, IDJaccard, IDKappa} {
		if got := value(t, id, perfect); math.Abs(got-1) > 1e-12 {
			t.Errorf("%s on perfect classifier = %g, want 1", id, got)
		}
	}
	for _, id := range []string{IDErrorRate, IDFPR, IDFNR, IDFDR, IDFOR} {
		if got := value(t, id, perfect); got != 0 {
			t.Errorf("%s on perfect classifier = %g, want 0", id, got)
		}
	}
}

func TestInvertedClassifier(t *testing.T) {
	// Everything wrong: chance-corrected metrics hit their minimum.
	inverted := Confusion{TP: 0, FP: 70, FN: 30, TN: 0}
	for _, id := range []string{IDMCC, IDInformedness, IDMarkedness} {
		if got := value(t, id, inverted); math.Abs(got+1) > 1e-12 {
			t.Errorf("%s on inverted classifier = %g, want -1", id, got)
		}
	}
}

func TestRandomClassifierChanceCorrection(t *testing.T) {
	// A classifier that flags exactly half of each class: TPR = FPR = 0.5.
	// Chance-corrected metrics must be ~0 regardless of prevalence.
	for _, prev := range []int{10, 50, 90} {
		pos := prev * 2
		neg := 200 - pos
		c := Confusion{TP: pos / 2, FN: pos / 2, FP: neg / 2, TN: neg / 2}
		for _, id := range []string{IDMCC, IDInformedness, IDMarkedness, IDKappa} {
			if got := value(t, id, c); math.Abs(got) > 1e-12 {
				t.Errorf("%s on random classifier (prev=%d%%) = %g, want 0", id, prev, got)
			}
		}
	}
}

func TestUndefinedCases(t *testing.T) {
	cases := []struct {
		id string
		c  Confusion
	}{
		{IDRecall, Confusion{TN: 5, FP: 5}},                      // no positives
		{IDPrecision, Confusion{FN: 5, TN: 5}},                   // nothing predicted
		{IDSpecificity, Confusion{TP: 5, FN: 5}},                 // no negatives
		{IDNPV, Confusion{TP: 5, FP: 5}},                         // everything predicted
		{IDAccuracy, Confusion{}},                                // empty
		{IDF1, Confusion{TN: 10}},                                // no positives, no predictions
		{IDMCC, Confusion{TP: 5, FN: 5}},                         // zero marginal
		{IDInformedness, Confusion{TP: 5, FN: 5}},                // one class only
		{IDMarkedness, Confusion{TP: 5, FP: 5}},                  // one prediction only
		{IDDOR, Confusion{TP: 5, TN: 5}},                         // no errors
		{IDLRPlus, Confusion{TP: 5, FN: 1, TN: 10}},              // FPR = 0
		{IDLRMinus, Confusion{TP: 5, FN: 1, FP: 10}},             // TNR = 0
		{IDPrevThreshold, Confusion{TP: 5, FN: 5, FP: 5, TN: 5}}, // TPR == FPR
		{IDKappa, Confusion{TP: 10}},                             // pe == 1
	}
	for _, tc := range cases {
		m := MustByID(tc.id)
		_, err := m.Value(tc.c)
		if err == nil {
			t.Errorf("%s on %s: expected undefined, got value", tc.id, tc.c)
			continue
		}
		if !IsUndefined(err) {
			t.Errorf("%s on %s: error %v is not an UndefinedError", tc.id, tc.c, err)
		}
	}
}

func TestValueOrFallback(t *testing.T) {
	m := MustByID(IDPrecision)
	v, err := m.ValueOr(Confusion{FN: 3, TN: 7}, 0.42)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0.42 {
		t.Fatalf("fallback = %g", v)
	}
	v, err = m.ValueOr(refMatrix, 0.42)
	if err != nil || v != 0.8 {
		t.Fatalf("defined value = %g, %v", v, err)
	}
	if _, err := m.ValueOr(Confusion{TP: -1}, 0); err == nil {
		t.Fatal("invalid matrix must still error")
	}
}

func TestValueRejectsInvalidMatrix(t *testing.T) {
	m := MustByID(IDAccuracy)
	if _, err := m.Value(Confusion{TP: -1, TN: 5}); err == nil {
		t.Fatal("negative cell accepted")
	}
}

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) < 25 {
		t.Fatalf("catalogue has %d metrics, want >= 25", len(cat))
	}
	seen := map[string]bool{}
	for _, m := range cat {
		if m.ID == "" || m.Name == "" || m.Formula == "" || m.Reference == "" {
			t.Errorf("metric %q missing metadata: %+v", m.ID, m)
		}
		if seen[m.ID] {
			t.Errorf("duplicate metric ID %q", m.ID)
		}
		seen[m.ID] = true
		if m.Orientation != HigherIsBetter && m.Orientation != LowerIsBetter {
			t.Errorf("metric %q has no orientation", m.ID)
		}
		if m.compute == nil {
			t.Errorf("metric %q has no compute function", m.ID)
		}
	}
}

func TestByIDAndAliases(t *testing.T) {
	if _, ok := ByID("no-such-metric"); ok {
		t.Fatal("unknown ID resolved")
	}
	m, ok := ByID("tpr") // alias of recall
	if !ok || m.ID != IDRecall {
		t.Fatalf("alias lookup failed: %+v, %v", m, ok)
	}
	m, ok = ByID(IDMCC)
	if !ok || m.ID != IDMCC {
		t.Fatal("direct lookup failed")
	}
}

func TestMustByIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustByID on unknown ID did not panic")
		}
	}()
	MustByID("nope")
}

func TestSortedIDs(t *testing.T) {
	ids := SortedIDs()
	if len(ids) != len(CatalogIDs()) {
		t.Fatal("SortedIDs lost entries")
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("IDs not sorted at %d: %q >= %q", i, ids[i-1], ids[i])
		}
	}
}

func TestOrientationHelpers(t *testing.T) {
	rec := MustByID(IDRecall)
	if !rec.Better(0.9, 0.5) || rec.Better(0.5, 0.9) {
		t.Fatal("higher-is-better Better() wrong")
	}
	fpr := MustByID(IDFPR)
	if !fpr.Better(0.1, 0.5) || fpr.Better(0.5, 0.1) {
		t.Fatal("lower-is-better Better() wrong")
	}
	if rec.Goodness(0.7) != 0.7 || fpr.Goodness(0.7) != -0.7 {
		t.Fatal("Goodness wrong")
	}
	if HigherIsBetter.String() != "higher-is-better" || LowerIsBetter.String() != "lower-is-better" {
		t.Fatal("Orientation String wrong")
	}
	if Orientation(9).String() == "" {
		t.Fatal("unknown orientation should still render")
	}
}

func TestBounded(t *testing.T) {
	if !MustByID(IDRecall).Bounded() {
		t.Fatal("recall should be bounded")
	}
	if MustByID(IDDOR).Bounded() {
		t.Fatal("DOR should be unbounded")
	}
}

func TestUndefinedErrorMessage(t *testing.T) {
	err := &UndefinedError{Metric: "precision", On: Confusion{FN: 1}, Reason: "nothing predicted"}
	msg := err.Error()
	for _, want := range []string{"precision", "FN=1", "nothing predicted"} {
		if !contains(msg, want) {
			t.Errorf("error message %q missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Property: every bounded metric stays within its declared range on every
// valid matrix where it is defined. This is the programmatic version of the
// paper's "boundedness" characteristic, asserted over random matrices.
func TestBoundednessProperty(t *testing.T) {
	cat := Catalog()
	f := func(tp, fp, fn, tn uint8) bool {
		c := Confusion{int(tp), int(fp), int(fn), int(tn)}
		for _, m := range cat {
			v, err := m.Value(c)
			if err != nil {
				if !IsUndefined(err) {
					return false
				}
				continue
			}
			if math.IsNaN(v) || v < m.Lo-1e-9 || v > m.Hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: scale invariance — multiplying all cells by a constant never
// changes any ratio-based metric. (Absolute-count metrics are excluded:
// their scale-variance is exactly why the paper rejects them.)
func TestScaleInvarianceProperty(t *testing.T) {
	cat := Catalog()
	f := func(tp, fp, fn, tn uint8, kRaw uint8) bool {
		k := 2 + int(kRaw%9)
		c := Confusion{int(tp), int(fp), int(fn), int(tn)}
		scaled, err := c.Scale(k)
		if err != nil {
			return false
		}
		for _, m := range cat {
			if m.ID == IDDetectedCount || m.ID == IDFalseAlarmCount {
				continue
			}
			v1, err1 := m.Value(c)
			v2, err2 := m.Value(scaled)
			if (err1 == nil) != (err2 == nil) {
				return false
			}
			if err1 != nil {
				continue
			}
			if math.Abs(v1-v2) > 1e-9*(1+math.Abs(v1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: informedness = TPR + TNR − 1 and markedness = PPV + NPV − 1
// are consistent with their constituent metrics, and MCC² ≈
// informedness × markedness (Powers' identity) whenever all are defined.
func TestPowersIdentityProperty(t *testing.T) {
	mcc := MustByID(IDMCC)
	inf := MustByID(IDInformedness)
	mark := MustByID(IDMarkedness)
	f := func(tp, fp, fn, tn uint8) bool {
		c := Confusion{int(tp) + 1, int(fp) + 1, int(fn) + 1, int(tn) + 1} // all cells positive => all defined
		vm, err1 := mcc.Value(c)
		vi, err2 := inf.Value(c)
		vk, err3 := mark.Value(c)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return math.Abs(vm*vm-vi*vk) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedCostKnownValues(t *testing.T) {
	cost := MustByID(IDCost10)
	// refMatrix: FN=20, FP=10, P=60, N=140 -> (200+10)/(600+140).
	want := 210.0 / 740.0
	if got := value(t, IDCost10, refMatrix); math.Abs(got-want) > 1e-12 {
		t.Fatalf("cost-10 = %g, want %g", got, want)
	}
	if cost.Orientation != LowerIsBetter {
		t.Fatal("cost metric must be lower-is-better")
	}
	// Perfect classifier incurs zero cost; inverted classifier full cost.
	if got := value(t, IDCost10, Confusion{TP: 30, TN: 70}); got != 0 {
		t.Fatalf("perfect cost = %g", got)
	}
	if got := value(t, IDCost10, Confusion{FN: 30, FP: 70}); got != 1 {
		t.Fatalf("worst cost = %g", got)
	}
}

func TestNormalizedCostRatioOneIsErrorRate(t *testing.T) {
	c1 := NormalizedCost(1)
	er := MustByID(IDErrorRate)
	for _, c := range []Confusion{refMatrix, {TP: 1, FP: 2, FN: 3, TN: 4}, {TP: 9, TN: 1}} {
		v1, err1 := c1.Value(c)
		v2, err2 := er.Value(c)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if math.Abs(v1-v2) > 1e-12 {
			t.Fatalf("cost-1 (%g) != error rate (%g) on %s", v1, v2, c)
		}
	}
}

func TestNormalizedCostWeighsMissesMore(t *testing.T) {
	base := Confusion{TP: 50, FP: 10, FN: 10, TN: 130}
	oneMoreMiss := Confusion{TP: 49, FP: 10, FN: 11, TN: 130}
	oneMoreAlarm := Confusion{TP: 50, FP: 11, FN: 10, TN: 129}
	cost := MustByID(IDCost10)
	b := value(t, IDCost10, base)
	m := value(t, IDCost10, oneMoreMiss)
	a := value(t, IDCost10, oneMoreAlarm)
	if !(m-b > 10*(a-b)-1e-12) {
		t.Fatalf("miss increment (%g) should cost ~10x an alarm increment (%g)", m-b, a-b)
	}
	_ = cost
}

func TestNormalizedCostPanicsOnBadRatio(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NormalizedCost(0) did not panic")
		}
	}()
	NormalizedCost(0)
}
