package metrics

import "errors"

// ErrNoClasses is returned by aggregations over an empty class list.
var ErrNoClasses = errors.New("metrics: no per-class matrices to aggregate")

// MicroAverage sums per-class confusion matrices into one pooled matrix.
// Micro-averaging weighs every instance equally, so frequent vulnerability
// classes dominate.
func MicroAverage(perClass []Confusion) (Confusion, error) {
	if len(perClass) == 0 {
		return Confusion{}, ErrNoClasses
	}
	var out Confusion
	for _, c := range perClass {
		out = out.Add(c)
	}
	return out, nil
}

// MacroAverageResult reports a macro-averaged metric value along with how
// many classes the metric was actually defined on.
type MacroAverageResult struct {
	Value        float64
	DefinedOn    int
	TotalClasses int
}

// MacroAverage computes the unweighted mean of the metric across classes,
// skipping classes where the metric is undefined. Macro-averaging weighs
// every vulnerability class equally regardless of how many instances it
// has. It returns an UndefinedError if the metric is defined on no class.
func MacroAverage(m Metric, perClass []Confusion) (MacroAverageResult, error) {
	if len(perClass) == 0 {
		return MacroAverageResult{}, ErrNoClasses
	}
	var sum float64
	defined := 0
	for _, c := range perClass {
		v, err := m.Value(c)
		if err != nil {
			if IsUndefined(err) {
				continue
			}
			return MacroAverageResult{}, err
		}
		sum += v
		defined++
	}
	if defined == 0 {
		return MacroAverageResult{}, undef(m.ID, Confusion{}, "metric undefined on every class")
	}
	return MacroAverageResult{
		Value:        sum / float64(defined),
		DefinedOn:    defined,
		TotalClasses: len(perClass),
	}, nil
}
