package metrics

import (
	"testing"
	"testing/quick"
)

func TestConfusionValidate(t *testing.T) {
	if err := (Confusion{1, 2, 3, 4}).Validate(); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	bad := []Confusion{
		{TP: -1}, {FP: -1}, {FN: -1}, {TN: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("negative cell accepted: %+v", c)
		}
	}
}

func TestConfusionTotals(t *testing.T) {
	c := Confusion{TP: 10, FP: 20, FN: 30, TN: 40}
	if c.Total() != 100 {
		t.Fatalf("Total = %d", c.Total())
	}
	if c.Positives() != 40 {
		t.Fatalf("Positives = %d", c.Positives())
	}
	if c.Negatives() != 60 {
		t.Fatalf("Negatives = %d", c.Negatives())
	}
	if c.PredictedPositives() != 30 {
		t.Fatalf("PredictedPositives = %d", c.PredictedPositives())
	}
	if c.PredictedNegatives() != 70 {
		t.Fatalf("PredictedNegatives = %d", c.PredictedNegatives())
	}
	if c.Prevalence() != 0.4 {
		t.Fatalf("Prevalence = %g", c.Prevalence())
	}
}

func TestConfusionPrevalenceEmpty(t *testing.T) {
	if got := (Confusion{}).Prevalence(); got != 0 {
		t.Fatalf("empty prevalence = %g", got)
	}
}

func TestConfusionAdd(t *testing.T) {
	a := Confusion{1, 2, 3, 4}
	b := Confusion{10, 20, 30, 40}
	sum := a.Add(b)
	want := Confusion{11, 22, 33, 44}
	if sum != want {
		t.Fatalf("Add = %+v, want %+v", sum, want)
	}
}

func TestConfusionScale(t *testing.T) {
	c := Confusion{1, 2, 3, 4}
	s, err := c.Scale(3)
	if err != nil {
		t.Fatal(err)
	}
	if s != (Confusion{3, 6, 9, 12}) {
		t.Fatalf("Scale = %+v", s)
	}
	if _, err := c.Scale(-1); err == nil {
		t.Fatal("negative scale accepted")
	}
	z, _ := c.Scale(0)
	if z != (Confusion{}) {
		t.Fatalf("Scale(0) = %+v", z)
	}
}

func TestConfusionRates(t *testing.T) {
	c := Confusion{TP: 1, FP: 1, FN: 1, TN: 1}
	tp, fp, fn, tn := c.Rates()
	if tp != 0.25 || fp != 0.25 || fn != 0.25 || tn != 0.25 {
		t.Fatalf("Rates = %g %g %g %g", tp, fp, fn, tn)
	}
	tp, fp, fn, tn = (Confusion{}).Rates()
	if tp+fp+fn+tn != 0 {
		t.Fatal("empty matrix rates should all be zero")
	}
}

func TestConfusionString(t *testing.T) {
	got := Confusion{1, 2, 3, 4}.String()
	want := "TP=1 FP=2 FN=3 TN=4"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

// Property: Add is commutative and total is additive.
func TestConfusionAddProperty(t *testing.T) {
	f := func(a, b uint8, c, d uint8, e, g, h, i uint8) bool {
		x := Confusion{int(a), int(b), int(c), int(d)}
		y := Confusion{int(e), int(g), int(h), int(i)}
		return x.Add(y) == y.Add(x) && x.Add(y).Total() == x.Total()+y.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
