package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Stable metric identifiers. Experiments and scenario definitions refer to
// metrics by these IDs, so they are part of the public contract.
const (
	IDRecall           = "recall"
	IDPrecision        = "precision"
	IDSpecificity      = "specificity"
	IDNPV              = "npv"
	IDAccuracy         = "accuracy"
	IDErrorRate        = "error-rate"
	IDF1               = "f1"
	IDF05              = "f0.5"
	IDF2               = "f2"
	IDFPR              = "fpr"
	IDFNR              = "fnr"
	IDFDR              = "fdr"
	IDFOR              = "for"
	IDMCC              = "mcc"
	IDInformedness     = "informedness"
	IDMarkedness       = "markedness"
	IDBalancedAccuracy = "balanced-accuracy"
	IDGMean            = "g-mean"
	IDFowlkesMallows   = "fowlkes-mallows"
	IDJaccard          = "jaccard"
	IDKappa            = "kappa"
	IDPrevalence       = "prevalence"
	IDDOR              = "dor"
	IDLRPlus           = "lr+"
	IDLRMinus          = "lr-"
	IDPrevThreshold    = "prevalence-threshold"
	IDDetectedCount    = "detected-count"
	IDFalseAlarmCount  = "false-alarm-count"
	IDCost10           = "cost-10"
)

// tpr/ppv/tnr/npv helpers shared across compute closures. Each returns the
// value and whether it is defined.

func tprOf(c Confusion) (float64, bool) {
	p := c.Positives()
	if p == 0 {
		return 0, false
	}
	return float64(c.TP) / float64(p), true
}

func tnrOf(c Confusion) (float64, bool) {
	n := c.Negatives()
	if n == 0 {
		return 0, false
	}
	return float64(c.TN) / float64(n), true
}

func ppvOf(c Confusion) (float64, bool) {
	pp := c.PredictedPositives()
	if pp == 0 {
		return 0, false
	}
	return float64(c.TP) / float64(pp), true
}

func npvOf(c Confusion) (float64, bool) {
	pn := c.PredictedNegatives()
	if pn == 0 {
		return 0, false
	}
	return float64(c.TN) / float64(pn), true
}

// NormalizedCost returns the normalised expected-cost metric with the
// given miss-to-false-alarm cost ratio: (r·FN + FP) / (r·P + N), the
// fraction of the worst-case misclassification cost actually incurred.
// Cost-based evaluation comes from the intrusion-detection benchmarking
// literature and is one of the "seldom used" alternatives the paper
// gestures at; r = 1 degenerates to the plain error rate. It panics on
// non-positive ratios (catalogue construction uses fixed constants).
func NormalizedCost(ratio float64) Metric {
	if ratio <= 0 {
		panic(fmt.Sprintf("metrics: NormalizedCost requires ratio > 0, got %g", ratio))
	}
	id := fmt.Sprintf("cost-%g", ratio)
	return Metric{
		ID:          id,
		Name:        fmt.Sprintf("Normalised expected cost (miss costs %g false alarms)", ratio),
		Formula:     fmt.Sprintf("(%g·FN + FP) / (%g·(TP+FN) + FP+TN)", ratio, ratio),
		Lo:          0,
		Hi:          1,
		Orientation: LowerIsBetter,
		Reference:   "Gaffney & Ulvila, 2001 (cost-based IDS evaluation)",
		compute: func(c Confusion) (float64, error) {
			den := ratio*float64(c.Positives()) + float64(c.Negatives())
			if den == 0 {
				return 0, undef(id, c, "empty matrix")
			}
			return (ratio*float64(c.FN) + float64(c.FP)) / den, nil
		},
	}
}

// FBeta returns the F-measure metric with the given beta. Beta > 1 weighs
// recall higher (misses costlier than false alarms); beta < 1 weighs
// precision higher. It panics on non-positive beta because the catalogue
// constructs these at program start with fixed constants.
func FBeta(beta float64) Metric {
	if beta <= 0 {
		panic(fmt.Sprintf("metrics: FBeta requires beta > 0, got %g", beta))
	}
	id := fmt.Sprintf("f%g", beta)
	b2 := beta * beta
	return Metric{
		ID:          id,
		Name:        fmt.Sprintf("F-measure (beta=%g)", beta),
		Formula:     fmt.Sprintf("(1+%g²)·TP / ((1+%g²)·TP + %g²·FN + FP)", beta, beta, beta),
		Lo:          0,
		Hi:          1,
		Orientation: HigherIsBetter,
		Reference:   "van Rijsbergen, Information Retrieval, 1979",
		compute: func(c Confusion) (float64, error) {
			den := (1+b2)*float64(c.TP) + b2*float64(c.FN) + float64(c.FP)
			return ratio(id, c, (1+b2)*float64(c.TP), den, "no positives and no positive predictions")
		},
	}
}

// buildCatalog constructs every metric in the study. Called once from
// package initialisation of the exported Catalog slice; kept as a function
// so tests can rebuild a fresh copy.
func buildCatalog() []Metric {
	all := []Metric{
		{
			ID:          IDRecall,
			Name:        "Recall (true positive rate, sensitivity, detection coverage)",
			Aliases:     []string{"tpr", "sensitivity", "coverage", "hit-rate"},
			Formula:     "TP / (TP + FN)",
			Lo:          0,
			Hi:          1,
			Orientation: HigherIsBetter,
			Reference:   "standard IR / diagnostic testing",
			compute: func(c Confusion) (float64, error) {
				return ratio(IDRecall, c, float64(c.TP), float64(c.Positives()), "no vulnerable instances")
			},
		},
		{
			ID:          IDPrecision,
			Name:        "Precision (positive predictive value)",
			Aliases:     []string{"ppv"},
			Formula:     "TP / (TP + FP)",
			Lo:          0,
			Hi:          1,
			Orientation: HigherIsBetter,
			Reference:   "standard IR / diagnostic testing",
			compute: func(c Confusion) (float64, error) {
				return ratio(IDPrecision, c, float64(c.TP), float64(c.PredictedPositives()), "tool reported nothing")
			},
		},
		{
			ID:          IDSpecificity,
			Name:        "Specificity (true negative rate)",
			Aliases:     []string{"tnr"},
			Formula:     "TN / (TN + FP)",
			Lo:          0,
			Hi:          1,
			Orientation: HigherIsBetter,
			Reference:   "diagnostic testing",
			compute: func(c Confusion) (float64, error) {
				return ratio(IDSpecificity, c, float64(c.TN), float64(c.Negatives()), "no clean instances")
			},
		},
		{
			ID:          IDNPV,
			Name:        "Negative predictive value",
			Formula:     "TN / (TN + FN)",
			Lo:          0,
			Hi:          1,
			Orientation: HigherIsBetter,
			Reference:   "diagnostic testing",
			compute: func(c Confusion) (float64, error) {
				return ratio(IDNPV, c, float64(c.TN), float64(c.PredictedNegatives()), "tool reported everything")
			},
		},
		{
			ID:          IDAccuracy,
			Name:        "Accuracy",
			Formula:     "(TP + TN) / (TP + FP + FN + TN)",
			Lo:          0,
			Hi:          1,
			Orientation: HigherIsBetter,
			Reference:   "standard classification",
			compute: func(c Confusion) (float64, error) {
				return ratio(IDAccuracy, c, float64(c.TP+c.TN), float64(c.Total()), "empty matrix")
			},
		},
		{
			ID:          IDErrorRate,
			Name:        "Error rate (misclassification rate)",
			Formula:     "(FP + FN) / (TP + FP + FN + TN)",
			Lo:          0,
			Hi:          1,
			Orientation: LowerIsBetter,
			Reference:   "standard classification",
			compute: func(c Confusion) (float64, error) {
				return ratio(IDErrorRate, c, float64(c.FP+c.FN), float64(c.Total()), "empty matrix")
			},
		},
		FBeta(1),
		FBeta(0.5),
		FBeta(2),
		{
			ID:          IDFPR,
			Name:        "False positive rate (fallout)",
			Aliases:     []string{"fallout"},
			Formula:     "FP / (FP + TN)",
			Lo:          0,
			Hi:          1,
			Orientation: LowerIsBetter,
			Reference:   "ROC analysis",
			compute: func(c Confusion) (float64, error) {
				return ratio(IDFPR, c, float64(c.FP), float64(c.Negatives()), "no clean instances")
			},
		},
		{
			ID:          IDFNR,
			Name:        "False negative rate (miss rate)",
			Aliases:     []string{"miss-rate"},
			Formula:     "FN / (FN + TP)",
			Lo:          0,
			Hi:          1,
			Orientation: LowerIsBetter,
			Reference:   "ROC analysis",
			compute: func(c Confusion) (float64, error) {
				return ratio(IDFNR, c, float64(c.FN), float64(c.Positives()), "no vulnerable instances")
			},
		},
		{
			ID:          IDFDR,
			Name:        "False discovery rate",
			Formula:     "FP / (FP + TP)",
			Lo:          0,
			Hi:          1,
			Orientation: LowerIsBetter,
			Reference:   "Benjamini & Hochberg, 1995",
			compute: func(c Confusion) (float64, error) {
				return ratio(IDFDR, c, float64(c.FP), float64(c.PredictedPositives()), "tool reported nothing")
			},
		},
		{
			ID:          IDFOR,
			Name:        "False omission rate",
			Formula:     "FN / (FN + TN)",
			Lo:          0,
			Hi:          1,
			Orientation: LowerIsBetter,
			Reference:   "diagnostic testing",
			compute: func(c Confusion) (float64, error) {
				return ratio(IDFOR, c, float64(c.FN), float64(c.PredictedNegatives()), "tool reported everything")
			},
		},
		{
			ID:              IDMCC,
			Name:            "Matthews correlation coefficient (phi coefficient)",
			Aliases:         []string{"phi"},
			Formula:         "(TP·TN − FP·FN) / √((TP+FP)(TP+FN)(TN+FP)(TN+FN))",
			Lo:              -1,
			Hi:              1,
			Orientation:     HigherIsBetter,
			ChanceCorrected: true,
			Reference:       "Matthews, 1975",
			compute: func(c Confusion) (float64, error) {
				tp, fp, fn, tn := float64(c.TP), float64(c.FP), float64(c.FN), float64(c.TN)
				den := math.Sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn))
				if den == 0 {
					return 0, undef(IDMCC, c, "a marginal is zero")
				}
				return (tp*tn - fp*fn) / den, nil
			},
		},
		{
			ID:              IDInformedness,
			Name:            "Informedness (Youden's J statistic)",
			Aliases:         []string{"youden-j", "bookmaker-informedness"},
			Formula:         "TPR + TNR − 1",
			Lo:              -1,
			Hi:              1,
			Orientation:     HigherIsBetter,
			ChanceCorrected: true,
			Reference:       "Youden, 1950; Powers, 2011",
			compute: func(c Confusion) (float64, error) {
				tpr, ok1 := tprOf(c)
				tnr, ok2 := tnrOf(c)
				if !ok1 || !ok2 {
					return 0, undef(IDInformedness, c, "needs both vulnerable and clean instances")
				}
				return tpr + tnr - 1, nil
			},
		},
		{
			ID:              IDMarkedness,
			Name:            "Markedness",
			Formula:         "PPV + NPV − 1",
			Lo:              -1,
			Hi:              1,
			Orientation:     HigherIsBetter,
			ChanceCorrected: true,
			Reference:       "Powers, 2011",
			compute: func(c Confusion) (float64, error) {
				ppv, ok1 := ppvOf(c)
				npv, ok2 := npvOf(c)
				if !ok1 || !ok2 {
					return 0, undef(IDMarkedness, c, "needs both positive and negative predictions")
				}
				return ppv + npv - 1, nil
			},
		},
		{
			ID:          IDBalancedAccuracy,
			Name:        "Balanced accuracy",
			Formula:     "(TPR + TNR) / 2",
			Lo:          0,
			Hi:          1,
			Orientation: HigherIsBetter,
			Reference:   "Brodersen et al., 2010",
			compute: func(c Confusion) (float64, error) {
				tpr, ok1 := tprOf(c)
				tnr, ok2 := tnrOf(c)
				if !ok1 || !ok2 {
					return 0, undef(IDBalancedAccuracy, c, "needs both vulnerable and clean instances")
				}
				return (tpr + tnr) / 2, nil
			},
		},
		{
			ID:          IDGMean,
			Name:        "Geometric mean of TPR and TNR",
			Formula:     "√(TPR · TNR)",
			Lo:          0,
			Hi:          1,
			Orientation: HigherIsBetter,
			Reference:   "Kubat & Matwin, 1997",
			compute: func(c Confusion) (float64, error) {
				tpr, ok1 := tprOf(c)
				tnr, ok2 := tnrOf(c)
				if !ok1 || !ok2 {
					return 0, undef(IDGMean, c, "needs both vulnerable and clean instances")
				}
				return math.Sqrt(tpr * tnr), nil
			},
		},
		{
			ID:          IDFowlkesMallows,
			Name:        "Fowlkes–Mallows index",
			Formula:     "√(PPV · TPR)",
			Lo:          0,
			Hi:          1,
			Orientation: HigherIsBetter,
			Reference:   "Fowlkes & Mallows, 1983",
			compute: func(c Confusion) (float64, error) {
				ppv, ok1 := ppvOf(c)
				tpr, ok2 := tprOf(c)
				if !ok1 || !ok2 {
					return 0, undef(IDFowlkesMallows, c, "needs positives and positive predictions")
				}
				return math.Sqrt(ppv * tpr), nil
			},
		},
		{
			ID:          IDJaccard,
			Name:        "Jaccard index (threat score, critical success index)",
			Aliases:     []string{"threat-score", "csi"},
			Formula:     "TP / (TP + FP + FN)",
			Lo:          0,
			Hi:          1,
			Orientation: HigherIsBetter,
			Reference:   "Jaccard, 1901",
			compute: func(c Confusion) (float64, error) {
				return ratio(IDJaccard, c, float64(c.TP), float64(c.TP+c.FP+c.FN), "no positives anywhere")
			},
		},
		{
			ID:              IDKappa,
			Name:            "Cohen's kappa",
			Formula:         "(p_o − p_e) / (1 − p_e)",
			Lo:              -1,
			Hi:              1,
			Orientation:     HigherIsBetter,
			ChanceCorrected: true,
			Reference:       "Cohen, 1960",
			compute: func(c Confusion) (float64, error) {
				t := float64(c.Total())
				if t == 0 {
					return 0, undef(IDKappa, c, "empty matrix")
				}
				po := float64(c.TP+c.TN) / t
				pe := (float64(c.Positives())*float64(c.PredictedPositives()) +
					float64(c.Negatives())*float64(c.PredictedNegatives())) / (t * t)
				if pe == 1 {
					return 0, undef(IDKappa, c, "expected agreement is 1")
				}
				return (po - pe) / (1 - pe), nil
			},
		},
		{
			ID:          IDPrevalence,
			Name:        "Prevalence (workload property, not a tool metric)",
			Formula:     "(TP + FN) / (TP + FP + FN + TN)",
			Lo:          0,
			Hi:          1,
			Orientation: HigherIsBetter, // orientation is meaningless; kept for interface uniformity
			Reference:   "diagnostic testing",
			compute: func(c Confusion) (float64, error) {
				return ratio(IDPrevalence, c, float64(c.Positives()), float64(c.Total()), "empty matrix")
			},
		},
		{
			ID:          IDDOR,
			Name:        "Diagnostic odds ratio",
			Formula:     "(TP·TN) / (FP·FN)",
			Lo:          0,
			Hi:          math.Inf(1),
			Orientation: HigherIsBetter,
			Reference:   "Glas et al., 2003",
			compute: func(c Confusion) (float64, error) {
				den := float64(c.FP) * float64(c.FN)
				if den == 0 {
					return 0, undef(IDDOR, c, "no errors of one kind (odds ratio infinite)")
				}
				return float64(c.TP) * float64(c.TN) / den, nil
			},
		},
		{
			ID:          IDLRPlus,
			Name:        "Positive likelihood ratio",
			Formula:     "TPR / FPR",
			Lo:          0,
			Hi:          math.Inf(1),
			Orientation: HigherIsBetter,
			Reference:   "diagnostic testing",
			compute: func(c Confusion) (float64, error) {
				tpr, ok := tprOf(c)
				if !ok {
					return 0, undef(IDLRPlus, c, "no vulnerable instances")
				}
				n := c.Negatives()
				if n == 0 {
					return 0, undef(IDLRPlus, c, "no clean instances")
				}
				fpr := float64(c.FP) / float64(n)
				if fpr == 0 {
					return 0, undef(IDLRPlus, c, "zero false positive rate (ratio infinite)")
				}
				return tpr / fpr, nil
			},
		},
		{
			ID:          IDLRMinus,
			Name:        "Negative likelihood ratio",
			Formula:     "FNR / TNR",
			Lo:          0,
			Hi:          math.Inf(1),
			Orientation: LowerIsBetter,
			Reference:   "diagnostic testing",
			compute: func(c Confusion) (float64, error) {
				p := c.Positives()
				if p == 0 {
					return 0, undef(IDLRMinus, c, "no vulnerable instances")
				}
				fnr := float64(c.FN) / float64(p)
				tnr, ok := tnrOf(c)
				if !ok {
					return 0, undef(IDLRMinus, c, "no clean instances")
				}
				if tnr == 0 {
					return 0, undef(IDLRMinus, c, "zero true negative rate (ratio infinite)")
				}
				return fnr / tnr, nil
			},
		},
		{
			ID:          IDPrevThreshold,
			Name:        "Prevalence threshold",
			Formula:     "(√(TPR·FPR) − FPR) / (TPR − FPR)",
			Lo:          0,
			Hi:          1,
			Orientation: LowerIsBetter,
			Reference:   "Balayla, 2020",
			compute: func(c Confusion) (float64, error) {
				tpr, ok1 := tprOf(c)
				tnr, ok2 := tnrOf(c)
				if !ok1 || !ok2 {
					return 0, undef(IDPrevThreshold, c, "needs both vulnerable and clean instances")
				}
				fpr := 1 - tnr
				if tpr == fpr {
					return 0, undef(IDPrevThreshold, c, "uninformative classifier (TPR == FPR)")
				}
				return (math.Sqrt(tpr*fpr) - fpr) / (tpr - fpr), nil
			},
		},
		{
			ID:          IDDetectedCount,
			Name:        "Detected vulnerabilities (absolute count)",
			Formula:     "TP",
			Lo:          0,
			Hi:          math.Inf(1),
			Orientation: HigherIsBetter,
			Reference:   "used informally in tool marketing; included to show why absolute counts fail as benchmark metrics",
			compute: func(c Confusion) (float64, error) {
				return float64(c.TP), nil
			},
		},
		NormalizedCost(10),
		{
			ID:          IDFalseAlarmCount,
			Name:        "False alarms (absolute count)",
			Formula:     "FP",
			Lo:          0,
			Hi:          math.Inf(1),
			Orientation: LowerIsBetter,
			Reference:   "included to show why absolute counts fail as benchmark metrics",
			compute: func(c Confusion) (float64, error) {
				return float64(c.FP), nil
			},
		},
	}
	return all
}

// Catalog returns a fresh copy of the full metric catalogue, ordered
// stably by construction (not alphabetically: the classic IR metrics come
// first, mirroring how the paper introduces them).
func Catalog() []Metric {
	return buildCatalog()
}

// CatalogIDs returns the IDs of all metrics in catalogue order.
func CatalogIDs() []string {
	cat := buildCatalog()
	ids := make([]string, len(cat))
	for i, m := range cat {
		ids[i] = m.ID
	}
	return ids
}

// ByID returns the metric with the given ID or alias. The boolean reports
// whether it was found.
func ByID(id string) (Metric, bool) {
	for _, m := range buildCatalog() {
		if m.ID == id {
			return m, true
		}
		for _, a := range m.Aliases {
			if a == id {
				return m, true
			}
		}
	}
	return Metric{}, false
}

// MustByID returns the metric with the given ID and panics when it is
// missing. It is intended for package-level experiment definitions where a
// missing ID is a programming error.
func MustByID(id string) Metric {
	m, ok := ByID(id)
	if !ok {
		panic(fmt.Sprintf("metrics: unknown metric ID %q", id))
	}
	return m
}

// SortedIDs returns all catalogue IDs in lexicographic order. Useful for
// deterministic map iteration in reports.
func SortedIDs() []string {
	ids := CatalogIDs()
	sort.Strings(ids)
	return ids
}
