// Package metrics implements the confusion-matrix metric catalogue studied
// by the paper: every candidate metric for benchmarking vulnerability
// detection tools is a first-class value carrying its formula, theoretical
// range, orientation, and provenance, alongside the code that computes it.
//
// In the vulnerability detection setting the confusion matrix is read as:
//
//   - TP: vulnerabilities that exist and were reported by the tool
//   - FP: reports on code locations that are not vulnerable (false alarms)
//   - FN: vulnerabilities that exist but were missed
//   - TN: non-vulnerable locations correctly left unreported
//
// The paper's central observation is that different usage scenarios weight
// these four cells very differently, so no single scalar metric is adequate
// across scenarios.
package metrics

import (
	"fmt"
)

// Confusion is a binary-classification confusion matrix. The zero value is
// a valid, empty matrix.
type Confusion struct {
	TP int // true positives: existing vulnerabilities reported
	FP int // false positives: false alarms
	FN int // false negatives: missed vulnerabilities
	TN int // true negatives: clean locations not reported
}

// Validate returns an error if any cell is negative.
func (c Confusion) Validate() error {
	if c.TP < 0 || c.FP < 0 || c.FN < 0 || c.TN < 0 {
		return fmt.Errorf("metrics: confusion matrix has negative cell: %+v", c)
	}
	return nil
}

// Total returns the number of classified instances.
func (c Confusion) Total() int { return c.TP + c.FP + c.FN + c.TN }

// Positives returns the number of actually vulnerable instances (TP+FN).
func (c Confusion) Positives() int { return c.TP + c.FN }

// Negatives returns the number of actually clean instances (FP+TN).
func (c Confusion) Negatives() int { return c.FP + c.TN }

// PredictedPositives returns the number of instances the tool reported.
func (c Confusion) PredictedPositives() int { return c.TP + c.FP }

// PredictedNegatives returns the number of instances the tool left
// unreported.
func (c Confusion) PredictedNegatives() int { return c.FN + c.TN }

// Prevalence returns the fraction of actually vulnerable instances, or 0
// for an empty matrix.
func (c Confusion) Prevalence() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.Positives()) / float64(t)
}

// Add returns the cell-wise sum of two confusion matrices. Summing per-case
// or per-class matrices yields the micro-average matrix.
func (c Confusion) Add(other Confusion) Confusion {
	return Confusion{
		TP: c.TP + other.TP,
		FP: c.FP + other.FP,
		FN: c.FN + other.FN,
		TN: c.TN + other.TN,
	}
}

// String renders the matrix compactly for reports and error messages.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d FN=%d TN=%d", c.TP, c.FP, c.FN, c.TN)
}

// Scale returns a matrix with every cell multiplied by k (k >= 0). It is
// used by the property analyser to verify scale invariance of metrics.
func (c Confusion) Scale(k int) (Confusion, error) {
	if k < 0 {
		return Confusion{}, fmt.Errorf("metrics: negative scale factor %d", k)
	}
	return Confusion{TP: c.TP * k, FP: c.FP * k, FN: c.FN * k, TN: c.TN * k}, nil
}

// Rates returns the four cell proportions (TP, FP, FN, TN)/total. An empty
// matrix yields all zeros.
func (c Confusion) Rates() (tp, fp, fn, tn float64) {
	t := float64(c.Total())
	if t == 0 {
		return 0, 0, 0, 0
	}
	return float64(c.TP) / t, float64(c.FP) / t, float64(c.FN) / t, float64(c.TN) / t
}
