package metrics

import (
	"errors"
	"math"
	"testing"
)

func TestMicroAverage(t *testing.T) {
	perClass := []Confusion{
		{TP: 1, FP: 2, FN: 3, TN: 4},
		{TP: 10, FP: 20, FN: 30, TN: 40},
	}
	sum, err := MicroAverage(perClass)
	if err != nil {
		t.Fatal(err)
	}
	if sum != (Confusion{11, 22, 33, 44}) {
		t.Fatalf("micro = %+v", sum)
	}
	if _, err := MicroAverage(nil); !errors.Is(err, ErrNoClasses) {
		t.Fatal("empty micro-average should fail")
	}
}

func TestMacroAverage(t *testing.T) {
	rec := MustByID(IDRecall)
	perClass := []Confusion{
		{TP: 8, FN: 2, TN: 10}, // recall 0.8
		{TP: 2, FN: 8, TN: 10}, // recall 0.2
	}
	res, err := MacroAverage(rec, perClass)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-0.5) > 1e-12 {
		t.Fatalf("macro recall = %g, want 0.5", res.Value)
	}
	if res.DefinedOn != 2 || res.TotalClasses != 2 {
		t.Fatalf("definedness bookkeeping wrong: %+v", res)
	}
}

func TestMacroAverageSkipsUndefined(t *testing.T) {
	rec := MustByID(IDRecall)
	perClass := []Confusion{
		{TP: 8, FN: 2}, // recall 0.8
		{TN: 10},       // recall undefined (no positives)
	}
	res, err := MacroAverage(rec, perClass)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0.8 || res.DefinedOn != 1 || res.TotalClasses != 2 {
		t.Fatalf("macro with undefined class = %+v", res)
	}
}

func TestMacroAverageAllUndefined(t *testing.T) {
	rec := MustByID(IDRecall)
	_, err := MacroAverage(rec, []Confusion{{TN: 5}, {TN: 3}})
	if err == nil || !IsUndefined(err) {
		t.Fatalf("expected UndefinedError, got %v", err)
	}
}

func TestMacroAveragePropagatesInvalidMatrix(t *testing.T) {
	rec := MustByID(IDRecall)
	if _, err := MacroAverage(rec, []Confusion{{TP: -1}}); err == nil || IsUndefined(err) {
		t.Fatalf("invalid matrix should be a hard error, got %v", err)
	}
}

func TestMacroAverageEmpty(t *testing.T) {
	if _, err := MacroAverage(MustByID(IDRecall), nil); !errors.Is(err, ErrNoClasses) {
		t.Fatal("empty macro-average should fail")
	}
}

func TestMicroVsMacroDivergence(t *testing.T) {
	// Micro is dominated by the large class; macro treats classes equally.
	rec := MustByID(IDRecall)
	perClass := []Confusion{
		{TP: 90, FN: 10}, // large class, recall 0.9
		{TP: 1, FN: 9},   // small class, recall 0.1
	}
	micro, _ := MicroAverage(perClass)
	microVal, err := rec.Value(micro)
	if err != nil {
		t.Fatal(err)
	}
	macro, err := MacroAverage(rec, perClass)
	if err != nil {
		t.Fatal(err)
	}
	if !(microVal > 0.8 && macro.Value == 0.5) {
		t.Fatalf("micro=%g macro=%g; expected micro near 0.83 and macro 0.5", microVal, macro.Value)
	}
}
