package metrics

import (
	"math"
	"testing"

	"github.com/dsn2015/vdbench/internal/stats"
)

// randomConfusion draws a matrix with cells in [0, 200), forcing each
// cell to zero with probability 1/5 so degenerate denominators come up
// constantly rather than almost never.
func randomConfusion(rng *stats.RNG) Confusion {
	cell := func() int {
		if rng.Intn(5) == 0 {
			return 0
		}
		return rng.Intn(200)
	}
	return Confusion{TP: cell(), FP: cell(), FN: cell(), TN: cell()}
}

// TestMetricRangeProperty is the catalogue's range contract as a property
// test: over 1,000 seeded random confusion matrices, every metric either
// reports a typed UndefinedError or returns a finite, non-NaN value — and
// bounded metrics stay inside their declared [Lo, Hi].
func TestMetricRangeProperty(t *testing.T) {
	const trials = 1000
	const eps = 1e-9
	rng := stats.NewRNG(1)
	catalog := Catalog()
	for i := 0; i < trials; i++ {
		c := randomConfusion(rng)
		for _, m := range catalog {
			v, err := m.Value(c)
			if err != nil {
				if !IsUndefined(err) {
					t.Fatalf("%s on {%s}: non-Undefined error %v", m.ID, c, err)
				}
				continue
			}
			if math.IsNaN(v) {
				t.Fatalf("%s on {%s} = NaN; the catalogue contract is UndefinedError, never NaN", m.ID, c)
			}
			if math.IsInf(v, 0) {
				t.Fatalf("%s on {%s} = %g; infinite ratios must surface as UndefinedError", m.ID, c, v)
			}
			if m.Bounded() && (v < m.Lo-eps || v > m.Hi+eps) {
				t.Fatalf("%s on {%s} = %g outside declared range [%g, %g]", m.ID, c, v, m.Lo, m.Hi)
			}
		}
	}
}

// degenerateMatrices enumerates every all-zero row/column combination of
// the confusion matrix: no instances at all, a single populated cell, no
// actual positives/negatives, and no predicted positives/negatives.
func degenerateMatrices() []Confusion {
	return []Confusion{
		{},             // empty matrix
		{TP: 7},        // only true positives
		{FP: 7},        // only false alarms
		{FN: 7},        // only misses
		{TN: 7},        // only true negatives
		{TP: 4, FN: 3}, // no actual negatives
		{FP: 4, TN: 3}, // no actual positives
		{TP: 4, FP: 3}, // no predicted negatives
		{FN: 4, TN: 3}, // no predicted positives
		{TP: 4, TN: 3}, // perfect classifier, both classes present
		{FP: 4, FN: 3}, // perfectly wrong classifier
	}
}

// TestMetricDegeneratePolicy pins the documented degenerate-case policy:
// on matrices with all-zero rows or columns, a metric either computes a
// legitimate in-range value or refuses with a typed UndefinedError that
// names the vanished denominator — it never leaks NaN or a generic error,
// and ValueOr substitutes the fallback exactly when Value refused.
func TestMetricDegeneratePolicy(t *testing.T) {
	for _, c := range degenerateMatrices() {
		for _, m := range Catalog() {
			v, err := m.Value(c)
			if err != nil {
				if !IsUndefined(err) {
					t.Errorf("%s on {%s}: generic error %v, want *UndefinedError", m.ID, c, err)
					continue
				}
				ue := err.(*UndefinedError)
				if ue.Metric != m.ID || ue.Reason == "" {
					t.Errorf("%s on {%s}: malformed UndefinedError %+v", m.ID, c, ue)
				}
				fb, err := m.ValueOr(c, -123)
				if err != nil || fb != -123 {
					t.Errorf("%s on {%s}: ValueOr = (%g, %v), want fallback", m.ID, c, fb, err)
				}
				continue
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s on {%s} = %g, want finite value or UndefinedError", m.ID, c, v)
			}
			if m.Bounded() && (v < m.Lo || v > m.Hi) {
				t.Errorf("%s on {%s} = %g outside [%g, %g]", m.ID, c, v, m.Lo, m.Hi)
			}
			fb, err := m.ValueOr(c, -123)
			if err != nil || fb != v {
				t.Errorf("%s on {%s}: ValueOr = (%g, %v), want defined value %g", m.ID, c, fb, err, v)
			}
		}
	}
}
