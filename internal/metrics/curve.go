package metrics

import (
	"errors"
	"sort"
)

// ScoredInstance is one test-case outcome from a tool that produces
// confidence scores: the ground-truth label and the tool's score (higher
// means "more likely vulnerable"). Threshold-free metrics (ROC AUC, average
// precision) are computed over slices of these.
type ScoredInstance struct {
	Score    float64
	Positive bool
}

// ROCPoint is one point of a ROC curve.
type ROCPoint struct {
	FPR float64
	TPR float64
}

// PRPoint is one point of a precision-recall curve.
type PRPoint struct {
	Recall    float64
	Precision float64
}

// ErrNoBothClasses is returned when a curve needs both positive and
// negative instances but the sample contains only one class.
var ErrNoBothClasses = errors.New("metrics: curve requires both positive and negative instances")

// sortByScoreDesc returns a copy of xs sorted by descending score with a
// deterministic tie-break on the label (positives first within a tie is
// avoided; ties are grouped and handled jointly by the curve builders).
func sortByScoreDesc(xs []ScoredInstance) []ScoredInstance {
	out := append([]ScoredInstance(nil), xs...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// ROC computes the ROC curve of the scored sample. Instances with equal
// scores are processed as a block, producing the standard "diagonal"
// segment for ties. The returned curve starts at (0,0) and ends at (1,1).
func ROC(xs []ScoredInstance) ([]ROCPoint, error) {
	var pos, neg int
	for _, x := range xs {
		if x.Positive {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, ErrNoBothClasses
	}
	sorted := sortByScoreDesc(xs)
	points := []ROCPoint{{FPR: 0, TPR: 0}}
	var tp, fp int
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j].Score == sorted[i].Score {
			if sorted[j].Positive {
				tp++
			} else {
				fp++
			}
			j++
		}
		points = append(points, ROCPoint{
			FPR: float64(fp) / float64(neg),
			TPR: float64(tp) / float64(pos),
		})
		i = j
	}
	return points, nil
}

// AUC computes the area under the ROC curve via the trapezoidal rule. It
// equals the probability that a random vulnerable instance is scored above
// a random clean one (with ties counted half).
func AUC(xs []ScoredInstance) (float64, error) {
	curve, err := ROC(xs)
	if err != nil {
		return 0, err
	}
	var area float64
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area, nil
}

// PRCurve computes the precision-recall curve of the scored sample,
// processing score ties as blocks. The curve is returned in increasing
// recall order.
func PRCurve(xs []ScoredInstance) ([]PRPoint, error) {
	var pos int
	for _, x := range xs {
		if x.Positive {
			pos++
		}
	}
	if pos == 0 || pos == len(xs) {
		return nil, ErrNoBothClasses
	}
	sorted := sortByScoreDesc(xs)
	var points []PRPoint
	var tp, fp int
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j].Score == sorted[i].Score {
			if sorted[j].Positive {
				tp++
			} else {
				fp++
			}
			j++
		}
		points = append(points, PRPoint{
			Recall:    float64(tp) / float64(pos),
			Precision: float64(tp) / float64(tp+fp),
		})
		i = j
	}
	return points, nil
}

// AveragePrecision computes the area under the precision-recall curve using
// the step-wise interpolation standard in IR evaluation: each recall
// increment contributes its precision.
func AveragePrecision(xs []ScoredInstance) (float64, error) {
	curve, err := PRCurve(xs)
	if err != nil {
		return 0, err
	}
	var ap float64
	prevRecall := 0.0
	for _, p := range curve {
		ap += (p.Recall - prevRecall) * p.Precision
		prevRecall = p.Recall
	}
	return ap, nil
}

// AtThreshold classifies the scored sample at the given threshold (score >=
// threshold predicts "vulnerable") and returns the resulting confusion
// matrix.
func AtThreshold(xs []ScoredInstance, threshold float64) Confusion {
	var c Confusion
	for _, x := range xs {
		predicted := x.Score >= threshold
		switch {
		case predicted && x.Positive:
			c.TP++
		case predicted && !x.Positive:
			c.FP++
		case !predicted && x.Positive:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}
