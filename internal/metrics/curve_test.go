package metrics

import (
	"errors"
	"math"
	"testing"
)

func scored(pairs ...struct {
	s float64
	p bool
}) []ScoredInstance {
	out := make([]ScoredInstance, len(pairs))
	for i, x := range pairs {
		out[i] = ScoredInstance{Score: x.s, Positive: x.p}
	}
	return out
}

func sp(s float64, p bool) struct {
	s float64
	p bool
} {
	return struct {
		s float64
		p bool
	}{s, p}
}

func TestAUCPerfectSeparation(t *testing.T) {
	xs := scored(sp(0.9, true), sp(0.8, true), sp(0.3, false), sp(0.1, false))
	auc, err := AUC(xs)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Fatalf("AUC = %g, want 1", auc)
	}
}

func TestAUCInverted(t *testing.T) {
	xs := scored(sp(0.9, false), sp(0.8, false), sp(0.3, true), sp(0.1, true))
	auc, err := AUC(xs)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0 {
		t.Fatalf("AUC = %g, want 0", auc)
	}
}

func TestAUCAllTiedIsHalf(t *testing.T) {
	xs := scored(sp(0.5, true), sp(0.5, false), sp(0.5, true), sp(0.5, false))
	auc, err := AUC(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("AUC with all ties = %g, want 0.5", auc)
	}
}

func TestAUCMatchesMannWhitney(t *testing.T) {
	xs := scored(
		sp(0.9, true), sp(0.7, false), sp(0.6, true),
		sp(0.5, false), sp(0.4, true), sp(0.2, false),
	)
	// Pairs (pos, neg) with pos>neg: (0.9 beats all 3), (0.6 beats 0.5, 0.2),
	// (0.4 beats 0.2) = 6 of 9.
	want := 6.0 / 9.0
	auc, err := AUC(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-want) > 1e-12 {
		t.Fatalf("AUC = %g, want %g", auc, want)
	}
}

func TestROCEndpoints(t *testing.T) {
	xs := scored(sp(0.9, true), sp(0.5, false), sp(0.3, true), sp(0.1, false))
	curve, err := ROC(xs)
	if err != nil {
		t.Fatal(err)
	}
	first, last := curve[0], curve[len(curve)-1]
	if first.FPR != 0 || first.TPR != 0 {
		t.Fatalf("curve starts at %+v", first)
	}
	if last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("curve ends at %+v", last)
	}
	// Monotone non-decreasing in both coordinates.
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR {
			t.Fatalf("curve not monotone at %d: %+v -> %+v", i, curve[i-1], curve[i])
		}
	}
}

func TestROCSingleClassFails(t *testing.T) {
	onlyPos := scored(sp(0.9, true), sp(0.1, true))
	if _, err := ROC(onlyPos); !errors.Is(err, ErrNoBothClasses) {
		t.Fatal("single-class ROC should fail")
	}
	if _, err := AUC(nil); !errors.Is(err, ErrNoBothClasses) {
		t.Fatal("empty AUC should fail")
	}
}

func TestROCDoesNotMutateInput(t *testing.T) {
	xs := scored(sp(0.1, false), sp(0.9, true))
	if _, err := ROC(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0].Score != 0.1 || xs[1].Score != 0.9 {
		t.Fatal("ROC reordered caller slice")
	}
}

func TestPRCurveValues(t *testing.T) {
	xs := scored(sp(0.9, true), sp(0.8, false), sp(0.7, true), sp(0.1, false))
	curve, err := PRCurve(xs)
	if err != nil {
		t.Fatal(err)
	}
	want := []PRPoint{
		{Recall: 0.5, Precision: 1},
		{Recall: 0.5, Precision: 0.5},
		{Recall: 1, Precision: 2.0 / 3.0},
		{Recall: 1, Precision: 0.5},
	}
	if len(curve) != len(want) {
		t.Fatalf("curve length %d, want %d: %+v", len(curve), len(want), curve)
	}
	for i := range want {
		if math.Abs(curve[i].Recall-want[i].Recall) > 1e-12 ||
			math.Abs(curve[i].Precision-want[i].Precision) > 1e-12 {
			t.Fatalf("point %d = %+v, want %+v", i, curve[i], want[i])
		}
	}
}

func TestPRCurveSingleClassFails(t *testing.T) {
	if _, err := PRCurve(scored(sp(1, true))); !errors.Is(err, ErrNoBothClasses) {
		t.Fatal("all-positive PR should fail")
	}
	if _, err := PRCurve(scored(sp(1, false))); !errors.Is(err, ErrNoBothClasses) {
		t.Fatal("all-negative PR should fail")
	}
}

func TestAveragePrecisionPerfect(t *testing.T) {
	xs := scored(sp(0.9, true), sp(0.8, true), sp(0.3, false))
	ap, err := AveragePrecision(xs)
	if err != nil {
		t.Fatal(err)
	}
	if ap != 1 {
		t.Fatalf("AP = %g, want 1", ap)
	}
}

func TestAveragePrecisionKnown(t *testing.T) {
	xs := scored(sp(0.9, true), sp(0.8, false), sp(0.7, true), sp(0.1, false))
	// Recall steps: 0→0.5 at precision 1, then 0.5 (precision drops, no recall
	// gain contributes 0), then 0.5→1 at precision 2/3.
	want := 0.5*1 + 0.5*(2.0/3.0)
	ap, err := AveragePrecision(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ap-want) > 1e-12 {
		t.Fatalf("AP = %g, want %g", ap, want)
	}
}

func TestAtThreshold(t *testing.T) {
	xs := scored(sp(0.9, true), sp(0.6, false), sp(0.4, true), sp(0.2, false))
	c := AtThreshold(xs, 0.5)
	want := Confusion{TP: 1, FP: 1, FN: 1, TN: 1}
	if c != want {
		t.Fatalf("AtThreshold = %+v, want %+v", c, want)
	}
	// Threshold below every score flags everything.
	c = AtThreshold(xs, 0)
	if c != (Confusion{TP: 2, FP: 2}) {
		t.Fatalf("all-flagged = %+v", c)
	}
	// Threshold above every score flags nothing.
	c = AtThreshold(xs, 2)
	if c != (Confusion{FN: 2, TN: 2}) {
		t.Fatalf("none-flagged = %+v", c)
	}
}

func TestAtThresholdBoundaryInclusive(t *testing.T) {
	xs := scored(sp(0.5, true))
	if c := AtThreshold(xs, 0.5); c.TP != 1 {
		t.Fatalf("score == threshold should be flagged: %+v", c)
	}
}
