package metrics

import (
	"errors"
	"fmt"
	"math"
)

// Orientation states which direction of a metric is better.
type Orientation int

// Orientation values. HigherIsBetter is the common case (precision,
// recall); LowerIsBetter covers error-style metrics (false positive rate).
const (
	HigherIsBetter Orientation = iota + 1
	LowerIsBetter
)

// String implements fmt.Stringer.
func (o Orientation) String() string {
	switch o {
	case HigherIsBetter:
		return "higher-is-better"
	case LowerIsBetter:
		return "lower-is-better"
	default:
		return fmt.Sprintf("Orientation(%d)", int(o))
	}
}

// UndefinedError reports that a metric is undefined on a particular
// confusion matrix (a denominator vanished). The paper treats definedness
// on degenerate matrices as one of the characteristics of a good benchmark
// metric, so the library surfaces it as a typed error instead of returning
// NaN.
type UndefinedError struct {
	Metric string
	On     Confusion
	Reason string
}

// Error implements the error interface.
func (e *UndefinedError) Error() string {
	return fmt.Sprintf("metrics: %s undefined on {%s}: %s", e.Metric, e.On, e.Reason)
}

// Metric is one candidate benchmark metric. Metrics are immutable once
// built; the catalogue in catalog.go constructs all of them.
type Metric struct {
	// ID is the short stable identifier used in tables ("precision").
	ID string
	// Name is the long human-readable name ("Precision (positive predictive value)").
	Name string
	// Aliases lists other names the literature uses for the same metric.
	Aliases []string
	// Formula is the human-readable defining formula.
	Formula string
	// Lo and Hi bound the theoretical range of the metric. Unbounded
	// metrics use ±Inf.
	Lo, Hi float64
	// Orientation states whether higher or lower values are better.
	Orientation Orientation
	// ChanceCorrected is true when the metric's baseline for a random
	// classifier is a fixed constant independent of prevalence (e.g. 0 for
	// MCC, informedness, kappa).
	ChanceCorrected bool
	// Reference cites where the metric comes from.
	Reference string

	compute func(Confusion) (float64, error)
}

// Value computes the metric on c. It returns an *UndefinedError when the
// metric is undefined on c, and an ordinary error for invalid matrices.
func (m Metric) Value(c Confusion) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	return m.compute(c)
}

// ValueOr computes the metric on c and substitutes fallback when the metric
// is undefined. Invalid matrices still return an error.
func (m Metric) ValueOr(c Confusion, fallback float64) (float64, error) {
	v, err := m.Value(c)
	if err == nil {
		return v, nil
	}
	if IsUndefined(err) {
		return fallback, nil
	}
	return 0, err
}

// Better reports whether value a is strictly better than value b under the
// metric's orientation.
func (m Metric) Better(a, b float64) bool {
	if m.Orientation == LowerIsBetter {
		return a < b
	}
	return a > b
}

// Goodness maps a raw metric value to a higher-is-better value, so that
// ranking code can treat all metrics uniformly: lower-is-better metrics are
// negated.
func (m Metric) Goodness(v float64) float64 {
	if m.Orientation == LowerIsBetter {
		return -v
	}
	return v
}

// Bounded reports whether the metric's theoretical range is finite on both
// sides.
func (m Metric) Bounded() bool {
	return !math.IsInf(m.Lo, 0) && !math.IsInf(m.Hi, 0)
}

// String implements fmt.Stringer.
func (m Metric) String() string { return m.ID }

// IsUndefined reports whether err indicates an undefined metric value.
func IsUndefined(err error) bool {
	var ue *UndefinedError
	return errors.As(err, &ue)
}

// undef is a helper for building UndefinedError values inside compute
// functions.
func undef(metric string, c Confusion, reason string) error {
	return &UndefinedError{Metric: metric, On: c, Reason: reason}
}

// ratio returns num/den or an UndefinedError when den == 0.
func ratio(metric string, c Confusion, num, den float64, reason string) (float64, error) {
	if den == 0 {
		return 0, undef(metric, c, reason)
	}
	return num / den, nil
}
