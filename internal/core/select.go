// Package core implements the paper's primary contribution: the metric
// selection methodology for vulnerability detection benchmarks. It wires
// together the computed metric property profiles (internal/metricprop),
// the usage scenarios and their criteria (internal/scenario), and the MCDA
// machinery (internal/mcda) into a pipeline that, per scenario,
//
//  1. scores every candidate metric on every criterion (analytical
//     selection via weighted sum — experiment E8), and
//  2. validates the selection with the Analytic Hierarchy Process over an
//     encoded expert panel (experiment E9), including a sensitivity
//     analysis under judgment perturbation (experiment E10).
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/dsn2015/vdbench/internal/mcda"
	"github.com/dsn2015/vdbench/internal/metricprop"
	"github.com/dsn2015/vdbench/internal/ranking"
	"github.com/dsn2015/vdbench/internal/scenario"
	"github.com/dsn2015/vdbench/internal/stats"
)

// BuildProblem converts metric profiles into an MCDA decision problem:
// alternatives are metrics, criteria are the scenario criteria, scores are
// the criterion evaluations of each profile.
func BuildProblem(profiles []metricprop.Profile) (mcda.Problem, error) {
	if len(profiles) == 0 {
		return mcda.Problem{}, errors.New("core: no metric profiles")
	}
	crits := scenario.Criteria()
	p := mcda.Problem{
		Criteria:     scenario.CriterionIDs(),
		Alternatives: make([]string, len(profiles)),
		Scores:       make([][]float64, len(profiles)),
	}
	for i, prof := range profiles {
		if prof.MetricID == "" {
			return mcda.Problem{}, fmt.Errorf("core: profile %d has no metric ID", i)
		}
		p.Alternatives[i] = prof.MetricID
		row := make([]float64, len(crits))
		for j, c := range crits {
			row[j] = c.Score(prof)
		}
		p.Scores[i] = row
	}
	return p, p.Validate()
}

// Selection is the outcome of metric selection for one scenario.
type Selection struct {
	// Scenario is the usage scenario selected for.
	Scenario scenario.Scenario
	// MetricIDs lists the candidate metrics (problem alternatives).
	MetricIDs []string
	// Scores are the aggregate adequacy scores, aligned with MetricIDs.
	Scores []float64
	// Order lists indices into MetricIDs from best to worst.
	Order []int
}

// Best returns the winning metric ID.
func (s Selection) Best() string {
	return s.MetricIDs[s.Order[0]]
}

// Top returns the k best metric IDs.
func (s Selection) Top(k int) []string {
	if k > len(s.Order) {
		k = len(s.Order)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = s.MetricIDs[s.Order[i]]
	}
	return out
}

// ScoreOf returns the aggregate score of a metric by ID.
func (s Selection) ScoreOf(metricID string) (float64, bool) {
	for i, id := range s.MetricIDs {
		if id == metricID {
			return s.Scores[i], true
		}
	}
	return 0, false
}

// orderOf computes a deterministic best-to-worst order (ties broken by
// metric ID for reproducibility).
func orderOf(ids []string, scores []float64) []int {
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] > scores[order[b]]
		}
		return ids[order[a]] < ids[order[b]]
	})
	return order
}

// Select performs the analytical selection (weighted sum of criterion
// scores under the scenario's importance weights) — the paper's
// per-scenario metric analysis.
func Select(s scenario.Scenario, profiles []metricprop.Profile) (Selection, error) {
	problem, err := BuildProblem(profiles)
	if err != nil {
		return Selection{}, err
	}
	weights, err := s.WeightVector()
	if err != nil {
		return Selection{}, err
	}
	scores, err := mcda.WeightedSum(problem, weights)
	if err != nil {
		return Selection{}, err
	}
	return Selection{
		Scenario:  s,
		MetricIDs: problem.Alternatives,
		Scores:    scores,
		Order:     orderOf(problem.Alternatives, scores),
	}, nil
}

// Validation is the outcome of the MCDA validation for one scenario.
type Validation struct {
	// Scenario is the usage scenario validated.
	Scenario scenario.Scenario
	// AHP carries the AHP scores and consistency diagnostics from the
	// aggregated expert judgments.
	AHP mcda.AHPResult
	// Selection is the AHP-based selection (same alternatives as the
	// analytical one).
	Selection Selection
	// AgreementTau is Kendall's tau-b between the analytical and the AHP
	// rankings.
	AgreementTau float64
	// TopAgreement is the top-3 overlap between the two rankings.
	TopAgreement float64
}

// ExpertPanel derives n expert judgment matrices for a scenario: the
// scenario's weight vector defines the consensus judgment, and each
// expert's matrix is a log-normal perturbation of it (inter-expert
// disagreement). sigma = 0 yields n identical consensus matrices.
func ExpertPanel(s scenario.Scenario, n int, sigma float64, rng *stats.RNG) ([]*mcda.Pairwise, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: panel size must be positive, got %d", n)
	}
	if rng == nil {
		return nil, errors.New("core: nil RNG")
	}
	weights, err := s.WeightVector()
	if err != nil {
		return nil, err
	}
	consensus, err := mcda.FromWeights(weights)
	if err != nil {
		return nil, err
	}
	panel := make([]*mcda.Pairwise, n)
	for i := range panel {
		expert, err := mcda.Perturb(consensus, sigma, rng)
		if err != nil {
			return nil, err
		}
		panel[i] = expert
	}
	return panel, nil
}

// AggregateJudgments combines a panel into one consensus matrix using the
// standard aggregation of individual judgments: the element-wise geometric
// mean, which preserves reciprocity.
func AggregateJudgments(panel []*mcda.Pairwise) (*mcda.Pairwise, error) {
	if len(panel) == 0 {
		return nil, errors.New("core: empty panel")
	}
	n := panel[0].N()
	for i, pw := range panel {
		if pw == nil || pw.N() != n {
			return nil, fmt.Errorf("core: panel member %d has wrong shape", i)
		}
	}
	out, err := mcda.NewPairwise(n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			prod := 1.0
			for _, pw := range panel {
				prod *= pw.At(i, j)
			}
			gm := math.Pow(prod, 1/float64(len(panel)))
			if gm < 1.0/9.0 {
				gm = 1.0 / 9.0
			}
			if gm > 9 {
				gm = 9
			}
			if err := out.Set(i, j, gm); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Validate runs the AHP validation for one scenario: build the expert
// panel, aggregate judgments, derive criteria weights by eigenvector,
// score the metrics, and compare with the analytical selection.
func Validate(s scenario.Scenario, profiles []metricprop.Profile, panelSize int, sigma float64, rng *stats.RNG) (Validation, error) {
	analytical, err := Select(s, profiles)
	if err != nil {
		return Validation{}, err
	}
	problem, err := BuildProblem(profiles)
	if err != nil {
		return Validation{}, err
	}
	panel, err := ExpertPanel(s, panelSize, sigma, rng)
	if err != nil {
		return Validation{}, err
	}
	consensus, err := AggregateJudgments(panel)
	if err != nil {
		return Validation{}, err
	}
	ahpRes, err := mcda.AHP(consensus, problem)
	if err != nil {
		return Validation{}, err
	}
	ahpSel := Selection{
		Scenario:  s,
		MetricIDs: problem.Alternatives,
		Scores:    ahpRes.Scores,
		Order:     orderOf(problem.Alternatives, ahpRes.Scores),
	}
	tau, err := ranking.KendallTau(analytical.Scores, ahpRes.Scores)
	if err != nil {
		return Validation{}, fmt.Errorf("core: agreement: %w", err)
	}
	top, err := ranking.TopKOverlap(analytical.Scores, ahpRes.Scores, 3)
	if err != nil {
		return Validation{}, err
	}
	return Validation{
		Scenario:     s,
		AHP:          ahpRes,
		Selection:    ahpSel,
		AgreementTau: tau,
		TopAgreement: top,
	}, nil
}

// StabilityResult reports how stable the AHP winner is under expert
// disagreement of a given magnitude.
type StabilityResult struct {
	Sigma float64
	// WinnerAgreement is the fraction of perturbed panels whose AHP winner
	// equals the consensus winner.
	WinnerAgreement float64
	// MeanTau is the mean Kendall tau between each perturbed ranking and
	// the consensus ranking.
	MeanTau float64
}

// WinnerStability runs the E10 sensitivity analysis: for the given
// judgment-noise level, it draws trials perturbed panels and measures how
// often the winning metric survives.
func WinnerStability(s scenario.Scenario, profiles []metricprop.Profile, sigma float64, trials int, rng *stats.RNG) (StabilityResult, error) {
	if trials <= 0 {
		return StabilityResult{}, fmt.Errorf("core: trials must be positive, got %d", trials)
	}
	if rng == nil {
		return StabilityResult{}, errors.New("core: nil RNG")
	}
	problem, err := BuildProblem(profiles)
	if err != nil {
		return StabilityResult{}, err
	}
	weights, err := s.WeightVector()
	if err != nil {
		return StabilityResult{}, err
	}
	consensus, err := mcda.FromWeights(weights)
	if err != nil {
		return StabilityResult{}, err
	}
	base, err := mcda.AHP(consensus, problem)
	if err != nil {
		return StabilityResult{}, err
	}
	baseOrder := orderOf(problem.Alternatives, base.Scores)
	baseWinner := problem.Alternatives[baseOrder[0]]

	agree := 0
	var tauSum float64
	tauCount := 0
	for i := 0; i < trials; i++ {
		noisy, err := mcda.Perturb(consensus, sigma, rng)
		if err != nil {
			return StabilityResult{}, err
		}
		res, err := mcda.AHP(noisy, problem)
		if err != nil {
			return StabilityResult{}, err
		}
		order := orderOf(problem.Alternatives, res.Scores)
		if problem.Alternatives[order[0]] == baseWinner {
			agree++
		}
		if tau, err := ranking.KendallTau(base.Scores, res.Scores); err == nil {
			tauSum += tau
			tauCount++
		}
	}
	out := StabilityResult{
		Sigma:           sigma,
		WinnerAgreement: float64(agree) / float64(trials),
	}
	if tauCount > 0 {
		out.MeanTau = tauSum / float64(tauCount)
	}
	return out, nil
}
