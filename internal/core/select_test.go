package core

import (
	"sync"
	"testing"

	"github.com/dsn2015/vdbench/internal/metricprop"
	"github.com/dsn2015/vdbench/internal/metrics"
	"github.com/dsn2015/vdbench/internal/scenario"
	"github.com/dsn2015/vdbench/internal/stats"
)

// cachedProfiles analyses the full catalogue once per test binary (the
// analysis is the expensive part of these tests).
var (
	profilesOnce sync.Once
	profilesVal  []metricprop.Profile
	profilesErr  error
)

func catalogProfiles(t *testing.T) []metricprop.Profile {
	t.Helper()
	profilesOnce.Do(func() {
		cfg := metricprop.Config{
			MonotonicitySamples:  500,
			WorkloadSize:         2000,
			StabilityTrials:      120,
			DiscriminationTrials: 200,
			Tolerance:            1e-9,
		}
		profilesVal, profilesErr = metricprop.AnalyzeCatalog(cfg, stats.NewRNG(2015))
	})
	if profilesErr != nil {
		t.Fatal(profilesErr)
	}
	return profilesVal
}

func TestBuildProblem(t *testing.T) {
	profiles := catalogProfiles(t)
	p, err := BuildProblem(profiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Alternatives) != len(metrics.Catalog()) {
		t.Fatalf("alternatives = %d", len(p.Alternatives))
	}
	if len(p.Criteria) != len(scenario.Criteria()) {
		t.Fatalf("criteria = %d", len(p.Criteria))
	}
	if _, err := BuildProblem(nil); err == nil {
		t.Fatal("empty profiles accepted")
	}
	if _, err := BuildProblem([]metricprop.Profile{{}}); err == nil {
		t.Fatal("profile without metric ID accepted")
	}
}

// TestScenarioSelections is the headline result: each scenario's
// analytical selection must surface its expected metric family near the
// top.
func TestScenarioSelections(t *testing.T) {
	profiles := catalogProfiles(t)
	for _, s := range scenario.Scenarios() {
		sel, err := Select(s, profiles)
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		top3 := sel.Top(3)
		found := false
		for _, want := range s.ExpectedMetrics {
			for _, got := range top3 {
				if got == want {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("%s: expected one of %v in the top 3, got %v (best=%s)",
				s.ID, s.ExpectedMetrics, top3, sel.Best())
		}
	}
}

func TestSelectionsDifferAcrossScenarios(t *testing.T) {
	// The paper's core claim: no single metric fits all scenarios — the
	// winners must not be identical across all four.
	profiles := catalogProfiles(t)
	winners := map[string]bool{}
	for _, s := range scenario.Scenarios() {
		sel, err := Select(s, profiles)
		if err != nil {
			t.Fatal(err)
		}
		winners[sel.Best()] = true
	}
	if len(winners) < 2 {
		t.Fatalf("all scenarios picked the same winner: %v", winners)
	}
}

func TestAbsoluteCountsNeverWin(t *testing.T) {
	// Absolute counts (detected-count, false-alarm-count) and the
	// prevalence pseudo-metric must never reach any scenario's top 3:
	// that is why the paper rejects them as benchmark metrics.
	banned := map[string]bool{
		metrics.IDDetectedCount:   true,
		metrics.IDFalseAlarmCount: true,
		metrics.IDPrevalence:      true,
	}
	profiles := catalogProfiles(t)
	for _, s := range scenario.Scenarios() {
		sel, err := Select(s, profiles)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range sel.Top(3) {
			if banned[id] {
				t.Errorf("%s: banned metric %s reached the top 3", s.ID, id)
			}
		}
	}
}

func TestSelectionHelpers(t *testing.T) {
	profiles := catalogProfiles(t)
	s := scenario.Scenarios()[0]
	sel, err := Select(s, profiles)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best() != sel.Top(1)[0] {
		t.Fatal("Best and Top(1) disagree")
	}
	if got := sel.Top(1000); len(got) != len(sel.MetricIDs) {
		t.Fatal("Top should clamp k")
	}
	if _, ok := sel.ScoreOf(sel.Best()); !ok {
		t.Fatal("ScoreOf lost the winner")
	}
	if _, ok := sel.ScoreOf("no-such-metric"); ok {
		t.Fatal("ScoreOf resolved a bogus ID")
	}
	// Scores must be sorted along Order.
	for i := 1; i < len(sel.Order); i++ {
		if sel.Scores[sel.Order[i-1]] < sel.Scores[sel.Order[i]] {
			t.Fatal("Order not descending")
		}
	}
}

func TestExpertPanel(t *testing.T) {
	s := scenario.Scenarios()[0]
	panel, err := ExpertPanel(s, 5, 0.15, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(panel) != 5 {
		t.Fatalf("panel size = %d", len(panel))
	}
	// sigma=0: all experts identical to consensus.
	same, err := ExpertPanel(s, 3, 0, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(same); i++ {
		for a := 0; a < same[0].N(); a++ {
			for b := 0; b < same[0].N(); b++ {
				if same[i].At(a, b) != same[0].At(a, b) {
					t.Fatal("zero-sigma panel disagrees")
				}
			}
		}
	}
	if _, err := ExpertPanel(s, 0, 0.1, stats.NewRNG(1)); err == nil {
		t.Fatal("empty panel accepted")
	}
	if _, err := ExpertPanel(s, 3, 0.1, nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
}

func TestAggregateJudgments(t *testing.T) {
	s := scenario.Scenarios()[1]
	panel, err := ExpertPanel(s, 7, 0.2, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	agg, err := AggregateJudgments(panel)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregation preserves reciprocity and stays on the Saaty scale.
	n := agg.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			prod := agg.At(i, j) * agg.At(j, i)
			if prod < 0.999 || prod > 1.001 {
				t.Fatalf("reciprocity violated at (%d,%d): %g", i, j, prod)
			}
		}
	}
	if _, err := AggregateJudgments(nil); err == nil {
		t.Fatal("empty panel accepted")
	}
}

func TestValidateAgreesWithAnalytical(t *testing.T) {
	profiles := catalogProfiles(t)
	for _, s := range scenario.Scenarios() {
		v, err := Validate(s, profiles, 5, 0.1, stats.NewRNG(77))
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if !v.AHP.Consistency.Consistent() {
			t.Errorf("%s: aggregated judgments inconsistent (CR=%g)", s.ID, v.AHP.Consistency.CR)
		}
		if v.AgreementTau < 0.6 {
			t.Errorf("%s: AHP vs analytical tau = %g, want >= 0.6", s.ID, v.AgreementTau)
		}
		if v.TopAgreement < 1.0/3.0 {
			t.Errorf("%s: top-3 overlap = %g, want >= 1/3", s.ID, v.TopAgreement)
		}
	}
}

func TestWinnerStability(t *testing.T) {
	profiles := catalogProfiles(t)
	s := scenario.Scenarios()[1] // audit
	low, err := WinnerStability(s, profiles, 0.05, 60, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	high, err := WinnerStability(s, profiles, 0.8, 60, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if low.WinnerAgreement < 0.8 {
		t.Errorf("low-noise winner agreement = %g, want >= 0.8", low.WinnerAgreement)
	}
	if low.WinnerAgreement < high.WinnerAgreement {
		t.Errorf("agreement should not improve with noise: %g < %g", low.WinnerAgreement, high.WinnerAgreement)
	}
	if low.MeanTau <= high.MeanTau-1e-9 {
		t.Errorf("mean tau should degrade with noise: %g vs %g", low.MeanTau, high.MeanTau)
	}
	if _, err := WinnerStability(s, profiles, 0.1, 0, stats.NewRNG(1)); err == nil {
		t.Fatal("zero trials accepted")
	}
	if _, err := WinnerStability(s, profiles, 0.1, 5, nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
}

func TestValidateDeterministic(t *testing.T) {
	profiles := catalogProfiles(t)
	s := scenario.Scenarios()[2]
	v1, err1 := Validate(s, profiles, 5, 0.1, stats.NewRNG(3))
	v2, err2 := Validate(s, profiles, 5, 0.1, stats.NewRNG(3))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if v1.AgreementTau != v2.AgreementTau || v1.Selection.Best() != v2.Selection.Best() {
		t.Fatal("validation nondeterministic")
	}
}
