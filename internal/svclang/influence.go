package svclang

import "strings"

// Influence analysis for the pruned ground-truth oracle.
//
// The exhaustive oracle enumerates the full value pool over every
// parameter (pool^|params| probes, squared for stateful request
// pairs). Almost all of those probes are provably incapable of
// changing any sink's verdict or its first witness. This file computes
// a per-service oraclePlan that the pruned search in oracle.go
// executes; the plan is built from four sound, witness-preserving
// observations:
//
//  1. Static safety. A sink whose value no parameter data can reach —
//     through variables, session-store round trips, or any live branch
//     — can never carry a tainted character, so StructuralTaint is
//     false on every probe and the sink is safe with zero probes.
//     Branches guarded by constant conditions are resolved statically,
//     so a sink in a dead arm is unreachable and equally safe.
//
//  2. Influence groups. Each remaining sink is influenced (data or
//     control, rejects included) by a subset of the parameters; sinks
//     with the same influence set form a group that is enumerated over
//     only those parameters, with every other parameter pinned to the
//     first benign pool value. The exhaustive first witness of a sink
//     assigns the first pool value to every non-influencing parameter
//     (outcomes are invariant in them and the odometer counts the
//     first value as 0), so pinning preserves witnesses exactly.
//
//  3. Predicate classes. If every condition a parameter can influence
//     is a pure function of that parameter alone (literals and
//     builtins only — no variables, no loads, no other parameters),
//     two pool values that decide all those conditions identically are
//     interchangeable for branch selection. The first value of each
//     class represents it; later classmates are kept only when their
//     content can matter at a sink (observation 4).
//
//  4. Judge equivalence classes. Two pool values are interchangeable
//     at a sink when their segments provably receive the same
//     structural-taint verdict at every event and leave the judge's
//     scan of the surrounding characters unchanged — e.g. at a SQL
//     sink every quote-free value carrying a letter behaves like every
//     other (the quote state can't change, and any tainted non-digit
//     outside a string literal is structural), and at a path sink
//     every separator-bearing value is uniformly vulnerable. The
//     builtin chains on the parameter's dataflow paths into each sink
//     gate the classes: chains that can drop characters (numeric,
//     sanitize_path) may empty the segment and re-parent a command
//     backslash escape or join path dots across it, and escape_shell
//     mints backslashes, so such chains demote values to singleton
//     classes. kindClassKey documents the full per-kind argument. A
//     value is enumerated only if it is the first of its composite
//     (predicate × per-sink judge) class; replacing a skipped value
//     with its earlier classmate reproduces the exact event verdicts,
//     which is why skipping it cannot move a first witness.
//
// Soundness of the combination (pruned ≡ exhaustive, witnesses
// included) is locked by TestAnalyzePruningMatchesExhaustive,
// FuzzAnalyzePruningDifferential and the early-exit property test.

// maxVirtualParams bounds the per-sink bookkeeping: stateless services
// have at most maxOracleParams parameters; stateful services have one
// parameter seen as two virtual ones (its request-1 and request-2
// values).
const maxVirtualParams = maxOracleParams

// oraclePlan is the pruned search plan for one service.
type oraclePlan struct {
	stateful bool
	// params is the number of virtual parameters: len(svc.Params) for
	// stateless services, 2 for stateful ones (request-1 and request-2
	// values of the single parameter).
	params int
	// groups are the disjoint sink groups to enumerate; sinks absent
	// from every group are statically safe and receive zero probes.
	groups []oracleGroup
	// exhaustiveProbes is the request-execution count of the exhaustive
	// search over the same pool: pool^params, or 2*pool^2 for stateful
	// pair enumeration. The oracle telemetry counts pruned probes
	// against this space.
	exhaustiveProbes uint64
}

// oracleGroup is one influence group: the sinks it decides, the virtual
// parameters it enumerates and the kept pool indices per parameter.
type oracleGroup struct {
	sinkIDs []int
	params  []int   // ascending virtual-parameter indices
	keeps   [][]int // kept pool indices (ascending) per entry of params
}

// planned is the number of request executions the plan's groups will
// perform if no early exit fires; analyzeProbing compares it against
// the exhaustive space and falls back to the single exhaustive sweep
// when pruning cannot win.
func (p *oraclePlan) planned() uint64 {
	var total uint64
	for gi := range p.groups {
		g := &p.groups[gi]
		if p.stateful {
			k1, k2 := uint64(1), uint64(1)
			for j, par := range g.params {
				if par == 0 {
					k1 = uint64(len(g.keeps[j]))
				} else {
					k2 = uint64(len(g.keeps[j]))
				}
			}
			total += 2 * k1 * k2
		} else {
			n := uint64(1)
			for _, keep := range g.keeps {
				n *= uint64(len(keep))
			}
			total += n
		}
	}
	return total
}

// builtin bitmask over Builtin values.
type builtinMask uint16

func (m builtinMask) has(fn Builtin) bool { return m&(1<<uint(fn)) != 0 }

// sinkReach accumulates what the reachability walk learns about one
// sink: whether any live path reaches it, which virtual parameters can
// influence its data/behaviour, and the builtins applied on each
// parameter's dataflow paths into it.
type sinkReach struct {
	id      int
	kind    SinkKind
	reached bool
	data    uint32 // virtual params whose characters can reach the value
	infl    uint32 // data ∪ control ∪ reject guards
	bset    []builtinMask
}

// condOcc is one occurrence of a condition in a live arm of one
// execution phase (stateful services walk the body twice, once per
// virtual parameter).
type condOcc struct {
	c      Cond
	infl   uint32
	simple bool // pure function of exactly one virtual parameter
	param  int  // that parameter, when simple
}

// exprFacts is the walk's abstract value: which virtual parameters'
// data can occupy the expression's characters, which can influence it
// at all, and the builtins on each parameter's dataflow paths.
type exprFacts struct {
	data uint32
	infl uint32
	bset []builtinMask
}

// reachWalker runs the abstract interpretation. All sets only ever
// grow, so iterating each phase's walk to a fixpoint converges (the
// lattice height is bounded by the handful of bits involved).
type reachWalker struct {
	svc      *Service
	nv       int
	stateful bool
	phase    int
	assigned map[string]bool // parameters the body reassigns

	varData map[string]uint32
	varInfl map[string]uint32
	varB    map[string][]builtinMask

	stData map[string]uint32
	stInfl map[string]uint32
	stB    map[string][]builtinMask

	rejectGuards uint32

	sinks     map[int]*sinkReach
	sinkOrder []int

	// Condition occurrences per phase, indexed by visit order. Cond
	// nodes contain slices and are not comparable, so occurrences are
	// identified positionally: the walk is deterministic and constant
	// conditions are resolved syntactically, so every pass visits the
	// same live conditions in the same order.
	phaseConds [][]*condOcc
	condSeq    int

	changed bool
}

func newReachWalker(svc *Service, stateful bool) *reachWalker {
	nv := len(svc.Params)
	if stateful {
		nv = 2
	}
	// Parameters are mutable: a body may reassign one, after which its
	// identifier no longer denotes the request value. Reassigned
	// parameters flow like ordinary variables (their var-map entries are
	// seeded with the parameter bit each phase) and are excluded from
	// predicate classing. The scan includes dead arms — an
	// over-approximation that only costs precision.
	assigned := map[string]bool{}
	isParam := map[string]bool{}
	for _, p := range svc.Params {
		isParam[p] = true
	}
	var scan func(stmts []Stmt)
	scan = func(stmts []Stmt) {
		for _, st := range stmts {
			switch v := st.(type) {
			case Assign:
				if isParam[v.Name] {
					assigned[v.Name] = true
				}
			case If:
				scan(v.Then)
				scan(v.Else)
			case Repeat:
				scan(v.Body)
			}
		}
	}
	scan(svc.Body)
	return &reachWalker{
		svc:      svc,
		nv:       nv,
		stateful: stateful,
		assigned: assigned,
		varData:  map[string]uint32{},
		varInfl:  map[string]uint32{},
		varB:     map[string][]builtinMask{},
		stData:   map[string]uint32{},
		stInfl:   map[string]uint32{},
		stB:      map[string][]builtinMask{},

		sinks: map[int]*sinkReach{},
	}
}

// paramBit maps a parameter name to its virtual-parameter bit for the
// current phase, or -1 for non-parameter names.
func (w *reachWalker) paramBit(name string) int {
	for i, p := range w.svc.Params {
		if p == name {
			if w.stateful {
				return w.phase
			}
			return i
		}
	}
	return -1
}

func (w *reachWalker) grow32(m map[string]uint32, key string, bits uint32) {
	if m[key]|bits != m[key] {
		m[key] |= bits
		w.changed = true
	}
}

func (w *reachWalker) growB(m map[string][]builtinMask, key string, bs []builtinMask) {
	cur := m[key]
	if cur == nil {
		cur = make([]builtinMask, w.nv)
		m[key] = cur
	}
	for i, b := range bs {
		if cur[i]|b != cur[i] {
			cur[i] |= b
			w.changed = true
		}
	}
}

func mergeB(dst, src []builtinMask) {
	for i, b := range src {
		dst[i] |= b
	}
}

// expr computes the abstract value of e in the current phase.
func (w *reachWalker) expr(e Expr) exprFacts {
	switch x := e.(type) {
	case Lit:
		return exprFacts{bset: make([]builtinMask, w.nv)}
	case Ident:
		// Parameters are seeded into the var maps each phase, so one
		// lookup covers both the original request value and anything
		// later assigned over it.
		f := exprFacts{data: w.varData[x.Name], infl: w.varInfl[x.Name], bset: make([]builtinMask, w.nv)}
		if b := w.varB[x.Name]; b != nil {
			mergeB(f.bset, b)
		}
		return f
	case Call:
		f := exprFacts{bset: make([]builtinMask, w.nv)}
		for _, a := range x.Args {
			af := w.expr(a)
			f.data |= af.data
			f.infl |= af.infl
			mergeB(f.bset, af.bset)
			// The builtin transforms the characters of every parameter
			// whose data flows through this argument.
			for p := 0; p < w.nv; p++ {
				if af.data&(1<<uint(p)) != 0 {
					f.bset[p] |= 1 << uint(x.Fn)
				}
			}
		}
		return f
	case LoadExpr:
		f := exprFacts{data: w.stData[x.Key], infl: w.stInfl[x.Key], bset: make([]builtinMask, w.nv)}
		if b := w.stB[x.Key]; b != nil {
			mergeB(f.bset, b)
		}
		return f
	default:
		// Unknown expressions cannot occur post-Validate; treat them as
		// influenced by everything, which only disables pruning.
		all := uint32(1<<uint(w.nv)) - 1
		f := exprFacts{data: all, infl: all, bset: make([]builtinMask, w.nv)}
		for i := range f.bset {
			f.bset[i] = ^builtinMask(0)
		}
		return f
	}
}

// condFacts folds the influence facts of every expression inside c and
// reports whether c is a pure function of exactly one parameter
// (simple): load-free, variable-free, and naming a single parameter.
func (w *reachWalker) condFacts(c Cond) (infl uint32, simple bool, param int) {
	var params uint32
	pure := true
	var scanExpr func(e Expr)
	scanExpr = func(e Expr) {
		switch x := e.(type) {
		case Lit:
		case Ident:
			if bit := w.paramBit(x.Name); bit >= 0 && !w.assigned[x.Name] {
				params |= 1 << uint(bit)
			} else {
				pure = false
			}
		case Call:
			for _, a := range x.Args {
				scanExpr(a)
			}
		case LoadExpr:
			pure = false
		default:
			pure = false
		}
		f := w.expr(e)
		infl |= f.infl
	}
	var scanCond func(c Cond)
	scanCond = func(c Cond) {
		switch x := c.(type) {
		case Match:
			scanExpr(x.Expr)
		case Contains:
			scanExpr(x.Expr)
		case Eq:
			scanExpr(x.Expr)
		case Not:
			scanCond(x.Inner)
		case BoolLit:
		default:
			pure = false
			infl |= uint32(1<<uint(w.nv)) - 1
		}
	}
	scanCond(c)
	if !pure || bitCount(params) != 1 {
		return infl, false, -1
	}
	return infl, true, lowestBit(params)
}

func bitCount(m uint32) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}

func lowestBit(m uint32) int {
	for i := 0; i < 32; i++ {
		if m&(1<<uint(i)) != 0 {
			return i
		}
	}
	return -1
}

// recordCond registers (or refreshes) the condition occurrence at the
// current walk position and returns its converged influence set.
// Influence facts can grow as variable and store sets converge, so
// re-walks merge into the existing occurrence.
func (w *reachWalker) recordCond(c Cond) uint32 {
	infl, simple, param := w.condFacts(c)
	list := w.phaseConds[w.phase]
	if w.condSeq < len(list) {
		occ := list[w.condSeq]
		w.condSeq++
		if occ.infl|infl != occ.infl {
			occ.infl |= infl
			w.changed = true
		}
		return occ.infl
	}
	w.phaseConds[w.phase] = append(list, &condOcc{c: c, infl: infl, simple: simple, param: param})
	w.condSeq++
	return infl
}

// sink fetches (or creates) the reach record of sink id.
func (w *reachWalker) sink(id int, kind SinkKind) *sinkReach {
	rec := w.sinks[id]
	if rec == nil {
		rec = &sinkReach{id: id, kind: kind, bset: make([]builtinMask, w.nv)}
		w.sinks[id] = rec
		w.sinkOrder = append(w.sinkOrder, id)
	}
	return rec
}

// walk abstractly executes stmts under the control context ctx (the
// union of parameter bits influencing any enclosing live condition).
func (w *reachWalker) walk(stmts []Stmt, ctx uint32) {
	for _, s := range stmts {
		switch v := s.(type) {
		case VarDecl:
			// Hoisted empty value: contributes nothing. The runtime
			// reset to "" only shrinks taint, and the analysis is a
			// union over all paths, so ignoring the reset is sound.
		case Assign:
			f := w.expr(v.Expr)
			w.grow32(w.varData, v.Name, f.data)
			w.grow32(w.varInfl, v.Name, f.infl|ctx)
			w.growB(w.varB, v.Name, f.bset)
		case If:
			if val, ok := evalConstCond(v.Cond); ok {
				if val {
					w.walk(v.Then, ctx)
				} else {
					w.walk(v.Else, ctx)
				}
				continue
			}
			cinfl := w.recordCond(v.Cond)
			w.walk(v.Then, ctx|cinfl)
			w.walk(v.Else, ctx|cinfl)
		case Repeat:
			w.walk(v.Body, ctx)
		case Sink:
			f := w.expr(v.Expr)
			rec := w.sink(v.ID, v.Kind)
			rec.reached = true
			if rec.data|f.data != rec.data || rec.infl|(f.infl|ctx) != rec.infl {
				w.changed = true
			}
			rec.data |= f.data
			rec.infl |= f.infl | ctx
			mergeB(rec.bset, f.bset)
		case Reject:
			// Any parameter that can steer control to this reject can
			// suppress every later sink event and store write of the
			// request; fold its guards in after the walk (foldRejects).
			if w.rejectGuards|ctx != w.rejectGuards {
				w.rejectGuards |= ctx
				w.changed = true
			}
		case Store:
			f := w.expr(v.Expr)
			w.grow32(w.stData, v.Key, f.data)
			w.grow32(w.stInfl, v.Key, f.infl|ctx)
			w.growB(w.stB, v.Key, f.bset)
		}
	}
}

// foldRejects adds the accumulated reject guards to every sink and
// store-key influence set of the current phase: a reject anywhere in
// the request can suppress later events and writes, so its guards
// influence them all (a sound over-approximation that also covers
// writes and events textually before the reject).
func (w *reachWalker) foldRejects() {
	for _, id := range w.sinkOrder {
		rec := w.sinks[id]
		if rec.infl|w.rejectGuards != rec.infl {
			rec.infl |= w.rejectGuards
			w.changed = true
		}
	}
	for k := range w.stInfl {
		if w.stInfl[k]|w.rejectGuards != w.stInfl[k] {
			w.stInfl[k] |= w.rejectGuards
			w.changed = true
		}
	}
}

// runPhase iterates walk+foldRejects to a fixpoint for one phase.
// Variables are request-local, so each phase starts them fresh; the
// session-store sets persist from the previous phase (that is the
// second-order channel).
func (w *reachWalker) runPhase(phase int) {
	w.phase = phase
	w.varData = map[string]uint32{}
	w.varInfl = map[string]uint32{}
	w.varB = map[string][]builtinMask{}
	for _, p := range w.svc.Params {
		bit := uint32(1) << uint(w.paramBit(p))
		w.varData[p] = bit
		w.varInfl[p] = bit
		w.varB[p] = make([]builtinMask, w.nv)
	}
	w.rejectGuards = 0
	for len(w.phaseConds) <= phase {
		w.phaseConds = append(w.phaseConds, nil)
	}
	for i := 0; i < 64; i++ {
		w.changed = false
		w.condSeq = 0
		w.walk(w.svc.Body, 0)
		w.foldRejects()
		if !w.changed {
			return
		}
	}
}

// evalConstCond statically evaluates a condition that references no
// parameters, variables or loads; ok is false when the condition's
// value can vary at runtime.
func evalConstCond(c Cond) (val, ok bool) {
	return evalPureCond(c, "", TString{})
}

// evalPureExpr evaluates a load-free expression whose identifiers all
// name the given parameter, with the parameter bound to v. ok is false
// when the expression is not such a pure function.
func evalPureExpr(e Expr, param string, v TString) (TString, bool) {
	switch x := e.(type) {
	case Lit:
		return NewTString(x.Value), true
	case Ident:
		if param != "" && x.Name == param {
			return v, true
		}
		return TString{}, false
	case Call:
		args := make([]TString, len(x.Args))
		for i, a := range x.Args {
			av, ok := evalPureExpr(a, param, v)
			if !ok {
				return TString{}, false
			}
			args[i] = av
		}
		out, err := applyBuiltin(x.Fn, args)
		if err != nil {
			return TString{}, false
		}
		return out, true
	default:
		return TString{}, false
	}
}

// evalPureCond evaluates a condition under the same binding, mirroring
// the interpreter's cond evaluation exactly.
func evalPureCond(c Cond, param string, v TString) (val, ok bool) {
	switch x := c.(type) {
	case Match:
		ev, ok := evalPureExpr(x.Expr, param, v)
		if !ok {
			return false, false
		}
		return x.Class.MatchesClass(ev.String()), true
	case Contains:
		ev, ok := evalPureExpr(x.Expr, param, v)
		if !ok {
			return false, false
		}
		return strings.Contains(ev.String(), x.Needle), true
	case Eq:
		ev, ok := evalPureExpr(x.Expr, param, v)
		if !ok {
			return false, false
		}
		return ev.String() == x.Value, true
	case Not:
		iv, ok := evalPureCond(x.Inner, param, v)
		if !ok {
			return false, false
		}
		return !iv, true
	case BoolLit:
		return x.Value, true
	default:
		return false, false
	}
}

// kindClassKey assigns pool value v (at pool index vi) to a judge
// equivalence class for one sink kind, given the builtin chain
// over-approximation bs on the parameter's dataflow paths into the
// sink. Two values with the same key are guaranteed to produce the
// same structural-taint verdict at every event of that sink whenever
// every condition outcome matches (which the predicate-class component
// of the composite key ensures) — so skipping all but the first of a
// class cannot change a label or move a first witness. A value whose
// equivalence cannot be established gets a singleton class (the key
// embeds vi) and is always kept.
//
// The class arguments, per kind (the chain facts rely on builtins being
// per-character replacements: no replacement output ever contains a
// quote character, a '<', or — except escape_shell's — a backslash, so
// those characters can only descend from the raw value):
//
//   - SQL/XPath: a value without the kind's quote characters can never
//     open or close a string literal, so the tokenizer's quote state is
//     identical across all such values and each event's verdict depends
//     only on whether the segment lands inside a literal (inert for
//     everyone) or outside, where any non-digit character is
//     structural. All-digit values (class D, immune to every builtin)
//     are uniformly non-structural; quote-free values carrying a letter
//     (class W) are uniformly structural outside literals — letters
//     survive every builtin except numeric, which gates the class.
//   - HTML: the judge only looks at raw tainted '<'. No builtin mints
//     one, so '<'-free values (class N) are inert under any chain;
//     '<'-bearing values (class L) stay structural unless the chain can
//     remove the '<' (escape_html) or the whole character (numeric).
//   - Cmd: backslash-free values can't alter the escape state of
//     neighbouring characters. Without droppers (numeric,
//     sanitize_path — emptiness would re-target a preceding backslash)
//     and without escape_shell (which mints backslashes and interacts
//     unsoundly with later quote-doubling), meta-free values (N) stay
//     verdict-false and values with a metacharacter past position 0
//     (M) stay verdict-true: every builtin image of a metacharacter
//     contains a metacharacter, and position-0-only metas are excluded
//     because an image can spill metas past a context backslash.
//   - Path: a value containing a separator (S) yields a tainted
//     separator under any chain without droppers (escape_shell only
//     adds separators), so the event verdict is uniformly true. A
//     value with neither separators nor dots (N) can never contribute
//     or connect dot-adjacency, provided the chain cannot mint
//     separators (escape_shell) or empty the segment (droppers), which
//     could join dots across it. Dot-bearing values are
//     context-sensitive and stay singletons.
func kindClassKey(v string, vi int, kind SinkKind, bs builtinMask) string {
	uniq := func() string { return "u" + itoa(vi) }
	droppers := bs.has(BuiltinNumeric) || bs.has(BuiltinSanitizePath)
	switch kind {
	case SinkSQL, SinkXPath:
		quotes := "'"
		if kind == SinkXPath {
			quotes = `'"`
		}
		if strings.ContainsAny(v, quotes) {
			return uniq()
		}
		if allDigits(v) {
			return "D"
		}
		if hasLetter(v) && !bs.has(BuiltinNumeric) {
			return "W"
		}
		return uniq()
	case SinkHTML:
		if !strings.ContainsRune(v, '<') {
			return "N"
		}
		if !bs.has(BuiltinEscapeHTML) && !bs.has(BuiltinNumeric) {
			return "L"
		}
		return uniq()
	case SinkCmd:
		if strings.ContainsRune(v, '\\') {
			return uniq()
		}
		if allDigits(v) {
			return "N" // digit-only: meta-free and immune to every builtin
		}
		if droppers || bs.has(BuiltinEscapeShell) {
			return uniq()
		}
		const metas = " ;|&$`\"'()<>*?~#\t\n"
		first := strings.IndexAny(v, metas)
		switch {
		case first < 0:
			return "N"
		case strings.IndexAny(v[first+len(" "):], metas) >= 0 || first > 0:
			// A metacharacter at position >= 1 (directly, or past the
			// first one) cannot be neutralised by a context backslash.
			return "M"
		default:
			return uniq() // single meta at position 0: context-sensitive
		}
	case SinkPath:
		if droppers {
			return uniq()
		}
		if strings.ContainsAny(v, `/\`) {
			return "S"
		}
		if strings.ContainsRune(v, '.') || bs.has(BuiltinEscapeShell) {
			return uniq()
		}
		return "N"
	default:
		return uniq()
	}
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

func hasLetter(s string) bool {
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' {
			return true
		}
	}
	return false
}

// itoa is strconv.Itoa for the tiny non-negative ints the class keys
// embed, kept local to avoid importing strconv for two digits.
func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}

// buildOraclePlan runs the influence analysis and assembles the pruned
// search plan for svc over the given probe pool. The service must have
// passed Validate and the parameter-count limits.
func buildOraclePlan(svc *Service, pool []string) *oraclePlan {
	stateful := svc.UsesStore()
	w := newReachWalker(svc, stateful)
	w.runPhase(0)
	if stateful {
		w.runPhase(1)
	}

	plan := &oraclePlan{stateful: stateful, params: w.nv}
	if stateful {
		plan.exhaustiveProbes = 2 * uint64(len(pool)) * uint64(len(pool))
	} else {
		plan.exhaustiveProbes = 1
		for range svc.Params {
			plan.exhaustiveProbes *= uint64(len(pool))
		}
	}

	// Predicate classing per virtual parameter: the conditions it can
	// influence, and whether they are all pure functions of it.
	condsOf := make([][]*condOcc, w.nv)
	classable := make([]bool, w.nv)
	var allConds []*condOcc
	for _, list := range w.phaseConds {
		allConds = append(allConds, list...)
	}
	for p := 0; p < w.nv; p++ {
		classable[p] = true
		for _, occ := range allConds {
			if occ.infl&(1<<uint(p)) == 0 {
				continue
			}
			condsOf[p] = append(condsOf[p], occ)
			if !occ.simple || occ.param != p {
				classable[p] = false
			}
		}
	}
	predKey := func(p int, v string) (string, bool) {
		var sb strings.Builder
		tv := NewTaintedTString(v)
		for _, occ := range condsOf[p] {
			val, ok := evalPureCond(occ.c, svc.Params[w.realParam(p)], tv)
			if !ok {
				// Unreachable for classable params; keep the value.
				return "", false
			}
			if val {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
		return sb.String(), true
	}

	// Group live, data-reachable sinks by influence set, in sink order.
	groupIdx := map[uint32]int{}
	for _, sk := range svc.Sinks() {
		rec := w.sinks[sk.ID]
		if rec == nil || !rec.reached || rec.data == 0 {
			continue // statically safe: zero probes
		}
		gi, ok := groupIdx[rec.infl]
		if !ok {
			gi = len(plan.groups)
			groupIdx[rec.infl] = gi
			plan.groups = append(plan.groups, oracleGroup{})
			for p := 0; p < w.nv; p++ {
				if rec.infl&(1<<uint(p)) != 0 {
					plan.groups[gi].params = append(plan.groups[gi].params, p)
				}
			}
		}
		plan.groups[gi].sinkIDs = append(plan.groups[gi].sinkIDs, sk.ID)
	}

	// Keep-sets per (group, parameter).
	for gi := range plan.groups {
		g := &plan.groups[gi]
		members := make([]*sinkReach, 0, len(g.sinkIDs))
		for _, id := range g.sinkIDs {
			members = append(members, w.sinks[id])
		}
		g.keeps = make([][]int, len(g.params))
		for pi, p := range g.params {
			if !classable[p] {
				g.keeps[pi] = allIndices(len(pool))
				continue
			}
			seenClass := map[string]bool{}
			for vi, v := range pool {
				key, ok := predKey(p, v)
				if !ok {
					g.keeps[pi] = append(g.keeps[pi], vi)
					continue
				}
				// Composite class: same condition outcomes AND the same
				// judge equivalence class at every sink the value's
				// content can reach. Two composite classmates receive
				// identical verdicts at every event, so only the first
				// (odometer-least) member needs to run.
				var sb strings.Builder
				sb.WriteString(key)
				for _, rec := range members {
					if rec.data&(1<<uint(p)) == 0 {
						continue // control-only influence: content never reaches this sink
					}
					sb.WriteByte('|')
					sb.WriteString(kindClassKey(v, vi, rec.kind, rec.bset[p]))
				}
				comp := sb.String()
				if !seenClass[comp] {
					seenClass[comp] = true
					g.keeps[pi] = append(g.keeps[pi], vi)
				}
			}
		}
	}
	return plan
}

// realParam maps a virtual parameter index to the index into
// svc.Params (both virtual parameters of a stateful service are its
// single real parameter).
func (w *reachWalker) realParam(p int) int {
	if w.stateful {
		return 0
	}
	return p
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
