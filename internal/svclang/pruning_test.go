package svclang

import (
	"reflect"
	"testing"
)

// interpProbe adapts the reference interpreter to ProbeFunc, judging
// events with the shared structural-taint table — the probe the
// differential suite trusts.
func interpProbe(svc *Service, req Request, store *SessionStore, obs ProbeObserver) error {
	res, err := ExecuteInSession(svc, req, store)
	if err != nil {
		return err
	}
	for _, ev := range res.Events {
		obs(ev.SinkID, ev.Kind, StructuralTaint(ev.Kind, ev.Value))
	}
	return nil
}

// TestAnalyzePruningMatchesExhaustive locks the influence-guided search
// to the exhaustive one, witnesses and sequences included, over random
// services. This is the theorem the pruning design rests on; the
// template-matrix differential in internal/svclang/compile covers the
// curated workload shapes through both engines.
func TestAnalyzePruningMatchesExhaustive(t *testing.T) {
	trials := uint64(propertyTrials)
	if testing.Short() {
		trials = 25
	}
	for seed := uint64(0); seed < trials; seed++ {
		svc := randomService(seed)
		pruned, prunedErr := AnalyzeProbing(svc, interpProbe)
		exh, exhErr := AnalyzeProbingExhaustive(svc, interpProbe)
		if (prunedErr == nil) != (exhErr == nil) {
			t.Fatalf("seed %d: error divergence: pruned=%v exhaustive=%v\nsrc:\n%s", seed, prunedErr, exhErr, Print(svc))
		}
		if prunedErr != nil {
			continue
		}
		if !reflect.DeepEqual(pruned, exh) {
			t.Fatalf("seed %d: ground truth diverged:\npruned=%+v\nexhaustive=%+v\nsrc:\n%s", seed, pruned, exh, Print(svc))
		}
	}
}

// TestAnalyzeEarlyExitNeverChangesLabels runs the pruned search with
// and without early exit over 1000 generated services: stopping a group
// once every sink is proven vulnerable must never change a label, a
// witness or a sequence. Both searches are pruned, so the trial count
// can be large.
func TestAnalyzeEarlyExitNeverChangesLabels(t *testing.T) {
	trials := uint64(1000)
	if testing.Short() {
		trials = 100
	}
	for seed := uint64(0); seed < trials; seed++ {
		svc := randomService(seed)
		withExit, errA := analyzeProbing(svc, interpProbe, oracleModePruned)
		without, errB := analyzeProbing(svc, interpProbe, oracleModePrunedNoExit)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("seed %d: error divergence: earlyExit=%v noExit=%v\nsrc:\n%s", seed, errA, errB, Print(svc))
		}
		if errA != nil {
			continue
		}
		if !reflect.DeepEqual(withExit, without) {
			t.Fatalf("seed %d: early exit changed ground truth:\nwith=%+v\nwithout=%+v\nsrc:\n%s", seed, withExit, without, Print(svc))
		}
	}
}

// oraclePoolSize is the value-pool size the accounting tests assume;
// pinned here so a pool change fails loudly instead of silently skewing
// the expected probe spaces.
func oraclePoolSize(t *testing.T) uint64 {
	t.Helper()
	n := len(BenignValues())
	for _, k := range AllSinkKinds() {
		n += len(AttackPayloads(k))
	}
	if n != 20 {
		t.Fatalf("oracle pool size changed: got %d, tests assume 20", n)
	}
	return uint64(n)
}

// exhaustiveSpace is the exhaustive request-execution count for svc.
func exhaustiveSpace(svc *Service, pool uint64) uint64 {
	if len(svc.Sinks()) == 0 {
		return 0
	}
	if svc.UsesStore() {
		return 2 * pool * pool
	}
	space := uint64(1)
	for range svc.Params {
		space *= pool
	}
	return space
}

// TestOracleCounterConsistency pins the probe accounting: over any mix
// of pruned and exhaustive analyses, executed + pruned must equal the
// sum of the exhaustive spaces, and the exhaustive search must
// contribute zero pruned probes.
func TestOracleCounterConsistency(t *testing.T) {
	pool := oraclePoolSize(t)
	var space uint64

	before := OracleTotalsSnapshot()
	for seed := uint64(0); seed < 40; seed++ {
		svc := randomService(seed)
		if _, err := AnalyzeProbing(svc, interpProbe); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		space += exhaustiveSpace(svc, pool)
	}
	after := OracleTotalsSnapshot()
	if got := (after.Probes - before.Probes) + (after.Pruned - before.Pruned); got != space {
		t.Fatalf("pruned search accounting: executed+pruned = %d, exhaustive space = %d", got, space)
	}

	before = after
	svc := randomService(3)
	if _, err := AnalyzeProbingExhaustive(svc, interpProbe); err != nil {
		t.Fatalf("exhaustive analyze: %v", err)
	}
	after = OracleTotalsSnapshot()
	if got, want := after.Probes-before.Probes, exhaustiveSpace(svc, pool); got != want {
		t.Fatalf("exhaustive search executed %d probes, space is %d", got, want)
	}
	if d := after.Pruned - before.Pruned; d != 0 {
		t.Fatalf("exhaustive search recorded %d pruned probes, want 0", d)
	}
}

// TestOracleStaticSafeZeroProbes pins the strongest cut: sinks no
// parameter data can reach — constant sinks and sinks in statically
// dead branches — are labelled safe without a single probe.
func TestOracleStaticSafeZeroProbes(t *testing.T) {
	svc := &Service{
		Name:   "static_safe",
		Params: []string{"p"},
		Body: []Stmt{
			Sink{ID: 0, Kind: SinkSQL, Expr: Lit{Value: "SELECT 1"}},
			If{
				Cond: BoolLit{Value: false},
				Then: []Stmt{Sink{ID: 1, Kind: SinkCmd, Expr: Ident{Name: "p"}}},
			},
		},
	}
	before := OracleTotalsSnapshot()
	truths, err := AnalyzeProbing(svc, interpProbe)
	if err != nil {
		t.Fatal(err)
	}
	after := OracleTotalsSnapshot()
	if d := after.Probes - before.Probes; d != 0 {
		t.Fatalf("statically safe service executed %d probes, want 0", d)
	}
	if d := after.Pruned - before.Pruned; d != 20 {
		t.Fatalf("pruned counter advanced by %d, want the full space 20", d)
	}
	for _, gt := range truths {
		if gt.Vulnerable || gt.Witness != nil || gt.Sequence != nil {
			t.Fatalf("static-safe sink %d labelled %+v", gt.SinkID, gt)
		}
	}

	// The exhaustive search must agree, the expensive way.
	exh, err := AnalyzeProbingExhaustive(svc, interpProbe)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(truths, exh) {
		t.Fatalf("pruned=%+v exhaustive=%+v", truths, exh)
	}
}

// FuzzAnalyzePruningDifferential fuzzes service sources through both
// searches: any parse-valid service must receive identical ground truth
// — labels, witnesses and sequences — from the pruned and exhaustive
// enumerations.
func FuzzAnalyzePruningDifferential(f *testing.F) {
	for seed := uint64(0); seed < 16; seed++ {
		f.Add(Print(randomService(seed)))
	}
	f.Add("service s\n  param p\n  sink sql concat(\"SELECT '\", p, \"'\")\nend\n")
	f.Add("service s\n  param p\n  if not matches(p, alnum)\n    reject\n  end\n  sink cmd concat(\"ls \", p)\nend\n")
	f.Fuzz(func(t *testing.T, src string) {
		svc, err := ParseOne(src)
		if err != nil {
			return
		}
		pruned, prunedErr := AnalyzeProbing(svc, interpProbe)
		exh, exhErr := AnalyzeProbingExhaustive(svc, interpProbe)
		if (prunedErr == nil) != (exhErr == nil) {
			t.Fatalf("error divergence: pruned=%v exhaustive=%v\nsrc:\n%s", prunedErr, exhErr, src)
		}
		if prunedErr != nil {
			return
		}
		if !reflect.DeepEqual(pruned, exh) {
			t.Fatalf("ground truth diverged:\npruned=%+v\nexhaustive=%+v\nsrc:\n%s", pruned, exh, src)
		}
	})
}
