package svclang

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// This file defines what "vulnerable" means for the mini-language, at two
// levels:
//
//  1. StructuralTaint: a white-box, per-event judgment — does
//     attacker-originated content occupy a *structural* position in the
//     value that reached the sink? This is the definitional notion of
//     injection (the attacker can alter the parse structure of the sink
//     payload, not merely data content).
//
//  2. Exploitable: the ground-truth oracle — a sink is vulnerable iff some
//     assignment of benign values and canonical attack payloads to the
//     service parameters produces a sink event with structural taint. The
//     workload generator labels every sink with this oracle, so ground
//     truth is computed, not asserted.
//
// Black-box tools do not get to see taint; they use Structure (the
// token-type skeleton of the sink value) and compare benign and attack
// runs, as real error-based penetration testers do.
//
// The per-kind judgments (StructuralTaint, Structure and the streaming
// StructureFingerprint) all dispatch through the shared sinkJudges
// table in judges.go; this file keeps the Structure tokenisers and the
// oracle search itself.

// quotedStructure tokenises SQL/XPath text into type tags: "str" for a
// string literal, "n" for a number, "w" for a word, single-character
// symbol tokens, and "ERR" for an unterminated string (a syntax error —
// precisely what error-based detection observes).
func quotedStructure(s string, sqlEscapes bool) []string {
	var out []string
	rs := []rune(s)
	i, n := 0, len(rs)
	for i < n {
		r := rs[i]
		switch {
		case r == ' ' || r == '\t' || r == '\n':
			i++
		case r == '\'' || (!sqlEscapes && r == '"'):
			quote := r
			i++
			closed := false
			for i < n {
				if rs[i] == quote {
					if sqlEscapes && i+1 < n && rs[i+1] == quote {
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				i++
			}
			if closed {
				out = append(out, "str")
			} else {
				out = append(out, "ERR")
			}
		case r >= '0' && r <= '9':
			for i < n && rs[i] >= '0' && rs[i] <= '9' {
				i++
			}
			out = append(out, "n")
		case isWordRune(r):
			for i < n && isWordRune(rs[i]) {
				i++
			}
			out = append(out, "w")
		default:
			out = append(out, string(r))
			i++
		}
	}
	return out
}

func isWordRune(r rune) bool {
	return r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_'
}

// htmlStructure returns the sequence of tag names in the markup. Text and
// entities contribute nothing; a '<' not followed by a letter or '/' is
// treated as text, as browsers do.
func htmlStructure(s string) []string {
	var out []string
	rs := []rune(s)
	i, n := 0, len(rs)
	for i < n {
		if rs[i] != '<' {
			i++
			continue
		}
		j := i + 1
		if j < n && rs[j] == '/' {
			j++
		}
		start := j
		for j < n && (rs[j] >= 'a' && rs[j] <= 'z' || rs[j] >= 'A' && rs[j] <= 'Z') {
			j++
		}
		if j == start { // "<" followed by non-letter: text
			i++
			continue
		}
		name := strings.ToLower(string(rs[start:j]))
		for j < n && rs[j] != '>' {
			j++
		}
		if j < n {
			out = append(out, name)
			i = j + 1
		} else {
			i = n // unterminated tag: treated as text
		}
	}
	return out
}

// cmdStructure tokenises a shell-like command line: "a" per argument word
// (quoting and backslash escapes respected), and each unquoted
// metacharacter as its own token. "ERR" marks an unterminated quote.
func cmdStructure(s string) []string {
	const metas = ";|&$`()<>*?~#"
	var out []string
	rs := []rune(s)
	i, n := 0, len(rs)
	inWord := false
	flush := func() {
		if inWord {
			out = append(out, "a")
			inWord = false
		}
	}
	for i < n {
		r := rs[i]
		switch {
		case r == '\\' && i+1 < n:
			inWord = true
			i += 2
		case r == '\'' || r == '"':
			quote := r
			i++
			closed := false
			for i < n {
				if rs[i] == quote {
					closed = true
					i++
					break
				}
				i++
			}
			if !closed {
				flush()
				out = append(out, "ERR")
				return out
			}
			inWord = true
		case r == ' ' || r == '\t':
			flush()
			i++
		case strings.ContainsRune(metas, r):
			flush()
			out = append(out, string(r))
			i++
		default:
			inWord = true
			i++
		}
	}
	flush()
	return out
}

// pathBase is the virtual directory every path sink resolves against.
const pathBase = "/srv/data"

// pathStructure normalises pathBase + "/" + s and reports whether the
// result stays inside the base ("inside") or escapes it ("escape"). An
// absolute attacker path also escapes.
func pathStructure(s string) []string {
	s = strings.ReplaceAll(s, "\\", "/")
	var full string
	if strings.HasPrefix(s, "/") {
		full = s
	} else {
		full = pathBase + "/" + s
	}
	var parts []string
	for _, seg := range strings.Split(full, "/") {
		switch seg {
		case "", ".":
			// skip
		case "..":
			if len(parts) > 0 {
				parts = parts[:len(parts)-1]
			} else {
				return []string{"escape"}
			}
		default:
			parts = append(parts, seg)
		}
	}
	resolved := "/" + strings.Join(parts, "/")
	if resolved == pathBase || strings.HasPrefix(resolved, pathBase+"/") {
		return []string{"inside"}
	}
	return []string{"escape"}
}

// StructureEqual compares two skeletons.
func StructureEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AttackPayloads returns the canonical attack payloads for a sink kind, in
// rough order of potency. These are the payloads the ground-truth oracle
// quantifies over; dynamic tools may use subsets (that is precisely how
// they lose recall).
func AttackPayloads(kind SinkKind) []string {
	switch kind {
	case SinkSQL:
		return []string{
			"' OR '1'='1",
			"'; DROP TABLE users--",
			"1 OR 1=1",
			"' UNION SELECT null--",
		}
	case SinkXPath:
		return []string{
			"' or '1'='1",
			"\" or \"1\"=\"1",
			"1 or 1=1",
		}
	case SinkHTML:
		return []string{
			"<script>alert(1)</script>",
			"<img src=x onerror=alert(1)>",
		}
	case SinkCmd:
		return []string{
			"; cat /etc/passwd",
			"| id",
			"`reboot`",
			"$(whoami)",
		}
	case SinkPath:
		return []string{
			"../../etc/passwd",
			"/etc/shadow",
			"..\\..\\windows\\system32",
		}
	default:
		return nil
	}
}

// BenignValues returns representative harmless parameter values used as
// the benign side of differential testing and as fillers in the
// ground-truth search. They cover the main validation classes (digits,
// alpha, filename-ish, free text).
func BenignValues() []string {
	return []string{"7", "alpha", "file1", "hello world"}
}

// GroundTruth is the oracle label of one sink.
type GroundTruth struct {
	SinkID int
	Kind   SinkKind
	// Vulnerable is true when some assignment in the oracle's search space
	// produces structural taint at this sink.
	Vulnerable bool
	// Witness, when vulnerable, is the parameter assignment of the request
	// in which the structural taint manifested (the last request of
	// Sequence).
	Witness Request
	// Sequence, when vulnerable, is the full request sequence that
	// demonstrates the vulnerability. For stateless services it has one
	// element; for stateful services (session store) it may take two — the
	// poisoning request and the triggering one.
	Sequence []Request
}

// maxOracleParams bounds the exhaustive assignment search for stateless
// services. Services with more parameters cannot be labelled exactly and
// are rejected, which keeps ground-truth quality a hard guarantee of the
// corpus rather than a best-effort property.
const maxOracleParams = 3

// maxStatefulParams bounds the search for stateful services, where the
// oracle enumerates request *pairs* and the space squares.
const maxStatefulParams = 1

// ExecFunc executes one request of a service against a session store
// (nil store = fresh store), with the exact semantics of
// ExecuteInSession. The oracle quantifies over executions through this
// seam so alternative engines (the bytecode VM in
// internal/svclang/compile) can drive the exhaustive search without an
// import cycle; the differential test suite pins engine equivalence.
type ExecFunc func(svc *Service, req Request, store *SessionStore) (Result, error)

// Analyze computes ground truth for every sink of the service over the
// oracle's value pool (benign values plus all canonical payloads).
// Stateless services are labelled against every single-request
// parameter assignment, services using the session store against every
// two-request sequence — but the search is influence-guided (see
// influence.go): assignments that provably cannot change any sink's
// verdict or first witness are skipped, so the labels and witnesses are
// exactly those of the exhaustive enumeration at a fraction of its
// cost. AnalyzeProbingExhaustive runs the unpruned search for
// differential validation. Analyze uses the reference tree-walking
// interpreter; AnalyzeWith runs the search through a caller-supplied
// engine.
func Analyze(svc *Service) ([]GroundTruth, error) {
	return AnalyzeWith(svc, ExecuteInSession)
}

// ProbeObserver receives one sink event of an oracle probe: the sink's
// ID, its declared kind and the structural-taint judgment of the value
// that reached it. Silent sinks are reported too — the oracle is
// white-box.
type ProbeObserver func(sinkID int, kind SinkKind, structuralTaint bool)

// ProbeFunc executes one oracle probe against a session store (nil for
// a fresh one) and reports every sink event through obs, in program
// order. It is the streaming counterpart of ExecFunc: an engine that
// can judge StructuralTaint on its internal value representation avoids
// materialising a Result per probe, which dominates the cost of ground
// truth derivation.
type ProbeFunc func(svc *Service, req Request, store *SessionStore, obs ProbeObserver) error

// AnalyzeWith is Analyze with the execution engine supplied by the
// caller. The engine must reproduce ExecuteInSession semantics exactly
// (taint provenance included) for the resulting labels to be ground
// truth; passing ExecuteInSession itself recovers Analyze. Like
// Analyze, the search is influence-guided; the probes it skips are
// exactly those that could not have changed the outcome.
func AnalyzeWith(svc *Service, exec ExecFunc) ([]GroundTruth, error) {
	if exec == nil {
		return nil, fmt.Errorf("svclang: nil exec func")
	}
	return AnalyzeProbing(svc, func(svc *Service, req Request, store *SessionStore, obs ProbeObserver) error {
		res, err := exec(svc, req, store)
		if err != nil {
			return err
		}
		for _, ev := range res.Events {
			obs(ev.SinkID, ev.Kind, StructuralTaint(ev.Kind, ev.Value))
		}
		return nil
	})
}

// OracleTotals is a snapshot of the process-wide oracle search
// counters. Pruned counts probe executions the influence-guided search
// skipped relative to the exhaustive assignment space, so
// Probes+Pruned equals the exhaustive probe count of every service
// analysed (by either search mode — the exhaustive search contributes
// zero to Pruned).
type OracleTotals struct {
	// Probes is the number of request executions performed.
	Probes uint64
	// Pruned is the number of exhaustive-space request executions
	// skipped by influence analysis, value classing and early exit.
	Pruned uint64
	// EarlyExits counts enumerations stopped with kept assignments
	// unexecuted because every watched sink was already proven
	// vulnerable.
	EarlyExits uint64
}

var (
	oracleProbesTotal    atomic.Uint64
	oraclePrunedTotal    atomic.Uint64
	oracleEarlyExitTotal atomic.Uint64
)

// OracleTotalsSnapshot returns the current oracle search counters. The
// counters are process-wide and monotone; consumers that need
// per-campaign numbers fold deltas, as internal/service does for the
// other engine counters.
func OracleTotalsSnapshot() OracleTotals {
	return OracleTotals{
		Probes:     oracleProbesTotal.Load(),
		Pruned:     oraclePrunedTotal.Load(),
		EarlyExits: oracleEarlyExitTotal.Load(),
	}
}

// AnalyzeProbing derives ground truth through a streaming probe
// function, with sink events judged in place of being materialised. The
// search is influence-guided: a static pass (influence.go) proves most
// of the exhaustive assignment space incapable of changing any verdict
// or witness, and only the remainder is executed. The result — labels,
// witnesses and sequences — is identical to AnalyzeProbingExhaustive on
// every valid service, which the differential and fuzz suites enforce.
func AnalyzeProbing(svc *Service, probe ProbeFunc) ([]GroundTruth, error) {
	return analyzeProbing(svc, probe, oracleModePruned)
}

// AnalyzeProbingExhaustive derives ground truth by enumerating the full
// value pool over every parameter assignment (two-request sequences for
// stateful services) with no pruning and no early exit. It is the
// reference the pruned search is differentially locked against, and the
// engine behind the -oracle-exhaustive escape hatch.
func AnalyzeProbingExhaustive(svc *Service, probe ProbeFunc) ([]GroundTruth, error) {
	return analyzeProbing(svc, probe, oracleModeExhaustive)
}

// oracleMode selects the search strategy. oracleModePrunedNoExit keeps
// the influence pruning but disables early exit; the early-exit
// property test compares it against oracleModePruned.
type oracleMode int

const (
	oracleModePruned oracleMode = iota
	oracleModePrunedNoExit
	oracleModeExhaustive
)

func analyzeProbing(svc *Service, probe ProbeFunc, mode oracleMode) ([]GroundTruth, error) {
	if svc == nil {
		return nil, fmt.Errorf("svclang: nil service")
	}
	if probe == nil {
		return nil, fmt.Errorf("svclang: nil probe func")
	}
	if err := svc.Validate(); err != nil {
		return nil, err
	}
	stateful := svc.UsesStore()
	if stateful && len(svc.Params) > maxStatefulParams {
		return nil, fmt.Errorf("svclang: %s: stateful services are limited to %d parameter(s) for exhaustive sequence labelling, got %d",
			svc.Name, maxStatefulParams, len(svc.Params))
	}
	if len(svc.Params) > maxOracleParams {
		return nil, fmt.Errorf("svclang: %s: %d parameters exceed the oracle limit of %d", svc.Name, len(svc.Params), maxOracleParams)
	}
	sinks := svc.Sinks()
	truths := make([]GroundTruth, len(sinks))
	for i, sk := range sinks {
		truths[i] = GroundTruth{SinkID: sk.ID, Kind: sk.Kind}
	}
	if len(sinks) == 0 {
		return truths, nil
	}
	byID := make(map[int]*GroundTruth, len(truths))
	for i := range truths {
		byID[truths[i].SinkID] = &truths[i]
	}

	pool := BenignValues()
	for _, k := range AllSinkKinds() {
		pool = append(pool, AttackPayloads(k)...)
	}

	// space is the exhaustive request-execution count over this pool;
	// whatever the search does not execute is recorded as pruned.
	space := uint64(1)
	if stateful {
		space = 2 * uint64(len(pool)) * uint64(len(pool))
	} else {
		for range svc.Params {
			space *= uint64(len(pool))
		}
	}
	var executed uint64
	defer func() {
		oracleProbesTotal.Add(executed)
		if space > executed {
			oraclePrunedTotal.Add(space - executed)
		}
	}()

	// curSeq is the request sequence of the probe in flight; the observer
	// clones it lazily, only when a sink first proves vulnerable. In the
	// pruned search the observer additionally restricts itself to the
	// sinks of the influence group being enumerated (watch) and counts
	// down the group's undecided sinks for early exit.
	var curSeq []Request
	var watch map[int]bool
	undecided := 0
	observer := func(sinkID int, kind SinkKind, structuralTaint bool) {
		if watch != nil && !watch[sinkID] {
			return
		}
		gt := byID[sinkID]
		if gt == nil || gt.Vulnerable || !structuralTaint {
			return
		}
		gt.Vulnerable = true
		gt.Sequence = cloneSequence(curSeq)
		gt.Witness = gt.Sequence[len(gt.Sequence)-1]
		undecided--
	}
	run := func(req Request, store *SessionStore, seq []Request) error {
		curSeq = seq
		executed++
		return probe(svc, req, store, observer)
	}

	if mode == oracleModeExhaustive {
		var err error
		if stateful {
			err = analyzeStateful(svc, pool, run, nil)
		} else {
			err = analyzeStateless(svc, pool, run, nil)
		}
		if err != nil {
			return nil, err
		}
		return truths, nil
	}

	plan := buildOraclePlan(svc, pool)
	earlyExit := mode == oracleModePruned
	var err error
	if plan.planned() >= space {
		// Influence groups overlap enough that enumerating them
		// separately would cost at least the exhaustive space (possible
		// when several sinks have distinct but large influence sets).
		// Fall back to the single exhaustive sweep so the pruned search
		// is never more expensive than the exhaustive one and the
		// accounting invariant executed+pruned == space holds. Early
		// exit still applies: once every sink is vulnerable the observer
		// is inert and stopping is output-identical.
		undecided = len(truths)
		var stop *int
		if earlyExit {
			stop = &undecided
		}
		before := executed
		if stateful {
			err = analyzeStateful(svc, pool, run, stop)
		} else {
			err = analyzeStateless(svc, pool, run, stop)
		}
		if err == nil && executed-before < space {
			oracleEarlyExitTotal.Add(1)
		}
	} else if stateful {
		err = runPrunedStateful(svc, plan, pool, run, &watch, &undecided, earlyExit)
	} else {
		err = runPrunedStateless(svc, plan, pool, run, &watch, &undecided, earlyExit)
	}
	if err != nil {
		return nil, err
	}
	return truths, nil
}

// analyzeStateless enumerates the full cross product of pool values
// over parameters. The request map is reused across the odometer — its
// keys never change, and the observer's cloneSequence snapshots it
// whenever a witness is recorded. A non-nil stop enables early exit:
// the sweep halts once *stop reaches zero.
func analyzeStateless(svc *Service, pool []string, run func(req Request, store *SessionStore, seq []Request) error, stop *int) error {
	assignment := make([]int, len(svc.Params))
	req := make(Request, len(svc.Params))
	seq := []Request{req}
	for {
		for i, p := range svc.Params {
			req[p] = pool[assignment[i]]
		}
		if err := run(req, nil, seq); err != nil {
			return err
		}
		if stop != nil && *stop == 0 {
			return nil
		}
		// Advance the odometer.
		i := 0
		for ; i < len(assignment); i++ {
			assignment[i]++
			if assignment[i] < len(pool) {
				break
			}
			assignment[i] = 0
		}
		if i == len(assignment) {
			break
		}
	}
	return nil
}

// runPrunedStateless executes the plan's influence groups: one odometer
// per group over its kept pool values, every other parameter pinned to
// the first benign value (which is what the exhaustive first witness
// assigns to parameters that cannot affect the outcome). A group stops
// as soon as all of its sinks are proven vulnerable.
func runPrunedStateless(svc *Service, plan *oraclePlan, pool []string,
	run func(req Request, store *SessionStore, seq []Request) error,
	watch *map[int]bool, undecided *int, earlyExit bool) error {
	req := make(Request, len(svc.Params))
	seq := []Request{req}
	for gi := range plan.groups {
		g := &plan.groups[gi]
		*watch = make(map[int]bool, len(g.sinkIDs))
		for _, id := range g.sinkIDs {
			(*watch)[id] = true
		}
		*undecided = len(g.sinkIDs)
		for _, p := range svc.Params {
			req[p] = pool[0]
		}
		planned := uint64(1)
		for _, keep := range g.keeps {
			planned *= uint64(len(keep))
		}
		var groupExecuted uint64
		idx := make([]int, len(g.params))
		for {
			for j, pi := range g.params {
				req[svc.Params[pi]] = pool[g.keeps[j][idx[j]]]
			}
			if err := run(req, nil, seq); err != nil {
				return err
			}
			groupExecuted++
			if earlyExit && *undecided == 0 {
				break
			}
			j := 0
			for ; j < len(idx); j++ {
				idx[j]++
				if idx[j] < len(g.keeps[j]) {
					break
				}
				idx[j] = 0
			}
			if j == len(idx) {
				break
			}
		}
		if groupExecuted < planned {
			oracleEarlyExitTotal.Add(1)
		}
	}
	return nil
}

// runPrunedStateful is runPrunedStateless for two-request sequences:
// groups range over the virtual parameters v1 (the parameter's value in
// the poisoning request) and v2 (its value in the triggering request),
// and a pair's second request is skipped once the group is decided.
func runPrunedStateful(svc *Service, plan *oraclePlan, pool []string,
	run func(req Request, store *SessionStore, seq []Request) error,
	watch *map[int]bool, undecided *int, earlyExit bool) error {
	r1, r2 := Request{}, Request{}
	seq1, seq2 := []Request{r1}, []Request{r1, r2}
	fill := func(req Request, v string) {
		for _, p := range svc.Params {
			req[p] = v
		}
	}
	for gi := range plan.groups {
		g := &plan.groups[gi]
		*watch = make(map[int]bool, len(g.sinkIDs))
		for _, id := range g.sinkIDs {
			(*watch)[id] = true
		}
		*undecided = len(g.sinkIDs)
		keeps1, keeps2 := []int{0}, []int{0}
		for j, p := range g.params {
			if p == 0 {
				keeps1 = g.keeps[j]
			} else {
				keeps2 = g.keeps[j]
			}
		}
		planned := 2 * uint64(len(keeps1)) * uint64(len(keeps2))
		var groupExecuted uint64
	pairs:
		for _, i1 := range keeps1 {
			for _, i2 := range keeps2 {
				store := NewSessionStore()
				fill(r1, pool[i1])
				if err := run(r1, store, seq1); err != nil {
					return err
				}
				groupExecuted++
				if earlyExit && *undecided == 0 {
					break pairs
				}
				fill(r2, pool[i2])
				if err := run(r2, store, seq2); err != nil {
					return err
				}
				groupExecuted++
				if earlyExit && *undecided == 0 {
					break pairs
				}
			}
		}
		if groupExecuted < planned {
			oracleEarlyExitTotal.Add(1)
		}
	}
	return nil
}

// analyzeStateful enumerates every two-request sequence over the pool,
// sharing a session store within each sequence. Single-request exploits
// are covered by the first element of each pair. Like the stateless
// odometer, the two request maps are reused across pairs; witnesses are
// snapshotted by the observer. A non-nil stop enables early exit.
func analyzeStateful(svc *Service, pool []string, run func(req Request, store *SessionStore, seq []Request) error, stop *int) error {
	fill := func(req Request, v string) {
		for _, p := range svc.Params {
			req[p] = v
		}
	}
	r1, r2 := Request{}, Request{}
	seq1, seq2 := []Request{r1}, []Request{r1, r2}
	for _, v1 := range pool {
		for _, v2 := range pool {
			store := NewSessionStore()
			fill(r1, v1)
			if err := run(r1, store, seq1); err != nil {
				return err
			}
			if stop != nil && *stop == 0 {
				return nil
			}
			fill(r2, v2)
			if err := run(r2, store, seq2); err != nil {
				return err
			}
			if stop != nil && *stop == 0 {
				return nil
			}
		}
	}
	return nil
}

// CloneGroundTruths deep-copies a ground-truth slice, witnesses and
// sequences included. Consumers that memoise oracle results (the
// content-addressed cache in internal/svclang/compile) hand out clones
// so no caller can corrupt the cached truth through a shared witness
// map.
func CloneGroundTruths(truths []GroundTruth) []GroundTruth {
	if truths == nil {
		return nil
	}
	out := make([]GroundTruth, len(truths))
	for i, gt := range truths {
		out[i] = gt
		if gt.Witness != nil {
			out[i].Witness = cloneRequest(gt.Witness)
		}
		if gt.Sequence != nil {
			out[i].Sequence = cloneSequence(gt.Sequence)
		}
	}
	return out
}

func cloneSequence(seq []Request) []Request {
	out := make([]Request, len(seq))
	for i, r := range seq {
		out[i] = cloneRequest(r)
	}
	return out
}

func cloneRequest(r Request) Request {
	out := make(Request, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}
