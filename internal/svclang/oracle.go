package svclang

import (
	"fmt"
	"strings"
)

// This file defines what "vulnerable" means for the mini-language, at two
// levels:
//
//  1. StructuralTaint: a white-box, per-event judgment — does
//     attacker-originated content occupy a *structural* position in the
//     value that reached the sink? This is the definitional notion of
//     injection (the attacker can alter the parse structure of the sink
//     payload, not merely data content).
//
//  2. Exploitable: the ground-truth oracle — a sink is vulnerable iff some
//     assignment of benign values and canonical attack payloads to the
//     service parameters produces a sink event with structural taint. The
//     workload generator labels every sink with this oracle, so ground
//     truth is computed, not asserted.
//
// Black-box tools do not get to see taint; they use Structure (the
// token-type skeleton of the sink value) and compare benign and attack
// runs, as real error-based penetration testers do.

// StructuralTaint reports whether the value carries tainted characters in
// structural positions for the given sink kind.
func StructuralTaint(kind SinkKind, v TString) bool {
	switch kind {
	case SinkSQL:
		return quotedLanguageStructuralTaint(v, true)
	case SinkXPath:
		return quotedLanguageStructuralTaint(v, false)
	case SinkHTML:
		return htmlStructuralTaint(v)
	case SinkCmd:
		return cmdStructuralTaint(v)
	case SinkPath:
		return pathStructuralTaint(v)
	default:
		return false
	}
}

// quotedLanguageStructuralTaint covers SQL (sqlEscapes=true: ” is an
// escaped quote inside a string) and XPath (no escapes, both quote kinds).
// Structural positions are: string delimiters, and every non-digit
// character outside string literals. Tainted digits outside strings select
// different data, which is not an injection.
func quotedLanguageStructuralTaint(v TString, sqlEscapes bool) bool {
	i := 0
	n := v.Len()
	for i < n {
		r := v.chars[i]
		switch {
		case r == '\'' || (!sqlEscapes && r == '"'):
			quote := r
			if v.taint[i] {
				return true // tainted string delimiter
			}
			i++
			for i < n {
				if v.chars[i] == quote {
					if sqlEscapes && i+1 < n && v.chars[i+1] == quote {
						i += 2 // escaped quote: content, stays inside
						continue
					}
					if v.taint[i] {
						return true // tainted closing delimiter
					}
					i++
					break
				}
				i++ // string content: never structural
			}
		case r >= '0' && r <= '9':
			i++ // numeric data outside strings: not structural
		default:
			if v.taint[i] {
				return true // tainted keyword/identifier/symbol character
			}
			i++
		}
	}
	return false
}

// htmlStructuralTaint: a tainted raw '<' lets the attacker open markup.
// escape_html rewrites '<' to "&lt;", which contains no raw '<'.
func htmlStructuralTaint(v TString) bool {
	for i := 0; i < v.Len(); i++ {
		if v.chars[i] == '<' && v.taint[i] {
			return true
		}
	}
	return false
}

// cmdStructuralTaint: tainted unescaped, unquoted shell metacharacters or
// separators are structural. A backslash escapes the following character.
func cmdStructuralTaint(v TString) bool {
	const metas = " ;|&$`\"'()<>*?~#\t\n"
	i := 0
	n := v.Len()
	for i < n {
		r := v.chars[i]
		if r == '\\' && i+1 < n {
			i += 2 // escaped character: not structural
			continue
		}
		if strings.ContainsRune(metas, r) && v.taint[i] {
			return true
		}
		i++
	}
	return false
}

// pathStructuralTaint: tainted path separators, or a tainted dot that is
// part of a ".." sequence, let the attacker navigate the filesystem.
func pathStructuralTaint(v TString) bool {
	for i := 0; i < v.Len(); i++ {
		r := v.chars[i]
		if (r == '/' || r == '\\') && v.taint[i] {
			return true
		}
		if r == '.' && v.taint[i] {
			prev := i > 0 && v.chars[i-1] == '.'
			next := i+1 < v.Len() && v.chars[i+1] == '.'
			if prev || next {
				return true
			}
		}
	}
	return false
}

// Structure returns the token-type skeleton of a sink value: the part of
// the value an injection must alter. Black-box tools compare skeletons of
// benign and attack responses.
func Structure(kind SinkKind, s string) []string {
	switch kind {
	case SinkSQL:
		return quotedStructure(s, true)
	case SinkXPath:
		return quotedStructure(s, false)
	case SinkHTML:
		return htmlStructure(s)
	case SinkCmd:
		return cmdStructure(s)
	case SinkPath:
		return pathStructure(s)
	default:
		return nil
	}
}

// quotedStructure tokenises SQL/XPath text into type tags: "str" for a
// string literal, "n" for a number, "w" for a word, single-character
// symbol tokens, and "ERR" for an unterminated string (a syntax error —
// precisely what error-based detection observes).
func quotedStructure(s string, sqlEscapes bool) []string {
	var out []string
	rs := []rune(s)
	i, n := 0, len(rs)
	for i < n {
		r := rs[i]
		switch {
		case r == ' ' || r == '\t' || r == '\n':
			i++
		case r == '\'' || (!sqlEscapes && r == '"'):
			quote := r
			i++
			closed := false
			for i < n {
				if rs[i] == quote {
					if sqlEscapes && i+1 < n && rs[i+1] == quote {
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				i++
			}
			if closed {
				out = append(out, "str")
			} else {
				out = append(out, "ERR")
			}
		case r >= '0' && r <= '9':
			for i < n && rs[i] >= '0' && rs[i] <= '9' {
				i++
			}
			out = append(out, "n")
		case isWordRune(r):
			for i < n && isWordRune(rs[i]) {
				i++
			}
			out = append(out, "w")
		default:
			out = append(out, string(r))
			i++
		}
	}
	return out
}

func isWordRune(r rune) bool {
	return r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_'
}

// htmlStructure returns the sequence of tag names in the markup. Text and
// entities contribute nothing; a '<' not followed by a letter or '/' is
// treated as text, as browsers do.
func htmlStructure(s string) []string {
	var out []string
	rs := []rune(s)
	i, n := 0, len(rs)
	for i < n {
		if rs[i] != '<' {
			i++
			continue
		}
		j := i + 1
		if j < n && rs[j] == '/' {
			j++
		}
		start := j
		for j < n && (rs[j] >= 'a' && rs[j] <= 'z' || rs[j] >= 'A' && rs[j] <= 'Z') {
			j++
		}
		if j == start { // "<" followed by non-letter: text
			i++
			continue
		}
		name := strings.ToLower(string(rs[start:j]))
		for j < n && rs[j] != '>' {
			j++
		}
		if j < n {
			out = append(out, name)
			i = j + 1
		} else {
			i = n // unterminated tag: treated as text
		}
	}
	return out
}

// cmdStructure tokenises a shell-like command line: "a" per argument word
// (quoting and backslash escapes respected), and each unquoted
// metacharacter as its own token. "ERR" marks an unterminated quote.
func cmdStructure(s string) []string {
	const metas = ";|&$`()<>*?~#"
	var out []string
	rs := []rune(s)
	i, n := 0, len(rs)
	inWord := false
	flush := func() {
		if inWord {
			out = append(out, "a")
			inWord = false
		}
	}
	for i < n {
		r := rs[i]
		switch {
		case r == '\\' && i+1 < n:
			inWord = true
			i += 2
		case r == '\'' || r == '"':
			quote := r
			i++
			closed := false
			for i < n {
				if rs[i] == quote {
					closed = true
					i++
					break
				}
				i++
			}
			if !closed {
				flush()
				out = append(out, "ERR")
				return out
			}
			inWord = true
		case r == ' ' || r == '\t':
			flush()
			i++
		case strings.ContainsRune(metas, r):
			flush()
			out = append(out, string(r))
			i++
		default:
			inWord = true
			i++
		}
	}
	flush()
	return out
}

// pathBase is the virtual directory every path sink resolves against.
const pathBase = "/srv/data"

// pathStructure normalises pathBase + "/" + s and reports whether the
// result stays inside the base ("inside") or escapes it ("escape"). An
// absolute attacker path also escapes.
func pathStructure(s string) []string {
	s = strings.ReplaceAll(s, "\\", "/")
	var full string
	if strings.HasPrefix(s, "/") {
		full = s
	} else {
		full = pathBase + "/" + s
	}
	var parts []string
	for _, seg := range strings.Split(full, "/") {
		switch seg {
		case "", ".":
			// skip
		case "..":
			if len(parts) > 0 {
				parts = parts[:len(parts)-1]
			} else {
				return []string{"escape"}
			}
		default:
			parts = append(parts, seg)
		}
	}
	resolved := "/" + strings.Join(parts, "/")
	if resolved == pathBase || strings.HasPrefix(resolved, pathBase+"/") {
		return []string{"inside"}
	}
	return []string{"escape"}
}

// StructureEqual compares two skeletons.
func StructureEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AttackPayloads returns the canonical attack payloads for a sink kind, in
// rough order of potency. These are the payloads the ground-truth oracle
// quantifies over; dynamic tools may use subsets (that is precisely how
// they lose recall).
func AttackPayloads(kind SinkKind) []string {
	switch kind {
	case SinkSQL:
		return []string{
			"' OR '1'='1",
			"'; DROP TABLE users--",
			"1 OR 1=1",
			"' UNION SELECT null--",
		}
	case SinkXPath:
		return []string{
			"' or '1'='1",
			"\" or \"1\"=\"1",
			"1 or 1=1",
		}
	case SinkHTML:
		return []string{
			"<script>alert(1)</script>",
			"<img src=x onerror=alert(1)>",
		}
	case SinkCmd:
		return []string{
			"; cat /etc/passwd",
			"| id",
			"`reboot`",
			"$(whoami)",
		}
	case SinkPath:
		return []string{
			"../../etc/passwd",
			"/etc/shadow",
			"..\\..\\windows\\system32",
		}
	default:
		return nil
	}
}

// BenignValues returns representative harmless parameter values used as
// the benign side of differential testing and as fillers in the
// ground-truth search. They cover the main validation classes (digits,
// alpha, filename-ish, free text).
func BenignValues() []string {
	return []string{"7", "alpha", "file1", "hello world"}
}

// GroundTruth is the oracle label of one sink.
type GroundTruth struct {
	SinkID int
	Kind   SinkKind
	// Vulnerable is true when some assignment in the oracle's search space
	// produces structural taint at this sink.
	Vulnerable bool
	// Witness, when vulnerable, is the parameter assignment of the request
	// in which the structural taint manifested (the last request of
	// Sequence).
	Witness Request
	// Sequence, when vulnerable, is the full request sequence that
	// demonstrates the vulnerability. For stateless services it has one
	// element; for stateful services (session store) it may take two — the
	// poisoning request and the triggering one.
	Sequence []Request
}

// maxOracleParams bounds the exhaustive assignment search for stateless
// services. Services with more parameters cannot be labelled exactly and
// are rejected, which keeps ground-truth quality a hard guarantee of the
// corpus rather than a best-effort property.
const maxOracleParams = 3

// maxStatefulParams bounds the search for stateful services, where the
// oracle enumerates request *pairs* and the space squares.
const maxStatefulParams = 1

// ExecFunc executes one request of a service against a session store
// (nil store = fresh store), with the exact semantics of
// ExecuteInSession. The oracle quantifies over executions through this
// seam so alternative engines (the bytecode VM in
// internal/svclang/compile) can drive the exhaustive search without an
// import cycle; the differential test suite pins engine equivalence.
type ExecFunc func(svc *Service, req Request, store *SessionStore) (Result, error)

// Analyze computes ground truth for every sink of the service by
// exhaustive search over the oracle's value pool (benign values plus all
// canonical payloads). Stateless services are searched over every
// single-request parameter assignment; services using the session store
// are searched over every two-request sequence, which covers the
// second-order flows a single request cannot reach. Analyze uses the
// reference tree-walking interpreter; AnalyzeWith runs the same search
// through a caller-supplied engine.
func Analyze(svc *Service) ([]GroundTruth, error) {
	return AnalyzeWith(svc, ExecuteInSession)
}

// ProbeObserver receives one sink event of an oracle probe: the sink's
// ID, its declared kind and the structural-taint judgment of the value
// that reached it. Silent sinks are reported too — the oracle is
// white-box.
type ProbeObserver func(sinkID int, kind SinkKind, structuralTaint bool)

// ProbeFunc executes one oracle probe against a session store (nil for
// a fresh one) and reports every sink event through obs, in program
// order. It is the streaming counterpart of ExecFunc: an engine that
// can judge StructuralTaint on its internal value representation avoids
// materialising a Result per probe, which dominates the cost of ground
// truth derivation.
type ProbeFunc func(svc *Service, req Request, store *SessionStore, obs ProbeObserver) error

// AnalyzeWith is Analyze with the execution engine supplied by the
// caller. The engine must reproduce ExecuteInSession semantics exactly
// (taint provenance included) for the resulting labels to be ground
// truth; passing ExecuteInSession itself recovers Analyze.
func AnalyzeWith(svc *Service, exec ExecFunc) ([]GroundTruth, error) {
	if exec == nil {
		return nil, fmt.Errorf("svclang: nil exec func")
	}
	return AnalyzeProbing(svc, func(svc *Service, req Request, store *SessionStore, obs ProbeObserver) error {
		res, err := exec(svc, req, store)
		if err != nil {
			return err
		}
		for _, ev := range res.Events {
			obs(ev.SinkID, ev.Kind, StructuralTaint(ev.Kind, ev.Value))
		}
		return nil
	})
}

// AnalyzeProbing derives ground truth through a streaming probe
// function: the same exhaustive search as AnalyzeWith — the full value
// pool over every parameter assignment, two-request sequences for
// stateful services — with sink events judged in place of being
// materialised.
func AnalyzeProbing(svc *Service, probe ProbeFunc) ([]GroundTruth, error) {
	if svc == nil {
		return nil, fmt.Errorf("svclang: nil service")
	}
	if probe == nil {
		return nil, fmt.Errorf("svclang: nil probe func")
	}
	if err := svc.Validate(); err != nil {
		return nil, err
	}
	stateful := svc.UsesStore()
	if stateful && len(svc.Params) > maxStatefulParams {
		return nil, fmt.Errorf("svclang: %s: stateful services are limited to %d parameter(s) for exhaustive sequence labelling, got %d",
			svc.Name, maxStatefulParams, len(svc.Params))
	}
	if len(svc.Params) > maxOracleParams {
		return nil, fmt.Errorf("svclang: %s: %d parameters exceed the oracle limit of %d", svc.Name, len(svc.Params), maxOracleParams)
	}
	sinks := svc.Sinks()
	truths := make([]GroundTruth, len(sinks))
	for i, sk := range sinks {
		truths[i] = GroundTruth{SinkID: sk.ID, Kind: sk.Kind}
	}
	if len(sinks) == 0 {
		return truths, nil
	}
	byID := make(map[int]*GroundTruth, len(truths))
	for i := range truths {
		byID[truths[i].SinkID] = &truths[i]
	}

	pool := BenignValues()
	for _, k := range AllSinkKinds() {
		pool = append(pool, AttackPayloads(k)...)
	}

	// curSeq is the request sequence of the probe in flight; the observer
	// clones it lazily, only when a sink first proves vulnerable.
	var curSeq []Request
	observer := func(sinkID int, kind SinkKind, structuralTaint bool) {
		gt := byID[sinkID]
		if gt == nil || gt.Vulnerable || !structuralTaint {
			return
		}
		gt.Vulnerable = true
		gt.Sequence = cloneSequence(curSeq)
		gt.Witness = gt.Sequence[len(gt.Sequence)-1]
	}
	run := func(req Request, store *SessionStore, seq []Request) error {
		curSeq = seq
		return probe(svc, req, store, observer)
	}

	if stateful {
		return truths, analyzeStateful(svc, pool, run)
	}

	// Stateless: enumerate the full cross product of pool values over
	// parameters. The request map is reused across the odometer — its
	// keys never change, and the observer's cloneSequence snapshots it
	// whenever a witness is recorded.
	assignment := make([]int, len(svc.Params))
	req := make(Request, len(svc.Params))
	seq := []Request{req}
	for {
		for i, p := range svc.Params {
			req[p] = pool[assignment[i]]
		}
		if err := run(req, nil, seq); err != nil {
			return nil, err
		}
		// Advance the odometer.
		i := 0
		for ; i < len(assignment); i++ {
			assignment[i]++
			if assignment[i] < len(pool) {
				break
			}
			assignment[i] = 0
		}
		if i == len(assignment) {
			break
		}
	}
	return truths, nil
}

// analyzeStateful enumerates every two-request sequence over the pool,
// sharing a session store within each sequence. Single-request exploits
// are covered by the first element of each pair. Like the stateless
// odometer, the two request maps are reused across pairs; witnesses are
// snapshotted by the observer.
func analyzeStateful(svc *Service, pool []string, run func(req Request, store *SessionStore, seq []Request) error) error {
	fill := func(req Request, v string) {
		for _, p := range svc.Params {
			req[p] = v
		}
	}
	r1, r2 := Request{}, Request{}
	seq1, seq2 := []Request{r1}, []Request{r1, r2}
	for _, v1 := range pool {
		for _, v2 := range pool {
			store := NewSessionStore()
			fill(r1, v1)
			if err := run(r1, store, seq1); err != nil {
				return err
			}
			fill(r2, v2)
			if err := run(r2, store, seq2); err != nil {
				return err
			}
		}
	}
	return nil
}

func cloneSequence(seq []Request) []Request {
	out := make([]Request, len(seq))
	for i, r := range seq {
		out[i] = cloneRequest(r)
	}
	return out
}

func cloneRequest(r Request) Request {
	out := make(Request, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}
