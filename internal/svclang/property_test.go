package svclang

import (
	"reflect"
	"testing"

	"github.com/dsn2015/vdbench/internal/stats"
)

// randomService generates a structurally valid random service: the
// generator tracks declared names so every reference resolves, bounds
// nesting, and assigns sink IDs positionally (as the parser does) so that
// Print/Parse round trips can compare ASTs directly.
type serviceGen struct {
	rng    *stats.RNG
	names  []string
	sinkID int
	depth  int
	// allowStore enables store/load generation; the exhaustive oracle
	// limits stateful services to one parameter, so the generator only
	// sets it for single-parameter services.
	allowStore bool
}

func (g *serviceGen) pickName() string {
	return g.names[g.rng.Intn(len(g.names))]
}

func (g *serviceGen) expr(depth int) Expr {
	if depth <= 0 {
		if g.rng.Bernoulli(0.5) {
			return Lit{Value: g.randLit()}
		}
		return Ident{Name: g.pickName()}
	}
	if g.allowStore && g.rng.Bernoulli(0.15) {
		return LoadExpr{Key: g.storeKey()}
	}
	switch g.rng.Intn(4) {
	case 0:
		return Lit{Value: g.randLit()}
	case 1:
		return Ident{Name: g.pickName()}
	case 2:
		n := 1 + g.rng.Intn(3)
		args := make([]Expr, n)
		for i := range args {
			args[i] = g.expr(depth - 1)
		}
		return Call{Fn: BuiltinConcat, Args: args}
	default:
		fns := []Builtin{
			BuiltinEscapeSQL, BuiltinEscapeXPath, BuiltinEscapeHTML,
			BuiltinEscapeShell, BuiltinSanitizePath, BuiltinNumeric,
			BuiltinUpper, BuiltinTrim,
		}
		return Call{Fn: fns[g.rng.Intn(len(fns))], Args: []Expr{g.expr(depth - 1)}}
	}
}

// randLit draws a literal from an alphabet that exercises quoting,
// escaping, metacharacters and unicode.
func (g *serviceGen) randLit() string {
	alphabet := []string{
		"a", "Z", "7", " ", "'", "\"", "<", ">", ";", "|", "&", "/", "\\",
		".", ",", "=", "(", ")", "-", "_", "\n", "\t", "é", "日",
		"SELECT", "OR", "script",
	}
	n := g.rng.Intn(8)
	out := ""
	for i := 0; i < n; i++ {
		out += alphabet[g.rng.Intn(len(alphabet))]
	}
	return out
}

// storeKey draws one of a small set of store keys so that stores and
// loads actually meet.
func (g *serviceGen) storeKey() string {
	keys := []string{"note", "cart", "last"}
	return keys[g.rng.Intn(len(keys))]
}

func (g *serviceGen) cond(depth int) Cond {
	switch g.rng.Intn(5) {
	case 0:
		classes := []CharClass{ClassDigits, ClassAlpha, ClassAlnum}
		return Match{Expr: g.expr(1), Class: classes[g.rng.Intn(len(classes))]}
	case 1:
		return Contains{Expr: g.expr(1), Needle: g.randLit()}
	case 2:
		return Eq{Expr: g.expr(1), Value: g.randLit()}
	case 3:
		if depth > 0 {
			return Not{Inner: g.cond(depth - 1)}
		}
		return BoolLit{Value: g.rng.Bernoulli(0.5)}
	default:
		return BoolLit{Value: g.rng.Bernoulli(0.5)}
	}
}

func (g *serviceGen) stmts(depth, maxLen int) []Stmt {
	n := g.rng.Intn(maxLen + 1)
	var out []Stmt
	for i := 0; i < n; i++ {
		out = append(out, g.stmt(depth))
	}
	return out
}

func (g *serviceGen) stmt(depth int) Stmt {
	choice := g.rng.Intn(6)
	if depth <= 0 && (choice == 2 || choice == 3) {
		choice = 1
	}
	switch choice {
	case 0:
		// New variable declaration (fresh name).
		name := "v" + string(rune('a'+len(g.names)%26)) + string(rune('0'+len(g.names)/26%10))
		for _, existing := range g.names {
			if existing == name {
				return Assign{Name: g.pickName(), Expr: g.expr(2)}
			}
		}
		g.names = append(g.names, name)
		return VarDecl{Name: name}
	case 1:
		return Assign{Name: g.pickName(), Expr: g.expr(2)}
	case 2:
		return If{
			Cond: g.cond(depth - 1),
			Then: g.stmts(depth-1, 3),
			Else: g.stmts(depth-1, 2),
		}
	case 3:
		return Repeat{Count: 1 + g.rng.Intn(4), Body: g.stmts(depth-1, 2)}
	case 4:
		kinds := AllSinkKinds()
		sk := Sink{
			ID:     g.sinkID,
			Kind:   kinds[g.rng.Intn(len(kinds))],
			Expr:   g.expr(2),
			Silent: g.rng.Bernoulli(0.2),
		}
		g.sinkID++
		return sk
	default:
		if g.allowStore && g.rng.Bernoulli(0.5) {
			return Store{Key: g.storeKey(), Expr: g.expr(2)}
		}
		return Reject{}
	}
}

// randomService builds one structurally valid service with 1-3 params.
func randomService(seed uint64) *Service {
	rng := stats.NewRNG(seed)
	g := &serviceGen{rng: rng}
	nParams := 1 + rng.Intn(3)
	svc := &Service{Name: "Rand"}
	g.allowStore = nParams == 1
	for i := 0; i < nParams; i++ {
		p := "p" + string(rune('0'+i))
		svc.Params = append(svc.Params, p)
		g.names = append(g.names, p)
	}
	svc.Body = g.stmts(3, 6)
	// Guarantee at least one sink so the oracle has something to label.
	kinds := AllSinkKinds()
	svc.Body = append(svc.Body, Sink{
		ID:   g.sinkID,
		Kind: kinds[rng.Intn(len(kinds))],
		Expr: g.expr(2),
	})
	return svc
}

// reassignSinkIDs renumbers sink IDs positionally; the random generator
// assigns them in creation order, which may differ from source order when
// blocks nest, so normalise before comparing against the parser.
func reassignSinkIDs(svc *Service) {
	id := 0
	var walk func(list []Stmt)
	walk = func(list []Stmt) {
		for i, st := range list {
			switch v := st.(type) {
			case Sink:
				v.ID = id
				id++
				list[i] = v
			case If:
				walk(v.Then)
				walk(v.Else)
			case Repeat:
				walk(v.Body)
			}
		}
	}
	walk(svc.Body)
}

const propertyTrials = 150

func TestRandomServicesAreValid(t *testing.T) {
	for seed := uint64(0); seed < propertyTrials; seed++ {
		svc := randomService(seed)
		reassignSinkIDs(svc)
		if err := svc.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid service: %v\n%s", seed, err, Print(svc))
		}
	}
}

func TestRandomServicePrintParseRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < propertyTrials; seed++ {
		svc := randomService(seed)
		reassignSinkIDs(svc)
		printed := Print(svc)
		reparsed, err := ParseOne(printed)
		if err != nil {
			t.Fatalf("seed %d: printed form does not parse: %v\n%s", seed, err, printed)
		}
		// Normalise empty-slice vs nil differences introduced by printing.
		if !equivalentServices(svc, reparsed) {
			t.Fatalf("seed %d: round trip changed the AST\nprinted:\n%s\noriginal: %#v\nreparsed: %#v",
				seed, printed, svc, reparsed)
		}
	}
}

// equivalentServices compares services modulo nil-vs-empty slices.
func equivalentServices(a, b *Service) bool {
	return a.Name == b.Name &&
		reflect.DeepEqual(normalizeParams(a.Params), normalizeParams(b.Params)) &&
		reflect.DeepEqual(normalizeStmts(a.Body), normalizeStmts(b.Body))
}

func normalizeParams(ps []string) []string {
	if len(ps) == 0 {
		return nil
	}
	return ps
}

func normalizeStmts(list []Stmt) []Stmt {
	if len(list) == 0 {
		return nil
	}
	out := make([]Stmt, len(list))
	for i, st := range list {
		switch v := st.(type) {
		case If:
			v.Then = normalizeStmts(v.Then)
			v.Else = normalizeStmts(v.Else)
			out[i] = v
		case Repeat:
			v.Body = normalizeStmts(v.Body)
			out[i] = v
		default:
			out[i] = st
		}
	}
	return out
}

func TestRandomServiceExecuteTotal(t *testing.T) {
	// Execution must never error on a valid service, for any request drawn
	// from the oracle's value pool.
	pool := BenignValues()
	for _, k := range AllSinkKinds() {
		pool = append(pool, AttackPayloads(k)...)
	}
	for seed := uint64(0); seed < propertyTrials; seed++ {
		svc := randomService(seed)
		reassignSinkIDs(svc)
		rng := stats.NewRNG(seed ^ 0xabcdef)
		for trial := 0; trial < 5; trial++ {
			req := Request{}
			for _, p := range svc.Params {
				req[p] = pool[rng.Intn(len(pool))]
			}
			if _, err := Execute(svc, req); err != nil {
				t.Fatalf("seed %d: execution failed: %v\n%s", seed, err, Print(svc))
			}
		}
	}
}

func TestRandomServiceExecuteDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		svc := randomService(seed)
		reassignSinkIDs(svc)
		req := Request{}
		for i, p := range svc.Params {
			req[p] = AttackPayloads(AllSinkKinds()[i%5])[0]
		}
		r1, err1 := Execute(svc, req)
		r2, err2 := Execute(svc, req)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if r1.Rejected != r2.Rejected || len(r1.Events) != len(r2.Events) {
			t.Fatalf("seed %d: nondeterministic execution", seed)
		}
		for i := range r1.Events {
			if r1.Events[i].Value.String() != r2.Events[i].Value.String() {
				t.Fatalf("seed %d: event %d differs", seed, i)
			}
		}
	}
}

func TestRandomServiceOracleDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		svc := randomService(seed)
		reassignSinkIDs(svc)
		t1, err1 := Analyze(svc)
		t2, err2 := Analyze(svc)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if len(t1) != len(t2) {
			t.Fatalf("seed %d: oracle truth count differs", seed)
		}
		for i := range t1 {
			if t1[i].Vulnerable != t2[i].Vulnerable {
				t.Fatalf("seed %d: oracle label for sink %d differs", seed, t1[i].SinkID)
			}
		}
	}
}

func TestRandomServiceWitnessesReproduce(t *testing.T) {
	// Every vulnerable verdict must come with a witness that actually
	// demonstrates structural taint at the sink.
	for seed := uint64(0); seed < 40; seed++ {
		svc := randomService(seed)
		reassignSinkIDs(svc)
		truths, err := Analyze(svc)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range truths {
			if !tr.Vulnerable {
				continue
			}
			res, err := Execute(svc, tr.Witness)
			if err != nil {
				t.Fatalf("seed %d: witness execution failed: %v", seed, err)
			}
			found := false
			for _, ev := range res.EventsFor(tr.SinkID) {
				if StructuralTaint(ev.Kind, ev.Value) {
					found = true
				}
			}
			if !found {
				t.Fatalf("seed %d: witness %v does not reproduce sink %d\n%s",
					seed, tr.Witness, tr.SinkID, Print(svc))
			}
		}
	}
}

func TestRandomServiceTaintConservation(t *testing.T) {
	// A service whose parameters are all empty strings can never produce
	// tainted characters anywhere (taint only enters through parameters).
	for seed := uint64(0); seed < 60; seed++ {
		svc := randomService(seed)
		reassignSinkIDs(svc)
		res, err := Execute(svc, Request{})
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range res.Events {
			if ev.Value.AnyTainted() {
				t.Fatalf("seed %d: taint appeared from empty parameters\n%s", seed, Print(svc))
			}
		}
	}
}
