package svclang

import "fmt"

// Parse parses source text containing one or more service definitions.
// Sink IDs are assigned sequentially (0, 1, ...) within each service in
// source order. Every parsed service is validated before it is returned.
func Parse(src string) ([]*Service, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var services []*Service
	p.skipNewlines()
	for !p.at(tokEOF) {
		svc, err := p.service()
		if err != nil {
			return nil, err
		}
		if err := svc.Validate(); err != nil {
			return nil, err
		}
		services = append(services, svc)
		p.skipNewlines()
	}
	if len(services) == 0 {
		return nil, &SyntaxError{Line: 1, Msg: "no service definitions found"}
	}
	return services, nil
}

// ParseOne parses source text that must contain exactly one service.
func ParseOne(src string) (*Service, error) {
	services, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(services) != 1 {
		return nil, fmt.Errorf("svclang: expected exactly one service, found %d", len(services))
	}
	return services[0], nil
}

type parser struct {
	toks   []token
	pos    int
	sinkID int
}

func (p *parser) cur() token          { return p.toks[p.pos] }
func (p *parser) at(k tokenKind) bool { return p.cur().kind == k }

func (p *parser) advance() token {
	t := p.cur()
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokenKind) (token, error) {
	if !p.at(k) {
		return token{}, &SyntaxError{Line: p.cur().line, Msg: fmt.Sprintf("expected %s, found %s %q", k, p.cur().kind, p.cur().text)}
	}
	return p.advance(), nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.at(tokIdent) || p.cur().text != kw {
		return &SyntaxError{Line: p.cur().line, Msg: fmt.Sprintf("expected %q, found %q", kw, p.cur().text)}
	}
	p.advance()
	return nil
}

func (p *parser) atKeyword(kw string) bool {
	return p.at(tokIdent) && p.cur().text == kw
}

func (p *parser) skipNewlines() {
	for p.at(tokNewline) {
		p.advance()
	}
}

func (p *parser) endOfStmt() error {
	if p.at(tokEOF) {
		return nil
	}
	if _, err := p.expect(tokNewline); err != nil {
		return err
	}
	p.skipNewlines()
	return nil
}

func (p *parser) service() (*Service, error) {
	p.sinkID = 0
	if err := p.expectKeyword("service"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}
	svc := &Service{Name: name.text}
	body, err := p.stmts(map[string]bool{"end": true})
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("end"); err != nil {
		return nil, err
	}
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}
	// Hoist param declarations: they must appear first.
	var stmts []Stmt
	for _, st := range body {
		if pd, ok := st.(paramDecl); ok {
			if len(stmts) > 0 {
				return nil, &SyntaxError{Line: pd.line, Msg: "param declarations must precede other statements"}
			}
			svc.Params = append(svc.Params, pd.name)
			continue
		}
		stmts = append(stmts, st)
	}
	svc.Body = stmts
	return svc, nil
}

// paramDecl is a parser-internal pseudo-statement: params live on the
// Service, not in the body.
type paramDecl struct {
	name string
	line int
}

func (paramDecl) stmtNode() {}

// stmts parses statements until one of the terminator keywords is seen
// (not consumed).
func (p *parser) stmts(terminators map[string]bool) ([]Stmt, error) {
	var out []Stmt
	for {
		p.skipNewlines()
		if p.at(tokEOF) {
			return nil, &SyntaxError{Line: p.cur().line, Msg: "unexpected end of input inside block"}
		}
		if p.at(tokIdent) && terminators[p.cur().text] {
			return out, nil
		}
		st, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return nil, &SyntaxError{Line: t.line, Msg: fmt.Sprintf("expected statement, found %s", t.kind)}
	}
	switch t.text {
	case "param":
		p.advance()
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if err := p.endOfStmt(); err != nil {
			return nil, err
		}
		return paramDecl{name: name.text, line: name.line}, nil
	case "var":
		p.advance()
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if err := p.endOfStmt(); err != nil {
			return nil, err
		}
		return VarDecl{Name: name.text}, nil
	case "if":
		p.advance()
		cond, err := p.cond()
		if err != nil {
			return nil, err
		}
		if err := p.endOfStmt(); err != nil {
			return nil, err
		}
		thenBody, err := p.stmts(map[string]bool{"else": true, "end": true})
		if err != nil {
			return nil, err
		}
		var elseBody []Stmt
		if p.atKeyword("else") {
			p.advance()
			if err := p.endOfStmt(); err != nil {
				return nil, err
			}
			elseBody, err = p.stmts(map[string]bool{"end": true})
			if err != nil {
				return nil, err
			}
		}
		if err := p.expectKeyword("end"); err != nil {
			return nil, err
		}
		if err := p.endOfStmt(); err != nil {
			return nil, err
		}
		return If{Cond: cond, Then: thenBody, Else: elseBody}, nil
	case "repeat":
		p.advance()
		count, err := p.expect(tokInt)
		if err != nil {
			return nil, err
		}
		n := 0
		for _, c := range count.text {
			n = n*10 + int(c-'0')
		}
		if err := p.endOfStmt(); err != nil {
			return nil, err
		}
		body, err := p.stmts(map[string]bool{"end": true})
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("end"); err != nil {
			return nil, err
		}
		if err := p.endOfStmt(); err != nil {
			return nil, err
		}
		return Repeat{Count: n, Body: body}, nil
	case "sink":
		p.advance()
		kindTok, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		kind, ok := SinkKindFromString(kindTok.text)
		if !ok {
			return nil, &SyntaxError{Line: kindTok.line, Msg: fmt.Sprintf("unknown sink kind %q", kindTok.text)}
		}
		silent := false
		if p.atKeyword("silent") {
			silent = true
			p.advance()
		}
		expr, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.endOfStmt(); err != nil {
			return nil, err
		}
		sk := Sink{ID: p.sinkID, Kind: kind, Expr: expr, Silent: silent}
		p.sinkID++
		return sk, nil
	case "reject":
		p.advance()
		if err := p.endOfStmt(); err != nil {
			return nil, err
		}
		return Reject{}, nil
	case "store":
		p.advance()
		key, err := p.expect(tokString)
		if err != nil {
			return nil, err
		}
		expr, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.endOfStmt(); err != nil {
			return nil, err
		}
		return Store{Key: key.text, Expr: expr}, nil
	default:
		// Assignment: IDENT '=' expr
		name := p.advance()
		if _, err := p.expect(tokAssign); err != nil {
			return nil, err
		}
		expr, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.endOfStmt(); err != nil {
			return nil, err
		}
		return Assign{Name: name.text, Expr: expr}, nil
	}
}

func (p *parser) expr() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokString:
		p.advance()
		return Lit{Value: t.text}, nil
	case tokIdent:
		if t.text == "load" {
			p.advance()
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			key, err := p.expect(tokString)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return LoadExpr{Key: key.text}, nil
		}
		if fn, ok := BuiltinFromString(t.text); ok {
			p.advance()
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			var args []Expr
			if !p.at(tokRParen) {
				for {
					arg, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, arg)
					if p.at(tokComma) {
						p.advance()
						continue
					}
					break
				}
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return Call{Fn: fn, Args: args}, nil
		}
		p.advance()
		return Ident{Name: t.text}, nil
	default:
		return nil, &SyntaxError{Line: t.line, Msg: fmt.Sprintf("expected expression, found %s", t.kind)}
	}
}

func (p *parser) cond() (Cond, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return nil, &SyntaxError{Line: t.line, Msg: fmt.Sprintf("expected condition, found %s", t.kind)}
	}
	switch t.text {
	case "not":
		p.advance()
		inner, err := p.cond()
		if err != nil {
			return nil, err
		}
		return Not{Inner: inner}, nil
	case "true":
		p.advance()
		return BoolLit{Value: true}, nil
	case "false":
		p.advance()
		return BoolLit{Value: false}, nil
	case "matches":
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		expr, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return nil, err
		}
		classTok, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		class, ok := CharClassFromString(classTok.text)
		if !ok {
			return nil, &SyntaxError{Line: classTok.line, Msg: fmt.Sprintf("unknown character class %q", classTok.text)}
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return Match{Expr: expr, Class: class}, nil
	case "contains", "eq":
		kw := t.text
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		expr, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return nil, err
		}
		lit, err := p.expect(tokString)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		if kw == "contains" {
			return Contains{Expr: expr, Needle: lit.text}, nil
		}
		return Eq{Expr: expr, Value: lit.text}, nil
	default:
		return nil, &SyntaxError{Line: t.line, Msg: fmt.Sprintf("unknown condition %q", t.text)}
	}
}
