package svclang

import (
	"testing"
)

// FuzzParse asserts the parser's total-function contract: arbitrary input
// either fails with a SyntaxError-style error or yields services that
// validate, print, and re-parse to the same source shape.
func FuzzParse(f *testing.F) {
	seeds := []string{
		vulnSQLSrc,
		escapedSQLSrc,
		"service X\nend\n",
		"service X\n  param a\n  sink sql a\nend\n",
		"service X\n  param a\n  if not matches(a, digits)\n    reject\n  end\n  sink html escape_html(a)\nend\n",
		"service X\n  param a\n  repeat 3\n    sink cmd a\n  end\nend\n",
		"service X\n  param a\n  sink path silent sanitize_path(a)\nend\n",
		"# comment\nservice Y\n  var v\n  v = concat(\"x\\\"y\", \"z\")\n  sink xpath v\nend\n",
		"garbage",
		"service \"quoted\"",
		"service X\n  sink sql \"unterminated\nend\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		services, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		for _, svc := range services {
			if err := svc.Validate(); err != nil {
				t.Fatalf("parsed service fails validation: %v", err)
			}
			printed := Print(svc)
			again, err := ParseOne(printed)
			if err != nil {
				t.Fatalf("printed form does not re-parse: %v\n%s", err, printed)
			}
			if again.Name != svc.Name || len(again.Params) != len(svc.Params) {
				t.Fatalf("print/parse changed the service shape")
			}
			// Execution must be total on valid services.
			req := Request{}
			for _, p := range svc.Params {
				req[p] = "' OR '1'='1"
			}
			if _, err := Execute(svc, req); err != nil {
				t.Fatalf("execution failed on valid service: %v", err)
			}
		}
	})
}

// FuzzStructure asserts the structure tokenisers never panic and produce
// deterministic output on arbitrary sink values.
func FuzzStructure(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t WHERE a='x'",
		"X='a''b' AND n=42",
		"//user[name='a' or \"b\"]",
		"<p>text</p><script>x</script>",
		"cat a; rm -rf / | id `x` $(y)",
		"../../etc/passwd",
		"unterminated 'quote",
		"", "'", "\"", "<", "\\",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, value string) {
		for _, kind := range AllSinkKinds() {
			s1 := Structure(kind, value)
			s2 := Structure(kind, value)
			if !StructureEqual(s1, s2) {
				t.Fatalf("structure of %q under %s is nondeterministic", value, kind)
			}
			for _, tok := range s1 {
				if tok == "" {
					t.Fatalf("empty token in structure of %q under %s", value, kind)
				}
			}
		}
	})
}
