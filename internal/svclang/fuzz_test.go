package svclang

import (
	"testing"
)

// FuzzParse lives in parsefuzz_test.go (external test package, so it can
// seed its corpus from the internal/workload template library without an
// import cycle).

// FuzzStructure asserts the structure tokenisers never panic and produce
// deterministic output on arbitrary sink values.
func FuzzStructure(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t WHERE a='x'",
		"X='a''b' AND n=42",
		"//user[name='a' or \"b\"]",
		"<p>text</p><script>x</script>",
		"cat a; rm -rf / | id `x` $(y)",
		"../../etc/passwd",
		"unterminated 'quote",
		"", "'", "\"", "<", "\\",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, value string) {
		for _, kind := range AllSinkKinds() {
			s1 := Structure(kind, value)
			s2 := Structure(kind, value)
			if !StructureEqual(s1, s2) {
				t.Fatalf("structure of %q under %s is nondeterministic", value, kind)
			}
			for _, tok := range s1 {
				if tok == "" {
					t.Fatalf("empty token in structure of %q under %s", value, kind)
				}
			}
		}
	})
}
