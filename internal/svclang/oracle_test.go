package svclang

import (
	"testing"
)

// execSinkValue runs the service with one parameter set to val (other
// params empty) and returns the value reaching sink 0.
func execSinkValue(t *testing.T, src, param, val string) TString {
	t.Helper()
	svc := mustParse(t, src)
	res := mustExec(t, svc, Request{param: val})
	events := res.EventsFor(0)
	if len(events) == 0 {
		t.Fatalf("sink 0 not reached with %s=%q", param, val)
	}
	return events[0].Value
}

func TestStructuralTaintSQL(t *testing.T) {
	// Unescaped quoted splice: the classic payload terminates the string.
	v := execSinkValue(t, vulnSQLSrc, "id", "' OR '1'='1")
	if !StructuralTaint(SinkSQL, v) {
		t.Fatal("unescaped SQL splice should have structural taint under attack")
	}
	// Benign digits inside quotes: content only.
	v = execSinkValue(t, vulnSQLSrc, "id", "42")
	if StructuralTaint(SinkSQL, v) {
		t.Fatal("benign digits should not be structural")
	}
	// Benign word inside quotes: still content.
	v = execSinkValue(t, vulnSQLSrc, "id", "alice")
	if StructuralTaint(SinkSQL, v) {
		t.Fatal("benign word inside string literal should not be structural")
	}
}

const escapedSQLSrc = `
service SafeUser
  param id
  var q
  q = concat("SELECT * FROM users WHERE id='", escape_sql(id), "'")
  sink sql q
end
`

func TestStructuralTaintSQLEscaped(t *testing.T) {
	for _, payload := range AttackPayloads(SinkSQL) {
		v := execSinkValue(t, escapedSQLSrc, "id", payload)
		if StructuralTaint(SinkSQL, v) {
			t.Fatalf("escape_sql defeated by payload %q (value %q)", payload, v.String())
		}
	}
}

const numericSQLSrc = `
service NumUser
  param id
  var q
  q = concat("SELECT * FROM users WHERE id=", numeric(id))
  sink sql q
end
`

func TestStructuralTaintSQLNumericSplice(t *testing.T) {
	// Unquoted numeric splice without numeric(): structural.
	raw := `
service RawNum
  param id
  sink sql concat("SELECT x WHERE id=", id)
end
`
	v := execSinkValue(t, raw, "id", "1 OR 1=1")
	if !StructuralTaint(SinkSQL, v) {
		t.Fatal("raw numeric splice should be injectable")
	}
	// With numeric() the payload collapses to digits.
	v = execSinkValue(t, numericSQLSrc, "id", "1 OR 1=1")
	if StructuralTaint(SinkSQL, v) {
		t.Fatal("numeric() should make the splice safe")
	}
}

func TestStructuralTaintWrongSanitizer(t *testing.T) {
	// escape_shell on a SQL sink: the backslash means nothing to SQL, so
	// the quote still terminates the string literal.
	src := `
service Wrong
  param id
  sink sql concat("Q='", escape_shell(id), "'")
end
`
	v := execSinkValue(t, src, "id", "' OR '1'='1")
	if !StructuralTaint(SinkSQL, v) {
		t.Fatal("escape_shell must NOT protect a SQL sink")
	}
}

func TestStructuralTaintAccidentalProtection(t *testing.T) {
	// escape_html encodes the quote, so a *quoted* SQL splice is
	// incidentally protected — the well-known accidental-sanitizer effect
	// the adequacy matrix documents.
	src := `
service Accidental
  param id
  sink sql concat("Q='", escape_html(id), "'")
end
`
	for _, payload := range AttackPayloads(SinkSQL) {
		v := execSinkValue(t, src, "id", payload)
		if StructuralTaint(SinkSQL, v) {
			t.Fatalf("quoted SQL splice behind escape_html should resist %q", payload)
		}
	}
}

func TestStructuralTaintXPath(t *testing.T) {
	src := `
service X
  param u
  sink xpath concat("//user[name='", u, "']")
end
`
	v := execSinkValue(t, src, "u", "' or '1'='1")
	if !StructuralTaint(SinkXPath, v) {
		t.Fatal("XPath splice should be injectable")
	}
	safe := `
service X2
  param u
  sink xpath concat("//user[name='", escape_xpath(u), "']")
end
`
	for _, payload := range AttackPayloads(SinkXPath) {
		v := execSinkValue(t, safe, "u", payload)
		if StructuralTaint(SinkXPath, v) {
			t.Fatalf("escape_xpath defeated by %q", payload)
		}
	}
}

func TestStructuralTaintHTML(t *testing.T) {
	src := `
service H
  param msg
  sink html concat("<p>", msg, "</p>")
end
`
	v := execSinkValue(t, src, "msg", "<script>alert(1)</script>")
	if !StructuralTaint(SinkHTML, v) {
		t.Fatal("raw HTML splice should be injectable")
	}
	v = execSinkValue(t, src, "msg", "hello world")
	if StructuralTaint(SinkHTML, v) {
		t.Fatal("plain text is not XSS")
	}
	safe := `
service H2
  param msg
  sink html concat("<p>", escape_html(msg), "</p>")
end
`
	for _, payload := range AttackPayloads(SinkHTML) {
		v := execSinkValue(t, safe, "msg", payload)
		if StructuralTaint(SinkHTML, v) {
			t.Fatalf("escape_html defeated by %q", payload)
		}
	}
}

func TestStructuralTaintCmd(t *testing.T) {
	src := `
service C
  param f
  sink cmd concat("cat ", f)
end
`
	v := execSinkValue(t, src, "f", "; cat /etc/passwd")
	if !StructuralTaint(SinkCmd, v) {
		t.Fatal("raw cmd splice should be injectable")
	}
	v = execSinkValue(t, src, "f", "report1")
	if StructuralTaint(SinkCmd, v) {
		t.Fatal("plain filename is not command injection")
	}
	safe := `
service C2
  param f
  sink cmd concat("cat ", escape_shell(f))
end
`
	for _, payload := range AttackPayloads(SinkCmd) {
		v := execSinkValue(t, safe, "f", payload)
		if StructuralTaint(SinkCmd, v) {
			t.Fatalf("escape_shell defeated by %q", payload)
		}
	}
}

func TestStructuralTaintPath(t *testing.T) {
	src := `
service P
  param f
  sink path f
end
`
	for _, payload := range AttackPayloads(SinkPath) {
		v := execSinkValue(t, src, "f", payload)
		if !StructuralTaint(SinkPath, v) {
			t.Fatalf("raw path splice should be injectable with %q", payload)
		}
	}
	v := execSinkValue(t, src, "f", "report.txt")
	if StructuralTaint(SinkPath, v) {
		t.Fatal("single dot in filename is not traversal")
	}
	safe := `
service P2
  param f
  sink path sanitize_path(f)
end
`
	for _, payload := range AttackPayloads(SinkPath) {
		v := execSinkValue(t, safe, "f", payload)
		if StructuralTaint(SinkPath, v) {
			t.Fatalf("sanitize_path defeated by %q", payload)
		}
	}
}

func TestAdequacyMatrixMatchesOracle(t *testing.T) {
	// Cross-validation: Builtin.Sanitizes must agree with the structural
	// taint oracle for every sanitizer × sink kind combination.
	sanitizers := []Builtin{BuiltinEscapeSQL, BuiltinEscapeXPath, BuiltinEscapeHTML, BuiltinEscapeShell, BuiltinSanitizePath, BuiltinNumeric}
	templates := map[SinkKind]struct {
		prefix, suffix string
	}{
		SinkSQL:   {"SELECT x WHERE a='", "'"},
		SinkXPath: {"//a[b='", "']"},
		SinkHTML:  {"<p>", "</p>"},
		SinkCmd:   {"cat ", ""},
		SinkPath:  {"", ""},
	}
	for _, san := range sanitizers {
		for _, kind := range AllSinkKinds() {
			tpl := templates[kind]
			svc := &Service{
				Name:   "Adequacy",
				Params: []string{"x"},
				Body: []Stmt{
					Sink{ID: 0, Kind: kind, Expr: Call{Fn: BuiltinConcat, Args: []Expr{
						Lit{Value: tpl.prefix},
						Call{Fn: san, Args: []Expr{Ident{Name: "x"}}},
						Lit{Value: tpl.suffix},
					}}},
				},
			}
			anyInjectable := false
			for _, payload := range AttackPayloads(kind) {
				res, err := Execute(svc, Request{"x": payload})
				if err != nil {
					t.Fatalf("%s on %s: %v", san, kind, err)
				}
				if StructuralTaint(kind, res.Events[0].Value) {
					anyInjectable = true
				}
			}
			if san.Sanitizes(kind) && anyInjectable {
				t.Errorf("%s claims to sanitize %s but a payload got through", san, kind)
			}
			if !san.Sanitizes(kind) && !anyInjectable {
				t.Errorf("%s does not claim to sanitize %s yet every payload was neutralised", san, kind)
			}
		}
	}
}

func TestStructureSQL(t *testing.T) {
	got := Structure(SinkSQL, "SELECT * FROM t WHERE id='abc' AND n=42")
	want := []string{"w", "*", "w", "w", "w", "w", "=", "str", "w", "w", "=", "n"}
	if !StructureEqual(got, want) {
		t.Fatalf("sql structure = %v, want %v", got, want)
	}
	// Escaped quote stays inside the string.
	got = Structure(SinkSQL, "X='a''b'")
	want = []string{"w", "=", "str"}
	if !StructureEqual(got, want) {
		t.Fatalf("escaped-quote structure = %v, want %v", got, want)
	}
	// Unterminated string becomes ERR.
	got = Structure(SinkSQL, "X='abc")
	want = []string{"w", "=", "ERR"}
	if !StructureEqual(got, want) {
		t.Fatalf("unterminated structure = %v, want %v", got, want)
	}
}

func TestStructureXPathDoubleQuotes(t *testing.T) {
	got := Structure(SinkXPath, `//a[b="x"]`)
	want := []string{"/", "/", "w", "[", "w", "=", "str", "]"}
	if !StructureEqual(got, want) {
		t.Fatalf("xpath structure = %v, want %v", got, want)
	}
}

func TestStructureHTML(t *testing.T) {
	got := Structure(SinkHTML, `<p>hi &lt;b&gt;</p><IMG src=x>`)
	want := []string{"p", "p", "img"}
	if !StructureEqual(got, want) {
		t.Fatalf("html structure = %v, want %v", got, want)
	}
	// '<' before non-letter is text; unterminated tag is text.
	got = Structure(SinkHTML, "a < b <i unterminated")
	if len(got) != 0 {
		t.Fatalf("text-only structure = %v, want empty", got)
	}
}

func TestStructureCmd(t *testing.T) {
	got := Structure(SinkCmd, `cat file1`)
	want := []string{"a", "a"}
	if !StructureEqual(got, want) {
		t.Fatalf("cmd structure = %v, want %v", got, want)
	}
	got = Structure(SinkCmd, `cat x; rm -rf /`)
	want = []string{"a", "a", ";", "a", "a", "a"}
	if !StructureEqual(got, want) {
		t.Fatalf("cmd attack structure = %v, want %v", got, want)
	}
	// Escaped metachar merges into the word.
	got = Structure(SinkCmd, `cat a\;b`)
	want = []string{"a", "a"}
	if !StructureEqual(got, want) {
		t.Fatalf("escaped cmd structure = %v, want %v", got, want)
	}
	// Unterminated quote is an error token.
	got = Structure(SinkCmd, `cat "abc`)
	want = []string{"a", "ERR"}
	if !StructureEqual(got, want) {
		t.Fatalf("unterminated quote structure = %v, want %v", got, want)
	}
}

func TestStructurePath(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"report.txt", "inside"},
		{"sub/dir/file", "inside"},
		{"a/../b", "inside"},
		{"../../etc/passwd", "escape"},
		{"/etc/shadow", "escape"},
		{"..\\..\\windows", "escape"},
		{"..", "escape"}, // resolves to /srv, outside /srv/data... actually to /srv
	}
	for _, c := range cases {
		got := Structure(SinkPath, c.in)
		if len(got) != 1 || got[0] != c.want {
			t.Errorf("path structure(%q) = %v, want [%s]", c.in, got, c.want)
		}
	}
}

func TestStructureEqual(t *testing.T) {
	if !StructureEqual(nil, nil) || !StructureEqual([]string{"a"}, []string{"a"}) {
		t.Fatal("equality false negative")
	}
	if StructureEqual([]string{"a"}, []string{"b"}) || StructureEqual([]string{"a"}, []string{"a", "b"}) {
		t.Fatal("equality false positive")
	}
}

func TestAnalyzeVulnerableService(t *testing.T) {
	svc := mustParse(t, vulnSQLSrc)
	truths, err := Analyze(svc)
	if err != nil {
		t.Fatal(err)
	}
	if len(truths) != 1 {
		t.Fatalf("truths = %d", len(truths))
	}
	if !truths[0].Vulnerable {
		t.Fatal("unescaped SQL splice should be labelled vulnerable")
	}
	if truths[0].Witness == nil {
		t.Fatal("vulnerable label needs a witness")
	}
	// The witness must actually demonstrate the vulnerability.
	res := mustExec(t, svc, truths[0].Witness)
	found := false
	for _, ev := range res.EventsFor(0) {
		if StructuralTaint(ev.Kind, ev.Value) {
			found = true
		}
	}
	if !found {
		t.Fatalf("witness %v does not reproduce the vulnerability", truths[0].Witness)
	}
}

func TestAnalyzeSafeService(t *testing.T) {
	for _, src := range []string{escapedSQLSrc, numericSQLSrc} {
		svc := mustParse(t, src)
		truths, err := Analyze(svc)
		if err != nil {
			t.Fatal(err)
		}
		if truths[0].Vulnerable {
			t.Fatalf("%s: sanitized sink labelled vulnerable", svc.Name)
		}
	}
}

func TestAnalyzeValidatedService(t *testing.T) {
	// Digits-only validation makes the quoted splice safe: every payload
	// is rejected before the sink.
	svc := mustParse(t, `
service V
  param id
  if not matches(id, digits)
    reject
  end
  sink sql concat("Q='", id, "'")
end
`)
	truths, err := Analyze(svc)
	if err != nil {
		t.Fatal(err)
	}
	if truths[0].Vulnerable {
		t.Fatal("digit-validated splice should be safe")
	}
}

func TestAnalyzeGuardedSink(t *testing.T) {
	// The vulnerable sink is only reachable when a second parameter has a
	// specific value; the oracle must still find it via the cross product.
	svc := mustParse(t, `
service G
  param id
  param mode
  if eq(mode, "alpha")
    sink sql concat("Q='", id, "'")
  end
end
`)
	truths, err := Analyze(svc)
	if err != nil {
		t.Fatal(err)
	}
	if !truths[0].Vulnerable {
		t.Fatal("oracle failed to find the guarded vulnerable sink ('alpha' is in the benign pool)")
	}
	if truths[0].Witness["mode"] != "alpha" {
		t.Fatalf("witness should set mode=alpha: %v", truths[0].Witness)
	}
}

func TestAnalyzeDeadSink(t *testing.T) {
	// Statically unreachable sink: never executed, hence not vulnerable.
	svc := mustParse(t, `
service D
  param id
  if false
    sink sql concat("Q='", id, "'")
  end
  sink sql "SELECT 1"
end
`)
	truths, err := Analyze(svc)
	if err != nil {
		t.Fatal(err)
	}
	if truths[0].Vulnerable {
		t.Fatal("dead sink cannot be vulnerable")
	}
	if truths[1].Vulnerable {
		t.Fatal("constant sink cannot be vulnerable")
	}
}

func TestAnalyzeSecondOrderFlow(t *testing.T) {
	// Taint flows through an intermediate variable and a loop.
	svc := mustParse(t, `
service L
  param x
  var acc
  repeat 2
    acc = concat(acc, x)
  end
  sink sql concat("Q='", acc, "'")
end
`)
	truths, err := Analyze(svc)
	if err != nil {
		t.Fatal(err)
	}
	if !truths[0].Vulnerable {
		t.Fatal("loop-accumulated taint should reach the sink")
	}
}

func TestAnalyzeTooManyParams(t *testing.T) {
	svc := &Service{Name: "Big", Params: []string{"a", "b", "c", "d"}}
	if _, err := Analyze(svc); err == nil {
		t.Fatal("oracle must refuse services beyond its exhaustiveness limit")
	}
}

func TestAnalyzeNilAndInvalid(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Fatal("nil service accepted")
	}
	bad := &Service{Name: "B", Body: []Stmt{Assign{Name: "nope", Expr: Lit{}}}}
	if _, err := Analyze(bad); err == nil {
		t.Fatal("invalid service accepted")
	}
}

func TestAnalyzeNoSinks(t *testing.T) {
	svc := mustParse(t, `
service None
  param x
  var y
  y = x
end
`)
	truths, err := Analyze(svc)
	if err != nil {
		t.Fatal(err)
	}
	if len(truths) != 0 {
		t.Fatalf("no sinks should yield no truths, got %d", len(truths))
	}
}

func TestAttackPayloadsNonEmpty(t *testing.T) {
	for _, k := range AllSinkKinds() {
		if len(AttackPayloads(k)) == 0 {
			t.Errorf("no payloads for %s", k)
		}
	}
	if AttackPayloads(SinkKind(99)) != nil {
		t.Error("unknown kind should have no payloads")
	}
	if len(BenignValues()) == 0 {
		t.Error("benign pool empty")
	}
}

const storedXSSSrc = `
service Guestbook
  param msg
  sink html concat("<ul>", load("entries"), "</ul>")
  store "entries" concat(load("entries"), "<li>", msg, "</li>")
end
`

const storedXSSSafeSrc = `
service GuestbookSafe
  param msg
  sink html concat("<ul>", load("entries"), "</ul>")
  store "entries" concat(load("entries"), "<li>", escape_html(msg), "</li>")
end
`

func TestExecuteInSessionPersistsStore(t *testing.T) {
	svc := mustParse(t, storedXSSSrc)
	store := NewSessionStore()
	res1, err := ExecuteInSession(svc, Request{"msg": "hello"}, store)
	if err != nil {
		t.Fatal(err)
	}
	if got := res1.Events[0].Value.String(); got != "<ul></ul>" {
		t.Fatalf("first render = %q", got)
	}
	res2, err := ExecuteInSession(svc, Request{"msg": "again"}, store)
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.Events[0].Value.String(); got != "<ul><li>hello</li></ul>" {
		t.Fatalf("second render = %q", got)
	}
	if store.Keys() != 1 {
		t.Fatalf("store keys = %d", store.Keys())
	}
}

func TestExecuteFreshStorePerCall(t *testing.T) {
	svc := mustParse(t, storedXSSSrc)
	if _, err := Execute(svc, Request{"msg": "x"}); err != nil {
		t.Fatal(err)
	}
	res, err := Execute(svc, Request{"msg": "y"})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Events[0].Value.String(); got != "<ul></ul>" {
		t.Fatalf("stateless Execute leaked state: %q", got)
	}
}

func TestStoredTaintSurvivesSession(t *testing.T) {
	svc := mustParse(t, storedXSSSrc)
	store := NewSessionStore()
	if _, err := ExecuteInSession(svc, Request{"msg": "<script>x</script>"}, store); err != nil {
		t.Fatal(err)
	}
	res2, err := ExecuteInSession(svc, Request{"msg": "benign"}, store)
	if err != nil {
		t.Fatal(err)
	}
	if !StructuralTaint(SinkHTML, res2.Events[0].Value) {
		t.Fatal("stored payload should carry structural taint into the second request")
	}
}

func TestAnalyzeStoredXSS(t *testing.T) {
	vuln := mustParse(t, storedXSSSrc)
	truths, err := Analyze(vuln)
	if err != nil {
		t.Fatal(err)
	}
	if !truths[0].Vulnerable {
		t.Fatal("stored XSS should be labelled vulnerable")
	}
	if len(truths[0].Sequence) != 2 {
		t.Fatalf("stored XSS needs a two-request witness, got %d", len(truths[0].Sequence))
	}
	// The witness sequence must actually reproduce the finding.
	store := NewSessionStore()
	var hit bool
	for _, req := range truths[0].Sequence {
		res, err := ExecuteInSession(vuln, req, store)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range res.EventsFor(0) {
			if StructuralTaint(ev.Kind, ev.Value) {
				hit = true
			}
		}
	}
	if !hit {
		t.Fatalf("witness sequence %v does not reproduce", truths[0].Sequence)
	}

	safe := mustParse(t, storedXSSSafeSrc)
	safeTruths, err := Analyze(safe)
	if err != nil {
		t.Fatal(err)
	}
	if safeTruths[0].Vulnerable {
		t.Fatal("escaped stored flow should be safe")
	}
}

func TestAnalyzeStatefulParamLimit(t *testing.T) {
	svc := mustParse(t, `
service TooWide
  param a
  param b
  sink html load("k")
  store "k" concat(a, b)
end
`)
	if _, err := Analyze(svc); err == nil {
		t.Fatal("stateful service with 2 params must exceed the sequence-labelling limit")
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	svc := mustParse(t, storedXSSSrc)
	printed := Print(svc)
	again, err := ParseOne(printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if !again.UsesStore() {
		t.Fatal("UsesStore lost in round trip")
	}
	if Print(again) != printed {
		t.Fatal("print not stable across round trip")
	}
}

func TestUsesStore(t *testing.T) {
	if mustParse(t, vulnSQLSrc).UsesStore() {
		t.Fatal("stateless service reports store use")
	}
	if !mustParse(t, storedXSSSrc).UsesStore() {
		t.Fatal("stateful service not detected")
	}
	loadOnly := mustParse(t, `
service L
  param a
  sink html load("k")
end
`)
	if !loadOnly.UsesStore() {
		t.Fatal("load-only service not detected")
	}
}

func TestValidateStoreErrors(t *testing.T) {
	bad := &Service{Name: "B", Params: []string{"a"}, Body: []Stmt{
		Store{Key: "", Expr: Ident{Name: "a"}},
	}}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty store key accepted")
	}
	bad2 := &Service{Name: "B2", Params: []string{"a"}, Body: []Stmt{
		Sink{ID: 0, Kind: SinkHTML, Expr: LoadExpr{Key: ""}},
	}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("empty load key accepted")
	}
	bad3 := &Service{Name: "B3", Body: []Stmt{
		Store{Key: "k", Expr: Ident{Name: "ghost"}},
	}}
	if err := bad3.Validate(); err == nil {
		t.Fatal("undeclared name in store expr accepted")
	}
}
