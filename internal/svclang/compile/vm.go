package compile

import (
	"strings"
	"unicode/utf8"

	"github.com/dsn2015/vdbench/internal/svclang"
)

// value is the VM's string representation: a view into the arena's rune
// slab (or an interned constant) plus a packed taint bitset. Bit off+i of
// bits is the taint flag of chars[i]. Values are immutable views — trim
// is pure slice-and-offset arithmetic, exactly like the interpreter's
// backing-array sharing — and slab growth never invalidates them (old
// views keep pointing into the old backing array, whose prefix was fully
// written before the growth).
type value struct {
	chars []rune
	bits  []uint64
	off   int
}

func (v value) tainted(i int) bool {
	idx := v.off + i
	return v.bits[idx>>6]&(1<<uint(idx&63)) != 0
}

// arena is the per-execution scratch state: the rune slab and its
// parallel taint bitset, the operand stack, the variable slots, the loop
// counters and the slot-indexed fresh-request session store. Engines
// recycle arenas through a sync.Pool; begin() re-zeroes every bit of
// taint state on reuse so a pooled (or deliberately poisoned) arena can
// never leak one request's taint into the next — values only ever OR
// bits in, so a zeroed slab is the full reset.
type arena struct {
	runes []rune
	bits  []uint64
	used  int

	stack     []value
	vars      []value
	loops     []int32
	storeVals []value
	storeSet  []bool
}

// begin readies the arena for one execution of p.
func (a *arena) begin(p *Program) {
	for i := range a.bits {
		a.bits[i] = 0
	}
	a.used = 0
	if cap(a.stack) < p.maxStack {
		a.stack = make([]value, 0, p.maxStack)
	}
	if len(a.vars) < p.nSlots {
		a.vars = make([]value, p.nSlots)
	}
	if cap(a.loops) < p.maxLoops {
		a.loops = make([]int32, 0, p.maxLoops)
	}
	if len(a.storeSet) < len(p.storeKeys) {
		a.storeVals = make([]value, len(p.storeKeys))
		a.storeSet = make([]bool, len(p.storeKeys))
	}
	for i := range a.storeSet {
		a.storeSet[i] = false
		a.storeVals[i] = value{}
	}
}

// reserve claims n rune slots and returns the start index. Growth copies
// the used prefix; the fresh bitset words come back zeroed from make.
func (a *arena) reserve(n int) int {
	start := a.used
	need := start + n
	if need > len(a.runes) {
		newCap := 2 * len(a.runes)
		if newCap < need {
			newCap = need
		}
		if newCap < 256 {
			newCap = 256
		}
		nr := make([]rune, newCap)
		copy(nr, a.runes[:a.used])
		nb := make([]uint64, (newCap+63)/64)
		copy(nb, a.bits)
		a.runes, a.bits = nr, nb
	}
	a.used = need
	return start
}

func (a *arena) setBit(i int) {
	a.bits[i>>6] |= 1 << uint(i&63)
}

func (a *arena) view(start, n int) value {
	return value{chars: a.runes[start : start+n], bits: a.bits, off: start}
}

// fromString decodes a request parameter into the arena, fully tainted.
// Ranging over the string yields one U+FFFD per invalid byte — the same
// normalisation []rune(s) applies in NewTaintedTString.
func (a *arena) fromString(s string) value {
	n := utf8.RuneCountInString(s)
	if n == 0 {
		return value{}
	}
	start := a.reserve(n)
	i := start
	for _, r := range s {
		a.runes[i] = r
		a.setBit(i)
		i++
	}
	return a.view(start, n)
}

// fromTString copies a session-store value into the arena.
func (a *arena) fromTString(t svclang.TString) value {
	rs, ts := t.Runes(), t.Taints()
	if len(rs) == 0 {
		return value{}
	}
	start := a.reserve(len(rs))
	copy(a.runes[start:start+len(rs)], rs)
	for i, tainted := range ts {
		if tainted {
			a.setBit(start + i)
		}
	}
	return a.view(start, len(rs))
}

// materialize copies a value out of the arena into a real TString — the
// only escape points of an execution are sink events and external
// session-store writes, and both go through here.
func materialize(v value) svclang.TString {
	n := len(v.chars)
	chars := make([]rune, n)
	copy(chars, v.chars)
	taint := make([]bool, n)
	for i := 0; i < n; i++ {
		if v.tainted(i) {
			taint[i] = true
		}
	}
	return svclang.MakeTString(chars, taint)
}

// run executes the program on one request. store == nil uses the arena's
// slot-indexed fresh store (the Execute path); a non-nil store reads and
// writes the caller's SessionStore with materialised TStrings, exactly
// like the interpreter. A non-nil obs (black-box observation) or probe
// (white-box structural-taint judgment) switches sink events from
// materialised Result.Events to streamed callbacks over the arena's
// values — the zero-allocation paths; at most one of the two may be
// set. run cannot fail: everything the interpreter errors on at runtime
// is rejected at Compile time.
func (p *Program) run(a *arena, req svclang.Request, store *svclang.SessionStore, obs ObserveFunc, probe svclang.ProbeObserver) svclang.Result {
	a.begin(p)
	vars := a.vars
	for i, name := range p.params {
		vars[i] = a.fromString(req[name])
	}
	for i := len(p.params); i < p.nSlots; i++ {
		vars[i] = value{}
	}
	stack := a.stack[:0]
	loops := a.loops[:0]
	var events []svclang.SinkEvent
	rejected := false
	flag := false
	code := p.code
	pc := 0
	for pc < len(code) {
		in := code[pc]
		switch in.op {
		case opConst:
			stack = append(stack, value{chars: p.consts[in.a], bits: p.zeroBits})
			pc++
		case opLoadVar:
			stack = append(stack, vars[in.a])
			pc++
		case opSetVar:
			vars[in.a] = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			pc++
		case opZeroVar:
			vars[in.a] = value{}
			pc++
		case opLoadStore:
			var v value
			if store != nil {
				v = a.fromTString(store.Get(p.storeKeys[in.a]))
			} else if a.storeSet[in.a] {
				v = a.storeVals[in.a]
			}
			stack = append(stack, v)
			pc++
		case opSetStore:
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if store != nil {
				store.Set(p.storeKeys[in.a], materialize(v))
			} else {
				a.storeVals[in.a] = v
				a.storeSet[in.a] = true
			}
			pc++
		case opConcat:
			n := int(in.a)
			parts := stack[len(stack)-n:]
			v := a.concat(parts)
			stack = stack[:len(stack)-n]
			stack = append(stack, v)
			pc++
		case opBuiltin:
			v := stack[len(stack)-1]
			stack[len(stack)-1] = a.builtin(svclang.Builtin(in.a), v)
			pc++
		case opSink:
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			si := p.sinks[in.a]
			switch {
			case obs != nil:
				obs(si.id, si.kind, si.silent, v.chars)
			case probe != nil:
				probe(si.id, si.kind, svclang.StructuralTaintPacked(si.kind, v.chars, v.bits, v.off))
			default:
				if events == nil {
					events = make([]svclang.SinkEvent, 0, p.eventBound)
				}
				events = append(events, svclang.SinkEvent{SinkID: si.id, Kind: si.kind, Value: materialize(v), Silent: si.silent})
			}
			pc++
		case opReject:
			rejected = true
			pc = len(code)
		case opJump:
			pc = int(in.b)
		case opBrFalse:
			if flag {
				pc++
			} else {
				pc = int(in.b)
			}
		case opTestMatch:
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			flag = matchClass(v.chars, svclang.CharClass(in.a))
			pc++
		case opTestContains:
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			flag = p.contains(v, int(in.a))
			pc++
		case opTestEq:
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			flag = p.equals(v, int(in.a))
			pc++
		case opTestBool:
			flag = in.a != 0
			pc++
		case opNotFlag:
			flag = !flag
			pc++
		case opLoopInit:
			loops = append(loops, in.a)
			pc++
		case opLoopNext:
			loops[len(loops)-1]--
			if loops[len(loops)-1] > 0 {
				pc = int(in.b)
			} else {
				loops = loops[:len(loops)-1]
				pc++
			}
		}
	}
	return svclang.Result{Rejected: rejected, Events: events}
}

// concat joins parts into one fresh arena value. A single part passes
// through unchanged (values are immutable, so sharing is safe).
func (a *arena) concat(parts []value) value {
	if len(parts) == 1 {
		return parts[0]
	}
	total := 0
	for _, p := range parts {
		total += len(p.chars)
	}
	start := a.reserve(total)
	j := start
	for _, p := range parts {
		copy(a.runes[j:j+len(p.chars)], p.chars)
		for i := range p.chars {
			if p.tainted(i) {
				a.setBit(j + i)
			}
		}
		j += len(p.chars)
	}
	return a.view(start, total)
}

// builtin applies a single-argument builtin through the shared
// builtinSpecs table in svclang/builtins.go — the same replacement
// functions the interpreter's applyBuiltin maps over TStrings. Compile
// guarantees fn is one of the known single-argument builtins (concat
// has its own opcode); of those only trim is not character-wise.
func (a *arena) builtin(fn svclang.Builtin, v value) value {
	if fn == svclang.BuiltinTrim {
		return trim(v)
	}
	if repl := svclang.ReplFor(fn); repl != nil {
		return a.mapRepl(v, repl)
	}
	return v
}

// mapRepl rewrites v through a replacement table in two passes: measure,
// then fill. An input with nothing to replace passes through as-is —
// content and taint are identical either way, and sharing immutable
// views is exactly what the interpreter's trim already does.
func (a *arena) mapRepl(v value, repl svclang.ReplFunc) value {
	outLen, changed := 0, false
	for _, r := range v.chars {
		if rs := repl(r); rs != nil {
			outLen += len(rs)
			changed = true
		} else {
			outLen++
		}
	}
	if !changed {
		return v
	}
	start := a.reserve(outLen)
	j := start
	for i, r := range v.chars {
		t := v.tainted(i)
		rs := repl(r)
		if rs == nil {
			a.runes[j] = r
			if t {
				a.setBit(j)
			}
			j++
			continue
		}
		for _, nr := range rs {
			a.runes[j] = nr
			if t {
				a.setBit(j)
			}
			j++
		}
	}
	return a.view(start, outLen)
}

// trim strips leading and trailing spaces by pure view arithmetic — the
// same backing-array sharing as the interpreter's trim.
func trim(v value) value {
	s, e := 0, len(v.chars)
	for s < e && v.chars[s] == ' ' {
		s++
	}
	for e > s && v.chars[e-1] == ' ' {
		e--
	}
	return value{chars: v.chars[s:e], bits: v.bits, off: v.off + s}
}

// matchClass replicates CharClass.MatchesClass over the rune view (the
// interpreter round-trips through a string; the rune sequences are
// identical, so so are the answers). The empty string matches every
// class.
func matchClass(chars []rune, c svclang.CharClass) bool {
	for _, r := range chars {
		switch c {
		case svclang.ClassDigits:
			if r < '0' || r > '9' {
				return false
			}
		case svclang.ClassAlpha:
			if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z') {
				return false
			}
		case svclang.ClassAlnum:
			if !(r >= '0' && r <= '9' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z') {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// contains implements the Contains condition. For a needle that is valid
// UTF-8 (every needle the parser can produce from well-formed source),
// rune-level search over the normalised value equals the interpreter's
// byte-level strings.Contains: UTF-8 is self-synchronising, so a byte
// match can neither start nor end inside a rune. A needle carrying
// invalid bytes cannot be compared rune-wise without changing semantics
// ([]rune normalises it, the interpreter's byte comparison does not), so
// that cold path re-encodes the value and defers to strings.Contains.
func (p *Program) contains(v value, idx int) bool {
	if !p.constOK[idx] {
		return strings.Contains(string(v.chars), p.constRaw[idx])
	}
	needle := p.consts[idx]
	if len(needle) == 0 {
		return true
	}
	hay := v.chars
	for i := 0; i+len(needle) <= len(hay); i++ {
		match := true
		for j := range needle {
			if hay[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// equals implements the Eq condition; the same valid-UTF-8 reasoning as
// contains applies (rune equality equals byte equality of the
// encodings).
func (p *Program) equals(v value, idx int) bool {
	if !p.constOK[idx] {
		return string(v.chars) == p.constRaw[idx]
	}
	lit := p.consts[idx]
	if len(v.chars) != len(lit) {
		return false
	}
	for i := range lit {
		if v.chars[i] != lit[i] {
			return false
		}
	}
	return true
}
