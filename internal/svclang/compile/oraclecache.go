package compile

import (
	"container/list"
	"crypto/sha256"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/dsn2015/vdbench/internal/svclang"
)

// Content-addressed oracle cache: ground truth is a pure function of a
// service's body (the name never appears in a GroundTruth) and of the
// derivation mode, so identical services — template instantiations, the
// per-worker corpus regenerations of internal/dist, repeated campaign
// setups in one process — need only one influence-guided search. The
// cache is process-wide, like the cfg compile cache and the oracle
// telemetry it composes with: keyed by the SHA-256 of the canonical
// printed source with the name line stripped, plus the mode bits
// (interpreter vs VM, pruned vs exhaustive). The mode bits are part of
// the key even though every mode provably derives the same labels —
// collapsing them would let a cached pruned result answer an exhaustive
// escape-hatch request, masking exactly the divergence that mode exists
// to expose.
//
// Entries singleflight like progEntry: the first caller derives under
// the entry's once while the cache stays unlocked for other keys.
// Recency is tracked MRU with a bounded capacity; an in-flight entry
// may be evicted, in which case its waiters still complete against the
// detached entry. Results are deep-copied on every return (producer
// included) so no caller can corrupt a cached witness.

// oracleCacheCap bounds the cache to a few thousand services — far
// above any one corpus (hundreds), far below memory relevance.
const oracleCacheCap = 2048

type oracleKey struct {
	sum  [sha256.Size]byte
	mode uint8
}

type oracleEntry struct {
	once   sync.Once
	truths []svclang.GroundTruth
	err    error
}

var (
	oracleMu    sync.Mutex
	oracleCache = map[oracleKey]*list.Element{}
	oracleMRU   list.List // of oracleElem, front = most recent

	oracleHits   atomic.Uint64
	oracleMisses atomic.Uint64
)

type oracleElem struct {
	key oracleKey
	ent *oracleEntry
}

// oracleCacheKey derives the content address of svc under the given
// mode bits. The printed form is canonical (Print ∘ Parse is the
// identity on it), and its first line carries exactly the service name,
// which ground truth is independent of — stripping it lets renamed
// instantiations of one template share an entry.
func oracleCacheKey(svc *svclang.Service, interpret, exhaustive bool) oracleKey {
	src := svclang.Print(svc)
	if i := strings.IndexByte(src, '\n'); i >= 0 {
		src = src[i+1:]
	}
	var mode uint8
	if interpret {
		mode |= 1
	}
	if exhaustive {
		mode |= 2
	}
	return oracleKey{sum: sha256.Sum256([]byte(src)), mode: mode}
}

// oracleLookup memoises derive under the service's content address,
// returning a deep copy of the cached ground truth.
func oracleLookup(svc *svclang.Service, interpret, exhaustive bool, derive func() ([]svclang.GroundTruth, error)) ([]svclang.GroundTruth, error) {
	key := oracleCacheKey(svc, interpret, exhaustive)

	oracleMu.Lock()
	el, ok := oracleCache[key]
	if ok {
		oracleMRU.MoveToFront(el)
	} else {
		el = oracleMRU.PushFront(oracleElem{key: key, ent: &oracleEntry{}})
		oracleCache[key] = el
		if oracleMRU.Len() > oracleCacheCap {
			back := oracleMRU.Back()
			oracleMRU.Remove(back)
			delete(oracleCache, back.Value.(oracleElem).key)
		}
	}
	oracleMu.Unlock()

	if ok {
		oracleHits.Add(1)
	} else {
		oracleMisses.Add(1)
	}

	ent := el.Value.(oracleElem).ent
	ent.once.Do(func() {
		ent.truths, ent.err = derive()
	})
	if ent.err != nil {
		return nil, ent.err
	}
	return svclang.CloneGroundTruths(ent.truths), nil
}

// OracleCacheTotals returns the process-wide oracle-cache counters:
// hits served a memoised ground-truth derivation, misses ran one (or
// are running one — an in-flight entry counts as missed by its
// producer and hit by its waiters). Both values are monotone;
// cmd/vdserved and the dist daemons fold their deltas onto /metrics.
func OracleCacheTotals() (hits, misses uint64) {
	return oracleHits.Load(), oracleMisses.Load()
}
