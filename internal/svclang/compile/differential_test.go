package compile_test

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/svclang/compile"
	"github.com/dsn2015/vdbench/internal/workload"
)

// The differential suite is the contract that makes the VM trustworthy:
// for every workload template, every supported sink kind and both
// vulnerability knobs, the VM and the reference interpreter must produce
// deep-equal Results — taint spans, session-store effects and reject
// points included — on the oracle's probe pool and on seeded random
// requests. Nothing in the benchmark is allowed to observe which engine
// ran.

// diffSeeds are the seeds the end-to-end determinism suite also uses.
var diffSeeds = []uint64{1, 7, 42}

// requireEqualResults compares two execution results semantically:
// per-character content and taint, not internal representation.
func requireEqualResults(t *testing.T, ctx string, ref, got svclang.Result) {
	t.Helper()
	if ref.Rejected != got.Rejected {
		t.Fatalf("%s: rejected: interpreter=%v vm=%v", ctx, ref.Rejected, got.Rejected)
	}
	if (ref.Events == nil) != (got.Events == nil) || len(ref.Events) != len(got.Events) {
		t.Fatalf("%s: events: interpreter=%d (nil=%v) vm=%d (nil=%v)",
			ctx, len(ref.Events), ref.Events == nil, len(got.Events), got.Events == nil)
	}
	for i := range ref.Events {
		re, ge := ref.Events[i], got.Events[i]
		if re.SinkID != ge.SinkID || re.Kind != ge.Kind || re.Silent != ge.Silent {
			t.Fatalf("%s: event %d metadata: interpreter=%+v vm=%+v", ctx, i, re, ge)
		}
		requireEqualTStrings(t, fmt.Sprintf("%s: event %d value", ctx, i), re.Value, ge.Value)
	}
}

func requireEqualTStrings(t *testing.T, ctx string, ref, got svclang.TString) {
	t.Helper()
	if ref.String() != got.String() {
		t.Fatalf("%s: content: interpreter=%q vm=%q", ctx, ref.String(), got.String())
	}
	if ref.Len() != got.Len() {
		t.Fatalf("%s: length: interpreter=%d vm=%d", ctx, ref.Len(), got.Len())
	}
	for i := 0; i < ref.Len(); i++ {
		if ref.TaintedAt(i) != got.TaintedAt(i) {
			t.Fatalf("%s: taint at %d (%q): interpreter=%v vm=%v",
				ctx, i, string(ref.Runes()[i]), ref.TaintedAt(i), got.TaintedAt(i))
		}
	}
}

func requireEqualStores(t *testing.T, ctx string, ref, got *svclang.SessionStore) {
	t.Helper()
	rk, gk := ref.SortedKeys(), got.SortedKeys()
	if !reflect.DeepEqual(rk, gk) {
		t.Fatalf("%s: store keys: interpreter=%v vm=%v", ctx, rk, gk)
	}
	for _, k := range rk {
		requireEqualTStrings(t, fmt.Sprintf("%s: store[%q]", ctx, k), ref.Get(k), got.Get(k))
	}
}

// diffRequests builds the request set for a service: every oracle pool
// value on every parameter (uniform assignment), plus per-seed random
// assignments drawn from the pool and from random strings over an
// alphabet rich in sink metacharacters.
func diffRequests(svc *svclang.Service) []svclang.Request {
	pool := svclang.BenignValues()
	for _, k := range svclang.AllSinkKinds() {
		pool = append(pool, svclang.AttackPayloads(k)...)
	}
	pool = append(pool, "", " spaced out ", "UPPER lower 123", "a'b\"c<d>e&f;g|h$i`j\\k/l.m")

	var reqs []svclang.Request
	uniform := func(v string) svclang.Request {
		req := svclang.Request{}
		for _, p := range svc.Params {
			req[p] = v
		}
		return req
	}
	for _, v := range pool {
		reqs = append(reqs, uniform(v))
	}
	const alphabet = "abc123'\"<>&;|$`\\/. �é世"
	for _, seed := range diffSeeds {
		rng := stats.NewRNG(seed)
		for n := 0; n < 8; n++ {
			req := svclang.Request{}
			for _, p := range svc.Params {
				if rng.Intn(2) == 0 {
					req[p] = pool[rng.Intn(len(pool))]
				} else {
					runes := make([]rune, rng.Intn(12))
					for i := range runes {
						runes[i] = []rune(alphabet)[rng.Intn(len([]rune(alphabet)))]
					}
					req[p] = string(runes)
				}
			}
			// Occasionally drop a parameter to exercise the missing-param
			// (tainted empty) path.
			if len(svc.Params) > 0 && rng.Intn(4) == 0 {
				delete(req, svc.Params[rng.Intn(len(svc.Params))])
			}
			reqs = append(reqs, req)
		}
	}
	return reqs
}

// runDifferential drives one service through both engines on the full
// request set: fresh-store singles and shared-store pairs.
func runDifferential(t *testing.T, ctx string, eng *compile.Engine, svc *svclang.Service) {
	t.Helper()
	reqs := diffRequests(svc)
	for i, req := range reqs {
		rctx := fmt.Sprintf("%s: req %d %v", ctx, i, req)
		ref, refErr := svclang.Execute(svc, req)
		got, gotErr := eng.Execute(svc, req)
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: error: interpreter=%v vm=%v", rctx, refErr, gotErr)
		}
		if refErr != nil {
			continue
		}
		requireEqualResults(t, rctx, ref, got)
	}
	// Two-request shared-session sequences: cover store persistence and
	// second-order flows. Pair each request with its successor.
	for i := 0; i+1 < len(reqs); i += 2 {
		rctx := fmt.Sprintf("%s: seq %d", ctx, i)
		refStore, gotStore := svclang.NewSessionStore(), svclang.NewSessionStore()
		for j, req := range []svclang.Request{reqs[i], reqs[i+1]} {
			ref, refErr := svclang.ExecuteInSession(svc, req, refStore)
			got, gotErr := eng.ExecuteInSession(svc, req, gotStore)
			if (refErr == nil) != (gotErr == nil) {
				t.Fatalf("%s: step %d error: interpreter=%v vm=%v", rctx, j, refErr, gotErr)
			}
			if refErr != nil {
				break
			}
			requireEqualResults(t, fmt.Sprintf("%s: step %d", rctx, j), ref, got)
			requireEqualStores(t, fmt.Sprintf("%s: step %d", rctx, j), refStore, gotStore)
		}
	}
}

// TestExecDifferentialTemplates locks the VM to the interpreter over the
// entire template library: every template × every supported kind ×
// vulnerable/safe, on oracle-pool and seeded random requests.
func TestExecDifferentialTemplates(t *testing.T) {
	eng := compile.NewEngine(false)
	for _, tmpl := range workload.Templates() {
		for _, kind := range tmpl.Kinds {
			for _, vulnerable := range []bool{true, false} {
				name := fmt.Sprintf("%s/%s/vuln=%v", tmpl.Name, kind, vulnerable)
				t.Run(name, func(t *testing.T) {
					svc, _ := tmpl.Build("diff_svc", kind, vulnerable)
					runDifferential(t, name, eng, svc)
				})
			}
		}
	}
}

// TestAnalyzeDifferentialTemplates pins the exhaustive oracle itself:
// ground truth derived through the VM must be identical (witnesses and
// sequences included) to ground truth derived through the interpreter.
func TestAnalyzeDifferentialTemplates(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive oracle differential skipped in -short")
	}
	eng := compile.NewEngine(false)
	for _, tmpl := range workload.Templates() {
		for _, kind := range tmpl.Kinds {
			for _, vulnerable := range []bool{true, false} {
				name := fmt.Sprintf("%s/%s/vuln=%v", tmpl.Name, kind, vulnerable)
				t.Run(name, func(t *testing.T) {
					svc, _ := tmpl.Build("diff_svc", kind, vulnerable)
					ref, refErr := svclang.Analyze(svc)
					got, gotErr := eng.Analyze(svc)
					if (refErr == nil) != (gotErr == nil) {
						t.Fatalf("analyze error: interpreter=%v vm=%v", refErr, gotErr)
					}
					if !reflect.DeepEqual(ref, got) {
						t.Fatalf("ground truth diverged:\ninterpreter=%+v\nvm=%+v", ref, got)
					}
				})
			}
		}
	}
}

// obsEvent is one streamed observation, with the value copied out of
// the callback's transient view and fingerprinted the way the
// pentester does.
type obsEvent struct {
	sinkID int
	kind   svclang.SinkKind
	silent bool
	value  string
	fp     uint64
}

// observeStream collects an engine's full Observe stream for one
// request against a given store.
func observeStream(t *testing.T, eng *compile.Engine, svc *svclang.Service, req svclang.Request, store *svclang.SessionStore) ([]obsEvent, bool) {
	t.Helper()
	var events []obsEvent
	rejected, err := eng.Observe(svc, req, store, func(sinkID int, kind svclang.SinkKind, silent bool, chars []rune) {
		events = append(events, obsEvent{
			sinkID: sinkID,
			kind:   kind,
			silent: silent,
			value:  string(chars),
			fp:     svclang.StructureFingerprint(kind, chars),
		})
	})
	if err != nil {
		t.Fatalf("Observe: %v", err)
	}
	return events, rejected
}

// TestObserveDifferentialTemplates locks the streaming observation path
// to the materialising one on both engines: the VM's Observe stream,
// the interpret-mode engine's Observe stream and the interpreter's
// Result.Events must agree event for event — IDs, kinds, silence,
// values, structure fingerprints, rejection and session-store effects.
// This is the contract the pentester's zero-allocation probing stands
// on.
func TestObserveDifferentialTemplates(t *testing.T) {
	vm := compile.NewEngine(false)
	interp := compile.NewEngine(true)
	for _, tmpl := range workload.Templates() {
		for _, kind := range tmpl.Kinds {
			for _, vulnerable := range []bool{true, false} {
				name := fmt.Sprintf("%s/%s/vuln=%v", tmpl.Name, kind, vulnerable)
				t.Run(name, func(t *testing.T) {
					svc, _ := tmpl.Build("diff_svc", kind, vulnerable)
					refStore, vmStore, interpStore := svclang.NewSessionStore(), svclang.NewSessionStore(), svclang.NewSessionStore()
					for i, req := range diffRequests(svc) {
						rctx := fmt.Sprintf("req %d %v", i, req)
						res, err := svclang.ExecuteInSession(svc, req, refStore)
						if err != nil {
							t.Fatalf("%s: interpreter: %v", rctx, err)
						}
						want := make([]obsEvent, 0, len(res.Events))
						for _, ev := range res.Events {
							want = append(want, obsEvent{
								sinkID: ev.SinkID,
								kind:   ev.Kind,
								silent: ev.Silent,
								value:  ev.Value.String(),
								fp:     svclang.StructureFingerprint(ev.Kind, ev.Value.Runes()),
							})
						}
						vmEvents, vmRejected := observeStream(t, vm, svc, req, vmStore)
						interpEvents, interpRejected := observeStream(t, interp, svc, req, interpStore)
						if vmRejected != res.Rejected || interpRejected != res.Rejected {
							t.Fatalf("%s: rejected: interpreter=%v vm-observe=%v interp-observe=%v",
								rctx, res.Rejected, vmRejected, interpRejected)
						}
						if len(vmEvents) != len(want) || len(interpEvents) != len(want) {
							t.Fatalf("%s: event counts: interpreter=%d vm-observe=%d interp-observe=%d",
								rctx, len(want), len(vmEvents), len(interpEvents))
						}
						for j := range want {
							if vmEvents[j] != want[j] {
								t.Fatalf("%s: event %d: interpreter=%+v vm-observe=%+v", rctx, j, want[j], vmEvents[j])
							}
							if interpEvents[j] != want[j] {
								t.Fatalf("%s: event %d: interpreter=%+v interp-observe=%+v", rctx, j, want[j], interpEvents[j])
							}
						}
						requireEqualStores(t, rctx+": vm store", refStore, vmStore)
						requireEqualStores(t, rctx+": interp store", refStore, interpStore)
					}
				})
			}
		}
	}
}

// TestEngineInterpreterMode checks the escape hatch is a true
// pass-through: an interpret-mode engine and the raw interpreter are the
// same function.
func TestEngineInterpreterMode(t *testing.T) {
	eng := compile.NewEngine(true)
	if !eng.Interpreting() {
		t.Fatal("NewEngine(true).Interpreting() = false")
	}
	tmpl := workload.Templates()[0]
	svc, _ := tmpl.Build("interp_svc", tmpl.Kinds[0], true)
	for _, req := range diffRequests(svc)[:6] {
		ref, refErr := svclang.Execute(svc, req)
		got, gotErr := eng.Execute(svc, req)
		if (refErr == nil) != (gotErr == nil) || !reflect.DeepEqual(ref, got) {
			t.Fatalf("interpret-mode engine diverged on %v", req)
		}
	}
}

// FuzzExecDifferential fuzzes service source and request parameters
// through both engines, corpus-seeded from every template. Invalid
// sources must fail identically; valid ones must produce deep-equal
// results and session effects.
func FuzzExecDifferential(f *testing.F) {
	for _, tmpl := range workload.Templates() {
		for _, kind := range tmpl.Kinds {
			for _, vulnerable := range []bool{true, false} {
				svc, _ := tmpl.Build("fuzz_seed", kind, vulnerable)
				f.Add(svclang.Print(svc), "' OR '1'='1", "<script>alert(1)</script>", "../../etc/passwd")
			}
		}
	}
	eng := compile.NewEngine(false)
	f.Fuzz(func(t *testing.T, src, p1, p2, p3 string) {
		svc, err := svclang.ParseOne(src)
		if err != nil {
			return
		}
		req := svclang.Request{}
		for i, p := range svc.Params {
			switch i {
			case 0:
				req[p] = p1
			case 1:
				req[p] = p2
			case 2:
				req[p] = p3
			}
		}
		ref, refErr := svclang.Execute(svc, req)
		got, gotErr := eng.Execute(svc, req)
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("error divergence: interpreter=%v vm=%v\nsrc:\n%s", refErr, gotErr, src)
		}
		if refErr != nil {
			return
		}
		requireEqualResults(t, "fuzz single", ref, got)

		// Re-run the same request twice in one session to exercise the
		// store paths under fuzzing too.
		refStore, gotStore := svclang.NewSessionStore(), svclang.NewSessionStore()
		for j := 0; j < 2; j++ {
			ref, refErr = svclang.ExecuteInSession(svc, req, refStore)
			got, gotErr = eng.ExecuteInSession(svc, req, gotStore)
			if (refErr == nil) != (gotErr == nil) {
				t.Fatalf("session error divergence: interpreter=%v vm=%v", refErr, gotErr)
			}
			if refErr != nil {
				return
			}
			requireEqualResults(t, fmt.Sprintf("fuzz session step %d", j), ref, got)
			requireEqualStores(t, fmt.Sprintf("fuzz session step %d", j), refStore, gotStore)
		}
	})
}
