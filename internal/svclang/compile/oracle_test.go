package compile_test

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/svclang/compile"
	"github.com/dsn2015/vdbench/internal/workload"
)

// The oracle-pruning acceptance matrix: the influence-guided search and
// the exhaustive reference must derive deep-equal ground truth —
// labels, witnesses and sequences — through both engines, over the
// whole template library and over generated corpora at the canonical
// determinism seeds.

// analyzeModes enumerates the four (engine, search) combinations an
// oracle derivation can run under.
func analyzeModes() []struct {
	name       string
	interpret  bool
	exhaustive bool
} {
	return []struct {
		name       string
		interpret  bool
		exhaustive bool
	}{
		{"vm/pruned", false, false},
		{"vm/exhaustive", false, true},
		{"interp/pruned", true, false},
		{"interp/exhaustive", true, true},
	}
}

// analyzeAllModes derives svc's ground truth under every mode with a
// fresh engine each and requires the results pairwise deep-equal,
// returning the common truth.
func analyzeAllModes(t *testing.T, ctx string, svc *svclang.Service) []svclang.GroundTruth {
	t.Helper()
	var ref []svclang.GroundTruth
	var refName string
	for i, m := range analyzeModes() {
		eng := compile.NewEngine(m.interpret)
		eng.SetOracleExhaustive(m.exhaustive)
		got, err := eng.Analyze(svc)
		if err != nil {
			t.Fatalf("%s: %s: %v", ctx, m.name, err)
		}
		if i == 0 {
			ref, refName = got, m.name
			continue
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("%s: ground truth diverged:\n%s=%+v\n%s=%+v\nsrc:\n%s",
				ctx, refName, ref, m.name, got, svclang.Print(svc))
		}
	}
	return ref
}

// TestAnalyzePrunedExhaustiveMatrixTemplates locks the pruned search to
// the exhaustive one through both engines over every template, kind and
// vulnerability knob.
func TestAnalyzePrunedExhaustiveMatrixTemplates(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle matrix skipped in -short")
	}
	for _, tmpl := range workload.Templates() {
		for _, kind := range tmpl.Kinds {
			for _, vulnerable := range []bool{true, false} {
				name := fmt.Sprintf("%s/%s/vuln=%v", tmpl.Name, kind, vulnerable)
				t.Run(name, func(t *testing.T) {
					svc, _ := tmpl.Build("matrix_svc", kind, vulnerable)
					analyzeAllModes(t, name, svc)
				})
			}
		}
	}
}

// TestAnalyzePrunedExhaustiveMatrixCorpora re-derives every service of
// generated corpora at the determinism seeds through the exhaustive
// reference and requires the corpus labels (derived pruned) to match,
// witnesses included.
func TestAnalyzePrunedExhaustiveMatrixCorpora(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle corpus matrix skipped in -short")
	}
	exh := compile.NewEngine(false)
	exh.SetOracleExhaustive(true)
	for _, seed := range diffSeeds {
		corpus, err := workload.Generate(workload.Config{Services: 40, TargetPrevalence: 0.35, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, cs := range corpus.Cases {
			want, err := exh.Analyze(cs.Service)
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, cs.Service.Name, err)
			}
			if !reflect.DeepEqual(cs.Truths, want) {
				t.Fatalf("seed %d: %s: corpus truth diverged from exhaustive:\npruned=%+v\nexhaustive=%+v",
					seed, cs.Service.Name, cs.Truths, want)
			}
		}
	}
}

// mustParseOne parses a single-service source.
func mustParseOne(t *testing.T, src string) *svclang.Service {
	t.Helper()
	svc, err := svclang.ParseOne(src)
	if err != nil {
		t.Fatalf("parse: %v\nsrc:\n%s", err, src)
	}
	return svc
}

// TestOracleCacheContentAddressed pins the cache contract: one
// derivation per distinct (body, mode), shared across engines and
// service names, with zero probes on a hit and deep-copied results.
func TestOracleCacheContentAddressed(t *testing.T) {
	body := "  param p0\n  sink sql concat(\"SELECT oraclecache_probe '\", p0, \"'\")\nend\n"
	svcA := mustParseOne(t, "service cache_a\n"+body)
	svcB := mustParseOne(t, "service cache_b\n"+body)

	engA := compile.NewEngine(false)
	h0, m0 := compile.OracleCacheTotals()
	first, err := engA.Analyze(svcA)
	if err != nil {
		t.Fatal(err)
	}
	h1, m1 := compile.OracleCacheTotals()
	if h1 != h0 || m1 != m0+1 {
		t.Fatalf("cold derivation: hits %d→%d misses %d→%d, want one miss", h0, h1, m0, m1)
	}

	// A renamed service through a different engine is a hit, and a hit
	// executes no probes at all.
	probes0 := svclang.OracleTotalsSnapshot().Probes
	engB := compile.NewEngine(false)
	second, err := engB.Analyze(svcB)
	if err != nil {
		t.Fatal(err)
	}
	h2, m2 := compile.OracleCacheTotals()
	if h2 != h1+1 || m2 != m1 {
		t.Fatalf("renamed service: hits %d→%d misses %d→%d, want one hit", h1, h2, m1, m2)
	}
	if d := svclang.OracleTotalsSnapshot().Probes - probes0; d != 0 {
		t.Fatalf("cache hit executed %d probes, want 0", d)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached truth diverged:\nfirst=%+v\nsecond=%+v", first, second)
	}

	// Callers get isolated copies: corrupting a returned witness must
	// not leak into later hits.
	if len(second) == 0 || !second[0].Vulnerable || second[0].Witness == nil {
		t.Fatalf("test service should have a vulnerable witnessed sink, got %+v", second)
	}
	second[0].Witness["p0"] = "corrupted"
	second[0].Sequence[0]["p0"] = "corrupted"
	third, err := engB.Analyze(svcB)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, third) {
		t.Fatalf("witness mutation leaked into the cache:\nfirst=%+v\nthird=%+v", first, third)
	}

	// The mode bits partition the cache: the exhaustive escape hatch and
	// the interpreter engine derive their own entries.
	for _, m := range analyzeModes()[1:] {
		eng := compile.NewEngine(m.interpret)
		eng.SetOracleExhaustive(m.exhaustive)
		_, mBefore := compile.OracleCacheTotals()
		got, err := eng.Analyze(svcA)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if _, mAfter := compile.OracleCacheTotals(); mAfter != mBefore+1 {
			t.Fatalf("%s: expected a distinct cache entry (misses %d→%d)", m.name, mBefore, mAfter)
		}
		if !reflect.DeepEqual(first, got) {
			t.Fatalf("%s: truth diverged from pruned VM:\n%+v\nvs\n%+v", m.name, first, got)
		}
	}
}
