package compile

// Structural-taint judgment over the VM's packed value representation,
// mirroring svclang.StructuralTaint character for character so the
// streaming oracle path never materialises a TString. Any drift from
// oracle.go's per-kind functions is a ground-truth bug;
// TestAnalyzeDifferentialTemplates locks the two implementations
// together over the whole template library.

import "github.com/dsn2015/vdbench/internal/svclang"

func structuralTaint(kind svclang.SinkKind, v value) bool {
	switch kind {
	case svclang.SinkSQL:
		return quotedStructuralTaint(v, true)
	case svclang.SinkXPath:
		return quotedStructuralTaint(v, false)
	case svclang.SinkHTML:
		return htmlStructuralTaint(v)
	case svclang.SinkCmd:
		return cmdStructuralTaint(v)
	case svclang.SinkPath:
		return pathStructuralTaint(v)
	default:
		return false
	}
}

// quotedStructuralTaint mirrors quotedLanguageStructuralTaint: tainted
// string delimiters, and tainted non-digit characters outside string
// literals, are structural.
func quotedStructuralTaint(v value, sqlEscapes bool) bool {
	i := 0
	n := len(v.chars)
	for i < n {
		r := v.chars[i]
		switch {
		case r == '\'' || (!sqlEscapes && r == '"'):
			quote := r
			if v.tainted(i) {
				return true // tainted string delimiter
			}
			i++
			for i < n {
				if v.chars[i] == quote {
					if sqlEscapes && i+1 < n && v.chars[i+1] == quote {
						i += 2 // escaped quote: content, stays inside
						continue
					}
					if v.tainted(i) {
						return true // tainted closing delimiter
					}
					i++
					break
				}
				i++ // string content: never structural
			}
		case r >= '0' && r <= '9':
			i++ // numeric data outside strings: not structural
		default:
			if v.tainted(i) {
				return true // tainted keyword/identifier/symbol character
			}
			i++
		}
	}
	return false
}

// htmlStructuralTaint: a tainted raw '<' opens markup.
func htmlStructuralTaint(v value) bool {
	for i, r := range v.chars {
		if r == '<' && v.tainted(i) {
			return true
		}
	}
	return false
}

// cmdStructuralTaint: tainted unescaped shell metacharacters or
// separators are structural; a backslash escapes the next character.
func cmdStructuralTaint(v value) bool {
	i := 0
	n := len(v.chars)
	for i < n {
		r := v.chars[i]
		if r == '\\' && i+1 < n {
			i += 2 // escaped character: not structural
			continue
		}
		if isShellStructural(r) && v.tainted(i) {
			return true
		}
		i++
	}
	return false
}

// isShellStructural covers the metacharacter set of the interpreter's
// cmdStructuralTaint (shellEscapeSet plus whitespace separators, minus
// the backslash handled above).
func isShellStructural(r rune) bool {
	switch r {
	case ' ', ';', '|', '&', '$', '`', '"', '\'', '(', ')', '<', '>', '*', '?', '~', '#', '\t', '\n':
		return true
	}
	return false
}

// pathStructuralTaint: tainted separators, or a tainted dot adjacent to
// another dot, navigate the filesystem.
func pathStructuralTaint(v value) bool {
	n := len(v.chars)
	for i := 0; i < n; i++ {
		r := v.chars[i]
		if (r == '/' || r == '\\') && v.tainted(i) {
			return true
		}
		if r == '.' && v.tainted(i) {
			prev := i > 0 && v.chars[i-1] == '.'
			next := i+1 < n && v.chars[i+1] == '.'
			if prev || next {
				return true
			}
		}
	}
	return false
}
