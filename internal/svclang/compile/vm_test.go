package compile

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/dsn2015/vdbench/internal/svclang"
)

// vmTestSrc mirrors the root benchmark service: validation reject, both
// branch arms, a loop, a sanitizer and a sink.
const vmTestSrc = `
service VMTest
  param id
  param mode
  var q
  if not matches(id, alnum)
    reject
  end
  if eq(mode, "alpha")
    q = concat("SELECT * FROM t WHERE a='", escape_sql(id), "'")
  else
    q = concat("SELECT * FROM t WHERE a='", id, "'")
  end
  repeat 3
    q = concat(q, numeric(id))
  end
  sink sql q
end
`

const vmStoreSrc = `
service VMStore
  param v
  store "k" trim(v)
  sink sql concat("x='", load("k"), "'")
end
`

func mustParse(t testing.TB, src string) *svclang.Service {
	t.Helper()
	svc, err := svclang.ParseOne(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return svc
}

func sameResult(t *testing.T, ctx string, ref, got svclang.Result) {
	t.Helper()
	if ref.Rejected != got.Rejected || len(ref.Events) != len(got.Events) {
		t.Fatalf("%s: shape: interpreter=%+v vm=%+v", ctx, ref, got)
	}
	for i := range ref.Events {
		re, ge := ref.Events[i], got.Events[i]
		if re.SinkID != ge.SinkID || re.Kind != ge.Kind || re.Silent != ge.Silent ||
			re.Value.String() != ge.Value.String() {
			t.Fatalf("%s: event %d: interpreter=%+v vm=%+v", ctx, i, re, ge)
		}
		for j := 0; j < re.Value.Len(); j++ {
			if re.Value.TaintedAt(j) != ge.Value.TaintedAt(j) {
				t.Fatalf("%s: event %d taint at %d differs", ctx, i, j)
			}
		}
	}
}

// poisonArena fills every piece of arena scratch with garbage that would
// be visible in results if any reset were missing: all-ones taint bits,
// junk runes, junk values on every slot and a fully "set" arena store.
func poisonArena(a *arena) {
	const slots = 512
	a.runes = make([]rune, slots)
	a.bits = make([]uint64, (slots+63)/64)
	for i := range a.runes {
		a.runes[i] = 'Z'
	}
	for i := range a.bits {
		a.bits[i] = ^uint64(0)
	}
	a.used = slots
	junk := value{chars: a.runes[:8], bits: a.bits, off: 0}
	a.stack = append(a.stack[:0], junk, junk, junk)
	a.vars = []value{junk, junk, junk, junk}
	a.loops = append(a.loops[:0], 9, 9)
	a.storeVals = []value{junk, junk}
	a.storeSet = []bool{true, true}
}

// TestPoisonedArenaReuse is the pooled-scratch-zeroing guarantee: an
// arena returned to the pool full of garbage (stale taint bits, stale
// store slots, junk runes) must not leak anything into the next request.
func TestPoisonedArenaReuse(t *testing.T) {
	eng := NewEngine(false)
	for _, src := range []string{vmTestSrc, vmStoreSrc} {
		svc := mustParse(t, src)
		reqs := []svclang.Request{
			{"id": "abc123", "mode": "alpha", "v": " sp ace "},
			{"id": "a'b", "mode": "other", "v": "x' OR '1'='1"},
			{"id": "", "mode": "", "v": ""},
		}
		for i, req := range reqs {
			// Poison the pooled arena before every execution; Get on the
			// same goroutine returns the poisoned arena preferentially.
			a := new(arena)
			poisonArena(a)
			eng.pool.Put(a)
			ref, err := svclang.Execute(svc, req)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.Execute(svc, req)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, fmt.Sprintf("%s req %d", svc.Name, i), ref, got)
		}
	}
}

// TestArenaBeginZeroes checks the reset invariant directly: after begin,
// no taint bit survives and the arena store is empty.
func TestArenaBeginZeroes(t *testing.T) {
	svc := mustParse(t, vmStoreSrc)
	p, err := Compile(svc)
	if err != nil {
		t.Fatal(err)
	}
	a := new(arena)
	poisonArena(a)
	a.begin(p)
	for i, w := range a.bits {
		if w != 0 {
			t.Fatalf("bits[%d] = %x after begin", i, w)
		}
	}
	if a.used != 0 {
		t.Fatalf("used = %d after begin", a.used)
	}
	for i, set := range a.storeSet {
		if set {
			t.Fatalf("storeSet[%d] still true after begin", i)
		}
	}
}

// TestCompileErrorsMatchInterpreter: compilation must fail with exactly
// the interpreter's validation errors, so the engine seam is error-
// transparent too.
func TestCompileErrorsMatchInterpreter(t *testing.T) {
	if _, err := Compile(nil); err == nil || err.Error() != "svclang: nil service" {
		t.Fatalf("Compile(nil) = %v", err)
	}
	eng := NewEngine(false)
	if _, err := eng.Execute(nil, svclang.Request{}); err == nil || err.Error() != "svclang: nil service" {
		t.Fatalf("Execute(nil) = %v", err)
	}
	bad := &svclang.Service{Name: "Bad", Body: []svclang.Stmt{
		svclang.Assign{Name: "nope", Expr: svclang.Lit{Value: "x"}},
	}}
	_, refErr := svclang.Execute(bad, svclang.Request{})
	_, gotErr := eng.Execute(bad, svclang.Request{})
	if refErr == nil || gotErr == nil || refErr.Error() != gotErr.Error() {
		t.Fatalf("validation error mismatch: interpreter=%v vm=%v", refErr, gotErr)
	}
}

// TestInvalidUTF8Needle pins the byte-level fallback for Contains/Eq
// needles that are not valid UTF-8 (reachable only through hand-built
// ASTs and fuzzing, but the semantics must still match: the interpreter
// compares raw bytes, where U+FFFD normalisation of the needle would
// change the answer).
func TestInvalidUTF8Needle(t *testing.T) {
	eng := NewEngine(false)
	for _, needle := range []string{"\xff", "a\xffb", "\xf0\x28"} {
		svc := &svclang.Service{
			Name:   "NB",
			Params: []string{"p"},
			Body: []svclang.Stmt{
				svclang.If{
					Cond: svclang.Contains{Expr: svclang.Ident{Name: "p"}, Needle: needle},
					Then: []svclang.Stmt{svclang.Sink{ID: 1, Kind: svclang.SinkSQL, Expr: svclang.Lit{Value: "hit"}}},
					Else: []svclang.Stmt{svclang.Sink{ID: 1, Kind: svclang.SinkSQL, Expr: svclang.Lit{Value: "miss"}}},
				},
				svclang.If{
					Cond: svclang.Eq{Expr: svclang.Ident{Name: "p"}, Value: needle},
					Then: []svclang.Stmt{svclang.Sink{ID: 2, Kind: svclang.SinkSQL, Expr: svclang.Lit{Value: "eq"}}},
					Else: []svclang.Stmt{svclang.Sink{ID: 2, Kind: svclang.SinkSQL, Expr: svclang.Lit{Value: "ne"}}},
				},
			},
		}
		for _, param := range []string{"", "\xff", needle, "�", "a�b", "abc"} {
			req := svclang.Request{"p": param}
			ref, refErr := svclang.Execute(svc, req)
			got, gotErr := eng.Execute(svc, req)
			if (refErr == nil) != (gotErr == nil) {
				t.Fatalf("needle %q param %q: errors %v vs %v", needle, param, refErr, gotErr)
			}
			if refErr == nil && !reflect.DeepEqual(resultShape(ref), resultShape(got)) {
				t.Fatalf("needle %q param %q: %v vs %v", needle, param, resultShape(ref), resultShape(got))
			}
		}
	}
}

func resultShape(r svclang.Result) []string {
	var out []string
	for _, ev := range r.Events {
		out = append(out, fmt.Sprintf("%d:%s", ev.SinkID, ev.Value.String()))
	}
	return out
}

// Allocation budgets for the compiled hot path. The VM's only escaping
// allocations are the events slice and the two slices behind each
// materialised event TString; everything else lives in the pooled arena.
// vmTestSrc records one event → 1 + 2 = 3 allocations. The >10% headroom
// rule from the issue, applied to integer budgets this small, means any
// regression of even one allocation fails.
const (
	allocBudgetExecute = 3
)

// TestAllocBudgetExecute locks the single-case compiled hot path to its
// post-PR allocation budget so the win cannot silently erode.
func TestAllocBudgetExecute(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	eng := NewEngine(false)
	svc := mustParse(t, vmTestSrc)
	req := svclang.Request{"id": "abc123", "mode": "alpha"}
	// Warm: compile the program and grow the pooled arena to steady state.
	if _, err := eng.Execute(svc, req); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(200, func() {
		if _, err := eng.Execute(svc, req); err != nil {
			t.Fatal(err)
		}
	})
	budget := float64(allocBudgetExecute) * 1.10
	if got > budget {
		t.Fatalf("compiled execute allocates %.1f/op, budget %d (+10%% = %.1f)", got, allocBudgetExecute, budget)
	}
	t.Logf("compiled execute: %.1f allocs/op (budget %d)", got, allocBudgetExecute)
}

// TestProgramCacheSingleflight: one compilation per service no matter how
// many executions, with hit/miss telemetry.
func TestProgramCacheSingleflight(t *testing.T) {
	eng := NewEngine(false)
	svc := mustParse(t, vmTestSrc)
	req := svclang.Request{"id": "abc123", "mode": "alpha"}
	for i := 0; i < 10; i++ {
		if _, err := eng.Execute(svc, req); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := eng.Stats()
	if misses != 1 || hits != 9 {
		t.Fatalf("stats = %d hits, %d misses; want 9/1", hits, misses)
	}
}

// TestEventBoundCoversLoops: the static event bound must dominate the
// true event count (it sizes the single events allocation).
func TestEventBoundCoversLoops(t *testing.T) {
	svc := mustParse(t, vmTestSrc)
	p, err := Compile(svc)
	if err != nil {
		t.Fatal(err)
	}
	if p.eventBound < 1 {
		t.Fatalf("eventBound = %d", p.eventBound)
	}
	res, err := svclang.Execute(svc, svclang.Request{"id": "abc123", "mode": "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) > p.eventBound {
		t.Fatalf("bound %d < actual %d", p.eventBound, len(res.Events))
	}
}

// TestTrimViewSharing: trim must be view arithmetic, not a copy — the
// compiled counterpart of the interpreter's slicing trim.
func TestTrimViewSharing(t *testing.T) {
	a := new(arena)
	a.begin(&Program{zeroBits: []uint64{0}})
	v := a.fromString("  ab  ")
	w := trim(v)
	if string(w.chars) != "ab" || w.off != v.off+2 {
		t.Fatalf("trim = %q off %d", string(w.chars), w.off)
	}
	if &w.chars[0] != &v.chars[2] {
		t.Fatal("trim copied instead of sharing the backing slab")
	}
	if !w.tainted(0) || !w.tainted(1) {
		t.Fatal("trim lost taint")
	}
}

// TestConcatDeepNesting guards the compiler's static stack sizing against
// deeply nested expressions.
func TestConcatDeepNesting(t *testing.T) {
	expr := "id"
	for i := 0; i < 30; i++ {
		expr = fmt.Sprintf("concat(%s, \"x\", upper(id))", expr)
	}
	src := "\nservice Deep\n  param id\n  sink sql " + expr + "\nend\n"
	svc := mustParse(t, src)
	eng := NewEngine(false)
	req := svclang.Request{"id": "a'b"}
	ref, err := svclang.Execute(svc, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Execute(svc, req)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "deep concat", ref, got)
	if !strings.Contains(got.Events[0].Value.String(), "a'b") {
		t.Fatal("unexpected content")
	}
}
