//go:build race

package compile

// raceEnabled lets allocation-budget tests skip under the race detector,
// whose instrumentation changes allocation counts.
const raceEnabled = true
