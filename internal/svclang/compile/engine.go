package compile

import (
	"sync"
	"sync/atomic"

	"github.com/dsn2015/vdbench/internal/svclang"
)

// Engine is the execution seam the rest of the benchmark runs through: a
// compiled-program cache plus an arena pool, or — when constructed with
// interpret=true — a transparent pass-through to the reference
// tree-walking interpreter. One engine is shared by every tool in a
// campaign (the harness binds it like the cfg compile cache), so each
// service compiles exactly once no matter how many probes hit it.
type Engine struct {
	interpret        bool
	oracleExhaustive bool

	mu    sync.Mutex
	progs map[*svclang.Service]*progEntry

	pool sync.Pool

	hits   atomic.Uint64
	misses atomic.Uint64
}

// progEntry singleflights compilation per service, mirroring cfg.Cache:
// the first caller compiles under the entry's once while the engine map
// stays unlocked for other services.
type progEntry struct {
	once sync.Once
	prog *Program
	err  error
}

// NewEngine returns an execution engine. interpret=true bypasses the
// compiler entirely and delegates to svclang.ExecuteInSession — the
// escape hatch behind harness Options.Interpreter and the reference
// side of every differential test.
func NewEngine(interpret bool) *Engine {
	e := &Engine{interpret: interpret, progs: map[*svclang.Service]*progEntry{}}
	e.pool.New = func() any { return new(arena) }
	return e
}

// Interpreting reports whether this engine runs the reference interpreter.
func (e *Engine) Interpreting() bool { return e.interpret }

// SetOracleExhaustive switches Analyze to the unpruned reference
// search — the escape hatch behind the -oracle-exhaustive CLI flags,
// symmetric to the -interpreter engine escape hatch. The labels and
// witnesses are identical either way (the differential suite enforces
// it); the exhaustive mode exists so any doubt about the pruning can
// be settled by re-deriving the expensive way. Set before first use;
// the mode is part of the oracle cache key.
func (e *Engine) SetOracleExhaustive(v bool) { e.oracleExhaustive = v }

// OracleExhaustive reports whether Analyze runs the unpruned search.
func (e *Engine) OracleExhaustive() bool { return e.oracleExhaustive }

// Program returns the compiled program for svc, compiling on first use.
func (e *Engine) Program(svc *svclang.Service) (*Program, error) {
	e.mu.Lock()
	ent, ok := e.progs[svc]
	if !ok {
		ent = &progEntry{}
		e.progs[svc] = ent
	}
	e.mu.Unlock()
	if ok {
		e.hits.Add(1)
	} else {
		e.misses.Add(1)
	}
	ent.once.Do(func() {
		ent.prog, ent.err = Compile(svc)
	})
	return ent.prog, ent.err
}

// Stats returns the program-cache hit/miss counters.
func (e *Engine) Stats() (hits, misses uint64) {
	return e.hits.Load(), e.misses.Load()
}

// Execute runs the service on one request with a fresh session store,
// like svclang.Execute.
func (e *Engine) Execute(svc *svclang.Service, req svclang.Request) (svclang.Result, error) {
	return e.ExecuteInSession(svc, req, nil)
}

// ExecuteInSession runs the service against an existing session store
// (nil for a fresh one), like svclang.ExecuteInSession. Compilation
// errors are exactly the interpreter's validation errors — Compile
// front-loads the Validate call the interpreter repeats per request.
func (e *Engine) ExecuteInSession(svc *svclang.Service, req svclang.Request, store *svclang.SessionStore) (svclang.Result, error) {
	if e.interpret {
		return svclang.ExecuteInSession(svc, req, store)
	}
	p, err := e.Program(svc)
	if err != nil {
		return svclang.Result{}, err
	}
	a := e.pool.Get().(*arena)
	res := p.run(a, req, store, nil, nil)
	e.pool.Put(a)
	return res, nil
}

// ObserveFunc receives one sink event of an observed execution, in
// program order: the sink's ID and declared kind, whether the sink is
// silent, and the observed value's characters. The rune slice is a view
// into VM scratch memory that is valid only for the duration of the
// call — observers must derive what they need (a fingerprint, a copy)
// before returning, and must not retain or mutate the slice.
type ObserveFunc func(sinkID int, kind svclang.SinkKind, silent bool, chars []rune)

// Observe runs the service and streams every sink event to fn instead
// of materialising a Result — the allocation-free twin of
// ExecuteInSession for callers that only inspect sink values (the
// differential pentester). The event stream, the session-store effects
// and the returned rejection flag are exactly those of
// ExecuteInSession; only the value representation differs. Like the
// interpreter, a rejection does not retract the events streamed before
// it — callers that want HTTP-400 semantics discard on rejected=true.
func (e *Engine) Observe(svc *svclang.Service, req svclang.Request, store *svclang.SessionStore, fn ObserveFunc) (rejected bool, err error) {
	if e.interpret {
		res, err := svclang.ExecuteInSession(svc, req, store)
		if err != nil {
			return false, err
		}
		for _, ev := range res.Events {
			fn(ev.SinkID, ev.Kind, ev.Silent, ev.Value.Runes())
		}
		return res.Rejected, nil
	}
	p, err := e.Program(svc)
	if err != nil {
		return false, err
	}
	a := e.pool.Get().(*arena)
	res := p.run(a, req, store, fn, nil)
	e.pool.Put(a)
	return res.Rejected, nil
}

// probe is the ProbeFunc the streaming oracle path runs on: sink events
// are judged for structural taint directly on the arena's packed
// values, so deriving ground truth materialises nothing per probe.
func (e *Engine) probe(svc *svclang.Service, req svclang.Request, store *svclang.SessionStore, obs svclang.ProbeObserver) error {
	p, err := e.Program(svc)
	if err != nil {
		return err
	}
	a := e.pool.Get().(*arena)
	p.run(a, req, store, nil, obs)
	e.pool.Put(a)
	return nil
}

// Analyze derives ground truth for svc, like svclang.Analyze but with
// every probe executed through this engine — and, on the VM, judged
// through the streaming probe path instead of materialised Results.
// The search is influence-guided unless SetOracleExhaustive opted into
// the unpruned reference enumeration. Results are memoised in the
// process-wide content-addressed oracle cache (oraclecache.go), so
// identical service bodies are derived once per mode.
func (e *Engine) Analyze(svc *svclang.Service) ([]svclang.GroundTruth, error) {
	return oracleLookup(svc, e.interpret, e.oracleExhaustive, func() ([]svclang.GroundTruth, error) {
		probe := e.probe
		if e.interpret {
			probe = interpProbe
		}
		if e.oracleExhaustive {
			return svclang.AnalyzeProbingExhaustive(svc, probe)
		}
		return svclang.AnalyzeProbing(svc, probe)
	})
}

// interpProbe adapts the reference interpreter to the oracle's probe
// seam, judging events with the shared structural-taint table; running
// it through AnalyzeProbing is exactly svclang.Analyze.
func interpProbe(svc *svclang.Service, req svclang.Request, store *svclang.SessionStore, obs svclang.ProbeObserver) error {
	res, err := svclang.ExecuteInSession(svc, req, store)
	if err != nil {
		return err
	}
	for _, ev := range res.Events {
		obs(ev.SinkID, ev.Kind, svclang.StructuralTaint(ev.Kind, ev.Value))
	}
	return nil
}
