// Package compile lowers parsed svclang services to a compact flat
// bytecode and executes it on an allocation-frugal virtual machine. The
// package exists for one reason: the tree-walking interpreter in
// internal/svclang is the benchmark's hot path (every pentester probe and
// every oracle assignment is one execution), and its per-request costs —
// revalidation, an environment map, a fresh []rune/[]bool pair per
// literal and per builtin application — dominate campaign allocation
// profiles. The VM replaces all of that with a linear instruction stream
// over interned constants, slot-indexed variables and per-character taint
// kept as packed bitsets inside a sync.Pool-recycled arena.
//
// The VM is NOT a second implementation of the language semantics with
// its own opinions: it must reproduce ExecuteInSession exactly, including
// oracle-visible taint provenance, session-store effects and reject
// unwinding. The differential test suite (every workload template, every
// knob combination, fuzzed services) and the end-to-end experiment
// byte-identity pins enforce this; the interpreter stays available behind
// Engine's interpret flag (harness Options.Interpreter) as the reference
// escape hatch.
package compile

import (
	"fmt"
	"unicode/utf8"

	"github.com/dsn2015/vdbench/internal/svclang"
)

// opcode enumerates the VM's instruction set. Expressions compile to
// stack operations, conditions to a test that sets the VM's boolean flag
// followed by a conditional branch, and statements to a linear stream
// with pre-resolved jump targets. reject compiles to a jump past the end
// of the stream — the interpreter's "rejected" flag checked before every
// statement and loop iteration collapses to a single unconditional exit,
// which is equivalent because nothing observable happens after a reject.
type opcode uint8

const (
	// opConst pushes interned constant a (untainted).
	opConst opcode = iota + 1
	// opLoadVar pushes variable slot a.
	opLoadVar
	// opSetVar pops into variable slot a.
	opSetVar
	// opZeroVar resets variable slot a to the empty string (a VarDecl
	// executed mid-stream, matching the interpreter's re-zeroing).
	opZeroVar
	// opLoadStore pushes the session-store value of interned key a.
	opLoadStore
	// opSetStore pops into the session-store value of interned key a.
	opSetStore
	// opConcat pops a values and pushes their concatenation.
	opConcat
	// opBuiltin pops one value, applies single-argument builtin a
	// (svclang.Builtin), and pushes the result.
	opBuiltin
	// opSink pops a value and records a sink event for sink table entry a.
	opSink
	// opReject marks the request rejected and jumps past the end of the
	// stream.
	opReject
	// opJump jumps to b.
	opJump
	// opBrFalse jumps to b when the flag is false.
	opBrFalse
	// opTestMatch pops a value and sets the flag to "every character is in
	// character class a".
	opTestMatch
	// opTestContains pops a value and sets the flag to "contains interned
	// constant a".
	opTestContains
	// opTestEq pops a value and sets the flag to "equals interned
	// constant a".
	opTestEq
	// opTestBool sets the flag to a != 0 (a BoolLit condition).
	opTestBool
	// opNotFlag negates the flag.
	opNotFlag
	// opLoopInit pushes loop counter a onto the loop stack.
	opLoopInit
	// opLoopNext decrements the top loop counter; while it stays positive
	// execution jumps back to b, otherwise the counter is popped.
	opLoopNext
)

// instr is one bytecode instruction: an opcode with an operand (constant
// index, slot, count, builtin) and a jump target where applicable. Fixed
// shape keeps the stream a single flat slice.
type instr struct {
	op opcode
	a  int32
	b  int32
}

// sinkInfo is the per-sink metadata table referenced by opSink.
type sinkInfo struct {
	id     int
	kind   svclang.SinkKind
	silent bool
}

// Program is one compiled service: the instruction stream plus every
// table the VM needs, all immutable after Compile so one Program can
// serve concurrent executions.
type Program struct {
	service *svclang.Service
	params  []string // request lookup order; param i lives in slot i
	nSlots  int      // params + hoisted variables
	code    []instr
	consts  [][]rune // interned literals, Contains needles and Eq values
	// constRaw keeps each constant's original source bytes and constOK
	// whether those bytes are valid UTF-8. Contains/Eq compare rune-wise
	// only when the needle is valid (where rune equality and byte equality
	// of the encodings coincide); an invalid needle falls back to the
	// interpreter's exact byte-level comparison.
	constRaw []string
	constOK  []bool
	sinks    []sinkInfo
	// storeKeys interns the session-store keys; arena-local stores (fresh
	// store per request) are slot vectors over this table instead of maps.
	storeKeys []string
	// zeroBits is a shared all-zero taint bitset covering the longest
	// interned constant, so constants carry no per-value allocation.
	zeroBits []uint64
	// maxStack, maxLoops and eventBound are static worst cases used to
	// size arena scratch up front (no growth checks on the hot path).
	maxStack   int
	maxLoops   int
	eventBound int
}

// Service returns the service this program was compiled from.
func (p *Program) Service() *svclang.Service { return p.service }

// Compile lowers a validated service to bytecode. Validation happens
// once here instead of once per execution (the interpreter revalidates on
// every ExecuteInSession call); the returned Program assumes the service
// is not mutated afterwards, the same contract every other consumer of a
// parsed Service already relies on.
func Compile(svc *svclang.Service) (*Program, error) {
	if svc == nil {
		return nil, fmt.Errorf("svclang: nil service")
	}
	if err := svc.Validate(); err != nil {
		return nil, err
	}
	c := &compiler{
		prog:     &Program{service: svc, params: svc.Params},
		slots:    make(map[string]int, len(svc.Params)+4),
		constIdx: map[string]int{},
		storeIdx: map[string]int{},
	}
	for _, p := range svc.Params {
		c.slots[p] = len(c.slots)
	}
	// Hoist every declared variable to a slot, mirroring the
	// interpreter's hoisting pass: all variables exist (empty) from the
	// start of the request.
	c.hoist(svc.Body)
	c.prog.nSlots = len(c.slots)
	if err := c.stmts(svc.Body); err != nil {
		return nil, err
	}
	c.prog.eventBound = eventBound(svc.Body)
	words := (c.maxConst + 63) / 64
	if words == 0 {
		words = 1
	}
	c.prog.zeroBits = make([]uint64, words)
	return c.prog, nil
}

// compiler carries the emission state of one Compile call.
type compiler struct {
	prog     *Program
	slots    map[string]int
	constIdx map[string]int
	storeIdx map[string]int
	// depth tracks the operand stack level during linear emission. The
	// stack is empty between statements and branches never carry operands
	// across joins, so tracking along emission order is exact.
	depth    int
	loopNest int
	maxConst int // longest interned constant, for zeroBits sizing
}

func (c *compiler) hoist(list []svclang.Stmt) {
	for _, st := range list {
		switch v := st.(type) {
		case svclang.VarDecl:
			if _, ok := c.slots[v.Name]; !ok {
				c.slots[v.Name] = len(c.slots)
			}
		case svclang.If:
			c.hoist(v.Then)
			c.hoist(v.Else)
		case svclang.Repeat:
			c.hoist(v.Body)
		}
	}
}

func (c *compiler) emit(op opcode, a, b int32) int {
	c.prog.code = append(c.prog.code, instr{op: op, a: a, b: b})
	switch op {
	case opConst, opLoadVar, opLoadStore:
		c.push(1)
	case opSetVar, opSetStore, opSink, opTestMatch, opTestContains, opTestEq:
		c.depth--
	case opConcat:
		c.depth -= int(a) - 1
	}
	return len(c.prog.code) - 1
}

func (c *compiler) push(n int) {
	c.depth += n
	if c.depth > c.prog.maxStack {
		c.prog.maxStack = c.depth
	}
}

// patch resolves the jump target of the instruction at idx to the current
// end of the stream.
func (c *compiler) patch(idx int) {
	c.prog.code[idx].b = int32(len(c.prog.code))
}

func (c *compiler) intern(s string) int32 {
	if i, ok := c.constIdx[s]; ok {
		return int32(i)
	}
	i := len(c.prog.consts)
	c.constIdx[s] = i
	rs := []rune(s)
	c.prog.consts = append(c.prog.consts, rs)
	c.prog.constRaw = append(c.prog.constRaw, s)
	c.prog.constOK = append(c.prog.constOK, utf8.ValidString(s))
	if len(rs) > c.maxConst {
		c.maxConst = len(rs)
	}
	return int32(i)
}

func (c *compiler) storeKey(k string) int32 {
	if i, ok := c.storeIdx[k]; ok {
		return int32(i)
	}
	i := len(c.prog.storeKeys)
	c.storeIdx[k] = i
	c.prog.storeKeys = append(c.prog.storeKeys, k)
	return int32(i)
}

func (c *compiler) stmts(list []svclang.Stmt) error {
	for _, st := range list {
		if err := c.stmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) stmt(st svclang.Stmt) error {
	switch v := st.(type) {
	case svclang.VarDecl:
		c.emit(opZeroVar, int32(c.slots[v.Name]), 0)
	case svclang.Assign:
		if err := c.expr(v.Expr); err != nil {
			return err
		}
		c.emit(opSetVar, int32(c.slots[v.Name]), 0)
	case svclang.If:
		if err := c.cond(v.Cond); err != nil {
			return err
		}
		br := c.emit(opBrFalse, 0, 0)
		if err := c.stmts(v.Then); err != nil {
			return err
		}
		if len(v.Else) == 0 {
			c.patch(br)
			return nil
		}
		jmp := c.emit(opJump, 0, 0)
		c.patch(br)
		if err := c.stmts(v.Else); err != nil {
			return err
		}
		c.patch(jmp)
	case svclang.Repeat:
		c.emit(opLoopInit, int32(v.Count), 0)
		c.loopNest++
		if c.loopNest > c.prog.maxLoops {
			c.prog.maxLoops = c.loopNest
		}
		body := len(c.prog.code)
		if err := c.stmts(v.Body); err != nil {
			return err
		}
		c.loopNest--
		c.emit(opLoopNext, 0, int32(body))
	case svclang.Sink:
		if err := c.expr(v.Expr); err != nil {
			return err
		}
		idx := len(c.prog.sinks)
		c.prog.sinks = append(c.prog.sinks, sinkInfo{id: v.ID, kind: v.Kind, silent: v.Silent})
		c.emit(opSink, int32(idx), 0)
	case svclang.Reject:
		c.emit(opReject, 0, 0)
	case svclang.Store:
		if err := c.expr(v.Expr); err != nil {
			return err
		}
		c.emit(opSetStore, c.storeKey(v.Key), 0)
	default:
		return fmt.Errorf("svclang: unknown statement type %T", st)
	}
	return nil
}

func (c *compiler) expr(e svclang.Expr) error {
	switch v := e.(type) {
	case svclang.Lit:
		c.emit(opConst, c.intern(v.Value), 0)
	case svclang.Ident:
		c.emit(opLoadVar, int32(c.slots[v.Name]), 0)
	case svclang.LoadExpr:
		c.emit(opLoadStore, c.storeKey(v.Key), 0)
	case svclang.Call:
		for _, a := range v.Args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		if v.Fn == svclang.BuiltinConcat {
			c.emit(opConcat, int32(len(v.Args)), 0)
		} else {
			c.emit(opBuiltin, int32(v.Fn), 0)
		}
	default:
		return fmt.Errorf("svclang: unknown expression type %T", e)
	}
	return nil
}

func (c *compiler) cond(cd svclang.Cond) error {
	switch v := cd.(type) {
	case svclang.Match:
		if err := c.expr(v.Expr); err != nil {
			return err
		}
		c.emit(opTestMatch, int32(v.Class), 0)
	case svclang.Contains:
		if err := c.expr(v.Expr); err != nil {
			return err
		}
		c.emit(opTestContains, c.intern(v.Needle), 0)
	case svclang.Eq:
		if err := c.expr(v.Expr); err != nil {
			return err
		}
		c.emit(opTestEq, c.intern(v.Value), 0)
	case svclang.Not:
		if err := c.cond(v.Inner); err != nil {
			return err
		}
		c.emit(opNotFlag, 0, 0)
	case svclang.BoolLit:
		var a int32
		if v.Value {
			a = 1
		}
		c.emit(opTestBool, a, 0)
	default:
		return fmt.Errorf("svclang: unknown condition type %T", cd)
	}
	return nil
}

// eventBound computes the static worst-case number of sink events one
// execution can record (branches contribute their larger arm, loops
// multiply). The VM sizes the one escaping allocation — the events slice
// — exactly once from this bound.
func eventBound(list []svclang.Stmt) int {
	n := 0
	for _, st := range list {
		switch v := st.(type) {
		case svclang.Sink:
			n++
		case svclang.If:
			t, e := eventBound(v.Then), eventBound(v.Else)
			if t > e {
				n += t
			} else {
				n += e
			}
		case svclang.Repeat:
			n += v.Count * eventBound(v.Body)
		}
	}
	return n
}
