package svclang

// Structure fingerprints: a 64-bit FNV-1a digest of the token skeleton
// Structure would return, computed directly from a rune slice without
// allocating the skeleton (or even a string). The pentester compares
// thousands of observed sink values per service; folding the token
// stream into a fingerprint turns each comparison set from a slice of
// freshly allocated []string skeletons into a flat slice of uint64s.
//
// The contract, pinned by TestFingerprintMatchesStructure: for every
// kind and value, StructureFingerprint(kind, []rune(s)) equals the same
// FNV fold applied to Structure(kind, s). Two values therefore have
// equal fingerprints exactly when their skeletons are StructureEqual —
// up to 64-bit hash collisions, which at the scale of one comparison
// set (tens of skeletons) are negligible.

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// Token codes. Each token folds as a prefix-free byte sequence: a fixed
// tag byte, followed for symbol tokens by the rune (4 bytes) and for
// HTML tag names by the lowercased letters and a 0x00 terminator
// (letters are never 0x00, so the terminator is unambiguous).
const (
	fpTokSym    byte = 0x01 // single-symbol token, rune payload follows
	fpTokStr    byte = 0x02 // "str"
	fpTokErr    byte = 0x03 // "ERR"
	fpTokNum    byte = 0x04 // "n"
	fpTokWord   byte = 0x05 // "w"
	fpTokArg    byte = 0x06 // "a"
	fpTokInside byte = 0x07 // "inside"
	fpTokEscape byte = 0x08 // "escape"
	fpTokTag    byte = 0x09 // HTML tag name, letters + 0x00 follow
)

func fpByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

func fpRune(h uint64, r rune) uint64 {
	h = fpByte(h, byte(r))
	h = fpByte(h, byte(r>>8))
	h = fpByte(h, byte(r>>16))
	return fpByte(h, byte(r>>24))
}

// StructureFingerprint itself lives in judges.go: it shares the
// per-kind dispatch table with StructuralTaint and Structure. This file
// keeps the per-kind fingerprint folds the table references.

// fingerprintSkeleton folds an already-materialised Structure skeleton
// through the same encoding; the differential tests use it to pin
// StructureFingerprint to Structure token by token.
func fingerprintSkeleton(kind SinkKind, skel []string) uint64 {
	h := fpRune(fnvOffset64, rune(kind))
	for _, tok := range skel {
		switch {
		case kind == SinkHTML:
			h = fpByte(h, fpTokTag)
			for _, r := range tok {
				h = fpByte(h, byte(r))
			}
			h = fpByte(h, 0x00)
		case tok == "str":
			h = fpByte(h, fpTokStr)
		case tok == "ERR":
			h = fpByte(h, fpTokErr)
		case tok == "n":
			h = fpByte(h, fpTokNum)
		case tok == "w":
			h = fpByte(h, fpTokWord)
		case tok == "a":
			h = fpByte(h, fpTokArg)
		case tok == "inside":
			h = fpByte(h, fpTokInside)
		case tok == "escape":
			h = fpByte(h, fpTokEscape)
		default: // single-symbol token
			for _, r := range tok {
				h = fpByte(h, fpTokSym)
				h = fpRune(h, r)
			}
		}
	}
	return h
}

// quotedFingerprint mirrors quotedStructure's tokeniser loop exactly,
// folding token codes instead of appending strings.
func quotedFingerprint(h uint64, rs []rune, sqlEscapes bool) uint64 {
	i, n := 0, len(rs)
	for i < n {
		r := rs[i]
		switch {
		case r == ' ' || r == '\t' || r == '\n':
			i++
		case r == '\'' || (!sqlEscapes && r == '"'):
			quote := r
			i++
			closed := false
			for i < n {
				if rs[i] == quote {
					if sqlEscapes && i+1 < n && rs[i+1] == quote {
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				i++
			}
			if closed {
				h = fpByte(h, fpTokStr)
			} else {
				h = fpByte(h, fpTokErr)
			}
		case r >= '0' && r <= '9':
			for i < n && rs[i] >= '0' && rs[i] <= '9' {
				i++
			}
			h = fpByte(h, fpTokNum)
		case isWordRune(r):
			for i < n && isWordRune(rs[i]) {
				i++
			}
			h = fpByte(h, fpTokWord)
		default:
			h = fpByte(h, fpTokSym)
			h = fpRune(h, r)
			i++
		}
	}
	return h
}

// htmlFingerprint mirrors htmlStructure, folding each tag name
// lowercased (tag names are ASCII letters, so per-byte folding matches
// strings.ToLower of the collected name).
func htmlFingerprint(h uint64, rs []rune) uint64 {
	i, n := 0, len(rs)
	for i < n {
		if rs[i] != '<' {
			i++
			continue
		}
		j := i + 1
		if j < n && rs[j] == '/' {
			j++
		}
		start := j
		for j < n && (rs[j] >= 'a' && rs[j] <= 'z' || rs[j] >= 'A' && rs[j] <= 'Z') {
			j++
		}
		if j == start { // "<" followed by non-letter: text
			i++
			continue
		}
		nameEnd := j
		for j < n && rs[j] != '>' {
			j++
		}
		if j < n {
			h = fpByte(h, fpTokTag)
			for _, r := range rs[start:nameEnd] {
				if r >= 'A' && r <= 'Z' {
					r += 'a' - 'A'
				}
				h = fpByte(h, byte(r))
			}
			h = fpByte(h, 0x00)
			i = j + 1
		} else {
			i = n // unterminated tag: treated as text
		}
	}
	return h
}

// cmdFingerprint mirrors cmdStructure.
func cmdFingerprint(h uint64, rs []rune) uint64 {
	const metas = ";|&$`()<>*?~#"
	i, n := 0, len(rs)
	inWord := false
	flush := func() {
		if inWord {
			h = fpByte(h, fpTokArg)
			inWord = false
		}
	}
	for i < n {
		r := rs[i]
		switch {
		case r == '\\' && i+1 < n:
			inWord = true
			i += 2
		case r == '\'' || r == '"':
			quote := r
			i++
			closed := false
			for i < n {
				if rs[i] == quote {
					closed = true
					i++
					break
				}
				i++
			}
			if !closed {
				flush()
				return fpByte(h, fpTokErr)
			}
			inWord = true
		case r == ' ' || r == '\t':
			flush()
			i++
		case isCmdMeta(r):
			flush()
			h = fpByte(h, fpTokSym)
			h = fpRune(h, r)
			i++
		default:
			inWord = true
			i++
		}
	}
	flush()
	return h
}

func isCmdMeta(r rune) bool {
	switch r {
	case ';', '|', '&', '$', '`', '(', ')', '<', '>', '*', '?', '~', '#':
		return true
	}
	return false
}

// pathSeg is one resolved path segment: either a literal range of rs,
// or one of the two virtual pathBase segments (start < 0).
type pathSeg struct {
	start, end int
}

const (
	segSrv  = -1
	segData = -2
)

// pathInside replicates pathStructure's resolution without allocating:
// it simulates the segment stack with index ranges into rs, treating
// '\\' as '/' in place of the up-front ReplaceAll. Paths deeper than
// the fixed stack (pathological, never produced by the workload) fall
// back to the allocating implementation.
func pathInside(rs []rune) bool {
	var segs [64]pathSeg
	top := 0
	absolute := len(rs) > 0 && (rs[0] == '/' || rs[0] == '\\')
	if !absolute {
		segs[0] = pathSeg{segSrv, segSrv}
		segs[1] = pathSeg{segData, segData}
		top = 2
	}
	segStart := 0
	flush := func(end int) bool { // false → escaped, stop
		start := segStart
		segStart = end + 1
		n := end - start
		switch {
		case n == 0: // empty segment
		case n == 1 && rs[start] == '.': // "."
		case n == 2 && rs[start] == '.' && rs[start+1] == '.': // ".."
			if top > 0 {
				top--
			} else {
				return false
			}
		default:
			if top == len(segs) {
				top = -1 // overflow sentinel
				return false
			}
			segs[top] = pathSeg{start, end}
			top++
		}
		return true
	}
	for i, r := range rs {
		if r == '/' || r == '\\' {
			if !flush(i) {
				if top < 0 {
					return pathInsideSlow(rs)
				}
				return false
			}
		}
	}
	if !flush(len(rs)) {
		if top < 0 {
			return pathInsideSlow(rs)
		}
		return false
	}
	return top >= 2 && segIs(rs, segs[0], "srv") && segIs(rs, segs[1], "data")
}

func segIs(rs []rune, s pathSeg, lit string) bool {
	switch s.start {
	case segSrv:
		return lit == "srv"
	case segData:
		return lit == "data"
	}
	seg := rs[s.start:s.end]
	if len(seg) != len(lit) {
		return false
	}
	for i, r := range seg {
		if byte(r) != lit[i] || r > 0x7f {
			return false
		}
	}
	return true
}

// pathInsideSlow is the segment-stack overflow fallback.
func pathInsideSlow(rs []rune) bool {
	return pathStructure(string(rs))[0] == "inside"
}
