package cfg

import (
	"sync"
	"sync/atomic"

	"github.com/dsn2015/vdbench/internal/svclang"
)

// Cache memoises lowered control-flow graphs per (service, options) pair
// so a campaign builds each case's CFG once and shares it across every
// CFG-based tool instead of re-lowering per tool. Sharing is sound
// because Build is a pure function of its inputs and the resulting Graph
// is never mutated by analyses (the dataflow solver keeps all mutable
// state in its own fact maps), so one graph can serve concurrent readers.
//
// A nil *Cache is valid and simply falls through to Build, which lets
// tools carry an optional cache without nil checks at every build site.
type Cache struct {
	mu sync.Mutex
	m  map[cacheKey]*cacheEntry

	hits, misses atomic.Uint64
}

type cacheKey struct {
	svc  *svclang.Service
	opts Options
}

type cacheEntry struct {
	once  sync.Once
	graph *Graph
}

// NewCache returns an empty compile cache.
func NewCache() *Cache {
	return &Cache{m: map[cacheKey]*cacheEntry{}}
}

// Build returns the memoised graph for (svc, opts), lowering it on first
// use. Concurrent callers for the same key are collapsed onto a single
// Build (the losers block until the winner finishes), so the hit/miss
// counts are deterministic: misses is always the number of distinct keys
// seen, independent of scheduling.
func (c *Cache) Build(svc *svclang.Service, opts Options) *Graph {
	if c == nil {
		return Build(svc, opts)
	}
	key := cacheKey{svc: svc, opts: opts}
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &cacheEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	built := false
	e.once.Do(func() {
		e.graph = Build(svc, opts)
		built = true
	})
	if built {
		c.misses.Add(1)
		totalMisses.Add(1)
	} else {
		c.hits.Add(1)
		totalHits.Add(1)
	}
	return e.graph
}

// Stats returns this cache's lookup counts: hits served from memory and
// misses that lowered a graph.
func (c *Cache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Process-wide totals across every Cache instance, for telemetry
// (vdserved surfaces them as counters on /metrics).
var totalHits, totalMisses atomic.Uint64

// CacheTotals returns the process-wide compile-cache hit/miss totals
// accumulated by every Cache since process start. Both values are
// monotonically non-decreasing.
func CacheTotals() (hits, misses uint64) {
	return totalHits.Load(), totalMisses.Load()
}
