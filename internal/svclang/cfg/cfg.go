// Package cfg lowers svclang services into basic-block control-flow
// graphs. The graph is the substrate for fixpoint dataflow analyses (see
// internal/dataflow): structured control flow — branches, bounded loops,
// validate-and-reject idioms — becomes explicit blocks and edges, so an
// analysis only has to interpret straight-line instruction lists and join
// facts at merge points.
//
// The lowering preserves the observable semantics of the AST walker in
// internal/detectors at parity options, and additionally records, as
// synthetic Refine instructions, the branch conditions that are known to
// hold on each edge. A path-sensitive analysis can interpret those
// refinements (the AST walker cannot express them); a path-insensitive one
// simply ignores them.
package cfg

import "github.com/dsn2015/vdbench/internal/svclang"

// Gate classifies a Refine instruction by the control-flow construct that
// justifies it.
type Gate int

const (
	// GateValidator marks a join-point refinement after a one-armed
	// validate-and-reject branch: exactly one arm always rejects, so on the
	// surviving path the branch condition is known with the recorded
	// polarity. This is the classic narrowing the AST walker also performs.
	GateValidator Gate = iota + 1
	// GatePath marks a branch-edge refinement: the condition holds (or
	// fails) at the head of the then (or else) arm. Only a path-sensitive
	// analysis interprets these.
	GatePath
)

// String implements fmt.Stringer.
func (g Gate) String() string {
	switch g {
	case GateValidator:
		return "validator"
	case GatePath:
		return "path"
	default:
		return "gate(?)"
	}
}

// Refine is a synthetic instruction asserting that Cond evaluates to Holds
// when control reaches its position.
type Refine struct {
	Cond  svclang.Cond
	Holds bool
	Gate  Gate
}

// Instr is one element of a basic block: either a simple svclang statement
// (VarDecl, Assign, Store, Sink or Reject — never If or Repeat, which the
// lowering turns into edges) or a synthetic refinement. Exactly one field
// is set.
type Instr struct {
	Stmt   svclang.Stmt
	Refine *Refine
}

// Block is a basic block: a straight-line instruction list with a single
// entry and a successor set.
type Block struct {
	// ID indexes the block in Graph.Blocks.
	ID int
	// Instrs is the straight-line instruction list.
	Instrs []Instr
	// Succs lists successor blocks in deterministic lowering order (then
	// before else, loop back edge before loop exit).
	Succs []*Block
}

// Options tune the lowering to match an analyser's capabilities.
type Options struct {
	// PruneConstantBranches lowers only the live arm of a constant
	// condition; the dead arm becomes an unreachable subgraph. Mirrors the
	// walker's PruneDeadBranches knob.
	PruneConstantBranches bool
	// SkipLoops lowers repeat bodies as unreachable subgraphs, making loop
	// sinks invisible. Mirrors the walker's !TrackLoops behaviour.
	SkipLoops bool
}

// Graph is the control-flow graph of one service. Blocks[0] is the entry;
// blocks not reachable from it model code the analyser treats as dead
// (pruned branches, skipped loops, statements after a reject).
type Graph struct {
	// Service is the lowered service.
	Service *svclang.Service
	// Blocks lists every block, indexed by ID.
	Blocks []*Block
	// SinkBlock maps each sink ID to the ID of the block holding it —
	// per-sink provenance for tests and diagnostics.
	SinkBlock map[int]int
}

// NumNodes, Entry and Succs make *Graph satisfy the dataflow.Graph
// interface.

// NumNodes returns the number of blocks.
func (g *Graph) NumNodes() int { return len(g.Blocks) }

// Entry returns the entry block's ID (always 0).
func (g *Graph) Entry() int { return 0 }

// Succs returns the successor IDs of block n in lowering order.
func (g *Graph) Succs(n int) []int {
	out := make([]int, len(g.Blocks[n].Succs))
	for i, s := range g.Blocks[n].Succs {
		out[i] = s.ID
	}
	return out
}

// ReversePostorder returns the blocks reachable from the entry in reverse
// postorder of a depth-first walk that follows successors in lowering
// order. Iterating transfer functions in this order reaches loop fixpoints
// with the fewest re-visits.
func (g *Graph) ReversePostorder() []*Block {
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var walk func(b *Block)
	walk = func(b *Block) {
		seen[b.ID] = true
		for _, s := range b.Succs {
			if !seen[s.ID] {
				walk(s)
			}
		}
		post = append(post, b)
	}
	walk(g.Blocks[0])
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Build lowers a service into a control-flow graph under the given
// options. The lowering is total: every statement of the service appears
// in some block, though pruned branches, skipped loops and post-reject
// code end up in blocks unreachable from the entry.
func Build(svc *svclang.Service, opts Options) *Graph {
	b := &builder{
		g:    &Graph{Service: svc, SinkBlock: map[int]int{}},
		opts: opts,
	}
	b.cur = b.newBlock()
	b.lowerStmts(svc.Body)
	return b.g
}

type builder struct {
	g    *Graph
	opts Options
	cur  *Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{ID: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) link(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

func (b *builder) emit(in Instr) {
	if s, ok := in.Stmt.(svclang.Sink); ok {
		b.g.SinkBlock[s.ID] = b.cur.ID
	}
	b.cur.Instrs = append(b.cur.Instrs, in)
}

// lowerUnreachable lowers stmts into a fresh subgraph with no edge from
// the live flow, then restores the insertion point.
func (b *builder) lowerUnreachable(stmts []svclang.Stmt) {
	saved := b.cur
	b.cur = b.newBlock()
	b.lowerStmts(stmts)
	b.cur = saved
}

// lowerStmts lowers a statement list at the current insertion point. It
// returns true when every path through the list rejects, mirroring the
// walker's stmts(). After a rejecting statement the insertion point is an
// unreachable block, so the remaining statements — which the walker never
// analyses — lower into dead code automatically.
func (b *builder) lowerStmts(list []svclang.Stmt) bool {
	rejected := false
	for _, st := range list {
		if b.lowerStmt(st) {
			rejected = true
		}
	}
	return rejected
}

func (b *builder) lowerStmt(st svclang.Stmt) bool {
	switch v := st.(type) {
	case svclang.Reject:
		b.emit(Instr{Stmt: v})
		// No successors: the path dies here. Subsequent statements lower
		// into a fresh block that nothing links to.
		b.cur = b.newBlock()
		return true
	case svclang.If:
		return b.lowerIf(v)
	case svclang.Repeat:
		b.lowerRepeat(v)
		return false
	default:
		b.emit(Instr{Stmt: st})
		return false
	}
}

func (b *builder) lowerIf(v svclang.If) bool {
	if lit, ok := v.Cond.(svclang.BoolLit); ok && b.opts.PruneConstantBranches {
		live, dead := v.Then, v.Else
		if !lit.Value {
			live, dead = v.Else, v.Then
		}
		b.lowerUnreachable(dead)
		// The live arm continues in the current block chain, exactly as the
		// walker executes it inline.
		return b.lowerStmts(live)
	}
	pre := b.cur
	thenHead := b.newBlock()
	elseHead := b.newBlock()
	b.link(pre, thenHead)
	b.link(pre, elseHead)

	b.cur = thenHead
	b.emit(Instr{Refine: &Refine{Cond: v.Cond, Holds: true, Gate: GatePath}})
	thenRejects := b.lowerStmts(v.Then)
	thenExit := b.cur

	b.cur = elseHead
	b.emit(Instr{Refine: &Refine{Cond: v.Cond, Holds: false, Gate: GatePath}})
	elseRejects := b.lowerStmts(v.Else)
	elseExit := b.cur

	join := b.newBlock()
	switch {
	case thenRejects && elseRejects:
		// No surviving arm: the join is unreachable and the statement list
		// rejects as a whole.
		b.cur = join
		return true
	case thenRejects:
		b.link(elseExit, join)
		b.cur = join
		b.emit(Instr{Refine: &Refine{Cond: v.Cond, Holds: false, Gate: GateValidator}})
	case elseRejects:
		b.link(thenExit, join)
		b.cur = join
		b.emit(Instr{Refine: &Refine{Cond: v.Cond, Holds: true, Gate: GateValidator}})
	default:
		b.link(thenExit, join)
		b.link(elseExit, join)
		b.cur = join
	}
	return false
}

func (b *builder) lowerRepeat(v svclang.Repeat) {
	if b.opts.SkipLoops {
		b.lowerUnreachable(v.Body)
		return
	}
	if alwaysRejects(v.Body, b.opts.PruneConstantBranches) {
		// Every iteration path rejects. The walker runs one partial pass
		// and then conservatively continues after the loop with the state
		// it had when the rejecting statement was reached; lowerRejecting
		// reproduces that by edging the pre-reject block into the exit.
		after := b.newBlock()
		head := b.newBlock()
		b.link(b.cur, head)
		b.cur = head
		b.lowerRejectingBody(v.Body, after)
		b.cur = after
		return
	}
	head := b.newBlock()
	b.link(b.cur, head)
	b.cur = head
	b.lowerStmts(v.Body)
	after := b.newBlock()
	b.link(b.cur, head) // back edge: facts converge to the loop fixpoint
	b.link(b.cur, after)
	b.cur = after
}

// lowerRejectingBody lowers an always-rejecting loop body, routing the
// abstract state at the rejecting point to the loop exit. The rejecting
// point mirrors the walker: a plain reject carries the state after the
// statements before it (descending into pruned constant arms); a
// two-armed rejecting branch carries the state from before the branch.
func (b *builder) lowerRejectingBody(list []svclang.Stmt, after *Block) {
	for i, st := range list {
		switch v := st.(type) {
		case svclang.Reject:
			b.emit(Instr{Stmt: v})
			b.link(b.cur, after)
			b.lowerUnreachable(list[i+1:])
			return
		case svclang.If:
			if lit, ok := v.Cond.(svclang.BoolLit); ok && b.opts.PruneConstantBranches {
				live, dead := v.Then, v.Else
				if !lit.Value {
					live, dead = v.Else, v.Then
				}
				if alwaysRejects(live, true) {
					b.lowerUnreachable(dead)
					b.lowerRejectingBody(live, after)
					b.lowerUnreachable(list[i+1:])
					return
				}
			} else if alwaysRejects(v.Then, b.opts.PruneConstantBranches) &&
				alwaysRejects(v.Else, b.opts.PruneConstantBranches) {
				pre := b.cur
				b.lowerStmt(st)
				b.link(pre, after)
				b.lowerUnreachable(list[i+1:])
				return
			}
		}
		if b.lowerStmt(st) {
			// Unreached: the rejecting statements are handled above.
			return
		}
	}
}

// alwaysRejects reports whether every path through the list ends in a
// reject, mirroring the walker's dynamic result under the given pruning
// mode. Repeat never counts: the walker treats a rejecting loop body as
// "conservatively continue".
func alwaysRejects(list []svclang.Stmt, prune bool) bool {
	for _, st := range list {
		switch v := st.(type) {
		case svclang.Reject:
			return true
		case svclang.If:
			if lit, ok := v.Cond.(svclang.BoolLit); ok && prune {
				live := v.Then
				if !lit.Value {
					live = v.Else
				}
				if alwaysRejects(live, prune) {
					return true
				}
				continue
			}
			if alwaysRejects(v.Then, prune) && alwaysRejects(v.Else, prune) {
				return true
			}
		}
	}
	return false
}
