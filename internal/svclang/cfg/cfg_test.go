package cfg_test

import (
	"testing"

	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/svclang/cfg"
)

func ident(name string) svclang.Ident { return svclang.Ident{Name: name} }

func sink(id int) svclang.Sink {
	return svclang.Sink{ID: id, Kind: svclang.SinkSQL, Expr: ident("x")}
}

// reachable returns the set of block IDs reachable from the entry.
func reachable(g *cfg.Graph) map[int]bool {
	seen := map[int]bool{}
	stack := []int{g.Entry()}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, g.Succs(n)...)
	}
	return seen
}

func TestStraightLineSingleBlock(t *testing.T) {
	svc := &svclang.Service{
		Name:   "straight",
		Params: []string{"x"},
		Body: []svclang.Stmt{
			svclang.Assign{Name: "y", Expr: ident("x")},
			sink(0),
		},
	}
	g := cfg.Build(svc, cfg.Options{})
	if g.NumNodes() != 1 {
		t.Fatalf("straight-line service lowered to %d blocks, want 1", g.NumNodes())
	}
	if got := g.SinkBlock[0]; got != 0 {
		t.Fatalf("sink 0 in block %d, want entry", got)
	}
	if len(g.Succs(0)) != 0 {
		t.Fatalf("exit block has successors %v", g.Succs(0))
	}
}

func TestBranchLoweringShape(t *testing.T) {
	svc := &svclang.Service{
		Name:   "branch",
		Params: []string{"x"},
		Body: []svclang.Stmt{
			svclang.If{
				Cond: svclang.Match{Expr: ident("x"), Class: svclang.ClassAlnum},
				Then: []svclang.Stmt{sink(0)},
				Else: []svclang.Stmt{sink(1)},
			},
			sink(2),
		},
	}
	g := cfg.Build(svc, cfg.Options{})
	entrySuccs := g.Succs(g.Entry())
	if len(entrySuccs) != 2 {
		t.Fatalf("branch head has %d successors, want 2", len(entrySuccs))
	}
	thenID, elseID := entrySuccs[0], entrySuccs[1]
	if g.SinkBlock[0] != thenID || g.SinkBlock[1] != elseID {
		t.Fatalf("sink provenance: got then=%d else=%d, SinkBlock=%v",
			thenID, elseID, g.SinkBlock)
	}
	// Both arms open with a GatePath refinement of opposite polarity.
	thenRef := g.Blocks[thenID].Instrs[0].Refine
	elseRef := g.Blocks[elseID].Instrs[0].Refine
	if thenRef == nil || elseRef == nil {
		t.Fatal("branch arms missing edge refinements")
	}
	if thenRef.Gate != cfg.GatePath || !thenRef.Holds || elseRef.Gate != cfg.GatePath || elseRef.Holds {
		t.Fatalf("refinement polarity wrong: then=%+v else=%+v", thenRef, elseRef)
	}
	// Both arms converge on the join block holding sink 2.
	join := g.SinkBlock[2]
	if got := g.Succs(thenID); len(got) != 1 || got[0] != join {
		t.Fatalf("then arm succs = %v, want [%d]", got, join)
	}
	if got := g.Succs(elseID); len(got) != 1 || got[0] != join {
		t.Fatalf("else arm succs = %v, want [%d]", got, join)
	}
}

func TestValidateAndRejectRefinesJoin(t *testing.T) {
	svc := &svclang.Service{
		Name:   "validate",
		Params: []string{"x"},
		Body: []svclang.Stmt{
			svclang.If{
				Cond: svclang.Not{Inner: svclang.Match{Expr: ident("x"), Class: svclang.ClassAlnum}},
				Then: []svclang.Stmt{svclang.Reject{}},
			},
			sink(0),
		},
	}
	g := cfg.Build(svc, cfg.Options{})
	join := g.Blocks[g.SinkBlock[0]]
	ref := join.Instrs[0].Refine
	if ref == nil || ref.Gate != cfg.GateValidator {
		t.Fatalf("join block lacks validator refinement: %+v", join.Instrs[0])
	}
	// The then-arm rejected, so the surviving polarity is "condition false".
	if ref.Holds {
		t.Fatal("validator refinement polarity: want Holds=false (else survives)")
	}
	// The rejecting arm must not reach the join.
	seen := reachable(g)
	if !seen[join.ID] {
		t.Fatal("join unreachable")
	}
	for id := range seen {
		for _, in := range g.Blocks[id].Instrs {
			if _, ok := in.Stmt.(svclang.Reject); ok {
				if len(g.Succs(id)) != 0 {
					t.Fatalf("reject block %d has successors %v", id, g.Succs(id))
				}
			}
		}
	}
}

func TestPostRejectCodeUnreachable(t *testing.T) {
	svc := &svclang.Service{
		Name:   "dead",
		Params: []string{"x"},
		Body: []svclang.Stmt{
			svclang.Reject{},
			sink(0),
		},
	}
	g := cfg.Build(svc, cfg.Options{})
	blk, ok := g.SinkBlock[0]
	if !ok {
		t.Fatal("lowering dropped the post-reject sink; it must stay total")
	}
	if reachable(g)[blk] {
		t.Fatal("post-reject sink reachable from entry")
	}
}

func TestConstantBranchPruning(t *testing.T) {
	svc := &svclang.Service{
		Name:   "constif",
		Params: []string{"x"},
		Body: []svclang.Stmt{
			svclang.If{
				Cond: svclang.BoolLit{Value: false},
				Then: []svclang.Stmt{sink(0)},
				Else: []svclang.Stmt{sink(1)},
			},
		},
	}
	pruned := cfg.Build(svc, cfg.Options{PruneConstantBranches: true})
	seen := reachable(pruned)
	if seen[pruned.SinkBlock[0]] {
		t.Fatal("pruned dead arm still reachable")
	}
	if !seen[pruned.SinkBlock[1]] {
		t.Fatal("live arm of pruned constant branch unreachable")
	}
	// Without pruning, both arms are ordinary branch targets.
	plain := cfg.Build(svc, cfg.Options{})
	seen = reachable(plain)
	if !seen[plain.SinkBlock[0]] || !seen[plain.SinkBlock[1]] {
		t.Fatal("unpruned constant branch lost an arm")
	}
}

func TestLoopLowering(t *testing.T) {
	svc := &svclang.Service{
		Name:   "loop",
		Params: []string{"x"},
		Body: []svclang.Stmt{
			svclang.Repeat{Count: 3, Body: []svclang.Stmt{
				svclang.Assign{Name: "y", Expr: ident("x")},
				sink(0),
			}},
			sink(1),
		},
	}
	g := cfg.Build(svc, cfg.Options{})
	body := g.SinkBlock[0]
	succs := g.Succs(body)
	if len(succs) != 2 {
		t.Fatalf("loop body exit has %d successors, want back edge + exit", len(succs))
	}
	// Back edge first (lowering order), exit second.
	if succs[0] != body {
		t.Fatalf("first successor %d is not the back edge to %d", succs[0], body)
	}
	if succs[1] != g.SinkBlock[1] {
		t.Fatalf("loop exit %d does not hold sink 1 (block %d)", succs[1], g.SinkBlock[1])
	}

	skipped := cfg.Build(svc, cfg.Options{SkipLoops: true})
	seen := reachable(skipped)
	if seen[skipped.SinkBlock[0]] {
		t.Fatal("skipped loop body reachable")
	}
	if !seen[skipped.SinkBlock[1]] {
		t.Fatal("code after skipped loop unreachable")
	}
}

func TestRejectingLoopBodyRoutesToExit(t *testing.T) {
	svc := &svclang.Service{
		Name:   "rejectloop",
		Params: []string{"x"},
		Body: []svclang.Stmt{
			svclang.Repeat{Count: 2, Body: []svclang.Stmt{
				svclang.Assign{Name: "y", Expr: ident("x")},
				svclang.Reject{},
				sink(0),
			}},
			sink(1),
		},
	}
	g := cfg.Build(svc, cfg.Options{})
	seen := reachable(g)
	if seen[g.SinkBlock[0]] {
		t.Fatal("post-reject loop sink reachable")
	}
	if !seen[g.SinkBlock[1]] {
		t.Fatal("loop exit unreachable: rejecting body must still flow to the exit")
	}
}

func TestReversePostorderStartsAtEntry(t *testing.T) {
	svc := &svclang.Service{
		Name:   "rpo",
		Params: []string{"x"},
		Body: []svclang.Stmt{
			svclang.If{
				Cond: svclang.Match{Expr: ident("x"), Class: svclang.ClassAlnum},
				Then: []svclang.Stmt{sink(0)},
				Else: []svclang.Stmt{sink(1)},
			},
			svclang.Repeat{Count: 2, Body: []svclang.Stmt{sink(2)}},
		},
	}
	g := cfg.Build(svc, cfg.Options{})
	order := g.ReversePostorder()
	if order[0].ID != g.Entry() {
		t.Fatalf("RPO starts at block %d, want entry", order[0].ID)
	}
	pos := map[int]int{}
	for i, b := range order {
		pos[b.ID] = i
	}
	// Every reachable block appears exactly once, and every forward edge
	// (excluding the loop back edge) goes later in the order.
	seen := reachable(g)
	for id := range seen {
		if _, ok := pos[id]; !ok {
			t.Fatalf("reachable block %d missing from RPO", id)
		}
	}
	if len(order) != len(seen) {
		t.Fatalf("RPO has %d blocks, %d reachable", len(order), len(seen))
	}
	for _, b := range order {
		for _, s := range b.Succs {
			if s.ID != b.ID && pos[s.ID] < pos[b.ID] && !isBackEdge(b, s) {
				t.Fatalf("forward edge %d->%d goes backwards in RPO", b.ID, s.ID)
			}
		}
	}
}

// isBackEdge approximates back-edge detection for the test graph: an edge
// to a block that can reach its source again.
func isBackEdge(from, to *cfg.Block) bool {
	seen := map[int]bool{}
	stack := []*cfg.Block{to}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b.ID == from.ID {
			return true
		}
		if seen[b.ID] {
			continue
		}
		seen[b.ID] = true
		stack = append(stack, b.Succs...)
	}
	return false
}
