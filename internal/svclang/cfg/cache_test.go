package cfg_test

import (
	"sync"
	"testing"

	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/svclang/cfg"
)

func cacheTestService(t *testing.T) *svclang.Service {
	t.Helper()
	svc, err := svclang.ParseOne(`
service CacheFixture
  param id
  var q
  if matches(id, alnum)
    q = concat("SELECT ", id)
  end
  sink sql q
end
`)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestCacheSharesGraphPerKey(t *testing.T) {
	svc := cacheTestService(t)
	c := cfg.NewCache()
	opts := cfg.Options{PruneConstantBranches: true}
	g1 := c.Build(svc, opts)
	g2 := c.Build(svc, opts)
	if g1 != g2 {
		t.Fatal("same (service, options) built two graphs")
	}
	if g3 := c.Build(svc, cfg.Options{}); g3 == g1 {
		t.Fatal("different options shared a graph")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats = %d hits / %d misses, want 1/2", hits, misses)
	}
}

func TestCacheGraphMatchesDirectBuild(t *testing.T) {
	svc := cacheTestService(t)
	opts := cfg.Options{SkipLoops: true}
	cached := cfg.NewCache().Build(svc, opts)
	direct := cfg.Build(svc, opts)
	if len(cached.Blocks) != len(direct.Blocks) || cached.Service != direct.Service {
		t.Fatal("cached graph differs from a direct Build")
	}
}

func TestNilCacheFallsThrough(t *testing.T) {
	svc := cacheTestService(t)
	var c *cfg.Cache
	if g := c.Build(svc, cfg.Options{}); g == nil || len(g.Blocks) == 0 {
		t.Fatal("nil cache did not build")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatal("nil cache reported stats")
	}
}

// TestCacheConcurrentMissesAreCollapsed races many goroutines at one key:
// exactly one Build must happen (deterministic miss count) and everyone
// must observe the same graph pointer.
func TestCacheConcurrentMissesAreCollapsed(t *testing.T) {
	svc := cacheTestService(t)
	c := cfg.NewCache()
	const goroutines = 16
	graphs := make([]*cfg.Graph, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			graphs[i] = c.Build(svc, cfg.Options{})
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if graphs[i] != graphs[0] {
			t.Fatal("concurrent builders observed different graphs")
		}
	}
	hits, misses := c.Stats()
	if misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 (singleflight per key)", misses)
	}
	if hits != goroutines-1 {
		t.Fatalf("hits = %d, want %d", hits, goroutines-1)
	}
}

func TestCacheTotalsMonotone(t *testing.T) {
	h0, m0 := cfg.CacheTotals()
	c := cfg.NewCache()
	svc := cacheTestService(t)
	c.Build(svc, cfg.Options{})
	c.Build(svc, cfg.Options{})
	h1, m1 := cfg.CacheTotals()
	if h1 < h0+1 || m1 < m0+1 {
		t.Fatalf("totals did not advance: (%d,%d) -> (%d,%d)", h0, m0, h1, m1)
	}
}
