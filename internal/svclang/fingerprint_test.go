package svclang

import (
	"strings"
	"testing"

	"github.com/dsn2015/vdbench/internal/stats"
)

// fingerprintCases are inputs chosen to hit every tokeniser branch:
// quotes (closed, unterminated, SQL-escaped), numbers, words, symbols,
// HTML tags (closed, unterminated, slashed, non-letter '<'), command
// metacharacters and quote errors, and path resolution (relative,
// absolute, backslashes, dot and dot-dot segments, escapes through the
// virtual base, segments literally named like the base).
var fingerprintCases = []string{
	"",
	" ",
	"7",
	"alpha",
	"SELECT name FROM t WHERE id = '7'",
	"' OR '1'='1",
	"it''s fine",
	"unterminated '",
	"\"xpath\" and 'apos'",
	"<b>bold</b> text",
	"<script>alert(1)</script>",
	"< 5 and > 3",
	"<unterminated",
	"<IMG src=x>",
	"ls -la /tmp; rm -rf ~",
	"echo 'quoted arg' | wc",
	"back\\ slash",
	"broken 'quote",
	"a && b || c $(sub) `tick`",
	"file.txt",
	"../../etc/passwd",
	"..\\..\\windows",
	"/absolute/path",
	"/srv/data/ok",
	"/srv/data",
	"/srv/datax",
	"nested/dir/../file",
	"../data/file",
	"../../srv/data/back",
	"./.././..",
	"a/./b//c",
	strings.Repeat("d/", 80) + "deep", // overflows the fixed segment stack
	strings.Repeat("../", 5) + "up",
	"é世🙂� mixed",
	"tab\tand\nnewline",
}

// TestFingerprintMatchesStructure pins StructureFingerprint to
// Structure: the streaming digest of a rune slice must equal the fold
// of the materialised skeleton, for every kind, on branch-targeted and
// seeded random inputs. This is what lets the pentester compare
// fingerprints instead of skeletons.
func TestFingerprintMatchesStructure(t *testing.T) {
	check := func(t *testing.T, s string) {
		t.Helper()
		for _, kind := range AllSinkKinds() {
			got := StructureFingerprint(kind, []rune(s))
			want := fingerprintSkeleton(kind, Structure(kind, s))
			if got != want {
				t.Errorf("kind %v input %q: StructureFingerprint=%#x, skeleton fold=%#x (skeleton %v)",
					kind, s, got, want, Structure(kind, s))
			}
		}
	}
	for _, s := range fingerprintCases {
		check(t, s)
	}
	for _, v := range BenignValues() {
		check(t, v)
	}
	for _, kind := range AllSinkKinds() {
		for _, p := range AttackPayloads(kind) {
			check(t, p)
		}
	}
	const alphabet = "ab AB_09'\"<>&;|$`\\/.~#?*()\t\né�"
	runes := []rune(alphabet)
	rng := stats.NewRNG(99)
	for n := 0; n < 2000; n++ {
		rs := make([]rune, rng.Intn(30))
		for i := range rs {
			rs[i] = runes[rng.Intn(len(runes))]
		}
		check(t, string(rs))
	}
}

// TestFingerprintSeparatesSkeletons spot-checks the other direction on
// values whose skeletons differ: distinct skeletons get distinct
// fingerprints (guaranteed only up to hash collisions, so the cases are
// fixed, not random).
func TestFingerprintSeparatesSkeletons(t *testing.T) {
	pairs := [][2]string{
		{"7", "' OR '1'='1"},
		{"alpha", "unterminated '"},
		{"<b>x</b>", "plain text"},
		{"ls file", "ls; rm"},
		{"file.txt", "../../etc/passwd"},
	}
	for _, kind := range AllSinkKinds() {
		for _, pair := range pairs {
			a, b := Structure(kind, pair[0]), Structure(kind, pair[1])
			fa := StructureFingerprint(kind, []rune(pair[0]))
			fb := StructureFingerprint(kind, []rune(pair[1]))
			if StructureEqual(a, b) != (fa == fb) {
				t.Errorf("kind %v: %q vs %q: StructureEqual=%v but fingerprints %#x vs %#x",
					kind, pair[0], pair[1], StructureEqual(a, b), fa, fb)
			}
		}
	}
}

// FuzzStructureFingerprint extends the pin to fuzzed inputs.
func FuzzStructureFingerprint(f *testing.F) {
	for _, s := range fingerprintCases {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		rs := []rune(s) // normalises invalid UTF-8 exactly like TString construction
		for _, kind := range AllSinkKinds() {
			got := StructureFingerprint(kind, rs)
			want := fingerprintSkeleton(kind, Structure(kind, string(rs)))
			if got != want {
				t.Fatalf("kind %v input %q: StructureFingerprint=%#x, skeleton fold=%#x",
					kind, s, got, want)
			}
		}
	})
}
