// Package svclang defines a miniature web-service language used as the
// benchmark workload substrate. Services written in it take string
// parameters (attacker-controlled input), manipulate them with string
// operations, sanitizers and validators, and finally pass them to security
// sinks (SQL queries, XPath queries, HTML output, shell commands, file
// paths).
//
// The published benchmark campaigns behind the paper ran real detection
// tools against web services with seeded injection vulnerabilities. This
// package is the synthetic equivalent: small enough to analyse and execute
// exactly, rich enough that real static-analysis and penetration-testing
// mini-tools exhibit the same true-positive/false-positive trade-offs as
// their industrial counterparts.
//
// The package provides the AST (this file), a lexer/parser and printer for
// a textual form, a concrete interpreter with per-character taint tracking,
// and structure-deviation oracles that define ground truth for "is this
// sink exploitable".
package svclang

import "fmt"

// SinkKind identifies the class of security-sensitive operation a value
// flows into. Each kind has its own notion of "structure" that an attacker
// must not be able to alter, and its own set of adequate sanitizers.
type SinkKind int

// Sink kinds, mirroring the CWE classes most used in web-service
// benchmarks.
const (
	SinkSQL   SinkKind = iota + 1 // CWE-89: SQL injection
	SinkXPath                     // CWE-643: XPath injection
	SinkHTML                      // CWE-79: cross-site scripting
	SinkCmd                       // CWE-78: OS command injection
	SinkPath                      // CWE-22: path traversal
)

// AllSinkKinds lists every sink kind in declaration order.
func AllSinkKinds() []SinkKind {
	return []SinkKind{SinkSQL, SinkXPath, SinkHTML, SinkCmd, SinkPath}
}

// String implements fmt.Stringer.
func (k SinkKind) String() string {
	switch k {
	case SinkSQL:
		return "sql"
	case SinkXPath:
		return "xpath"
	case SinkHTML:
		return "html"
	case SinkCmd:
		return "cmd"
	case SinkPath:
		return "path"
	default:
		return fmt.Sprintf("SinkKind(%d)", int(k))
	}
}

// CWE returns the CWE identifier conventionally associated with the sink
// kind.
func (k SinkKind) CWE() string {
	switch k {
	case SinkSQL:
		return "CWE-89"
	case SinkXPath:
		return "CWE-643"
	case SinkHTML:
		return "CWE-79"
	case SinkCmd:
		return "CWE-78"
	case SinkPath:
		return "CWE-22"
	default:
		return "CWE-?"
	}
}

// SinkKindFromString parses the textual sink kind used in source files.
func SinkKindFromString(s string) (SinkKind, bool) {
	for _, k := range AllSinkKinds() {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// Service is one web-service operation: the unit of workload generation,
// analysis and testing.
type Service struct {
	// Name identifies the service within a corpus.
	Name string
	// Params lists the declared input parameters in declaration order.
	Params []string
	// Body is the statement sequence executed per request.
	Body []Stmt
}

// Stmt is a statement node. The concrete types are VarDecl, Assign, If,
// Repeat, Sink and Reject.
type Stmt interface {
	stmtNode()
}

// VarDecl declares a local string variable initialised to the empty
// string.
type VarDecl struct {
	Name string
}

// Assign assigns the value of an expression to a variable or parameter.
type Assign struct {
	Name string
	Expr Expr
}

// If branches on a condition. Else may be empty.
type If struct {
	Cond Cond
	Then []Stmt
	Else []Stmt
}

// Repeat executes its body a fixed number of times. Fixed bounds keep the
// language terminating by construction, which the exhaustive ground-truth
// oracle relies on.
type Repeat struct {
	Count int
	Body  []Stmt
}

// Sink passes a value to a security-sensitive operation.
type Sink struct {
	// ID is unique within the service and identifies the sink in tool
	// reports and ground-truth labels.
	ID int
	// Kind is the sink class.
	Kind SinkKind
	// Expr is the value flowing into the sink.
	Expr Expr
	// Silent marks sinks whose failures produce no observable response
	// difference (e.g. queries whose errors are swallowed). Error-based
	// dynamic tools cannot confirm injections on silent sinks.
	Silent bool
}

// Reject aborts the request (input validation failure). Execution of the
// request stops immediately.
type Reject struct{}

// Store persists a value under a key in the service's session store
// (database/session state shared across requests). Together with load()
// it models second-order flows: data stored by one request and used by a
// later one — the classic blind spot of stateless dynamic scanners.
type Store struct {
	Key  string
	Expr Expr
}

func (VarDecl) stmtNode() {}
func (Assign) stmtNode()  {}
func (If) stmtNode()      {}
func (Repeat) stmtNode()  {}
func (Sink) stmtNode()    {}
func (Reject) stmtNode()  {}
func (Store) stmtNode()   {}

// Expr is an expression node. The concrete types are Lit, Ident and Call.
type Expr interface {
	exprNode()
}

// Lit is a string literal.
type Lit struct {
	Value string
}

// Ident references a variable or parameter.
type Ident struct {
	Name string
}

// Builtin identifies a built-in string function.
type Builtin int

// Built-in functions. Concat joins values; the Escape* family are
// sink-specific sanitizers; Numeric is a universal sanitizer (strips
// everything but digits); Upper and Trim are taint-preserving transforms.
const (
	BuiltinConcat Builtin = iota + 1
	BuiltinEscapeSQL
	BuiltinEscapeXPath
	BuiltinEscapeHTML
	BuiltinEscapeShell
	BuiltinSanitizePath
	BuiltinNumeric
	BuiltinUpper
	BuiltinTrim
)

// String implements fmt.Stringer, yielding the source-level name.
func (b Builtin) String() string {
	switch b {
	case BuiltinConcat:
		return "concat"
	case BuiltinEscapeSQL:
		return "escape_sql"
	case BuiltinEscapeXPath:
		return "escape_xpath"
	case BuiltinEscapeHTML:
		return "escape_html"
	case BuiltinEscapeShell:
		return "escape_shell"
	case BuiltinSanitizePath:
		return "sanitize_path"
	case BuiltinNumeric:
		return "numeric"
	case BuiltinUpper:
		return "upper"
	case BuiltinTrim:
		return "trim"
	default:
		return fmt.Sprintf("Builtin(%d)", int(b))
	}
}

// BuiltinFromString parses a built-in function name.
func BuiltinFromString(s string) (Builtin, bool) {
	for b := BuiltinConcat; b <= BuiltinTrim; b++ {
		if b.String() == s {
			return b, true
		}
	}
	return 0, false
}

// Arity returns the number of arguments the builtin takes; -1 means
// variadic (at least one).
func (b Builtin) Arity() int {
	if b == BuiltinConcat {
		return -1
	}
	return 1
}

// Sanitizes reports whether the builtin is an adequate sanitizer for the
// *canonical context* of the given sink kind (single-quoted string splice
// for SQL and XPath, text node for HTML, argument word for commands,
// relative filename for paths). The matrix is verified against the
// structural-taint oracle by the test suite.
//
// Note the deliberate off-diagonal entries: encoding sanitizers that
// neutralise the quote character (escape_xpath, escape_html) accidentally
// protect quoted SQL splices too — a well-known real-world phenomenon.
// Static analysers that assume a diagonal matrix over-report exactly these
// cases, which is one of the false-positive mechanisms the benchmark
// exercises.
func (b Builtin) Sanitizes(k SinkKind) bool {
	switch b {
	case BuiltinNumeric:
		return true // digits are inert in every sink
	case BuiltinEscapeSQL:
		// Doubling ' works in SQL; in XPath 1.0 there is no in-string
		// escape, so the doubled quote still terminates the literal.
		return k == SinkSQL
	case BuiltinEscapeXPath:
		// Encodes both quote characters as entities: adequate for quoted
		// XPath, and incidentally for quoted SQL (the quote never appears).
		return k == SinkXPath || k == SinkSQL
	case BuiltinEscapeHTML:
		// htmlspecialchars with ENT_QUOTES: encodes < > & " '. Adequate
		// for HTML text, and incidentally for quoted SQL/XPath splices.
		return k == SinkHTML || k == SinkSQL || k == SinkXPath
	case BuiltinEscapeShell:
		// Backslash escaping means nothing to SQL/XPath/HTML parsers.
		return k == SinkCmd
	case BuiltinSanitizePath:
		return k == SinkPath
	default:
		return false
	}
}

// IsSanitizer reports whether the builtin sanitizes at least one sink
// kind.
func (b Builtin) IsSanitizer() bool {
	for _, k := range AllSinkKinds() {
		if b.Sanitizes(k) {
			return true
		}
	}
	return false
}

// Call applies a built-in function to arguments.
type Call struct {
	Fn   Builtin
	Args []Expr
}

// LoadExpr reads the session-store value for a key; missing keys read as
// the empty string.
type LoadExpr struct {
	Key string
}

func (Lit) exprNode()      {}
func (Ident) exprNode()    {}
func (Call) exprNode()     {}
func (LoadExpr) exprNode() {}

// Cond is a condition node. The concrete types are Match, Contains, Eq,
// Not and BoolLit.
type Cond interface {
	condNode()
}

// CharClass names a character class usable in Match conditions.
type CharClass int

// Character classes for input validation.
const (
	ClassDigits CharClass = iota + 1
	ClassAlpha
	ClassAlnum
)

// String implements fmt.Stringer.
func (c CharClass) String() string {
	switch c {
	case ClassDigits:
		return "digits"
	case ClassAlpha:
		return "alpha"
	case ClassAlnum:
		return "alnum"
	default:
		return fmt.Sprintf("CharClass(%d)", int(c))
	}
}

// CharClassFromString parses a character-class name.
func CharClassFromString(s string) (CharClass, bool) {
	for c := ClassDigits; c <= ClassAlnum; c++ {
		if c.String() == s {
			return c, true
		}
	}
	return 0, false
}

// MatchesClass reports whether every rune of s belongs to the class. The
// empty string matches every class (as common validation libraries do;
// services guard emptiness separately when they care).
func (c CharClass) MatchesClass(s string) bool {
	for _, r := range s {
		switch c {
		case ClassDigits:
			if r < '0' || r > '9' {
				return false
			}
		case ClassAlpha:
			if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z') {
				return false
			}
		case ClassAlnum:
			if !(r >= '0' && r <= '9' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z') {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Match tests a value against a character class.
type Match struct {
	Expr  Expr
	Class CharClass
}

// Contains tests whether the value of Expr contains the literal Needle.
type Contains struct {
	Expr   Expr
	Needle string
}

// Eq tests the value of Expr for equality with the literal Value.
type Eq struct {
	Expr  Expr
	Value string
}

// Not negates a condition.
type Not struct {
	Inner Cond
}

// BoolLit is a constant condition. Generators use constant-false guards to
// create statically unreachable sinks (a classic static-analysis false
// positive trap).
type BoolLit struct {
	Value bool
}

func (Match) condNode()    {}
func (Contains) condNode() {}
func (Eq) condNode()       {}
func (Not) condNode()      {}
func (BoolLit) condNode()  {}

// Sinks returns every sink statement in the service in source order,
// descending into branches and loops.
func (s *Service) Sinks() []Sink {
	var out []Sink
	var walk func(stmts []Stmt)
	walk = func(stmts []Stmt) {
		for _, st := range stmts {
			switch v := st.(type) {
			case Sink:
				out = append(out, v)
			case If:
				walk(v.Then)
				walk(v.Else)
			case Repeat:
				walk(v.Body)
			}
		}
	}
	walk(s.Body)
	return out
}

// UsesStore reports whether the service reads or writes the session store
// (i.e. has second-order data flows).
func (s *Service) UsesStore() bool {
	found := false
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		switch v := e.(type) {
		case LoadExpr:
			found = true
		case Call:
			for _, a := range v.Args {
				walkExpr(a)
			}
		}
	}
	var walkCond func(c Cond)
	walkCond = func(c Cond) {
		switch v := c.(type) {
		case Match:
			walkExpr(v.Expr)
		case Contains:
			walkExpr(v.Expr)
		case Eq:
			walkExpr(v.Expr)
		case Not:
			walkCond(v.Inner)
		}
	}
	var walk func(stmts []Stmt)
	walk = func(stmts []Stmt) {
		for _, st := range stmts {
			switch v := st.(type) {
			case Store:
				found = true
			case Assign:
				walkExpr(v.Expr)
			case Sink:
				walkExpr(v.Expr)
			case If:
				walkCond(v.Cond)
				walk(v.Then)
				walk(v.Else)
			case Repeat:
				walk(v.Body)
			}
		}
	}
	walk(s.Body)
	return found
}

// Validate checks structural well-formedness: declared-before-use names,
// unique parameter and sink IDs, sane repeat bounds, and known builtins
// with correct arity.
func (s *Service) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("svclang: service has no name")
	}
	declared := map[string]bool{}
	for _, p := range s.Params {
		if declared[p] {
			return fmt.Errorf("svclang: %s: duplicate parameter %q", s.Name, p)
		}
		declared[p] = true
	}
	sinkIDs := map[int]bool{}
	var checkExpr func(e Expr) error
	checkExpr = func(e Expr) error {
		switch v := e.(type) {
		case Lit:
			return nil
		case Ident:
			if !declared[v.Name] {
				return fmt.Errorf("svclang: %s: use of undeclared name %q", s.Name, v.Name)
			}
			return nil
		case LoadExpr:
			if v.Key == "" {
				return fmt.Errorf("svclang: %s: load with empty key", s.Name)
			}
			return nil
		case Call:
			if v.Fn.String() == fmt.Sprintf("Builtin(%d)", int(v.Fn)) {
				return fmt.Errorf("svclang: %s: unknown builtin %d", s.Name, int(v.Fn))
			}
			if want := v.Fn.Arity(); want >= 0 && len(v.Args) != want {
				return fmt.Errorf("svclang: %s: %s takes %d argument(s), got %d", s.Name, v.Fn, want, len(v.Args))
			}
			if v.Fn.Arity() == -1 && len(v.Args) == 0 {
				return fmt.Errorf("svclang: %s: %s needs at least one argument", s.Name, v.Fn)
			}
			for _, a := range v.Args {
				if err := checkExpr(a); err != nil {
					return err
				}
			}
			return nil
		case nil:
			return fmt.Errorf("svclang: %s: nil expression", s.Name)
		default:
			return fmt.Errorf("svclang: %s: unknown expression type %T", s.Name, e)
		}
	}
	var checkCond func(c Cond) error
	checkCond = func(c Cond) error {
		switch v := c.(type) {
		case Match:
			return checkExpr(v.Expr)
		case Contains:
			return checkExpr(v.Expr)
		case Eq:
			return checkExpr(v.Expr)
		case Not:
			return checkCond(v.Inner)
		case BoolLit:
			return nil
		case nil:
			return fmt.Errorf("svclang: %s: nil condition", s.Name)
		default:
			return fmt.Errorf("svclang: %s: unknown condition type %T", s.Name, c)
		}
	}
	var checkStmts func(stmts []Stmt) error
	checkStmts = func(stmts []Stmt) error {
		for _, st := range stmts {
			switch v := st.(type) {
			case VarDecl:
				if declared[v.Name] {
					return fmt.Errorf("svclang: %s: duplicate declaration %q", s.Name, v.Name)
				}
				declared[v.Name] = true
			case Assign:
				if !declared[v.Name] {
					return fmt.Errorf("svclang: %s: assignment to undeclared %q", s.Name, v.Name)
				}
				if err := checkExpr(v.Expr); err != nil {
					return err
				}
			case If:
				if err := checkCond(v.Cond); err != nil {
					return err
				}
				if err := checkStmts(v.Then); err != nil {
					return err
				}
				if err := checkStmts(v.Else); err != nil {
					return err
				}
			case Repeat:
				if v.Count < 1 || v.Count > 16 {
					return fmt.Errorf("svclang: %s: repeat count %d out of [1,16]", s.Name, v.Count)
				}
				if err := checkStmts(v.Body); err != nil {
					return err
				}
			case Sink:
				if sinkIDs[v.ID] {
					return fmt.Errorf("svclang: %s: duplicate sink ID %d", s.Name, v.ID)
				}
				sinkIDs[v.ID] = true
				if _, ok := SinkKindFromString(v.Kind.String()); !ok {
					return fmt.Errorf("svclang: %s: unknown sink kind %d", s.Name, int(v.Kind))
				}
				if err := checkExpr(v.Expr); err != nil {
					return err
				}
			case Reject:
				// always fine
			case Store:
				if v.Key == "" {
					return fmt.Errorf("svclang: %s: store with empty key", s.Name)
				}
				if err := checkExpr(v.Expr); err != nil {
					return err
				}
			case nil:
				return fmt.Errorf("svclang: %s: nil statement", s.Name)
			default:
				return fmt.Errorf("svclang: %s: unknown statement type %T", s.Name, st)
			}
		}
		return nil
	}
	return checkStmts(s.Body)
}
