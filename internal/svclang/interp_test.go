package svclang

import (
	"strings"
	"testing"
)

// mustParse parses one service or fails the test.
func mustParse(t *testing.T, src string) *Service {
	t.Helper()
	svc, err := ParseOne(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return svc
}

// mustExec executes or fails the test.
func mustExec(t *testing.T, svc *Service, req Request) Result {
	t.Helper()
	res, err := Execute(svc, req)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	return res
}

const vulnSQLSrc = `
service GetUser
  param id
  var q
  q = concat("SELECT * FROM users WHERE id='", id, "'")
  sink sql q
end
`

func TestExecuteBasicConcat(t *testing.T) {
	svc := mustParse(t, vulnSQLSrc)
	res := mustExec(t, svc, Request{"id": "42"})
	if len(res.Events) != 1 {
		t.Fatalf("events = %d", len(res.Events))
	}
	got := res.Events[0].Value.String()
	want := "SELECT * FROM users WHERE id='42'"
	if got != want {
		t.Fatalf("sink value = %q, want %q", got, want)
	}
}

func TestExecuteTaintPropagation(t *testing.T) {
	svc := mustParse(t, vulnSQLSrc)
	res := mustExec(t, svc, Request{"id": "42"})
	v := res.Events[0].Value
	s := v.String()
	idx := strings.Index(s, "42")
	for i := 0; i < v.Len(); i++ {
		inParam := i == idx || i == idx+1
		if v.TaintedAt(i) != inParam {
			t.Fatalf("taint at %d (%q) = %v, want %v", i, string(s[i]), v.TaintedAt(i), inParam)
		}
	}
}

func TestExecuteMissingParamDefaultsEmpty(t *testing.T) {
	svc := mustParse(t, vulnSQLSrc)
	res := mustExec(t, svc, nil)
	want := "SELECT * FROM users WHERE id=''"
	if got := res.Events[0].Value.String(); got != want {
		t.Fatalf("value = %q, want %q", got, want)
	}
}

func TestExecuteEscapeSQL(t *testing.T) {
	svc := mustParse(t, `
service Safe
  param id
  var q
  q = concat("X='", escape_sql(id), "'")
  sink sql q
end
`)
	res := mustExec(t, svc, Request{"id": "a'b"})
	if got := res.Events[0].Value.String(); got != "X='a''b'" {
		t.Fatalf("escaped value = %q", got)
	}
}

func TestExecuteNumeric(t *testing.T) {
	svc := mustParse(t, `
service Num
  param id
  sink sql numeric(id)
end
`)
	res := mustExec(t, svc, Request{"id": "a1b2-c3"})
	if got := res.Events[0].Value.String(); got != "123" {
		t.Fatalf("numeric = %q", got)
	}
	// Taint is preserved on surviving characters.
	if !res.Events[0].Value.AnyTainted() {
		t.Fatal("numeric cleared taint flags; it should only filter characters")
	}
}

func TestExecuteUpperTrim(t *testing.T) {
	svc := mustParse(t, `
service T
  param x
  sink html upper(trim(x))
end
`)
	res := mustExec(t, svc, Request{"x": "  ab c  "})
	if got := res.Events[0].Value.String(); got != "AB C" {
		t.Fatalf("upper(trim) = %q", got)
	}
}

func TestExecuteEscapeHTML(t *testing.T) {
	svc := mustParse(t, `
service H
  param x
  sink html escape_html(x)
end
`)
	res := mustExec(t, svc, Request{"x": `<b a="1">&'`})
	want := "&lt;b a=&quot;1&quot;&gt;&amp;&#39;"
	if got := res.Events[0].Value.String(); got != want {
		t.Fatalf("escape_html = %q, want %q", got, want)
	}
}

func TestExecuteEscapeShell(t *testing.T) {
	svc := mustParse(t, `
service C
  param f
  sink cmd concat("cat ", escape_shell(f))
end
`)
	res := mustExec(t, svc, Request{"f": "a;b c"})
	if got := res.Events[0].Value.String(); got != `cat a\;b\ c` {
		t.Fatalf("escape_shell = %q", got)
	}
}

func TestExecuteSanitizePath(t *testing.T) {
	svc := mustParse(t, `
service P
  param f
  sink path sanitize_path(f)
end
`)
	res := mustExec(t, svc, Request{"f": "../../etc/passwd"})
	if got := res.Events[0].Value.String(); got != "etcpasswd" {
		t.Fatalf("sanitize_path = %q", got)
	}
}

func TestExecuteRejectStopsExecution(t *testing.T) {
	svc := mustParse(t, `
service V
  param id
  if not matches(id, digits)
    reject
  end
  sink sql concat("Q='", id, "'")
end
`)
	res := mustExec(t, svc, Request{"id": "abc"})
	if !res.Rejected || len(res.Events) != 0 {
		t.Fatalf("expected rejection with no events: %+v", res)
	}
	res = mustExec(t, svc, Request{"id": "123"})
	if res.Rejected || len(res.Events) != 1 {
		t.Fatalf("digits should pass validation: %+v", res)
	}
}

func TestExecuteRejectInsideRepeat(t *testing.T) {
	svc := mustParse(t, `
service R
  param x
  repeat 3
    if eq(x, "stop")
      reject
    end
    sink html x
  end
end
`)
	res := mustExec(t, svc, Request{"x": "stop"})
	if !res.Rejected || len(res.Events) != 0 {
		t.Fatalf("reject inside repeat: %+v", res)
	}
	res = mustExec(t, svc, Request{"x": "go"})
	if len(res.Events) != 3 {
		t.Fatalf("repeat 3 produced %d events", len(res.Events))
	}
}

func TestExecuteBranches(t *testing.T) {
	svc := mustParse(t, `
service B
  param x
  var q
  if contains(x, "admin")
    q = concat("ROLE('", x, "')")
  else
    q = "ROLE('guest')"
  end
  sink sql q
end
`)
	res := mustExec(t, svc, Request{"x": "superadmin"})
	if got := res.Events[0].Value.String(); got != "ROLE('superadmin')" {
		t.Fatalf("then branch value = %q", got)
	}
	res = mustExec(t, svc, Request{"x": "user"})
	if got := res.Events[0].Value.String(); got != "ROLE('guest')" {
		t.Fatalf("else branch value = %q", got)
	}
	if res.Events[0].Value.AnyTainted() {
		t.Fatal("constant else-branch value should carry no taint")
	}
}

func TestExecuteRepeatAccumulates(t *testing.T) {
	svc := mustParse(t, `
service L
  param x
  var acc
  repeat 3
    acc = concat(acc, x)
  end
  sink html acc
end
`)
	res := mustExec(t, svc, Request{"x": "ab"})
	if got := res.Events[0].Value.String(); got != "ababab" {
		t.Fatalf("loop accumulation = %q", got)
	}
}

func TestExecuteEventsForAndSilent(t *testing.T) {
	svc := mustParse(t, `
service S
  param x
  sink sql silent concat("A'", x, "'")
  sink sql concat("B'", x, "'")
end
`)
	res := mustExec(t, svc, Request{"x": "1"})
	if len(res.Events) != 2 {
		t.Fatalf("events = %d", len(res.Events))
	}
	if !res.Events[0].Silent || res.Events[1].Silent {
		t.Fatalf("silent flags wrong: %+v", res.Events)
	}
	if got := res.EventsFor(1); len(got) != 1 || !strings.HasPrefix(got[0].Value.String(), "B") {
		t.Fatalf("EventsFor(1) = %+v", got)
	}
	if got := res.EventsFor(99); len(got) != 0 {
		t.Fatalf("EventsFor(99) = %+v", got)
	}
}

func TestExecuteNilService(t *testing.T) {
	if _, err := Execute(nil, nil); err == nil {
		t.Fatal("nil service accepted")
	}
}

func TestExecuteInvalidService(t *testing.T) {
	svc := &Service{Name: "Bad", Body: []Stmt{Assign{Name: "ghost", Expr: Lit{Value: "x"}}}}
	if _, err := Execute(svc, nil); err == nil {
		t.Fatal("invalid service accepted")
	}
}

func TestTStringBasics(t *testing.T) {
	clean := NewTString("ab")
	if clean.AnyTainted() {
		t.Fatal("literal should be untainted")
	}
	dirty := NewTaintedTString("ab")
	if !dirty.AnyTainted() || !dirty.TaintedAt(0) || !dirty.TaintedAt(1) {
		t.Fatal("parameter value should be fully tainted")
	}
	joined := concatT(clean, dirty)
	if joined.String() != "abab" || joined.TaintedAt(0) || !joined.TaintedAt(2) {
		t.Fatal("concat taint bookkeeping wrong")
	}
	if joined.Len() != 4 {
		t.Fatalf("Len = %d", joined.Len())
	}
}
