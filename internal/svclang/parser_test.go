package svclang

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseSimpleService(t *testing.T) {
	svc := mustParse(t, vulnSQLSrc)
	if svc.Name != "GetUser" {
		t.Fatalf("name = %q", svc.Name)
	}
	if len(svc.Params) != 1 || svc.Params[0] != "id" {
		t.Fatalf("params = %v", svc.Params)
	}
	sinks := svc.Sinks()
	if len(sinks) != 1 || sinks[0].Kind != SinkSQL || sinks[0].ID != 0 {
		t.Fatalf("sinks = %+v", sinks)
	}
}

func TestParseMultipleServices(t *testing.T) {
	src := vulnSQLSrc + "\n" + escapedSQLSrc
	services, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(services) != 2 {
		t.Fatalf("parsed %d services", len(services))
	}
	if services[1].Name != "SafeUser" {
		t.Fatalf("second service = %q", services[1].Name)
	}
}

func TestParseOneRejectsMultiple(t *testing.T) {
	if _, err := ParseOne(vulnSQLSrc + escapedSQLSrc); err == nil {
		t.Fatal("ParseOne accepted two services")
	}
}

func TestParseSinkIDsSequential(t *testing.T) {
	svc := mustParse(t, `
service Multi
  param a
  sink sql a
  if true
    sink html a
  end
  repeat 2
    sink cmd a
  end
end
`)
	sinks := svc.Sinks()
	if len(sinks) != 3 {
		t.Fatalf("sinks = %d", len(sinks))
	}
	for i, sk := range sinks {
		if sk.ID != i {
			t.Fatalf("sink %d has ID %d", i, sk.ID)
		}
	}
}

func TestParseComments(t *testing.T) {
	svc := mustParse(t, `
# corpus header comment
service C  # trailing comment
  param x  # the input
  sink html x
end
`)
	if svc.Name != "C" || len(svc.Sinks()) != 1 {
		t.Fatal("comments broke parsing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no end", "service X\n  param a\n"},
		{"param after stmt", "service X\n  var v\n  param a\nend\n"},
		{"unknown sink kind", "service X\n  param a\n  sink ldap a\nend\n"},
		{"unknown builtin", "service X\n  param a\n  sink sql frobnicate(a)\nend\n"},
		{"bad escape", "service X\n  param a\n  sink sql \"\\q\"\nend\n"},
		{"unterminated string", "service X\n  param a\n  sink sql \"abc\nend\n"},
		{"undeclared var", "service X\n  q = \"hi\"\nend\n"},
		{"duplicate param", "service X\n  param a\n  param a\nend\n"},
		{"unknown class", "service X\n  param a\n  if matches(a, hex)\n    reject\n  end\nend\n"},
		{"unknown condition", "service X\n  param a\n  if startswith(a, \"x\")\n    reject\n  end\nend\n"},
		{"repeat too big", "service X\n  param a\n  repeat 99\n    sink sql a\n  end\nend\n"},
		{"missing assign rhs", "service X\n  var v\n  v =\nend\n"},
		{"garbage char", "service X\n  param a@b\nend\n"},
		{"newline in string", "service X\n  sink sql \"a\nb\"\nend\n"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: parse accepted invalid input", c.name)
		}
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	srcs := []string{
		vulnSQLSrc,
		escapedSQLSrc,
		`
service Everything
  param a
  param b
  var q
  if not matches(a, digits)
    reject
  end
  if contains(b, "x,\"y\"")
    q = concat("L'", escape_sql(a), "'")
  else
    q = upper(trim(b))
  end
  repeat 3
    q = concat(q, numeric(b))
  end
  sink sql silent q
  sink xpath escape_xpath(a)
  sink html escape_html(b)
  sink cmd escape_shell(a)
  sink path sanitize_path(b)
end
`,
	}
	for _, src := range srcs {
		orig := mustParse(t, src)
		printed := Print(orig)
		reparsed, err := ParseOne(printed)
		if err != nil {
			t.Fatalf("reparse of printed form failed: %v\n%s", err, printed)
		}
		if !reflect.DeepEqual(orig, reparsed) {
			t.Fatalf("round trip changed the AST\noriginal: %#v\nreparsed: %#v\nprinted:\n%s", orig, reparsed, printed)
		}
	}
}

func TestPrintEscapesLiterals(t *testing.T) {
	svc := &Service{
		Name:   "Esc",
		Params: []string{"x"},
		Body: []Stmt{
			Sink{ID: 0, Kind: SinkHTML, Expr: Lit{Value: "a\"b\\c\nd\te"}},
		},
	}
	printed := Print(svc)
	reparsed, err := ParseOne(printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	lit, ok := reparsed.Sinks()[0].Expr.(Lit)
	if !ok || lit.Value != "a\"b\\c\nd\te" {
		t.Fatalf("literal round trip = %#v", reparsed.Sinks()[0].Expr)
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("service X\n  sink sql %\nend\n")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Line != 2 || !strings.Contains(se.Error(), "line 2") {
		t.Fatalf("error = %v", se)
	}
}

func TestValidateCatchesStructuralIssues(t *testing.T) {
	cases := []struct {
		name string
		svc  *Service
	}{
		{"no name", &Service{}},
		{"dup sink IDs", &Service{Name: "S", Params: []string{"a"}, Body: []Stmt{
			Sink{ID: 0, Kind: SinkSQL, Expr: Ident{Name: "a"}},
			Sink{ID: 0, Kind: SinkSQL, Expr: Ident{Name: "a"}},
		}}},
		{"bad repeat", &Service{Name: "S", Body: []Stmt{Repeat{Count: 0}}}},
		{"nil expr", &Service{Name: "S", Body: []Stmt{Sink{ID: 0, Kind: SinkSQL, Expr: nil}}}},
		{"nil cond", &Service{Name: "S", Body: []Stmt{If{Cond: nil}}}},
		{"nil stmt", &Service{Name: "S", Body: []Stmt{nil}}},
		{"bad arity", &Service{Name: "S", Params: []string{"a"}, Body: []Stmt{
			Sink{ID: 0, Kind: SinkSQL, Expr: Call{Fn: BuiltinNumeric, Args: []Expr{Ident{Name: "a"}, Ident{Name: "a"}}}},
		}}},
		{"empty concat", &Service{Name: "S", Body: []Stmt{
			Sink{ID: 0, Kind: SinkSQL, Expr: Call{Fn: BuiltinConcat}},
		}}},
		{"bad sink kind", &Service{Name: "S", Params: []string{"a"}, Body: []Stmt{
			Sink{ID: 0, Kind: SinkKind(42), Expr: Ident{Name: "a"}},
		}}},
		{"dup var", &Service{Name: "S", Body: []Stmt{VarDecl{Name: "v"}, VarDecl{Name: "v"}}}},
	}
	for _, c := range cases {
		if err := c.svc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid service", c.name)
		}
	}
}

func TestKindAndBuiltinStringRoundTrips(t *testing.T) {
	for _, k := range AllSinkKinds() {
		got, ok := SinkKindFromString(k.String())
		if !ok || got != k {
			t.Errorf("sink kind %v does not round trip", k)
		}
		if k.CWE() == "CWE-?" {
			t.Errorf("sink kind %v has no CWE", k)
		}
	}
	for b := BuiltinConcat; b <= BuiltinTrim; b++ {
		got, ok := BuiltinFromString(b.String())
		if !ok || got != b {
			t.Errorf("builtin %v does not round trip", b)
		}
	}
	if _, ok := SinkKindFromString("nope"); ok {
		t.Error("bogus sink kind resolved")
	}
	if _, ok := BuiltinFromString("nope"); ok {
		t.Error("bogus builtin resolved")
	}
	if _, ok := CharClassFromString("digits"); !ok {
		t.Error("digits class should resolve")
	}
}

func TestMatchesClass(t *testing.T) {
	cases := []struct {
		class CharClass
		s     string
		want  bool
	}{
		{ClassDigits, "0123", true},
		{ClassDigits, "12a", false},
		{ClassDigits, "", true},
		{ClassAlpha, "AbZ", true},
		{ClassAlpha, "a1", false},
		{ClassAlnum, "a1B2", true},
		{ClassAlnum, "a_1", false},
	}
	for _, c := range cases {
		if got := c.class.MatchesClass(c.s); got != c.want {
			t.Errorf("%v.MatchesClass(%q) = %v", c.class, c.s, got)
		}
	}
}
