package svclang

import (
	"fmt"
	"strings"
)

// Print renders the service in the canonical textual form accepted by
// Parse. Parse(Print(svc)) yields a service equal to svc up to sink-ID
// renumbering (IDs are positional in both directions, so a valid service
// round-trips exactly).
func Print(svc *Service) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "service %s\n", svc.Name)
	for _, p := range svc.Params {
		fmt.Fprintf(&sb, "  param %s\n", p)
	}
	printStmts(&sb, svc.Body, 1)
	sb.WriteString("end\n")
	return sb.String()
}

func printStmts(sb *strings.Builder, stmts []Stmt, depth int) {
	indent := strings.Repeat("  ", depth)
	for _, st := range stmts {
		switch v := st.(type) {
		case VarDecl:
			fmt.Fprintf(sb, "%svar %s\n", indent, v.Name)
		case Assign:
			fmt.Fprintf(sb, "%s%s = %s\n", indent, v.Name, printExpr(v.Expr))
		case If:
			fmt.Fprintf(sb, "%sif %s\n", indent, printCond(v.Cond))
			printStmts(sb, v.Then, depth+1)
			if len(v.Else) > 0 {
				fmt.Fprintf(sb, "%selse\n", indent)
				printStmts(sb, v.Else, depth+1)
			}
			fmt.Fprintf(sb, "%send\n", indent)
		case Repeat:
			fmt.Fprintf(sb, "%srepeat %d\n", indent, v.Count)
			printStmts(sb, v.Body, depth+1)
			fmt.Fprintf(sb, "%send\n", indent)
		case Sink:
			silent := ""
			if v.Silent {
				silent = "silent "
			}
			fmt.Fprintf(sb, "%ssink %s %s%s\n", indent, v.Kind, silent, printExpr(v.Expr))
		case Reject:
			fmt.Fprintf(sb, "%sreject\n", indent)
		case Store:
			fmt.Fprintf(sb, "%sstore %s %s\n", indent, quoteLit(v.Key), printExpr(v.Expr))
		default:
			fmt.Fprintf(sb, "%s# <unknown statement %T>\n", indent, st)
		}
	}
}

func printExpr(e Expr) string {
	switch v := e.(type) {
	case Lit:
		return quoteLit(v.Value)
	case Ident:
		return v.Name
	case Call:
		parts := make([]string, len(v.Args))
		for i, a := range v.Args {
			parts[i] = printExpr(a)
		}
		return fmt.Sprintf("%s(%s)", v.Fn, strings.Join(parts, ", "))
	case LoadExpr:
		return fmt.Sprintf("load(%s)", quoteLit(v.Key))
	default:
		return fmt.Sprintf("<unknown expr %T>", e)
	}
}

func printCond(c Cond) string {
	switch v := c.(type) {
	case Match:
		return fmt.Sprintf("matches(%s, %s)", printExpr(v.Expr), v.Class)
	case Contains:
		return fmt.Sprintf("contains(%s, %s)", printExpr(v.Expr), quoteLit(v.Needle))
	case Eq:
		return fmt.Sprintf("eq(%s, %s)", printExpr(v.Expr), quoteLit(v.Value))
	case Not:
		return fmt.Sprintf("not %s", printCond(v.Inner))
	case BoolLit:
		if v.Value {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("<unknown cond %T>", c)
	}
}

func quoteLit(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteRune(r)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}
