package svclang

import (
	"fmt"
	"strings"
)

// tokenKind enumerates lexical token kinds of the textual service format.
type tokenKind int

const (
	tokIdent tokenKind = iota + 1
	tokString
	tokInt
	tokLParen
	tokRParen
	tokComma
	tokAssign
	tokNewline
	tokEOF
)

func (k tokenKind) String() string {
	switch k {
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokInt:
		return "integer"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokAssign:
		return "'='"
	case tokNewline:
		return "newline"
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	line int
}

// SyntaxError reports a lexical or parse error with its source line.
type SyntaxError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("svclang: line %d: %s", e.Line, e.Msg)
}

// lex splits source text into tokens. Comments run from '#' to end of
// line. Consecutive newlines collapse into one token; a leading newline is
// suppressed.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	rs := []rune(src)
	i, n := 0, len(rs)
	emit := func(k tokenKind, text string) {
		if k == tokNewline {
			if len(toks) == 0 || toks[len(toks)-1].kind == tokNewline {
				return
			}
		}
		toks = append(toks, token{kind: k, text: text, line: line})
	}
	for i < n {
		r := rs[i]
		switch {
		case r == '\n':
			emit(tokNewline, "\n")
			line++
			i++
		case r == ' ' || r == '\t' || r == '\r':
			i++
		case r == '#':
			for i < n && rs[i] != '\n' {
				i++
			}
		case r == '(':
			emit(tokLParen, "(")
			i++
		case r == ')':
			emit(tokRParen, ")")
			i++
		case r == ',':
			emit(tokComma, ",")
			i++
		case r == '=':
			emit(tokAssign, "=")
			i++
		case r == '"':
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				c := rs[i]
				if c == '"' {
					closed = true
					i++
					break
				}
				if c == '\\' && i+1 < n {
					i++
					switch rs[i] {
					case 'n':
						sb.WriteRune('\n')
					case 't':
						sb.WriteRune('\t')
					case '\\':
						sb.WriteRune('\\')
					case '"':
						sb.WriteRune('"')
					default:
						return nil, &SyntaxError{Line: line, Msg: fmt.Sprintf("unknown escape \\%c", rs[i])}
					}
					i++
					continue
				}
				if c == '\n' {
					return nil, &SyntaxError{Line: line, Msg: "newline in string literal"}
				}
				sb.WriteRune(c)
				i++
			}
			if !closed {
				return nil, &SyntaxError{Line: line, Msg: "unterminated string literal"}
			}
			emit(tokString, sb.String())
		case r >= '0' && r <= '9':
			start := i
			for i < n && rs[i] >= '0' && rs[i] <= '9' {
				i++
			}
			emit(tokInt, string(rs[start:i]))
		case isWordRune(r):
			start := i
			for i < n && (isWordRune(rs[i]) || rs[i] >= '0' && rs[i] <= '9' || rs[i] == '.') {
				i++
			}
			emit(tokIdent, string(rs[start:i]))
		default:
			return nil, &SyntaxError{Line: line, Msg: fmt.Sprintf("unexpected character %q", string(r))}
		}
	}
	emit(tokNewline, "\n")
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}
