package svclang

import (
	"fmt"
	"sort"
	"strings"
)

// TString is a string whose characters carry taint flags: a character is
// tainted when it originates from a request parameter. Sanitizer builtins
// transform content (escaping, filtering) but never clear taint — whether
// an escaped tainted character is dangerous is decided by the sink's
// structure oracle, exactly as in real systems.
type TString struct {
	chars []rune
	taint []bool
}

// NewTString builds a fully untainted value (program-internal constant).
func NewTString(s string) TString {
	rs := []rune(s)
	return TString{chars: rs, taint: make([]bool, len(rs))}
}

// NewTaintedTString builds a fully tainted value (request parameter).
func NewTaintedTString(s string) TString {
	rs := []rune(s)
	ts := make([]bool, len(rs))
	for i := range ts {
		ts[i] = true
	}
	return TString{chars: rs, taint: ts}
}

// MakeTString builds a TString from parallel character and taint slices,
// taking ownership of both (callers must not mutate them afterwards —
// TString values are immutable and may share backing arrays, exactly as
// trim() does). The slices must have equal length. This is the
// materialisation point for alternative execution engines (see
// internal/svclang/compile) whose internal value representation is not a
// TString: sink events and session-store writes escape the engine through
// this constructor.
func MakeTString(chars []rune, taint []bool) TString {
	if len(chars) != len(taint) {
		panic(fmt.Sprintf("svclang: MakeTString length mismatch: %d chars, %d taint flags", len(chars), len(taint)))
	}
	return TString{chars: chars, taint: taint}
}

// Runes returns the backing character slice. The slice is shared, not
// copied: callers must treat it as read-only (TString is immutable).
func (t TString) Runes() []rune { return t.chars }

// Taints returns the backing per-character taint slice. Like Runes, the
// slice is shared and must be treated as read-only.
func (t TString) Taints() []bool { return t.taint }

// String returns the character content.
func (t TString) String() string { return string(t.chars) }

// Len returns the number of characters.
func (t TString) Len() int { return len(t.chars) }

// TaintedAt reports whether character i is tainted.
func (t TString) TaintedAt(i int) bool { return t.taint[i] }

// AnyTainted reports whether any character is tainted.
func (t TString) AnyTainted() bool {
	for _, b := range t.taint {
		if b {
			return true
		}
	}
	return false
}

// concatT concatenates tainted strings.
func concatT(parts ...TString) TString {
	var out TString
	for _, p := range parts {
		out.chars = append(out.chars, p.chars...)
		out.taint = append(out.taint, p.taint...)
	}
	return out
}

// mapRepl rewrites each character through a shared replacement table
// (see builtins.go): nil keeps the character, a non-nil slice replaces
// it (empty = delete). Each replacement inherits the source taint flag.
func (t TString) mapRepl(f ReplFunc) TString {
	var out TString
	for i, r := range t.chars {
		rs := f(r)
		if rs == nil {
			out.chars = append(out.chars, r)
			out.taint = append(out.taint, t.taint[i])
			continue
		}
		for _, nr := range rs {
			out.chars = append(out.chars, nr)
			out.taint = append(out.taint, t.taint[i])
		}
	}
	return out
}

// applyBuiltin evaluates a builtin on already-evaluated arguments,
// through the shared builtinSpecs table the VM also compiles from.
func applyBuiltin(fn Builtin, args []TString) (TString, error) {
	if fn < 0 || int(fn) >= len(builtinSpecs) {
		return TString{}, fmt.Errorf("svclang: unknown builtin %d", int(fn))
	}
	spec := builtinSpecs[fn]
	if spec.repl != nil {
		return args[0].mapRepl(spec.repl), nil
	}
	switch spec.mode {
	case builtinModeConcat:
		return concatT(args...), nil
	case builtinModeTrim:
		s := args[0]
		start, end := 0, len(s.chars)
		for start < end && s.chars[start] == ' ' {
			start++
		}
		for end > start && s.chars[end-1] == ' ' {
			end--
		}
		return TString{chars: s.chars[start:end], taint: s.taint[start:end]}, nil
	default:
		return TString{}, fmt.Errorf("svclang: unknown builtin %d", int(fn))
	}
}

// SinkEvent records one value reaching a sink during execution.
type SinkEvent struct {
	SinkID int
	Kind   SinkKind
	Value  TString
	Silent bool
}

// Result is the outcome of executing a service on one request.
type Result struct {
	// Rejected is true when input validation aborted the request.
	Rejected bool
	// Events lists the sink events in execution order. A sink inside a
	// loop can appear multiple times.
	Events []SinkEvent
}

// EventsFor returns the events for a particular sink ID.
func (r Result) EventsFor(sinkID int) []SinkEvent {
	var out []SinkEvent
	for _, e := range r.Events {
		if e.SinkID == sinkID {
			out = append(out, e)
		}
	}
	return out
}

// Request maps parameter names to attacker-controlled values.
type Request map[string]string

// SessionStore is the persistent state shared by consecutive requests to
// the same service (the moral equivalent of its database/session). The
// zero value is not usable; allocate with NewSessionStore.
type SessionStore struct {
	values map[string]TString
}

// NewSessionStore returns an empty session store.
func NewSessionStore() *SessionStore {
	return &SessionStore{values: map[string]TString{}}
}

// Get returns the stored value for key (empty untainted string if absent).
func (s *SessionStore) Get(key string) TString {
	if v, ok := s.values[key]; ok {
		return v
	}
	return NewTString("")
}

// Set stores a value under key.
func (s *SessionStore) Set(key string, v TString) { s.values[key] = v }

// Keys reports how many keys the store holds.
func (s *SessionStore) Keys() int { return len(s.values) }

// SortedKeys returns the stored keys in lexicographic order, for
// deterministic iteration (differential tests compare store contents
// between execution engines this way).
func (s *SessionStore) SortedKeys() []string {
	keys := make([]string, 0, len(s.values))
	for k := range s.values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Execute runs the service on one request with a fresh session store and
// returns the sink events. Missing parameters default to the empty string,
// as web frameworks commonly do. The service must be valid (see Validate);
// Execute revalidates cheaply to fail fast on malformed input.
func Execute(svc *Service, req Request) (Result, error) {
	return ExecuteInSession(svc, req, nil)
}

// ExecuteInSession runs the service on one request against an existing
// session store, persisting any `store` effects into it. Passing a nil
// store executes with a fresh one (equivalent to Execute). Consecutive
// calls with the same store model a stateful service processing a request
// sequence — the setting where second-order injections live.
func ExecuteInSession(svc *Service, req Request, store *SessionStore) (Result, error) {
	if svc == nil {
		return Result{}, fmt.Errorf("svclang: nil service")
	}
	if err := svc.Validate(); err != nil {
		return Result{}, err
	}
	if store == nil {
		store = NewSessionStore()
	}
	env := make(map[string]TString, len(svc.Params)+4)
	for _, p := range svc.Params {
		env[p] = NewTaintedTString(req[p])
	}
	// Variable declarations are hoisted: every declared variable exists
	// from the start of the request, initialised to the empty string. This
	// matches the flat scope Validate checks (a variable declared inside a
	// branch is usable after the branch, whether or not the branch ran).
	var hoist func(list []Stmt)
	hoist = func(list []Stmt) {
		for _, st := range list {
			switch v := st.(type) {
			case VarDecl:
				env[v.Name] = NewTString("")
			case If:
				hoist(v.Then)
				hoist(v.Else)
			case Repeat:
				hoist(v.Body)
			}
		}
	}
	hoist(svc.Body)
	ex := &executor{env: env, store: store}
	err := ex.stmts(svc.Body)
	if err != nil {
		return Result{}, err
	}
	return Result{Rejected: ex.rejected, Events: ex.events}, nil
}

// executor carries interpreter state; reject unwinds via the rejected flag
// checked after every statement.
type executor struct {
	env      map[string]TString
	store    *SessionStore
	events   []SinkEvent
	rejected bool
}

func (ex *executor) stmts(list []Stmt) error {
	for _, st := range list {
		if ex.rejected {
			return nil
		}
		if err := ex.stmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (ex *executor) stmt(st Stmt) error {
	switch v := st.(type) {
	case VarDecl:
		ex.env[v.Name] = NewTString("")
		return nil
	case Assign:
		val, err := ex.expr(v.Expr)
		if err != nil {
			return err
		}
		ex.env[v.Name] = val
		return nil
	case If:
		cond, err := ex.cond(v.Cond)
		if err != nil {
			return err
		}
		if cond {
			return ex.stmts(v.Then)
		}
		return ex.stmts(v.Else)
	case Repeat:
		for i := 0; i < v.Count; i++ {
			if ex.rejected {
				return nil
			}
			if err := ex.stmts(v.Body); err != nil {
				return err
			}
		}
		return nil
	case Sink:
		val, err := ex.expr(v.Expr)
		if err != nil {
			return err
		}
		ex.events = append(ex.events, SinkEvent{SinkID: v.ID, Kind: v.Kind, Value: val, Silent: v.Silent})
		return nil
	case Reject:
		ex.rejected = true
		return nil
	case Store:
		val, err := ex.expr(v.Expr)
		if err != nil {
			return err
		}
		ex.store.Set(v.Key, val)
		return nil
	default:
		return fmt.Errorf("svclang: unknown statement type %T", st)
	}
}

func (ex *executor) expr(e Expr) (TString, error) {
	switch v := e.(type) {
	case Lit:
		return NewTString(v.Value), nil
	case Ident:
		val, ok := ex.env[v.Name]
		if !ok {
			return TString{}, fmt.Errorf("svclang: undeclared name %q at runtime", v.Name)
		}
		return val, nil
	case Call:
		args := make([]TString, len(v.Args))
		for i, a := range v.Args {
			val, err := ex.expr(a)
			if err != nil {
				return TString{}, err
			}
			args[i] = val
		}
		return applyBuiltin(v.Fn, args)
	case LoadExpr:
		return ex.store.Get(v.Key), nil
	default:
		return TString{}, fmt.Errorf("svclang: unknown expression type %T", e)
	}
}

func (ex *executor) cond(c Cond) (bool, error) {
	switch v := c.(type) {
	case Match:
		val, err := ex.expr(v.Expr)
		if err != nil {
			return false, err
		}
		return v.Class.MatchesClass(val.String()), nil
	case Contains:
		val, err := ex.expr(v.Expr)
		if err != nil {
			return false, err
		}
		return strings.Contains(val.String(), v.Needle), nil
	case Eq:
		val, err := ex.expr(v.Expr)
		if err != nil {
			return false, err
		}
		return val.String() == v.Value, nil
	case Not:
		inner, err := ex.cond(v.Inner)
		if err != nil {
			return false, err
		}
		return !inner, nil
	case BoolLit:
		return v.Value, nil
	default:
		return false, fmt.Errorf("svclang: unknown condition type %T", c)
	}
}
