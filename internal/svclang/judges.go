package svclang

import "strings"

// This file is the single source of truth for per-kind sink judgment.
// Every judge surface — the interpreter's StructuralTaint over TString,
// the VM's structural-taint probe over packed bitsets
// (StructuralTaintPacked), the black-box Structure skeletons and their
// allocation-free StructureFingerprint twins — dispatches through the
// sinkJudges table below. Before this table the VM mirrored each judge
// by hand in svclang/compile and the differential suite policed the
// drift; now a kind missing from the table is a vdlint (judgesync)
// error and the mirrors are gone.

// taintView is the judge-neutral view of a sink value: the rune content
// plus the per-character taint flags in either engine representation —
// the interpreter's parallel []bool, or the VM's packed bitset with a
// word offset. Exactly one of bools/bits is consulted; keeping both in
// one small struct (instead of a closure or interface) keeps the hot
// probe path allocation-free.
type taintView struct {
	chars []rune
	bools []bool
	bits  []uint64
	off   int
}

func (v taintView) tainted(i int) bool {
	if v.bools != nil {
		return v.bools[i]
	}
	idx := v.off + i
	return v.bits[idx>>6]&(1<<uint(idx&63)) != 0
}

// sinkJudge bundles the three judgments of one sink kind: the
// white-box structural-taint oracle, the black-box token skeleton, and
// the skeleton's streaming fingerprint.
type sinkJudge struct {
	taint       func(v taintView) bool
	structure   func(s string) []string
	fingerprint func(h uint64, rs []rune) uint64
}

// sinkJudges is indexed by SinkKind. Every SinkKind constant must have
// an entry; vdlint's judgesync analyzer verifies coverage statically.
var sinkJudges = [SinkPath + 1]sinkJudge{
	SinkSQL: {
		taint:       func(v taintView) bool { return quotedStructuralTaint(v, true) },
		structure:   func(s string) []string { return quotedStructure(s, true) },
		fingerprint: func(h uint64, rs []rune) uint64 { return quotedFingerprint(h, rs, true) },
	},
	SinkXPath: {
		taint:       func(v taintView) bool { return quotedStructuralTaint(v, false) },
		structure:   func(s string) []string { return quotedStructure(s, false) },
		fingerprint: func(h uint64, rs []rune) uint64 { return quotedFingerprint(h, rs, false) },
	},
	SinkHTML: {
		taint:       htmlStructuralTaint,
		structure:   htmlStructure,
		fingerprint: htmlFingerprint,
	},
	SinkCmd: {
		taint:       cmdStructuralTaint,
		structure:   cmdStructure,
		fingerprint: cmdFingerprint,
	},
	SinkPath: {
		taint:     pathStructuralTaint,
		structure: pathStructure,
		fingerprint: func(h uint64, rs []rune) uint64 {
			if pathInside(rs) {
				return fpByte(h, fpTokInside)
			}
			return fpByte(h, fpTokEscape)
		},
	},
}

// judgeFor resolves a kind's table entry (nil for unknown kinds; the
// dispatchers treat those as judging nothing, as the old switches did).
func judgeFor(kind SinkKind) *sinkJudge {
	if kind < 0 || int(kind) >= len(sinkJudges) {
		return nil
	}
	j := &sinkJudges[kind]
	if j.taint == nil {
		return nil
	}
	return j
}

// StructuralTaint reports whether the value carries tainted characters
// in structural positions for the given sink kind.
func StructuralTaint(kind SinkKind, v TString) bool {
	j := judgeFor(kind)
	if j == nil {
		return false
	}
	return j.taint(taintView{chars: v.chars, bools: v.taint})
}

// StructuralTaintPacked is StructuralTaint over the packed taint
// representation of the bytecode VM: bit off+i of bits is the taint
// flag of chars[i]. It exists so the VM's streaming oracle probes never
// materialise a TString; the judgment is the same table entry the
// TString path uses.
func StructuralTaintPacked(kind SinkKind, chars []rune, bits []uint64, off int) bool {
	j := judgeFor(kind)
	if j == nil {
		return false
	}
	return j.taint(taintView{chars: chars, bits: bits, off: off})
}

// Structure returns the token-type skeleton of a sink value: the part
// of the value an injection must alter. Black-box tools compare
// skeletons of benign and attack responses.
func Structure(kind SinkKind, s string) []string {
	j := judgeFor(kind)
	if j == nil {
		return nil
	}
	return j.structure(s)
}

// StructureFingerprint digests the structure skeleton of a sink value
// given as a rune slice. It never reads beyond rs and never allocates.
// For rune slices that round-trip through string (every TString and VM
// value does: both normalise invalid input bytes to U+FFFD on the way
// in), the digest is the exact fold of Structure(kind, string(rs)).
func StructureFingerprint(kind SinkKind, rs []rune) uint64 {
	h := fpRune(fnvOffset64, rune(kind))
	j := judgeFor(kind)
	if j == nil {
		return h
	}
	return j.fingerprint(h, rs)
}

// quotedStructuralTaint covers SQL (sqlEscapes=true: ” is an escaped
// quote inside a string) and XPath (no escapes, both quote kinds).
// Structural positions are: string delimiters, and every non-digit
// character outside string literals. Tainted digits outside strings
// select different data, which is not an injection.
func quotedStructuralTaint(v taintView, sqlEscapes bool) bool {
	i := 0
	n := len(v.chars)
	for i < n {
		r := v.chars[i]
		switch {
		case r == '\'' || (!sqlEscapes && r == '"'):
			quote := r
			if v.tainted(i) {
				return true // tainted string delimiter
			}
			i++
			for i < n {
				if v.chars[i] == quote {
					if sqlEscapes && i+1 < n && v.chars[i+1] == quote {
						i += 2 // escaped quote: content, stays inside
						continue
					}
					if v.tainted(i) {
						return true // tainted closing delimiter
					}
					i++
					break
				}
				i++ // string content: never structural
			}
		case r >= '0' && r <= '9':
			i++ // numeric data outside strings: not structural
		default:
			if v.tainted(i) {
				return true // tainted keyword/identifier/symbol character
			}
			i++
		}
	}
	return false
}

// htmlStructuralTaint: a tainted raw '<' lets the attacker open markup.
// escape_html rewrites '<' to "&lt;", which contains no raw '<'.
func htmlStructuralTaint(v taintView) bool {
	for i, r := range v.chars {
		if r == '<' && v.tainted(i) {
			return true
		}
	}
	return false
}

// cmdStructuralTaint: tainted unescaped, unquoted shell metacharacters
// or separators are structural. A backslash escapes the following
// character.
func cmdStructuralTaint(v taintView) bool {
	const metas = " ;|&$`\"'()<>*?~#\t\n"
	i := 0
	n := len(v.chars)
	for i < n {
		r := v.chars[i]
		if r == '\\' && i+1 < n {
			i += 2 // escaped character: not structural
			continue
		}
		if strings.ContainsRune(metas, r) && v.tainted(i) {
			return true
		}
		i++
	}
	return false
}

// pathStructuralTaint: tainted path separators, or a tainted dot that
// is part of a ".." sequence, let the attacker navigate the filesystem.
func pathStructuralTaint(v taintView) bool {
	n := len(v.chars)
	for i := 0; i < n; i++ {
		r := v.chars[i]
		if (r == '/' || r == '\\') && v.tainted(i) {
			return true
		}
		if r == '.' && v.tainted(i) {
			prev := i > 0 && v.chars[i-1] == '.'
			next := i+1 < n && v.chars[i+1] == '.'
			if prev || next {
				return true
			}
		}
	}
	return false
}
