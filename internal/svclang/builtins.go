package svclang

// Shared builtin semantics. The interpreter's applyBuiltin and the VM's
// opBuiltin handler used to carry two hand-mirrored switches over
// Builtin; both now read the builtinSpecs table below. Seven of the
// nine builtins are character-wise rewrites expressed as a replFunc;
// concat and trim are structural (variadic join, edge-slicing) and are
// marked as such in the table rather than exempted in the linter.
// vdlint's judgesync analyzer verifies every Builtin constant has an
// entry.

// ReplFunc is a character-wise builtin: it returns nil to keep r
// unchanged, or an interned replacement slice (empty = delete r). Each
// replacement character inherits the source character's taint flag, in
// both engines.
type ReplFunc func(r rune) []rune

// builtinMode distinguishes the non-character-wise builtins.
type builtinMode int

const (
	builtinCharwise builtinMode = iota
	builtinModeConcat           // variadic concatenation (dedicated VM opcode)
	builtinModeTrim             // edge-space slicing, shares backing arrays
)

// builtinSpec is one builtin's table entry.
type builtinSpec struct {
	mode builtinMode
	repl ReplFunc // set iff mode == builtinCharwise
}

// Interned replacement slices: allocated once, shared by every
// application in both engines.
var (
	replSQLQuote  = []rune("''")
	replXPathApos = []rune("&apos;")
	replXPathQuot = []rune("&quot;")
	replHTMLLt    = []rune("&lt;")
	replHTMLGt    = []rune("&gt;")
	replHTMLAmp   = []rune("&amp;")
	replHTMLQuot  = []rune("&quot;")
	replHTMLApos  = []rune("&#39;")
	replDrop      = []rune{}
)

// shellEscapeSet is the metacharacter set escape_shell prefixes with a
// backslash (the backslash itself included).
const shellEscapeSet = " ;|&$`\"'\\()<>*?~#"

// shellReplTab maps each shell metacharacter to its interned
// two-character escape.
var shellReplTab = func() map[rune][]rune {
	m := make(map[rune][]rune, len(shellEscapeSet))
	for _, r := range shellEscapeSet {
		m[r] = []rune{'\\', r}
	}
	return m
}()

// upperReplTab holds the interned single-character replacements for
// 'a'..'z'.
var upperReplTab = func() [26][]rune {
	var t [26][]rune
	for i := range t {
		t[i] = []rune{'A' + rune(i)}
	}
	return t
}()

func sqlRepl(r rune) []rune {
	if r == '\'' {
		return replSQLQuote
	}
	return nil
}

func xpathRepl(r rune) []rune {
	switch r {
	case '\'':
		return replXPathApos
	case '"':
		return replXPathQuot
	}
	return nil
}

func htmlRepl(r rune) []rune {
	switch r {
	case '<':
		return replHTMLLt
	case '>':
		return replHTMLGt
	case '&':
		return replHTMLAmp
	case '"':
		return replHTMLQuot
	case '\'':
		return replHTMLApos
	}
	return nil
}

// shellRepl backslash-escapes the shell metacharacter set; a map miss
// returns nil, which keeps the character.
func shellRepl(r rune) []rune {
	return shellReplTab[r]
}

// pathRepl drops every path-structural character: separators and dots.
func pathRepl(r rune) []rune {
	if r == '/' || r == '\\' || r == '.' {
		return replDrop
	}
	return nil
}

func numericRepl(r rune) []rune {
	if r >= '0' && r <= '9' {
		return nil
	}
	return replDrop
}

func upperRepl(r rune) []rune {
	if r >= 'a' && r <= 'z' {
		return upperReplTab[r-'a']
	}
	return nil
}

// builtinSpecs is indexed by Builtin. Every Builtin constant must have
// an entry; vdlint's judgesync analyzer verifies coverage statically.
var builtinSpecs = [BuiltinTrim + 1]builtinSpec{
	BuiltinConcat:       {mode: builtinModeConcat},
	BuiltinEscapeSQL:    {repl: sqlRepl},
	BuiltinEscapeXPath:  {repl: xpathRepl},
	BuiltinEscapeHTML:   {repl: htmlRepl},
	BuiltinEscapeShell:  {repl: shellRepl},
	BuiltinSanitizePath: {repl: pathRepl},
	BuiltinNumeric:      {repl: numericRepl},
	BuiltinUpper:        {repl: upperRepl},
	BuiltinTrim:         {mode: builtinModeTrim},
}

// ReplFor returns the character-wise replacement table of fn, or nil
// for the structural builtins (concat, trim) and unknown values. The
// bytecode VM applies it over its packed representation; the
// interpreter applies the same function through TString.mapRepl.
func ReplFor(fn Builtin) ReplFunc {
	if fn < 0 || int(fn) >= len(builtinSpecs) {
		return nil
	}
	return builtinSpecs[fn].repl
}
