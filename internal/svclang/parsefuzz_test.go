package svclang_test

// FuzzParse sits in an external test package so it can seed its corpus
// from the internal/workload template library (workload imports svclang,
// so the in-package test cannot import it back).

import (
	"reflect"
	"testing"

	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/workload"
)

// FuzzParse asserts the parser's total-function contract: arbitrary input
// either fails with an error — never a panic — or yields services that
// validate, execute, and survive a parse→print→parse round trip with a
// deeply equal AST (sink IDs are positional in both Print and Parse, so
// exact equality is the contract, not just shape equality).
//
// The corpus is seeded with every workload template in both its
// vulnerable and safe variant across every sink kind it supports, plus
// hand-picked grammar corners, so fuzzing starts from the exact service
// population the benchmark campaigns parse.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"service X\nend\n",
		"service X\n  param a\n  sink sql a\nend\n",
		"service X\n  param a\n  if not matches(a, digits)\n    reject\n  end\n  sink html escape_html(a)\nend\n",
		"service X\n  param a\n  repeat 3\n    sink cmd a\n  end\nend\n",
		"service X\n  param a\n  sink path silent sanitize_path(a)\nend\n",
		"# comment\nservice Y\n  var v\n  v = concat(\"x\\\"y\", \"z\")\n  sink xpath v\nend\n",
		"service X\n  param a\n  store \"k\" a\n  sink sql load(\"k\")\nend\n",
		"garbage",
		"service \"quoted\"",
		"service X\n  sink sql \"unterminated\nend\n",
	}
	for _, tpl := range workload.Templates() {
		for _, kind := range tpl.Kinds {
			for _, vulnerable := range []bool{true, false} {
				svc, _ := tpl.Build("seed", kind, vulnerable)
				seeds = append(seeds, svclang.Print(svc))
			}
		}
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		services, err := svclang.Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		for _, svc := range services {
			if err := svc.Validate(); err != nil {
				t.Fatalf("parsed service fails validation: %v", err)
			}
			printed := svclang.Print(svc)
			again, err := svclang.ParseOne(printed)
			if err != nil {
				t.Fatalf("printed form does not re-parse: %v\n%s", err, printed)
			}
			if !reflect.DeepEqual(svc, again) {
				t.Fatalf("parse→print→parse is not the identity\nfirst:  %#v\nsecond: %#v\nsource:\n%s", svc, again, printed)
			}
			// Execution must be total on valid services.
			req := svclang.Request{}
			for _, p := range svc.Params {
				req[p] = "' OR '1'='1"
			}
			if _, err := svclang.Execute(svc, req); err != nil {
				t.Fatalf("execution failed on valid service: %v", err)
			}
		}
	})
}
