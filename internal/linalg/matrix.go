// Package linalg provides the small dense-matrix toolkit needed by the MCDA
// layer: matrix construction, multiplication, and the principal-eigenvector
// computation that the Analytic Hierarchy Process uses to turn pairwise
// comparison matrices into priority vectors.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64
}

// ErrDimension indicates a shape mismatch between operands.
var ErrDimension = errors.New("linalg: dimension mismatch")

// New returns a zero matrix with the given shape.
func New(rows, cols int) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("linalg: invalid shape %dx%d", rows, cols)
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}, nil
}

// FromRows builds a matrix from row slices. All rows must have equal,
// non-zero length. The input is copied.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("linalg: empty matrix")
	}
	cols := len(rows[0])
	m, err := New(len(rows), cols)
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: row %d has %d columns, want %d", i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) (*Matrix, error) {
	m, err := New(n, n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j). Out-of-range indices panic, as with
// slice indexing.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{rows: m.rows, cols: m.cols, data: make([]float64, len(m.data))}
	copy(c.data, m.data)
	return c
}

// Mul returns the matrix product m·other.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.cols != other.rows {
		return nil, fmt.Errorf("%w: %dx%d x %dx%d", ErrDimension, m.rows, m.cols, other.rows, other.cols)
	}
	out, _ := New(m.rows, other.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			for j := 0; j < other.cols; j++ {
				out.data[i*out.cols+j] += a * other.data[k*other.cols+j]
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m·v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("%w: %dx%d x vector(%d)", ErrDimension, m.rows, m.cols, len(v))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		for j := 0; j < m.cols; j++ {
			s += m.data[i*m.cols+j] * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// IsSquare reports whether m has equal row and column counts.
func (m *Matrix) IsSquare() bool { return m.rows == m.cols }

// Normalize1 scales v in place so its entries sum to one and returns v.
// A zero vector is returned unchanged.
func Normalize1(v []float64) []float64 {
	var sum float64
	for _, x := range v {
		sum += x
	}
	if sum == 0 {
		return v
	}
	for i := range v {
		v[i] /= sum
	}
	return v
}

// PowerIterationResult carries the dominant eigenpair of a matrix.
type PowerIterationResult struct {
	// Eigenvalue is the dominant eigenvalue estimate (lambda_max for AHP
	// matrices).
	Eigenvalue float64
	// Eigenvector is the associated eigenvector normalised to sum to one,
	// as AHP priority vectors require.
	Eigenvector []float64
	// Iterations is the number of iterations performed until convergence.
	Iterations int
}

// PowerIteration computes the dominant eigenpair of a square matrix with
// positive entries (the AHP setting guarantees positivity, which makes the
// dominant eigenvalue real and simple by Perron–Frobenius). It returns an
// error if the matrix is not square, contains non-positive entries, or the
// iteration fails to converge within maxIter iterations to tolerance tol.
func PowerIteration(m *Matrix, maxIter int, tol float64) (PowerIterationResult, error) {
	if !m.IsSquare() {
		return PowerIterationResult{}, fmt.Errorf("%w: power iteration needs a square matrix, got %dx%d", ErrDimension, m.rows, m.cols)
	}
	if maxIter <= 0 {
		return PowerIterationResult{}, errors.New("linalg: maxIter must be positive")
	}
	if tol <= 0 {
		return PowerIterationResult{}, errors.New("linalg: tolerance must be positive")
	}
	n := m.rows
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if m.At(i, j) <= 0 || math.IsNaN(m.At(i, j)) || math.IsInf(m.At(i, j), 0) {
				return PowerIterationResult{}, fmt.Errorf("linalg: power iteration requires strictly positive finite entries, found %g at (%d,%d)", m.At(i, j), i, j)
			}
		}
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / float64(n)
	}
	var lambda float64
	for iter := 1; iter <= maxIter; iter++ {
		next, err := m.MulVec(v)
		if err != nil {
			return PowerIterationResult{}, err
		}
		var sum float64
		for _, x := range next {
			sum += x
		}
		if sum == 0 {
			return PowerIterationResult{}, errors.New("linalg: power iteration collapsed to zero vector")
		}
		for i := range next {
			next[i] /= sum
		}
		// Rayleigh-style eigenvalue estimate: mean of componentwise ratios
		// (Av)_i / v_i. For positive matrices every component is valid.
		av, _ := m.MulVec(next)
		var est float64
		for i := range next {
			est += av[i] / next[i]
		}
		est /= float64(n)
		var delta float64
		for i := range v {
			delta += math.Abs(next[i] - v[i])
		}
		v = next
		lambda = est
		if delta < tol {
			return PowerIterationResult{Eigenvalue: lambda, Eigenvector: v, Iterations: iter}, nil
		}
	}
	return PowerIterationResult{}, fmt.Errorf("linalg: power iteration did not converge in %d iterations", maxIter)
}
