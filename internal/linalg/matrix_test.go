package linalg

import (
	"errors"
	"math"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3); err == nil {
		t.Fatal("zero rows should fail")
	}
	if _, err := New(3, -1); err == nil {
		t.Fatal("negative cols should fail")
	}
	m, err := New(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("element order wrong")
	}
	if _, err := FromRows(nil); err == nil {
		t.Fatal("empty input should fail")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged input should fail")
	}
}

func TestFromRowsCopies(t *testing.T) {
	row := []float64{1, 2}
	m, _ := FromRows([][]float64{row})
	row[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("FromRows aliased caller data")
	}
}

func TestSetAt(t *testing.T) {
	m, _ := New(2, 2)
	m.Set(1, 1, 5)
	if m.At(1, 1) != 5 {
		t.Fatal("Set/At roundtrip failed")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m, _ := New(2, 2)
	m.At(2, 0)
}

func TestClone(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestIdentityAndMul(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	id, err := Identity(2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Mul(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if p.At(i, j) != m.At(i, j) {
				t.Fatalf("M*I != M at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulKnownProduct(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b, _ := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	p, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{58, 64}, {139, 154}}
	for i := range want {
		for j := range want[i] {
			if p.At(i, j) != want[i][j] {
				t.Fatalf("product (%d,%d) = %g, want %g", i, j, p.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulDimensionError(t *testing.T) {
	a, _ := New(2, 3)
	b, _ := New(2, 3)
	if _, err := a.Mul(b); !errors.Is(err, ErrDimension) {
		t.Fatalf("expected ErrDimension, got %v", err)
	}
}

func TestMulVec(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	v, err := m.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 3 || v[1] != 7 {
		t.Fatalf("MulVec = %v", v)
	}
	if _, err := m.MulVec([]float64{1}); !errors.Is(err, ErrDimension) {
		t.Fatal("dimension mismatch should fail")
	}
}

func TestNormalize1(t *testing.T) {
	v := Normalize1([]float64{1, 3})
	if v[0] != 0.25 || v[1] != 0.75 {
		t.Fatalf("Normalize1 = %v", v)
	}
	z := Normalize1([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero vector should pass through unchanged")
	}
}

func TestPowerIterationDiagonal(t *testing.T) {
	// Strictly positive matrix with a known dominant structure: a rank-one
	// perturbation w·1^T has eigenvalue sum(w) with eigenvector w.
	w := []float64{0.5, 0.3, 0.2}
	rows := make([][]float64, 3)
	for i := range rows {
		rows[i] = []float64{w[i], w[i], w[i]}
	}
	m, _ := FromRows(rows)
	res, err := PowerIteration(m, 1000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Eigenvalue-1.0) > 1e-9 {
		t.Fatalf("eigenvalue = %g, want 1", res.Eigenvalue)
	}
	for i := range w {
		if math.Abs(res.Eigenvector[i]-w[i]) > 1e-9 {
			t.Fatalf("eigenvector = %v, want %v", res.Eigenvector, w)
		}
	}
}

func TestPowerIterationConsistentAHPMatrix(t *testing.T) {
	// A perfectly consistent pairwise matrix a_ij = w_i/w_j has
	// lambda_max = n and priority vector proportional to w.
	w := []float64{0.6, 0.3, 0.1}
	rows := make([][]float64, 3)
	for i := range rows {
		rows[i] = make([]float64, 3)
		for j := range rows[i] {
			rows[i][j] = w[i] / w[j]
		}
	}
	m, _ := FromRows(rows)
	res, err := PowerIteration(m, 1000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Eigenvalue-3) > 1e-6 {
		t.Fatalf("lambda_max = %g, want 3", res.Eigenvalue)
	}
	for i := range w {
		if math.Abs(res.Eigenvector[i]-w[i]) > 1e-6 {
			t.Fatalf("priorities = %v, want %v", res.Eigenvector, w)
		}
	}
}

func TestPowerIterationEigenvectorSumsToOne(t *testing.T) {
	m, _ := FromRows([][]float64{
		{1, 2, 4},
		{0.5, 1, 3},
		{0.25, 1.0 / 3.0, 1},
	})
	res, err := PowerIteration(m, 1000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, x := range res.Eigenvector {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("eigenvector sum = %g", sum)
	}
	// An inconsistent 3x3 positive reciprocal matrix has lambda_max >= 3.
	if res.Eigenvalue < 3-1e-9 {
		t.Fatalf("lambda_max = %g < n", res.Eigenvalue)
	}
}

func TestPowerIterationValidation(t *testing.T) {
	rect, _ := New(2, 3)
	if _, err := PowerIteration(rect, 100, 1e-9); !errors.Is(err, ErrDimension) {
		t.Fatal("non-square should fail")
	}
	withZero, _ := FromRows([][]float64{{1, 0}, {1, 1}})
	if _, err := PowerIteration(withZero, 100, 1e-9); err == nil {
		t.Fatal("zero entry should fail")
	}
	ok, _ := FromRows([][]float64{{1, 1}, {1, 1}})
	if _, err := PowerIteration(ok, 0, 1e-9); err == nil {
		t.Fatal("maxIter=0 should fail")
	}
	if _, err := PowerIteration(ok, 100, 0); err == nil {
		t.Fatal("tol=0 should fail")
	}
}

func TestPowerIterationNonConvergence(t *testing.T) {
	m, _ := FromRows([][]float64{
		{1, 9, 0.2},
		{1.0 / 9.0, 1, 7},
		{5, 1.0 / 7.0, 1},
	})
	// One iteration cannot reach a 1e-15 tolerance on this matrix.
	if _, err := PowerIteration(m, 1, 1e-15); err == nil {
		t.Fatal("expected non-convergence error")
	}
}

func TestIsSquare(t *testing.T) {
	sq, _ := New(3, 3)
	rect, _ := New(2, 3)
	if !sq.IsSquare() || rect.IsSquare() {
		t.Fatal("IsSquare wrong")
	}
}
