package report

import (
	"fmt"
	"math"
	"strings"
)

// SVG renders the figure as a self-contained SVG line chart: one polyline
// per series, axes with tick labels, and a legend. The renderer is
// deliberately small — enough to eyeball every figure the experiments
// produce without leaving the repository — and uses no external assets.
func (f *Figure) SVG() string {
	const (
		width   = 760
		height  = 420
		left    = 70
		right   = 180 // room for the legend
		top     = 50
		bottom  = 50
		plotW   = width - left - right
		plotH   = height - top - bottom
		nXTicks = 6
		nYTicks = 6
	)
	// Data bounds across all series.
	xLo, xHi := math.Inf(1), math.Inf(-1)
	yLo, yHi := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			xLo = math.Min(xLo, s.X[i])
			xHi = math.Max(xHi, s.X[i])
			yLo = math.Min(yLo, s.Y[i])
			yHi = math.Max(yHi, s.Y[i])
		}
	}
	if math.IsInf(xLo, 1) { // no data at all
		xLo, xHi, yLo, yHi = 0, 1, 0, 1
	}
	if xHi == xLo {
		xHi = xLo + 1
	}
	if yHi == yLo {
		yHi = yLo + 1
	}
	// Pad the y range slightly so lines do not sit on the frame.
	pad := (yHi - yLo) * 0.05
	yLo -= pad
	yHi += pad

	sx := func(x float64) float64 { return left + (x-xLo)/(xHi-xLo)*plotW }
	sy := func(y float64) float64 { return top + plotH - (y-yLo)/(yHi-yLo)*plotH }

	// A colour cycle with enough contrast for the handful of series the
	// experiments emit.
	colors := []string{
		"#1b6ca8", "#c0392b", "#1e8449", "#8e44ad", "#d68910",
		"#138d75", "#7b241c", "#2e4053",
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&sb, `<text x="%d" y="24" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n",
		left, xmlEscape(f.Title))

	// Frame.
	fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#444"/>`+"\n",
		left, top, plotW, plotH)

	// Ticks and grid.
	for i := 0; i <= nXTicks; i++ {
		x := xLo + (xHi-xLo)*float64(i)/nXTicks
		px := sx(x)
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ddd"/>`+"\n",
			px, top, px, top+plotH)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n",
			px, top+plotH+16, FormatFloat(round3(x)))
	}
	for i := 0; i <= nYTicks; i++ {
		y := yLo + (yHi-yLo)*float64(i)/nYTicks
		py := sy(y)
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			left, py, left+plotW, py)
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
			left-6, py+3, FormatFloat(round3(y)))
	}
	// Axis labels.
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
		left+plotW/2, height-10, xmlEscape(f.XLabel))
	fmt.Fprintf(&sb, `<text x="16" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		top+plotH/2, top+plotH/2, xmlEscape(f.YLabel))

	// Series.
	for si, s := range f.Series {
		color := colors[si%len(colors)]
		var pts []string
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(s.X[i]), sy(s.Y[i])))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		for _, p := range pts {
			coords := strings.Split(p, ",")
			fmt.Fprintf(&sb, `<circle cx="%s" cy="%s" r="2.5" fill="%s"/>`+"\n", coords[0], coords[1], color)
		}
		// Legend entry.
		ly := top + 14 + si*18
		lx := left + plotW + 12
		fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly-4, lx+18, ly-4, color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+24, ly, xmlEscape(s.Name))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;")
	return r.Replace(s)
}
