package report

import (
	"math"
	"strings"
	"testing"
)

func sampleFigure(t *testing.T) *Figure {
	t.Helper()
	f := &Figure{Title: "demo <figure>", XLabel: "x & y", YLabel: "value"}
	if err := f.AddSeries("alpha", []float64{0, 0.5, 1}, []float64{0.2, 0.8, 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddSeries("beta", []float64{0, 0.5, 1}, []float64{0.9, 0.1, 0.4}); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSVGWellFormed(t *testing.T) {
	svg := sampleFigure(t).SVG()
	for _, want := range []string{
		"<svg", "</svg>", "<polyline", "<circle",
		"demo &lt;figure&gt;", // title escaped
		"x &amp; y",           // label escaped
		"alpha", "beta",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("expected 2 polylines, got %d", strings.Count(svg, "<polyline"))
	}
	// Balanced tags (cheap well-formedness check).
	if strings.Count(svg, "<svg") != strings.Count(svg, "</svg>") {
		t.Error("unbalanced svg tags")
	}
}

func TestSVGHandlesNaN(t *testing.T) {
	f := &Figure{Title: "nan"}
	if err := f.AddSeries("s", []float64{0, 1, 2}, []float64{0.5, math.NaN(), 0.7}); err != nil {
		t.Fatal(err)
	}
	svg := f.SVG()
	if strings.Contains(svg, "NaN") {
		t.Fatal("NaN leaked into SVG output")
	}
	if strings.Count(svg, "<circle") != 2 {
		t.Fatalf("expected 2 points after NaN skip, got %d", strings.Count(svg, "<circle"))
	}
}

func TestSVGEmptyFigure(t *testing.T) {
	f := &Figure{Title: "empty"}
	svg := f.SVG()
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("empty figure should still render a frame")
	}
}

func TestSVGConstantSeries(t *testing.T) {
	f := &Figure{Title: "flat"}
	if err := f.AddSeries("c", []float64{0, 1}, []float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	svg := f.SVG()
	if !strings.Contains(svg, "<polyline") {
		t.Fatal("constant series should still draw")
	}
}
