// Package report renders experiment outputs as aligned ASCII tables, CSV,
// JSON, and simple text "figures" (series dumps suitable for plotting).
// Every table and figure the benchmark reproduces flows through this
// package, so all experiment output is uniform and diffable.
package report

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Table is a simple rectangular table with a title and column headers.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row. Rows shorter than the header are padded; longer
// rows are accepted verbatim (the renderer widens the table).
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowValues appends a row of arbitrary values formatted with %v, except
// float64 values which are formatted compactly.
func (t *Table) AddRowValues(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(row...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns a copy of the data rows, each padded to the header width
// (longer rows are returned verbatim, matching the text renderer).
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		row := make([]string, max(len(r), len(t.Headers)))
		copy(row, r)
		out[i] = row
	}
	return out
}

// MarshalJSON encodes the table with its rows padded like Rows, so the
// JSON form and the text form describe the same rectangle.
func (t *Table) MarshalJSON() ([]byte, error) {
	headers := t.Headers
	if headers == nil {
		headers = []string{}
	}
	return json.Marshal(struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}{t.Title, headers, t.Rows()})
}

// gobTable is the wire form of a Table for gob: the raw, unpadded rows,
// so every renderer (String, CSV, Markdown, JSON) produces byte-identical
// output from a decoded table. Gob is the persistence codec of the
// durable job store — the JSON form cannot serve there because it pads
// rows and nulls non-finite values.
type gobTable struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// GobEncode implements gob.GobEncoder. Without it, gob would silently
// drop the unexported rows.
func (t *Table) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gobTable{t.Title, t.Headers, t.rows}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (t *Table) GobDecode(data []byte) error {
	var w gobTable
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	t.Title, t.Headers, t.rows = w.Title, w.Headers, w.Rows
	return nil
}

// FormatFloat renders a float compactly: four significant decimals,
// trailing zeros trimmed, integers without a decimal point.
func FormatFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 4, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.rows {
		measure(r)
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(row []string) {
		var line strings.Builder
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				line.WriteString("  ")
			}
			line.WriteString(cell)
			line.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		sb.WriteString(strings.TrimRight(line.String(), " "))
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(cols-1)))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// CSV renders the table as RFC-4180-style CSV (fields with commas,
// quotes or newlines are quoted).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(csvEscape(c))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Markdown renders the table as a GitHub-flavoured Markdown table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "**%s**\n\n", t.Title)
	}
	sb.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat(" --- |", len(t.Headers)) + "\n")
	for _, r := range t.rows {
		cells := make([]string, len(t.Headers))
		for i := range cells {
			if i < len(r) {
				cells[i] = r[i]
			}
		}
		sb.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	return sb.String()
}

// Series is a named sequence of (x, y) points: the text form of a figure.
type Series struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// jsonFloat encodes non-finite values as null: encoding/json rejects NaN
// and ±Inf outright, but figures may legitimately carry undefined points
// (metrics outside their domain).
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

func jsonFloats(vs []float64) []jsonFloat {
	out := make([]jsonFloat, len(vs))
	for i, v := range vs {
		out[i] = jsonFloat(v)
	}
	return out
}

// MarshalJSON encodes the series with non-finite points as null.
func (s Series) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Name string      `json:"name"`
		X    []jsonFloat `json:"x"`
		Y    []jsonFloat `json:"y"`
	}{s.Name, jsonFloats(s.X), jsonFloats(s.Y)})
}

// Figure is a set of series sharing axes: the text equivalent of one paper
// figure.
type Figure struct {
	Title  string   `json:"title"`
	XLabel string   `json:"xlabel"`
	YLabel string   `json:"ylabel"`
	Series []Series `json:"series"`
}

// AddSeries appends a series; x and y must have equal length.
func (f *Figure) AddSeries(name string, x, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("report: series %q has %d x values and %d y values", name, len(x), len(y))
	}
	f.Series = append(f.Series, Series{Name: name, X: x, Y: y})
	return nil
}

// String renders the figure as a data block: one line per point, one
// section per series. The output is directly consumable by plotting tools.
func (f *Figure) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# figure: %s\n", f.Title)
	fmt.Fprintf(&sb, "# x: %s, y: %s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "## series: %s\n", s.Name)
		for i := range s.X {
			fmt.Fprintf(&sb, "%s\t%s\n", FormatFloat(s.X[i]), FormatFloat(s.Y[i]))
		}
	}
	return sb.String()
}
