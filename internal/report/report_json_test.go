package report

import (
	"encoding/json"
	"math"
	"testing"
)

func TestTableRowsPadding(t *testing.T) {
	tbl := NewTable("T", "a", "b", "c")
	tbl.AddRow("1")
	tbl.AddRow("1", "2", "3", "4")
	rows := tbl.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if len(rows[0]) != 3 || rows[0][1] != "" || rows[0][2] != "" {
		t.Fatalf("short row not padded to header width: %q", rows[0])
	}
	if len(rows[1]) != 4 {
		t.Fatalf("long row truncated: %q", rows[1])
	}
	// Rows returns a copy: mutating it must not touch the table.
	rows[0][0] = "mutated"
	if tbl.Rows()[0][0] != "1" {
		t.Fatal("Rows aliases the table's internal storage")
	}
}

func TestTableMarshalJSON(t *testing.T) {
	tbl := NewTable("T", "a", "b")
	tbl.AddRow("1")
	data, err := json.Marshal(tbl)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Title != "T" || len(decoded.Headers) != 2 {
		t.Fatalf("decoded = %+v", decoded)
	}
	if len(decoded.Rows) != 1 || len(decoded.Rows[0]) != 2 {
		t.Fatalf("rows not padded in JSON: %+v", decoded.Rows)
	}
}

func TestSeriesMarshalJSONNonFinite(t *testing.T) {
	s := Series{Name: "s", X: []float64{1, 2, 3}, Y: []float64{0.5, math.NaN(), math.Inf(1)}}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("non-finite values must encode as null, got error: %v", err)
	}
	var decoded struct {
		Name string     `json:"name"`
		X    []*float64 `json:"x"`
		Y    []*float64 `json:"y"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Name != "s" || len(decoded.X) != 3 || len(decoded.Y) != 3 {
		t.Fatalf("decoded = %+v", decoded)
	}
	if decoded.Y[0] == nil || *decoded.Y[0] != 0.5 {
		t.Fatalf("finite value mangled: %v", decoded.Y)
	}
	if decoded.Y[1] != nil || decoded.Y[2] != nil {
		t.Fatalf("NaN/Inf not encoded as null: %s", data)
	}
}
