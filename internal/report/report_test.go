package report

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tbl := NewTable("Demo", "tool", "precision")
	tbl.AddRow("pt-deep", "0.98")
	tbl.AddRow("ts", "0.7")
	out := tbl.String()
	if !strings.Contains(out, "Demo") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, divider, two rows
		t.Fatalf("line count = %d: %q", len(lines), out)
	}
	// Alignment: the precision column starts at the same offset everywhere.
	hdrIdx := strings.Index(lines[1], "precision")
	rowIdx := strings.Index(lines[4], "0.7")
	if hdrIdx != rowIdx {
		t.Fatalf("columns misaligned: %d vs %d\n%s", hdrIdx, rowIdx, out)
	}
	for _, l := range lines {
		if strings.HasSuffix(l, " ") {
			t.Fatalf("trailing whitespace in %q", l)
		}
	}
}

func TestTableRaggedRows(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("1")
	tbl.AddRow("1", "2", "3")
	out := tbl.String()
	if !strings.Contains(out, "3") {
		t.Fatal("extra cell dropped")
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
}

func TestAddRowValues(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.AddRowValues("x", 0.12345678, 42)
	out := tbl.String()
	if !strings.Contains(out, "0.1235") {
		t.Fatalf("float formatting wrong: %s", out)
	}
	if !strings.Contains(out, "42") {
		t.Fatalf("int formatting wrong: %s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{1, "1"},
		{-1.5, "-1.5"},
		{0.25, "0.25"},
		{0.123456, "0.1235"},
		{100.0001, "100.0001"},
		{2.0000001, "2"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCSV(t *testing.T) {
	tbl := NewTable("", "name", "note")
	tbl.AddRow("a,b", `say "hi"`)
	tbl.AddRow("plain", "x")
	out := tbl.CSV()
	want := "name,note\n\"a,b\",\"say \"\"hi\"\"\"\nplain,x\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}

func TestMarkdown(t *testing.T) {
	tbl := NewTable("Results", "a", "b")
	tbl.AddRow("1", "2")
	tbl.AddRow("3") // short row padded
	out := tbl.Markdown()
	if !strings.Contains(out, "**Results**") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "| a | b |") || !strings.Contains(out, "| 1 | 2 |") {
		t.Fatalf("markdown malformed:\n%s", out)
	}
	if !strings.Contains(out, "| 3 |  |") {
		t.Fatalf("short row not padded:\n%s", out)
	}
}

func TestFigure(t *testing.T) {
	var f Figure
	f.Title = "prevalence sweep"
	f.XLabel = "prevalence"
	f.YLabel = "metric"
	if err := f.AddSeries("accuracy", []float64{0.1, 0.5}, []float64{0.9, 0.7}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddSeries("bad", []float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched series accepted")
	}
	out := f.String()
	for _, want := range []string{"# figure: prevalence sweep", "## series: accuracy", "0.1\t0.9", "0.5\t0.7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q:\n%s", want, out)
		}
	}
}
