package service

// Live progress streaming. Each running job owns a progress aggregator
// fed by the harness progress seam (vdbench.WithCampaignProgress); the
// aggregator folds per-cell confusion deltas into per-tool incremental
// metric estimates and publishes snapshots to an event hub. Subscribers
// (the SSE handler in http.go) each hold a bounded one-slot mailbox:
// a publish replaces any undelivered snapshot and counts the
// replacement as a drop, so a slow or stalled client coalesces to the
// freshest state and the campaign workers never block on delivery.
// The snapshots are cumulative, which is what makes coalescing sound —
// the latest one subsumes everything dropped before it.

import (
	"sort"
	"sync"

	"github.com/dsn2015/vdbench"
	"github.com/dsn2015/vdbench/internal/telemetry"
)

// ToolProgress is one tool's incremental standing mid-campaign: its
// accumulated confusion matrix and the metric estimates computed from
// it. Estimates converge to the final campaign values as cells finish.
type ToolProgress struct {
	Tool      string            `json:"tool"`
	Confusion vdbench.Confusion `json:"confusion"`
	Precision float64           `json:"precision"`
	Recall    float64           `json:"recall"`
	F1        float64           `json:"f1"`
}

// ProgressUpdate is one cumulative progress snapshot of a running job:
// monotone done/total cell counts plus per-tool incremental estimates.
// Later snapshots subsume earlier ones.
type ProgressUpdate struct {
	Job   string `json:"job"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
	// Failed counts cells that exhausted every execution attempt.
	Failed int            `json:"failed,omitempty"`
	Tools  []ToolProgress `json:"tools"`
}

// progressAggregator folds per-cell progress events into cumulative
// snapshots. One exists per running campaign; the harness calls observe
// from its worker goroutines.
type progressAggregator struct {
	job string
	hub *eventHub

	mu     sync.Mutex
	done   int
	total  int
	failed int
	byTool map[string]vdbench.Confusion
}

func newProgressAggregator(job string, hub *eventHub) *progressAggregator {
	return &progressAggregator{job: job, hub: hub, byTool: map[string]vdbench.Confusion{}}
}

// observe folds one harness progress event and publishes the resulting
// snapshot. It is the installed vdbench.CampaignProgressFunc, so it
// must stay fast and non-blocking: snapshot building is O(tools) and
// publish is a mailbox swap.
func (a *progressAggregator) observe(ev vdbench.CampaignProgressEvent) {
	a.mu.Lock()
	a.done++
	a.total = ev.Total
	if ev.Failed {
		a.failed++
	}
	a.byTool[ev.Tool] = a.byTool[ev.Tool].Add(ev.Confusion)
	snap := a.snapshotLocked()
	a.mu.Unlock()
	a.hub.publish(a.job, snap)
}

// snapshotLocked renders the cumulative state; callers hold a.mu. The
// local done counter (not ev.Done) keeps the stream monotone even
// though harness workers may call observe out of completion order.
func (a *progressAggregator) snapshotLocked() ProgressUpdate {
	names := make([]string, 0, len(a.byTool))
	for name := range a.byTool {
		names = append(names, name)
	}
	sort.Strings(names)
	tools := make([]ToolProgress, len(names))
	for i, name := range names {
		c := a.byTool[name]
		tools[i] = ToolProgress{
			Tool:      name,
			Confusion: c,
			Precision: ratio(c.TP, c.TP+c.FP),
			Recall:    ratio(c.TP, c.TP+c.FN),
		}
		tools[i].F1 = harmonic(tools[i].Precision, tools[i].Recall)
	}
	return ProgressUpdate{Job: a.job, Done: a.done, Total: a.total, Failed: a.failed, Tools: tools}
}

// ratio is n/d with the 0/0 case defined as 0 — undefined estimates
// render as zero rather than as JSON-hostile NaN.
func ratio(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

func harmonic(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// eventSub is one subscriber's mailbox: a single coalescing slot plus a
// wake-up channel. publish never blocks on it; the reader drains the
// freshest snapshot and the count of snapshots that were replaced
// before it got there.
type eventSub struct {
	mu      sync.Mutex
	latest  ProgressUpdate
	pending bool
	dropped uint64

	notify chan struct{} // cap 1; a send is a wake-up, not a hand-off
}

// offer replaces the undelivered snapshot (if any) with next and wakes
// the reader. Returns whether an undelivered snapshot was dropped.
func (sub *eventSub) offer(next ProgressUpdate) bool {
	sub.mu.Lock()
	droppedOne := sub.pending
	if droppedOne {
		sub.dropped++
	}
	sub.latest = next
	sub.pending = true
	sub.mu.Unlock()
	select {
	case sub.notify <- struct{}{}:
	default: // reader already has a wake-up pending
	}
	return droppedOne
}

// take drains the mailbox: the freshest snapshot, the drop count since
// the last take, and whether anything was pending at all.
func (sub *eventSub) take() (ProgressUpdate, uint64, bool) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if !sub.pending {
		return ProgressUpdate{}, 0, false
	}
	u, d := sub.latest, sub.dropped
	sub.pending, sub.dropped = false, 0
	return u, d, true
}

// eventHub routes progress snapshots to per-job subscriber sets.
type eventHub struct {
	mu   sync.Mutex
	subs map[string]map[*eventSub]struct{}

	dropped *telemetry.Counter
}

func newEventHub() *eventHub {
	return &eventHub{subs: map[string]map[*eventSub]struct{}{}}
}

// subscribe attaches a new mailbox to a job's event stream.
func (h *eventHub) subscribe(job string) *eventSub {
	sub := &eventSub{notify: make(chan struct{}, 1)}
	h.mu.Lock()
	set := h.subs[job]
	if set == nil {
		set = map[*eventSub]struct{}{}
		h.subs[job] = set
	}
	set[sub] = struct{}{}
	h.mu.Unlock()
	return sub
}

// unsubscribe detaches a mailbox; idempotent.
func (h *eventHub) unsubscribe(job string, sub *eventSub) {
	h.mu.Lock()
	if set := h.subs[job]; set != nil {
		delete(set, sub)
		if len(set) == 0 {
			delete(h.subs, job)
		}
	}
	h.mu.Unlock()
}

// publish offers the snapshot to every subscriber of the job. Called
// from campaign worker goroutines: the offer is a mutex-guarded slot
// swap, never a blocking send, so workers cannot stall on subscribers.
func (h *eventHub) publish(job string, update ProgressUpdate) {
	h.mu.Lock()
	subs := make([]*eventSub, 0, len(h.subs[job]))
	for sub := range h.subs[job] {
		subs = append(subs, sub)
	}
	dropCounter := h.dropped
	h.mu.Unlock()
	var drops uint64
	for _, sub := range subs {
		if sub.offer(update) {
			drops++
		}
	}
	if dropCounter != nil && drops > 0 {
		dropCounter.Add(drops)
	}
}
