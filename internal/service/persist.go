package service

// This file is the durability layer of the job scheduler: a jobStore
// wrapping the append-only lifecycle journal and the content-addressed
// result store (internal/journal), the gob result codec, and the replay
// that rebuilds scheduler state on start. The division of labour with
// internal/journal: that package knows framing, checksums and fsync;
// this file knows what the records mean — which job states they imply,
// what re-enqueues, and what rehydrates the cache.
//
// Everything rests on the determinism guarantee: an experiment result
// is a pure function of (experiment, config minus operational knobs),
// so a job that was running at crash time can simply re-execute from
// its journaled config and produce a byte-identical result. That is
// why replay never needs partial campaign state — the journal records
// intent, not progress.

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/dsn2015/vdbench"
	"github.com/dsn2015/vdbench/internal/journal"
)

// Journal record types and terminal statuses. The journal package
// treats these as opaque; this is the authoritative vocabulary.
const (
	recSubmitted = "submitted"
	recStarted   = "started"
	recFinished  = "finished"
)

// jobStore bundles the lifecycle journal and the result blob store of
// one data directory. Nil *jobStore (persistence disabled) is valid:
// every method no-ops.
type jobStore struct {
	journal *journal.Journal
	blobs   *journal.Store
}

// openJobStore opens (or initialises) the durable store under dir and
// returns the replayed lifecycle records.
func openJobStore(dir string) (*jobStore, []journal.Record, journal.ReplayStats, error) {
	j, records, stats, err := journal.Open(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		return nil, nil, journal.ReplayStats{}, err
	}
	blobs, err := journal.OpenStore(filepath.Join(dir, "results"))
	if err != nil {
		j.Close()
		return nil, nil, journal.ReplayStats{}, err
	}
	return &jobStore{journal: j, blobs: blobs}, records, stats, nil
}

func (st *jobStore) close() {
	if st != nil {
		st.journal.Close()
	}
}

// encodeResult and decodeResult are the persistence codec for
// experiment results. Gob rather than JSON: the JSON rendering is
// deliberately lossy (table rows are padded to the header width,
// non-finite figure points become null), while the gob form — with
// report.Table's custom GobEncode — round-trips the exact in-memory
// artefacts, so every render format of a recovered result is
// byte-identical to the original's.
func encodeResult(res vdbench.ExperimentResult) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(res); err != nil {
		return nil, fmt.Errorf("service: encoding result: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeResult(data []byte) (vdbench.ExperimentResult, error) {
	var res vdbench.ExperimentResult
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&res); err != nil {
		return vdbench.ExperimentResult{}, fmt.Errorf("service: decoding result: %w", err)
	}
	return res, nil
}

// journalAppend writes one lifecycle record. Append failures are
// deliberately non-fatal to the job (the in-memory run proceeds; only
// durability degrades) but are counted on vd_journal_errors_total so
// operators see a dying disk instead of silent data loss.
func (s *Service) journalAppend(rec journal.Record) {
	if s.store == nil || s.storeOff.Load() {
		return
	}
	if err := s.store.journal.Append(rec); err != nil {
		s.mJournalErrors.Inc()
		return
	}
	s.mJournalRecords.Inc()
}

func (s *Service) journalSubmitted(job *Job) {
	cfg, err := json.Marshal(job.cfg)
	if err != nil {
		s.mJournalErrors.Inc()
		return
	}
	s.journalAppend(journal.Record{
		Type:       recSubmitted,
		Job:        job.id,
		Ord:        job.ord,
		Experiment: job.experiment,
		Key:        job.key,
		Config:     cfg,
	})
}

func (s *Service) journalStarted(job *Job) {
	s.journalAppend(journal.Record{Type: recStarted, Job: job.id})
}

func (s *Service) journalFinished(job *Job, status Status, err error) {
	rec := journal.Record{Type: recFinished, Job: job.id, Status: string(status)}
	if err != nil && status == StatusFailed {
		rec.Error = err.Error()
	}
	s.journalAppend(rec)
}

// persistResult writes a finished job's result to the blob store before
// the finished record is journaled, so a "finished done" record always
// refers to a blob that was durable first. A missing blob at replay
// (crash between the two writes, or a failed Put) just re-enqueues the
// job — determinism makes recomputation equivalent.
func (s *Service) persistResult(key string, res vdbench.ExperimentResult) {
	if s.store == nil || s.storeOff.Load() {
		return
	}
	data, err := encodeResult(res)
	if err != nil {
		s.mJournalErrors.Inc()
		return
	}
	if err := s.store.blobs.Put(key, data); err != nil {
		s.mJournalErrors.Inc()
		return
	}
	s.mBlobsWritten.Inc()
}

// storedResult consults the content-addressed store for key, decoding
// and verifying in one step. Used both by replay (rehydration) and as
// the second-level cache behind the in-memory LRU.
func (s *Service) storedResult(key string) (vdbench.ExperimentResult, bool) {
	if s.store == nil {
		return vdbench.ExperimentResult{}, false
	}
	data, ok := s.store.blobs.Get(key)
	if !ok {
		return vdbench.ExperimentResult{}, false
	}
	res, err := decodeResult(data)
	if err != nil {
		return vdbench.ExperimentResult{}, false
	}
	return res, true
}

// RecoveryStats summarises what replay rebuilt on start; vdserved logs
// it and tests assert on it.
type RecoveryStats struct {
	// Records is the number of intact journal records replayed; Torn
	// counts damaged trailing lines dropped by the CRC guard.
	Records int `json:"records"`
	Torn    int `json:"torn"`
	// Restored counts terminal jobs rebuilt as queryable history;
	// Rehydrated of them had their results loaded back into the LRU
	// cache from the content-addressed store.
	Restored   int `json:"restored"`
	Rehydrated int `json:"rehydrated"`
	// Requeued counts jobs put back on the queue: submitted-but-not-
	// finished at crash time (queued or running), plus finished jobs
	// whose result blob was missing or damaged.
	Requeued int `json:"requeued"`
	// MissingBlobs counts "finished done" records whose blob did not
	// verify; OrphanBlobs counts blob files no journal record explains.
	MissingBlobs int `json:"missing_blobs"`
	OrphanBlobs  int `json:"orphan_blobs"`
}

// Recovery returns the replay summary of this service's start (zero
// when persistence is disabled or the store was empty).
func (s *Service) Recovery() RecoveryStats { return s.recovery }

// replayState is the folded view of one job's journal records.
type replayState struct {
	sub      journal.Record
	finished bool
	status   Status
	errMsg   string
}

// foldRecords collapses the record stream into per-job end states,
// returned in submission (ordinal) order. Later records win: a job
// re-executed after an earlier recovery may carry several started and
// finished records, and only the last terminal state is current.
func foldRecords(records []journal.Record) []*replayState {
	byID := map[string]*replayState{}
	var order []*replayState
	for _, rec := range records {
		switch rec.Type {
		case recSubmitted:
			if byID[rec.Job] != nil {
				continue // duplicate submitted record; first wins
			}
			st := &replayState{sub: rec}
			byID[rec.Job] = st
			order = append(order, st)
		case recFinished:
			if st := byID[rec.Job]; st != nil {
				st.finished = true
				st.status = Status(rec.Status)
				st.errMsg = rec.Error
			}
		case recStarted:
			// Start marks carry no replay decision: an unfinished job
			// re-executes whether or not it had started. They stay in the
			// journal as forensic breadcrumbs.
		}
	}
	sort.SliceStable(order, func(i, k int) bool { return order[i].sub.Ord < order[k].sub.Ord })
	return order
}

// replayLocked rebuilds scheduler state from the journal: terminal jobs
// become queryable history (done jobs rehydrate the cache from the blob
// store), unfinished jobs re-enqueue in submission order, and job IDs
// and ordinals continue where the previous process stopped. Called from
// newService before the queue exists or any worker runs, so no locking
// is needed despite the name — it owns the whole Service.
//
// The returned jobs are the re-enqueue backlog in original order.
func (s *Service) replayLocked(records []journal.Record, stats journal.ReplayStats) []*Job {
	s.recovery.Records = stats.Records
	s.recovery.Torn = stats.Torn
	s.mJournalReplayed.Add(uint64(stats.Records))
	s.mJournalTorn.Add(uint64(stats.Torn))

	referenced := map[string]bool{}
	var backlog []*Job
	for _, st := range foldRecords(records) {
		rec := st.sub
		referenced[rec.Key] = true
		var cfg vdbench.ExperimentConfig
		if err := json.Unmarshal(rec.Config, &cfg); err != nil {
			// A config that does not parse cannot re-execute; surface the
			// job as failed rather than silently dropping it.
			st.finished, st.status = true, StatusFailed
			st.errMsg = fmt.Sprintf("recovery: journaled config unreadable: %v", err)
		}
		job := s.restoredJob(rec, cfg)

		if st.finished && st.status == StatusDone {
			if res, ok := s.storedResult(rec.Key); ok {
				size := resultSize(res)
				s.cache.put(rec.Key, res, size)
				s.recovery.Rehydrated++
				s.completeRestored(job, StatusDone, res, nil)
				continue
			}
			// Finished per the journal, result lost or damaged: recompute.
			// Determinism makes the re-run byte-identical to what the blob
			// held, so requeueing is full recovery, not degradation.
			s.recovery.MissingBlobs++
			s.mJournalMissingBlobs.Inc()
			backlog = append(backlog, job)
			continue
		}
		if st.finished {
			switch st.status {
			case StatusFailed:
				s.completeRestored(job, StatusFailed, vdbench.ExperimentResult{}, errors.New(st.errMsg))
			default: // canceled (or an unknown status from the future: treat as canceled)
				s.completeRestored(job, StatusCanceled, vdbench.ExperimentResult{}, context.Canceled)
			}
			continue
		}
		backlog = append(backlog, job)
	}

	// Blobs no journal record explains: a journal lost to damage, or
	// manual file drops. They stay on disk — the lazy blob lookup can
	// still serve them to a future submission with the same key — but
	// they are counted so operators notice the mismatch.
	if keys, err := s.store.blobs.Keys(); err == nil {
		for _, k := range keys {
			if !referenced[k] {
				s.recovery.OrphanBlobs++
				s.mJournalOrphanBlobs.Inc()
			}
		}
	}

	s.recovery.Requeued = len(backlog)
	for _, job := range backlog {
		s.seq++
		job.seq = s.seq
		s.jobs[job.id] = job
		if s.inflight[job.key] == nil {
			s.inflight[job.key] = job
		}
	}
	return backlog
}

// restoredJob rebuilds a Job from its submitted record, advancing the
// ID and ordinal counters past every replayed value so new submissions
// never collide with journaled ones.
func (s *Service) restoredJob(rec journal.Record, cfg vdbench.ExperimentConfig) *Job {
	if n, ok := numericJobID(rec.Job); ok && n > s.nextID {
		s.nextID = n
	}
	if rec.Ord > s.nextOrd {
		s.nextOrd = rec.Ord
	}
	ctx, cancel := context.WithCancel(s.rootCtx)
	return &Job{
		id:         rec.Job,
		key:        rec.Key,
		experiment: rec.Experiment,
		cfg:        cfg,
		ord:        rec.Ord,
		ctx:        ctx,
		cancel:     cancel,
		done:       make(chan struct{}),
		status:     StatusQueued,
	}
}

// completeRestored publishes a replayed terminal job into the history.
func (s *Service) completeRestored(job *Job, status Status, res vdbench.ExperimentResult, err error) {
	job.status = status
	job.result = res
	job.err = err
	job.cached = status == StatusDone // served from the store, not a fresh campaign
	close(job.done)
	job.cancel()
	s.recovery.Restored++
	s.rememberLocked(job)
}

// numericJobID extracts the counter from a "j-%06d" job ID.
func numericJobID(id string) (uint64, bool) {
	rest, ok := strings.CutPrefix(id, "j-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}
