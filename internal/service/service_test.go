package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/dsn2015/vdbench"
)

// waitDeadline bounds every blocking wait in the tests.
const waitDeadline = 120 * time.Second

func quickCfg() vdbench.ExperimentConfig { return vdbench.QuickExperimentConfig() }

func mustWait(t *testing.T, job *Job) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), waitDeadline)
	defer cancel()
	if err := job.Wait(ctx); err != nil {
		t.Fatalf("job %s did not finish: %v", job.ID(), err)
	}
}

// gate is a runner test seam: it blocks every execution until release is
// closed (or the job context fires, mirroring a real campaign's abort)
// and counts how many executions actually happened.
type gate struct {
	started chan struct{} // buffered; one tick per execution start
	release chan struct{}
	once    sync.Once
	mu      sync.Mutex
	runs    int
}

func newGate() *gate {
	return &gate{started: make(chan struct{}, 64), release: make(chan struct{})}
}

// open releases every gated execution; safe to call more than once.
func (g *gate) open() { g.once.Do(func() { close(g.release) }) }

func (g *gate) run(ctx context.Context, id string, _ vdbench.ExperimentConfig) (vdbench.ExperimentResult, error) {
	g.mu.Lock()
	g.runs++
	g.mu.Unlock()
	g.started <- struct{}{}
	select {
	case <-g.release:
		return vdbench.ExperimentResult{ID: id, Title: "gated stub"}, nil
	case <-ctx.Done():
		return vdbench.ExperimentResult{}, ctx.Err()
	}
}

func (g *gate) count() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.runs
}

func (g *gate) waitStarted(t *testing.T) {
	t.Helper()
	select {
	case <-g.started:
	case <-time.After(waitDeadline):
		t.Fatal("no execution started")
	}
}

func counterValue(s *Service, name string) uint64 {
	return s.Metrics().Counter(name, "").Value()
}

func TestSubmitRunsExperiment(t *testing.T) {
	svc := mustNew(t, Options{Workers: 2})
	defer svc.Close()
	job, err := svc.Submit("e1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	mustWait(t, job)
	res, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "e1" || len(res.Tables) == 0 {
		t.Fatalf("unexpected result: id=%q tables=%d", res.ID, len(res.Tables))
	}
	st, ok := svc.Status(job.ID())
	if !ok || st.Status != StatusDone || st.Cached {
		t.Fatalf("status = %+v", st)
	}
}

func TestSubmitErrors(t *testing.T) {
	svc := mustNew(t, Options{Workers: 1})
	defer svc.Close()
	if _, err := svc.Submit("e99", quickCfg()); !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("unknown experiment error = %v", err)
	}
	bad := quickCfg()
	bad.Services = -5
	if _, err := svc.Submit("e1", bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestCacheHitByteIdentical is the core memoisation guarantee: a warm
// submission must not re-run the campaign, and every rendered format of
// the cached result must be byte-identical to the cold run.
func TestCacheHitByteIdentical(t *testing.T) {
	svc := mustNew(t, Options{Workers: 1})
	defer svc.Close()
	cold, err := svc.Submit("e3", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	mustWait(t, cold)
	coldRes, err := cold.Result()
	if err != nil {
		t.Fatal(err)
	}
	campaigns := svc.Metrics().Histogram("vd_campaign_seconds", "").Count()

	warm, err := svc.Submit("e3", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	mustWait(t, warm) // already done: done closed at submit time
	st, _ := svc.Status(warm.ID())
	if st.Status != StatusDone || !st.Cached {
		t.Fatalf("warm status = %+v, want done+cached", st)
	}
	if got := counterValue(svc, "vd_cache_hits_total"); got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}
	if got := svc.Metrics().Histogram("vd_campaign_seconds", "").Count(); got != campaigns {
		t.Fatalf("warm submission ran a campaign (%d -> %d executions)", campaigns, got)
	}
	warmRes, err := warm.Result()
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range vdbench.ResultFormats() {
		a, err := coldRes.Render(format)
		if err != nil {
			t.Fatal(err)
		}
		b, err := warmRes.Render(format)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("format %s: cache hit is not byte-identical to the cold run", format)
		}
	}
}

// TestCacheKeyExcludesWorkers: runs differing only in campaign worker
// count share one cache entry, because the output is workers-invariant.
func TestCacheKeyExcludesWorkers(t *testing.T) {
	svc := mustNew(t, Options{Workers: 1})
	defer svc.Close()
	cfg1 := quickCfg()
	cfg1.Workers = 1
	cfg4 := quickCfg()
	cfg4.Workers = 4
	j1, err := svc.Submit("e1", cfg1)
	if err != nil {
		t.Fatal(err)
	}
	mustWait(t, j1)
	j4, err := svc.Submit("e1", cfg4)
	if err != nil {
		t.Fatal(err)
	}
	if j1.Key() != j4.Key() {
		t.Fatalf("cache keys differ across worker counts: %s vs %s", j1.Key(), j4.Key())
	}
	st, _ := svc.Status(j4.ID())
	if !st.Cached {
		t.Fatal("workers-only change missed the cache")
	}
}

// TestSingleflightCollapses: N concurrent identical submissions execute
// exactly one campaign and share one job.
func TestSingleflightCollapses(t *testing.T) {
	g := newGate()
	svc := mustNewService(t, Options{Workers: 2}, g.run)
	defer func() { g.open(); svc.Close() }()

	const n = 8
	jobs := make([]*Job, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jobs[i], errs[i] = svc.Submit("e3", quickCfg())
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if jobs[i] != jobs[0] {
			t.Fatalf("submission %d got a different job (%s vs %s)", i, jobs[i].ID(), jobs[0].ID())
		}
	}
	g.waitStarted(t)
	g.open()
	mustWait(t, jobs[0])
	if g.count() != 1 {
		t.Fatalf("%d identical submissions executed %d campaigns, want 1", n, g.count())
	}
	if got := counterValue(svc, "vd_singleflight_collapsed_total"); got != n-1 {
		t.Fatalf("collapsed counter = %d, want %d", got, n-1)
	}
}

func TestQueuePositions(t *testing.T) {
	g := newGate()
	svc := mustNewService(t, Options{Workers: 1}, g.run)
	defer func() { g.open(); svc.Close() }()

	submit := func(seed uint64) *Job {
		cfg := quickCfg()
		cfg.Seed = seed
		job, err := svc.Submit("e1", cfg)
		if err != nil {
			t.Fatal(err)
		}
		return job
	}
	j1 := submit(1)
	g.waitStarted(t) // j1 is running
	j2 := submit(2)
	j3 := submit(3)

	if st, _ := svc.Status(j1.ID()); st.Status != StatusRunning || st.Position != 0 {
		t.Fatalf("j1 status = %+v", st)
	}
	if st, _ := svc.Status(j2.ID()); st.Status != StatusQueued || st.Position != 1 {
		t.Fatalf("j2 status = %+v, want queued position 1", st)
	}
	if st, _ := svc.Status(j3.ID()); st.Status != StatusQueued || st.Position != 2 {
		t.Fatalf("j3 status = %+v, want queued position 2", st)
	}
	if depth := svc.Metrics().Gauge("vd_queue_depth", "").Value(); depth != 2 {
		t.Fatalf("queue depth = %d, want 2", depth)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	g := newGate()
	svc := mustNewService(t, Options{Workers: 1}, g.run)
	defer func() { g.open(); svc.Close() }()

	if _, err := svc.Submit("e1", quickCfg()); err != nil {
		t.Fatal(err) // occupies the single worker
	}
	g.waitStarted(t)
	cfg2 := quickCfg()
	cfg2.Seed = 2
	j2, err := svc.Submit("e1", cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !svc.Cancel(j2.ID()) {
		t.Fatal("queued job not cancelable")
	}
	mustWait(t, j2)
	if _, err := j2.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled job result error = %v", err)
	}
	// The canceled job left the singleflight table: an identical
	// submission gets a fresh job rather than the canceled one.
	j2b, err := svc.Submit("e1", cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if j2b == j2 {
		t.Fatal("new submission collapsed onto a canceled job")
	}
}

// TestCancelRunningJob: Cancel on a running job fires its context, the
// campaign aborts, the worker publishes the canceled state and the
// worker slot frees for the next job.
func TestCancelRunningJob(t *testing.T) {
	g := newGate()
	svc := mustNewService(t, Options{Workers: 1}, g.run)
	defer func() { g.open(); svc.Close() }()

	j1, err := svc.Submit("e1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	g.waitStarted(t)
	if st, _ := svc.Status(j1.ID()); st.Status != StatusRunning {
		t.Fatalf("j1 status = %+v, want running", st)
	}
	if !svc.Cancel(j1.ID()) {
		t.Fatal("running job not cancelable")
	}
	mustWait(t, j1)
	if _, err := j1.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled running job result error = %v", err)
	}
	if st, _ := svc.Status(j1.ID()); st.Status != StatusCanceled {
		t.Fatalf("j1 status = %+v, want canceled", st)
	}
	// The slot is free and the doomed job left the singleflight table: an
	// identical submission starts a fresh campaign.
	j1b, err := svc.Submit("e1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if j1b == j1 {
		t.Fatal("new submission collapsed onto the canceled job")
	}
	g.waitStarted(t)
	// The worker finished j1's bookkeeping before dequeuing j1b, so the
	// counters are settled by now.
	if got := counterValue(svc, "vd_jobs_canceled_total"); got != 1 {
		t.Fatalf("canceled counter = %d, want 1", got)
	}
	if got := counterValue(svc, "vd_jobs_failed_total"); got != 0 {
		t.Fatalf("failed counter = %d, want 0 (cancellation is not a failure)", got)
	}
	g.open()
	mustWait(t, j1b)
	if res, err := j1b.Result(); err != nil || res.Title != "gated stub" {
		t.Fatalf("fresh job after cancel: res=%+v err=%v", res, err)
	}
	if svc.Cancel(j1b.ID()) {
		t.Fatal("terminal job reported cancelable")
	}
}

// TestShutdownAbortsRunningAfterBudget: Shutdown with an expired drain
// budget cancels the running campaign instead of waiting for it.
func TestShutdownAbortsRunningAfterBudget(t *testing.T) {
	g := newGate()
	svc := mustNewService(t, Options{Workers: 1}, g.run)
	defer g.open()

	j1, err := svc.Submit("e1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	g.waitStarted(t)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // budget already spent: abort immediately
	svc.Shutdown(ctx)

	if _, err := j1.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("running job after bounded shutdown: %v, want canceled", err)
	}
	if _, err := svc.Submit("e1", quickCfg()); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Shutdown = %v, want ErrClosed", err)
	}
}

func TestQueueFull(t *testing.T) {
	g := newGate()
	svc := mustNewService(t, Options{Workers: 1, QueueCap: 1}, g.run)
	defer func() { g.open(); svc.Close() }()

	submit := func(seed uint64) (*Job, error) {
		cfg := quickCfg()
		cfg.Seed = seed
		return svc.Submit("e1", cfg)
	}
	if _, err := submit(1); err != nil {
		t.Fatal(err)
	}
	g.waitStarted(t) // worker busy; queue empty again
	if _, err := submit(2); err != nil {
		t.Fatal(err) // fills the queue
	}
	if _, err := submit(3); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull queue error = %v", err)
	}
}

// TestCloseDrainsRunningAndCancelsQueued is the graceful-shutdown
// guarantee: Close waits for the running campaign to finish and cancels
// jobs that never started.
func TestCloseDrainsRunningAndCancelsQueued(t *testing.T) {
	g := newGate()
	svc := mustNewService(t, Options{Workers: 1}, g.run)

	j1, err := svc.Submit("e1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	g.waitStarted(t)
	cfg2 := quickCfg()
	cfg2.Seed = 2
	j2, err := svc.Submit("e1", cfg2)
	if err != nil {
		t.Fatal(err)
	}

	released := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(released)
		g.open()
	}()
	svc.Close() // must block until the running campaign drains
	select {
	case <-released:
	default:
		t.Fatal("Close returned before the running campaign finished")
	}
	if res, err := j1.Result(); err != nil || res.Title != "gated stub" {
		t.Fatalf("running job was not drained: res=%+v err=%v", res, err)
	}
	if _, err := j2.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued job after Close: %v, want canceled", err)
	}
	if _, err := svc.Submit("e1", quickCfg()); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close = %v, want ErrClosed", err)
	}
	svc.Close() // idempotent
}

func TestJobHistoryBounded(t *testing.T) {
	instant := func(_ context.Context, id string, _ vdbench.ExperimentConfig) (vdbench.ExperimentResult, error) {
		return vdbench.ExperimentResult{ID: id}, nil
	}
	svc := mustNewService(t, Options{Workers: 1, JobHistory: 2}, instant)
	defer svc.Close()
	var ids []string
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := quickCfg()
		cfg.Seed = seed
		job, err := svc.Submit("e1", cfg)
		if err != nil {
			t.Fatal(err)
		}
		mustWait(t, job)
		ids = append(ids, job.ID())
	}
	if _, ok := svc.Status(ids[0]); ok {
		t.Fatal("oldest terminal job still queryable beyond JobHistory")
	}
	for _, id := range ids[1:] {
		if _, ok := svc.Status(id); !ok {
			t.Fatalf("recent job %s forgotten", id)
		}
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(100)
	res := func(id string) vdbench.ExperimentResult { return vdbench.ExperimentResult{ID: id} }
	if ev := c.put("a", res("a"), 40); ev != 0 {
		t.Fatalf("evicted %d on first put", ev)
	}
	c.put("b", res("b"), 40)
	if _, ok := c.get("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	if ev := c.put("c", res("c"), 40); ev != 1 {
		t.Fatalf("evicted %d, want 1", ev)
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	entries, bytes := c.stats()
	if entries != 2 || bytes != 80 {
		t.Fatalf("stats = %d entries / %d bytes, want 2 / 80", entries, bytes)
	}
	// Oversized entries are refused outright.
	if ev := c.put("huge", res("huge"), 1000); ev != 0 {
		t.Fatalf("oversized put evicted %d", ev)
	}
	if _, ok := c.get("huge"); ok {
		t.Fatal("entry larger than the whole budget was stored")
	}
	// A disabled cache (budget <= 0) never stores.
	d := newResultCache(-1)
	d.put("x", res("x"), 1)
	if _, ok := d.get("x"); ok {
		t.Fatal("disabled cache stored an entry")
	}
}
