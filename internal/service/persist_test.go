package service

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"github.com/dsn2015/vdbench"
	"github.com/dsn2015/vdbench/internal/journal"
)

// mustNew and mustNewService unwrap the construction error for tests
// that do not exercise store-open failures.
func mustNew(t testing.TB, opts Options) *Service {
	t.Helper()
	svc, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return svc
}

func mustNewService(t testing.TB, opts Options, run runner) *Service {
	t.Helper()
	svc, err := newService(opts, run)
	if err != nil {
		t.Fatalf("newService: %v", err)
	}
	return svc
}

// crash abandons a service the way SIGKILL would, as far as the durable
// store can tell: the store is detached first so neither the canceled
// jobs nor the store close are recorded, then the service is torn down
// with an expired drain budget to free its workers.
func crash(svc *Service) {
	svc.detachStore()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	svc.Shutdown(ctx)
}

// TestRecoveryMidRunByteIdentity is the kill-and-restart acceptance
// test at the service level: a job interrupted mid-campaign is
// re-executed from its journaled config on restart and renders byte-
// identical to an uninterrupted run — determinism makes recovery exact,
// not approximate.
func TestRecoveryMidRunByteIdentity(t *testing.T) {
	dir := t.TempDir()
	cfg := quickCfg()

	g := newGate()
	first := mustNewService(t, Options{Workers: 1, DataDir: dir}, g.run)
	job, err := first.Submit("e1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.waitStarted(t) // the campaign is running when the "crash" hits
	crash(first)

	second := mustNew(t, Options{Workers: 1, DataDir: dir})
	defer second.Close()
	rec := second.Recovery()
	if rec.Requeued != 1 || rec.Restored != 0 {
		t.Fatalf("recovery = %+v, want exactly the interrupted job requeued", rec)
	}
	recovered, ok := second.Job(job.ID())
	if !ok {
		t.Fatalf("job %s lost across restart", job.ID())
	}
	if recovered.Key() != job.Key() {
		t.Fatalf("journaled config round-trip changed the cache key: %s != %s", recovered.Key(), job.Key())
	}
	mustWait(t, recovered)
	res, err := recovered.Result()
	if err != nil {
		t.Fatal(err)
	}

	direct, err := vdbench.RunExperiment("e1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"text", "json", "csv"} {
		got, err := res.Render(format)
		if err != nil {
			t.Fatal(err)
		}
		want, err := direct.Render(format)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("recovered %s render diverges from uninterrupted run", format)
		}
	}
}

// TestWarmRestartServesCachedResults proves a restart serves journaled
// results without re-executing anything: the successor uses a gated
// runner that would block forever if any campaign ran.
func TestWarmRestartServesCachedResults(t *testing.T) {
	dir := t.TempDir()
	cfg := quickCfg()

	first := mustNew(t, Options{Workers: 1, DataDir: dir})
	job, err := first.Submit("e1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustWait(t, job)
	res, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	want, err := res.Render("text")
	if err != nil {
		t.Fatal(err)
	}
	first.Close()

	g := newGate()
	second := mustNewService(t, Options{Workers: 1, DataDir: dir}, g.run)
	defer second.Close()
	rec := second.Recovery()
	if rec.Restored != 1 || rec.Rehydrated != 1 || rec.Requeued != 0 {
		t.Fatalf("recovery = %+v, want the done job restored and rehydrated", rec)
	}
	if counterValue(second, "vd_journal_replayed_total") == 0 {
		t.Fatal("vd_journal_replayed_total did not count the replay")
	}

	// The original job is queryable with its result intact.
	old, ok := second.Job(job.ID())
	if !ok {
		t.Fatalf("job %s lost across restart", job.ID())
	}
	oldRes, err := old.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := oldRes.Render("text"); got != want {
		t.Fatal("restored job's result diverges from the original")
	}

	// A fresh identical submission is a cache hit — no campaign runs.
	again, err := second.Submit("e1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustWait(t, again)
	st, _ := second.Status(again.ID())
	if st.Status != StatusDone || !st.Cached {
		t.Fatalf("warm submission status = %+v, want cached done", st)
	}
	if counterValue(second, "vd_cache_hits_total") != 1 {
		t.Fatalf("vd_cache_hits_total = %d, want 1", counterValue(second, "vd_cache_hits_total"))
	}
	if g.count() != 0 {
		t.Fatalf("warm restart executed %d campaigns, want 0", g.count())
	}
}

// TestRecoveryTornFinalRecord: a torn trailing journal line (the crash
// landing mid-append) is dropped by the CRC guard and the job whose
// finished record it was re-executes.
func TestRecoveryTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	g := newGate()
	first := mustNewService(t, Options{Workers: 1, DataDir: dir}, g.run)
	job, err := first.Submit("e1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	g.waitStarted(t)
	crash(first)

	// Simulate the crash tearing a final record mid-write.
	path := filepath.Join(dir, "journal.jsonl")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`v1 00000000 {"type":"finis`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	g2 := newGate()
	second := mustNewService(t, Options{Workers: 1, DataDir: dir}, g2.run)
	defer second.Close()
	rec := second.Recovery()
	if rec.Torn != 1 {
		t.Fatalf("recovery = %+v, want exactly one torn record", rec)
	}
	if rec.Requeued != 1 {
		t.Fatalf("recovery = %+v, want the interrupted job requeued", rec)
	}
	if counterValue(second, "vd_journal_torn_records_total") != 1 {
		t.Fatal("vd_journal_torn_records_total did not count the torn line")
	}
	g2.waitStarted(t) // the requeued job re-executes
	g2.open()
	recovered, _ := second.Job(job.ID())
	mustWait(t, recovered)
}

// TestRecoveryMissingBlob: a "finished done" journal record whose
// result file is gone (the vice-versa orphan case) re-enqueues the job;
// determinism makes the recomputation equivalent to the lost blob.
func TestRecoveryMissingBlob(t *testing.T) {
	dir := t.TempDir()
	first := mustNew(t, Options{Workers: 1, DataDir: dir})
	job, err := first.Submit("e1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	mustWait(t, job)
	first.Close()
	if err := os.Remove(filepath.Join(dir, "results", job.Key()+".bin")); err != nil {
		t.Fatal(err)
	}

	g := newGate()
	second := mustNewService(t, Options{Workers: 1, DataDir: dir}, g.run)
	defer second.Close()
	rec := second.Recovery()
	if rec.MissingBlobs != 1 || rec.Requeued != 1 || rec.Rehydrated != 0 {
		t.Fatalf("recovery = %+v, want the blob-less done job requeued", rec)
	}
	g.waitStarted(t)
	g.open()
	recovered, _ := second.Job(job.ID())
	mustWait(t, recovered)
	if _, err := recovered.Result(); err != nil {
		t.Fatalf("recomputed job failed: %v", err)
	}
}

// TestRecoveryOrphanBlobServesLazily: a result file no journal record
// explains is counted as an orphan but stays usable — the content
// address alone proves what it is, so a matching submission is answered
// from it without a campaign.
func TestRecoveryOrphanBlobServesLazily(t *testing.T) {
	dir := t.TempDir()
	cfg := quickCfg()
	key := vdbench.ExperimentCacheKey("e1", cfg)
	planted := vdbench.ExperimentResult{ID: "e1", Title: "planted orphan"}
	data, err := encodeResult(planted)
	if err != nil {
		t.Fatal(err)
	}
	store, err := journal.OpenStore(filepath.Join(dir, "results"))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(key, data); err != nil {
		t.Fatal(err)
	}

	g := newGate()
	svc := mustNewService(t, Options{Workers: 1, DataDir: dir}, g.run)
	defer svc.Close()
	if rec := svc.Recovery(); rec.OrphanBlobs != 1 {
		t.Fatalf("recovery = %+v, want one orphan blob", rec)
	}
	if counterValue(svc, "vd_journal_orphan_blobs_total") != 1 {
		t.Fatal("vd_journal_orphan_blobs_total did not count the orphan")
	}

	job, err := svc.Submit("e1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustWait(t, job)
	res, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Title != "planted orphan" {
		t.Fatalf("result title = %q, want the planted blob", res.Title)
	}
	if g.count() != 0 {
		t.Fatalf("orphan hit still executed %d campaigns", g.count())
	}
	if counterValue(svc, "vd_journal_blob_hits_total") != 1 {
		t.Fatal("vd_journal_blob_hits_total did not count the lazy hit")
	}
}

// TestRecoveryCanceledWhileRunning: a job canceled mid-campaign is
// journaled canceled and replays as canceled — not re-executed.
func TestRecoveryCanceledWhileRunning(t *testing.T) {
	dir := t.TempDir()
	g := newGate()
	first := mustNewService(t, Options{Workers: 1, DataDir: dir}, g.run)
	job, err := first.Submit("e1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	g.waitStarted(t)
	if !first.Cancel(job.ID()) {
		t.Fatal("Cancel refused a running job")
	}
	mustWait(t, job)
	first.Close()

	g2 := newGate()
	second := mustNewService(t, Options{Workers: 1, DataDir: dir}, g2.run)
	defer second.Close()
	rec := second.Recovery()
	if rec.Restored != 1 || rec.Requeued != 0 {
		t.Fatalf("recovery = %+v, want the canceled job restored terminally", rec)
	}
	st, ok := second.Status(job.ID())
	if !ok || st.Status != StatusCanceled {
		t.Fatalf("status after replay = %+v, want canceled", st)
	}
	if g2.count() != 0 {
		t.Fatalf("canceled job re-executed %d times", g2.count())
	}
}

// TestResultGobRoundTrip pins the persistence codec on a real
// experiment result: every render format survives the gob round trip
// byte-identically (the JSON codec could not — rows pad, NaN nulls).
func TestResultGobRoundTrip(t *testing.T) {
	res, err := vdbench.RunExperiment("e4", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	data, err := encodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"text", "json", "csv", "markdown"} {
		want, err := res.Render(format)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Render(format)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s render changed across the gob round trip", format)
		}
	}
}
