package service

import (
	"container/list"
	"sync"

	"github.com/dsn2015/vdbench"
)

// resultCache is a byte-budgeted LRU over experiment results, keyed by
// the content address from vdbench.ExperimentCacheKey. Because every
// experiment is a pure function of its key (Workers excluded — output is
// workers-invariant), a hit is provably equivalent to re-running the
// campaign, so the cache trades memory for campaign latency with no
// correctness risk.
type resultCache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List               // front = most recently used
	items  map[string]*list.Element // key -> element holding *cacheEntry
}

type cacheEntry struct {
	key    string
	result vdbench.ExperimentResult
	bytes  int64
}

// newResultCache builds a cache with the given byte budget. A budget
// <= 0 disables caching (every get misses, every put is dropped).
func newResultCache(budget int64) *resultCache {
	return &resultCache{
		budget: budget,
		ll:     list.New(),
		items:  map[string]*list.Element{},
	}
}

// get returns the cached result for key, refreshing its recency.
func (c *resultCache) get(key string) (vdbench.ExperimentResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return vdbench.ExperimentResult{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).result, true
}

// put stores a result under key, charging size bytes against the budget
// and evicting least-recently-used entries until the cache fits. Entries
// larger than the whole budget are not stored. It returns the number of
// evicted entries.
func (c *resultCache) put(key string, res vdbench.ExperimentResult, size int64) (evicted int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget {
		return 0
	}
	if el, ok := c.items[key]; ok {
		// Same key means same content; just refresh recency and the
		// accounted size (renders are deterministic, so sizes agree —
		// this is belt and braces).
		c.bytes += size - el.Value.(*cacheEntry).bytes
		el.Value.(*cacheEntry).bytes = size
		c.ll.MoveToFront(el)
		return 0
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, result: res, bytes: size})
	c.bytes += size
	for c.bytes > c.budget {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.items, e.key)
		c.bytes -= e.bytes
		evicted++
	}
	return evicted
}

// stats returns the entry count and accounted bytes.
func (c *resultCache) stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items), c.bytes
}
