package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/dsn2015/vdbench"
)

// maxBodyBytes bounds job-submission bodies; experiment requests are a
// handful of scalar overrides.
const maxBodyBytes = 1 << 20

// maxResultWait bounds how long a result request may long-poll for a job
// to finish, independent of the client's patience.
const maxResultWait = 10 * time.Minute

// SubmitRequest is the POST /v1/jobs body: an experiment ID plus
// optional overrides of the service's base configuration (mirroring the
// cmd/vdbench flags). Workers tunes campaign parallelism only — it is
// excluded from the cache key because the output is workers-invariant.
type SubmitRequest struct {
	Experiment string  `json:"experiment"`
	Quick      bool    `json:"quick,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	Services   int     `json:"services,omitempty"`
	Prevalence float64 `json:"prevalence,omitempty"`
	Workers    int     `json:"workers,omitempty"`
}

// config resolves the request against the service's defaults.
func (r SubmitRequest) config(base vdbench.ExperimentConfig) vdbench.ExperimentConfig {
	cfg := base
	if r.Quick {
		cfg = vdbench.QuickExperimentConfig()
	}
	if r.Seed != 0 {
		cfg.Seed = r.Seed
	}
	if r.Services != 0 {
		cfg.Services = r.Services
	}
	if r.Prevalence != 0 {
		cfg.Prevalence = r.Prevalence
	}
	if r.Workers != 0 {
		cfg.Workers = r.Workers
	}
	return cfg
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit an experiment job
//	GET    /v1/jobs/{id}        job status and queue position
//	GET    /v1/jobs/{id}/result rendered result (?format=text|csv|markdown|json, optional ?wait=30s)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/experiments      experiment catalogue
//	GET    /healthz/live        process liveness
//	GET    /healthz/ready       readiness; 503 once draining (BeginDrain/Shutdown)
//	GET    /healthz             compatibility alias for liveness
//	GET    /metrics             telemetry snapshot
//
// Liveness and readiness split on drain: a draining process is still
// alive (don't restart it) but must not receive new work (stop routing
// to it). Coordinators and load balancers should check readiness;
// process supervisors, liveness.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /healthz/live", s.handleHealthz)
	mux.HandleFunc("GET /healthz/ready", s.handleReady)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)

	requests := s.reg.Counter("vd_http_requests_total", "HTTP requests served")
	inflight := s.reg.Gauge("vd_http_inflight_requests", "HTTP requests currently being served")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		inflight.Add(1)
		defer inflight.Add(-1)
		mux.ServeHTTP(w, r)
	})
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is out; nothing useful to do on error
}

// errorBody is the uniform error response shape.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed job request: %v", err)
		return
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "malformed job request: trailing data after JSON object")
		return
	}
	job, err := s.Submit(req.Experiment, req.config(s.opts.BaseConfig))
	switch {
	case err == nil:
	case errors.Is(err, ErrUnknownExperiment):
		writeError(w, http.StatusNotFound, "%v", err)
		return
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st, _ := s.Status(job.ID())
	w.Header().Set("Location", "/v1/jobs/"+job.ID())
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "text"
	}
	contentType, ok := formatContentTypes()[format]
	if !ok {
		writeError(w, http.StatusBadRequest, "unknown format %q (want text, csv, markdown or json)", format)
		return
	}
	if waitSpec := r.URL.Query().Get("wait"); waitSpec != "" {
		d, err := time.ParseDuration(waitSpec)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, "bad wait duration %q", waitSpec)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), min(d, maxResultWait))
		defer cancel()
		_ = job.Wait(ctx) // on timeout we fall through to the not-done reply
	}
	res, err := job.Result()
	switch {
	case errors.Is(err, ErrNotDone):
		st, _ := s.Status(id)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusAccepted, st)
		return
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusGone, "job %s was canceled", id)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "job %s failed: %v", id, err)
		return
	}
	body, err := res.Render(format)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "render: %v", err)
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, body)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Job(id); !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if !s.Cancel(id) {
		writeError(w, http.StatusConflict, "job %s already finished (only queued and running jobs can be canceled)", id)
		return
	}
	st, _ := s.Status(id)
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Experiments []vdbench.ExperimentInfo `json:"experiments"`
		Formats     []string                 `json:"formats"`
	}{vdbench.Experiments(), vdbench.ResultFormats()})
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
}

func (s *Service) handleReady(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, "draining\n")
		return
	}
	_, _ = io.WriteString(w, "ok\n")
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = io.WriteString(w, s.reg.Snapshot())
}

// formatContentTypes maps render formats to response content types.
func formatContentTypes() map[string]string {
	return map[string]string{
		"text":     "text/plain; charset=utf-8",
		"csv":      "text/csv; charset=utf-8",
		"markdown": "text/markdown; charset=utf-8",
		"json":     "application/json",
	}
}
