package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/dsn2015/vdbench"
)

// maxBodyBytes bounds job-submission bodies; experiment requests are a
// handful of scalar overrides.
const maxBodyBytes = 1 << 20

// maxResultWait bounds how long a result request may long-poll for a job
// to finish, independent of the client's patience.
const maxResultWait = 10 * time.Minute

// Stable machine-readable error codes. These are API surface: clients
// dispatch on them, so existing codes never change meaning and removals
// are breaking. The golden API-surface test pins the set.
const (
	codeMalformedRequest  = "malformed_request"  // body is not the documented JSON shape
	codeBadRequest        = "bad_request"        // a parameter value is out of range or unparseable
	codeUnknownExperiment = "unknown_experiment" // experiment ID not in the catalogue
	codeUnknownJob        = "unknown_job"        // job ID never existed or was forgotten
	codeUnknownFormat     = "unknown_format"     // result format not in vdbench.ResultFormats
	codeQueueFull         = "queue_full"         // bounded job queue at capacity; retry later
	codeDraining          = "draining"           // service is shutting down; no new work
	codeNotDone           = "not_done"           // result requested before the job finished
	codeCanceled          = "canceled"           // job was canceled; no result exists
	codeNotCancelable     = "not_cancelable"     // DELETE on an already-terminal job
	codeJobFailed         = "job_failed"         // campaign failed; message carries the cause
	codeRenderFailed      = "render_failed"      // result exists but the requested render errored
)

// SubmitRequest is the POST /v1/jobs body: an experiment ID plus
// optional overrides of the service's base configuration (mirroring the
// cmd/vdbench flags). Override fields are pointers so that explicit
// zero values are expressible — {"seed": 0} pins seed 0, while omitting
// the field keeps the service default. Workers tunes campaign
// parallelism only — it is excluded from the cache key because the
// output is workers-invariant.
type SubmitRequest struct {
	Experiment string   `json:"experiment"`
	Quick      bool     `json:"quick,omitempty"`
	Seed       *uint64  `json:"seed,omitempty"`
	Services   *int     `json:"services,omitempty"`
	Prevalence *float64 `json:"prevalence,omitempty"`
	Workers    *int     `json:"workers,omitempty"`
}

// config resolves the request against the service's defaults: Quick
// swaps the base profile, then each present pointer field overrides.
func (r SubmitRequest) config(base vdbench.ExperimentConfig) vdbench.ExperimentConfig {
	cfg := base
	if r.Quick {
		cfg = vdbench.QuickExperimentConfig()
	}
	if r.Seed != nil {
		cfg.Seed = *r.Seed
	}
	if r.Services != nil {
		cfg.Services = *r.Services
	}
	if r.Prevalence != nil {
		cfg.Prevalence = *r.Prevalence
	}
	if r.Workers != nil {
		cfg.Workers = *r.Workers
	}
	return cfg
}

// route is one entry of the API surface table.
type route struct {
	Method  string
	Pattern string
	handle  http.HandlerFunc
}

// routes is the service's whole v1 API surface, as data. The mux is
// built from this table and the golden API-surface test walks it, so a
// route cannot be added or changed without the golden file noticing.
func (s *Service) routes() []route {
	return []route{
		{"POST", "/v1/jobs", s.handleSubmit},
		{"GET", "/v1/jobs", s.handleList},
		{"GET", "/v1/jobs/{id}", s.handleStatus},
		{"GET", "/v1/jobs/{id}/result", s.handleResult},
		{"GET", "/v1/jobs/{id}/events", s.handleEvents},
		{"DELETE", "/v1/jobs/{id}", s.handleCancel},
		{"GET", "/v1/experiments", s.handleExperiments},
		{"GET", "/healthz/live", s.handleHealthz},
		{"GET", "/healthz/ready", s.handleReady},
		{"GET", "/healthz", s.handleHealthz},
		{"GET", "/metrics", s.handleMetrics},
	}
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit an experiment job
//	GET    /v1/jobs             list jobs (?state=, ?cursor=, ?limit=)
//	GET    /v1/jobs/{id}        job status and queue position
//	GET    /v1/jobs/{id}/result rendered result (?format=text|csv|markdown|json, optional ?wait=30s)
//	GET    /v1/jobs/{id}/events SSE stream of live campaign progress
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/experiments      experiment catalogue
//	GET    /healthz/live        process liveness
//	GET    /healthz/ready       readiness; 503 once draining (BeginDrain/Shutdown)
//	GET    /healthz             compatibility alias for liveness
//	GET    /metrics             telemetry snapshot
//
// Every error response is the envelope {"error":{"code":..,"message":..}}
// with a stable machine-readable code.
//
// Liveness and readiness split on drain: a draining process is still
// alive (don't restart it) but must not receive new work (stop routing
// to it). Coordinators and load balancers should check readiness;
// process supervisors, liveness.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.routes() {
		mux.HandleFunc(rt.Method+" "+rt.Pattern, rt.handle)
	}

	requests := s.reg.Counter("vd_http_requests_total", "HTTP requests served")
	inflight := s.reg.Gauge("vd_http_inflight_requests", "HTTP requests currently being served")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		inflight.Add(1)
		defer inflight.Add(-1)
		mux.ServeHTTP(w, r)
	})
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is out; nothing useful to do on error
}

// apiError is the machine half of an error response: a stable code for
// dispatch plus a human message for logs.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorBody is the uniform error envelope every non-2xx JSON response
// carries.
type errorBody struct {
	Error apiError `json:"error"`
}

// writeError is the single exit for error responses; every handler
// failure goes through it so the envelope cannot drift per-route.
func writeError(w http.ResponseWriter, status int, code string, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: apiError{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// withLinks decorates a job representation with its API paths.
func withLinks(st JobStatus) JobStatus {
	base := "/v1/jobs/" + st.ID
	st.Links = map[string]string{
		"self":   base,
		"result": base + "/result",
		"events": base + "/events",
	}
	return st
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeMalformedRequest, "malformed job request: %v", err)
		return
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, codeMalformedRequest, "malformed job request: trailing data after JSON object")
		return
	}
	job, err := s.Submit(req.Experiment, req.config(s.opts.BaseConfig))
	switch {
	case err == nil:
	case errors.Is(err, ErrUnknownExperiment):
		writeError(w, http.StatusNotFound, codeUnknownExperiment, "%v", err)
		return
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, codeQueueFull, "%v", err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, codeDraining, "%v", err)
		return
	default:
		writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}
	st, _ := s.Status(job.ID())
	w.Header().Set("Location", "/v1/jobs/"+job.ID())
	writeJSON(w, http.StatusAccepted, withLinks(st))
}

// jobPage is the GET /v1/jobs response: one page plus the cursor for
// the next (omitted on the last page).
type jobPage struct {
	Jobs []JobStatus `json:"jobs"`
	Next uint64      `json:"next,omitempty"`
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	state := Status(q.Get("state"))
	switch state {
	case "", StatusQueued, StatusRunning, StatusDone, StatusFailed, StatusCanceled:
	default:
		writeError(w, http.StatusBadRequest, codeBadRequest,
			"unknown state %q (want queued, running, done, failed or canceled)", state)
		return
	}
	var cursor uint64
	if raw := q.Get("cursor"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, codeBadRequest, "bad cursor %q", raw)
			return
		}
		cursor = v
	}
	limit := 0
	if raw := q.Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, codeBadRequest, "bad limit %q (want a positive integer)", raw)
			return
		}
		limit = v
	}
	list := s.List(state, cursor, limit)
	page := jobPage{Jobs: make([]JobStatus, len(list.Jobs)), Next: list.Next}
	for i, st := range list.Jobs {
		page.Jobs[i] = withLinks(st)
	}
	writeJSON(w, http.StatusOK, page)
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, codeUnknownJob, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, withLinks(st))
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, codeUnknownJob, "unknown job %q", id)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "text"
	}
	contentType, ok := formatContentTypes()[format]
	if !ok {
		writeError(w, http.StatusBadRequest, codeUnknownFormat, "unknown format %q (want text, csv, markdown or json)", format)
		return
	}
	if waitSpec := r.URL.Query().Get("wait"); waitSpec != "" {
		d, err := time.ParseDuration(waitSpec)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, codeBadRequest, "bad wait duration %q", waitSpec)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), min(d, maxResultWait))
		defer cancel()
		_ = job.Wait(ctx) // on timeout we fall through to the not-done reply
	}
	res, err := job.Result()
	switch {
	case errors.Is(err, ErrNotDone):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, codeNotDone, "job %s is not done (poll again or use ?wait=)", id)
		return
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusGone, codeCanceled, "job %s was canceled", id)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, codeJobFailed, "job %s failed: %v", id, err)
		return
	}
	body, err := res.Render(format)
	if err != nil {
		writeError(w, http.StatusInternalServerError, codeRenderFailed, "render: %v", err)
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, body)
}

// progressFrame is the wire shape of one SSE progress event: the
// cumulative snapshot plus how many intermediate snapshots were
// coalesced away since the previous frame this subscriber received.
type progressFrame struct {
	ProgressUpdate
	Coalesced uint64 `json:"coalesced,omitempty"`
}

// handleEvents streams a job's live progress as Server-Sent Events. The
// stream opens with a status frame, carries cumulative progress frames
// while the campaign runs, and ends with a terminal status frame. The
// whole stream is served on this handler's goroutine: subscription is a
// mailbox registration, so a disconnecting client leaks nothing, and a
// slow client coalesces to the freshest snapshot (the campaign never
// waits on it).
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, codeUnknownJob, "unknown job %q", id)
		return
	}

	// Subscribe before the first status read: anything published after
	// the snapshot lands in the mailbox, so no window where progress is
	// lost between "status says running" and "subscribed".
	sub := s.events.subscribe(id)
	defer s.events.unsubscribe(id, sub)
	s.mSSESubscribers.Inc()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)

	st, _ := s.Status(id)
	if err := s.sendEvent(w, rc, "status", withLinks(st)); err != nil {
		return
	}
	if st.Status.terminal() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-sub.notify:
			update, coalesced, ok := sub.take()
			if !ok {
				continue
			}
			if err := s.sendEvent(w, rc, "progress", progressFrame{ProgressUpdate: update, Coalesced: coalesced}); err != nil {
				return
			}
		case <-job.Done():
			// Flush any progress that beat the terminal transition, then
			// close with the final status.
			if update, coalesced, ok := sub.take(); ok {
				if err := s.sendEvent(w, rc, "progress", progressFrame{ProgressUpdate: update, Coalesced: coalesced}); err != nil {
					return
				}
			}
			if st, ok := s.Status(id); ok {
				_ = s.sendEvent(w, rc, "status", withLinks(st))
			}
			return
		}
	}
}

// sendEvent writes one SSE frame and flushes it through to the client.
func (s *Service) sendEvent(w io.Writer, rc *http.ResponseController, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
		return err
	}
	if err := rc.Flush(); err != nil {
		return err
	}
	s.mSSEEventsSent.Inc()
	return nil
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Job(id); !ok {
		writeError(w, http.StatusNotFound, codeUnknownJob, "unknown job %q", id)
		return
	}
	if !s.Cancel(id) {
		writeError(w, http.StatusConflict, codeNotCancelable, "job %s already finished (only queued and running jobs can be canceled)", id)
		return
	}
	st, _ := s.Status(id)
	writeJSON(w, http.StatusOK, withLinks(st))
}

func (s *Service) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Experiments []vdbench.ExperimentInfo `json:"experiments"`
		Formats     []string                 `json:"formats"`
	}{vdbench.Experiments(), vdbench.ResultFormats()})
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
}

func (s *Service) handleReady(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, "draining\n")
		return
	}
	_, _ = io.WriteString(w, "ok\n")
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = io.WriteString(w, s.reg.Snapshot())
}

// formatContentTypes maps render formats to response content types.
func formatContentTypes() map[string]string {
	return map[string]string{
		"text":     "text/plain; charset=utf-8",
		"csv":      "text/csv; charset=utf-8",
		"markdown": "text/markdown; charset=utf-8",
		"json":     "application/json",
	}
}
