package service

import (
	"context"
	"testing"

	"github.com/dsn2015/vdbench"
)

// BenchmarkServiceColdVsWarm quantifies what the content-addressed cache
// buys: the cold path runs the full (quick) E3 campaign per iteration,
// the warm path serves the memoized result. The ratio between the two
// is the speedup the service delivers for repeated identical requests.
func BenchmarkServiceColdVsWarm(b *testing.B) {
	cfg := vdbench.QuickExperimentConfig()

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// A fresh service per iteration guarantees an empty cache.
			svc := mustNew(b, Options{Workers: 1})
			job, err := svc.Submit("e3", cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := job.Wait(context.Background()); err != nil {
				b.Fatal(err)
			}
			res, err := job.Result()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := res.Render("text"); err != nil {
				b.Fatal(err)
			}
			svc.Close()
		}
	})

	b.Run("warm", func(b *testing.B) {
		svc := mustNew(b, Options{Workers: 1})
		defer svc.Close()
		// Prime the cache outside the timer.
		job, err := svc.Submit("e3", cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := job.Wait(context.Background()); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			job, err := svc.Submit("e3", cfg)
			if err != nil {
				b.Fatal(err)
			}
			res, err := job.Result()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := res.Render("text"); err != nil {
				b.Fatal(err)
			}
		}
	})
}
