package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/dsn2015/vdbench"
)

// newTestAPI starts a service (optionally with a gated runner) behind an
// httptest server.
func newTestAPI(t *testing.T, opts Options, run runner) (*Service, *httptest.Server) {
	t.Helper()
	var svc *Service
	if run == nil {
		svc = mustNew(t, opts)
	} else {
		svc = mustNewService(t, opts, run)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return svc, ts
}

func httpDo(t *testing.T, method, url, body string) (int, http.Header, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(data)
}

func submitJob(t *testing.T, base, body string) JobStatus {
	t.Helper()
	code, _, resp := httpDo(t, http.MethodPost, base+"/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d: %s", code, resp)
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(resp), &st); err != nil {
		t.Fatalf("submit response not a JobStatus: %v\n%s", err, resp)
	}
	return st
}

// TestAPISubmitPollFetch drives the full submit → poll → fetch loop over
// the API for three representative experiments.
func TestAPISubmitPollFetch(t *testing.T) {
	_, ts := newTestAPI(t, Options{Workers: 2}, nil)
	for _, id := range []string{"e1", "e3", "e6"} {
		t.Run(id, func(t *testing.T) {
			st := submitJob(t, ts.URL, fmt.Sprintf(`{"experiment":%q,"quick":true}`, id))
			if st.Experiment != id || st.Key == "" {
				t.Fatalf("submit status = %+v", st)
			}
			deadline := time.Now().Add(waitDeadline)
			for st.Status != StatusDone {
				if time.Now().After(deadline) {
					t.Fatalf("job %s stuck in %s", st.ID, st.Status)
				}
				time.Sleep(20 * time.Millisecond)
				code, _, resp := httpDo(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID, "")
				if code != http.StatusOK {
					t.Fatalf("status poll returned %d: %s", code, resp)
				}
				if err := json.Unmarshal([]byte(resp), &st); err != nil {
					t.Fatal(err)
				}
			}
			for format, wantType := range formatContentTypes() {
				code, hdr, body := httpDo(t, http.MethodGet,
					fmt.Sprintf("%s/v1/jobs/%s/result?format=%s", ts.URL, st.ID, format), "")
				if code != http.StatusOK {
					t.Fatalf("result %s returned %d: %s", format, code, body)
				}
				if got := hdr.Get("Content-Type"); got != wantType {
					t.Fatalf("format %s content type = %q, want %q", format, got, wantType)
				}
				if len(body) == 0 {
					t.Fatalf("format %s: empty body", format)
				}
				if format == "json" {
					var decoded struct {
						ID string `json:"id"`
					}
					if err := json.Unmarshal([]byte(body), &decoded); err != nil || decoded.ID != id {
						t.Fatalf("json result id = %q err = %v", decoded.ID, err)
					}
				}
			}
		})
	}
}

// TestAPIWarmCacheByteIdentical is the acceptance criterion end to end:
// the second fetch of a previously computed experiment is served from
// the cache (hit counter increments, no new campaign) and its body is
// byte-identical to the cold run — which itself is byte-identical to
// what the CLI code path (Result.Render) produces.
func TestAPIWarmCacheByteIdentical(t *testing.T) {
	svc, ts := newTestAPI(t, Options{Workers: 1}, nil)

	st := submitJob(t, ts.URL, `{"experiment":"e3","quick":true}`)
	code, _, cold := httpDo(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/result?format=text&wait=120s", "")
	if code != http.StatusOK {
		t.Fatalf("cold fetch returned %d: %s", code, cold)
	}
	campaigns := svc.Metrics().Histogram("vd_campaign_seconds", "").Count()

	st2 := submitJob(t, ts.URL, `{"experiment":"e3","quick":true}`)
	if st2.Status != StatusDone || !st2.Cached {
		t.Fatalf("warm submit status = %+v, want done+cached", st2)
	}
	code, _, warm := httpDo(t, http.MethodGet, ts.URL+"/v1/jobs/"+st2.ID+"/result?format=text", "")
	if code != http.StatusOK {
		t.Fatalf("warm fetch returned %d", code)
	}
	if warm != cold {
		t.Fatal("warm response is not byte-identical to the cold run")
	}
	if got := svc.Metrics().Histogram("vd_campaign_seconds", "").Count(); got != campaigns {
		t.Fatalf("warm submission ran a campaign (%d -> %d)", campaigns, got)
	}
	_, _, metrics := httpDo(t, http.MethodGet, ts.URL+"/metrics", "")
	if !strings.Contains(metrics, "vd_cache_hits_total 1") {
		t.Fatalf("/metrics missing the cache hit:\n%s", metrics)
	}

	// The API body is the same byte sequence the CLI renders.
	direct, err := vdbench.RunExperiment("e3", vdbench.QuickExperimentConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Render("text")
	if err != nil {
		t.Fatal(err)
	}
	if cold != want {
		t.Fatal("API text body diverges from Result.Render — CLI and API are not one code path")
	}
}

func TestAPIErrors(t *testing.T) {
	_, ts := newTestAPI(t, Options{Workers: 1}, nil)
	cases := []struct {
		name, method, path, body string
		wantCode                 int
		wantErrCode              string
	}{
		{"malformed body", http.MethodPost, "/v1/jobs", `{"experiment":`, http.StatusBadRequest, codeMalformedRequest},
		{"unknown field", http.MethodPost, "/v1/jobs", `{"experiment":"e1","bogus":1}`, http.StatusBadRequest, codeMalformedRequest},
		{"unknown experiment", http.MethodPost, "/v1/jobs", `{"experiment":"e99","quick":true}`, http.StatusNotFound, codeUnknownExperiment},
		{"invalid override", http.MethodPost, "/v1/jobs", `{"experiment":"e1","quick":true,"services":-4}`, http.StatusBadRequest, codeBadRequest},
		{"unknown job status", http.MethodGet, "/v1/jobs/j-nope", "", http.StatusNotFound, codeUnknownJob},
		{"unknown job result", http.MethodGet, "/v1/jobs/j-nope/result", "", http.StatusNotFound, codeUnknownJob},
		{"unknown job events", http.MethodGet, "/v1/jobs/j-nope/events", "", http.StatusNotFound, codeUnknownJob},
		{"unknown job cancel", http.MethodDelete, "/v1/jobs/j-nope", "", http.StatusNotFound, codeUnknownJob},
		{"bad list state", http.MethodGet, "/v1/jobs?state=bogus", "", http.StatusBadRequest, codeBadRequest},
		{"bad list cursor", http.MethodGet, "/v1/jobs?cursor=banana", "", http.StatusBadRequest, codeBadRequest},
		{"bad list limit", http.MethodGet, "/v1/jobs?limit=-1", "", http.StatusBadRequest, codeBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, _, body := httpDo(t, c.method, ts.URL+c.path, c.body)
			if code != c.wantCode {
				t.Fatalf("%s %s = %d, want %d (%s)", c.method, c.path, code, c.wantCode, body)
			}
			var eb errorBody
			if err := json.Unmarshal([]byte(body), &eb); err != nil || eb.Error.Code == "" || eb.Error.Message == "" {
				t.Fatalf("error response not the {error:{code,message}} envelope: %s", body)
			}
			if eb.Error.Code != c.wantErrCode {
				t.Fatalf("error code = %q, want %q (%s)", eb.Error.Code, c.wantErrCode, body)
			}
		})
	}
}

func TestAPIBadFormatAndWait(t *testing.T) {
	_, ts := newTestAPI(t, Options{Workers: 1}, nil)
	st := submitJob(t, ts.URL, `{"experiment":"e1","quick":true}`)
	if code, _, body := httpDo(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/result?format=xml", ""); code != http.StatusBadRequest {
		t.Fatalf("format=xml returned %d: %s", code, body)
	}
	if code, _, body := httpDo(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/result?wait=banana", ""); code != http.StatusBadRequest {
		t.Fatalf("wait=banana returned %d: %s", code, body)
	}
}

// TestAPIRunningAndCanceledJobs exercises the not-done and canceled
// result paths with a gated runner.
func TestAPIRunningAndCanceledJobs(t *testing.T) {
	g := newGate()
	_, ts := newTestAPI(t, Options{Workers: 1}, g.run)
	defer g.open()

	st1 := submitJob(t, ts.URL, `{"experiment":"e1","quick":true}`)
	g.waitStarted(t)
	st2 := submitJob(t, ts.URL, `{"experiment":"e1","quick":true,"seed":2}`)

	// Result of a running job: 409 with the not_done envelope and a
	// Retry-After hint.
	code, hdr, body := httpDo(t, http.MethodGet, ts.URL+"/v1/jobs/"+st1.ID+"/result", "")
	if code != http.StatusConflict || hdr.Get("Retry-After") == "" {
		t.Fatalf("running result = %d (Retry-After %q): %s", code, hdr.Get("Retry-After"), body)
	}
	var eb errorBody
	if err := json.Unmarshal([]byte(body), &eb); err != nil || eb.Error.Code != codeNotDone {
		t.Fatalf("running result error code = %q, want %q: %s", eb.Error.Code, codeNotDone, body)
	}
	// A bounded wait that expires behaves the same.
	code, _, _ = httpDo(t, http.MethodGet, ts.URL+"/v1/jobs/"+st1.ID+"/result?wait=50ms", "")
	if code != http.StatusConflict {
		t.Fatalf("expired wait = %d", code)
	}

	// Cancel the queued job; its result is then Gone.
	code, _, body = httpDo(t, http.MethodDelete, ts.URL+"/v1/jobs/"+st2.ID, "")
	if code != http.StatusOK {
		t.Fatalf("cancel = %d: %s", code, body)
	}
	code, _, _ = httpDo(t, http.MethodGet, ts.URL+"/v1/jobs/"+st2.ID+"/result", "")
	if code != http.StatusGone {
		t.Fatalf("canceled result = %d, want 410", code)
	}
	// DELETE on the running job cancels it too: the campaign aborts, the
	// long-poll resolves to Gone promptly, and the worker slot frees.
	code, _, body = httpDo(t, http.MethodDelete, ts.URL+"/v1/jobs/"+st1.ID, "")
	if code != http.StatusOK {
		t.Fatalf("cancel running = %d: %s", code, body)
	}
	code, _, _ = httpDo(t, http.MethodGet, ts.URL+"/v1/jobs/"+st1.ID+"/result?wait=120s", "")
	if code != http.StatusGone {
		t.Fatalf("canceled running result = %d, want 410", code)
	}
	// The freed slot picks up new work: a fresh submission starts.
	st3 := submitJob(t, ts.URL, `{"experiment":"e1","quick":true,"seed":3}`)
	g.waitStarted(t)
	if st, _ := httpStatus(t, ts.URL, st3.ID); st.Status != StatusRunning {
		t.Fatalf("post-cancel job status = %+v, want running", st)
	}
	// A finished or canceled job is not cancelable.
	code, _, _ = httpDo(t, http.MethodDelete, ts.URL+"/v1/jobs/"+st1.ID, "")
	if code != http.StatusConflict {
		t.Fatalf("cancel canceled = %d, want 409", code)
	}
}

// httpStatus fetches and decodes one job's status over the API.
func httpStatus(t *testing.T, base, id string) (JobStatus, bool) {
	t.Helper()
	code, _, body := httpDo(t, http.MethodGet, base+"/v1/jobs/"+id, "")
	if code != http.StatusOK {
		return JobStatus{}, false
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("status response not a JobStatus: %v\n%s", err, body)
	}
	return st, true
}

func TestAPIExperimentsCatalog(t *testing.T) {
	_, ts := newTestAPI(t, Options{Workers: 1}, nil)
	code, _, body := httpDo(t, http.MethodGet, ts.URL+"/v1/experiments", "")
	if code != http.StatusOK {
		t.Fatalf("experiments = %d", code)
	}
	var decoded struct {
		Experiments []vdbench.ExperimentInfo `json:"experiments"`
		Formats     []string                 `json:"formats"`
	}
	if err := json.Unmarshal([]byte(body), &decoded); err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, info := range decoded.Experiments {
		ids[info.ID] = true
		if info.Title == "" {
			t.Fatalf("experiment %s has no title", info.ID)
		}
	}
	for _, want := range vdbench.ExperimentIDs() {
		if !ids[want] {
			t.Fatalf("catalogue missing %s", want)
		}
	}
	if len(decoded.Formats) != 4 {
		t.Fatalf("formats = %v", decoded.Formats)
	}
}

func TestAPIHealthzAndMetrics(t *testing.T) {
	_, ts := newTestAPI(t, Options{Workers: 1}, nil)
	code, _, body := httpDo(t, http.MethodGet, ts.URL+"/healthz", "")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz = %d %q", code, body)
	}
	_, _, metrics := httpDo(t, http.MethodGet, ts.URL+"/metrics", "")
	for _, want := range []string{"vd_http_requests_total", "vd_queue_depth", "vd_campaign_seconds_bucket"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, metrics)
		}
	}
}

// TestAPILivenessReadinessSplit pins the drain semantics: liveness stays
// green across a drain (the process is fine, don't restart it) while
// readiness flips to 503 (stop routing new work here).
func TestAPILivenessReadinessSplit(t *testing.T) {
	svc, ts := newTestAPI(t, Options{Workers: 1}, nil)
	for _, path := range []string{"/healthz", "/healthz/live", "/healthz/ready"} {
		if code, _, body := httpDo(t, http.MethodGet, ts.URL+path, ""); code != http.StatusOK || body != "ok\n" {
			t.Fatalf("%s before drain = %d %q", path, code, body)
		}
	}
	svc.BeginDrain()
	if !svc.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
	for _, path := range []string{"/healthz", "/healthz/live"} {
		if code, _, _ := httpDo(t, http.MethodGet, ts.URL+path, ""); code != http.StatusOK {
			t.Fatalf("%s while draining = %d, want 200", path, code)
		}
	}
	if code, _, body := httpDo(t, http.MethodGet, ts.URL+"/healthz/ready", ""); code != http.StatusServiceUnavailable || body != "draining\n" {
		t.Fatalf("/healthz/ready while draining = %d %q, want 503 draining", code, body)
	}
	// Shutdown implies drain even without an explicit BeginDrain.
	svc2, ts2 := newTestAPI(t, Options{Workers: 1}, nil)
	svc2.Close()
	if code, _, _ := httpDo(t, http.MethodGet, ts2.URL+"/healthz/ready", ""); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz/ready after Close = %d, want 503", code)
	}
}

// TestAPIPerExperimentAndCompileCacheMetrics runs a real campaign
// experiment and checks the two telemetry additions of the parallel
// layer: a lazily registered per-experiment latency histogram, and the
// compile-cache counters fed by the campaign's shared CFG cache (e3 runs
// the standard suite, whose two dataflow tools share every lowered
// graph, so the hit counter must advance too).
func TestAPIPerExperimentAndCompileCacheMetrics(t *testing.T) {
	svc, ts := newTestAPI(t, Options{Workers: 1}, nil)
	st := submitJob(t, ts.URL, `{"experiment":"e3","quick":true}`)
	if code, _, body := httpDo(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/result?format=text&wait=120s", ""); code != http.StatusOK {
		t.Fatalf("e3 did not complete: %d %s", code, body)
	}
	_, _, metrics := httpDo(t, http.MethodGet, ts.URL+"/metrics", "")
	for _, want := range []string{
		"vd_experiment_e3_seconds_bucket",
		"vd_compile_cache_hits_total",
		"vd_compile_cache_misses_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, metrics)
		}
	}
	if got := svc.Metrics().Histogram("vd_experiment_e3_seconds", "").Count(); got != 1 {
		t.Fatalf("e3 histogram count = %d, want 1", got)
	}
	if hits := svc.Metrics().Counter("vd_compile_cache_hits_total", "").Value(); hits == 0 {
		t.Fatal("compile-cache hits did not advance (dataflow tools should share graphs)")
	}
	if misses := svc.Metrics().Counter("vd_compile_cache_misses_total", "").Value(); misses == 0 {
		t.Fatal("compile-cache misses did not advance")
	}
}

// TestAPIOracleMetrics runs a campaign experiment and checks the
// ground-truth oracle counters on /metrics. Consistency, not absolute
// numbers: every corpus generation consults the content-addressed oracle
// cache (hits+misses advance), and probe work happens exactly when the
// cache missed — a fully cache-served corpus legitimately executes and
// prunes zero probes.
func TestAPIOracleMetrics(t *testing.T) {
	svc, ts := newTestAPI(t, Options{Workers: 1}, nil)
	st := submitJob(t, ts.URL, `{"experiment":"e3","quick":true}`)
	if code, _, body := httpDo(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/result?format=text&wait=120s", ""); code != http.StatusOK {
		t.Fatalf("e3 did not complete: %d %s", code, body)
	}
	_, _, metrics := httpDo(t, http.MethodGet, ts.URL+"/metrics", "")
	for _, want := range []string{
		"vd_oracle_probes_total",
		"vd_oracle_pruned_total",
		"vd_oracle_early_exits_total",
		"vd_oracle_cache_hits_total",
		"vd_oracle_cache_misses_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, metrics)
		}
	}
	counter := func(name string) uint64 { return svc.Metrics().Counter(name, "").Value() }
	hits, misses := counter("vd_oracle_cache_hits_total"), counter("vd_oracle_cache_misses_total")
	probes, pruned := counter("vd_oracle_probes_total"), counter("vd_oracle_pruned_total")
	if hits+misses == 0 {
		t.Fatal("oracle cache counters did not advance (corpus generation must consult the cache)")
	}
	if misses == 0 && probes+pruned != 0 {
		t.Fatalf("probe work (%d executed, %d pruned) without a cache miss", probes, pruned)
	}
	if misses > 0 && probes == 0 {
		t.Fatal("cache misses without a single executed probe")
	}
	if misses > 0 && pruned < 4*probes {
		t.Fatalf("pruning ratio below 5x: %d executed vs %d pruned", probes, pruned)
	}
}
