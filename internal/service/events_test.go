package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/dsn2015/vdbench"
	"github.com/dsn2015/vdbench/internal/harness"
)

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	Event string
	Data  string
}

// readFrame parses the next SSE frame off the stream; ok is false at
// EOF (or a half-written trailing frame cut off by disconnect).
func readFrame(r *bufio.Reader) (sseFrame, bool) {
	var f sseFrame
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return sseFrame{}, false
		}
		line = strings.TrimSuffix(line, "\n")
		switch {
		case line == "" && f.Event != "":
			return f, true
		case strings.HasPrefix(line, "event: "):
			f.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			f.Data = strings.TrimPrefix(line, "data: ")
		}
	}
}

// progressRunner returns a runner that emits n synthetic progress
// events through the harness seam (each one cell of tool "alpha" with
// confusion TP=1 FP=1), gated on release so tests can attach a
// subscriber before any event fires.
func progressRunner(n int, release <-chan struct{}) runner {
	return func(ctx context.Context, id string, _ vdbench.ExperimentConfig) (vdbench.ExperimentResult, error) {
		fn := harness.ProgressFromContext(ctx)
		if fn == nil {
			return vdbench.ExperimentResult{}, errors.New("no progress seam on the run context")
		}
		select {
		case <-release:
		case <-ctx.Done():
			return vdbench.ExperimentResult{}, ctx.Err()
		}
		for i := 0; i < n; i++ {
			fn(vdbench.CampaignProgressEvent{Total: n, Tool: "alpha", Case: i,
				Confusion: vdbench.Confusion{TP: 1, FP: 1}})
		}
		return vdbench.ExperimentResult{ID: id, Title: "progress stub"}, nil
	}
}

// TestEventSubDropAndCoalesce pins the mailbox semantics: unread
// snapshots are replaced, counted, and the freshest one wins.
func TestEventSubDropAndCoalesce(t *testing.T) {
	hub := newEventHub()
	sub := hub.subscribe("j-000001")
	if _, _, ok := sub.take(); ok {
		t.Fatal("fresh mailbox reported a pending snapshot")
	}
	for i := 1; i <= 5; i++ {
		hub.publish("j-000001", ProgressUpdate{Job: "j-000001", Done: i, Total: 5})
	}
	update, coalesced, ok := sub.take()
	if !ok || update.Done != 5 {
		t.Fatalf("take = %+v ok=%v, want the freshest snapshot", update, ok)
	}
	if coalesced != 4 {
		t.Fatalf("coalesced = %d, want 4 (five publishes, one take)", coalesced)
	}
	// The drop counter resets with the take.
	hub.publish("j-000001", ProgressUpdate{Job: "j-000001", Done: 6, Total: 6})
	if _, coalesced, _ := sub.take(); coalesced != 0 {
		t.Fatalf("coalesced after drain = %d, want 0", coalesced)
	}
	// Unsubscribed mailboxes stop receiving.
	hub.unsubscribe("j-000001", sub)
	hub.publish("j-000001", ProgressUpdate{Done: 7})
	if _, _, ok := sub.take(); ok {
		t.Fatal("unsubscribed mailbox still received a snapshot")
	}
}

// TestSSEStreamsMonotonicProgress drives the events endpoint end to
// end: opening status frame, strictly increasing progress frames with
// coherent incremental metric estimates, closing terminal status frame.
func TestSSEStreamsMonotonicProgress(t *testing.T) {
	const total = 6
	release := make(chan struct{})
	_, ts := newTestAPI(t, Options{Workers: 1}, progressRunner(total, release))

	st := submitJob(t, ts.URL, `{"experiment":"e1","quick":true}`)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("events = %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	br := bufio.NewReader(resp.Body)

	first, ok := readFrame(br)
	if !ok || first.Event != "status" {
		t.Fatalf("first frame = %+v, want a status frame", first)
	}
	var opening JobStatus
	if err := json.Unmarshal([]byte(first.Data), &opening); err != nil {
		t.Fatal(err)
	}
	if opening.Status.terminal() {
		t.Fatalf("job already terminal before release: %+v", opening)
	}
	if opening.Links["events"] != "/v1/jobs/"+st.ID+"/events" {
		t.Fatalf("status frame links = %v", opening.Links)
	}
	close(release) // subscriber attached; let the campaign emit

	var frames []sseFrame
	for {
		f, ok := readFrame(br)
		if !ok {
			break
		}
		frames = append(frames, f)
	}
	if len(frames) == 0 || frames[len(frames)-1].Event != "status" {
		t.Fatalf("stream did not end with a terminal status frame: %+v", frames)
	}
	var final JobStatus
	if err := json.Unmarshal([]byte(frames[len(frames)-1].Data), &final); err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("terminal frame status = %s, want done", final.Status)
	}

	progress := frames[:len(frames)-1]
	if len(progress) == 0 {
		t.Fatal("no progress frames before the terminal status")
	}
	last := 0
	for _, f := range progress {
		if f.Event != "progress" {
			t.Fatalf("unexpected frame %+v mid-stream", f)
		}
		var u progressFrame
		if err := json.Unmarshal([]byte(f.Data), &u); err != nil {
			t.Fatal(err)
		}
		if u.Done <= last || u.Done > total || u.Total != total {
			t.Fatalf("non-monotone progress: done %d after %d (total %d)", u.Done, last, u.Total)
		}
		last = u.Done
		// Incremental estimates: after k cells of TP=1 FP=1, precision is
		// exactly 0.5 and recall exactly 1.
		if len(u.Tools) != 1 || u.Tools[0].Tool != "alpha" {
			t.Fatalf("progress tools = %+v", u.Tools)
		}
		tp := u.Tools[0]
		if tp.Confusion.TP != u.Done || tp.Confusion.FP != u.Done {
			t.Fatalf("confusion %+v does not track done=%d", tp.Confusion, u.Done)
		}
		if tp.Precision != 0.5 || tp.Recall != 1 {
			t.Fatalf("estimates precision=%v recall=%v, want 0.5 and 1", tp.Precision, tp.Recall)
		}
	}
	if last != total {
		t.Fatalf("final progress frame done = %d, want %d (terminal drain must flush the last snapshot)", last, total)
	}
}

// TestSSESlowSubscriberDoesNotStallCampaign connects a subscriber that
// never reads: the campaign must still emit thousands of events and
// finish promptly, with the backpressure showing up as coalesced drops
// rather than as worker stalls.
func TestSSESlowSubscriberDoesNotStallCampaign(t *testing.T) {
	const total = 5000
	release := make(chan struct{})
	svc, ts := newTestAPI(t, Options{Workers: 1}, progressRunner(total, release))

	st := submitJob(t, ts.URL, `{"experiment":"e1","quick":true}`)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() // never read from it while the campaign runs
	close(release)

	job, _ := svc.Job(st.ID)
	mustWait(t, job) // the campaign finishes while the subscriber is stuck
	if _, err := job.Result(); err != nil {
		t.Fatal(err)
	}
	if counterValue(svc, "vd_sse_dropped_total") == 0 {
		t.Fatal("vd_sse_dropped_total = 0: a stuck subscriber over 5000 events must coalesce")
	}
	if counterValue(svc, "vd_sse_subscribers_total") != 1 {
		t.Fatalf("vd_sse_subscribers_total = %d, want 1", counterValue(svc, "vd_sse_subscribers_total"))
	}
}

// TestSSEDisconnectCleansUp: a client that goes away mid-stream leaves
// no subscription behind (and no stuck handler — the deferred ts.Close
// would hang the test if one leaked).
func TestSSEDisconnectCleansUp(t *testing.T) {
	g := newGate()
	svc, ts := newTestAPI(t, Options{Workers: 1}, g.run)
	defer g.open()

	st := submitJob(t, ts.URL, `{"experiment":"e1","quick":true}`)
	g.waitStarted(t)
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if f, ok := readFrame(br); !ok || f.Event != "status" {
		t.Fatalf("first frame = %+v", f)
	}
	subscribed := func() int {
		svc.events.mu.Lock()
		defer svc.events.mu.Unlock()
		return len(svc.events.subs[st.ID])
	}
	if subscribed() != 1 {
		t.Fatalf("subscriptions = %d, want 1", subscribed())
	}

	cancel() // client disconnects mid-stream
	resp.Body.Close()
	deadline := time.Now().Add(waitDeadline)
	for subscribed() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription not cleaned up after client disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSSETerminalJobClosesImmediately: subscribing to a finished job
// yields exactly one terminal status frame and the stream ends.
func TestSSETerminalJobClosesImmediately(t *testing.T) {
	instant := func(_ context.Context, id string, _ vdbench.ExperimentConfig) (vdbench.ExperimentResult, error) {
		return vdbench.ExperimentResult{ID: id}, nil
	}
	svc, ts := newTestAPI(t, Options{Workers: 1}, instant)
	st := submitJob(t, ts.URL, `{"experiment":"e1","quick":true}`)
	job, _ := svc.Job(st.ID)
	mustWait(t, job)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body) // the server must close the stream
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(strings.NewReader(string(body)))
	f, ok := readFrame(br)
	if !ok || f.Event != "status" {
		t.Fatalf("frame = %+v, want one status frame", f)
	}
	var final JobStatus
	if err := json.Unmarshal([]byte(f.Data), &final); err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("status = %s, want done", final.Status)
	}
	if _, ok := readFrame(br); ok {
		t.Fatal("terminal subscription produced more than one frame")
	}
}

// TestAPIListJobsPagination drives GET /v1/jobs through the state
// filter and the cursor: pages are disjoint, ordinal-ordered, carry
// links, and the filtered views partition the jobs by lifecycle state.
func TestAPIListJobsPagination(t *testing.T) {
	g := newGate()
	svc, ts := newTestAPI(t, Options{Workers: 1}, g.run)

	var ids []string
	for seed := 1; seed <= 5; seed++ {
		body := fmt.Sprintf(`{"experiment":"e1","quick":true,"seed":%d}`, seed)
		ids = append(ids, submitJob(t, ts.URL, body).ID)
	}
	g.waitStarted(t) // ids[0] running, the rest queued

	listPage := func(query string) jobPage {
		t.Helper()
		code, _, body := httpDo(t, http.MethodGet, ts.URL+"/v1/jobs"+query, "")
		if code != http.StatusOK {
			t.Fatalf("list %q = %d: %s", query, code, body)
		}
		var page jobPage
		if err := json.Unmarshal([]byte(body), &page); err != nil {
			t.Fatal(err)
		}
		return page
	}

	if got := listPage("?state=queued").Jobs; len(got) != 4 {
		t.Fatalf("queued jobs = %d, want 4", len(got))
	}
	if got := listPage("?state=running").Jobs; len(got) != 1 || got[0].ID != ids[0] {
		t.Fatalf("running jobs = %+v, want exactly %s", got, ids[0])
	}

	// Cancel one queued job, then drain the rest.
	if code, _, body := httpDo(t, http.MethodDelete, ts.URL+"/v1/jobs/"+ids[2], ""); code != http.StatusOK {
		t.Fatalf("cancel = %d: %s", code, body)
	}
	g.open()
	for _, id := range ids {
		job, _ := svc.Job(id)
		mustWait(t, job)
	}

	if got := listPage("?state=canceled").Jobs; len(got) != 1 || got[0].ID != ids[2] {
		t.Fatalf("canceled jobs = %+v, want exactly %s", got, ids[2])
	}
	if got := listPage("?state=done").Jobs; len(got) != 4 {
		t.Fatalf("done jobs = %d, want 4", len(got))
	}

	// Cursor pagination: pages of 2 are disjoint, ordered, and chain to
	// the full set.
	var seen []string
	query := "?limit=2"
	lastOrd := uint64(0)
	for {
		page := listPage(query)
		if len(page.Jobs) > 2 {
			t.Fatalf("page overflows limit: %d jobs", len(page.Jobs))
		}
		for _, st := range page.Jobs {
			if st.Ord <= lastOrd {
				t.Fatalf("ordinals not ascending: %d after %d", st.Ord, lastOrd)
			}
			lastOrd = st.Ord
			if st.Links["self"] != "/v1/jobs/"+st.ID {
				t.Fatalf("job %s links = %v", st.ID, st.Links)
			}
			seen = append(seen, st.ID)
		}
		if page.Next == 0 {
			break
		}
		query = "?limit=2&cursor=" + strconv.FormatUint(page.Next, 10)
	}
	if len(seen) != len(ids) {
		t.Fatalf("pagination saw %d jobs, want %d (%v)", len(seen), len(ids), seen)
	}
}

// TestAPISurfaceGolden pins the whole v1 surface: the route table and
// the stable error-code set. A change here is an API change and must be
// deliberate.
func TestAPISurfaceGolden(t *testing.T) {
	instant := func(_ context.Context, id string, _ vdbench.ExperimentConfig) (vdbench.ExperimentResult, error) {
		return vdbench.ExperimentResult{ID: id}, nil
	}
	svc := mustNewService(t, Options{Workers: 1}, instant)
	defer svc.Close()

	wantRoutes := []string{
		"POST /v1/jobs",
		"GET /v1/jobs",
		"GET /v1/jobs/{id}",
		"GET /v1/jobs/{id}/result",
		"GET /v1/jobs/{id}/events",
		"DELETE /v1/jobs/{id}",
		"GET /v1/experiments",
		"GET /healthz/live",
		"GET /healthz/ready",
		"GET /healthz",
		"GET /metrics",
	}
	routes := svc.routes()
	if len(routes) != len(wantRoutes) {
		t.Fatalf("API surface has %d routes, want %d", len(routes), len(wantRoutes))
	}
	mux := http.NewServeMux()
	for _, rt := range routes {
		mux.HandleFunc(rt.Method+" "+rt.Pattern, rt.handle)
	}
	for i, rt := range routes {
		got := rt.Method + " " + rt.Pattern
		if got != wantRoutes[i] {
			t.Errorf("route %d = %q, want %q", i, got, wantRoutes[i])
			continue
		}
		// Walk the mux: each golden route must resolve to its own pattern.
		path := strings.NewReplacer("{id}", "j-000001").Replace(rt.Pattern)
		req := httptest.NewRequest(rt.Method, path, nil)
		if _, pattern := mux.Handler(req); pattern != got {
			t.Errorf("mux resolves %q to %q, want %q", path, pattern, got)
		}
	}

	wantCodes := []string{
		"malformed_request", "bad_request", "unknown_experiment", "unknown_job",
		"unknown_format", "queue_full", "draining", "not_done", "canceled",
		"not_cancelable", "job_failed", "render_failed",
	}
	gotCodes := []string{
		codeMalformedRequest, codeBadRequest, codeUnknownExperiment, codeUnknownJob,
		codeUnknownFormat, codeQueueFull, codeDraining, codeNotDone, codeCanceled,
		codeNotCancelable, codeJobFailed, codeRenderFailed,
	}
	for i, want := range wantCodes {
		if gotCodes[i] != want {
			t.Errorf("error code %d = %q, want %q", i, gotCodes[i], want)
		}
	}
}

// TestSubmitRequestPointerOverrides pins the decode/resolve matrix: an
// omitted field keeps the base value, an explicit zero pins zero, and
// pre-pointer request bodies keep working unchanged.
func TestSubmitRequestPointerOverrides(t *testing.T) {
	base := vdbench.ExperimentConfig{Seed: 42, Services: 30, Prevalence: 0.25, Workers: 3}
	cases := []struct {
		name string
		body string
		want func(vdbench.ExperimentConfig) vdbench.ExperimentConfig
	}{
		{"omitted fields keep base", `{"experiment":"e1"}`,
			func(c vdbench.ExperimentConfig) vdbench.ExperimentConfig { return c }},
		{"explicit zero seed", `{"experiment":"e1","seed":0}`,
			func(c vdbench.ExperimentConfig) vdbench.ExperimentConfig { c.Seed = 0; return c }},
		{"explicit zero prevalence", `{"experiment":"e1","prevalence":0}`,
			func(c vdbench.ExperimentConfig) vdbench.ExperimentConfig { c.Prevalence = 0; return c }},
		{"legacy full body", `{"experiment":"e1","seed":7,"services":10,"prevalence":0.5,"workers":2}`,
			func(c vdbench.ExperimentConfig) vdbench.ExperimentConfig {
				c.Seed, c.Services, c.Prevalence, c.Workers = 7, 10, 0.5, 2
				return c
			}},
		{"partial override", `{"experiment":"e1","services":12}`,
			func(c vdbench.ExperimentConfig) vdbench.ExperimentConfig { c.Services = 12; return c }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var req SubmitRequest
			if err := json.Unmarshal([]byte(c.body), &req); err != nil {
				t.Fatal(err)
			}
			if got, want := req.config(base), c.want(base); got != want {
				t.Fatalf("resolved config = %+v, want %+v", got, want)
			}
		})
	}

	// Quick swaps the whole base before the overrides land.
	var req SubmitRequest
	if err := json.Unmarshal([]byte(`{"experiment":"e1","quick":true,"seed":0}`), &req); err != nil {
		t.Fatal(err)
	}
	want := vdbench.QuickExperimentConfig()
	want.Seed = 0
	if got := req.config(base); got != want {
		t.Fatalf("quick+seed0 = %+v, want %+v", got, want)
	}
}
