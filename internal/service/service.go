// Package service is the benchmark-as-a-service layer: a job scheduler
// over the deterministic experiment pipeline (vdbench.RunExperimentCtx)
// with a bounded worker pool, a content-addressed result cache, and
// singleflight collapsing of identical in-flight requests. Every job
// runs under its own context derived from the service root, so DELETE
// on a running job and a bounded Shutdown both abort the underlying
// campaign at its next (tool, case) cell.
//
// The design leans entirely on the repo's determinism guarantee: an
// experiment result is a pure function of (experiment ID, config minus
// Workers), byte-identical across runs and worker counts. That makes the
// cache key sound (vdbench.ExperimentCacheKey) and means a cache hit or
// a collapsed duplicate request is indistinguishable from a fresh
// campaign — determinism exploited for performance, not merely
// preserved.
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dsn2015/vdbench"
	"github.com/dsn2015/vdbench/internal/telemetry"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("service: closed")
	// ErrQueueFull is returned by Submit when the job queue is at capacity.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrUnknownExperiment is returned by Submit for an ID outside the
	// experiment catalogue.
	ErrUnknownExperiment = errors.New("service: unknown experiment")
	// ErrNotDone is returned by Job.Result while the job has not finished.
	ErrNotDone = errors.New("service: job not done")
)

// Status is a job lifecycle state.
type Status string

// Job lifecycle states.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// terminal reports whether a status is final.
func (s Status) terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Job is one submitted experiment run. Jobs are created by Submit and
// complete asynchronously; Done unblocks when the job reaches a terminal
// state. Identical in-flight submissions share one Job (singleflight).
type Job struct {
	id         string
	key        string
	experiment string
	cfg        vdbench.ExperimentConfig
	seq        uint64 // submission order among queued jobs; 0 when never queued
	ord        uint64 // global submission ordinal: the job-listing cursor, stable across restarts

	//vdlint:ignore ctxflow a Job is itself a cancellation scope: Cancel aborts it via this stored context, which exists only for the job's own lifetime
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu     sync.Mutex
	status Status
	result vdbench.ExperimentResult
	err    error
	cached bool
}

// ID returns the job identifier.
func (j *Job) ID() string { return j.id }

// Key returns the content address of the job's (experiment, config).
func (j *Job) Key() string { return j.key }

// Experiment returns the experiment ID.
func (j *Job) Experiment() string { return j.experiment }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job is terminal or ctx is done.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-j.done:
		return nil
	}
}

// Result returns the experiment result of a done job, the failure of a
// failed job, and ErrNotDone otherwise.
func (j *Job) Result() (vdbench.ExperimentResult, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case StatusDone:
		return j.result, nil
	case StatusFailed:
		return vdbench.ExperimentResult{}, j.err
	case StatusCanceled:
		return vdbench.ExperimentResult{}, context.Canceled
	default:
		return vdbench.ExperimentResult{}, ErrNotDone
	}
}

// casStatus moves the job from exactly `from` to `to`, reporting whether
// the transition happened. All lifecycle moves go through this compare-
// and-swap, so a Cancel racing a worker resolves to exactly one winner
// and done is closed exactly once.
func (j *Job) casStatus(from, to Status, res vdbench.ExperimentResult, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != from {
		return false
	}
	j.status = to
	j.result = res
	j.err = err
	if to.terminal() {
		close(j.done)
	}
	return true
}

// JobStatus is the externally visible snapshot of a job, shaped for the
// JSON API.
type JobStatus struct {
	ID         string `json:"id"`
	Experiment string `json:"experiment"`
	Key        string `json:"key"`
	Status     Status `json:"status"`
	// Ord is the global submission ordinal; the job-listing cursor is
	// "jobs with Ord greater than this", stable across restarts because
	// ordinals are journaled.
	Ord uint64 `json:"ord"`
	// Position is the 1-based queue position while queued (1 = next to
	// run), 0 otherwise. It counts jobs ahead in submission order,
	// including queued jobs that were canceled but not yet reaped, so it
	// is an upper bound.
	Position int `json:"position,omitempty"`
	// Cached is true when the result came from the content-addressed
	// cache rather than a fresh campaign.
	Cached bool   `json:"cached"`
	Error  string `json:"error,omitempty"`
	// Links maps relations to API paths (self, result, events). The HTTP
	// layer fills it; the core service leaves it nil.
	Links map[string]string `json:"links,omitempty"`
}

// Options configures a Service.
type Options struct {
	// Workers is the job worker-pool size (concurrent campaigns).
	// Defaults to 2.
	Workers int
	// QueueCap bounds the number of queued (not yet running) jobs.
	// Defaults to 64.
	QueueCap int
	// CacheBytes is the result-cache byte budget (accounted as the size
	// of each result's canonical JSON encoding). Defaults to 256 MiB;
	// negative disables caching.
	CacheBytes int64
	// BaseConfig is the configuration applied to submissions that do not
	// override it. The zero value selects vdbench.DefaultExperimentConfig.
	BaseConfig vdbench.ExperimentConfig
	// JobHistory bounds how many terminal jobs stay queryable; the
	// oldest are forgotten first. Defaults to 1024.
	JobHistory int
	// DataDir enables the durable job store: an append-only lifecycle
	// journal plus content-addressed result files under this directory.
	// On start the journal is replayed — finished jobs rehydrate the
	// result cache, unfinished jobs re-enqueue in submission order and
	// re-execute to byte-identical results (determinism guarantee).
	// Empty keeps the historical in-memory-only behaviour.
	DataDir string
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 256 << 20
	}
	if o.BaseConfig == (vdbench.ExperimentConfig{}) {
		o.BaseConfig = vdbench.DefaultExperimentConfig()
	}
	if o.JobHistory <= 0 {
		o.JobHistory = 1024
	}
	return o
}

// runner executes one experiment; injected so tests can observe and gate
// executions. Implementations must observe ctx — job cancellation and
// bounded shutdown both act by cancelling it.
type runner func(ctx context.Context, id string, cfg vdbench.ExperimentConfig) (vdbench.ExperimentResult, error)

// Service schedules experiment jobs over a bounded worker pool with a
// content-addressed result cache and singleflight request collapsing.
type Service struct {
	opts  Options
	run   runner
	reg   *telemetry.Registry
	cache *resultCache
	known map[string]bool // experiment catalogue

	queue chan *Job
	wg    sync.WaitGroup

	// draining flips once shutdown begins (or BeginDrain is called
	// explicitly ahead of it); the readiness endpoint keys off it so
	// health-checking coordinators and load balancers stop routing work
	// here while in-flight jobs finish.
	draining atomic.Bool

	//vdlint:ignore ctxflow the service owns its workers' lifetime; rootCtx is the shutdown signal Close fires, not a request context
	rootCtx    context.Context
	rootCancel context.CancelFunc

	// store is the durable journal + result store (nil when
	// Options.DataDir is empty); storeOff is a test hook that detaches
	// an abandoned service from a shared store without closing it.
	store    *jobStore
	storeOff atomic.Bool
	recovery RecoveryStats

	// events fans live campaign progress out to SSE subscribers.
	events *eventHub

	mu       sync.Mutex
	closed   bool
	jobs     map[string]*Job
	history  []string        // terminal job IDs in completion order
	inflight map[string]*Job // cache key -> queued or running job
	nextID   uint64
	nextOrd  uint64 // global submission ordinal counter
	seq      uint64 // jobs handed to the queue
	started  uint64 // jobs taken off the queue

	mSubmitted, mCompleted, mFailed, mCanceled            *telemetry.Counter
	mCacheHit, mCacheMiss, mEvicted                       *telemetry.Counter
	mCollapsed                                            *telemetry.Counter
	mJournalRecords, mJournalErrors                       *telemetry.Counter
	mJournalReplayed, mJournalTorn                        *telemetry.Counter
	mJournalMissingBlobs, mJournalOrphanBlobs             *telemetry.Counter
	mBlobsWritten, mBlobHits                              *telemetry.Counter
	mSSESubscribers, mSSEEventsSent, mSSEDropped          *telemetry.Counter
	mCompileHit, mCompileMiss                             *telemetry.Counter
	mExecPanics, mExecTimeouts, mExecErrors, mExecRetries *telemetry.Counter
	mOracleProbes, mOraclePruned, mOracleEarlyExits       *telemetry.Counter
	mOracleCacheHit, mOracleCacheMiss                     *telemetry.Counter
	gQueueDepth, gCacheEntries, gCacheBytes               *telemetry.Gauge
	hCampaign                                             *telemetry.Histogram

	// compileMu guards the delta tracking that maps the process-wide
	// monotone compile-cache totals onto this service's counters.
	compileMu                  sync.Mutex
	lastCompHits, lastCompMiss uint64

	// execMu guards the same delta tracking for the execution engine's
	// fault totals (recovered panics, deadline expiries, retries).
	execMu   sync.Mutex
	lastExec vdbench.ExecTotals

	// oracleMu guards the delta tracking for the ground-truth oracle's
	// search and cache totals.
	oracleMu                         sync.Mutex
	lastOracle                       vdbench.OracleTotals
	lastOracleHits, lastOracleMisses uint64
}

// New builds and starts a service backed by vdbench.RunExperimentCtx.
// When Options.DataDir is set, the durable job store is opened and
// replayed before any worker runs: the error return is the store
// failing to open (an unusable data directory), never replay content —
// damaged records and blobs degrade to counters, not startup failures.
// Callers must Close it to release the worker pool.
func New(opts Options) (*Service, error) {
	return newService(opts, func(ctx context.Context, id string, cfg vdbench.ExperimentConfig) (vdbench.ExperimentResult, error) {
		return vdbench.RunExperimentCtx(ctx, id, cfg)
	})
}

// newService is New with an injectable runner (test seam).
func newService(opts Options, run runner) (*Service, error) {
	opts = opts.withDefaults()
	reg := telemetry.NewRegistry()
	s := &Service{
		opts:     opts,
		run:      run,
		reg:      reg,
		cache:    newResultCache(opts.CacheBytes),
		known:    map[string]bool{},
		jobs:     map[string]*Job{},
		inflight: map[string]*Job{},
		events:   newEventHub(),

		mSubmitted: reg.Counter("vd_jobs_submitted_total", "jobs accepted by Submit"),
		mCompleted: reg.Counter("vd_jobs_completed_total", "jobs finished successfully"),
		mFailed:    reg.Counter("vd_jobs_failed_total", "jobs finished with an error"),
		mCanceled:  reg.Counter("vd_jobs_canceled_total", "jobs canceled while queued or running"),
		mCacheHit:  reg.Counter("vd_cache_hits_total", "submissions answered from the result cache"),
		mCacheMiss: reg.Counter("vd_cache_misses_total", "submissions that missed the result cache"),
		mEvicted:   reg.Counter("vd_cache_evictions_total", "cache entries evicted by the byte budget"),
		mCollapsed: reg.Counter("vd_singleflight_collapsed_total", "submissions collapsed onto an identical in-flight job"),

		mJournalRecords:      reg.Counter("vd_journal_records_total", "lifecycle records appended to the job journal"),
		mJournalErrors:       reg.Counter("vd_journal_errors_total", "journal or blob writes that failed (durability degraded)"),
		mJournalReplayed:     reg.Counter("vd_journal_replayed_total", "journal records replayed on start"),
		mJournalTorn:         reg.Counter("vd_journal_torn_records_total", "damaged journal lines dropped by the CRC guard on start"),
		mJournalMissingBlobs: reg.Counter("vd_journal_missing_blobs_total", "finished jobs requeued on start because their result blob was missing or damaged"),
		mJournalOrphanBlobs:  reg.Counter("vd_journal_orphan_blobs_total", "result blobs found on start that no journal record explains"),
		mBlobsWritten:        reg.Counter("vd_journal_blobs_written_total", "results persisted to the content-addressed store"),
		mBlobHits:            reg.Counter("vd_journal_blob_hits_total", "submissions answered from the content-addressed store after missing the memory cache"),

		mSSESubscribers: reg.Counter("vd_sse_subscribers_total", "event-stream subscriptions accepted"),
		mSSEEventsSent:  reg.Counter("vd_sse_events_sent_total", "SSE frames written to subscribers"),
		mSSEDropped:     reg.Counter("vd_sse_dropped_total", "progress snapshots coalesced away under subscriber backpressure"),

		mCompileHit:  reg.Counter("vd_compile_cache_hits_total", "campaign CFG builds served from the shared compile cache"),
		mCompileMiss: reg.Counter("vd_compile_cache_misses_total", "campaign CFG builds that lowered a graph"),

		mExecPanics:   reg.Counter("vd_exec_recovered_panics_total", "tool panics recovered by the execution engine"),
		mExecTimeouts: reg.Counter("vd_exec_timeouts_total", "tool invocations abandoned at the per-tool deadline"),
		mExecErrors:   reg.Counter("vd_exec_errors_total", "tool invocations that returned a non-retryable error"),
		mExecRetries:  reg.Counter("vd_exec_retries_total", "tool invocations retried after a retryable failure"),

		mOracleProbes:     reg.Counter("vd_oracle_probes_total", "ground-truth oracle probes executed"),
		mOraclePruned:     reg.Counter("vd_oracle_pruned_total", "ground-truth oracle probes pruned by the influence analysis"),
		mOracleEarlyExits: reg.Counter("vd_oracle_early_exits_total", "oracle sweeps stopped early with every sink proven vulnerable"),
		mOracleCacheHit:   reg.Counter("vd_oracle_cache_hits_total", "ground-truth derivations served from the content-addressed oracle cache"),
		mOracleCacheMiss:  reg.Counter("vd_oracle_cache_misses_total", "ground-truth derivations the oracle cache had to compute"),

		gQueueDepth:   reg.Gauge("vd_queue_depth", "jobs queued and not yet running"),
		gCacheEntries: reg.Gauge("vd_cache_entries", "entries in the result cache"),
		gCacheBytes:   reg.Gauge("vd_cache_bytes", "bytes accounted to the result cache"),

		hCampaign: reg.Histogram("vd_campaign_seconds", "latency of executed campaigns in seconds",
			0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120),
	}
	s.events.dropped = s.mSSEDropped
	// Baseline the compile-cache and execution-fault deltas at
	// construction: only growth that happens while this service is
	// running is attributed to it.
	s.lastCompHits, s.lastCompMiss = vdbench.CompileCacheTotals()
	s.lastExec = vdbench.ExecutionTotals()
	s.lastOracle = vdbench.OracleSearchTotals()
	s.lastOracleHits, s.lastOracleMisses = vdbench.OracleCacheTotals()
	for _, id := range vdbench.ExperimentIDs() {
		s.known[id] = true
	}
	s.rootCtx, s.rootCancel = context.WithCancel(context.Background())

	// Open and replay the durable store before the queue exists or any
	// worker runs: replay owns the whole service, so the backlog can be
	// rebuilt without locking, and the queue is sized to hold it even
	// when it exceeds the configured capacity.
	var backlog []*Job
	if opts.DataDir != "" {
		store, records, stats, err := openJobStore(opts.DataDir)
		if err != nil {
			s.rootCancel()
			return nil, err
		}
		s.store = store
		backlog = s.replayLocked(records, stats)
	}
	queueCap := opts.QueueCap
	if len(backlog) > queueCap {
		queueCap = len(backlog)
	}
	s.queue = make(chan *Job, queueCap)
	for _, job := range backlog {
		s.queue <- job
	}
	s.gQueueDepth.Set(int64(len(backlog)))

	s.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Metrics returns the service's telemetry registry (the /metrics body is
// its Snapshot).
func (s *Service) Metrics() *telemetry.Registry { return s.reg }

// BaseConfig returns the configuration applied to submissions without
// overrides.
func (s *Service) BaseConfig() vdbench.ExperimentConfig { return s.opts.BaseConfig }

// Submit schedules the experiment under the given configuration and
// returns its job. Three fast paths avoid redundant campaigns: a cache
// hit returns an already-done job; an identical in-flight request
// returns the existing job (singleflight); otherwise the job is queued,
// or ErrQueueFull when the bounded queue is at capacity.
func (s *Service) Submit(experiment string, cfg vdbench.ExperimentConfig) (*Job, error) {
	experiment = strings.ToLower(strings.TrimSpace(experiment))
	if !s.known[experiment] {
		return nil, fmt.Errorf("%w %q", ErrUnknownExperiment, experiment)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	key := vdbench.ExperimentCacheKey(experiment, cfg)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.mSubmitted.Inc()

	res, hit := s.cache.get(key)
	if hit {
		s.mCacheHit.Inc()
	} else if res, hit = s.storedResult(key); hit {
		// The memory cache missed but the content-addressed store holds
		// the result (evicted earlier, or computed by a previous process).
		// Promote it back into the LRU and answer without a campaign.
		s.mBlobHits.Inc()
		s.cache.put(key, res, resultSize(res))
	} else {
		s.mCacheMiss.Inc()
	}
	if hit {
		job := s.newJobLocked(experiment, cfg, key)
		job.cached = true
		job.status = StatusDone
		job.result = res
		close(job.done)
		s.rememberLocked(job)
		// Journaled as submitted + finished so the job survives restarts
		// like any other; its blob is already durable.
		s.journalSubmitted(job)
		s.journalFinished(job, StatusDone, nil)
		return job, nil
	}

	if j := s.inflight[key]; j != nil {
		s.mCollapsed.Inc()
		return j, nil
	}

	job := s.newJobLocked(experiment, cfg, key)
	s.seq++
	job.seq = s.seq
	s.jobs[job.id] = job
	s.inflight[key] = job
	s.gQueueDepth.Add(1)
	select {
	case s.queue <- job:
	default:
		s.seq--
		delete(s.jobs, job.id)
		delete(s.inflight, key)
		s.gQueueDepth.Add(-1)
		return nil, ErrQueueFull
	}
	s.journalSubmitted(job)
	return job, nil
}

// newJobLocked allocates a job; callers hold s.mu.
func (s *Service) newJobLocked(experiment string, cfg vdbench.ExperimentConfig, key string) *Job {
	s.nextID++
	s.nextOrd++
	ctx, cancel := context.WithCancel(s.rootCtx)
	return &Job{
		id:         fmt.Sprintf("j-%06d", s.nextID),
		key:        key,
		experiment: experiment,
		cfg:        cfg,
		ord:        s.nextOrd,
		ctx:        ctx,
		cancel:     cancel,
		done:       make(chan struct{}),
		status:     StatusQueued,
	}
}

// rememberLocked records a terminal job in the bounded history; callers
// hold s.mu.
func (s *Service) rememberLocked(job *Job) {
	s.jobs[job.id] = job
	s.history = append(s.history, job.id)
	for len(s.history) > s.opts.JobHistory {
		delete(s.jobs, s.history[0])
		s.history = s.history[1:]
	}
}

// Job returns a job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Status returns the externally visible snapshot of a job.
func (s *Service) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	started := s.started
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	job.mu.Lock()
	defer job.mu.Unlock()
	st := JobStatus{
		ID:         job.id,
		Experiment: job.experiment,
		Key:        job.key,
		Status:     job.status,
		Ord:        job.ord,
		Cached:     job.cached,
	}
	if job.err != nil {
		st.Error = job.err.Error()
	}
	if job.status == StatusQueued && job.seq > started {
		st.Position = int(job.seq - started)
	}
	return st, true
}

// JobList is one page of the job collection: statuses in submission-
// ordinal order plus the cursor for the next page (zero when this page
// reaches the end).
type JobList struct {
	Jobs []JobStatus
	Next uint64
}

// List pages through the known jobs in submission order. state filters
// to one lifecycle state ("" keeps all); cursor is the Ord of the last
// job of the previous page (0 starts from the beginning); limit bounds
// the page size (<= 0 selects 100). The cursor is stable: jobs are
// returned in ascending ordinal order, ordinals never reorder, and a
// job forgotten between pages just disappears from the stream rather
// than shifting it.
func (s *Service) List(state Status, cursor uint64, limit int) JobList {
	if limit <= 0 {
		limit = 100
	}
	s.mu.Lock()
	candidates := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if j.ord > cursor {
			candidates = append(candidates, j)
		}
	}
	s.mu.Unlock()
	sort.Slice(candidates, func(i, k int) bool { return candidates[i].ord < candidates[k].ord })

	list := JobList{Jobs: []JobStatus{}}
	for _, j := range candidates {
		st, ok := s.Status(j.id)
		if !ok || (state != "" && st.Status != state) {
			continue
		}
		list.Jobs = append(list.Jobs, st)
		if len(list.Jobs) == limit {
			// More candidates may remain (even under a state filter, the
			// remaining tail may contain matches): hand out a cursor.
			if j != candidates[len(candidates)-1] {
				list.Next = st.Ord
			}
			break
		}
	}
	return list
}

// Cancel cancels a queued or running job and reports whether it
// initiated a cancellation; terminal jobs are not cancelable. A queued
// job moves straight to canceled. A running job has its context
// canceled: the campaign engine aborts at the next (tool, case) cell,
// the worker that owns the job publishes the canceled terminal state,
// and the worker slot frees without waiting for the campaign to drain.
// In both cases the job leaves the singleflight table immediately, so a
// later identical submission runs fresh rather than collapsing onto the
// doomed job.
func (s *Service) Cancel(id string) bool {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	if s.reapQueued(job) {
		return true
	}
	job.mu.Lock()
	running := job.status == StatusRunning
	job.mu.Unlock()
	if !running {
		return false
	}
	job.cancel()
	s.mu.Lock()
	if s.inflight[job.key] == job {
		delete(s.inflight, job.key)
	}
	s.mu.Unlock()
	return true
}

// reapQueued moves a queued job straight to canceled, reporting whether
// it won the transition. Callers must not hold s.mu.
func (s *Service) reapQueued(job *Job) bool {
	if !job.casStatus(StatusQueued, StatusCanceled, vdbench.ExperimentResult{}, context.Canceled) {
		return false
	}
	job.cancel()
	s.mCanceled.Inc()
	s.journalFinished(job, StatusCanceled, nil)
	s.mu.Lock()
	if s.inflight[job.key] == job {
		delete(s.inflight, job.key)
	}
	s.rememberLocked(job)
	s.mu.Unlock()
	return true
}

// worker drains the job queue until Close.
func (s *Service) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.execute(job)
	}
}

// execute runs one dequeued job: canceled jobs (per-job Cancel or
// service shutdown) are reaped without running; everything else runs the
// experiment, populates the cache and publishes the terminal state.
func (s *Service) execute(job *Job) {
	s.mu.Lock()
	s.started++
	s.mu.Unlock()
	s.gQueueDepth.Add(-1)

	if job.ctx.Err() != nil {
		// The job was canceled while queued (per-job Cancel or service
		// shutdown): reap it unless the canceler already did.
		s.reapQueued(job)
		return
	}
	if !job.casStatus(StatusQueued, StatusRunning, vdbench.ExperimentResult{}, nil) {
		return // Cancel beat us to the job and already reaped it
	}

	// Second look at the caches now that the job actually runs: an
	// identical result may have landed while this job sat queued (another
	// key-equal job finishing, or replay re-enqueueing the same key
	// twice). Determinism makes the cached result indistinguishable from
	// a fresh campaign, so serve it and free the worker immediately.
	if res, ok := s.cache.get(job.key); ok {
		s.finishFromCache(job, res)
		return
	}
	if res, ok := s.storedResult(job.key); ok {
		s.mBlobHits.Inc()
		s.cache.put(job.key, res, resultSize(res))
		s.finishFromCache(job, res)
		return
	}

	s.journalStarted(job)
	// Thread the live-progress seam through the campaign: the aggregator
	// publishes coalescible snapshots to this job's SSE subscribers. The
	// listener only observes — the campaign result is byte-identical with
	// or without it.
	agg := newProgressAggregator(job.id, s.events)
	runCtx := vdbench.WithCampaignProgress(job.ctx, agg.observe)
	start := time.Now()
	res, err := s.run(runCtx, job.experiment, job.cfg)
	elapsed := time.Since(start).Seconds()
	s.hCampaign.Observe(elapsed)
	// Per-experiment latency: registration is idempotent by name, so the
	// histogram materialises lazily the first time an experiment runs.
	s.reg.Histogram("vd_experiment_"+job.experiment+"_seconds",
		"latency of experiment "+job.experiment+" in seconds",
		0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120).Observe(elapsed)
	s.observeCompileCache()
	s.observeExecTotals()
	s.observeOracleTotals()

	switch {
	case err != nil && job.ctx.Err() != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		// The campaign aborted because this job's context fired: DELETE
		// on a running job, or a shutdown drain budget expiring. That is
		// a cancellation, not a failure.
		if job.casStatus(StatusRunning, StatusCanceled, vdbench.ExperimentResult{}, context.Canceled) {
			s.mCanceled.Inc()
			s.journalFinished(job, StatusCanceled, nil)
		}
	case err != nil:
		job.casStatus(StatusRunning, StatusFailed, vdbench.ExperimentResult{}, err)
		s.mFailed.Inc()
		s.journalFinished(job, StatusFailed, err)
	default:
		// Durability order matters: the blob first, the finished record
		// second, so a journaled "done" always points at a blob that was
		// durable before it. A crash between the two replays as a requeue.
		s.persistResult(job.key, res)
		evicted := s.cache.put(job.key, res, resultSize(res))
		s.mEvicted.Add(uint64(evicted))
		entries, bytes := s.cache.stats()
		s.gCacheEntries.Set(int64(entries))
		s.gCacheBytes.Set(bytes)
		job.casStatus(StatusRunning, StatusDone, res, nil)
		s.mCompleted.Inc()
		s.journalFinished(job, StatusDone, nil)
	}
	job.cancel() // release the job context
	s.mu.Lock()
	if s.inflight[job.key] == job {
		delete(s.inflight, job.key)
	}
	s.rememberLocked(job)
	s.mu.Unlock()
}

// finishFromCache completes a running job with a cached result: no
// campaign, but the same terminal bookkeeping as a computed one.
func (s *Service) finishFromCache(job *Job, res vdbench.ExperimentResult) {
	job.mu.Lock()
	job.cached = true
	job.mu.Unlock()
	job.casStatus(StatusRunning, StatusDone, res, nil)
	s.mCompleted.Inc()
	s.journalFinished(job, StatusDone, nil)
	job.cancel()
	s.mu.Lock()
	if s.inflight[job.key] == job {
		delete(s.inflight, job.key)
	}
	s.rememberLocked(job)
	s.mu.Unlock()
}

// observeCompileCache folds the growth of the process-wide compile-cache
// totals since the last observation into this service's counters. The
// totals are monotone, so each delta is attributed exactly once even with
// several workers finishing concurrently.
func (s *Service) observeCompileCache() {
	hits, misses := vdbench.CompileCacheTotals()
	s.compileMu.Lock()
	dh, dm := hits-s.lastCompHits, misses-s.lastCompMiss
	s.lastCompHits, s.lastCompMiss = hits, misses
	s.compileMu.Unlock()
	s.mCompileHit.Add(dh)
	s.mCompileMiss.Add(dm)
}

// resultSize is the cache accounting size of a result: the length of its
// canonical JSON encoding (the densest artefact a client can fetch).
func resultSize(res vdbench.ExperimentResult) int64 {
	b, err := res.JSON()
	if err != nil {
		return int64(len(res.String()))
	}
	return int64(len(b))
}

// observeExecTotals folds the growth of the execution engine's
// process-wide fault totals (recovered panics, deadline expiries,
// non-retryable errors, retries) since the last observation into this
// service's counters, the same delta scheme as observeCompileCache.
func (s *Service) observeExecTotals() {
	tot := vdbench.ExecutionTotals()
	s.execMu.Lock()
	dp := tot.RecoveredPanics - s.lastExec.RecoveredPanics
	dt := tot.Timeouts - s.lastExec.Timeouts
	de := tot.Errors - s.lastExec.Errors
	dr := tot.Retries - s.lastExec.Retries
	s.lastExec = tot
	s.execMu.Unlock()
	s.mExecPanics.Add(dp)
	s.mExecTimeouts.Add(dt)
	s.mExecErrors.Add(de)
	s.mExecRetries.Add(dr)
}

// observeOracleTotals folds the growth of the ground-truth oracle's
// process-wide search counters (probes executed, probes pruned, early
// exits) and content-addressed cache counters since the last observation
// into this service's counters, the same delta scheme as
// observeCompileCache.
func (s *Service) observeOracleTotals() {
	tot := vdbench.OracleSearchTotals()
	hits, misses := vdbench.OracleCacheTotals()
	s.oracleMu.Lock()
	dp := tot.Probes - s.lastOracle.Probes
	dq := tot.Pruned - s.lastOracle.Pruned
	de := tot.EarlyExits - s.lastOracle.EarlyExits
	dh, dm := hits-s.lastOracleHits, misses-s.lastOracleMisses
	s.lastOracle = tot
	s.lastOracleHits, s.lastOracleMisses = hits, misses
	s.oracleMu.Unlock()
	s.mOracleProbes.Add(dp)
	s.mOraclePruned.Add(dq)
	s.mOracleEarlyExits.Add(de)
	s.mOracleCacheHit.Add(dh)
	s.mOracleCacheMiss.Add(dm)
}

// BeginDrain flips readiness off without stopping work: /healthz/ready
// starts answering 503 while everything else keeps serving. Call it
// ahead of Shutdown to let health-checkers route new work elsewhere
// before the listener goes away. Idempotent; Shutdown calls it
// implicitly.
func (s *Service) BeginDrain() { s.draining.Store(true) }

// Draining reports whether drain has begun (BeginDrain or Shutdown).
func (s *Service) Draining() bool { return s.draining.Load() }

// Close shuts the service down gracefully: no new submissions are
// accepted, queued jobs are canceled (their contexts fire), and running
// campaigns drain to completion before Close returns. Shutdown is the
// same with a bound on the drain.
func (s *Service) Close() { s.Shutdown(context.Background()) }

// Shutdown is Close with a drain budget: queued jobs are canceled
// immediately and running campaigns get until ctx is done to finish
// naturally. When the budget expires, the running jobs' contexts are
// canceled, each campaign aborts at its next (tool, case) cell with
// partial work discarded, and the jobs finish canceled. Shutdown
// returns once every worker has exited; with a background context it
// degenerates to a full drain.
func (s *Service) Shutdown(ctx context.Context) {
	s.BeginDrain()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		s.reapQueued(j) // no-op on running and terminal jobs
	}
	close(s.queue)

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		s.rootCancel() // abort running campaigns at the next cell boundary
		<-drained
	}
	s.rootCancel()
	if !s.storeOff.Load() {
		s.store.close() // nil-safe; after the last worker's final journal write
	}
}

// detachStore (test hook) disconnects the service from its durable
// store without closing it: no further journal or blob writes, and
// Shutdown leaves the store's files alone. Crash-recovery tests use it
// to abandon a "crashed" service whose store a successor has reopened —
// the abandoned service must not append graceful-shutdown cancellation
// records to a journal that is no longer its own.
func (s *Service) detachStore() { s.storeOff.Store(true) }
