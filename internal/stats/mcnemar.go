package stats

import (
	"fmt"
	"math"
)

// McNemarResult is the outcome of McNemar's test for paired binary
// outcomes.
type McNemarResult struct {
	// B counts cases where the first system was correct and the second
	// wrong; C the reverse. Concordant pairs carry no information and are
	// not part of the statistic.
	B, C int
	// Statistic is the continuity-corrected chi-square statistic
	// (|B−C|−1)²/(B+C), 0 when B+C == 0.
	Statistic float64
	// PValue is the two-sided p-value under the chi-square distribution
	// with one degree of freedom (1 when B+C == 0: no evidence at all).
	PValue float64
}

// Significant reports whether the difference is significant at the given
// alpha (e.g. 0.05).
func (r McNemarResult) Significant(alpha float64) bool { return r.PValue < alpha }

// McNemar runs McNemar's test with continuity correction on the
// discordant-pair counts of two systems evaluated on the same cases. It is
// the statistically appropriate way to ask "does tool A classify this
// workload's sinks better than tool B?" — comparing two accuracies with
// independent-sample machinery overstates significance because the tools
// share every case.
func McNemar(b, c int) (McNemarResult, error) {
	if b < 0 || c < 0 {
		return McNemarResult{}, fmt.Errorf("stats: McNemar needs non-negative counts, got b=%d c=%d", b, c)
	}
	res := McNemarResult{B: b, C: c}
	n := float64(b + c)
	if n == 0 {
		res.PValue = 1
		return res, nil
	}
	diff := math.Abs(float64(b-c)) - 1
	if diff < 0 {
		diff = 0
	}
	res.Statistic = diff * diff / n
	res.PValue = chiSquare1PValue(res.Statistic)
	return res, nil
}

// McNemarFromOutcomes computes the discordant counts from two aligned
// correctness vectors (true = system classified the case correctly) and
// runs the test.
func McNemarFromOutcomes(a, bOutcomes []bool) (McNemarResult, error) {
	if len(a) != len(bOutcomes) {
		return McNemarResult{}, ErrLengthMismatch
	}
	if len(a) == 0 {
		return McNemarResult{}, ErrEmpty
	}
	var b, c int
	for i := range a {
		switch {
		case a[i] && !bOutcomes[i]:
			b++
		case !a[i] && bOutcomes[i]:
			c++
		}
	}
	return McNemar(b, c)
}

// chiSquare1PValue returns the upper-tail probability of the chi-square
// distribution with one degree of freedom: P(X >= x) = erfc(sqrt(x/2)).
func chiSquare1PValue(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Erfc(math.Sqrt(x / 2))
}
