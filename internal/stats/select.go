package stats

// Deterministic in-place selection of order statistics. The bootstrap's
// percentile bounds need only four order statistics per interval, so a
// quickselect beats the previous full sort of the estimate vector — and it
// must not randomise its pivot (this package is under the detrand
// analyzer: all randomness flows through RNG streams the caller controls,
// and pivoting is not allowed to consume any).

// selectKth partially reorders xs so that xs[k] holds the k-th smallest
// value (0-based), every element before index k is <= it and every element
// after is >= it, and returns xs[k]. Pivoting is deterministic
// median-of-three, with Hoare partitioning where equal elements stop both
// scans (no quadratic blow-up on constant inputs). NaN elements make the
// ordering unspecified, as they did for the sort-based implementation.
func selectKth(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		i, j := lo-1, hi+1
		for {
			for {
				i++
				if !(xs[i] < pivot) {
					break
				}
			}
			for {
				j--
				if !(xs[j] > pivot) {
					break
				}
			}
			if i >= j {
				break
			}
			xs[i], xs[j] = xs[j], xs[i]
		}
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	return xs[k]
}

// selectQuantile computes the interpolated q-quantile (q in [0,1]) of xs,
// reordering xs in place. It returns the same value sorting xs and
// interpolating between the two straddling order statistics would.
func selectQuantile(xs []float64, q float64) float64 {
	if len(xs) == 1 {
		return xs[0]
	}
	rank := q * float64(len(xs)-1)
	loIdx := int(rank)
	if loIdx >= len(xs)-1 {
		return selectKth(xs, len(xs)-1)
	}
	a := selectKth(xs, loIdx)
	// After selection the suffix holds every larger-ranked element, so the
	// (loIdx+1)-th order statistic is its minimum — one scan instead of a
	// second selection pass.
	b := xs[loIdx+1]
	for _, v := range xs[loIdx+2:] {
		if v < b {
			b = v
		}
	}
	frac := rank - float64(loIdx)
	return a*(1-frac) + b*frac
}
