package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at step %d: %d vs %d", i, got, want)
		}
	}
}

func TestNewRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// Drain the child; then confirm the parent continues identically to a
	// fresh parent advanced by the same number of draws (1 for the split).
	for i := 0; i < 100; i++ {
		child.Uint64()
	}
	ref := NewRNG(7)
	ref.Uint64() // the draw consumed by Split
	for i := 0; i < 100; i++ {
		if got, want := parent.Uint64(), ref.Uint64(); got != want {
			t.Fatalf("parent stream perturbed by child use at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestFloat64MeanNearHalf(t *testing.T) {
	r := NewRNG(4)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %g, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := NewRNG(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if math.Abs(float64(c-want)) > float64(want)/10 {
			t.Fatalf("bucket %d count %d deviates >10%% from %d", i, c, want)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewRNG(9)
	const p, n = 0.3, 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("Bernoulli(%g) empirical rate %g", p, rate)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(10)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %g, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential draw is negative: %g", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %g, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(12)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

// Property: Perm always yields a valid permutation for any seed and small n.
func TestPermProperty(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN % 64)
		p := NewRNG(seed).Perm(n)
		seen := make(map[int]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChoiceWeighted(t *testing.T) {
	r := NewRNG(13)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 60000
	for i := 0; i < n; i++ {
		idx := r.Choice(weights)
		if idx < 0 || idx >= 3 {
			t.Fatalf("Choice returned %d", idx)
		}
		counts[idx]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight bucket drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.25 {
		t.Fatalf("weight ratio = %g, want ~3", ratio)
	}
}

func TestChoiceDegenerate(t *testing.T) {
	r := NewRNG(14)
	if got := r.Choice(nil); got != -1 {
		t.Fatalf("Choice(nil) = %d, want -1", got)
	}
	if got := r.Choice([]float64{0, 0}); got != -1 {
		t.Fatalf("Choice(zeros) = %d, want -1", got)
	}
	if got := r.Choice([]float64{-1, -2}); got != -1 {
		t.Fatalf("Choice(negatives) = %d, want -1", got)
	}
}

func TestShuffleSwapCount(t *testing.T) {
	r := NewRNG(15)
	vals := []string{"a", "b", "c", "d", "e"}
	orig := append([]string(nil), vals...)
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	// Must remain a permutation of the original multiset.
	counts := map[string]int{}
	for _, v := range vals {
		counts[v]++
	}
	for _, v := range orig {
		counts[v]--
	}
	for k, c := range counts {
		if c != 0 {
			t.Fatalf("shuffle changed multiset: %q count delta %d", k, c)
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b   uint64
		hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d, %d) = (%d, %d), want (%d, %d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
