package stats

import "testing"

// TestBootstrapIdenticalAcrossWorkers is the stats-layer half of the
// serial ≡ parallel guarantee: for every seed × worker combination the
// interval must be identical to the Workers=1 run, bit for bit.
func TestBootstrapIdenticalAcrossWorkers(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		xs := make([]float64, 230)
		gen := NewRNG(seed)
		for i := range xs {
			xs[i] = gen.NormFloat64()
		}
		base := BootstrapConfig{Resamples: 500, Confidence: 0.95, Workers: 1}
		want, err := Bootstrap(NewRNG(seed), xs, base, meanOf)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 13} {
			cfg := base
			cfg.Workers = workers
			got, err := Bootstrap(NewRNG(seed), xs, cfg, meanOf)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("seed %d workers %d: interval %+v differs from serial %+v", seed, workers, got, want)
			}
		}
	}
}

func TestBootstrapIndexedIdenticalAcrossWorkers(t *testing.T) {
	vals := make([]float64, 173)
	gen := NewRNG(3)
	for i := range vals {
		vals[i] = gen.Float64()
	}
	sumIdx := func(idx []int) float64 {
		var s float64
		for _, i := range idx {
			s += vals[i]
		}
		return s / float64(len(idx))
	}
	for _, seed := range []uint64{1, 7, 42} {
		base := BootstrapConfig{Resamples: 321, Confidence: 0.9, Workers: 1}
		want, err := BootstrapIndexed(NewRNG(seed), len(vals), base, sumIdx)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 13} {
			cfg := base
			cfg.Workers = workers
			got, err := BootstrapIndexed(NewRNG(seed), len(vals), cfg, sumIdx)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("seed %d workers %d: interval %+v differs from serial %+v", seed, workers, got, want)
			}
		}
	}
}

func TestBootstrapWorkersValidation(t *testing.T) {
	cfg := BootstrapConfig{Resamples: 10, Confidence: 0.9, Workers: -2}
	if _, err := Bootstrap(NewRNG(1), []float64{1, 2, 3}, cfg, meanOf); err == nil {
		t.Fatal("negative Workers accepted")
	}
}

// TestBootstrapWorkerCountExceedingBlocks exercises the degenerate
// parallel shapes: more workers than blocks, and a resample count that
// does not divide the block size.
func TestBootstrapWorkerCountExceedingBlocks(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	serial := BootstrapConfig{Resamples: 70, Confidence: 0.8, Workers: 1}
	want, err := Bootstrap(NewRNG(2), xs, serial, meanOf)
	if err != nil {
		t.Fatal(err)
	}
	wide := serial
	wide.Workers = 32 // 70 resamples = 2 blocks; 32 workers mostly idle
	got, err := Bootstrap(NewRNG(2), xs, wide, meanOf)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("oversubscribed pool changed the interval: %+v vs %+v", got, want)
	}
}
