package stats

import "fmt"

// Histogram is a fixed-width-bin histogram over a closed interval.
// Values outside the interval are counted in Under/Over rather than
// silently dropped, because the experiments use histograms to sanity-check
// that metric values stay within their declared ranges.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
	total  int
}

// NewHistogram returns a histogram with the given number of equal-width
// bins over [lo, hi].
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bin, got %d", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram interval [%g, %g] is empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x > h.Hi:
		h.Over++
	default:
		bin := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if bin == len(h.Counts) { // x == Hi lands in the last bin
			bin--
		}
		h.Counts[bin]++
	}
}

// Total returns the number of observations recorded, including out-of-range
// ones.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}

// Fraction returns the fraction of in-range observations that fell into
// bin i, or 0 when no observations were recorded.
func (h *Histogram) Fraction(i int) float64 {
	inRange := h.total - h.Under - h.Over
	if inRange == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(inRange)
}
