package stats

import (
	"fmt"
	"math"
)

// Wilson computes the Wilson score interval for a binomial proportion:
// successes k out of n trials at the given two-sided confidence level.
// Rate-style benchmark metrics (recall = TP out of P trials, precision =
// TP out of TP+FP trials, ...) are binomial proportions, so the Wilson
// interval gives honest error bars without resampling. The interval is
// well behaved at k = 0 and k = n, where the normal approximation
// collapses.
func Wilson(k, n int, confidence float64) (Interval, error) {
	if n <= 0 {
		return Interval{}, fmt.Errorf("stats: Wilson needs n > 0, got %d", n)
	}
	if k < 0 || k > n {
		return Interval{}, fmt.Errorf("stats: Wilson needs 0 <= k <= n, got k=%d n=%d", k, n)
	}
	if confidence <= 0 || confidence >= 1 {
		return Interval{}, fmt.Errorf("stats: confidence must be in (0,1), got %g", confidence)
	}
	z, err := normalQuantile(1 - (1-confidence)/2)
	if err != nil {
		return Interval{}, err
	}
	p := float64(k) / float64(n)
	nf := float64(n)
	z2 := z * z
	den := 1 + z2/nf
	centre := (p + z2/(2*nf)) / den
	half := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf)) / den
	// Clamp floating-point excursions: a proportion interval lives in [0,1].
	lo := math.Max(0, centre-half)
	hi := math.Min(1, centre+half)
	return Interval{Point: p, Lo: lo, Hi: hi}, nil
}

// normalQuantile returns the standard normal quantile for probability q in
// (0, 1), using the Acklam rational approximation (relative error below
// 1.15e-9 — far tighter than any benchmarking use needs).
func normalQuantile(q float64) (float64, error) {
	if q <= 0 || q >= 1 {
		return 0, fmt.Errorf("stats: quantile probability %g out of (0,1)", q)
	}
	// Coefficients of the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case q < pLow:
		u := math.Sqrt(-2 * math.Log(q))
		return (((((c[0]*u+c[1])*u+c[2])*u+c[3])*u+c[4])*u + c[5]) /
			((((d[0]*u+d[1])*u+d[2])*u+d[3])*u + 1), nil
	case q <= 1-pLow:
		u := q - 0.5
		r := u * u
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * u /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1), nil
	default:
		u := math.Sqrt(-2 * math.Log(1-q))
		return -(((((c[0]*u+c[1])*u+c[2])*u+c[3])*u+c[4])*u + c[5]) /
			((((d[0]*u+d[1])*u+d[2])*u+d[3])*u + 1), nil
	}
}
