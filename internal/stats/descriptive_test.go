package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSum(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{1}, 1},
		{[]float64{1, 2, 3}, 6},
		{[]float64{-1, 1, -1, 1}, 0},
	}
	for _, c := range cases {
		if got := Sum(c.xs); got != c.want {
			t.Errorf("Sum(%v) = %g, want %g", c.xs, got, c.want)
		}
	}
}

func TestSumKahanPrecision(t *testing.T) {
	// 1 followed by many tiny values: naive summation loses them.
	xs := make([]float64, 1_000_001)
	xs[0] = 1
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-16
	}
	got := Sum(xs)
	want := 1 + 1e-10
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("compensated Sum = %.18f, want %.18f", got, want)
	}
}

func TestMean(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Mean(nil) error = %v, want ErrEmpty", err)
	}
	m, err := Mean([]float64{2, 4, 6})
	if err != nil || m != 4 {
		t.Fatalf("Mean = %g, %v; want 4, nil", m, err)
	}
}

func TestVariance(t *testing.T) {
	if _, err := Variance(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("Variance(nil) should fail")
	}
	v, err := Variance([]float64{5})
	if err != nil || v != 0 {
		t.Fatalf("Variance(single) = %g, %v; want 0, nil", v, err)
	}
	v, _ = Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(v, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %g, want %g", v, 32.0/7.0)
	}
}

func TestStdDevMatchesVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	v, _ := Variance(xs)
	sd, _ := StdDev(xs)
	if !almostEqual(sd*sd, v, 1e-12) {
		t.Fatalf("StdDev^2 = %g, Variance = %g", sd*sd, v)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil || lo != -1 || hi != 7 {
		t.Fatalf("MinMax = (%g, %g, %v)", lo, hi, err)
	}
	if _, _, err := MinMax(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("MinMax(nil) should fail")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{75, 40},
		{40, 29}, // 15 + 0.6*(35-20) interpolation along sorted order: rank 1.6 → 20 + 0.6*15 = 29
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%g): %v", c.p, err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Percentile mutated input: %v", xs)
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty input should fail")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Fatal("negative percentile should fail")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Fatal("percentile > 100 should fail")
	}
}

func TestMedianOddEven(t *testing.T) {
	m, _ := Median([]float64{1, 3, 2})
	if m != 2 {
		t.Fatalf("odd median = %g", m)
	}
	m, _ = Median([]float64{1, 2, 3, 4})
	if m != 2.5 {
		t.Fatalf("even median = %g", m)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("Summarize(nil) should fail")
	}
}

// Property: for any non-empty sample, min <= p25 <= median <= p75 <= max and
// the mean lies within [min, max].
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			// Exclude magnitudes that overflow the running sum, which makes
			// the mean infinite and the invariant vacuous.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e100 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		ordered := s.Min <= s.P25 && s.P25 <= s.Median && s.Median <= s.P75 && s.P75 <= s.Max
		meanIn := s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
		return ordered && meanIn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is translation invariant.
func TestVarianceTranslationProperty(t *testing.T) {
	f := func(seed uint64, shiftRaw int8) bool {
		r := NewRNG(seed)
		n := 2 + r.Intn(50)
		xs := make([]float64, n)
		shifted := make([]float64, n)
		shift := float64(shiftRaw)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
			shifted[i] = xs[i] + shift
		}
		v1, _ := Variance(xs)
		v2, _ := Variance(shifted)
		return almostEqual(v1, v2, 1e-6*(1+math.Abs(v1)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
