package stats

import (
	"math"
	"testing"
)

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct {
		q, want float64
	}{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.995, 2.5758293035489004},
		{0.841344746, 1.0000000}, // Phi(1)
		{0.025, -1.959963984540054},
		{0.0001, -3.71901648545568},
	}
	for _, c := range cases {
		got, err := normalQuantile(c.q)
		if err != nil {
			t.Fatalf("quantile(%g): %v", c.q, err)
		}
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("quantile(%g) = %.9f, want %.9f", c.q, got, c.want)
		}
	}
	for _, q := range []float64{0, 1, -0.1, 1.1} {
		if _, err := normalQuantile(q); err == nil {
			t.Errorf("quantile(%g) accepted", q)
		}
	}
}

func TestWilsonKnownInterval(t *testing.T) {
	// Classic check: 8 of 10 at 95% gives approximately [0.490, 0.943].
	iv, err := Wilson(8, 10, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Point != 0.8 {
		t.Fatalf("point = %g", iv.Point)
	}
	if math.Abs(iv.Lo-0.4901) > 0.002 || math.Abs(iv.Hi-0.9433) > 0.002 {
		t.Fatalf("interval = [%g, %g], want ~[0.490, 0.943]", iv.Lo, iv.Hi)
	}
}

func TestWilsonEdges(t *testing.T) {
	// k = 0 and k = n stay inside [0, 1] and have non-zero width.
	zero, err := Wilson(0, 50, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Lo < 0 || zero.Hi <= 0 || zero.Hi > 0.2 {
		t.Fatalf("k=0 interval = [%g, %g]", zero.Lo, zero.Hi)
	}
	full, err := Wilson(50, 50, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if full.Hi > 1 || full.Lo >= 1 || full.Lo < 0.8 {
		t.Fatalf("k=n interval = [%g, %g]", full.Lo, full.Hi)
	}
}

func TestWilsonShrinksWithN(t *testing.T) {
	small, _ := Wilson(7, 10, 0.95)
	large, _ := Wilson(700, 1000, 0.95)
	if large.Width() >= small.Width() {
		t.Fatalf("interval did not shrink: %g vs %g", large.Width(), small.Width())
	}
	if !large.Contains(0.7) || !small.Contains(0.7) {
		t.Fatal("intervals should contain the true rate")
	}
}

func TestWilsonConfidenceOrdering(t *testing.T) {
	w90, _ := Wilson(30, 100, 0.90)
	w99, _ := Wilson(30, 100, 0.99)
	if w99.Width() <= w90.Width() {
		t.Fatalf("99%% interval (%g) should be wider than 90%% (%g)", w99.Width(), w90.Width())
	}
}

func TestWilsonValidation(t *testing.T) {
	if _, err := Wilson(1, 0, 0.95); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Wilson(-1, 10, 0.95); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := Wilson(11, 10, 0.95); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := Wilson(5, 10, 1); err == nil {
		t.Error("confidence=1 accepted")
	}
}

func TestWilsonCoverage(t *testing.T) {
	// Empirical coverage: simulate binomial draws, count how often the
	// 95% interval covers the true rate. Should be close to (and by the
	// Wilson construction usually slightly above) 0.95.
	rng := NewRNG(17)
	const trials, n, p = 2000, 60, 0.3
	covered := 0
	for i := 0; i < trials; i++ {
		k := 0
		for j := 0; j < n; j++ {
			if rng.Bernoulli(p) {
				k++
			}
		}
		iv, err := Wilson(k, n, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(p) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.92 || rate > 0.99 {
		t.Fatalf("empirical coverage = %g, want ~0.95", rate)
	}
}
