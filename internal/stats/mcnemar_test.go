package stats

import (
	"errors"
	"math"
	"testing"
)

func TestChiSquare1PValue(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{0, 1},
		{3.841, 0.05}, // the classic 5% critical value
		{6.635, 0.01},
		{10.828, 0.001},
	}
	for _, c := range cases {
		got := chiSquare1PValue(c.x)
		if math.Abs(got-c.want) > 0.0005 {
			t.Errorf("p(chi2 >= %g) = %g, want ~%g", c.x, got, c.want)
		}
	}
}

func TestMcNemarKnownExample(t *testing.T) {
	// Textbook example: b=10, c=2 -> chi2 = (|10-2|-1)^2/12 = 49/12 ≈ 4.083,
	// p ≈ 0.0433.
	res, err := McNemar(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Statistic-49.0/12.0) > 1e-12 {
		t.Fatalf("statistic = %g", res.Statistic)
	}
	if math.Abs(res.PValue-0.0433) > 0.001 {
		t.Fatalf("p = %g, want ~0.0433", res.PValue)
	}
	if !res.Significant(0.05) || res.Significant(0.01) {
		t.Fatal("significance thresholds wrong")
	}
}

func TestMcNemarNoDiscordance(t *testing.T) {
	res, err := McNemar(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue != 1 || res.Statistic != 0 {
		t.Fatalf("no-evidence case: %+v", res)
	}
	// Perfectly balanced disagreement is maximally insignificant too.
	res, _ = McNemar(5, 5)
	if res.Significant(0.05) {
		t.Fatalf("balanced disagreement significant? p=%g", res.PValue)
	}
}

func TestMcNemarValidation(t *testing.T) {
	if _, err := McNemar(-1, 0); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestMcNemarFromOutcomes(t *testing.T) {
	a := []bool{true, true, true, false, true, false}
	b := []bool{true, false, false, false, true, true}
	res, err := McNemarFromOutcomes(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.B != 2 || res.C != 1 {
		t.Fatalf("discordant counts = (%d, %d), want (2, 1)", res.B, res.C)
	}
	if _, err := McNemarFromOutcomes(a, b[:2]); !errors.Is(err, ErrLengthMismatch) {
		t.Fatal("length mismatch accepted")
	}
	if _, err := McNemarFromOutcomes(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty input accepted")
	}
}

func TestMcNemarPowerGrowsWithImbalance(t *testing.T) {
	weak, _ := McNemar(6, 4)
	strong, _ := McNemar(30, 4)
	if strong.PValue >= weak.PValue {
		t.Fatalf("more imbalance should mean smaller p: %g vs %g", strong.PValue, weak.PValue)
	}
	if !strong.Significant(0.001) {
		t.Fatalf("30 vs 4 should be highly significant, p=%g", strong.PValue)
	}
}
