package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by descriptive statistics that are undefined on an
// empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Sum returns the sum of xs using Kahan compensation, so experiment
// aggregates do not drift with sample ordering.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return Sum(xs) / float64(len(xs)), nil
}

// Variance returns the unbiased (n-1) sample variance of xs. A single
// observation has zero variance by convention here, because bootstrap
// resamples of size one are legal in the harness.
func Variance(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) == 1 {
		return 0, nil
	}
	m, _ := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (minimum, maximum float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	minimum, maximum = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minimum {
			minimum = x
		}
		if x > maximum {
			maximum = x
		}
	}
	return minimum, maximum, nil
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between order statistics (the "type 7" estimator used by
// most statistics packages). xs is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}

// Summary holds the standard five-figure description of a sample plus the
// mean and standard deviation. It is the unit the report package renders.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	mean, _ := Mean(xs)
	sd, _ := StdDev(xs)
	lo, hi, _ := MinMax(xs)
	p25, _ := Percentile(xs, 25)
	med, _ := Median(xs)
	p75, _ := Percentile(xs, 75)
	return Summary{
		N:      len(xs),
		Mean:   mean,
		StdDev: sd,
		Min:    lo,
		P25:    p25,
		Median: med,
		P75:    p75,
		Max:    hi,
	}, nil
}
