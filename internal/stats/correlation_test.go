package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestCovariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	cov, err := Covariance(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	vx, _ := Variance(xs)
	if !almostEqual(cov, 2*vx, 1e-12) {
		t.Fatalf("Cov(x, 2x) = %g, want %g", cov, 2*vx)
	}
}

func TestCovarianceErrors(t *testing.T) {
	if _, err := Covariance([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatal("length mismatch should fail")
	}
	if _, err := Covariance([]float64{1}, []float64{2}); !errors.Is(err, ErrEmpty) {
		t.Fatal("n<2 should fail")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	pos := []float64{10, 20, 30, 40, 50}
	neg := []float64{5, 4, 3, 2, 1}
	r, err := Pearson(xs, pos)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Fatalf("Pearson(x, 10x) = %g, %v", r, err)
	}
	r, err = Pearson(xs, neg)
	if err != nil || !almostEqual(r, -1, 1e-12) {
		t.Fatalf("Pearson(x, -x) = %g, %v", r, err)
	}
}

func TestPearsonConstantFails(t *testing.T) {
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Fatal("constant x should fail")
	}
	if _, err := Pearson([]float64{1, 2, 3}, []float64{5, 5, 5}); err == nil {
		t.Fatal("constant y should fail")
	}
}

// Property: Pearson is symmetric and bounded in [-1, 1].
func TestPearsonProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 3 + rng.Intn(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = 0.5*xs[i] + rng.NormFloat64()
		}
		rxy, err1 := Pearson(xs, ys)
		ryx, err2 := Pearson(ys, xs)
		if err1 != nil || err2 != nil {
			return true // degenerate constant draw; skip
		}
		return almostEqual(rxy, ryx, 1e-9) && rxy >= -1 && rxy <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonClampsRoundoff(t *testing.T) {
	// Nearly collinear data can push |r| infinitesimally above 1 before the
	// clamp; ensure the result is always within bounds.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 1e-14*float64(i%2)
	}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 1 {
		t.Fatalf("|r| = %g > 1", r)
	}
}
