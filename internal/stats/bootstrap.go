package stats

import (
	"errors"
	"fmt"
	"sort"
)

// BootstrapConfig controls non-parametric bootstrap estimation.
type BootstrapConfig struct {
	// Resamples is the number of bootstrap resamples (B). Typical values
	// are 1000-5000; the experiments use 2000.
	Resamples int
	// Confidence is the two-sided confidence level in (0,1), e.g. 0.95.
	Confidence float64
}

// Validate reports whether the configuration is usable.
func (c BootstrapConfig) Validate() error {
	if c.Resamples <= 0 {
		return fmt.Errorf("stats: bootstrap resamples must be positive, got %d", c.Resamples)
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		return fmt.Errorf("stats: bootstrap confidence must be in (0,1), got %g", c.Confidence)
	}
	return nil
}

// Interval is a two-sided confidence interval around a point estimate.
type Interval struct {
	Point float64
	Lo    float64
	Hi    float64
}

// Width returns the interval width.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether x lies within the interval (inclusive).
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Bootstrap estimates a percentile confidence interval for the statistic
// computed by fn over resamples of xs. fn receives a resample (which it
// must not retain) and returns the statistic value.
func Bootstrap(rng *RNG, xs []float64, cfg BootstrapConfig, fn func([]float64) float64) (Interval, error) {
	if err := cfg.Validate(); err != nil {
		return Interval{}, err
	}
	if len(xs) == 0 {
		return Interval{}, ErrEmpty
	}
	if rng == nil {
		return Interval{}, errors.New("stats: nil RNG")
	}
	point := fn(xs)
	resample := make([]float64, len(xs))
	estimates := make([]float64, cfg.Resamples)
	for b := range estimates {
		for i := range resample {
			resample[i] = xs[rng.Intn(len(xs))]
		}
		estimates[b] = fn(resample)
	}
	lo, hi := percentileBounds(estimates, cfg.Confidence)
	return Interval{Point: point, Lo: lo, Hi: hi}, nil
}

// BootstrapIndexed estimates a percentile confidence interval for a
// statistic computed from resampled *indices* of a dataset of size n. This
// supports statistics over structured records (e.g. per-test-case detection
// outcomes) without copying the records into float slices.
func BootstrapIndexed(rng *RNG, n int, cfg BootstrapConfig, fn func(idx []int) float64) (Interval, error) {
	if err := cfg.Validate(); err != nil {
		return Interval{}, err
	}
	if n <= 0 {
		return Interval{}, ErrEmpty
	}
	if rng == nil {
		return Interval{}, errors.New("stats: nil RNG")
	}
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	point := fn(identity)
	idx := make([]int, n)
	estimates := make([]float64, cfg.Resamples)
	for b := range estimates {
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		estimates[b] = fn(idx)
	}
	lo, hi := percentileBounds(estimates, cfg.Confidence)
	return Interval{Point: point, Lo: lo, Hi: hi}, nil
}

// SignStability returns the fraction of bootstrap resamples in which the
// statistic computed by fn has the same sign as its point estimate. It is
// the discriminative-power measure used by experiment E7: a metric
// discriminates two tools well when the sign of their metric delta is
// stable under resampling of the workload.
func SignStability(rng *RNG, n int, resamples int, fn func(idx []int) float64) (float64, error) {
	if n <= 0 {
		return 0, ErrEmpty
	}
	if resamples <= 0 {
		return 0, fmt.Errorf("stats: resamples must be positive, got %d", resamples)
	}
	if rng == nil {
		return 0, errors.New("stats: nil RNG")
	}
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	point := fn(identity)
	idx := make([]int, n)
	same := 0
	for b := 0; b < resamples; b++ {
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		v := fn(idx)
		if (point >= 0 && v >= 0) || (point < 0 && v < 0) {
			same++
		}
	}
	return float64(same) / float64(resamples), nil
}

// percentileBounds returns the symmetric percentile interval bounds for the
// given two-sided confidence level. estimates is consumed (sorted in place).
func percentileBounds(estimates []float64, confidence float64) (lo, hi float64) {
	sort.Float64s(estimates)
	alpha := (1 - confidence) / 2
	lo = sortedPercentile(estimates, alpha)
	hi = sortedPercentile(estimates, 1-alpha)
	return lo, hi
}

// sortedPercentile interpolates the q-quantile (q in [0,1]) of an already
// sorted slice.
func sortedPercentile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := q * float64(len(sorted)-1)
	loIdx := int(rank)
	if loIdx >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := rank - float64(loIdx)
	return sorted[loIdx]*(1-frac) + sorted[loIdx+1]*frac
}
