package stats

import (
	"errors"
	"fmt"

	"github.com/dsn2015/vdbench/internal/workpool"
)

// bootstrapBlock is the number of resamples drawn from one derived RNG
// stream. The block — not the worker — is the unit of determinism: block
// k's stream is the k-th child split off the caller's generator, and
// resamples within a block are drawn sequentially from it. Any worker may
// execute any block in any order without changing a single draw, so the
// interval bounds are byte-identical for every Workers value. The size
// only trades scheduling granularity against split overhead.
const bootstrapBlock = 64

// BootstrapConfig controls non-parametric bootstrap estimation.
type BootstrapConfig struct {
	// Resamples is the number of bootstrap resamples (B). Typical values
	// are 1000-5000; the experiments use 2000.
	Resamples int
	// Confidence is the two-sided confidence level in (0,1), e.g. 0.95.
	Confidence float64
	// Workers bounds the resampling concurrency: 0 and 1 run serially on
	// the calling goroutine, n > 1 uses up to n goroutines. The interval
	// is byte-identical for every value (see bootstrapBlock). The
	// statistic fn must then be safe for concurrent calls on distinct
	// scratch buffers.
	Workers int
}

// Validate reports whether the configuration is usable.
func (c BootstrapConfig) Validate() error {
	if c.Resamples <= 0 {
		return fmt.Errorf("stats: bootstrap resamples must be positive, got %d", c.Resamples)
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		return fmt.Errorf("stats: bootstrap confidence must be in (0,1), got %g", c.Confidence)
	}
	if c.Workers < 0 {
		return fmt.Errorf("stats: bootstrap workers must be non-negative, got %d", c.Workers)
	}
	return nil
}

// Interval is a two-sided confidence interval around a point estimate.
type Interval struct {
	Point float64
	Lo    float64
	Hi    float64
}

// Width returns the interval width.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether x lies within the interval (inclusive).
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Bootstrap estimates a percentile confidence interval for the statistic
// computed by fn over resamples of xs. fn receives a resample (which it
// must not retain) and returns the statistic value.
func Bootstrap(rng *RNG, xs []float64, cfg BootstrapConfig, fn func([]float64) float64) (Interval, error) {
	if err := cfg.Validate(); err != nil {
		return Interval{}, err
	}
	if len(xs) == 0 {
		return Interval{}, ErrEmpty
	}
	if rng == nil {
		return Interval{}, errors.New("stats: nil RNG")
	}
	point := fn(xs)
	n := len(xs)
	estimates := make([]float64, cfg.Resamples)
	if cfg.Workers <= 1 {
		buf := make([]float64, n)
		var blk RNG
		for start := 0; start < len(estimates); start += bootstrapBlock {
			rng.splitInto(&blk)
			for b := start; b < min(start+bootstrapBlock, len(estimates)); b++ {
				for i := range buf {
					buf[i] = xs[blk.Intn(n)]
				}
				estimates[b] = fn(buf)
			}
		}
	} else {
		streams := splitBlockStreams(rng, cfg.Resamples)
		bufs := make([][]float64, cfg.Workers)
		_ = workpool.New(cfg.Workers).ForEach(len(streams), func(lane, k int) error {
			buf := bufs[lane]
			if buf == nil {
				buf = make([]float64, n)
				bufs[lane] = buf
			}
			blk := &streams[k]
			start := k * bootstrapBlock
			for b := start; b < min(start+bootstrapBlock, len(estimates)); b++ {
				for i := range buf {
					buf[i] = xs[blk.Intn(n)]
				}
				estimates[b] = fn(buf)
			}
			return nil
		})
	}
	lo, hi := percentileBounds(estimates, cfg.Confidence)
	return Interval{Point: point, Lo: lo, Hi: hi}, nil
}

// BootstrapIndexed estimates a percentile confidence interval for a
// statistic computed from resampled *indices* of a dataset of size n. This
// supports statistics over structured records (e.g. per-test-case detection
// outcomes) without copying the records into float slices. It draws the
// same index streams as Bootstrap, so composing fn with an element lookup
// reproduces Bootstrap exactly.
func BootstrapIndexed(rng *RNG, n int, cfg BootstrapConfig, fn func(idx []int) float64) (Interval, error) {
	if err := cfg.Validate(); err != nil {
		return Interval{}, err
	}
	if n <= 0 {
		return Interval{}, ErrEmpty
	}
	if rng == nil {
		return Interval{}, errors.New("stats: nil RNG")
	}
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	point := fn(identity)
	estimates := make([]float64, cfg.Resamples)
	if cfg.Workers <= 1 {
		// The identity buffer has served its purpose; reuse it as the
		// resample buffer instead of allocating a second index slice.
		idx := identity
		var blk RNG
		for start := 0; start < len(estimates); start += bootstrapBlock {
			rng.splitInto(&blk)
			for b := start; b < min(start+bootstrapBlock, len(estimates)); b++ {
				for i := range idx {
					idx[i] = blk.Intn(n)
				}
				estimates[b] = fn(idx)
			}
		}
	} else {
		streams := splitBlockStreams(rng, cfg.Resamples)
		bufs := make([][]int, cfg.Workers)
		bufs[0] = identity // lane 0 reuses the identity buffer
		_ = workpool.New(cfg.Workers).ForEach(len(streams), func(lane, k int) error {
			idx := bufs[lane]
			if idx == nil {
				idx = make([]int, n)
				bufs[lane] = idx
			}
			blk := &streams[k]
			start := k * bootstrapBlock
			for b := start; b < min(start+bootstrapBlock, len(estimates)); b++ {
				for i := range idx {
					idx[i] = blk.Intn(n)
				}
				estimates[b] = fn(idx)
			}
			return nil
		})
	}
	lo, hi := percentileBounds(estimates, cfg.Confidence)
	return Interval{Point: point, Lo: lo, Hi: hi}, nil
}

// splitBlockStreams derives one child stream per bootstrap block, in block
// order, as values in a single allocation. The serial paths derive the
// same streams lazily with splitInto, so serial and parallel runs see
// identical generator states for every resample.
func splitBlockStreams(rng *RNG, resamples int) []RNG {
	streams := make([]RNG, (resamples+bootstrapBlock-1)/bootstrapBlock)
	for k := range streams {
		rng.splitInto(&streams[k])
	}
	return streams
}

// SignStability returns the fraction of bootstrap resamples in which the
// statistic computed by fn has the same sign as its point estimate. It is
// the discriminative-power measure used by experiment E7: a metric
// discriminates two tools well when the sign of their metric delta is
// stable under resampling of the workload.
//
// SignStability draws one sequential stream (no per-block splitting): its
// callers parallelise across (pair, metric) cells with one pre-split RNG
// per call, which keeps this function's historical draw sequence — and
// therefore E7's published numbers — unchanged.
func SignStability(rng *RNG, n int, resamples int, fn func(idx []int) float64) (float64, error) {
	if n <= 0 {
		return 0, ErrEmpty
	}
	if resamples <= 0 {
		return 0, fmt.Errorf("stats: resamples must be positive, got %d", resamples)
	}
	if rng == nil {
		return 0, errors.New("stats: nil RNG")
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	point := fn(idx) // identity pass; idx doubles as the resample buffer
	same := 0
	for b := 0; b < resamples; b++ {
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		v := fn(idx)
		if (point >= 0 && v >= 0) || (point < 0 && v < 0) {
			same++
		}
	}
	return float64(same) / float64(resamples), nil
}

// percentileBounds returns the symmetric percentile interval bounds for the
// given two-sided confidence level. estimates is consumed (partially
// reordered in place by quickselect).
func percentileBounds(estimates []float64, confidence float64) (lo, hi float64) {
	alpha := (1 - confidence) / 2
	lo = selectQuantile(estimates, alpha)
	hi = selectQuantile(estimates, 1-alpha)
	return lo, hi
}
