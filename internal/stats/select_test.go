package stats

import (
	"math"
	"sort"
	"testing"
)

// TestSelectKthMatchesSort cross-checks quickselect against a full sort
// for every rank on random, duplicate-heavy and adversarial inputs.
func TestSelectKthMatchesSort(t *testing.T) {
	rng := NewRNG(11)
	cases := [][]float64{
		{0},
		{2, 1},
		{5, 5, 5, 5, 5, 5, 5},
		{1, 2, 3, 4, 5, 6, 7, 8}, // already sorted
		{8, 7, 6, 5, 4, 3, 2, 1}, // reverse sorted
	}
	for c := 0; c < 20; c++ {
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			// Coarse values force many duplicates.
			xs[i] = float64(rng.Intn(10))
		}
		cases = append(cases, xs)
	}
	for ci, xs := range cases {
		want := append([]float64(nil), xs...)
		sort.Float64s(want)
		for k := range xs {
			work := append([]float64(nil), xs...)
			got := selectKth(work, k)
			if got != want[k] {
				t.Fatalf("case %d: selectKth(k=%d) = %g, want %g", ci, k, got, want[k])
			}
			// Partition invariant: prefix <= xs[k] <= suffix.
			for i := 0; i < k; i++ {
				if work[i] > got {
					t.Fatalf("case %d k=%d: prefix element %g > selected %g", ci, k, work[i], got)
				}
			}
			for i := k + 1; i < len(work); i++ {
				if work[i] < got {
					t.Fatalf("case %d k=%d: suffix element %g < selected %g", ci, k, work[i], got)
				}
			}
		}
	}
}

// referenceQuantile is the interpolation the pre-quickselect
// implementation computed on a sorted copy.
func referenceQuantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := q * float64(len(s)-1)
	loIdx := int(rank)
	if loIdx >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := rank - float64(loIdx)
	return s[loIdx]*(1-frac) + s[loIdx+1]*frac
}

func TestSelectQuantileMatchesSortedInterpolation(t *testing.T) {
	rng := NewRNG(12)
	for c := 0; c < 50; c++ {
		n := 1 + rng.Intn(300)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		for _, q := range []float64{0, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 1} {
			want := referenceQuantile(xs, q)
			got := selectQuantile(append([]float64(nil), xs...), q)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("n=%d q=%g: selectQuantile = %g, reference = %g", n, q, got, want)
			}
		}
	}
}
