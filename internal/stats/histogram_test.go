package stats

import (
	"math"
	"testing"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("zero bins should fail")
	}
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Fatal("empty interval should fail")
	}
	if _, err := NewHistogram(2, 1, 4); err == nil {
		t.Fatal("inverted interval should fail")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 0.1, 0.26, 0.5, 0.74, 0.9, 1.0} {
		h.Add(x)
	}
	want := []int{2, 1, 2, 2} // 0.5 opens bin 2; 1.0 folds into the last bin
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("bin %d count = %d, want %d (all: %v)", i, c, want[i], h.Counts)
		}
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h, _ := NewHistogram(0, 1, 2)
	h.Add(-0.5)
	h.Add(1.5)
	h.Add(0.5)
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("Under=%d Over=%d", h.Under, h.Over)
	}
	if got := h.Fraction(1); got != 1 {
		t.Fatalf("Fraction(1) = %g, want 1 (only in-range value lands in bin 1)", got)
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h, _ := NewHistogram(0, 10, 5)
	for i, want := range []float64{1, 3, 5, 7, 9} {
		if got := h.BinCenter(i); math.Abs(got-want) > 1e-12 {
			t.Fatalf("BinCenter(%d) = %g, want %g", i, got, want)
		}
	}
}

func TestHistogramFractionEmpty(t *testing.T) {
	h, _ := NewHistogram(0, 1, 3)
	if got := h.Fraction(0); got != 0 {
		t.Fatalf("Fraction on empty histogram = %g", got)
	}
}
