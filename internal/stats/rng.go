// Package stats provides the deterministic statistics substrate used by
// every experiment in the repository: a seedable random number generator,
// descriptive statistics, bootstrap resampling, and correlation measures.
//
// The paper's evaluation depends on reproducible sampling (workload
// generation, simulated tool behaviour, bootstrap confidence intervals,
// MCDA sensitivity analysis). Go's standard library offers only a global,
// implicitly seeded math/rand; this package replaces it with an explicit,
// injectable generator so that every experiment is a pure function of its
// seed.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator based on
// xoshiro256** with splitmix64 seeding. It is NOT safe for concurrent use;
// give each goroutine its own RNG (see Split).
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given seed. Two generators
// built from the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.seed(seed)
	return r
}

// seed (re)initialises the state in place: a splitmix64 expansion of the
// seed into the xoshiro state, per the reference implementation
// recommendation.
func (r *RNG) seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

// Split derives an independent generator from the current one. The derived
// stream is deterministic given the parent's state, and advancing the child
// does not advance the parent.
func (r *RNG) Split() *RNG {
	child := &RNG{}
	r.splitInto(child)
	return child
}

// splitInto is Split without the allocation: it reseeds child in place
// from the parent's next draw. The bootstrap's per-block streams use this
// to pre-split hundreds of value-typed generators with zero per-stream
// allocations; the derived streams are identical to Split's.
func (r *RNG) splitInto(child *RNG) {
	child.seed(r.Uint64() ^ 0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	// Take the top 53 bits for a uniformly distributed double.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, mirroring
// math/rand; callers control n so this indicates a programming error.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling with rejection to
	// remove modulo bias.
	un := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, un)
		if lo >= un || lo >= (-un)%un {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + (t >> 32) + (aLo*bHi+t&mask)>>32
	return hi, lo
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard-normal value using the polar
// (Marsaglia) method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts performs an in-place Fisher–Yates shuffle.
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle performs an in-place Fisher–Yates shuffle using the provided
// swap function, mirroring math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns a uniformly chosen index weighted by the given
// non-negative weights. It returns -1 if the weights sum to zero or the
// slice is empty.
func (r *RNG) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	target := r.Float64() * total
	var acc float64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	// Floating-point slack: fall back to the last positive weight.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return -1
}
