package stats

import (
	"errors"
	"math"
)

// ErrLengthMismatch is returned when paired-sample statistics receive
// slices of different lengths.
var ErrLengthMismatch = errors.New("stats: paired samples have different lengths")

// Covariance returns the unbiased sample covariance of the paired samples.
func Covariance(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var s float64
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(len(xs)-1), nil
}

// Pearson returns the Pearson product-moment correlation coefficient of the
// paired samples. If either sample is constant the correlation is
// undefined and an error is returned.
func Pearson(xs, ys []float64) (float64, error) {
	cov, err := Covariance(xs, ys)
	if err != nil {
		return 0, err
	}
	sx, _ := StdDev(xs)
	sy, _ := StdDev(ys)
	if sx == 0 || sy == 0 {
		return 0, errors.New("stats: correlation undefined for constant sample")
	}
	r := cov / (sx * sy)
	// Clamp tiny floating-point excursions outside [-1, 1].
	return math.Max(-1, math.Min(1, r)), nil
}
