package stats

import (
	"sort"
	"testing"
)

// benchEstimates builds a deterministic unsorted estimate vector of the
// size the default experiments use (BootstrapResamples = 2000).
func benchEstimates(n int) []float64 {
	rng := NewRNG(11)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	return xs
}

// BenchmarkPercentileBounds isolates the interval-extraction step of
// every bootstrap: quickselect replaces the former sort.Float64s, turning
// O(B log B) comparison sorting into O(B) selection with zero
// allocations.
func BenchmarkPercentileBounds(b *testing.B) {
	src := benchEstimates(2000)
	buf := make([]float64, len(src))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		lo, hi := percentileBounds(buf, 0.95)
		if lo > hi {
			b.Fatal("inverted bounds")
		}
	}
}

// BenchmarkPercentileBoundsSort is the pre-quickselect reference
// implementation (sort, then interpolate both quantiles), kept as a
// benchmark-only baseline so the win stays measurable in place.
func BenchmarkPercentileBoundsSort(b *testing.B) {
	src := benchEstimates(2000)
	buf := make([]float64, len(src))
	sortedQuantile := func(sorted []float64, q float64) float64 {
		rank := q * float64(len(sorted)-1)
		loIdx := int(rank)
		if loIdx >= len(sorted)-1 {
			return sorted[len(sorted)-1]
		}
		frac := rank - float64(loIdx)
		return sorted[loIdx]*(1-frac) + sorted[loIdx+1]*frac
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		sort.Float64s(buf)
		alpha := (1 - 0.95) / 2
		lo, hi := sortedQuantile(buf, alpha), sortedQuantile(buf, 1-alpha)
		if lo > hi {
			b.Fatal("inverted bounds")
		}
	}
}

// BenchmarkSignStability measures the E7 inner loop: the index buffer now
// doubles as the identity permutation, so the whole call allocates once.
func BenchmarkSignStability(b *testing.B) {
	rng := NewRNG(12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SignStability(rng, 500, 200, func(idx []int) float64 {
			return float64(idx[0] - idx[len(idx)-1])
		}); err != nil {
			b.Fatal(err)
		}
	}
}
