package stats

import (
	"errors"
	"math"
	"testing"
)

func meanOf(xs []float64) float64 {
	m, _ := Mean(xs)
	return m
}

func TestBootstrapConfigValidate(t *testing.T) {
	cases := []struct {
		cfg  BootstrapConfig
		ok   bool
		name string
	}{
		{BootstrapConfig{Resamples: 100, Confidence: 0.95}, true, "valid"},
		{BootstrapConfig{Resamples: 0, Confidence: 0.95}, false, "zero resamples"},
		{BootstrapConfig{Resamples: -1, Confidence: 0.95}, false, "negative resamples"},
		{BootstrapConfig{Resamples: 100, Confidence: 0}, false, "zero confidence"},
		{BootstrapConfig{Resamples: 100, Confidence: 1}, false, "unit confidence"},
		{BootstrapConfig{Resamples: 100, Confidence: 1.2}, false, "overshoot confidence"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v", c.name, err)
		}
	}
}

func TestBootstrapMeanCoversTruth(t *testing.T) {
	rng := NewRNG(1)
	// Sample from N(10, 2^2).
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = 10 + 2*rng.NormFloat64()
	}
	iv, err := Bootstrap(rng, xs, BootstrapConfig{Resamples: 2000, Confidence: 0.95}, meanOf)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(iv.Point) {
		t.Fatalf("interval %+v does not contain its own point estimate", iv)
	}
	if !iv.Contains(10) {
		t.Fatalf("95%% interval %+v misses the true mean 10 (possible but should not happen at this seed)", iv)
	}
	if iv.Width() <= 0 || iv.Width() > 1 {
		t.Fatalf("interval width %g implausible for n=400, sd=2", iv.Width())
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	cfg := BootstrapConfig{Resamples: 500, Confidence: 0.9}
	iv1, err1 := Bootstrap(NewRNG(9), xs, cfg, meanOf)
	iv2, err2 := Bootstrap(NewRNG(9), xs, cfg, meanOf)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if iv1 != iv2 {
		t.Fatalf("same seed produced different intervals: %+v vs %+v", iv1, iv2)
	}
}

func TestBootstrapErrors(t *testing.T) {
	cfg := BootstrapConfig{Resamples: 10, Confidence: 0.9}
	if _, err := Bootstrap(NewRNG(1), nil, cfg, meanOf); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty sample should fail")
	}
	if _, err := Bootstrap(nil, []float64{1}, cfg, meanOf); err == nil {
		t.Fatal("nil RNG should fail")
	}
	if _, err := Bootstrap(NewRNG(1), []float64{1}, BootstrapConfig{}, meanOf); err == nil {
		t.Fatal("invalid config should fail")
	}
}

func TestBootstrapIndexedAgreesWithPlain(t *testing.T) {
	xs := []float64{2, 4, 6, 8, 10, 12}
	cfg := BootstrapConfig{Resamples: 1000, Confidence: 0.9}
	plain, err := Bootstrap(NewRNG(5), xs, cfg, meanOf)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := BootstrapIndexed(NewRNG(5), len(xs), cfg, func(idx []int) float64 {
		var s float64
		for _, i := range idx {
			s += xs[i]
		}
		return s / float64(len(idx))
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain != indexed {
		t.Fatalf("indexed bootstrap %+v != plain bootstrap %+v", indexed, plain)
	}
}

func TestBootstrapIndexedErrors(t *testing.T) {
	cfg := BootstrapConfig{Resamples: 10, Confidence: 0.9}
	if _, err := BootstrapIndexed(NewRNG(1), 0, cfg, func([]int) float64 { return 0 }); !errors.Is(err, ErrEmpty) {
		t.Fatal("n=0 should fail")
	}
	if _, err := BootstrapIndexed(nil, 3, cfg, func([]int) float64 { return 0 }); err == nil {
		t.Fatal("nil RNG should fail")
	}
}

func TestSignStabilityClearSeparation(t *testing.T) {
	// Statistic: mean of resample minus 0. Data strictly positive, so the
	// sign should be preserved in (almost) every resample.
	xs := []float64{1, 1.5, 2, 2.5, 3}
	frac, err := SignStability(NewRNG(2), len(xs), 500, func(idx []int) float64 {
		var s float64
		for _, i := range idx {
			s += xs[i]
		}
		return s
	})
	if err != nil {
		t.Fatal(err)
	}
	if frac != 1 {
		t.Fatalf("sign stability = %g, want 1 for strictly positive data", frac)
	}
}

func TestSignStabilityAmbiguous(t *testing.T) {
	// Zero-centred data: resampled mean flips sign often, stability ~0.5.
	rng := NewRNG(3)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	frac, err := SignStability(rng, len(xs), 1000, func(idx []int) float64 {
		var s float64
		for _, i := range idx {
			s += xs[i]
		}
		return s / float64(len(idx))
	})
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.2 || frac > 0.95 {
		t.Fatalf("sign stability = %g for noise data, expected mid-range", frac)
	}
}

func TestSignStabilityErrors(t *testing.T) {
	fn := func([]int) float64 { return 1 }
	if _, err := SignStability(NewRNG(1), 0, 10, fn); !errors.Is(err, ErrEmpty) {
		t.Fatal("n=0 should fail")
	}
	if _, err := SignStability(NewRNG(1), 5, 0, fn); err == nil {
		t.Fatal("resamples=0 should fail")
	}
	if _, err := SignStability(nil, 5, 10, fn); err == nil {
		t.Fatal("nil RNG should fail")
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Point: 0.5, Lo: 0.25, Hi: 0.75}
	if iv.Width() != 0.5 {
		t.Fatalf("Width = %g", iv.Width())
	}
	if !iv.Contains(0.25) || !iv.Contains(0.75) || iv.Contains(0.76) || iv.Contains(0.24) {
		t.Fatal("Contains boundary behaviour wrong")
	}
}

func TestSelectQuantileEndpoints(t *testing.T) {
	s := []float64{4, 1, 3, 2} // selectQuantile must not require sorted input
	if got := selectQuantile(append([]float64(nil), s...), 0); got != 1 {
		t.Fatalf("q=0 -> %g", got)
	}
	if got := selectQuantile(append([]float64(nil), s...), 1); got != 4 {
		t.Fatalf("q=1 -> %g", got)
	}
	if got := selectQuantile([]float64{7}, 0.3); got != 7 {
		t.Fatalf("single-element -> %g", got)
	}
	if got := selectQuantile(append([]float64(nil), s...), 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("q=0.5 -> %g", got)
	}
}
