package ranking

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/dsn2015/vdbench/internal/stats"
)

func TestKendallTauPerfect(t *testing.T) {
	a := []float64{4, 3, 2, 1}
	tau, err := KendallTau(a, a)
	if err != nil || tau != 1 {
		t.Fatalf("tau(a,a) = %g, %v", tau, err)
	}
	rev := []float64{1, 2, 3, 4}
	tau, err = KendallTau(a, rev)
	if err != nil || tau != -1 {
		t.Fatalf("tau(a,-a) = %g, %v", tau, err)
	}
}

func TestKendallTauKnown(t *testing.T) {
	// Classic small example: one discordant pair of six.
	a := []float64{1, 2, 3, 4}
	b := []float64{1, 2, 4, 3}
	tau, err := KendallTau(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := (5.0 - 1.0) / 6.0
	if math.Abs(tau-want) > 1e-12 {
		t.Fatalf("tau = %g, want %g", tau, want)
	}
}

func TestKendallTauTies(t *testing.T) {
	a := []float64{1, 1, 2}
	b := []float64{1, 2, 3}
	tau, err := KendallTau(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// pairs: (0,1) tied in a; (0,2),(1,2) concordant. n0=3, tiesA=1.
	want := 2.0 / math.Sqrt(3*2)
	if math.Abs(tau-want) > 1e-12 {
		t.Fatalf("tau-b = %g, want %g", tau, want)
	}
}

func TestKendallTauErrors(t *testing.T) {
	if _, err := KendallTau([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatal("length mismatch accepted")
	}
	if _, err := KendallTau([]float64{1}, []float64{1}); !errors.Is(err, ErrTooShort) {
		t.Fatal("single item accepted")
	}
	if _, err := KendallTau([]float64{5, 5, 5}, []float64{1, 2, 3}); err == nil {
		t.Fatal("fully tied sample should be undefined")
	}
}

func TestRanks(t *testing.T) {
	got := Ranks([]float64{10, 30, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
	// Average ranks on ties.
	got = Ranks([]float64{5, 5, 1})
	want = []float64{1.5, 1.5, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tied Ranks = %v, want %v", got, want)
		}
	}
}

func TestSpearmanRho(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	rho, err := SpearmanRho(a, []float64{2, 4, 6, 8, 10})
	if err != nil || math.Abs(rho-1) > 1e-12 {
		t.Fatalf("rho monotone = %g, %v", rho, err)
	}
	rho, err = SpearmanRho(a, []float64{5, 4, 3, 2, 1})
	if err != nil || math.Abs(rho+1) > 1e-12 {
		t.Fatalf("rho reversed = %g, %v", rho, err)
	}
	if _, err := SpearmanRho(a, []float64{1, 1, 1, 1, 1}); err == nil {
		t.Fatal("constant sample should be undefined")
	}
	if _, err := SpearmanRho([]float64{1}, []float64{1}); !errors.Is(err, ErrTooShort) {
		t.Fatal("too-short accepted")
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{0.2, 0.9, 0.5, 0.9}
	got := TopK(scores, 2)
	// Ties broken by lower index: items 1 and 3 both 0.9.
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("TopK = %v", got)
	}
	if TopK(scores, 0) != nil {
		t.Fatal("k=0 should be empty")
	}
	if len(TopK(scores, 99)) != 4 {
		t.Fatal("k>n should clamp")
	}
}

func TestTopKOverlap(t *testing.T) {
	a := []float64{4, 3, 2, 1}
	b := []float64{4, 3, 1, 2}
	ov, err := TopKOverlap(a, b, 2)
	if err != nil || ov != 1 {
		t.Fatalf("overlap top2 = %g, %v", ov, err)
	}
	c := []float64{1, 2, 3, 4}
	ov, err = TopKOverlap(a, c, 2)
	if err != nil || ov != 0 {
		t.Fatalf("overlap disjoint = %g, %v", ov, err)
	}
	if _, err := TopKOverlap(a, b, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := TopKOverlap(a, []float64{1}, 1); !errors.Is(err, ErrLengthMismatch) {
		t.Fatal("length mismatch accepted")
	}
}

func TestBorda(t *testing.T) {
	// Two voters agree: item 0 best.
	voters := [][]float64{
		{3, 2, 1},
		{5, 4, 0},
	}
	counts, err := Borda(voters)
	if err != nil {
		t.Fatal(err)
	}
	if !(counts[0] > counts[1] && counts[1] > counts[2]) {
		t.Fatalf("Borda = %v", counts)
	}
	if _, err := Borda(nil); err == nil {
		t.Fatal("no voters accepted")
	}
	if _, err := Borda([][]float64{{}}); err == nil {
		t.Fatal("no items accepted")
	}
	if _, err := Borda([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged voters accepted")
	}
}

// Property: tau and rho are symmetric and bounded on random score vectors.
func TestCorrelationProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 3 + rng.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.Float64()
			b[i] = rng.Float64()
		}
		tau1, err1 := KendallTau(a, b)
		tau2, err2 := KendallTau(b, a)
		if err1 != nil || err2 != nil {
			return true // degenerate tie case
		}
		if math.Abs(tau1-tau2) > 1e-12 || tau1 < -1-1e-12 || tau1 > 1+1e-12 {
			return false
		}
		rho1, err1 := SpearmanRho(a, b)
		rho2, err2 := SpearmanRho(b, a)
		if err1 != nil || err2 != nil {
			return true
		}
		return math.Abs(rho1-rho2) < 1e-9 && rho1 >= -1-1e-9 && rho1 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a strictly monotone transform of the scores leaves tau
// unchanged (rank statistics only see order).
func TestTauMonotoneInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 3 + rng.Intn(15)
		a := make([]float64, n)
		b := make([]float64, n)
		aT := make([]float64, n)
		for i := range a {
			a[i] = rng.Float64()
			b[i] = rng.Float64()
			aT[i] = math.Exp(2*a[i]) + 1 // strictly increasing transform
		}
		t1, err1 := KendallTau(a, b)
		t2, err2 := KendallTau(aT, b)
		if err1 != nil || err2 != nil {
			return true
		}
		return math.Abs(t1-t2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
