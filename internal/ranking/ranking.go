// Package ranking provides rank-correlation and rank-aggregation
// utilities: Kendall's tau-b, Spearman's rho, top-k overlap, and Borda
// aggregation. The experiments use them to quantify how strongly different
// metrics disagree about tool orderings, and how well MCDA-produced
// rankings agree with the analytical selection.
package ranking

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/dsn2015/vdbench/internal/stats"
)

// ErrTooShort is returned for samples with fewer than two items.
var ErrTooShort = errors.New("ranking: need at least two items")

// ErrLengthMismatch is returned for paired samples of different lengths.
var ErrLengthMismatch = errors.New("ranking: paired samples have different lengths")

// KendallTau computes Kendall's tau-b between two score vectors over the
// same items, with the standard tie correction. Scores are "goodness"
// values: higher means ranked earlier. The result is in [-1, 1]; it is
// undefined (error) when either vector is entirely tied.
func KendallTau(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrLengthMismatch
	}
	n := len(a)
	if n < 2 {
		return 0, ErrTooShort
	}
	var concordant, discordant float64
	var tiesA, tiesB float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := a[i] - a[j]
			db := b[i] - b[j]
			switch {
			case da == 0 && db == 0:
				tiesA++
				tiesB++
			case da == 0:
				tiesA++
			case db == 0:
				tiesB++
			case da*db > 0:
				concordant++
			default:
				discordant++
			}
		}
	}
	n0 := float64(n*(n-1)) / 2
	den := math.Sqrt((n0 - tiesA) * (n0 - tiesB))
	if den == 0 {
		return 0, fmt.Errorf("ranking: tau undefined, a sample is fully tied")
	}
	return (concordant - discordant) / den, nil
}

// Ranks converts scores to ranks (1 = highest score), assigning average
// ranks to ties.
func Ranks(scores []float64) []float64 {
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool { return scores[idx[x]] > scores[idx[y]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		avg := (float64(i+1) + float64(j)) / 2
		for k := i; k < j; k++ {
			ranks[idx[k]] = avg
		}
		i = j
	}
	return ranks
}

// SpearmanRho computes Spearman's rank correlation (Pearson correlation of
// average ranks) between two score vectors.
func SpearmanRho(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrLengthMismatch
	}
	if len(a) < 2 {
		return 0, ErrTooShort
	}
	ra := Ranks(a)
	rb := Ranks(b)
	rho, err := stats.Pearson(ra, rb)
	if err != nil {
		return 0, fmt.Errorf("ranking: %w", err)
	}
	return rho, nil
}

// TopK returns the indices of the k highest scores (ties broken by lower
// index first, for determinism).
func TopK(scores []float64, k int) []int {
	n := len(scores)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool { return scores[idx[x]] > scores[idx[y]] })
	return idx[:k]
}

// TopKOverlap returns |topK(a) ∩ topK(b)| / k.
func TopKOverlap(a, b []float64, k int) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrLengthMismatch
	}
	if k <= 0 {
		return 0, errors.New("ranking: k must be positive")
	}
	if k > len(a) {
		k = len(a)
	}
	inA := make(map[int]bool, k)
	for _, i := range TopK(a, k) {
		inA[i] = true
	}
	common := 0
	for _, i := range TopK(b, k) {
		if inA[i] {
			common++
		}
	}
	return float64(common) / float64(k), nil
}

// Borda aggregates multiple score vectors over the same items into Borda
// counts: each voter awards n-rank points per item (average on ties via
// average ranks). Higher Borda count means better consensus position.
func Borda(voters [][]float64) ([]float64, error) {
	if len(voters) == 0 {
		return nil, errors.New("ranking: no voters")
	}
	n := len(voters[0])
	if n == 0 {
		return nil, errors.New("ranking: no items")
	}
	out := make([]float64, n)
	for v, scores := range voters {
		if len(scores) != n {
			return nil, fmt.Errorf("ranking: voter %d has %d items, want %d: %w", v, len(scores), n, ErrLengthMismatch)
		}
		ranks := Ranks(scores)
		for i, r := range ranks {
			out[i] += float64(n) - r
		}
	}
	return out, nil
}
