// Package journal is the durable persistence layer under the serving
// daemon: an append-only JSONL journal of job lifecycle records plus a
// content-addressed blob store for experiment results. Both sides are
// deliberately mechanism, not policy — the package knows how to frame,
// checksum, fsync and replay records, while internal/service decides
// what the records mean and when to write them.
//
// Durability model. Every Append encodes one record as a single line
//
//	v1 <crc32c-hex> <canonical JSON>\n
//
// and fsyncs the file before returning, so a record boundary is also a
// durability boundary: after a crash the journal contains a prefix of
// the acknowledged records plus at most one torn tail line. Replay
// verifies the CRC of every line; the first bad line and everything
// after it are discarded and the file is truncated back to the last
// good record, turning a torn write into a clean append point. A torn
// line can only be the tail in the crash model (single appender,
// fsync per record); mid-file corruption is treated the same way —
// conservatively, records from the first damaged line on are dropped
// and counted, never silently reinterpreted.
//
// The blob store (see store.go) holds one content-addressed file per
// result, written via temp-file + rename with its own CRC header, so a
// half-written blob is detected on read and treated as absent — the
// deterministic pipeline can always recompute it.
package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// recordPrefix versions the line framing; bump it when the framing (not
// the record vocabulary) changes incompatibly.
const recordPrefix = "v1 "

// castagnoli is the CRC-32C table used for both journal lines and blob
// headers (the polynomial with hardware support on common CPUs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one job lifecycle event. The vocabulary (Type and Status
// values) belongs to the writer; the journal only frames, checksums and
// replays records. Fields irrelevant to a given type stay zero and are
// omitted from the encoding.
type Record struct {
	// Type is the lifecycle event: "submitted", "started" or "finished".
	Type string `json:"type"`
	// Job is the stable job identifier the record belongs to.
	Job string `json:"job"`
	// Ord is the global submission ordinal (pagination cursor order);
	// set on "submitted" records.
	Ord uint64 `json:"ord,omitempty"`
	// Experiment and Key identify what the job computes: the experiment
	// ID and the content address of (experiment, config).
	Experiment string `json:"experiment,omitempty"`
	Key        string `json:"key,omitempty"`
	// Config is the full resolved experiment configuration as JSON; set
	// on "submitted" records so a replay can re-execute the job without
	// any in-memory state surviving the crash.
	Config json.RawMessage `json:"config,omitempty"`
	// Status is the terminal state of a "finished" record: "done",
	// "failed" or "canceled".
	Status string `json:"status,omitempty"`
	// Error carries the failure message of a failed job.
	Error string `json:"error,omitempty"`
}

// ReplayStats summarises what Open found in an existing journal.
type ReplayStats struct {
	// Records is the number of intact records replayed.
	Records int
	// Torn is the number of lines dropped because they failed framing or
	// CRC verification (at most one in the single-appender crash model;
	// more indicates mid-file damage, handled by discarding the tail).
	Torn int
	// TruncatedBytes is how many bytes were cut off the file to restore
	// a clean append point after the last intact record.
	TruncatedBytes int64
}

// Journal is a single-writer append-only record log. Append is safe for
// concurrent use; replay happens once, inside Open.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// Open reads the journal at path (creating it when absent), replays
// every intact record into the returned slice, truncates any torn tail
// so the file ends at a record boundary, and leaves the file open for
// appending. The caller owns the returned records; the journal itself
// keeps no record state.
func Open(path string) (*Journal, []Record, ReplayStats, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, ReplayStats{}, fmt.Errorf("journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, ReplayStats{}, fmt.Errorf("journal: %w", err)
	}
	records, stats, goodEnd, unterminated, err := replay(f)
	if err != nil {
		f.Close()
		return nil, nil, ReplayStats{}, err
	}
	if stats.TruncatedBytes > 0 {
		if err := f.Truncate(goodEnd); err != nil {
			f.Close()
			return nil, nil, ReplayStats{}, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, ReplayStats{}, fmt.Errorf("journal: %w", err)
		}
	}
	if _, err := f.Seek(0, 2); err != nil { // io.SeekEnd; append from the clean end
		f.Close()
		return nil, nil, ReplayStats{}, fmt.Errorf("journal: %w", err)
	}
	if unterminated {
		// The final record survived intact but lost its newline in the
		// crash; re-terminate it so the next Append starts a fresh line
		// instead of concatenating onto this one.
		if _, err := f.WriteString("\n"); err != nil {
			f.Close()
			return nil, nil, ReplayStats{}, fmt.Errorf("journal: repairing tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, ReplayStats{}, fmt.Errorf("journal: %w", err)
		}
	}
	return &Journal{f: f, path: path}, records, stats, nil
}

// replay scans the whole file, returning the intact records, replay
// statistics, the byte offset just past the last intact record, and
// whether that last record was missing its trailing newline.
func replay(f *os.File) ([]Record, ReplayStats, int64, bool, error) {
	if _, err := f.Seek(0, 0); err != nil {
		return nil, ReplayStats{}, 0, false, fmt.Errorf("journal: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		return nil, ReplayStats{}, 0, false, fmt.Errorf("journal: %w", err)
	}
	var (
		records []Record
		stats   ReplayStats
		goodEnd int64
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		rec, ok := decodeLine(line)
		if !ok {
			// First damaged line: everything from here on is dropped.
			// Count the remaining lines so the caller sees the blast
			// radius, then stop.
			stats.Torn++
			for sc.Scan() {
				stats.Torn++
			}
			break
		}
		records = append(records, rec)
		stats.Records++
		goodEnd += int64(len(line)) + 1 // the scanner ate the newline
	}
	if err := sc.Err(); err != nil {
		return nil, ReplayStats{}, 0, false, fmt.Errorf("journal: reading: %w", err)
	}
	// A crash can persist a complete final payload but not its newline;
	// the CRC still verifies, so the record is kept. goodEnd counted the
	// missing byte — clamp, and tell the caller to re-terminate the line.
	unterminated := false
	if goodEnd > info.Size() {
		goodEnd = info.Size()
		unterminated = true
	}
	stats.TruncatedBytes = info.Size() - goodEnd
	return records, stats, goodEnd, unterminated, nil
}

// decodeLine parses one framed line, verifying version prefix and CRC.
func decodeLine(line string) (Record, bool) {
	rest, ok := strings.CutPrefix(line, recordPrefix)
	if !ok {
		return Record{}, false
	}
	crcHex, payload, ok := strings.Cut(rest, " ")
	if !ok || len(crcHex) != 8 {
		return Record{}, false
	}
	var want uint32
	if _, err := fmt.Sscanf(crcHex, "%08x", &want); err != nil {
		return Record{}, false
	}
	if crc32.Checksum([]byte(payload), castagnoli) != want {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal([]byte(payload), &rec); err != nil {
		return Record{}, false
	}
	return rec, true
}

// Append encodes, writes and fsyncs one record. The record is durable
// when Append returns nil: a crash at any later point replays it.
func (j *Journal) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encoding record: %w", err)
	}
	line := fmt.Sprintf("%s%08x %s\n", recordPrefix, crc32.Checksum(payload, castagnoli), payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	if _, err := j.f.WriteString(line); err != nil {
		return fmt.Errorf("journal: appending: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	return nil
}

// Close releases the journal file. Further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }
