package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
)

// blobMagic heads every blob file; the byte after it is the format
// version. A file that does not start with this sequence is not a blob.
var blobMagic = []byte{'v', 'd', 'j', 1}

// Store is a content-addressed blob store: one file per key under a
// single directory, written atomically (temp file + rename) and framed
// with a CRC-32C header so a torn or corrupted blob reads as absent
// rather than as wrong bytes. Keys are the hex SHA-256 cache keys the
// rest of the system already uses, which keeps file names shell-safe
// and collision-free by construction.
type Store struct {
	dir string
}

// OpenStore ensures dir exists and returns a store rooted there.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// validKey accepts only lowercase-hex names of plausible digest length,
// so a malformed key can never escape the store directory or collide
// with temp files.
func validKey(key string) bool {
	if len(key) < 16 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) blobPath(key string) string {
	return filepath.Join(s.dir, key+".bin")
}

// Put durably writes data under key: header + payload to a temp file,
// fsync, rename into place, fsync the directory. An existing blob for
// the same key is left untouched — content addressing makes rewrites
// redundant.
func (s *Store) Put(key string, data []byte) error {
	if !validKey(key) {
		return fmt.Errorf("journal: store: invalid key %q", key)
	}
	path := s.blobPath(key)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	tmp, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("journal: store: %w", err)
	}
	defer os.Remove(tmp.Name())
	header := make([]byte, len(blobMagic)+4)
	copy(header, blobMagic)
	binary.BigEndian.PutUint32(header[len(blobMagic):], crc32.Checksum(data, castagnoli))
	if _, err := tmp.Write(header); err == nil {
		_, err = tmp.Write(data)
	}
	if err != nil {
		tmp.Close()
		return fmt.Errorf("journal: store: writing blob: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("journal: store: %w", err)
	}
	if dir, err := os.Open(s.dir); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// Get returns the payload stored under key. A missing, truncated, or
// checksum-failing blob returns ok=false — callers recompute, they
// never see damaged bytes.
func (s *Store) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		return nil, false
	}
	raw, err := os.ReadFile(s.blobPath(key))
	if err != nil {
		return nil, false
	}
	headerLen := len(blobMagic) + 4
	if len(raw) < headerLen || string(raw[:len(blobMagic)]) != string(blobMagic) {
		return nil, false
	}
	want := binary.BigEndian.Uint32(raw[len(blobMagic):headerLen])
	data := raw[headerLen:]
	if crc32.Checksum(data, castagnoli) != want {
		return nil, false
	}
	return data, true
}

// Has reports whether an intact blob exists for key (full verification,
// not just a stat — a torn blob counts as absent).
func (s *Store) Has(key string) bool {
	_, ok := s.Get(key)
	return ok
}

// Keys lists every key with a blob file present, verified or not —
// orphan scans want to see damaged files too.
func (s *Store) Keys() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: store: %w", err)
	}
	var keys []string
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), ".bin")
		if !ok || !validKey(name) {
			continue
		}
		keys = append(keys, name)
	}
	return keys, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }
