package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openT(t *testing.T, path string) (*Journal, []Record, ReplayStats) {
	t.Helper()
	j, recs, stats, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%q): %v", path, err)
	}
	t.Cleanup(func() { j.Close() })
	return j, recs, stats
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	j, recs, stats := openT(t, path)
	if len(recs) != 0 || stats.Records != 0 || stats.Torn != 0 {
		t.Fatalf("fresh journal not empty: recs=%d stats=%+v", len(recs), stats)
	}
	want := []Record{
		{Type: "submitted", Job: "j-000001", Ord: 1, Experiment: "e1", Key: strings.Repeat("ab", 32),
			Config: json.RawMessage(`{"Seed":7,"Services":3}`)},
		{Type: "started", Job: "j-000001"},
		{Type: "finished", Job: "j-000001", Status: "done"},
		{Type: "finished", Job: "j-000002", Status: "failed", Error: "boom"},
	}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatalf("Append(%+v): %v", rec, err)
		}
	}
	j.Close()

	_, got, stats := openT(t, path)
	if stats.Torn != 0 || stats.TruncatedBytes != 0 {
		t.Fatalf("clean journal reported damage: %+v", stats)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || got[i].Job != want[i].Job || got[i].Ord != want[i].Ord ||
			got[i].Experiment != want[i].Experiment || got[i].Key != want[i].Key ||
			got[i].Status != want[i].Status || got[i].Error != want[i].Error ||
			string(got[i].Config) != string(want[i].Config) {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestJournalTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	j, _, _ := openT(t, path)
	for i, job := range []string{"j-000001", "j-000002"} {
		if err := j.Append(Record{Type: "submitted", Job: job, Ord: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append at several cut points inside a third
	// record: each must replay exactly the first two records and leave a
	// file the next Append can extend cleanly.
	full := append(append([]byte{}, intact...), []byte("v1 deadbeef {\"type\":\"started\",\"job\"")...)
	for _, cut := range []int{len(intact) + 3, len(full) - 1, len(full)} {
		t.Run("", func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "torn.jsonl")
			if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			j2, recs, stats := openT(t, p)
			if len(recs) != 2 {
				t.Fatalf("replayed %d records, want 2 (stats %+v)", len(recs), stats)
			}
			if stats.Torn != 1 || stats.TruncatedBytes != int64(cut-len(intact)) {
				t.Errorf("stats = %+v, want Torn=1 TruncatedBytes=%d", stats, cut-len(intact))
			}
			if err := j2.Append(Record{Type: "submitted", Job: "j-000003", Ord: 3}); err != nil {
				t.Fatal(err)
			}
			j2.Close()
			_, recs, stats = openT(t, p)
			if len(recs) != 3 || stats.Torn != 0 {
				t.Fatalf("after repair+append: %d records, stats %+v; want 3 records, no damage", len(recs), stats)
			}
		})
	}
}

func TestJournalRepairsMissingFinalNewline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	j, _, _ := openT(t, path)
	if err := j.Append(Record{Type: "submitted", Job: "j-000001", Ord: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Crash persisted the full line but not its newline: the record must
	// survive, and the next append must not concatenate onto it.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	j2, recs, stats := openT(t, path)
	if len(recs) != 1 || stats.Torn != 0 {
		t.Fatalf("replay after lost newline: %d records, stats %+v", len(recs), stats)
	}
	if err := j2.Append(Record{Type: "started", Job: "j-000001"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, recs, stats = openT(t, path)
	if len(recs) != 2 || stats.Torn != 0 {
		t.Fatalf("after append: %d records, stats %+v; want both intact", len(recs), stats)
	}
}

func TestJournalDropsMidFileDamage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	j, _, _ := openT(t, path)
	for i := 1; i <= 3; i++ {
		if err := j.Append(Record{Type: "submitted", Job: "j", Ord: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	// Flip a payload byte in the middle record: it and everything after
	// must be dropped, never reinterpreted.
	mid := []byte(lines[1])
	mid[len(mid)-3] ^= 0x01
	if err := os.WriteFile(path, []byte(lines[0]+string(mid)+lines[2]), 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, stats := openT(t, path)
	if len(recs) != 1 || recs[0].Ord != 1 {
		t.Fatalf("replayed %d records (first ord %d), want only the first", len(recs), recs[0].Ord)
	}
	if stats.Torn != 2 {
		t.Errorf("Torn = %d, want 2 (damaged line and its successor)", stats.Torn)
	}
}

func TestJournalAppendAfterClose(t *testing.T) {
	j, _, _ := openT(t, filepath.Join(t.TempDir(), "jobs.jsonl"))
	j.Close()
	if err := j.Append(Record{Type: "submitted", Job: "j"}); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}

func TestStoreRoundTripAndCorruption(t *testing.T) {
	s, err := OpenStore(filepath.Join(t.TempDir(), "results"))
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("0123abcd", 8)
	payload := []byte("experiment result bytes \x00\xff with binary content")
	if _, ok := s.Get(key); ok {
		t.Fatal("Get before Put reported a blob")
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v; want stored payload", got, ok)
	}
	if !s.Has(key) {
		t.Fatal("Has = false for intact blob")
	}
	// Put is idempotent for the same key.
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}

	// Corrupt one payload byte: the blob must read as absent.
	path := filepath.Join(s.Dir(), key+".bin")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("Get returned corrupted blob")
	}
	if s.Has(key) {
		t.Fatal("Has = true for corrupted blob")
	}

	// Truncated blob (torn write that somehow survived rename) is absent.
	if err := os.WriteFile(path, raw[:3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("Get returned truncated blob")
	}
}

func TestStoreKeysAndInvalidKeys(t *testing.T) {
	s, err := OpenStore(filepath.Join(t.TempDir(), "results"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("not-a-hex-key", []byte("x")); err == nil {
		t.Fatal("Put accepted a non-hex key")
	}
	if err := s.Put("../escape0000000000", []byte("x")); err == nil {
		t.Fatal("Put accepted a path-traversal key")
	}
	k1, k2 := strings.Repeat("aa", 32), strings.Repeat("bb", 32)
	for _, k := range []string{k1, k2} {
		if err := s.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	// Stray files that are not blobs must not appear as keys.
	if err := os.WriteFile(filepath.Join(s.Dir(), "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("Keys = %v, want exactly the two blobs", keys)
	}
	seen := map[string]bool{}
	for _, k := range keys {
		seen[k] = true
	}
	if !seen[k1] || !seen[k2] {
		t.Fatalf("Keys = %v, missing %s or %s", keys, k1, k2)
	}
}
