package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
	if r.Counter("c_total", "again") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0.1, 1, 10)
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("buckets = %v / %v", bounds, counts)
	}
	// 0.05 and 0.1 land in le=0.1 (inclusive upper bound), 0.5 in le=1,
	// 2 in le=10, 100 in +Inf.
	want := []uint64{2, 1, 1, 1}
	for i, c := range counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, c, want[i], counts)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+2+100; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{{}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v accepted", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge reusing a counter name accepted")
		}
	}()
	r.Gauge("x", "")
}

func TestSnapshotDeterministicAndSorted(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Gauge("zz_depth", "depth").Set(3)
		r.Counter("aa_total", "total").Add(2)
		h := r.Histogram("mm_seconds", "latency", 0.5, 5)
		h.Observe(0.2)
		h.Observe(7)
		return r
	}
	a, b := build().Snapshot(), build().Snapshot()
	if a != b {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", a, b)
	}
	ia := strings.Index(a, "aa_total")
	im := strings.Index(a, "mm_seconds")
	iz := strings.Index(a, "zz_depth")
	if !(ia < im && im < iz) {
		t.Fatalf("snapshot not name-sorted:\n%s", a)
	}
	for _, want := range []string{
		"# TYPE aa_total counter\naa_total 2\n",
		"# TYPE zz_depth gauge\nzz_depth 3\n",
		`mm_seconds_bucket{le="0.5"} 1`,
		`mm_seconds_bucket{le="5"} 1`,
		`mm_seconds_bucket{le="+Inf"} 2`,
		"mm_seconds_sum 7.2\n",
		"mm_seconds_count 2\n",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("snapshot missing %q:\n%s", want, a)
		}
	}
}

// TestConcurrentUpdates drives every metric kind from many goroutines;
// the race detector is the assertion, plus exact final counts (no lost
// updates, including the CAS-summed histogram).
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", 1, 10)
	const goroutines, each = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.5)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if c.Value() != goroutines*each {
		t.Fatalf("counter lost updates: %d", c.Value())
	}
	if g.Value() != goroutines*each {
		t.Fatalf("gauge lost updates: %d", g.Value())
	}
	if h.Count() != goroutines*each {
		t.Fatalf("histogram lost observations: %d", h.Count())
	}
	if got, want := h.Sum(), 0.5*goroutines*each; math.Abs(got-want) > 1e-9 {
		t.Fatalf("histogram sum = %g, want %g (lost CAS updates)", got, want)
	}
}
