// Package telemetry is a tiny, stdlib-only metrics substrate for the
// serving layer: atomic counters and gauges, fixed-bucket histograms,
// and a registry with a deterministic text snapshot (Prometheus-style
// exposition format, names sorted). It carries the /metrics endpoint of
// cmd/vdserved and is built so the harness hot path can be instrumented
// later without pulling in a dependency.
//
// All operations are safe for concurrent use and allocation-free on the
// update path (histogram observation is a bucket search plus a few
// atomic adds).
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram over float64 observations. The
// bucket bounds are inclusive upper bounds, ascending; observations above
// the last bound land in the implicit +Inf bucket. Counts, the running
// sum and the observation count are all atomics, so snapshots taken
// under concurrent observation are internally consistent per field (not
// across fields — good enough for monitoring, by design).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-updated
	count  atomic.Uint64
}

// NewHistogram builds a histogram with the given ascending upper bounds.
// It panics on empty or unsorted bounds: bucket layouts are compile-time
// decisions, not runtime input.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending: %g after %g", bounds[i], bounds[i-1]))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the bounds and the per-bucket (non-cumulative) counts;
// the final count is the +Inf bucket.
func (h *Histogram) Buckets() (bounds []float64, counts []uint64) {
	bounds = append([]float64(nil), h.bounds...)
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// Registry holds named metrics and renders them as a deterministic text
// snapshot. Registration is idempotent by name: asking twice for the
// same counter returns the same counter, so call sites need no shared
// setup phase.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		help:       map[string]string{},
	}
}

// Counter returns the counter with the given name, creating it on first
// use. It panics when the name is already a different metric kind.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.mustBeFree(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	r.help[name] = help
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.mustBeFree(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	r.help[name] = help
	return g
}

// Histogram returns the histogram with the given name, creating it with
// the given bounds on first use (later bounds are ignored: the first
// registration wins).
func (r *Registry) Histogram(name, help string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.mustBeFree(name, "histogram")
	h := NewHistogram(bounds...)
	r.histograms[name] = h
	r.help[name] = help
	return h
}

// mustBeFree panics when name is already registered as another kind;
// callers hold r.mu.
func (r *Registry) mustBeFree(name, kind string) {
	_, c := r.counters[name]
	_, g := r.gauges[name]
	_, h := r.histograms[name]
	if c || g || h {
		panic(fmt.Sprintf("telemetry: %s %q collides with an existing metric of another kind", kind, name))
	}
}

// Snapshot renders every metric in Prometheus-style text exposition
// format, sorted by metric name, so two snapshots of equal state are
// byte-identical.
func (r *Registry) Snapshot() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.help))
	for name := range r.help {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		if help := r.help[name]; help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", name, help)
		}
		switch {
		case r.counters[name] != nil:
			fmt.Fprintf(&sb, "# TYPE %s counter\n%s %d\n", name, name, r.counters[name].Value())
		case r.gauges[name] != nil:
			fmt.Fprintf(&sb, "# TYPE %s gauge\n%s %d\n", name, name, r.gauges[name].Value())
		case r.histograms[name] != nil:
			h := r.histograms[name]
			fmt.Fprintf(&sb, "# TYPE %s histogram\n", name)
			bounds, counts := h.Buckets()
			var cum uint64
			for i, b := range bounds {
				cum += counts[i]
				fmt.Fprintf(&sb, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
			}
			cum += counts[len(bounds)]
			fmt.Fprintf(&sb, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			fmt.Fprintf(&sb, "%s_sum %s\n", name, formatBound(h.Sum()))
			fmt.Fprintf(&sb, "%s_count %d\n", name, h.Count())
		}
	}
	return sb.String()
}

// formatBound renders a float compactly and unambiguously ("0.5", "10").
func formatBound(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}
