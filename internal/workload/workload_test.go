package workload

import (
	"errors"
	"math"
	"testing"

	"github.com/dsn2015/vdbench/internal/svclang"
)

func TestTemplatesCoverAllDifficulties(t *testing.T) {
	for _, d := range []Difficulty{Easy, Medium, Hard} {
		if len(TemplatesByDifficulty(d)) == 0 {
			t.Errorf("no templates at difficulty %s", d)
		}
	}
}

func TestEveryBucketHasAllKindsTemplate(t *testing.T) {
	// pickTemplate relies on each bucket supporting every kind.
	for _, d := range []Difficulty{Easy, Medium, Hard} {
		for _, k := range svclang.AllSinkKinds() {
			found := false
			for _, tpl := range TemplatesByDifficulty(d) {
				if tpl.SupportsKind(k) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("difficulty %s has no template for kind %s", d, k)
			}
		}
	}
}

func TestTemplateByName(t *testing.T) {
	tpl, ok := TemplateByName("direct-splice")
	if !ok || tpl.Name != "direct-splice" {
		t.Fatal("direct-splice not found")
	}
	if _, ok := TemplateByName("nonsense"); ok {
		t.Fatal("bogus template resolved")
	}
}

// TestAllTemplatesAgreeWithOracle is the core cross-validation: for every
// template, kind and variant, the declared labels must match the
// exhaustive structural-taint oracle. This is the guarantee that corpus
// ground truth can never be wrong.
func TestAllTemplatesAgreeWithOracle(t *testing.T) {
	for _, tpl := range Templates() {
		for _, kind := range tpl.Kinds {
			for _, vulnerable := range []bool{false, true} {
				svc, expected := tpl.Build("t", kind, vulnerable)
				if err := svc.Validate(); err != nil {
					t.Fatalf("%s/%s vulnerable=%v: invalid service: %v", tpl.Name, kind, vulnerable, err)
				}
				truths, err := svclang.Analyze(svc)
				if err != nil {
					t.Fatalf("%s/%s vulnerable=%v: oracle: %v", tpl.Name, kind, vulnerable, err)
				}
				if len(truths) != len(expected) {
					t.Fatalf("%s/%s: %d sinks declared, %d found", tpl.Name, kind, len(expected), len(truths))
				}
				for j := range expected {
					if truths[j].Vulnerable != expected[j] {
						t.Errorf("%s/%s vulnerable=%v sink %d: declared %v, oracle %v\n%s",
							tpl.Name, kind, vulnerable, j, expected[j], truths[j].Vulnerable, svclang.Print(svc))
					}
				}
			}
		}
	}
}

func TestTemplateVariantsDiffer(t *testing.T) {
	// Except for constant-sink and dead-sink (whose "vulnerable" flag
	// changes the live sink), the vulnerable flag must change at least one
	// label.
	for _, tpl := range Templates() {
		if tpl.Name == "constant-sink" {
			continue
		}
		kind := tpl.Kinds[0]
		_, safeLabels := tpl.Build("s", kind, false)
		_, vulnLabels := tpl.Build("v", kind, true)
		same := true
		for i := range safeLabels {
			if safeLabels[i] != vulnLabels[i] {
				same = false
			}
		}
		if same {
			t.Errorf("%s: vulnerable flag has no effect on labels", tpl.Name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Services: 25, TargetPrevalence: 0.4, Seed: 7}
	c1, err1 := Generate(cfg)
	c2, err2 := Generate(cfg)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if c1.Sources() != c2.Sources() {
		t.Fatal("same seed generated different corpora")
	}
	if len(c1.Cases) != 25 {
		t.Fatalf("generated %d cases", len(c1.Cases))
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, err := Generate(Config{Services: 25, TargetPrevalence: 0.4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Services: 25, TargetPrevalence: 0.4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Sources() == b.Sources() {
		t.Fatal("different seeds generated identical corpora")
	}
}

func TestGeneratePrevalenceTracksTarget(t *testing.T) {
	for _, target := range []float64{0.1, 0.35, 0.7} {
		c, err := Generate(Config{Services: 300, TargetPrevalence: target, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		got := c.Prevalence()
		// Templates add mandatory safe sinks, so realised prevalence sits
		// somewhat below target; allow a generous but bounded band.
		if math.Abs(got-target) > 0.12 {
			t.Errorf("target %g realised %g", target, got)
		}
	}
}

func TestGenerateRespectsKindFilter(t *testing.T) {
	c, err := Generate(Config{
		Services:         40,
		TargetPrevalence: 0.5,
		Kinds:            []svclang.SinkKind{svclang.SinkSQL},
		Seed:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	byKind := c.ByKind()
	if len(byKind) != 1 || byKind[svclang.SinkSQL] == 0 {
		t.Fatalf("kind filter violated: %v", byKind)
	}
}

func TestGenerateMixSkew(t *testing.T) {
	hardOnly, err := Generate(Config{
		Services:         60,
		TargetPrevalence: 0.5,
		Mix:              DifficultyMix{Hard: 1},
		Seed:             5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range hardOnly.Cases {
		if cs.Difficulty != Hard {
			t.Fatalf("hard-only mix produced %s case %s", cs.Difficulty, cs.Service.Name)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{Services: 0, TargetPrevalence: 0.5},
		{Services: 10, TargetPrevalence: -0.1},
		{Services: 10, TargetPrevalence: 1.1},
		{Services: 10, TargetPrevalence: 0.5, Mix: DifficultyMix{Easy: 0.5, Medium: 0.5, Hard: 0.5}},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGeneratedSourcesReparse(t *testing.T) {
	c, err := Generate(Config{Services: 30, TargetPrevalence: 0.4, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	services, err := svclang.Parse(c.Sources())
	if err != nil {
		t.Fatalf("generated corpus does not reparse: %v", err)
	}
	if len(services) != len(c.Cases) {
		t.Fatalf("reparsed %d of %d services", len(services), len(c.Cases))
	}
	for i, svc := range services {
		if svc.Name != c.Cases[i].Service.Name {
			t.Fatalf("service %d name mismatch: %s vs %s", i, svc.Name, c.Cases[i].Service.Name)
		}
	}
}

func TestGenerateUniqueNames(t *testing.T) {
	c, err := Generate(Config{Services: 100, TargetPrevalence: 0.3, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, cs := range c.Cases {
		if seen[cs.Service.Name] {
			t.Fatalf("duplicate service name %s", cs.Service.Name)
		}
		seen[cs.Service.Name] = true
	}
}

func TestCorpusCounters(t *testing.T) {
	c, err := Generate(Config{Services: 50, TargetPrevalence: 0.5, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalSinks() < 50 {
		t.Fatalf("total sinks %d < services", c.TotalSinks())
	}
	if c.VulnerableSinks() <= 0 || c.VulnerableSinks() >= c.TotalSinks() {
		t.Fatalf("vulnerable sinks %d of %d implausible", c.VulnerableSinks(), c.TotalSinks())
	}
	sum := 0
	for _, n := range c.ByKind() {
		sum += n
	}
	if sum != c.TotalSinks() {
		t.Fatalf("ByKind sums to %d, want %d", sum, c.TotalSinks())
	}
}

func TestDifficultyString(t *testing.T) {
	if Easy.String() != "easy" || Medium.String() != "medium" || Hard.String() != "hard" {
		t.Fatal("difficulty names wrong")
	}
	if Difficulty(9).String() == "" {
		t.Fatal("unknown difficulty should render")
	}
}

func TestDefaultMixValid(t *testing.T) {
	if err := DefaultMix().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestErrLabelMismatchIsTyped(t *testing.T) {
	// Synthesize a mismatch by corrupting a template copy; the exported
	// error must be matchable with errors.Is through the wrap.
	err := ErrLabelMismatch
	if !errors.Is(err, ErrLabelMismatch) {
		t.Fatal("identity check failed")
	}
}

func TestFromSources(t *testing.T) {
	src := `
service External1
  param id
  sink sql concat("Q='", id, "'")
end

service External2
  param id
  sink sql concat("Q='", escape_sql(id), "'")
end
`
	corpus, err := FromSources(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Cases) != 2 {
		t.Fatalf("cases = %d", len(corpus.Cases))
	}
	if !corpus.Cases[0].Truths[0].Vulnerable {
		t.Fatal("raw splice should be labelled vulnerable")
	}
	if corpus.Cases[1].Truths[0].Vulnerable {
		t.Fatal("escaped splice should be labelled safe")
	}
	for _, cs := range corpus.Cases {
		if cs.Template != "external" || cs.Difficulty != Medium {
			t.Fatalf("external case metadata wrong: %+v", cs)
		}
	}
}

func TestFromSourcesErrors(t *testing.T) {
	if _, err := FromSources("not a service"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := FromSources(""); err == nil {
		t.Error("empty input accepted")
	}
	// Duplicate names rejected.
	dup := "service X\n  param a\n  sink sql a\nend\nservice X\n  param a\n  sink sql a\nend\n"
	if _, err := FromSources(dup); err == nil {
		t.Error("duplicate names accepted")
	}
	// Too many parameters for the oracle.
	big := "service Big\n  param a\n  param b\n  param c\n  param d\n  sink sql a\nend\n"
	if _, err := FromSources(big); err == nil {
		t.Error("oracle limit not enforced")
	}
}

func TestFromServicesNil(t *testing.T) {
	if _, err := FromServices(nil); err == nil {
		t.Error("empty slice accepted")
	}
	if _, err := FromServices([]*svclang.Service{nil}); err == nil {
		t.Error("nil service accepted")
	}
}

func TestGeneratedCorpusRoundTripsThroughFromSources(t *testing.T) {
	gen, err := Generate(Config{Services: 20, TargetPrevalence: 0.4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := FromSources(gen.Sources())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TotalSinks() != gen.TotalSinks() {
		t.Fatalf("sink count changed: %d vs %d", loaded.TotalSinks(), gen.TotalSinks())
	}
	if loaded.VulnerableSinks() != gen.VulnerableSinks() {
		t.Fatalf("labels changed across round trip: %d vs %d",
			loaded.VulnerableSinks(), gen.VulnerableSinks())
	}
}
