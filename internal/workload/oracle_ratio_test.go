package workload

import (
	"testing"

	"github.com/dsn2015/vdbench/internal/svclang"
)

// TestOracleProbeReductionStandardCorpus asserts the pruning payoff the
// vd_oracle_* telemetry reports: labelling a standard corpus (the
// experiment default's shape) must execute at most a fifth of the
// exhaustive probe space. Probes elided by the content-addressed oracle
// cache count as pruned-by-other-means here — a cached service
// contributes zero to both counters, which only strengthens the bound.
func TestOracleProbeReductionStandardCorpus(t *testing.T) {
	before := svclang.OracleTotalsSnapshot()
	if _, err := Generate(Config{Services: 200, TargetPrevalence: 0.35, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	after := svclang.OracleTotalsSnapshot()
	executed := after.Probes - before.Probes
	space := executed + (after.Pruned - before.Pruned)
	if space == 0 {
		t.Fatal("corpus generation advanced no oracle counters")
	}
	if executed*5 > space {
		t.Fatalf("pruned oracle executed %d of %d exhaustive probes (%.1fx): below the 5x bar",
			executed, space, float64(space)/float64(executed))
	}
	t.Logf("oracle pruning: executed=%d space=%d reduction=%.1fx early-exits=%d",
		executed, space, float64(space)/float64(executed), after.EarlyExits-before.EarlyExits)
}
