// Package workload generates labelled benchmark corpora: collections of
// mini-language services with seeded vulnerabilities and exact ground
// truth.
//
// Each service is built from a template that mirrors a vulnerability
// pattern from the Juliet-style test-suite tradition (direct splice,
// missing/wrong/accidental sanitizer, validation bugs, unreachable code,
// guarded flows, loops, silent sinks). Templates declare the expected
// vulnerability of every sink they emit; the generator verifies the
// declaration against the exhaustive structural-taint oracle, so a corpus
// can never carry a wrong label.
package workload

import (
	"fmt"

	"github.com/dsn2015/vdbench/internal/svclang"
)

// Difficulty buckets templates by how hard their sinks are for typical
// tools to classify correctly.
type Difficulty int

// Difficulty levels.
const (
	Easy Difficulty = iota + 1
	Medium
	Hard
)

// String implements fmt.Stringer.
func (d Difficulty) String() string {
	switch d {
	case Easy:
		return "easy"
	case Medium:
		return "medium"
	case Hard:
		return "hard"
	default:
		return fmt.Sprintf("Difficulty(%d)", int(d))
	}
}

// Template builds services embodying one vulnerability pattern.
type Template struct {
	// Name identifies the template in case metadata.
	Name string
	// Difficulty buckets the template for workload mixing.
	Difficulty Difficulty
	// Kinds lists the sink kinds the template supports.
	Kinds []svclang.SinkKind
	// Build constructs a service. vulnerable selects the vulnerable or the
	// safe variant. The returned slice declares the expected vulnerability
	// of each sink in sink-ID order.
	Build func(name string, kind svclang.SinkKind, vulnerable bool) (*svclang.Service, []bool)
}

// SupportsKind reports whether the template can target the given kind.
func (t Template) SupportsKind(k svclang.SinkKind) bool {
	for _, kk := range t.Kinds {
		if kk == k {
			return true
		}
	}
	return false
}

// splice returns prefix + mid + suffix for the canonical injection context
// of each kind.
func splice(kind svclang.SinkKind, mid svclang.Expr) svclang.Expr {
	var prefix, suffix string
	switch kind {
	case svclang.SinkSQL:
		prefix, suffix = "SELECT * FROM accounts WHERE owner='", "'"
	case svclang.SinkXPath:
		prefix, suffix = "//user[name='", "']"
	case svclang.SinkHTML:
		prefix, suffix = "<p>Results for ", "</p>"
	case svclang.SinkCmd:
		prefix, suffix = "report ", ""
	case svclang.SinkPath:
		prefix, suffix = "exports/", ""
	}
	return svclang.Call{Fn: svclang.BuiltinConcat, Args: []svclang.Expr{
		svclang.Lit{Value: prefix}, mid, svclang.Lit{Value: suffix},
	}}
}

// adequateSanitizer returns the canonical sanitizer for a kind.
func adequateSanitizer(kind svclang.SinkKind) svclang.Builtin {
	switch kind {
	case svclang.SinkSQL:
		return svclang.BuiltinEscapeSQL
	case svclang.SinkXPath:
		return svclang.BuiltinEscapeXPath
	case svclang.SinkHTML:
		return svclang.BuiltinEscapeHTML
	case svclang.SinkCmd:
		return svclang.BuiltinEscapeShell
	case svclang.SinkPath:
		return svclang.BuiltinSanitizePath
	default:
		return svclang.BuiltinNumeric
	}
}

// inadequateSanitizer returns a sanitizer that does NOT protect the
// canonical context of the kind (verified by the adequacy-matrix tests).
func inadequateSanitizer(kind svclang.SinkKind) svclang.Builtin {
	switch kind {
	case svclang.SinkSQL:
		return svclang.BuiltinEscapeShell
	case svclang.SinkXPath:
		return svclang.BuiltinEscapeSQL
	case svclang.SinkHTML:
		return svclang.BuiltinEscapeXPath
	case svclang.SinkCmd:
		return svclang.BuiltinEscapeHTML
	case svclang.SinkPath:
		return svclang.BuiltinEscapeSQL
	default:
		return svclang.BuiltinUpper
	}
}

func ident(name string) svclang.Expr { return svclang.Ident{Name: name} }

func call(fn svclang.Builtin, args ...svclang.Expr) svclang.Expr {
	return svclang.Call{Fn: fn, Args: args}
}

// sinkStmt builds a sink statement.
func sinkStmt(id int, kind svclang.SinkKind, expr svclang.Expr, silent bool) svclang.Stmt {
	return svclang.Sink{ID: id, Kind: kind, Expr: expr, Silent: silent}
}

// Templates returns the full template library in a stable order.
func Templates() []Template {
	return []Template{
		{
			// The textbook case: parameter spliced straight into the sink.
			// Safe variant applies the canonical sanitizer.
			Name:       "direct-splice",
			Difficulty: Easy,
			Kinds:      svclang.AllSinkKinds(),
			Build: func(name string, kind svclang.SinkKind, vulnerable bool) (*svclang.Service, []bool) {
				var mid svclang.Expr = ident("input")
				if !vulnerable {
					mid = call(adequateSanitizer(kind), mid)
				}
				svc := &svclang.Service{
					Name:   name,
					Params: []string{"input"},
					Body: []svclang.Stmt{
						svclang.VarDecl{Name: "q"},
						svclang.Assign{Name: "q", Expr: splice(kind, mid)},
						sinkStmt(0, kind, ident("q"), false),
					},
				}
				return svc, []bool{vulnerable}
			},
		},
		{
			// Unquoted numeric splice (SQL/XPath only). Safe variant casts
			// with numeric().
			Name:       "numeric-splice",
			Difficulty: Easy,
			Kinds:      []svclang.SinkKind{svclang.SinkSQL, svclang.SinkXPath},
			Build: func(name string, kind svclang.SinkKind, vulnerable bool) (*svclang.Service, []bool) {
				var mid svclang.Expr = ident("id")
				if !vulnerable {
					mid = call(svclang.BuiltinNumeric, mid)
				}
				var prefix string
				if kind == svclang.SinkSQL {
					prefix = "SELECT * FROM orders WHERE id="
				} else {
					prefix = "//order[id="
				}
				expr := call(svclang.BuiltinConcat, svclang.Lit{Value: prefix}, mid)
				if kind == svclang.SinkXPath {
					expr = call(svclang.BuiltinConcat, expr, svclang.Lit{Value: "]"})
				}
				svc := &svclang.Service{
					Name:   name,
					Params: []string{"id"},
					Body:   []svclang.Stmt{sinkStmt(0, kind, expr, false)},
				}
				return svc, []bool{vulnerable}
			},
		},
		{
			// Constant sink: no attacker data at all. Always safe; pure
			// true-negative filler that penalises trigger-happy tools.
			Name:       "constant-sink",
			Difficulty: Easy,
			Kinds:      svclang.AllSinkKinds(),
			Build: func(name string, kind svclang.SinkKind, _ bool) (*svclang.Service, []bool) {
				svc := &svclang.Service{
					Name:   name,
					Params: []string{"unused"},
					Body: []svclang.Stmt{
						sinkStmt(0, kind, splice(kind, svclang.Lit{Value: "static"}), false),
					},
				}
				return svc, []bool{false}
			},
		},
		{
			// Input validation guards the splice. Safe variant validates
			// the spliced parameter; vulnerable variant validates the WRONG
			// parameter (a classic copy-paste bug).
			Name:       "validated-splice",
			Difficulty: Medium,
			Kinds:      svclang.AllSinkKinds(),
			Build: func(name string, kind svclang.SinkKind, vulnerable bool) (*svclang.Service, []bool) {
				checked := "input"
				if vulnerable {
					checked = "other"
				}
				svc := &svclang.Service{
					Name:   name,
					Params: []string{"input", "other"},
					Body: []svclang.Stmt{
						svclang.If{
							Cond: svclang.Not{Inner: svclang.Match{Expr: ident(checked), Class: svclang.ClassAlnum}},
							Then: []svclang.Stmt{svclang.Reject{}},
						},
						sinkStmt(0, kind, splice(kind, ident("input")), false),
					},
				}
				return svc, []bool{vulnerable}
			},
		},
		{
			// A sanitizer is applied, but it is the wrong one for this sink
			// kind. Vulnerable despite "looking sanitized" — the trap for
			// tools that do not model sanitizer adequacy per sink.
			Name:       "wrong-sanitizer",
			Difficulty: Medium,
			Kinds:      svclang.AllSinkKinds(),
			Build: func(name string, kind svclang.SinkKind, vulnerable bool) (*svclang.Service, []bool) {
				san := adequateSanitizer(kind)
				if vulnerable {
					san = inadequateSanitizer(kind)
				}
				svc := &svclang.Service{
					Name:   name,
					Params: []string{"input"},
					Body: []svclang.Stmt{
						sinkStmt(0, kind, splice(kind, call(san, ident("input"))), false),
					},
				}
				return svc, []bool{vulnerable}
			},
		},
		{
			// Quoted SQL/XPath behind escape_html: safe by accident. Tools
			// with a diagonal sanitizer model report it — a pure
			// false-positive trap. The vulnerable variant omits the
			// sanitizer entirely.
			Name:       "accidental-sanitizer",
			Difficulty: Hard,
			Kinds:      []svclang.SinkKind{svclang.SinkSQL, svclang.SinkXPath},
			Build: func(name string, kind svclang.SinkKind, vulnerable bool) (*svclang.Service, []bool) {
				var mid svclang.Expr = ident("input")
				if !vulnerable {
					mid = call(svclang.BuiltinEscapeHTML, mid)
				}
				svc := &svclang.Service{
					Name:   name,
					Params: []string{"input"},
					Body: []svclang.Stmt{
						sinkStmt(0, kind, splice(kind, mid), false),
					},
				}
				return svc, []bool{vulnerable}
			},
		},
		{
			// Sink inside a statically false branch plus a live constant
			// sink. Neither is vulnerable; path-insensitive tools flag the
			// dead one.
			Name:       "dead-sink",
			Difficulty: Hard,
			Kinds:      svclang.AllSinkKinds(),
			Build: func(name string, kind svclang.SinkKind, vulnerable bool) (*svclang.Service, []bool) {
				dead := svclang.If{
					Cond: svclang.BoolLit{Value: false},
					Then: []svclang.Stmt{sinkStmt(0, kind, splice(kind, ident("input")), false)},
				}
				var live svclang.Stmt
				expected := []bool{false, false}
				if vulnerable {
					live = sinkStmt(1, kind, splice(kind, ident("input")), false)
					expected = []bool{false, true}
				} else {
					live = sinkStmt(1, kind, splice(kind, svclang.Lit{Value: "static"}), false)
				}
				svc := &svclang.Service{
					Name:   name,
					Params: []string{"input"},
					Body:   []svclang.Stmt{dead, live},
				}
				return svc, expected
			},
		},
		{
			// Sink reachable only when a second parameter holds a magic
			// value. Hard for dynamic tools with shallow input exploration.
			Name:       "guarded-splice",
			Difficulty: Hard,
			Kinds:      svclang.AllSinkKinds(),
			Build: func(name string, kind svclang.SinkKind, vulnerable bool) (*svclang.Service, []bool) {
				var mid svclang.Expr = ident("input")
				if !vulnerable {
					mid = call(adequateSanitizer(kind), mid)
				}
				svc := &svclang.Service{
					Name:   name,
					Params: []string{"input", "mode"},
					Body: []svclang.Stmt{
						svclang.If{
							Cond: svclang.Eq{Expr: ident("mode"), Value: "alpha"},
							Then: []svclang.Stmt{sinkStmt(0, kind, splice(kind, mid), false)},
							Else: []svclang.Stmt{sinkStmt(1, kind, splice(kind, svclang.Lit{Value: "default"}), false)},
						},
					},
				}
				return svc, []bool{vulnerable, false}
			},
		},
		{
			// Taint accumulated through a loop before reaching the sink.
			// Safe variant sanitizes inside the loop.
			Name:       "loop-flow",
			Difficulty: Hard,
			Kinds:      svclang.AllSinkKinds(),
			Build: func(name string, kind svclang.SinkKind, vulnerable bool) (*svclang.Service, []bool) {
				var piece svclang.Expr = ident("input")
				if !vulnerable {
					piece = call(adequateSanitizer(kind), piece)
				}
				svc := &svclang.Service{
					Name:   name,
					Params: []string{"input"},
					Body: []svclang.Stmt{
						svclang.VarDecl{Name: "acc"},
						svclang.Repeat{Count: 3, Body: []svclang.Stmt{
							svclang.Assign{Name: "acc", Expr: call(svclang.BuiltinConcat, ident("acc"), piece)},
						}},
						sinkStmt(0, kind, splice(kind, ident("acc")), false),
					},
				}
				return svc, []bool{vulnerable}
			},
		},
		{
			// Multi-hop data flow through intermediate variables and
			// taint-preserving transforms. Safe variant sanitizes mid-chain.
			Name:       "indirect-flow",
			Difficulty: Medium,
			Kinds:      svclang.AllSinkKinds(),
			Build: func(name string, kind svclang.SinkKind, vulnerable bool) (*svclang.Service, []bool) {
				var hop svclang.Expr = call(svclang.BuiltinTrim, ident("input"))
				if !vulnerable {
					hop = call(adequateSanitizer(kind), hop)
				}
				svc := &svclang.Service{
					Name:   name,
					Params: []string{"input"},
					Body: []svclang.Stmt{
						svclang.VarDecl{Name: "a"},
						svclang.VarDecl{Name: "b"},
						svclang.Assign{Name: "a", Expr: hop},
						svclang.Assign{Name: "b", Expr: ident("a")},
						sinkStmt(0, kind, splice(kind, ident("b")), false),
					},
				}
				return svc, []bool{vulnerable}
			},
		},
		{
			// Silent sink: exploitable, but failures produce no observable
			// response. Error-based dynamic tools cannot confirm it.
			Name:       "silent-sink",
			Difficulty: Hard,
			Kinds:      svclang.AllSinkKinds(),
			Build: func(name string, kind svclang.SinkKind, vulnerable bool) (*svclang.Service, []bool) {
				var mid svclang.Expr = ident("input")
				if !vulnerable {
					mid = call(adequateSanitizer(kind), mid)
				}
				svc := &svclang.Service{
					Name:   name,
					Params: []string{"input"},
					Body: []svclang.Stmt{
						sinkStmt(0, kind, splice(kind, mid), true),
					},
				}
				return svc, []bool{vulnerable}
			},
		},
		{
			// Two parameters: one sanitized, one raw, concatenated into the
			// same sink. Safe variant sanitizes both.
			Name:       "double-param",
			Difficulty: Medium,
			Kinds:      svclang.AllSinkKinds(),
			Build: func(name string, kind svclang.SinkKind, vulnerable bool) (*svclang.Service, []bool) {
				san := adequateSanitizer(kind)
				var second svclang.Expr = ident("b")
				if !vulnerable {
					second = call(san, second)
				}
				mid := call(svclang.BuiltinConcat, call(san, ident("a")), svclang.Lit{Value: " "}, second)
				svc := &svclang.Service{
					Name:   name,
					Params: []string{"a", "b"},
					Body: []svclang.Stmt{
						sinkStmt(0, kind, splice(kind, mid), false),
					},
				}
				return svc, []bool{vulnerable}
			},
		},
		{
			// Second-order flow: the sink renders what a *previous* request
			// stored, so a stateless scanner's differential probe never sees
			// its own payload come back. Safe variant sanitizes on store.
			// One parameter only: the exhaustive oracle enumerates request
			// pairs for stateful services.
			Name:       "stored-splice",
			Difficulty: Hard,
			Kinds:      svclang.AllSinkKinds(),
			Build: func(name string, kind svclang.SinkKind, vulnerable bool) (*svclang.Service, []bool) {
				var stored svclang.Expr = ident("input")
				if !vulnerable {
					stored = call(adequateSanitizer(kind), stored)
				}
				svc := &svclang.Service{
					Name:   name,
					Params: []string{"input"},
					Body: []svclang.Stmt{
						sinkStmt(0, kind, splice(kind, svclang.LoadExpr{Key: "saved"}), false),
						svclang.Store{Key: "saved", Expr: stored},
					},
				}
				return svc, []bool{vulnerable}
			},
		},
		{
			// The sink sits INSIDE the validated branch rather than after a
			// validate-and-reject guard: if the input passes class
			// validation it is spliced, otherwise a constant fallback is
			// used. Safe variant validates the spliced parameter;
			// vulnerable variant validates the wrong one. Flow-sensitive
			// tools that only recognise the reject idiom still flag the
			// safe variant — only branch-condition (path-sensitive)
			// reasoning clears it.
			Name:       "validated-branch",
			Difficulty: Hard,
			Kinds:      svclang.AllSinkKinds(),
			Build: func(name string, kind svclang.SinkKind, vulnerable bool) (*svclang.Service, []bool) {
				checked := "input"
				if vulnerable {
					checked = "other"
				}
				svc := &svclang.Service{
					Name:   name,
					Params: []string{"input", "other"},
					Body: []svclang.Stmt{
						svclang.If{
							Cond: svclang.Match{Expr: ident(checked), Class: svclang.ClassAlnum},
							Then: []svclang.Stmt{sinkStmt(0, kind, splice(kind, ident("input")), false)},
							Else: []svclang.Stmt{sinkStmt(1, kind, splice(kind, svclang.Lit{Value: "default"}), false)},
						},
					},
				}
				return svc, []bool{vulnerable, false}
			},
		},
		{
			// Validation exists but runs AFTER the sink — an ordering bug.
			// Safe variant validates before the sink.
			Name:       "late-validation",
			Difficulty: Hard,
			Kinds:      svclang.AllSinkKinds(),
			Build: func(name string, kind svclang.SinkKind, vulnerable bool) (*svclang.Service, []bool) {
				validate := svclang.If{
					Cond: svclang.Not{Inner: svclang.Match{Expr: ident("input"), Class: svclang.ClassAlnum}},
					Then: []svclang.Stmt{svclang.Reject{}},
				}
				sink := sinkStmt(0, kind, splice(kind, ident("input")), false)
				var body []svclang.Stmt
				if vulnerable {
					body = []svclang.Stmt{sink, validate}
				} else {
					body = []svclang.Stmt{validate, sink}
				}
				svc := &svclang.Service{
					Name:   name,
					Params: []string{"input"},
					Body:   body,
				}
				return svc, []bool{vulnerable}
			},
		},
	}
}

// TemplateByName returns the template with the given name.
func TemplateByName(name string) (Template, bool) {
	for _, t := range Templates() {
		if t.Name == name {
			return t, true
		}
	}
	return Template{}, false
}

// TemplatesByDifficulty returns the templates in the given bucket.
func TemplatesByDifficulty(d Difficulty) []Template {
	var out []Template
	for _, t := range Templates() {
		if t.Difficulty == d {
			out = append(out, t)
		}
	}
	return out
}
