package workload

import (
	"fmt"

	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/svclang/compile"
)

// FromSources builds a labelled corpus from externally authored service
// sources (the textual mini-language format). Ground truth is computed by
// the exhaustive oracle, exactly as for generated corpora, so externally
// supplied workloads get the same label guarantees.
//
// Cases loaded this way carry template "external" and difficulty Medium
// (difficulty buckets are a property of the generator's templates; foreign
// code has no bucket). Services must stay within the oracle's
// exhaustiveness limit (at most 3 parameters).
func FromSources(src string) (*Corpus, error) {
	services, err := svclang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("workload: parse sources: %w", err)
	}
	return FromServices(services)
}

// FromServices builds a labelled corpus from already-parsed services. See
// FromSources for the labelling guarantees.
func FromServices(services []*svclang.Service) (*Corpus, error) {
	if len(services) == 0 {
		return nil, fmt.Errorf("workload: no services")
	}
	corpus := &Corpus{}
	seen := make(map[string]bool, len(services))
	eng := compile.NewEngine(false)
	for _, svc := range services {
		if svc == nil {
			return nil, fmt.Errorf("workload: nil service")
		}
		if seen[svc.Name] {
			return nil, fmt.Errorf("workload: duplicate service name %q", svc.Name)
		}
		seen[svc.Name] = true
		truths, err := eng.Analyze(svc)
		if err != nil {
			return nil, fmt.Errorf("workload: label %s: %w", svc.Name, err)
		}
		corpus.Cases = append(corpus.Cases, Case{
			Service:    svc,
			Template:   "external",
			Difficulty: Medium,
			Truths:     truths,
		})
	}
	return corpus, nil
}
