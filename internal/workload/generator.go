package workload

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/svclang/compile"
)

// Case is one generated service with its verified ground truth.
type Case struct {
	// Service is the generated program.
	Service *svclang.Service
	// Template names the pattern the service was built from.
	Template string
	// Difficulty is the template's difficulty bucket.
	Difficulty Difficulty
	// Truths is the oracle-computed ground truth, one entry per sink in
	// sink-ID order.
	Truths []svclang.GroundTruth
}

// VulnerableSinks returns how many sinks of the case are vulnerable.
func (c Case) VulnerableSinks() int {
	n := 0
	for _, t := range c.Truths {
		if t.Vulnerable {
			n++
		}
	}
	return n
}

// Corpus is a generated benchmark workload.
type Corpus struct {
	// Cases lists the generated services in generation order.
	Cases []Case
	// Config echoes the generation parameters.
	Config Config
}

// TotalSinks returns the number of sinks across all cases.
func (c *Corpus) TotalSinks() int {
	n := 0
	for _, cs := range c.Cases {
		n += len(cs.Truths)
	}
	return n
}

// VulnerableSinks returns the number of vulnerable sinks across all cases.
func (c *Corpus) VulnerableSinks() int {
	n := 0
	for _, cs := range c.Cases {
		n += cs.VulnerableSinks()
	}
	return n
}

// Prevalence returns the fraction of sinks that are vulnerable.
func (c *Corpus) Prevalence() float64 {
	total := c.TotalSinks()
	if total == 0 {
		return 0
	}
	return float64(c.VulnerableSinks()) / float64(total)
}

// Sources renders the whole corpus in the textual service format, suitable
// for writing to disk and re-parsing.
func (c *Corpus) Sources() string {
	var sb strings.Builder
	for _, cs := range c.Cases {
		sb.WriteString(svclang.Print(cs.Service))
		sb.WriteString("\n")
	}
	return sb.String()
}

// DifficultyMix sets the fraction of services drawn from each bucket. The
// three fractions must sum to 1 (within rounding tolerance).
type DifficultyMix struct {
	Easy   float64
	Medium float64
	Hard   float64
}

// DefaultMix mirrors the balance of the public injection test suites:
// mostly straightforward cases with a meaningful hard tail.
func DefaultMix() DifficultyMix {
	return DifficultyMix{Easy: 0.4, Medium: 0.35, Hard: 0.25}
}

// Validate reports whether the mix is a probability distribution.
func (m DifficultyMix) Validate() error {
	for _, f := range []float64{m.Easy, m.Medium, m.Hard} {
		if f < 0 || f > 1 {
			return fmt.Errorf("workload: mix fraction %g out of [0,1]", f)
		}
	}
	if math.Abs(m.Easy+m.Medium+m.Hard-1) > 1e-9 {
		return fmt.Errorf("workload: mix fractions sum to %g, want 1", m.Easy+m.Medium+m.Hard)
	}
	return nil
}

// Config parameterises corpus generation.
type Config struct {
	// Services is the number of services to generate.
	Services int
	// TargetPrevalence is the desired fraction of vulnerable sinks. The
	// realised prevalence differs slightly because some templates carry
	// mandatory safe sinks.
	TargetPrevalence float64
	// Kinds restricts the sink kinds used; empty means all kinds.
	Kinds []svclang.SinkKind
	// Mix is the difficulty mix; the zero value means DefaultMix.
	Mix DifficultyMix
	// Seed drives all random choices.
	Seed uint64
	// Interpreter labels the corpus through the reference tree-walking
	// interpreter instead of the default bytecode VM. Labels are engine-
	// independent (the differential suite pins the engines to each other);
	// the flag mirrors harness Options.Interpreter for end-to-end
	// equivalence runs.
	Interpreter bool
	// OracleExhaustive labels the corpus through the unpruned reference
	// oracle search instead of the default influence-guided one. Labels
	// and witnesses are search-independent (the pruning differential
	// suite pins the searches to each other); the flag is the
	// -oracle-exhaustive escape hatch for settling any doubt the
	// expensive way.
	OracleExhaustive bool
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Services <= 0 {
		return fmt.Errorf("workload: services must be positive, got %d", c.Services)
	}
	if c.TargetPrevalence < 0 || c.TargetPrevalence > 1 {
		return fmt.Errorf("workload: target prevalence %g out of [0,1]", c.TargetPrevalence)
	}
	mix := c.Mix
	if mix == (DifficultyMix{}) {
		mix = DefaultMix()
	}
	return mix.Validate()
}

// ErrLabelMismatch reports that a template's declared expectation
// disagreed with the oracle — a bug in the template library, never
// tolerated silently.
var ErrLabelMismatch = errors.New("workload: template expectation disagrees with ground-truth oracle")

// Generate builds a corpus. Every case's template-declared labels are
// verified against the ground-truth oracle; any disagreement aborts
// generation with ErrLabelMismatch.
func Generate(cfg Config) (*Corpus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mix := cfg.Mix
	if mix == (DifficultyMix{}) {
		mix = DefaultMix()
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = svclang.AllSinkKinds()
	}
	rng := stats.NewRNG(cfg.Seed)
	// One execution engine for the whole generation run: the oracle's
	// probe search dominates corpus cost, and the engine compiles each
	// service once across its probe executions (while the process-wide
	// oracle cache elides repeat derivations of identical bodies
	// entirely).
	eng := compile.NewEngine(cfg.Interpreter)
	eng.SetOracleExhaustive(cfg.OracleExhaustive)
	corpus := &Corpus{Config: cfg}
	buckets := map[Difficulty][]Template{
		Easy:   TemplatesByDifficulty(Easy),
		Medium: TemplatesByDifficulty(Medium),
		Hard:   TemplatesByDifficulty(Hard),
	}
	weights := []float64{mix.Easy, mix.Medium, mix.Hard}
	order := []Difficulty{Easy, Medium, Hard}

	// Feedback steering: several templates carry mandatory safe sinks
	// (constant sinks, dead branches, guarded else-arms), which dilutes a
	// naive Bernoulli draw below the target. Choosing each case's variant
	// by comparing realised prevalence against the target keeps the corpus
	// on target up to the structural ceiling.
	totalSinks, vulnSinks := 0, 0
	for i := 0; i < cfg.Services; i++ {
		difficulty := order[rng.Choice(weights)]
		kind := kinds[rng.Intn(len(kinds))]
		tpl := pickTemplate(rng, buckets[difficulty], kind)
		vulnerable := float64(vulnSinks) < cfg.TargetPrevalence*float64(totalSinks+1)
		name := fmt.Sprintf("%s_%s_%04d", sanitizeName(tpl.Name), kind, i)
		svc, expected := tpl.Build(name, kind, vulnerable)
		truths, err := eng.Analyze(svc)
		if err != nil {
			return nil, fmt.Errorf("workload: analyse %s: %w", name, err)
		}
		if len(truths) != len(expected) {
			return nil, fmt.Errorf("%w: %s declares %d sinks, oracle sees %d", ErrLabelMismatch, name, len(expected), len(truths))
		}
		for j, want := range expected {
			if truths[j].Vulnerable != want {
				return nil, fmt.Errorf("%w: %s sink %d: template says %v, oracle says %v", ErrLabelMismatch, name, j, want, truths[j].Vulnerable)
			}
		}
		for _, tr := range truths {
			totalSinks++
			if tr.Vulnerable {
				vulnSinks++
			}
		}
		corpus.Cases = append(corpus.Cases, Case{
			Service:    svc,
			Template:   tpl.Name,
			Difficulty: difficulty,
			Truths:     truths,
		})
	}
	return corpus, nil
}

// pickTemplate draws a template from the bucket that supports the kind.
// Every bucket contains at least one all-kinds template, so the loop
// terminates.
func pickTemplate(rng *stats.RNG, bucket []Template, kind svclang.SinkKind) Template {
	var eligible []Template
	for _, t := range bucket {
		if t.SupportsKind(kind) {
			eligible = append(eligible, t)
		}
	}
	return eligible[rng.Intn(len(eligible))]
}

// sanitizeName converts a template name to an identifier-safe fragment.
func sanitizeName(s string) string {
	return strings.ReplaceAll(s, "-", "_")
}

// ByKind groups ground-truth-labelled sinks per sink kind, for per-class
// metric aggregation.
func (c *Corpus) ByKind() map[svclang.SinkKind]int {
	out := make(map[svclang.SinkKind]int)
	for _, cs := range c.Cases {
		for _, tr := range cs.Truths {
			out[tr.Kind]++
		}
	}
	return out
}
