// Package experiments contains one driver per reproduced table and figure
// (E1–E10 plus the E11–E17 extensions, see DESIGN.md). Each driver renders its result through the
// report package; the CLI (cmd/vdbench) and the benchmark harness
// (bench_test.go) both call into this package, so the numbers in a paper
// rerun and in `go test -bench` are byte-identical.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/dsn2015/vdbench/internal/detectors"
	"github.com/dsn2015/vdbench/internal/harness"
	"github.com/dsn2015/vdbench/internal/metricprop"
	"github.com/dsn2015/vdbench/internal/report"
	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/workload"
	"github.com/dsn2015/vdbench/internal/workpool"
)

// Config parameterises a full experiment run.
type Config struct {
	// Seed drives every random choice in every experiment.
	Seed uint64
	// Services is the campaign corpus size (E3-E5, E7).
	Services int
	// Prevalence is the campaign target prevalence.
	Prevalence float64
	// Prop configures the metric property analysis (E2, E8-E10).
	Prop metricprop.Config
	// BootstrapResamples is used by the discriminative-power study (E7).
	BootstrapResamples int
	// PanelSize and PanelSigma define the encoded expert panel (E9).
	PanelSize  int
	PanelSigma float64
	// StabilityTrials is the per-sigma trial count of the MCDA
	// sensitivity analysis (E10).
	StabilityTrials int
	// Workers is the shared worker budget for everything a run
	// parallelises: the campaign harness, the metric property catalogue,
	// the bootstrap resampling loops and the experiment drivers
	// themselves. 0 selects runtime.GOMAXPROCS(0), 1 forces serial
	// execution. Every output is byte-identical for every value (see
	// harness.RunParallel, stats.Bootstrap, metricprop.AnalyzeCatalog).
	Workers int
	// PerToolTimeout, Retry and Degraded are the campaign execution
	// policy (see harness.Options). Like Workers, they are operational
	// knobs excluded from experiment cache keys: with well-behaved tools
	// they cannot change any output. PerToolTimeout must be zero (no
	// deadline, the default) or at least one second — a tight deadline
	// could make results hardware-dependent while sharing a cache key.
	PerToolTimeout time.Duration
	Retry          harness.RetryPolicy
	Degraded       harness.DegradedPolicy
	// Interpreter runs corpus labelling and campaign probing through the
	// reference tree-walking interpreter instead of the default bytecode
	// VM (see harness.Options.Interpreter). Outputs are byte-identical
	// either way — the differential suite and the interpreter≡VM
	// determinism pin enforce it — so, like the execution-policy knobs
	// above, the flag is excluded from experiment cache keys.
	Interpreter bool
	// OracleExhaustive labels corpora through the unpruned reference
	// oracle search instead of the default influence-guided one (see
	// workload.Config.OracleExhaustive). Labels and witnesses are
	// search-independent — the pruning differential suite enforces it —
	// so the flag is likewise excluded from experiment cache keys.
	OracleExhaustive bool
}

// DefaultConfig returns the configuration used for the published numbers
// in EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		Services:           500,
		Prevalence:         0.35,
		Prop:               metricprop.DefaultConfig(),
		BootstrapResamples: 2000,
		PanelSize:          5,
		PanelSigma:         0.1,
		StabilityTrials:    300,
	}
}

// QuickConfig returns a reduced configuration for smoke runs and unit
// tests (an order of magnitude faster, same code paths).
func QuickConfig() Config {
	return Config{
		Seed:       1,
		Services:   80,
		Prevalence: 0.35,
		Prop: metricprop.Config{
			MonotonicitySamples:  400,
			WorkloadSize:         800,
			StabilityTrials:      80,
			DiscriminationTrials: 120,
			Tolerance:            1e-9,
		},
		BootstrapResamples: 300,
		PanelSize:          5,
		PanelSigma:         0.1,
		StabilityTrials:    60,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Services <= 0 {
		return fmt.Errorf("experiments: services must be positive, got %d", c.Services)
	}
	if c.Prevalence < 0 || c.Prevalence > 1 {
		return fmt.Errorf("experiments: prevalence %g out of [0,1]", c.Prevalence)
	}
	if c.BootstrapResamples <= 0 || c.PanelSize <= 0 || c.StabilityTrials <= 0 {
		return errors.New("experiments: sample counts must be positive")
	}
	if c.PanelSigma < 0 {
		return fmt.Errorf("experiments: negative panel sigma %g", c.PanelSigma)
	}
	if c.Workers < 0 {
		return fmt.Errorf("experiments: negative worker count %d", c.Workers)
	}
	// The run has one worker budget. Prop.Workers == 0 inherits it (see
	// propConfig); any other value must agree with it, otherwise the two
	// pools would oversubscribe each other behind the caller's back.
	if c.Prop.Workers != 0 && c.Prop.Workers != c.Workers {
		return fmt.Errorf("experiments: inconsistent worker budgets: Prop.Workers=%d vs Workers=%d (set Prop.Workers to 0 to inherit the shared budget)", c.Prop.Workers, c.Workers)
	}
	if c.PerToolTimeout != 0 && c.PerToolTimeout < time.Second {
		return fmt.Errorf("experiments: PerToolTimeout %v below the 1s operational floor (a tight deadline would make cached results hardware-dependent)", c.PerToolTimeout)
	}
	if err := (harness.Options{PerToolTimeout: c.PerToolTimeout, Retry: c.Retry, Degraded: c.Degraded}).Validate(); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	return c.Prop.Validate()
}

// execOptions assembles the harness execution options for this run's
// campaigns.
func (c Config) execOptions() harness.Options {
	return harness.Options{
		Seed:           c.Seed,
		Workers:        c.Workers,
		PerToolTimeout: c.PerToolTimeout,
		Retry:          c.Retry,
		Degraded:       c.Degraded,
		Interpreter:    c.Interpreter,
	}
}

// Result is one experiment's rendered output.
type Result struct {
	// ID is the experiment identifier ("e1".."e10").
	ID string
	// Title describes the table/figure.
	Title string
	// Tables and Figures hold the rendered artefacts.
	Tables  []*report.Table
	Figures []*report.Figure
}

// String renders all artefacts of the result.
func (r Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n\n", strings.ToUpper(r.ID), r.Title)
	for _, t := range r.Tables {
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	for _, f := range r.Figures {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Runner executes experiments, caching the expensive shared inputs (the
// metric property profiles and the benchmark campaign) across drivers.
// A Runner is safe for concurrent use: All runs independent drivers on
// the shared worker budget, and the lazy inputs are computed exactly once
// behind sync.Once gates (results and errors are memoised — every input
// is a deterministic function of the configuration, so a retry would fail
// identically).
type Runner struct {
	cfg    Config
	budget *workpool.Budget
	exec   CampaignExecutor

	profilesOnce sync.Once
	profiles     []metricprop.Profile
	profilesErr  error

	campaignMu   sync.Mutex
	campaignDone bool
	campaign     *harness.Campaign
	campaignErr  error
}

// NewRunner builds a runner. It fails fast on invalid configuration.
func NewRunner(cfg Config) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg, budget: workpool.New(cfg.Workers)}, nil
}

// Config returns the runner's configuration.
func (r *Runner) Config() Config { return r.cfg }

// CampaignExecutor abstracts how the benchmark campaign is executed.
// The default is the in-process harness; internal/dist's Client
// satisfies this structurally to run the campaign on a coordinator's
// worker fleet instead. Either way the result is byte-identical — that
// is the distributed subsystem's contract — so experiments downstream
// of the campaign cannot tell the difference.
type CampaignExecutor interface {
	ExecuteCampaign(ctx context.Context, wcfg workload.Config, suite string, opts harness.Options) (*harness.Campaign, error)
}

// SetCampaignExecutor routes campaign execution through exec (nil
// restores the in-process default). Call before the first Campaign use;
// the campaign is memoised, so later changes have no effect.
func (r *Runner) SetCampaignExecutor(exec CampaignExecutor) {
	r.campaignMu.Lock()
	defer r.campaignMu.Unlock()
	r.exec = exec
}

// propConfig resolves the property-analysis configuration against the
// shared worker budget: Prop.Workers == 0 inherits cfg.Workers (Validate
// rejects any other mismatch).
func (r *Runner) propConfig() metricprop.Config {
	p := r.cfg.Prop
	if p.Workers == 0 {
		p.Workers = r.cfg.Workers
	}
	return p
}

// Profiles returns the property profiles of the full metric catalogue,
// computing them on first use.
func (r *Runner) Profiles() ([]metricprop.Profile, error) {
	r.profilesOnce.Do(func() {
		profiles, err := metricprop.AnalyzeCatalog(r.propConfig(), stats.NewRNG(r.cfg.Seed))
		if err != nil {
			r.profilesErr = fmt.Errorf("experiments: profile catalogue: %w", err)
			return
		}
		r.profiles = profiles
	})
	return r.profiles, r.profilesErr
}

// Campaign returns the benchmark campaign (standard tool suite over the
// generated corpus), running it on first use. It is CampaignCtx without
// cancellation.
func (r *Runner) Campaign() (*harness.Campaign, error) {
	return r.CampaignCtx(context.Background())
}

// CampaignCtx returns the shared benchmark campaign, running it under
// ctx on first use. Deterministic results and failures are memoised —
// every input is a pure function of the configuration, so a retry would
// fail identically. A cancellation is NOT memoised: it reflects the
// caller's context, not the configuration, so a later caller with a live
// context computes the campaign normally.
func (r *Runner) CampaignCtx(ctx context.Context) (*harness.Campaign, error) {
	r.campaignMu.Lock()
	defer r.campaignMu.Unlock()
	if r.campaignDone {
		return r.campaign, r.campaignErr
	}
	camp, err := r.runCampaign(ctx)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return nil, err
	}
	r.campaign, r.campaignErr, r.campaignDone = camp, err, true
	return r.campaign, r.campaignErr
}

func (r *Runner) runCampaign(ctx context.Context) (*harness.Campaign, error) {
	wcfg := workload.Config{
		Services:         r.cfg.Services,
		TargetPrevalence: r.cfg.Prevalence,
		Seed:             r.cfg.Seed,
		Interpreter:      r.cfg.Interpreter,
		OracleExhaustive: r.cfg.OracleExhaustive,
	}
	if r.exec != nil {
		campaign, err := r.exec.ExecuteCampaign(ctx, wcfg, "standard", r.cfg.execOptions())
		if err != nil {
			return nil, fmt.Errorf("experiments: campaign: %w", err)
		}
		return campaign, nil
	}
	corpus, err := workload.Generate(wcfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: corpus: %w", err)
	}
	tools, err := detectors.StandardSuite()
	if err != nil {
		return nil, fmt.Errorf("experiments: tool suite: %w", err)
	}
	campaign, err := harness.RunCtx(ctx, corpus, tools, r.cfg.execOptions())
	if err != nil {
		return nil, fmt.Errorf("experiments: campaign: %w", err)
	}
	return campaign, nil
}

// driver is one experiment entry point.
type driver struct {
	id    string
	title string
	run   func(*Runner, context.Context) (Result, error)
}

// drivers returns the experiment registry in presentation order.
func drivers() []driver {
	return []driver{
		{"e1", "Metric catalogue", (*Runner).E1MetricCatalog},
		{"e2", "Computed metric property matrix", (*Runner).E2MetricProperties},
		{"e3", "Campaign raw results (confusion matrices)", (*Runner).E3Campaign},
		{"e4", "Metric values per tool", (*Runner).E4MetricValues},
		{"e5", "Metric-induced tool rankings and their disagreement", (*Runner).E5Rankings},
		{"e6", "Prevalence sensitivity of the metrics", (*Runner).E6Prevalence},
		{"e7", "Discriminative power under workload resampling", (*Runner).E7Discrimination},
		{"e8", "Scenario-based analytical metric selection", (*Runner).E8ScenarioSelection},
		{"e9", "AHP validation with the encoded expert panel", (*Runner).E9AHP},
		{"e10", "MCDA sensitivity to expert disagreement", (*Runner).E10Sensitivity},
		{"e11", "MCDA method agreement (extension)", (*Runner).E11MethodAgreement},
		{"e12", "Threshold-free metrics (extension)", (*Runner).E12ThresholdFree},
		{"e13", "Micro vs macro averaging (extension)", (*Runner).E13MicroMacro},
		{"e14", "Tool combination (extension)", (*Runner).E14Combination},
		{"e15", "Decision impact of metric selection (extension)", (*Runner).E15DecisionImpact},
		{"e16", "Failure-mechanism map (extension)", (*Runner).E16FailureMap},
		{"e17", "Metric redundancy clusters (extension)", (*Runner).E17Redundancy},
		{"e18", "Metric distortion under injected tool failure (extension)", (*Runner).E18Degradation},
	}
}

// IDs returns the experiment IDs in presentation order.
func IDs() []string {
	ds := drivers()
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.id
	}
	return out
}

// Run executes one experiment by ID. It is RunCtx without cancellation.
func (r *Runner) Run(id string) (Result, error) {
	return r.RunCtx(context.Background(), id)
}

// RunCtx executes one experiment by ID under ctx. Cancellation is
// observed between experiment stages and, inside campaigns, between
// cases; a cancelled run returns an error wrapping ctx.Err().
func (r *Runner) RunCtx(ctx context.Context, id string) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	id = strings.ToLower(strings.TrimSpace(id))
	for _, d := range drivers() {
		if d.id == id {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
			return d.run(r, ctx)
		}
	}
	return Result{}, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
}

// All executes every experiment and returns the results in presentation
// order. It is AllCtx without cancellation.
func (r *Runner) All() ([]Result, error) {
	return r.AllCtx(context.Background())
}

// AllCtx executes every experiment under ctx and returns the results in
// presentation order. Independent drivers run concurrently on the shared
// worker budget (Config.Workers); results land in per-driver slots, so
// the output is byte-identical to a serial run at every worker count. On
// failure the error of the earliest driver (in presentation order) that
// failed is returned, matching what serial execution would report.
// Cancelling ctx stops the run between drivers and between campaign
// cases.
func (r *Runner) AllCtx(ctx context.Context) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ds := drivers()
	out := make([]Result, len(ds))
	err := r.budget.ForEach(len(ds), func(_, i int) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%s: %w", ds[i].id, err)
		}
		res, err := ds[i].run(r, ctx)
		if err != nil {
			return fmt.Errorf("%s: %w", ds[i].id, err)
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// campaignMetricIDs is the metric subset shown in the campaign tables
// (the full catalogue would be unreadable; this is the set the paper-style
// tool tables report).
func campaignMetricIDs() []string {
	return []string{
		"recall", "precision", "f1", "f2", "f0.5", "accuracy",
		"specificity", "fpr", "mcc", "informedness", "markedness", "kappa",
	}
}

// sortedKindNames returns sink kind names sorted for deterministic output.
func sortedKindNames(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
