package experiments

import (
	"strings"
	"testing"

	"github.com/dsn2015/vdbench/internal/metricprop"
)

// tinyConfig is a heavily reduced configuration for the cross-worker
// equality matrix: the full pipeline runs end to end (every driver, every
// table) but with sample counts an order of magnitude below QuickConfig,
// because the matrix reruns it 4 worker counts × 3 seeds.
func tinyConfig(seed uint64, workers int) Config {
	return Config{
		Seed:       seed,
		Services:   30,
		Prevalence: 0.35,
		Prop: metricprop.Config{
			MonotonicitySamples:  60,
			WorkloadSize:         150,
			StabilityTrials:      15,
			DiscriminationTrials: 20,
			Tolerance:            1e-9,
		},
		BootstrapResamples: 100,
		PanelSize:          5,
		PanelSigma:         0.1,
		StabilityTrials:    20,
		Workers:            workers,
	}
}

// renderAll runs every experiment and renders the concatenated text
// output, the same artefact `vdbench all` prints.
func renderAll(t *testing.T, cfg Config) string {
	t.Helper()
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, res := range results {
		sb.WriteString(res.String())
	}
	return sb.String()
}

// TestAllIdenticalAcrossWorkers is the end-to-end determinism pin of the
// parallel layer: the full rendered output of every experiment must be
// byte-identical across worker counts, for several seeds. This is the
// acceptance criterion of the parallelisation work — worker count is a
// scheduling knob, never a results knob.
func TestAllIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-worker matrix is slow")
	}
	for _, seed := range []uint64{1, 7, 42} {
		want := renderAll(t, tinyConfig(seed, 1))
		for _, workers := range []int{2, 4, 13} {
			got := renderAll(t, tinyConfig(seed, workers))
			if got != want {
				t.Fatalf("seed %d: output at %d workers differs from serial output", seed, workers)
			}
		}
	}
}

// TestAllIdenticalInterpreterVsVM extends the determinism matrix along
// the execution-engine axis: the full rendered output of every
// experiment on the reference tree-walking interpreter must be
// byte-identical to the bytecode VM's, for several seeds and worker
// counts. Together with TestAllIdenticalAcrossWorkers this closes the
// (engine × workers × seed) matrix — the engine switch is a speed knob,
// never a results knob, which is also why CacheKey may exclude it.
func TestAllIdenticalInterpreterVsVM(t *testing.T) {
	if testing.Short() {
		t.Skip("engine equality matrix is slow")
	}
	for _, seed := range []uint64{1, 7, 42} {
		want := renderAll(t, tinyConfig(seed, 1)) // bytecode VM, the default
		for _, workers := range []int{1, 2, 4, 13} {
			cfg := tinyConfig(seed, workers)
			cfg.Interpreter = true
			if got := renderAll(t, cfg); got != want {
				t.Fatalf("seed %d: interpreter output at %d workers differs from VM output", seed, workers)
			}
		}
	}
}

// TestValidateRejectsInconsistentBudgets pins the single-budget rule: an
// explicit Prop.Workers that disagrees with the shared Workers budget is
// a configuration error, not a silent oversubscription.
func TestValidateRejectsInconsistentBudgets(t *testing.T) {
	cfg := tinyConfig(1, 4)
	cfg.Prop.Workers = 2
	err := cfg.Validate()
	if err == nil {
		t.Fatal("inconsistent worker budgets accepted")
	}
	if !strings.Contains(err.Error(), "inconsistent worker budgets") {
		t.Fatalf("unhelpful error: %v", err)
	}

	// Agreement and inheritance are both fine.
	cfg.Prop.Workers = 4
	if err := cfg.Validate(); err != nil {
		t.Fatalf("matching budgets rejected: %v", err)
	}
	cfg.Prop.Workers = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("inherited budget rejected: %v", err)
	}
}

// TestPropConfigInheritsWorkers checks the plumbing from the shared
// budget into the property analysis.
func TestPropConfigInheritsWorkers(t *testing.T) {
	r, err := NewRunner(tinyConfig(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.propConfig().Workers; got != 3 {
		t.Fatalf("propConfig().Workers = %d, want inherited 3", got)
	}

	cfg := tinyConfig(1, 3)
	cfg.Prop.Workers = 3
	r2, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.propConfig().Workers; got != 3 {
		t.Fatalf("explicit Prop.Workers not preserved: %d", got)
	}
}
