package experiments

import (
	"context"

	"fmt"
	"strings"

	"github.com/dsn2015/vdbench/internal/core"
	"github.com/dsn2015/vdbench/internal/report"
	"github.com/dsn2015/vdbench/internal/scenario"
	"github.com/dsn2015/vdbench/internal/stats"
)

// E8ScenarioSelection renders the analytical per-scenario metric
// selection: every scenario's criterion weights applied to the computed
// metric profiles.
func (r *Runner) E8ScenarioSelection(ctx context.Context) (Result, error) {
	profiles, err := r.Profiles()
	if err != nil {
		return Result{}, err
	}
	sel := report.NewTable("E8: analytical metric selection per scenario (weighted criteria)",
		"scenario", "best", "2nd", "3rd", "best score", "expected family", "family hit")
	for _, s := range scenario.Scenarios() {
		selection, err := core.Select(s, profiles)
		if err != nil {
			return Result{}, err
		}
		top := selection.Top(3)
		best, _ := selection.ScoreOf(top[0])
		hit := "no"
		for _, want := range s.ExpectedMetrics {
			for _, got := range top {
				if got == want {
					hit = "yes"
				}
			}
		}
		sel.AddRowValues(s.ID, top[0], top[1], top[2], best,
			strings.Join(s.ExpectedMetrics, "/"), hit)
	}

	weights := report.NewTable("E8b: scenario criterion weights (Saaty 1-9 scale)",
		append([]string{"scenario"}, scenario.CriterionIDs()...)...)
	for _, s := range scenario.Scenarios() {
		vec, err := s.WeightVector()
		if err != nil {
			return Result{}, err
		}
		row := []string{s.ID}
		for _, w := range vec {
			row = append(row, report.FormatFloat(w))
		}
		weights.AddRow(row...)
	}
	return Result{
		ID:     "e8",
		Title:  "Scenario-based analytical metric selection",
		Tables: []*report.Table{sel, weights},
	}, nil
}

// E9AHP renders the MCDA validation: per scenario, the aggregated expert
// panel's criteria weights, consistency ratio, AHP top metrics, and the
// agreement with the analytical selection of E8.
func (r *Runner) E9AHP(ctx context.Context) (Result, error) {
	profiles, err := r.Profiles()
	if err != nil {
		return Result{}, err
	}
	main := report.NewTable(
		fmt.Sprintf("E9: AHP validation (panel of %d encoded experts, judgment noise sigma=%s)",
			r.cfg.PanelSize, report.FormatFloat(r.cfg.PanelSigma)),
		"scenario", "CR", "consistent", "AHP best", "AHP 2nd", "AHP 3rd",
		"tau vs analytical", "top-3 overlap")
	weights := report.NewTable("E9b: AHP criteria weights per scenario (from expert judgments)",
		append([]string{"scenario"}, scenario.CriterionIDs()...)...)
	rng := stats.NewRNG(r.cfg.Seed + 9)
	for _, s := range scenario.Scenarios() {
		v, err := core.Validate(s, profiles, r.cfg.PanelSize, r.cfg.PanelSigma, rng.Split())
		if err != nil {
			return Result{}, err
		}
		top := v.Selection.Top(3)
		main.AddRowValues(s.ID, v.AHP.Consistency.CR, yesNo(v.AHP.Consistency.Consistent()),
			top[0], top[1], top[2], v.AgreementTau, v.TopAgreement)
		row := []string{s.ID}
		for _, w := range v.AHP.CriteriaWeights {
			row = append(row, report.FormatFloat(w))
		}
		weights.AddRow(row...)
	}
	return Result{
		ID:     "e9",
		Title:  "AHP validation with the encoded expert panel",
		Tables: []*report.Table{main, weights},
	}, nil
}

// e10Sigmas is the judgment-noise axis of the sensitivity analysis.
var e10Sigmas = []float64{0.05, 0.1, 0.2, 0.3, 0.5}

// E10Sensitivity renders the MCDA sensitivity analysis: how often the
// winning metric survives expert-judgment perturbation of growing
// magnitude, per scenario.
func (r *Runner) E10Sensitivity(ctx context.Context) (Result, error) {
	profiles, err := r.Profiles()
	if err != nil {
		return Result{}, err
	}
	fig := &report.Figure{
		Title:  fmt.Sprintf("E10: AHP winner stability under judgment noise (%d perturbed panels per point)", r.cfg.StabilityTrials),
		XLabel: "judgment noise sigma",
		YLabel: "fraction of panels preserving the winner",
	}
	tauFig := &report.Figure{
		Title:  "E10b: mean Kendall tau between perturbed and consensus rankings",
		XLabel: "judgment noise sigma",
		YLabel: "mean tau",
	}
	rng := stats.NewRNG(r.cfg.Seed + 10)
	for _, s := range scenario.Scenarios() {
		var agree, taus []float64
		for _, sigma := range e10Sigmas {
			res, err := core.WinnerStability(s, profiles, sigma, r.cfg.StabilityTrials, rng.Split())
			if err != nil {
				return Result{}, err
			}
			agree = append(agree, res.WinnerAgreement)
			taus = append(taus, res.MeanTau)
		}
		if err := fig.AddSeries(s.ID, e10Sigmas, agree); err != nil {
			return Result{}, err
		}
		if err := tauFig.AddSeries(s.ID, e10Sigmas, taus); err != nil {
			return Result{}, err
		}
	}
	return Result{
		ID:      "e10",
		Title:   "MCDA sensitivity to expert disagreement",
		Figures: []*report.Figure{fig, tauFig},
	}, nil
}
