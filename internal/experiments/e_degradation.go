package experiments

// E18: metric distortion under injected tool failure. The paper's
// "characteristics of a good metric" analysis assumes every tool produced
// a complete result matrix; real campaigns lose cells to crashes, hangs
// and flakes. This experiment injects seeded, deterministic faults into
// the standard suite at growing rates and measures how far every
// catalogue metric drifts from its fault-free value under the two
// degraded-cell scoring policies — plus the byzantine bound, where a tool
// silently reports wrong findings and no ledger can warn the scorer.

import (
	"context"
	"fmt"
	"math"

	"github.com/dsn2015/vdbench/internal/detectors"
	"github.com/dsn2015/vdbench/internal/detectors/faulty"
	"github.com/dsn2015/vdbench/internal/harness"
	"github.com/dsn2015/vdbench/internal/metrics"
	"github.com/dsn2015/vdbench/internal/report"
	"github.com/dsn2015/vdbench/internal/workload"
)

// e18Rates is the injected failure-rate sweep: 1% of cases lost to 30%.
var e18Rates = []float64{0.01, 0.05, 0.10, 0.20, 0.30}

// e18FigureMetricIDs are the metrics plotted in the distortion figure
// (the headline metrics of the campaign tables).
var e18FigureMetricIDs = []string{
	metrics.IDRecall, metrics.IDPrecision, metrics.IDF1,
	metrics.IDAccuracy, "mcc", "informedness",
}

// E18Degradation measures metric distortion under partial tool failure:
// every tool of the standard suite is wrapped with deterministic fault
// injection (internal/detectors/faulty) and the campaign re-run at each
// failure rate under both degraded-cell policies. Distortion is the mean
// absolute deviation of a metric across tools from its fault-free value.
// A final pair of tables shows the execution ledger at the 10% rate and
// the retry policy recovering transient faults completely.
func (r *Runner) E18Degradation(ctx context.Context) (Result, error) {
	baseline, err := r.CampaignCtx(ctx)
	if err != nil {
		return Result{}, err
	}
	corpus := baseline.Corpus
	catalog := metrics.Catalog()

	type cell struct {
		mean, max float64
		n         int
	}
	// distortion[policy row][metric][rate]
	skipCells := make(map[string][]cell, len(catalog))
	missCells := make(map[string][]cell, len(catalog))
	byzCells := make(map[string][]cell, len(catalog))

	var ledgerSkip *harness.Campaign // panic mode @10%, for the ledger table
	for i, rate := range e18Rates {
		skipCamp, err := r.e18Campaign(ctx, corpus, faulty.ModePanic, rate, harness.DegradedSkip, harness.RetryPolicy{})
		if err != nil {
			return Result{}, err
		}
		missCamp, err := r.e18Campaign(ctx, corpus, faulty.ModePanic, rate, harness.DegradedCountMiss, harness.RetryPolicy{})
		if err != nil {
			return Result{}, err
		}
		byzCamp, err := r.e18Campaign(ctx, corpus, faulty.ModeByzantine, rate, harness.DegradedSkip, harness.RetryPolicy{})
		if err != nil {
			return Result{}, err
		}
		if i == 2 { // rate 0.10
			ledgerSkip = skipCamp
		}
		for _, m := range catalog {
			mean, max, n := e18Distortion(baseline, skipCamp, m)
			skipCells[m.ID] = append(skipCells[m.ID], cell{mean, max, n})
			mean, max, n = e18Distortion(baseline, missCamp, m)
			missCells[m.ID] = append(missCells[m.ID], cell{mean, max, n})
			mean, max, n = e18Distortion(baseline, byzCamp, m)
			byzCells[m.ID] = append(byzCells[m.ID], cell{mean, max, n})
		}
	}

	rateHeader := func() []string {
		out := []string{"metric"}
		for _, rate := range e18Rates {
			out = append(out, fmt.Sprintf("%.0f%%", rate*100))
		}
		return out
	}
	distortionTable := func(title string, cells map[string][]cell) *report.Table {
		tbl := report.NewTable(title, rateHeader()...)
		for _, m := range catalog {
			row := []string{m.ID}
			for _, c := range cells[m.ID] {
				if c.n == 0 {
					row = append(row, "undef")
				} else {
					row = append(row, fmt.Sprintf("%.4f", c.mean))
				}
			}
			tbl.AddRow(row...)
		}
		return tbl
	}

	t1 := distortionTable(
		"E18a: mean absolute metric distortion vs failure rate, panic faults, skip policy (cases dropped from the matrix)", skipCells)
	t2 := distortionTable(
		"E18b: mean absolute metric distortion vs failure rate, panic faults, count-as-miss policy (failed cases scored unflagged)", missCells)
	t3 := distortionTable(
		"E18c: mean absolute metric distortion vs silent byzantine misreporting rate (no ledger entry; the unmeasurable bound)", byzCells)

	// Ledger table: the panic campaign at 10% with the skip policy. Every
	// failed cell is visible — degraded results are only trustworthy
	// because this accounting exists.
	t4 := report.NewTable(
		"E18d: execution ledger, panic faults at 10% (skip policy)",
		"tool", "cases", "succeeded", "failed", "panics", "timeouts", "errors", "attempts", "retries")
	for _, res := range ledgerSkip.Results {
		l := res.Exec
		t4.AddRowValues(res.Tool, l.Cases, l.Succeeded, l.Failed, l.RecoveredPanics, l.Timeouts, l.Errors, l.Attempts, l.Retries)
	}

	// Retry table: transient faults at 10% with one failure before
	// success and a single-retry budget recover every cell; the metric
	// distortion is exactly zero and the ledger shows the retries that
	// bought it.
	transient, err := r.e18Campaign(ctx, corpus, faulty.ModeTransient, 0.10, harness.DegradedSkip, harness.RetryPolicy{MaxRetries: 1})
	if err != nil {
		return Result{}, err
	}
	t5 := report.NewTable(
		"E18e: retry recovery, transient faults at 10% with retry budget 1",
		"tool", "cases", "succeeded", "failed", "retries", "|f1 drift| vs fault-free")
	f1 := metrics.MustByID(metrics.IDF1)
	for i, res := range transient.Results {
		drift := "undef"
		if vb, err := f1.Value(baseline.Results[i].Overall); err == nil {
			if vd, err := f1.Value(res.Overall); err == nil {
				drift = fmt.Sprintf("%.6f", math.Abs(vd-vb))
			}
		}
		l := res.Exec
		t5.AddRowValues(res.Tool, l.Cases, l.Succeeded, l.Failed, l.Retries, drift)
	}

	fig := &report.Figure{
		Title:  "E18: metric distortion vs injected failure rate (count-as-miss policy)",
		XLabel: "failure rate",
		YLabel: "mean |metric - fault-free value| across tools",
	}
	for _, id := range e18FigureMetricIDs {
		ys := make([]float64, len(e18Rates))
		for i, c := range missCells[id] {
			if c.n == 0 {
				ys[i] = math.NaN()
			} else {
				ys[i] = c.mean
			}
		}
		if err := fig.AddSeries(id, append([]float64(nil), e18Rates...), ys); err != nil {
			return Result{}, err
		}
	}

	return Result{
		ID:      "e18",
		Title:   "Metric distortion under injected tool failure (extension)",
		Tables:  []*report.Table{t1, t2, t3, t4, t5},
		Figures: []*report.Figure{fig},
	}, nil
}

// e18Campaign runs the standard suite wrapped with fault injection at the
// given rate. The harness seed matches the baseline campaign, so every
// unaffected (tool, case) cell draws identically and the measured drift
// comes from the faults alone. Fault placement is keyed on the experiment
// seed and is rate-nested: the cases lost at 1% are a subset of those
// lost at 5%, and so on up the sweep.
func (r *Runner) e18Campaign(ctx context.Context, corpus *workload.Corpus, mode faulty.Mode, rate float64, policy harness.DegradedPolicy, retry harness.RetryPolicy) (*harness.Campaign, error) {
	tools, err := detectors.StandardSuite()
	if err != nil {
		return nil, fmt.Errorf("experiments: tool suite: %w", err)
	}
	wrapped := make([]detectors.Tool, len(tools))
	for i, tool := range tools {
		wrapped[i], err = faulty.Wrap(tool, faulty.Config{Mode: mode, Rate: rate, Seed: r.cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("experiments: wrap %s: %w", tool.Name(), err)
		}
	}
	camp, err := harness.RunCtx(ctx, corpus, wrapped, harness.Options{
		Seed:     r.cfg.Seed,
		Workers:  r.cfg.Workers,
		Retry:    retry,
		Degraded: policy,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: degraded campaign (mode %s, rate %g): %w", mode, rate, err)
	}
	return camp, nil
}

// e18Distortion compares one metric across the two campaigns tool by
// tool: the mean and max absolute deviation over the tools on which the
// metric is defined in both, and how many tools that was.
func e18Distortion(baseline, degraded *harness.Campaign, m metrics.Metric) (mean, max float64, n int) {
	var sum float64
	for i := range baseline.Results {
		vb, err := m.Value(baseline.Results[i].Overall)
		if err != nil {
			continue
		}
		vd, err := m.Value(degraded.Results[i].Overall)
		if err != nil {
			continue
		}
		d := math.Abs(vd - vb)
		sum += d
		if d > max {
			max = d
		}
		n++
	}
	if n > 0 {
		mean = sum / float64(n)
	}
	return mean, max, n
}
