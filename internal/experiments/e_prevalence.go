package experiments

import (
	"context"

	"math"

	"github.com/dsn2015/vdbench/internal/metrics"
	"github.com/dsn2015/vdbench/internal/report"
)

// prevalenceSweep is the x-axis of experiment E6.
var prevalenceSweep = []float64{
	0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.35, 0.5, 0.7, 0.9,
}

// e6Quality is the fixed intrinsic quality of the tool whose metric values
// are swept across prevalence in the first E6 figure.
type e6Quality struct {
	tpr, fpr float64
}

// expectedConfusion builds the exact-expectation confusion matrix of a
// tool with the given quality on a workload of the given prevalence.
func expectedConfusion(q e6Quality, size int, prevalence float64) metrics.Confusion {
	pos := int(math.Round(float64(size) * prevalence))
	neg := size - pos
	tp := int(math.Round(float64(pos) * q.tpr))
	fp := int(math.Round(float64(neg) * q.fpr))
	return metrics.Confusion{TP: tp, FN: pos - tp, FP: fp, TN: neg - fp}
}

// E6Prevalence produces the prevalence-sensitivity figures:
//
//   - Figure 1: metric value vs prevalence at fixed tool quality
//     (TPR=0.70, FPR=0.10). Accuracy and precision swing widely;
//     informedness and recall are flat.
//   - Figure 2: the ranking-flip demonstration. Tool A (TPR=0.90,
//     FPR=0.15) truly dominates in informedness; tool B (TPR=0.55,
//     FPR=0.02) merely refuses to alarm. Accuracy declares B the better
//     tool at low prevalence and A at high prevalence — the verdict flips
//     with a workload property. Informedness never flips.
func (r *Runner) E6Prevalence(ctx context.Context) (Result, error) {
	const size = 200000
	sweepIDs := []string{
		metrics.IDAccuracy, metrics.IDPrecision, metrics.IDRecall,
		metrics.IDF1, metrics.IDMCC, metrics.IDInformedness, metrics.IDKappa,
	}
	fixed := e6Quality{tpr: 0.70, fpr: 0.10}
	fig1 := &report.Figure{
		Title:  "E6: metric value vs workload prevalence at fixed tool quality (TPR=0.70, FPR=0.10)",
		XLabel: "prevalence",
		YLabel: "metric value",
	}
	for _, id := range sweepIDs {
		m := metrics.MustByID(id)
		var ys []float64
		for _, p := range prevalenceSweep {
			c := expectedConfusion(fixed, size, p)
			v, err := m.ValueOr(c, math.NaN())
			if err != nil {
				return Result{}, err
			}
			ys = append(ys, v)
		}
		if err := fig1.AddSeries(id, prevalenceSweep, ys); err != nil {
			return Result{}, err
		}
	}

	toolA := e6Quality{tpr: 0.90, fpr: 0.15}
	toolB := e6Quality{tpr: 0.55, fpr: 0.02}
	fig2 := &report.Figure{
		Title:  "E6b: ranking flip — tool A (TPR=0.90, FPR=0.15) vs tool B (TPR=0.55, FPR=0.02)",
		XLabel: "prevalence",
		YLabel: "metric value",
	}
	for _, entry := range []struct {
		name string
		id   string
		q    e6Quality
	}{
		{"accuracy/A", metrics.IDAccuracy, toolA},
		{"accuracy/B", metrics.IDAccuracy, toolB},
		{"informedness/A", metrics.IDInformedness, toolA},
		{"informedness/B", metrics.IDInformedness, toolB},
	} {
		m := metrics.MustByID(entry.id)
		var ys []float64
		for _, p := range prevalenceSweep {
			c := expectedConfusion(entry.q, size, p)
			v, err := m.ValueOr(c, math.NaN())
			if err != nil {
				return Result{}, err
			}
			ys = append(ys, v)
		}
		if err := fig2.AddSeries(entry.name, prevalenceSweep, ys); err != nil {
			return Result{}, err
		}
	}

	// Companion table: where the accuracy verdict flips.
	tbl := report.NewTable("E6c: who accuracy declares the better tool, by prevalence",
		"prevalence", "accuracy(A)", "accuracy(B)", "accuracy prefers", "informedness prefers")
	acc := metrics.MustByID(metrics.IDAccuracy)
	inf := metrics.MustByID(metrics.IDInformedness)
	for _, p := range prevalenceSweep {
		ca := expectedConfusion(toolA, size, p)
		cb := expectedConfusion(toolB, size, p)
		accA, err := acc.Value(ca)
		if err != nil {
			return Result{}, err
		}
		accB, err := acc.Value(cb)
		if err != nil {
			return Result{}, err
		}
		infA, err := inf.Value(ca)
		if err != nil {
			return Result{}, err
		}
		infB, err := inf.Value(cb)
		if err != nil {
			return Result{}, err
		}
		tbl.AddRowValues(p, accA, accB, preferName(accA, accB), preferName(infA, infB))
	}

	return Result{
		ID:      "e6",
		Title:   "Prevalence sensitivity of the metrics",
		Tables:  []*report.Table{tbl},
		Figures: []*report.Figure{fig1, fig2},
	}, nil
}

func preferName(a, b float64) string {
	switch {
	case a > b:
		return "A"
	case b > a:
		return "B"
	default:
		return "tie"
	}
}
