package experiments

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/dsn2015/vdbench/internal/report"
)

// TestCacheKeyCoversEveryConfigField walks Config by reflection,
// perturbs each numeric leaf in isolation, and demands that the cache
// key changes — except for the worker-budget fields (Workers and
// Prop.Workers) and the campaign execution-policy fields (PerToolTimeout,
// Retry.*, Degraded), which the outputs are provably invariant to: the
// former because every layer is workers-deterministic, the latter because
// no cell of the well-behaved standard suite ever fails, so the policy
// for failed cells cannot reach any output. Adding a Config field without
// folding it into CacheKey (or this exclusion list) fails this test
// instead of silently serving stale cached results.
func TestCacheKeyCoversEveryConfigField(t *testing.T) {
	cfg := DefaultConfig()
	baseKey := CacheKey("e1", cfg)

	// excluded reports the fields whose perturbation must NOT move the
	// key: worker budgets, campaign execution policy, the execution-
	// engine selector (interpreter≡VM byte-identity is pinned by the
	// differential suite and TestAllIdenticalInterpreterVsVM) and the
	// oracle-search selector (pruned≡exhaustive is pinned by the pruning
	// differential suite).
	excluded := func(name string) bool {
		return name == "Workers" || strings.HasSuffix(name, ".Workers") ||
			name == "PerToolTimeout" || name == "Degraded" ||
			name == "Interpreter" || name == "OracleExhaustive" ||
			strings.HasPrefix(name, "Retry.")
	}

	// The walk mutates cfg in place through the addressable value chain,
	// one numeric leaf at a time, restoring it before moving on.
	var walk func(v reflect.Value, path string)
	walk = func(v reflect.Value, path string) {
		for i := 0; i < v.NumField(); i++ {
			name := path + v.Type().Field(i).Name
			fv := v.Field(i)
			orig := reflect.ValueOf(fv.Interface())
			switch fv.Kind() {
			case reflect.Struct:
				walk(fv, name+".")
				continue
			case reflect.Int, reflect.Int64:
				fv.SetInt(fv.Int() + 1)
			case reflect.Uint64:
				fv.SetUint(fv.Uint() + 1)
			case reflect.Float64:
				fv.SetFloat(fv.Float()*2 + 0.25)
			case reflect.Bool:
				fv.SetBool(!fv.Bool())
			default:
				t.Fatalf("Config field %s has unhandled kind %s; extend this test and CacheKey", name, fv.Kind())
			}
			key := CacheKey("e1", cfg)
			if excluded(name) {
				if key != baseKey {
					t.Errorf("perturbing %s changed the key; worker budgets and execution policy must be excluded (output is invariant to them)", name)
				}
			} else if key == baseKey {
				t.Errorf("perturbing %s did NOT change the key; CacheKey is missing this field", name)
			}
			fv.Set(orig)
		}
	}
	walk(reflect.ValueOf(&cfg).Elem(), "")
	if got := CacheKey("e1", cfg); got != baseKey {
		t.Fatalf("walk did not restore the config (key %s vs %s)", got, baseKey)
	}
}

func TestCacheKeyIDHandling(t *testing.T) {
	cfg := DefaultConfig()
	if CacheKey("e1", cfg) == CacheKey("e2", cfg) {
		t.Fatal("different experiment IDs share a key")
	}
	if CacheKey(" E1 ", cfg) != CacheKey("e1", cfg) {
		t.Fatal("ID normalisation (trim+lowercase) not applied")
	}
}

func testResult() Result {
	tbl := report.NewTable("T", "a", "b")
	tbl.AddRow("1", "2")
	fig := &report.Figure{
		Title:  "F",
		XLabel: "x",
		YLabel: "y",
		Series: []report.Series{{Name: "s", X: []float64{1, 2}, Y: []float64{3, math.NaN()}}},
	}
	return Result{ID: "eX", Title: "demo", Tables: []*report.Table{tbl}, Figures: []*report.Figure{fig}}
}

func TestRenderFormats(t *testing.T) {
	r := testResult()
	text, err := r.Render("text")
	if err != nil || text != r.String() {
		t.Fatalf("text render mismatch (err %v)", err)
	}
	csv, err := r.Render("csv")
	if err != nil || !strings.Contains(csv, "a,b") {
		t.Fatalf("csv render = %q (err %v)", csv, err)
	}
	md, err := r.Render("markdown")
	if err != nil || !strings.Contains(md, "| a | b |") {
		t.Fatalf("markdown render = %q (err %v)", md, err)
	}
	js, err := r.Render("json")
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID      string            `json:"id"`
		Title   string            `json:"title"`
		Tables  []json.RawMessage `json:"tables"`
		Figures []struct {
			Series []struct {
				Y []*float64 `json:"y"`
			} `json:"series"`
		} `json:"figures"`
	}
	if err := json.Unmarshal([]byte(js), &decoded); err != nil {
		t.Fatalf("json render does not parse: %v\n%s", err, js)
	}
	if decoded.ID != "eX" || len(decoded.Tables) != 1 || len(decoded.Figures) != 1 {
		t.Fatalf("json shape wrong: %s", js)
	}
	// The NaN y-value must encode as null, not break encoding/json.
	y := decoded.Figures[0].Series[0].Y
	if len(y) != 2 || y[0] == nil || y[1] != nil {
		t.Fatalf("non-finite point not encoded as null: %s", js)
	}
	if _, err := r.Render("xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRenderEmptyResultJSON(t *testing.T) {
	// nil table/figure slices must encode as [], not null.
	js, err := Result{ID: "e0", Title: "empty"}.Render("json")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js, `"tables": []`) || !strings.Contains(js, `"figures": []`) {
		t.Fatalf("nil slices not normalised to []: %s", js)
	}
}

func TestJSONDeterministic(t *testing.T) {
	a, err := testResult().JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := testResult().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("JSON encoding is not deterministic")
	}
}

func TestCatalogMatchesIDs(t *testing.T) {
	cat := Catalog()
	ids := IDs()
	if len(cat) != len(ids) {
		t.Fatalf("catalog has %d entries, IDs has %d", len(cat), len(ids))
	}
	for i, info := range cat {
		if info.ID != ids[i] {
			t.Fatalf("catalog[%d] = %s, want %s", i, info.ID, ids[i])
		}
		if info.Title == "" {
			t.Fatalf("experiment %s has an empty title", info.ID)
		}
	}
}

func TestFormatsList(t *testing.T) {
	want := []string{"text", "csv", "markdown", "json"}
	if got := Formats(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Formats() = %v, want %v", got, want)
	}
}
