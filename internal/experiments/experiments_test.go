package experiments

import (
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// sharedRunner executes against QuickConfig once per test binary; the
// drivers cache the campaign and profiles internally.
var (
	runnerOnce sync.Once
	runnerVal  *Runner
	runnerErr  error
)

func quickRunner(t *testing.T) *Runner {
	t.Helper()
	runnerOnce.Do(func() {
		runnerVal, runnerErr = NewRunner(QuickConfig())
	})
	if runnerErr != nil {
		t.Fatal(runnerErr)
	}
	return runnerVal
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := QuickConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Services = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero services accepted")
	}
	bad = DefaultConfig()
	bad.Prevalence = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("prevalence > 1 accepted")
	}
	bad = DefaultConfig()
	bad.PanelSigma = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative sigma accepted")
	}
	bad = DefaultConfig()
	bad.Workers = -2
	if err := bad.Validate(); err == nil {
		t.Error("negative worker count accepted")
	}
	if _, err := NewRunner(Config{}); err == nil {
		t.Error("zero config accepted by NewRunner")
	}
}

func TestIDsAndUnknown(t *testing.T) {
	ids := IDs()
	if len(ids) != 18 {
		t.Fatalf("ids = %v", ids)
	}
	r := quickRunner(t)
	if _, err := r.Run("e99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := r.Run(" E1 "); err != nil {
		t.Fatalf("ID normalisation failed: %v", err)
	}
}

func TestAllExperimentsProduceOutput(t *testing.T) {
	r := quickRunner(t)
	results, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 18 {
		t.Fatalf("got %d results", len(results))
	}
	for _, res := range results {
		if res.ID == "" || res.Title == "" {
			t.Errorf("result %q missing metadata", res.ID)
		}
		if len(res.Tables) == 0 && len(res.Figures) == 0 {
			t.Errorf("%s produced no artefacts", res.ID)
		}
		out := res.String()
		if !strings.Contains(out, strings.ToUpper(res.ID)+":") {
			t.Errorf("%s render missing header: %q", res.ID, out[:60])
		}
	}
}

func TestE1CoversCatalog(t *testing.T) {
	res, err := quickRunner(t).Run("e1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0].NumRows() < 25 {
		t.Fatalf("E1 lists %d metrics", res.Tables[0].NumRows())
	}
	out := res.String()
	for _, want := range []string{"mcc", "informedness", "precision", "Youden"} {
		if !strings.Contains(out, want) {
			t.Errorf("E1 missing %q", want)
		}
	}
}

func TestE2PropertyShape(t *testing.T) {
	res, err := quickRunner(t).Run("e2")
	if err != nil {
		t.Fatal(err)
	}
	out := res.Tables[0].String()
	// Accuracy row must show a visible prevalence spread; informedness 0.
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "informedness":
			if fields[5] != "0" {
				t.Errorf("informedness prev-spread = %s, want 0", fields[5])
			}
		case "accuracy":
			if fields[5] == "0" {
				t.Error("accuracy prev-spread should be non-zero")
			}
		}
	}
}

func TestE3MatricesConsistent(t *testing.T) {
	r := quickRunner(t)
	res, err := r.Run("e3")
	if err != nil {
		t.Fatal(err)
	}
	camp, err := r.Campaign()
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0].NumRows() != len(camp.Results) {
		t.Fatalf("E3 rows = %d, tools = %d", res.Tables[0].NumRows(), len(camp.Results))
	}
}

func TestE4UndefHandling(t *testing.T) {
	res, err := quickRunner(t).Run("e4")
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0].NumRows() != 9 {
		t.Fatalf("E4 rows = %d", res.Tables[0].NumRows())
	}
}

func TestE5ShowsDisagreement(t *testing.T) {
	res, err := quickRunner(t).Run("e5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 {
		t.Fatalf("E5 tables = %d", len(res.Tables))
	}
	// The tau matrix must contain clearly weak correlations: recall-leaning
	// and alarm-leaning metrics rank the tools far from identically. With
	// the CFG dataflow engines in the suite — tools near the top of both
	// the recall and the specificity ranking — the correlation is positive
	// but must stay well below strong agreement (see EXPERIMENTS.md, E5).
	csv := res.Tables[1].CSV()
	var recallRow []string
	for _, line := range strings.Split(csv, "\n") {
		if strings.HasPrefix(line, "recall,") {
			recallRow = strings.Split(line, ",")
		}
	}
	if recallRow == nil {
		t.Fatalf("no recall row in E5b:\n%s", csv)
	}
	header := strings.Split(strings.Split(csv, "\n")[0], ",")
	for i, name := range header {
		if name == "specificity" {
			v := recallRow[i]
			tau, err := strconv.ParseFloat(v, 64)
			if err != nil {
				t.Fatalf("unparseable tau %q", v)
			}
			if tau >= 0.5 {
				t.Errorf("tau(recall, specificity) = %s, expected weak (< 0.5)", v)
			}
		}
	}
}

func TestE6Shapes(t *testing.T) {
	res, err := quickRunner(t).Run("e6")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Figures) != 2 || len(res.Tables) != 1 {
		t.Fatalf("E6 artefacts: %d figures, %d tables", len(res.Figures), len(res.Tables))
	}
	// Figure 1: find the accuracy and informedness series, check spreads.
	var accSpread, infSpread float64
	for _, s := range res.Figures[0].Series {
		lo, hi := s.Y[0], s.Y[0]
		for _, y := range s.Y {
			if y < lo {
				lo = y
			}
			if y > hi {
				hi = y
			}
		}
		switch s.Name {
		case "accuracy":
			accSpread = hi - lo
		case "informedness":
			infSpread = hi - lo
		}
	}
	// At TPR=0.70/FPR=0.10 the analytic accuracy spread over p in
	// [0.01, 0.9] is (1-0.01)·Δ... ≈ 0.178; anything above 0.15 shows the
	// prevalence dependence clearly.
	if accSpread < 0.15 {
		t.Errorf("accuracy prevalence spread = %g, want large", accSpread)
	}
	if infSpread > 0.02 {
		t.Errorf("informedness prevalence spread = %g, want ~0", infSpread)
	}
	// The companion table must show the accuracy verdict flipping while
	// informedness never does.
	csv := res.Tables[0].CSV()
	if !strings.Contains(csv, ",B,A") {
		t.Errorf("no accuracy flip found in E6c:\n%s", csv)
	}
	if strings.Contains(csv, ",B\n") {
		t.Errorf("informedness should always prefer A:\n%s", csv)
	}
}

func TestE7StabilityBounds(t *testing.T) {
	res, err := quickRunner(t).Run("e7")
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0].NumRows() != 8 { // 9 tools -> 8 adjacent pairs
		t.Fatalf("E7 rows = %d", res.Tables[0].NumRows())
	}
}

func TestE8FamilyHits(t *testing.T) {
	res, err := quickRunner(t).Run("e8")
	if err != nil {
		t.Fatal(err)
	}
	csv := res.Tables[0].CSV()
	if strings.Contains(csv, ",no\n") {
		t.Errorf("an E8 scenario missed its expected family:\n%s", csv)
	}
}

func TestE9ConsistencyAndAgreement(t *testing.T) {
	res, err := quickRunner(t).Run("e9")
	if err != nil {
		t.Fatal(err)
	}
	csv := res.Tables[0].CSV()
	if strings.Contains(csv, ",no,") {
		t.Errorf("an E9 panel failed the consistency check:\n%s", csv)
	}
}

func TestE10MonotoneDegradation(t *testing.T) {
	res, err := quickRunner(t).Run("e10")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Figures[0].Series {
		if s.Y[0] < 0.7 {
			t.Errorf("%s: low-noise winner agreement = %g, want >= 0.7", s.Name, s.Y[0])
		}
		for _, y := range s.Y {
			if y < 0 || y > 1 {
				t.Errorf("%s: agreement %g out of [0,1]", s.Name, y)
			}
		}
	}
}

func TestRunnerCaching(t *testing.T) {
	r := quickRunner(t)
	c1, err := r.Campaign()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := r.Campaign()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("campaign not cached")
	}
	p1, err := r.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	if &p1[0] != &p2[0] {
		t.Fatal("profiles not cached")
	}
}

func TestE11MethodsAgree(t *testing.T) {
	res, err := quickRunner(t).Run("e11")
	if err != nil {
		t.Fatal(err)
	}
	csv := res.Tables[0].CSV()
	for _, line := range strings.Split(strings.TrimSpace(csv), "\n")[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 8 {
			t.Fatalf("row %q malformed", line)
		}
		// All pairwise taus must be clearly positive.
		for _, tau := range fields[5:] {
			if strings.HasPrefix(tau, "-") || tau == "0" {
				t.Errorf("scenario %s: method disagreement, tau=%s", fields[0], tau)
			}
		}
	}
}

func TestE12AUCAboveChance(t *testing.T) {
	res, err := quickRunner(t).Run("e12")
	if err != nil {
		t.Fatal(err)
	}
	csv := res.Tables[0].CSV()
	for _, line := range strings.Split(strings.TrimSpace(csv), "\n")[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			t.Fatalf("row %q malformed", line)
		}
		if strings.HasPrefix(fields[2], "0.4") || strings.HasPrefix(fields[2], "0.3") {
			t.Errorf("%s: AUC %s at or below chance", fields[0], fields[2])
		}
	}
}

func TestE13GapsBounded(t *testing.T) {
	res, err := quickRunner(t).Run("e13")
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0].NumRows() != 9 {
		t.Fatalf("E13 rows = %d", res.Tables[0].NumRows())
	}
}

func TestE16MechanismsLandOnDesignedTools(t *testing.T) {
	res, err := quickRunner(t).Run("e16")
	if err != nil {
		t.Fatal(err)
	}
	csv := res.Tables[0].CSV()
	header := strings.Split(strings.Split(csv, "\n")[0], ",")
	col := map[string]int{}
	for i, h := range header {
		col[h] = i
	}
	for _, line := range strings.Split(strings.TrimSpace(csv), "\n")[1:] {
		fields := strings.Split(line, ",")
		tpl := fields[0]
		get := func(tool string) string { return fields[col[tool]] }
		switch tpl {
		case "silent-sink":
			// Static tools see silent sinks perfectly; only DAST can lose.
			if get("ts-precise") != "1" {
				t.Errorf("silent-sink should not affect static analysis: %s", line)
			}
		case "wrong-sanitizer":
			if get("ts-precise") != "1" || get("pt-deep") != "1" {
				t.Errorf("sink-aware and dynamic tools should ace wrong-sanitizer: %s", line)
			}
		case "constant-sink", "direct-splice":
			for _, tool := range []string{"ts-precise", "ts-aggressive", "ts-lite", "grep-sast", "df-precise", "df-stateless", "pt-deep", "pt-fast"} {
				if get(tool) != "1" {
					t.Errorf("%s: deterministic tool %s below 1: %s", tpl, tool, line)
				}
			}
		}
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	// Two fresh runners with identical config must render byte-identical
	// output for every campaign- and profile-based experiment.
	cfg := QuickConfig()
	r1, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"e2", "e3", "e5", "e9", "e16"} {
		a, err := r1.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := r2.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("%s output is not deterministic", id)
		}
	}
}

// TestE1MatchesGolden pins the metric catalogue's rendered form: an
// accidental change to a formula, range or reference shows up as a diff
// against the snapshot. Regenerate deliberately with:
//
//	go run ./cmd/vdbench -quick e1 > internal/experiments/testdata/e1_golden.txt
func TestE1MatchesGolden(t *testing.T) {
	golden, err := os.ReadFile("testdata/e1_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	res, err := quickRunner(t).Run("e1")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.String(); got != string(golden) {
		t.Fatalf("E1 output diverged from the golden snapshot; if intentional, regenerate it\ngot:\n%s", got)
	}
}

// TestE3MatchesGoldenAcrossWorkers pins the campaign's rendered raw
// results and proves the worker pool does not perturb them: the E3 table
// must match the snapshot byte for byte at every tested worker count.
// Regenerate deliberately with:
//
//	go run ./cmd/vdbench -quick -workers 1 e3 > internal/experiments/testdata/e3_golden.txt
func TestE3MatchesGoldenAcrossWorkers(t *testing.T) {
	golden, err := os.ReadFile("testdata/e3_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		cfg := QuickConfig()
		cfg.Workers = workers
		runner, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := runner.Run("e3")
		if err != nil {
			t.Fatal(err)
		}
		if got := res.String(); got != string(golden) {
			t.Fatalf("E3 output with workers=%d diverged from the golden snapshot\ngot:\n%s", workers, got)
		}
	}
}
