package experiments

import (
	"context"

	"fmt"
	"math"

	"github.com/dsn2015/vdbench/internal/metrics"
	"github.com/dsn2015/vdbench/internal/report"
)

// E1MetricCatalog renders the gathered metric set: identifier, full name,
// defining formula, range, orientation and provenance — the study's
// equivalent of the paper's metric-gathering table.
func (r *Runner) E1MetricCatalog(ctx context.Context) (Result, error) {
	tbl := report.NewTable(
		"E1: candidate metrics for benchmarking vulnerability detection tools",
		"id", "name", "formula", "range", "orientation", "reference",
	)
	for _, m := range metrics.Catalog() {
		tbl.AddRow(m.ID, m.Name, m.Formula, rangeString(m), m.Orientation.String(), m.Reference)
	}
	return Result{
		ID:     "e1",
		Title:  "Metric catalogue",
		Tables: []*report.Table{tbl},
	}, nil
}

func rangeString(m metrics.Metric) string {
	lo := report.FormatFloat(m.Lo)
	hi := "inf"
	if !math.IsInf(m.Hi, 1) {
		hi = report.FormatFloat(m.Hi)
	}
	return fmt.Sprintf("[%s, %s]", lo, hi)
}

// E2MetricProperties renders the computed property matrix: the paper's
// "characteristics of a good metric" analysis with every cell backed by a
// programmatic check rather than judgment.
func (r *Runner) E2MetricProperties(ctx context.Context) (Result, error) {
	profiles, err := r.Profiles()
	if err != nil {
		return Result{}, err
	}
	tbl := report.NewTable(
		"E2: computed metric properties (workload size "+fmt.Sprint(r.cfg.Prop.WorkloadSize)+", reference tool TPR=0.70 FPR=0.10)",
		"metric", "bounded", "defined", "mono-det", "mono-fa",
		"prev-spread", "chance-spread", "stability", "discrim", "miss-sens", "fa-sens",
	)
	for _, p := range profiles {
		tbl.AddRowValues(
			p.MetricID,
			yesNo(p.Bounded),
			p.DefinednessRate,
			yesNo(p.MonotoneDetections),
			yesNo(p.MonotoneFalseAlarms),
			spreadCell(p.PrevalenceSpread),
			spreadCell(p.ChanceSpread),
			spreadCell(p.Stability),
			p.Discrimination,
			p.MissSensitivity,
			p.FalseAlarmSensitivity,
		)
	}
	return Result{
		ID:     "e2",
		Title:  "Computed metric property matrix",
		Tables: []*report.Table{tbl},
	}, nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func spreadCell(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return report.FormatFloat(v)
}
