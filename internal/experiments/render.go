package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"github.com/dsn2015/vdbench/internal/report"
)

// Info identifies one experiment of the registry.
type Info struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// Catalog returns the experiment registry (ID and title) in presentation
// order.
func Catalog() []Info {
	ds := drivers()
	out := make([]Info, len(ds))
	for i, d := range ds {
		out[i] = Info{ID: d.id, Title: d.title}
	}
	return out
}

// Formats lists the render formats supported by Result.Render, shared by
// cmd/vdbench and the service API.
func Formats() []string { return []string{"text", "csv", "markdown", "json"} }

// Render renders the result in one of Formats: "text" is the aligned
// form of String; "csv" and "markdown" render the tables (figures keep
// their text form); "json" is the canonical JSON encoding. Both the CLI
// and the serving API emit exactly this string, so a cached response is
// byte-identical to a cold run.
func (r Result) Render(format string) (string, error) {
	var sb strings.Builder
	switch format {
	case "text":
		return r.String(), nil
	case "csv":
		for _, t := range r.Tables {
			sb.WriteString(t.CSV())
			sb.WriteByte('\n')
		}
		for _, f := range r.Figures {
			sb.WriteString(f.String())
			sb.WriteByte('\n')
		}
		return sb.String(), nil
	case "markdown":
		for _, t := range r.Tables {
			sb.WriteString(t.Markdown())
			sb.WriteByte('\n')
		}
		for _, f := range r.Figures {
			sb.WriteString(f.String())
			sb.WriteByte('\n')
		}
		return sb.String(), nil
	case "json":
		b, err := r.JSON()
		if err != nil {
			return "", err
		}
		return string(b) + "\n", nil
	default:
		return "", fmt.Errorf("experiments: unknown format %q (want %s)", format, strings.Join(Formats(), ", "))
	}
}

// JSON returns the canonical JSON encoding of the result: the one
// encoder behind `cmd/vdbench -format json` and the service API result
// endpoint. Encoding is deterministic (struct-ordered fields, nil slices
// normalised to empty) and non-finite figure points become null.
func (r Result) JSON() ([]byte, error) {
	tables := r.Tables
	if tables == nil {
		tables = []*report.Table{}
	}
	figures := r.Figures
	if figures == nil {
		figures = []*report.Figure{}
	}
	return json.MarshalIndent(struct {
		ID      string           `json:"id"`
		Title   string           `json:"title"`
		Tables  []*report.Table  `json:"tables"`
		Figures []*report.Figure `json:"figures"`
	}{r.ID, r.Title, tables, figures}, "", "  ")
}

// CacheKey returns the content address of an experiment run: a SHA-256
// over the experiment ID and a canonical field-by-field encoding of the
// configuration. Workers and Prop.Workers are deliberately excluded —
// every output is byte-identical for every worker count (see
// harness.RunParallel, stats.Bootstrap, metricprop.AnalyzeCatalog) — so
// runs that differ only in their worker budget share one key; that
// invariance is what makes memoising experiment results sound. The
// execution-policy fields (PerToolTimeout, Retry, Degraded) are excluded
// for the same reason: with the well-behaved standard suite no cell ever
// fails, so the policy cannot reach any output (Config.Validate pins
// PerToolTimeout to zero or >= 1s so a deadline can never fire on a
// healthy tool). Interpreter is excluded because the bytecode VM and the
// reference interpreter produce byte-identical outputs (pinned by the
// differential suite and TestAllIdenticalInterpreterVsVM), and
// OracleExhaustive because the influence-guided and exhaustive oracle
// searches derive identical ground truth (pinned by the pruning
// differential suite). Every other Config field must be folded in here
// (TestCacheKeyCoversEveryConfigField enforces this by reflection).
func CacheKey(id string, cfg Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "vdbench-experiment-v1\nid=%s\n", strings.ToLower(strings.TrimSpace(id)))
	fmt.Fprintf(h, "seed=%d\nservices=%d\nprevalence=%.17g\n", cfg.Seed, cfg.Services, cfg.Prevalence)
	fmt.Fprintf(h, "prop.monotonicity=%d\nprop.workload=%d\nprop.stability=%d\nprop.discrimination=%d\nprop.tolerance=%.17g\n",
		cfg.Prop.MonotonicitySamples, cfg.Prop.WorkloadSize, cfg.Prop.StabilityTrials, cfg.Prop.DiscriminationTrials, cfg.Prop.Tolerance)
	fmt.Fprintf(h, "bootstrap=%d\npanel.size=%d\npanel.sigma=%.17g\nstability=%d\n",
		cfg.BootstrapResamples, cfg.PanelSize, cfg.PanelSigma, cfg.StabilityTrials)
	return hex.EncodeToString(h.Sum(nil))
}
