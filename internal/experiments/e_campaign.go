package experiments

import (
	"context"

	"fmt"

	"github.com/dsn2015/vdbench/internal/harness"
	"github.com/dsn2015/vdbench/internal/metrics"
	"github.com/dsn2015/vdbench/internal/ranking"
	"github.com/dsn2015/vdbench/internal/report"
	"github.com/dsn2015/vdbench/internal/stats"
)

// deltaOrZero wraps harness.ConfusionDelta for use inside resampling
// closures, mapping errors to a zero delta (counted as sign-unstable).
func deltaOrZero(a, b *harness.ToolResult, m metrics.Metric, idx []int) (float64, error) {
	return harness.ConfusionDelta(a, b, m, idx)
}

// E3Campaign renders the raw campaign results: per-tool confusion
// matrices, plus the per-kind sink population of the corpus.
func (r *Runner) E3Campaign(ctx context.Context) (Result, error) {
	camp, err := r.CampaignCtx(ctx)
	if err != nil {
		return Result{}, err
	}
	title := fmt.Sprintf(
		"E3: campaign raw results (%d services, %d sinks, %d vulnerable, realised prevalence %s, seed %d)",
		len(camp.Corpus.Cases), camp.Corpus.TotalSinks(), camp.Corpus.VulnerableSinks(),
		report.FormatFloat(camp.Corpus.Prevalence()), r.cfg.Seed,
	)
	tools := report.NewTable(title, "tool", "class", "TP", "FP", "FN", "TN")
	for _, res := range camp.Results {
		tools.AddRowValues(res.Tool, res.Class.String(), res.Overall.TP, res.Overall.FP, res.Overall.FN, res.Overall.TN)
	}

	kindCounts := map[string]int{}
	for kind, n := range camp.Corpus.ByKind() {
		kindCounts[kind.String()] = n
	}
	kinds := report.NewTable("E3b: corpus sink population by vulnerability class", "class", "sinks")
	for _, name := range sortedKindNames(kindCounts) {
		kinds.AddRowValues(name, kindCounts[name])
	}

	return Result{
		ID:     "e3",
		Title:  "Campaign raw results (confusion matrices)",
		Tables: []*report.Table{tools, kinds},
	}, nil
}

// E4MetricValues renders every campaign metric for every tool — the table
// the rest of the metric study reads tool quality from.
func (r *Runner) E4MetricValues(ctx context.Context) (Result, error) {
	camp, err := r.CampaignCtx(ctx)
	if err != nil {
		return Result{}, err
	}
	headers := append([]string{"tool"}, campaignMetricIDs()...)
	tbl := report.NewTable("E4: metric values per tool (campaign of E3)", headers...)
	for _, res := range camp.Results {
		row := []string{res.Tool}
		for _, id := range campaignMetricIDs() {
			m := metrics.MustByID(id)
			v, err := m.Value(res.Overall)
			if err != nil {
				if metrics.IsUndefined(err) {
					row = append(row, "undef")
					continue
				}
				return Result{}, err
			}
			row = append(row, report.FormatFloat(v))
		}
		tbl.AddRow(row...)
	}
	// Companion table: Wilson 95% intervals for the two headline rate
	// metrics. Rates are binomial proportions (recall = TP successes out
	// of P trials; precision = TP out of reported), so the intervals are
	// exact-model error bars, not resampling artefacts.
	ci := report.NewTable("E4b: 95% Wilson intervals for recall and precision",
		"tool", "recall", "recall 95% CI", "precision", "precision 95% CI")
	for _, res := range camp.Results {
		c := res.Overall
		recIv, err := stats.Wilson(c.TP, c.Positives(), 0.95)
		if err != nil {
			return Result{}, err
		}
		row := []string{res.Tool, report.FormatFloat(recIv.Point),
			fmt.Sprintf("[%s, %s]", report.FormatFloat(recIv.Lo), report.FormatFloat(recIv.Hi))}
		if c.PredictedPositives() > 0 {
			precIv, err := stats.Wilson(c.TP, c.PredictedPositives(), 0.95)
			if err != nil {
				return Result{}, err
			}
			row = append(row, report.FormatFloat(precIv.Point),
				fmt.Sprintf("[%s, %s]", report.FormatFloat(precIv.Lo), report.FormatFloat(precIv.Hi)))
		} else {
			row = append(row, "undef", "n/a")
		}
		ci.AddRow(row...)
	}
	// Second companion: percentile-bootstrap intervals for the two
	// composite headline metrics. F1 and MCC are not binomial proportions,
	// so Wilson does not apply; resampling the sink outcomes is the
	// appropriate error bar. The resampling loops parallelise on the
	// shared worker budget, with intervals byte-identical at every count.
	boot := report.NewTable(
		fmt.Sprintf("E4c: %d-resample percentile bootstrap 95%% CIs (F1, MCC)", r.cfg.BootstrapResamples),
		"tool", "f1", "f1 95% CI", "mcc", "mcc 95% CI")
	bootCfg := stats.BootstrapConfig{
		Resamples:  r.cfg.BootstrapResamples,
		Confidence: 0.95,
		Workers:    r.cfg.Workers,
	}
	rng := stats.NewRNG(r.cfg.Seed + 4)
	for i := range camp.Results {
		res := &camp.Results[i]
		row := []string{res.Tool}
		for _, id := range []string{metrics.IDF1, metrics.IDMCC} {
			m := metrics.MustByID(id)
			iv, err := stats.BootstrapIndexed(rng.Split(), len(res.Outcomes), bootCfg, func(idx []int) float64 {
				var c metrics.Confusion
				for _, j := range idx {
					c = c.Add(res.Outcomes[j].Confusion())
				}
				v, err := m.ValueOr(c, worstFallback(m))
				if err != nil {
					return worstFallback(m)
				}
				return v
			})
			if err != nil {
				return Result{}, err
			}
			point, err := m.ValueOr(res.Overall, worstFallback(m))
			if err != nil {
				return Result{}, err
			}
			row = append(row, report.FormatFloat(point),
				fmt.Sprintf("[%s, %s]", report.FormatFloat(iv.Lo), report.FormatFloat(iv.Hi)))
		}
		boot.AddRow(row...)
	}
	return Result{
		ID:     "e4",
		Title:  "Metric values per tool",
		Tables: []*report.Table{tbl, ci, boot},
	}, nil
}

// E5Rankings renders the tool ranking induced by each metric and the
// pairwise Kendall tau between metric-induced rankings: the quantitative
// form of "metrics disagree about which tool is best".
func (r *Runner) E5Rankings(ctx context.Context) (Result, error) {
	camp, err := r.CampaignCtx(ctx)
	if err != nil {
		return Result{}, err
	}
	ids := campaignMetricIDs()
	scores := make(map[string][]float64, len(ids))
	for _, id := range ids {
		m := metrics.MustByID(id)
		s, err := camp.MetricScores(m, worstFallback(m))
		if err != nil {
			return Result{}, err
		}
		scores[id] = s
	}

	// Table 1: rank of each tool under each metric (1 = best).
	headers := append([]string{"tool"}, ids...)
	rankTbl := report.NewTable("E5: tool rank under each metric (1 = best)", headers...)
	rankRows := make(map[string][]float64, len(ids))
	for _, id := range ids {
		rankRows[id] = ranking.Ranks(scores[id])
	}
	for t, tool := range camp.ToolNames() {
		row := []string{tool}
		for _, id := range ids {
			row = append(row, report.FormatFloat(rankRows[id][t]))
		}
		rankTbl.AddRow(row...)
	}

	// Table 2: Kendall tau-b between metric-induced rankings.
	tauTbl := report.NewTable("E5b: Kendall tau-b between metric-induced tool rankings", append([]string{"metric"}, ids...)...)
	for _, a := range ids {
		row := []string{a}
		for _, b := range ids {
			tau, err := ranking.KendallTau(scores[a], scores[b])
			if err != nil {
				row = append(row, "n/a")
				continue
			}
			row = append(row, report.FormatFloat(tau))
		}
		tauTbl.AddRow(row...)
	}
	return Result{
		ID:     "e5",
		Title:  "Metric-induced tool rankings and their disagreement",
		Tables: []*report.Table{rankTbl, tauTbl},
	}, nil
}

// worstFallback substitutes the worst defined value when a metric is
// undefined for some tool (e.g. precision for a tool that reports
// nothing), so rankings remain total.
func worstFallback(m metrics.Metric) float64 {
	if !m.Bounded() {
		return 0
	}
	if m.Orientation == metrics.LowerIsBetter {
		return m.Hi
	}
	return m.Lo
}

// E7Discrimination measures, for each metric and each adjacent pair in the
// campaign's F1 ranking, the fraction of workload bootstrap resamples that
// preserve the sign of the metric delta — the discriminative power of the
// metric on real tool pairs.
func (r *Runner) E7Discrimination(ctx context.Context) (Result, error) {
	camp, err := r.CampaignCtx(ctx)
	if err != nil {
		return Result{}, err
	}
	f1 := metrics.MustByID(metrics.IDF1)
	f1Scores, err := camp.MetricScores(f1, 0)
	if err != nil {
		return Result{}, err
	}
	order := ranking.TopK(f1Scores, len(f1Scores))
	ids := campaignMetricIDs()
	headers := append([]string{"pair (better vs worse by F1)"}, ids...)
	tbl := report.NewTable(
		fmt.Sprintf("E7: sign stability of metric deltas under %d workload resamples", r.cfg.BootstrapResamples),
		headers...,
	)
	// Each (pair, metric) cell resamples independently, so the cells fan
	// out across the shared worker budget. The per-cell RNG streams are
	// pre-split in exactly the serial loop's order — pair-major, metric-
	// minor — which keeps every draw, and hence every published fraction,
	// byte-identical at any worker count.
	nPairs := len(order) - 1
	if nPairs < 0 {
		nPairs = 0
	}
	rng := stats.NewRNG(r.cfg.Seed + 7)
	cellRNGs := make([]*stats.RNG, nPairs*len(ids))
	for i := range cellRNGs {
		cellRNGs[i] = rng.Split()
	}
	fracs := make([]float64, nPairs*len(ids))
	err = r.budget.ForEach(len(fracs), func(_, cell int) error {
		pair, mi := cell/len(ids), cell%len(ids)
		a := &camp.Results[order[pair]]
		b := &camp.Results[order[pair+1]]
		m := metrics.MustByID(ids[mi])
		frac, err := stats.SignStability(cellRNGs[cell], len(a.Outcomes), r.cfg.BootstrapResamples, func(idx []int) float64 {
			d, err := deltaOrZero(a, b, m, idx)
			if err != nil {
				return 0
			}
			return d
		})
		if err != nil {
			return err
		}
		fracs[cell] = frac
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < nPairs; i++ {
		a := &camp.Results[order[i]]
		b := &camp.Results[order[i+1]]
		row := []string{fmt.Sprintf("%s vs %s", a.Tool, b.Tool)}
		for j := range ids {
			row = append(row, report.FormatFloat(fracs[i*len(ids)+j]))
		}
		tbl.AddRow(row...)
	}
	// Companion: McNemar's paired test on classification correctness for
	// the same adjacent pairs. It asks the metric-free question "do these
	// two tools classify this workload differently at all?" — the
	// statistically appropriate test, since both tools share every case.
	mcTbl := report.NewTable("E7b: McNemar paired test per adjacent pair (correct-vs-correct)",
		"pair", "A-only correct", "B-only correct", "chi2", "p-value", "significant at 0.05")
	for i := 0; i+1 < len(order); i++ {
		a := &camp.Results[order[i]]
		b := &camp.Results[order[i+1]]
		aCorrect := make([]bool, len(a.Outcomes))
		bCorrect := make([]bool, len(b.Outcomes))
		for j := range a.Outcomes {
			aCorrect[j] = a.Outcomes[j].Vulnerable == a.Outcomes[j].Flagged
			bCorrect[j] = b.Outcomes[j].Vulnerable == b.Outcomes[j].Flagged
		}
		res, err := stats.McNemarFromOutcomes(aCorrect, bCorrect)
		if err != nil {
			return Result{}, err
		}
		mcTbl.AddRowValues(
			fmt.Sprintf("%s vs %s", a.Tool, b.Tool),
			res.B, res.C, res.Statistic, res.PValue, yesNo(res.Significant(0.05)),
		)
	}
	return Result{
		ID:     "e7",
		Title:  "Discriminative power under workload resampling",
		Tables: []*report.Table{tbl, mcTbl},
	}, nil
}
