package experiments

// Extension experiments beyond the paper's core pipeline (marked as such
// in DESIGN.md): method-independence of the MCDA validation (E11),
// threshold-free metrics over tool confidence scores (E12), and the
// micro- vs macro-averaging gap across vulnerability classes (E13).

import (
	"context"

	"fmt"
	"strings"

	"github.com/dsn2015/vdbench/internal/core"
	"github.com/dsn2015/vdbench/internal/detectors"
	"github.com/dsn2015/vdbench/internal/harness"
	"github.com/dsn2015/vdbench/internal/mcda"
	"github.com/dsn2015/vdbench/internal/metrics"
	"github.com/dsn2015/vdbench/internal/ranking"
	"github.com/dsn2015/vdbench/internal/report"
	"github.com/dsn2015/vdbench/internal/scenario"
	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/workload"
)

// E11MethodAgreement checks that the per-scenario metric selection does
// not depend on the MCDA method: weighted sum (the analytical selection),
// AHP (eigenvector weights) and TOPSIS must produce concordant rankings.
func (r *Runner) E11MethodAgreement(ctx context.Context) (Result, error) {
	profiles, err := r.Profiles()
	if err != nil {
		return Result{}, err
	}
	problem, err := core.BuildProblem(profiles)
	if err != nil {
		return Result{}, err
	}
	tbl := report.NewTable("E11: MCDA method agreement per scenario",
		"scenario", "WSM best", "AHP best", "TOPSIS best", "WPM best",
		"tau WSM-AHP", "tau WSM-TOPSIS", "tau WSM-WPM")
	for _, s := range scenario.Scenarios() {
		weights, err := s.WeightVector()
		if err != nil {
			return Result{}, err
		}
		wsm, err := mcda.WeightedSum(problem, weights)
		if err != nil {
			return Result{}, err
		}
		judgments, err := mcda.FromWeights(weights)
		if err != nil {
			return Result{}, err
		}
		ahpRes, err := mcda.AHP(judgments, problem)
		if err != nil {
			return Result{}, err
		}
		topsis, err := mcda.TOPSIS(problem, weights)
		if err != nil {
			return Result{}, err
		}
		tau1, err := ranking.KendallTau(wsm, ahpRes.Scores)
		if err != nil {
			return Result{}, err
		}
		tau2, err := ranking.KendallTau(wsm, topsis)
		if err != nil {
			return Result{}, err
		}
		wpm, err := mcda.WeightedProduct(problem, weights)
		if err != nil {
			return Result{}, err
		}
		tau3, err := ranking.KendallTau(wsm, wpm)
		if err != nil {
			return Result{}, err
		}
		tbl.AddRowValues(s.ID,
			problem.Alternatives[ranking.TopK(wsm, 1)[0]],
			problem.Alternatives[ranking.TopK(ahpRes.Scores, 1)[0]],
			problem.Alternatives[ranking.TopK(topsis, 1)[0]],
			problem.Alternatives[ranking.TopK(wpm, 1)[0]],
			tau1, tau2, tau3)
	}
	return Result{
		ID:     "e11",
		Title:  "MCDA method agreement (extension)",
		Tables: []*report.Table{tbl},
	}, nil
}

// E12ThresholdFree evaluates the tools with threshold-free metrics over
// their confidence scores: ROC AUC and average precision. These metrics
// sidestep the operating-point question entirely — another family of
// "seldom used" benchmark metrics.
func (r *Runner) E12ThresholdFree(ctx context.Context) (Result, error) {
	camp, err := r.CampaignCtx(ctx)
	if err != nil {
		return Result{}, err
	}
	tbl := report.NewTable("E12: threshold-free tool quality over confidence scores",
		"tool", "class", "ROC AUC", "avg precision")
	for i := range camp.Results {
		res := &camp.Results[i]
		scored := res.ScoredInstances()
		auc, err := metrics.AUC(scored)
		if err != nil {
			return Result{}, fmt.Errorf("AUC for %s: %w", res.Tool, err)
		}
		ap, err := metrics.AveragePrecision(scored)
		if err != nil {
			return Result{}, fmt.Errorf("AP for %s: %w", res.Tool, err)
		}
		tbl.AddRowValues(res.Tool, res.Class.String(), auc, ap)
	}
	return Result{
		ID:     "e12",
		Title:  "Threshold-free metrics (extension)",
		Tables: []*report.Table{tbl},
	}, nil
}

// E13MicroMacro contrasts micro-averaged (instance-weighted) and
// macro-averaged (class-weighted) F1 and recall across vulnerability
// classes. The corpus is deliberately skewed (SQL dominates 8:1 over
// command injection): tools that are weak on the rare class look better
// under micro than macro averaging, so the averaging mode is itself a
// benchmark design decision. The main campaign's balanced corpus would
// hide this, hence the dedicated skewed corpus.
func (r *Runner) E13MicroMacro(ctx context.Context) (Result, error) {
	skewed := make([]svclang.SinkKind, 0, 9)
	for i := 0; i < 8; i++ {
		skewed = append(skewed, svclang.SinkSQL)
	}
	skewed = append(skewed, svclang.SinkCmd)
	corpus, err := workload.Generate(workload.Config{
		Services:         r.cfg.Services,
		TargetPrevalence: r.cfg.Prevalence,
		Kinds:            skewed,
		Seed:             r.cfg.Seed + 13,
		Interpreter:      r.cfg.Interpreter,
		OracleExhaustive: r.cfg.OracleExhaustive,
	})
	if err != nil {
		return Result{}, err
	}
	tools, err := detectors.StandardSuite()
	if err != nil {
		return Result{}, err
	}
	camp, err := harness.RunParallel(corpus, tools, r.cfg.Seed+13, r.cfg.Workers)
	if err != nil {
		return Result{}, err
	}
	f1 := metrics.MustByID(metrics.IDF1)
	rec := metrics.MustByID(metrics.IDRecall)
	tbl := report.NewTable(
		fmt.Sprintf("E13: micro vs macro averaging on a skewed corpus (sql:cmd = 8:1, %d services)", r.cfg.Services),
		"tool", "micro-F1", "macro-F1", "F1 gap", "micro-recall", "macro-recall", "recall gap")
	for i := range camp.Results {
		res := &camp.Results[i]
		perClass := make([]metrics.Confusion, 0, len(res.ByKind))
		for _, kind := range svclang.AllSinkKinds() {
			if c, ok := res.ByKind[kind]; ok {
				perClass = append(perClass, c)
			}
		}
		microF1, err := f1.ValueOr(res.Overall, 0)
		if err != nil {
			return Result{}, err
		}
		macroF1, err := metrics.MacroAverage(f1, perClass)
		if err != nil {
			return Result{}, err
		}
		microRec, err := rec.ValueOr(res.Overall, 0)
		if err != nil {
			return Result{}, err
		}
		macroRec, err := metrics.MacroAverage(rec, perClass)
		if err != nil {
			return Result{}, err
		}
		tbl.AddRowValues(res.Tool,
			microF1, macroF1.Value, microF1-macroF1.Value,
			microRec, macroRec.Value, microRec-macroRec.Value)
	}
	return Result{
		ID:     "e13",
		Title:  "Micro vs macro averaging (extension)",
		Tables: []*report.Table{tbl},
	}, nil
}

// E14Combination quantifies tool combination, the common industrial
// practice of running SAST and DAST together: union inherits every
// member's detections (recall >= each member) and false alarms
// (precision <= each member); intersection keeps only common findings
// (the reverse); majority voting sits between.
func (r *Runner) E14Combination(ctx context.Context) (Result, error) {
	corpus, err := workload.Generate(workload.Config{
		Services:         r.cfg.Services,
		TargetPrevalence: r.cfg.Prevalence,
		Seed:             r.cfg.Seed,
		Interpreter:      r.cfg.Interpreter,
		OracleExhaustive: r.cfg.OracleExhaustive,
	})
	if err != nil {
		return Result{}, err
	}
	// ts-lite and pt-deep have complementary blind spots: the lightweight
	// SAST misses wrong-sanitizer and loop-carried flows, the pentester
	// misses silent and guarded sinks. Their combination is therefore the
	// interesting one.
	sast := detectors.NewTaintSAST(detectors.TaintSASTConfig{Name: "ts-lite", SinkAware: false})
	dast := detectors.NewPentester(detectors.PentesterConfig{Name: "pt-deep", ExploreInputs: true})
	grep := detectors.NewSignatureSAST("grep-sast")
	union, err := detectors.NewCombined("sast∪dast", detectors.Union, []detectors.Tool{sast, dast})
	if err != nil {
		return Result{}, err
	}
	inter, err := detectors.NewCombined("sast∩dast", detectors.Intersection, []detectors.Tool{sast, dast})
	if err != nil {
		return Result{}, err
	}
	maj, err := detectors.NewCombined("majority-2of3", detectors.Majority, []detectors.Tool{sast, dast, grep})
	if err != nil {
		return Result{}, err
	}
	camp, err := harness.RunParallel(corpus, []detectors.Tool{sast, dast, grep, union, inter, maj}, r.cfg.Seed, r.cfg.Workers)
	if err != nil {
		return Result{}, err
	}
	rec := metrics.MustByID(metrics.IDRecall)
	prec := metrics.MustByID(metrics.IDPrecision)
	f1 := metrics.MustByID(metrics.IDF1)
	mcc := metrics.MustByID(metrics.IDMCC)
	tbl := report.NewTable("E14: tool combination (members first, then combinations)",
		"tool", "TP", "FP", "FN", "TN", "recall", "precision", "f1", "mcc")
	for i := range camp.Results {
		res := &camp.Results[i]
		row := []any{res.Tool, res.Overall.TP, res.Overall.FP, res.Overall.FN, res.Overall.TN}
		for _, m := range []metrics.Metric{rec, prec, f1, mcc} {
			v, err := m.ValueOr(res.Overall, 0)
			if err != nil {
				return Result{}, err
			}
			row = append(row, v)
		}
		tbl.AddRowValues(row...)
	}
	return Result{
		ID:     "e14",
		Title:  "Tool combination (extension)",
		Tables: []*report.Table{tbl},
	}, nil
}

// E15DecisionImpact closes the loop: for each scenario, rank the campaign
// tools (a) by the metric the methodology selects for that scenario and
// (b) by accuracy, the naive default. When the two rankings crown
// different tools, metric selection is not an academic nicety — it changes
// which tool gets bought, deployed or certified.
func (r *Runner) E15DecisionImpact(ctx context.Context) (Result, error) {
	profiles, err := r.Profiles()
	if err != nil {
		return Result{}, err
	}
	camp, err := r.CampaignCtx(ctx)
	if err != nil {
		return Result{}, err
	}
	acc := metrics.MustByID(metrics.IDAccuracy)
	accScores, err := camp.MetricScores(acc, 0)
	if err != nil {
		return Result{}, err
	}
	accBest := camp.ToolNames()[ranking.TopK(accScores, 1)[0]]
	tbl := report.NewTable("E15: does metric selection change the decision? (campaign of E3)",
		"scenario", "selected metric", "winner under selected", "winner under accuracy",
		"decision changed", "tau selected-vs-accuracy")
	for _, s := range scenario.Scenarios() {
		sel, err := core.Select(s, profiles)
		if err != nil {
			return Result{}, err
		}
		m := metrics.MustByID(sel.Best())
		scores, err := camp.MetricScores(m, -1)
		if err != nil {
			return Result{}, err
		}
		winner := camp.ToolNames()[ranking.TopK(scores, 1)[0]]
		tau, err := ranking.KendallTau(scores, accScores)
		if err != nil {
			return Result{}, err
		}
		changed := "no"
		if winner != accBest {
			changed = "yes"
		}
		tbl.AddRowValues(s.ID, sel.Best(), winner, accBest, changed, tau)
	}
	return Result{
		ID:     "e15",
		Title:  "Decision impact of metric selection (extension)",
		Tables: []*report.Table{tbl},
	}, nil
}

// E16FailureMap renders the failure-mechanism map: the fraction of sinks
// each tool classifies correctly, per workload template. Each template
// embodies one cause of wrong results (wrong sanitizer, dead code, silent
// sink, ...), so the map shows *why* each tool scores the way it does —
// the mechanism-level account behind the aggregate numbers of E3/E4.
func (r *Runner) E16FailureMap(ctx context.Context) (Result, error) {
	camp, err := r.CampaignCtx(ctx)
	if err != nil {
		return Result{}, err
	}
	// Stable template row order from the template library, restricted to
	// templates present in the corpus.
	present := map[string]bool{}
	for _, cs := range camp.Corpus.Cases {
		present[cs.Template] = true
	}
	var rows []string
	for _, tpl := range workload.Templates() {
		if present[tpl.Name] {
			rows = append(rows, tpl.Name)
		}
	}
	headers := append([]string{"template", "sinks"}, camp.ToolNames()...)
	tbl := report.NewTable("E16: fraction of sinks classified correctly, per workload template", headers...)
	for _, name := range rows {
		var sinks int
		row := []string{name}
		for i := range camp.Results {
			c := camp.Results[i].ByTemplate[name]
			if i == 0 {
				sinks = c.Total()
				row = append(row, fmt.Sprint(sinks))
			}
			correct := float64(c.TP+c.TN) / float64(c.Total())
			row = append(row, report.FormatFloat(correct))
		}
		tbl.AddRow(row...)
	}
	return Result{
		ID:     "e16",
		Title:  "Failure-mechanism map (extension)",
		Tables: []*report.Table{tbl},
	}, nil
}

// E17Redundancy detects redundant metrics: pairs whose rankings of a large
// random tool population are (near-)identical measure the same thing under
// a different name, so a benchmark need not report both. Clusters at
// |Spearman rho| >= 0.999 are monotone equivalents (recall vs FNR,
// accuracy vs error rate, informedness vs balanced accuracy); the looser
// 0.95 threshold exposes the near-duplicates.
func (r *Runner) E17Redundancy(ctx context.Context) (Result, error) {
	const population = 400
	const prevalence = 0.35
	const size = 20000
	rng := stats.NewRNG(r.cfg.Seed + 17)
	cat := metrics.Catalog()
	// Random tool population at fixed prevalence.
	goodness := make([][]float64, len(cat))
	for i := range goodness {
		goodness[i] = make([]float64, population)
	}
	for p := 0; p < population; p++ {
		tpr := 0.05 + 0.9*rng.Float64()
		fpr := 0.9 * rng.Float64()
		c := expectedConfusion(e6Quality{tpr: tpr, fpr: fpr}, size, prevalence)
		for i, m := range cat {
			v, err := m.ValueOr(c, worstFallback(m))
			if err != nil {
				return Result{}, err
			}
			goodness[i][p] = m.Goodness(v)
		}
	}
	rho := func(a, b int) float64 {
		v, err := ranking.SpearmanRho(goodness[a], goodness[b])
		if err != nil {
			return 0
		}
		if v < 0 {
			return -v
		}
		return v
	}
	cluster := func(threshold float64) [][]string {
		assigned := make([]int, len(cat))
		for i := range assigned {
			assigned[i] = -1
		}
		var clusters [][]int
		for i := range cat {
			placed := false
			for ci, members := range clusters {
				if rho(members[0], i) >= threshold {
					clusters[ci] = append(clusters[ci], i)
					placed = true
					break
				}
			}
			if !placed {
				clusters = append(clusters, []int{i})
			}
		}
		var out [][]string
		for _, members := range clusters {
			if len(members) < 2 {
				continue
			}
			names := make([]string, len(members))
			for j, m := range members {
				names[j] = cat[m].ID
			}
			out = append(out, names)
		}
		return out
	}
	tbl := report.NewTable(
		fmt.Sprintf("E17: redundant metric clusters over %d random tools (prevalence %s)",
			population, report.FormatFloat(prevalence)),
		"threshold", "cluster")
	for _, th := range []float64{0.999, 0.95} {
		for _, names := range cluster(th) {
			tbl.AddRowValues(th, strings.Join(names, ", "))
		}
	}
	return Result{
		ID:     "e17",
		Title:  "Metric redundancy clusters (extension)",
		Tables: []*report.Table{tbl},
	}, nil
}
