// Package scenario defines the vulnerability detection usage scenarios the
// paper analyses, and the criteria of a good benchmark metric that each
// scenario weighs differently.
//
// A scenario is a context in which a benchmark's verdict will be used:
// triaging findings during development, certifying a system for a
// security-critical deployment, gating an automated pipeline, or selecting
// a tool for procurement. The same metric can be excellent in one and
// misleading in another — the paper's core observation — because the
// scenarios assign different importance to the criteria below.
package scenario

import (
	"fmt"
	"math"

	"github.com/dsn2015/vdbench/internal/metricprop"
)

// Criterion is one characteristic of a good benchmark metric, scored from
// a computed metric profile on a [0, 1] scale (1 = fully satisfies the
// characteristic).
type Criterion struct {
	// ID is the stable identifier used in scenario weight tables.
	ID string
	// Name is the human-readable label.
	Name string
	// Description explains what the criterion captures.
	Description string
	// Score computes the criterion's value from a metric profile.
	Score func(p metricprop.Profile) float64
}

// Criterion IDs.
const (
	CritMissSensitivity  = "miss-sensitivity"
	CritAlarmSensitivity = "alarm-sensitivity"
	CritPrevalenceRobust = "prevalence-robustness"
	CritChanceCorrection = "chance-correction"
	CritDefinedness      = "definedness"
	CritStability        = "stability"
	CritDiscrimination   = "discrimination"
	CritValidity         = "validity"
	CritInterpretability = "interpretability"
)

// spreadScore maps a spread (0 = invariant, large or Inf = useless) onto
// (0, 1]: 1/(1 + 4·spread).
func spreadScore(spread float64) float64 {
	if math.IsInf(spread, 1) {
		return 0
	}
	return 1 / (1 + 4*spread)
}

// Criteria returns the full criterion list in stable order.
func Criteria() []Criterion {
	return []Criterion{
		{
			ID:          CritMissSensitivity,
			Name:        "Sensitivity to missed vulnerabilities",
			Description: "The metric visibly degrades when the tool misses vulnerabilities.",
			Score:       func(p metricprop.Profile) float64 { return p.MissSensitivity },
		},
		{
			ID:          CritAlarmSensitivity,
			Name:        "Sensitivity to false alarms",
			Description: "The metric visibly degrades when the tool raises false alarms.",
			Score:       func(p metricprop.Profile) float64 { return p.FalseAlarmSensitivity },
		},
		{
			ID:          CritPrevalenceRobust,
			Name:        "Robustness to workload prevalence",
			Description: "Fixed tool quality yields the same value regardless of how many vulnerabilities the workload contains.",
			Score:       func(p metricprop.Profile) float64 { return spreadScore(p.PrevalenceSpread) },
		},
		{
			ID:          CritChanceCorrection,
			Name:        "Chance correction",
			Description: "All uninformative tools collapse to a single baseline value.",
			Score:       func(p metricprop.Profile) float64 { return spreadScore(p.ChanceSpread) },
		},
		{
			ID:          CritDefinedness,
			Name:        "Definedness on degenerate results",
			Description: "The metric remains computable on extreme confusion matrices (no detections, no clean sinks, ...).",
			Score:       func(p metricprop.Profile) float64 { return p.DefinednessRate },
		},
		{
			ID:          CritStability,
			Name:        "Stability under workload sampling",
			Description: "Low variance when the benchmark workload is resampled.",
			Score: func(p metricprop.Profile) float64 {
				if math.IsInf(p.Stability, 1) {
					return 0
				}
				s := 1 - 8*p.Stability
				if s < 0 {
					return 0
				}
				return s
			},
		},
		{
			ID:          CritDiscrimination,
			Name:        "Discriminative power",
			Description: "Orders two close tools correctly from a single benchmark run.",
			Score: func(p metricprop.Profile) float64 {
				// Rescale from coin-flip (0.5) to certainty (1.0).
				s := 2 * (p.Discrimination - 0.5)
				if s < 0 {
					return 0
				}
				return s
			},
		},
		{
			ID:          CritValidity,
			Name:        "Validity (monotone in both error types)",
			Description: "Fixing a miss never worsens the metric; adding a false alarm never improves it.",
			Score: func(p metricprop.Profile) float64 {
				switch {
				case p.MonotoneDetections && p.MonotoneFalseAlarms:
					return 1
				case p.MonotoneDetections || p.MonotoneFalseAlarms:
					return 0.5
				default:
					return 0
				}
			},
		},
		{
			ID:          CritInterpretability,
			Name:        "Interpretability (bounded, normalised range)",
			Description: "A finite range makes values comparable across benchmarks and intuitively readable.",
			Score: func(p metricprop.Profile) float64 {
				if p.Bounded {
					return 1
				}
				return 0
			},
		},
	}
}

// CriterionIDs returns the criterion IDs in catalogue order.
func CriterionIDs() []string {
	crits := Criteria()
	out := make([]string, len(crits))
	for i, c := range crits {
		out[i] = c.ID
	}
	return out
}

// Scenario is one usage scenario with its criterion importance weights on
// the Saaty 1–9 scale (9 = extremely important in this scenario).
type Scenario struct {
	// ID is the stable identifier.
	ID string
	// Name is the human-readable title.
	Name string
	// Description explains the usage context.
	Description string
	// ExpectedMetrics lists the metric IDs the domain analysis predicts as
	// adequate; experiment E9 checks MCDA agreement with this prediction.
	ExpectedMetrics []string
	// Weights maps criterion ID to importance (1-9).
	Weights map[string]float64
}

// WeightVector returns the weights in Criteria() order.
func (s Scenario) WeightVector() ([]float64, error) {
	out := make([]float64, 0, len(s.Weights))
	for _, c := range Criteria() {
		w, ok := s.Weights[c.ID]
		if !ok {
			return nil, fmt.Errorf("scenario %s: missing weight for criterion %s", s.ID, c.ID)
		}
		if w < 1 || w > 9 {
			return nil, fmt.Errorf("scenario %s: weight %g for %s outside the 1-9 scale", s.ID, w, c.ID)
		}
		out = append(out, w)
	}
	if len(s.Weights) != len(Criteria()) {
		return nil, fmt.Errorf("scenario %s: %d weights for %d criteria", s.ID, len(s.Weights), len(Criteria()))
	}
	return out, nil
}

// Scenario IDs.
const (
	ScenarioDevTriage   = "dev-triage"
	ScenarioAudit       = "security-audit"
	ScenarioGating      = "auto-gating"
	ScenarioProcurement = "procurement"
)

// Scenarios returns the scenario catalogue in stable order.
func Scenarios() []Scenario {
	return []Scenario{
		{
			ID:   ScenarioDevTriage,
			Name: "Development-time triage",
			Description: "Developers run the tool during implementation and review every " +
				"finding by hand. Missed vulnerabilities ship; false alarms only cost " +
				"review minutes. The benchmark should favour tools that find as much " +
				"as possible.",
			ExpectedMetrics: []string{"recall", "fnr", "f2"},
			Weights: map[string]float64{
				CritMissSensitivity:  9,
				CritAlarmSensitivity: 2,
				CritPrevalenceRobust: 3,
				CritChanceCorrection: 2,
				CritDefinedness:      4,
				CritStability:        4,
				CritDiscrimination:   5,
				CritValidity:         6,
				CritInterpretability: 4,
			},
		},
		{
			ID:   ScenarioAudit,
			Name: "Security audit and certification",
			Description: "An independent assessor compares tools across systems whose " +
				"vulnerability density is unknown and varies widely. The benchmark " +
				"verdict must transfer across prevalence regimes and punish " +
				"uninformative tools.",
			ExpectedMetrics: []string{"informedness", "balanced-accuracy", "mcc"},
			Weights: map[string]float64{
				CritMissSensitivity:  5,
				CritAlarmSensitivity: 5,
				CritPrevalenceRobust: 9,
				CritChanceCorrection: 8,
				CritDefinedness:      4,
				CritStability:        5,
				CritDiscrimination:   6,
				CritValidity:         7,
				CritInterpretability: 4,
			},
		},
		{
			ID:   ScenarioGating,
			Name: "Automated pipeline gating",
			Description: "Findings block merges or trigger automatic fixes with no human " +
				"in the loop. Every false alarm halts the pipeline or rewrites correct " +
				"code, so the benchmark must put alarm discipline first.",
			ExpectedMetrics: []string{"specificity", "fpr", "precision", "f0.5", "fdr"},
			Weights: map[string]float64{
				CritMissSensitivity:  2,
				CritAlarmSensitivity: 9,
				CritPrevalenceRobust: 3,
				CritChanceCorrection: 2,
				CritDefinedness:      5,
				CritStability:        6,
				CritDiscrimination:   5,
				CritValidity:         6,
				CritInterpretability: 4,
			},
		},
		{
			ID:   ScenarioProcurement,
			Name: "Tool procurement",
			Description: "An organisation selects one tool for broad adoption. Both error " +
				"types matter, results must be explainable to non-specialists, and the " +
				"ranking must be reproducible on a finite evaluation workload.",
			ExpectedMetrics: []string{"balanced-accuracy", "kappa", "informedness", "f1", "mcc"},
			Weights: map[string]float64{
				CritMissSensitivity:  6,
				CritAlarmSensitivity: 6,
				CritPrevalenceRobust: 4,
				CritChanceCorrection: 3,
				CritDefinedness:      6,
				CritStability:        6,
				CritDiscrimination:   6,
				CritValidity:         7,
				CritInterpretability: 7,
			},
		},
	}
}

// ByID returns the scenario with the given ID.
func ByID(id string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.ID == id {
			return s, true
		}
	}
	return Scenario{}, false
}
