package scenario

import (
	"math"
	"testing"

	"github.com/dsn2015/vdbench/internal/metricprop"
)

func TestCriteriaWellFormed(t *testing.T) {
	crits := Criteria()
	if len(crits) != 9 {
		t.Fatalf("criteria count = %d, want 9", len(crits))
	}
	seen := map[string]bool{}
	for _, c := range crits {
		if c.ID == "" || c.Name == "" || c.Description == "" || c.Score == nil {
			t.Errorf("criterion %q incomplete", c.ID)
		}
		if seen[c.ID] {
			t.Errorf("duplicate criterion %q", c.ID)
		}
		seen[c.ID] = true
	}
	if len(CriterionIDs()) != len(crits) {
		t.Fatal("CriterionIDs length mismatch")
	}
}

func TestCriterionScoresBounded(t *testing.T) {
	// Scores must stay in [0,1] across representative profiles, including
	// degenerate ones.
	profiles := []metricprop.Profile{
		{}, // zero profile
		{
			MetricID: "perfect", Bounded: true, DefinednessRate: 1,
			MonotoneDetections: true, MonotoneFalseAlarms: true,
			PrevalenceSpread: 0, ChanceSpread: 0, Stability: 0,
			Discrimination: 1, MissSensitivity: 1, FalseAlarmSensitivity: 1,
		},
		{
			MetricID: "awful", Bounded: false, DefinednessRate: 0.2,
			PrevalenceSpread: math.Inf(1), ChanceSpread: math.Inf(1),
			Stability: math.Inf(1), Discrimination: 0.3,
		},
	}
	for _, p := range profiles {
		for _, c := range Criteria() {
			s := c.Score(p)
			if math.IsNaN(s) || s < 0 || s > 1 {
				t.Errorf("criterion %s score %g out of [0,1] on %+v", c.ID, s, p)
			}
		}
	}
}

func TestSpreadScore(t *testing.T) {
	if spreadScore(0) != 1 {
		t.Fatal("zero spread should score 1")
	}
	if spreadScore(math.Inf(1)) != 0 {
		t.Fatal("infinite spread should score 0")
	}
	if a, b := spreadScore(0.1), spreadScore(0.5); a <= b {
		t.Fatal("smaller spread should score higher")
	}
}

func TestScenariosWellFormed(t *testing.T) {
	scens := Scenarios()
	if len(scens) != 4 {
		t.Fatalf("scenario count = %d, want 4", len(scens))
	}
	seen := map[string]bool{}
	for _, s := range scens {
		if s.ID == "" || s.Name == "" || s.Description == "" {
			t.Errorf("scenario %q incomplete", s.ID)
		}
		if len(s.ExpectedMetrics) == 0 {
			t.Errorf("scenario %q has no expected metrics", s.ID)
		}
		if seen[s.ID] {
			t.Errorf("duplicate scenario %q", s.ID)
		}
		seen[s.ID] = true
		w, err := s.WeightVector()
		if err != nil {
			t.Errorf("scenario %q: %v", s.ID, err)
			continue
		}
		if len(w) != len(Criteria()) {
			t.Errorf("scenario %q weight vector length %d", s.ID, len(w))
		}
	}
}

func TestWeightVectorErrors(t *testing.T) {
	s := Scenario{ID: "x", Weights: map[string]float64{CritValidity: 5}}
	if _, err := s.WeightVector(); err == nil {
		t.Fatal("incomplete weights accepted")
	}
	full := map[string]float64{}
	for _, id := range CriterionIDs() {
		full[id] = 5
	}
	full[CritValidity] = 0.5 // below scale
	s = Scenario{ID: "x", Weights: full}
	if _, err := s.WeightVector(); err == nil {
		t.Fatal("off-scale weight accepted")
	}
	full[CritValidity] = 5
	full["bogus-criterion"] = 5
	s = Scenario{ID: "x", Weights: full}
	if _, err := s.WeightVector(); err == nil {
		t.Fatal("extra weight accepted")
	}
}

func TestScenarioWeightEmphases(t *testing.T) {
	// The defining contrasts between scenarios.
	dev, _ := ByID(ScenarioDevTriage)
	gate, _ := ByID(ScenarioGating)
	audit, _ := ByID(ScenarioAudit)
	if dev.Weights[CritMissSensitivity] <= dev.Weights[CritAlarmSensitivity] {
		t.Error("dev-triage must weigh misses above alarms")
	}
	if gate.Weights[CritAlarmSensitivity] <= gate.Weights[CritMissSensitivity] {
		t.Error("auto-gating must weigh alarms above misses")
	}
	if audit.Weights[CritPrevalenceRobust] <= dev.Weights[CritPrevalenceRobust] {
		t.Error("audit must weigh prevalence robustness above dev-triage")
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus scenario resolved")
	}
	s, ok := ByID(ScenarioAudit)
	if !ok || s.ID != ScenarioAudit {
		t.Fatal("audit scenario not found")
	}
}
