package harness

import (
	"context"
	"reflect"
	"testing"
)

// TestInterpreterOptionEquivalence pins the Options.Interpreter escape
// hatch: a campaign executed on the reference tree-walking interpreter
// must be deep-equal to the same campaign on the default bytecode VM, at
// every worker count. The engines are locked together at the language
// level by the differential suite in internal/svclang/compile; this test
// closes the loop at the campaign level, ledger and all.
func TestInterpreterOptionEquivalence(t *testing.T) {
	corpus := testCorpus(t, 50, 3)
	tools := testTools(t)
	for _, seed := range []uint64{1, 7, 42} {
		ref, err := RunCtx(context.Background(), corpus, tools, Options{Seed: seed, Workers: 1, Interpreter: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 13} {
			vm, err := RunCtx(context.Background(), corpus, tools, Options{Seed: seed, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, vm) {
				t.Fatalf("seed %d: VM campaign at %d workers differs from interpreter campaign", seed, workers)
			}
		}
	}
}

// campaignAllocBudget is the measured per-run heap allocation count of a
// 200-service standard-suite campaign on the bytecode VM (RunCtx,
// workers=1). The budget test fails when a change regresses allocations
// by more than 10% — the guard that keeps the VM's arena discipline from
// eroding. Re-measure with
// `go test -run TestAllocBudgetCampaign -v .` and update deliberately
// when the campaign legitimately grows.
const campaignAllocBudget = 36_600

// TestAllocBudgetCampaign is the campaign-level allocation budget of the
// bytecode-execution work: the whole 200-service standard-suite campaign
// must stay within 10% of the recorded budget. Skipped under -race
// (instrumentation allocates) and -short (the campaign runs several
// times).
func TestAllocBudgetCampaign(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	if testing.Short() {
		t.Skip("campaign allocation measurement is slow")
	}
	corpus := testCorpus(t, 200, 1)
	tools := testTools(t)
	run := func() {
		camp, err := RunCtx(context.Background(), corpus, tools, Options{Seed: 1, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(camp.Results) == 0 {
			t.Fatal("empty campaign")
		}
	}
	run() // warm package-level lazy state out of the measurement
	allocs := testing.AllocsPerRun(3, run)
	t.Logf("campaign allocations: %.0f per run (budget %d)", allocs, campaignAllocBudget)
	if allocs > campaignAllocBudget*1.10 {
		t.Errorf("campaign allocates %.0f per run, more than 10%% over the %d budget; rerun the measurement and update the budget only for a deliberate cost", allocs, campaignAllocBudget)
	}
}
