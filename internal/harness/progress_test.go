package harness

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"github.com/dsn2015/vdbench/internal/metrics"
)

// collectProgress runs a campaign with a recording listener and returns
// the campaign plus every event in delivery order.
func collectProgress(t *testing.T, workers int) (*Campaign, []ProgressEvent) {
	t.Helper()
	var (
		mu     sync.Mutex
		events []ProgressEvent
	)
	ctx := WithProgress(context.Background(), func(ev ProgressEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	camp, err := RunCtx(ctx, testCorpus(t, 25, 1), testTools(t), Options{Seed: 42, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return camp, events
}

func TestProgressEventsCoverEveryCell(t *testing.T) {
	for _, workers := range []int{1, 4} {
		camp, events := collectProgress(t, workers)
		total := len(camp.Results) * len(camp.Corpus.Cases)
		if len(events) != total {
			t.Fatalf("workers=%d: %d events, want one per cell (%d)", workers, len(events), total)
		}

		// Done values are exactly 1..total, each seen once (monotone
		// counter), and every event agrees on Total.
		seenDone := make([]bool, total+1)
		perCell := map[[2]interface{}]int{}
		var sum metrics.Confusion
		for _, ev := range events {
			if ev.Total != total {
				t.Fatalf("workers=%d: event Total = %d, want %d", workers, ev.Total, total)
			}
			if ev.Done < 1 || ev.Done > total || seenDone[ev.Done] {
				t.Fatalf("workers=%d: Done value %d out of range or duplicated", workers, ev.Done)
			}
			seenDone[ev.Done] = true
			perCell[[2]interface{}{ev.Tool, ev.Case}]++
			if ev.Failed {
				t.Errorf("workers=%d: fault-free campaign reported failed cell %s/%d", workers, ev.Tool, ev.Case)
			}
			sum = sum.Add(ev.Confusion)
		}
		if len(perCell) != total {
			t.Fatalf("workers=%d: events cover %d distinct cells, want %d", workers, len(perCell), total)
		}

		// Accumulated confusion deltas equal the campaign's pooled
		// matrices — the incremental estimates converge to the final ones.
		var want metrics.Confusion
		for _, res := range camp.Results {
			want = want.Add(res.Overall)
		}
		if sum != want {
			t.Errorf("workers=%d: summed deltas %+v != pooled campaign %+v", workers, sum, want)
		}
	}
}

func TestProgressListenerDoesNotChangeResults(t *testing.T) {
	corpus := testCorpus(t, 25, 1)
	plain, err := RunCtx(context.Background(), corpus, testTools(t), Options{Seed: 42, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithProgress(context.Background(), func(ProgressEvent) {})
	listened, err := RunCtx(ctx, corpus, testTools(t), Options{Seed: 42, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Results, listened.Results) {
		t.Fatal("campaign results differ with a progress listener installed")
	}
}

func TestProgressFromContextAbsent(t *testing.T) {
	if fn := ProgressFromContext(context.Background()); fn != nil {
		t.Fatal("listener reported on a bare context")
	}
	if fn := ProgressFromContext(nil); fn != nil {
		t.Fatal("listener reported on a nil context")
	}
	if ctx := WithProgress(context.Background(), nil); ProgressFromContext(ctx) != nil {
		t.Fatal("nil listener was installed")
	}
}
