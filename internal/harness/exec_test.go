package harness

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dsn2015/vdbench/internal/detectors"
	"github.com/dsn2015/vdbench/internal/detectors/faulty"
	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/workload"
)

// faultySuite wraps every base tool with the same fault-injection
// config. Wrappers carry per-campaign state (transient counters), so
// callers build a fresh suite per run.
func faultySuite(t *testing.T, base []detectors.Tool, cfg faulty.Config) []detectors.Tool {
	t.Helper()
	out := make([]detectors.Tool, len(base))
	for i, tool := range base {
		w, err := faulty.Wrap(tool, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = w
	}
	return out
}

// silentTool reports nothing; it exists to be wrapped with always-on
// faults without colliding with a standard tool's name.
type silentTool struct{ name string }

func (s silentTool) Name() string           { return s.name }
func (s silentTool) Class() detectors.Class { return detectors.ClassSAST }
func (s silentTool) Analyze(workload.Case, *stats.RNG) ([]detectors.Report, error) {
	return nil, nil
}

// TestRunCtxFaultyEquivalence extends the worker-pool admissibility
// proof to degraded campaigns: with deterministic fault injection the
// parallel engine must produce byte-identical campaigns — outcomes,
// matrices AND execution ledgers — for every seed and worker count.
func TestRunCtxFaultyEquivalence(t *testing.T) {
	corpus := testCorpus(t, 30, 3)
	base := testTools(t)
	if len(base) > 3 {
		base = base[:3]
	}
	scenarios := []struct {
		name   string
		mode   faulty.Mode
		policy DegradedPolicy
		retry  RetryPolicy
	}{
		{"panic-skip", faulty.ModePanic, DegradedSkip, RetryPolicy{}},
		{"panic-countmiss", faulty.ModePanic, DegradedCountMiss, RetryPolicy{}},
		{"byzantine-skip", faulty.ModeByzantine, DegradedSkip, RetryPolicy{}},
		{"transient-retry", faulty.ModeTransient, DegradedSkip, RetryPolicy{MaxRetries: 1}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			for _, seed := range []uint64{1, 7, 42} {
				runOnce := func(workers int) *Campaign {
					tools := faultySuite(t, base, faulty.Config{Mode: sc.mode, Rate: 0.25, Seed: seed})
					camp, err := RunCtx(context.Background(), corpus, tools,
						Options{Seed: seed, Workers: workers, Retry: sc.retry, Degraded: sc.policy})
					if err != nil {
						t.Fatal(err)
					}
					return camp
				}
				serial := runOnce(1)
				var failed, retries int
				for _, res := range serial.Results {
					failed += res.Exec.Failed
					retries += res.Exec.Retries
					if err := res.Exec.Reconcile(); err != nil {
						t.Fatalf("seed %d: %s ledger: %v", seed, res.Tool, err)
					}
				}
				switch sc.mode {
				case faulty.ModePanic:
					if failed == 0 {
						t.Fatalf("seed %d: no cell failed at rate 0.25; scenario tests nothing", seed)
					}
				case faulty.ModeTransient:
					if retries == 0 || failed != 0 {
						t.Fatalf("seed %d: retries=%d failed=%d, want recovery via retry", seed, retries, failed)
					}
				}
				for _, workers := range []int{2, 4, 13} {
					if par := runOnce(workers); !reflect.DeepEqual(serial, par) {
						t.Fatalf("seed %d workers %d: degraded campaign diverged from serial (ledgers included)",
							seed, workers)
					}
				}
			}
		})
	}
}

// TestRunCtxPanicIsolationSkip: a tool that always panics fails every
// cell, the campaign still completes, and the healthy tool's result is
// byte-identical to a run without the broken neighbour.
func TestRunCtxPanicIsolationSkip(t *testing.T) {
	corpus := testCorpus(t, 20, 2)
	base := testTools(t)
	healthy, inner := base[0], base[1]
	wrapped, err := faulty.Wrap(inner, faulty.Config{Mode: faulty.ModePanic, Rate: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	camp, err := RunCtx(context.Background(), corpus, []detectors.Tool{healthy, wrapped},
		Options{Seed: 5, Workers: 4, Degraded: DegradedSkip})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := Run(corpus, []detectors.Tool{healthy, inner}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(camp.Results[0], baseline.Results[0]) {
		t.Error("healthy tool's result changed because a neighbour panicked")
	}
	broken := camp.Results[1]
	n := len(corpus.Cases)
	if broken.Exec.Cases != n || broken.Exec.Failed != n || broken.Exec.RecoveredPanics != n ||
		broken.Exec.Succeeded != 0 || len(broken.Outcomes) != 0 {
		t.Fatalf("broken-tool ledger under skip: %+v", broken.Exec)
	}
	if err := broken.Exec.Reconcile(); err != nil {
		t.Fatal(err)
	}
	for i, fault := range broken.Exec.Faults {
		if fault.Kind != FailPanic || !strings.Contains(fault.Msg, "injected panic") {
			t.Fatalf("fault %d = %+v, want recovered panic", i, fault)
		}
		if fault.Case != broken.Exec.FailedCases[i] {
			t.Fatalf("fault %d case %d does not match FailedCases entry %d",
				i, fault.Case, broken.Exec.FailedCases[i])
		}
	}
}

// TestRunCtxCountMissScoresMisses: under count-as-miss every sink of a
// failed case is scored unflagged, so a totally broken tool yields a
// full-length outcome vector of degraded false negatives / true
// negatives rather than an empty matrix.
func TestRunCtxCountMissScoresMisses(t *testing.T) {
	corpus := testCorpus(t, 20, 2)
	wrapped, err := faulty.Wrap(testTools(t)[0], faulty.Config{Mode: faulty.ModePanic, Rate: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	camp, err := RunCtx(context.Background(), corpus, []detectors.Tool{wrapped},
		Options{Seed: 5, Workers: 2, Degraded: DegradedCountMiss})
	if err != nil {
		t.Fatal(err)
	}
	res := camp.Results[0]
	if len(res.Outcomes) != corpus.TotalSinks() {
		t.Fatalf("count-miss outcomes = %d, want every sink (%d)", len(res.Outcomes), corpus.TotalSinks())
	}
	var vulnerable int
	for _, o := range res.Outcomes {
		if !o.Degraded || o.Flagged || o.Confidence != 0 {
			t.Fatalf("synthesized outcome not a degraded miss: %+v", o)
		}
		if o.Vulnerable {
			vulnerable++
		}
	}
	if res.Overall.TP != 0 || res.Overall.FP != 0 ||
		res.Overall.FN != vulnerable || res.Overall.TN != corpus.TotalSinks()-vulnerable {
		t.Fatalf("count-miss confusion matrix = %+v", res.Overall)
	}
}

// TestRunCtxDeadlineTimesOutHangs: a context-aware hanging tool under a
// per-tool deadline fails every cell with FailTimeout and a
// configuration-only error text; the campaign completes.
func TestRunCtxDeadlineTimesOutHangs(t *testing.T) {
	corpus := testCorpus(t, 6, 2)
	hang, err := faulty.Wrap(silentTool{name: "always-hangs"}, faulty.Config{Mode: faulty.ModeHang, Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	camp, err := RunCtx(context.Background(), corpus, []detectors.Tool{hang},
		Options{Seed: 1, Workers: 3, PerToolTimeout: 100 * time.Millisecond, Degraded: DegradedSkip})
	if err != nil {
		t.Fatal(err)
	}
	res := camp.Results[0]
	if res.Exec.Timeouts != len(corpus.Cases) || res.Exec.Failed != len(corpus.Cases) {
		t.Fatalf("hang ledger: %+v", res.Exec)
	}
	for _, fault := range res.Exec.Faults {
		if fault.Kind != FailTimeout || !strings.Contains(fault.Msg, "deadline 100ms exceeded") {
			t.Fatalf("fault = %+v, want deterministic timeout record", fault)
		}
	}
}

// TestRunCtxRetryRecoversTransient: a flaky tool that fails once per
// case recovers under MaxRetries=1 with outcomes byte-identical to the
// fault-free baseline (retries replay the same RNG draws), and fails
// permanently without a retry budget.
func TestRunCtxRetryRecoversTransient(t *testing.T) {
	corpus := testCorpus(t, 15, 2)
	inner := testTools(t)[0]
	baseline, err := Run(corpus, []detectors.Tool{inner}, 5)
	if err != nil {
		t.Fatal(err)
	}
	wrap := func() detectors.Tool {
		w, err := faulty.Wrap(inner, faulty.Config{Mode: faulty.ModeTransient, Rate: 1, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	camp, err := RunCtx(context.Background(), corpus, []detectors.Tool{wrap()},
		Options{Seed: 5, Workers: 4, Retry: RetryPolicy{MaxRetries: 1}, Degraded: DegradedSkip})
	if err != nil {
		t.Fatal(err)
	}
	res := camp.Results[0]
	n := len(corpus.Cases)
	if res.Exec.Succeeded != n || res.Exec.Retries != n || res.Exec.Attempts != 2*n {
		t.Fatalf("retry ledger: %+v", res.Exec)
	}
	if !reflect.DeepEqual(res.Outcomes, baseline.Results[0].Outcomes) || res.Overall != baseline.Results[0].Overall {
		t.Error("recovered campaign is not byte-identical to the fault-free baseline")
	}
	// Without a retry budget the same tool fails every cell with a
	// retryable-but-unretried error.
	starved, err := RunCtx(context.Background(), corpus, []detectors.Tool{wrap()},
		Options{Seed: 5, Workers: 4, Degraded: DegradedSkip})
	if err != nil {
		t.Fatal(err)
	}
	if got := starved.Results[0].Exec; got.Failed != n || got.Errors != n || got.Retries != 0 {
		t.Fatalf("starved ledger: %+v", got)
	}
}

// TestRunCtxAbortPolicy: the zero-value policy keeps the historical
// fail-fast contract for both the serial and parallel paths.
func TestRunCtxAbortPolicy(t *testing.T) {
	corpus := testCorpus(t, 10, 2)
	for _, workers := range []int{1, 4} {
		wrapped, err := faulty.Wrap(testTools(t)[0], faulty.Config{Mode: faulty.ModePanic, Rate: 1, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		camp, err := RunCtx(context.Background(), corpus, []detectors.Tool{wrapped},
			Options{Seed: 5, Workers: workers})
		if err == nil || camp != nil {
			t.Fatalf("workers=%d: abort policy returned camp=%v err=%v", workers, camp, err)
		}
		if !strings.Contains(err.Error(), "injected panic") {
			t.Fatalf("workers=%d: abort error lost the cause: %v", workers, err)
		}
	}
}

// cancelingTool cancels the campaign context after a fixed number of
// successful cases — a deterministic stand-in for an external DELETE.
type cancelingTool struct {
	detectors.Tool
	cancel context.CancelFunc
	after  int

	mu    sync.Mutex
	calls int
}

func (c *cancelingTool) Analyze(cs workload.Case, rng *stats.RNG) ([]detectors.Report, error) {
	c.mu.Lock()
	c.calls++
	if c.calls == c.after {
		c.cancel()
	}
	c.mu.Unlock()
	return c.Tool.Analyze(cs, rng)
}

// TestRunCtxCancellation: a canceled context aborts the campaign — both
// up front and mid-run — with an error that unwraps to context.Canceled.
func TestRunCtxCancellation(t *testing.T) {
	corpus := testCorpus(t, 10, 2)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		camp, err := RunCtx(ctx, corpus, testTools(t), Options{Seed: 5, Workers: workers})
		if camp != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: pre-canceled run: camp=%v err=%v", workers, camp, err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tool := &cancelingTool{Tool: testTools(t)[0], cancel: cancel, after: 3}
	camp, err := RunCtx(ctx, corpus, []detectors.Tool{tool}, Options{Seed: 5, Workers: 1})
	if camp != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: camp=%v err=%v", camp, err)
	}
}

// TestLedgerReconcileProperty sweeps modes, rates and retry budgets and
// demands that every resulting ledger reconciles and agrees with the
// outcome vectors — the accounting invariants the ISSUE pins.
func TestLedgerReconcileProperty(t *testing.T) {
	corpus := testCorpus(t, 25, 4)
	base := testTools(t)
	if len(base) > 2 {
		base = base[:2]
	}
	for _, mode := range []faulty.Mode{faulty.ModePanic, faulty.ModeTransient} {
		for _, rate := range []float64{0, 0.1, 0.3, 1} {
			for _, retries := range []int{0, 1} {
				for _, policy := range []DegradedPolicy{DegradedSkip, DegradedCountMiss} {
					name := fmt.Sprintf("%s/r%g/retry%d/%s", mode, rate, retries, policy)
					tools := faultySuite(t, base, faulty.Config{Mode: mode, Rate: rate, Seed: 8})
					camp, err := RunCtx(context.Background(), corpus, tools,
						Options{Seed: 6, Workers: 4, Retry: RetryPolicy{MaxRetries: retries}, Degraded: policy})
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					for _, res := range camp.Results {
						l := res.Exec
						if err := l.Reconcile(); err != nil {
							t.Fatalf("%s: %s: %v", name, res.Tool, err)
						}
						if l.Cases != len(corpus.Cases) {
							t.Fatalf("%s: %s scheduled on %d cases, want %d", name, res.Tool, l.Cases, len(corpus.Cases))
						}
						for i, fault := range l.Faults {
							if fault.Case != l.FailedCases[i] || fault.Tool != res.Tool {
								t.Fatalf("%s: fault %d inconsistent: %+v", name, i, fault)
							}
						}
						var degraded int
						for _, o := range res.Outcomes {
							if o.Degraded {
								degraded++
							}
						}
						if policy == DegradedCountMiss {
							if len(res.Outcomes) != corpus.TotalSinks() {
								t.Fatalf("%s: count-miss dropped sinks (%d of %d)", name, len(res.Outcomes), corpus.TotalSinks())
							}
							if l.Failed == 0 && degraded != 0 {
								t.Fatalf("%s: degraded outcomes without failures", name)
							}
						} else if degraded != 0 {
							t.Fatalf("%s: skip policy produced %d degraded outcomes", name, degraded)
						}
					}
				}
			}
		}
	}
}

// TestRunCtxAcceptance is the PR's acceptance scenario: the standard
// suite plus an always-panicking tool and an always-hanging tool under a
// 100ms deadline. The campaign completes with partial results, every
// ledger reconciles, the process-wide fault totals advance, and no
// goroutines leak.
func TestRunCtxAcceptance(t *testing.T) {
	corpus := testCorpus(t, 25, 5)
	standard := testTools(t)
	panicky, err := faulty.Wrap(silentTool{name: "always-panics"}, faulty.Config{Mode: faulty.ModePanic, Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	hang, err := faulty.Wrap(silentTool{name: "always-hangs"}, faulty.Config{Mode: faulty.ModeHang, Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	tools := append(append([]detectors.Tool{}, standard...), panicky, hang)

	before := ExecTotalsSnapshot()
	goroutinesBefore := runtime.NumGoroutine()
	camp, err := RunCtx(context.Background(), corpus, tools,
		Options{Seed: 7, Workers: 4, PerToolTimeout: 100 * time.Millisecond, Degraded: DegradedSkip})
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Results) != len(standard)+2 {
		t.Fatalf("got %d results, want %d", len(camp.Results), len(standard)+2)
	}
	n := len(corpus.Cases)
	for i, res := range camp.Results {
		if err := res.Exec.Reconcile(); err != nil {
			t.Fatalf("%s ledger: %v", res.Tool, err)
		}
		switch res.Tool {
		case "always-panics":
			if res.Exec.RecoveredPanics != n || res.Exec.Succeeded != 0 {
				t.Fatalf("panic tool ledger: %+v", res.Exec)
			}
		case "always-hangs":
			if res.Exec.Timeouts != n || res.Exec.Succeeded != 0 {
				t.Fatalf("hang tool ledger: %+v", res.Exec)
			}
		default:
			if res.Exec.Succeeded != n || res.Exec.Failed != 0 {
				t.Fatalf("healthy tool %s degraded: %+v", res.Tool, res.Exec)
			}
			if len(res.Outcomes) != corpus.TotalSinks() {
				t.Fatalf("healthy tool %s lost outcomes (%d of %d)", res.Tool, len(res.Outcomes), corpus.TotalSinks())
			}
		}
		_ = i
	}
	after := ExecTotalsSnapshot()
	if after.RecoveredPanics-before.RecoveredPanics != uint64(n) {
		t.Errorf("process panic total advanced by %d, want %d", after.RecoveredPanics-before.RecoveredPanics, n)
	}
	if after.Timeouts-before.Timeouts != uint64(n) {
		t.Errorf("process timeout total advanced by %d, want %d", after.Timeouts-before.Timeouts, n)
	}
	// Zero goroutine leaks: the hang wrapper is context-aware, so every
	// deadline expiry returns its goroutine. Allow the runtime a moment
	// to park helpers.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", goroutinesBefore, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunCtxNilContextAndValidation covers the defensive paths of the
// context-first entry point.
func TestRunCtxNilContextAndValidation(t *testing.T) {
	corpus := testCorpus(t, 5, 1)
	tools := testTools(t)
	//lint:ignore SA1012 deliberate nil-context robustness check
	if _, err := RunCtx(nil, corpus, tools, Options{Seed: 1, Workers: 1}); err != nil { //nolint:staticcheck
		t.Fatalf("nil context rejected: %v", err)
	}
	bad := []Options{
		{PerToolTimeout: -time.Second},
		{Retry: RetryPolicy{MaxRetries: -1}},
		{Retry: RetryPolicy{Backoff: -time.Second}},
		{Degraded: DegradedPolicy(42)},
	}
	for _, opts := range bad {
		if _, err := RunCtx(context.Background(), corpus, tools, opts); err == nil {
			t.Errorf("options %+v accepted", opts)
		}
	}
}
