package harness

// This file is the distributed-execution seam of the harness: a campaign
// can be split by case range into shards, each shard executed by a
// different process (internal/dist workers), and the per-cell records
// merged back into a Campaign byte-identical to a local run.
//
// The split is sound because of the same two invariants the parallel
// harness rests on (see parallel.go): RNG streams are pre-split over the
// FULL corpus in serial order — a shard execution derives exactly the
// generator states a local run would hand those cases — and the merge
// folds cells in (tool, case) order, the same accumulation sequence as
// the serial loop. Which process executed a cell is therefore invisible
// in the output.

import (
	"context"
	"fmt"
	"runtime"

	"github.com/dsn2015/vdbench/internal/detectors"
	"github.com/dsn2015/vdbench/internal/workload"
)

// RunShardCtx executes the cells of every tool over the corpus cases in
// [lo, hi) and returns the records indexed [tool][case-lo]. The corpus
// must be the FULL campaign corpus — the per-(tool, case) RNG streams
// are derived over all of it, so the shard's cells draw exactly what
// they would draw in a local full-corpus run.
//
// Unlike RunCtx, a cell fault is never fatal here: the worker always
// records it and ships it home, and the coordinator applies the
// degraded policy (including abort) over the assembled full grid in
// MergeShards — that is what keeps the abort error deterministic no
// matter how cases were sharded. opts.Degraded is therefore ignored.
// Cancelling ctx aborts the shard at the next cell boundary.
func RunShardCtx(ctx context.Context, corpus *workload.Corpus, tools []detectors.Tool, opts Options, lo, hi int) ([][]CellResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := validate(corpus, tools); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if lo < 0 || hi > len(corpus.Cases) || lo >= hi {
		return nil, fmt.Errorf("harness: shard range [%d,%d) outside corpus of %d cases", lo, hi, len(corpus.Cases))
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	eng := newEngine(corpus, tools, opts)
	return eng.runCells(ctx, lo, hi, workers, false)
}

// MergeShards assembles the full per-(tool, case) cell grid — produced
// by any number of RunShardCtx calls in any number of processes — into
// a Campaign under the degraded policy. cells is indexed [tool][case]
// over the whole corpus. The result is byte-identical to RunCtx over
// the same corpus, tools and seed: the merge is the same fold, in the
// same order, over the same records.
//
// Under DegradedAbort the merge fails with the fault of the earliest
// failed cell in (tool, case) order — the fault serial execution would
// have aborted on — reconstructing the underlying error text when the
// record crossed a process boundary.
func MergeShards(corpus *workload.Corpus, tools []detectors.Tool, cells [][]CellResult, policy DegradedPolicy) (*Campaign, error) {
	if err := validate(corpus, tools); err != nil {
		return nil, err
	}
	switch policy {
	case DegradedAbort, DegradedSkip, DegradedCountMiss:
	default:
		return nil, fmt.Errorf("harness: unknown degraded policy %d", int(policy))
	}
	if len(cells) != len(tools) {
		return nil, fmt.Errorf("harness: merge got cells for %d tools, want %d", len(cells), len(tools))
	}
	for t := range cells {
		if len(cells[t]) != len(corpus.Cases) {
			return nil, fmt.Errorf("harness: merge got %d cells for tool %s, want %d", len(cells[t]), tools[t].Name(), len(corpus.Cases))
		}
		for c := range cells[t] {
			ce := &cells[t][c]
			if ce.Fault == nil && len(ce.Outcomes) != len(corpus.Cases[c].Truths) {
				return nil, fmt.Errorf("harness: merge cell (%s, case %d) has %d outcomes, want %d",
					tools[t].Name(), c, len(ce.Outcomes), len(corpus.Cases[c].Truths))
			}
		}
	}
	if policy == DegradedAbort {
		for t := range cells {
			for c := range cells[t] {
				if f := cells[t][c].Fault; f != nil {
					return nil, f.Underlying()
				}
			}
		}
	}
	return mergeCampaign(corpus, tools, cells, policy), nil
}
