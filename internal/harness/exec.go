package harness

// This file is the fault-tolerant execution engine. RunCtx is the one
// entry point every campaign goes through (Run and RunParallel are thin
// wrappers): it runs each (tool, case) attempt under panic isolation and
// an optional per-tool deadline, retries errors the tool marked
// retryable with deterministic backoff, and folds the per-case outcomes
// into a Campaign whose ToolResults carry a full execution ledger.
//
// Determinism contract: with a fault-free tool set, RunCtx produces a
// Campaign byte-identical to the pre-engine serial harness for any
// worker count. Each attempt of a case sees a value copy of that case's
// pre-split RNG stream, so a case that succeeds on attempt three draws
// exactly what it would have drawn on attempt one — results are
// invariant under the retry schedule. PerToolTimeout is the only
// wall-clock-dependent knob; everything else is a pure function of the
// inputs and the seed.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dsn2015/vdbench/internal/detectors"
	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/workload"
)

// DegradedPolicy decides what the scoring layer does with a degraded
// cell — a (tool, case) pair whose every attempt failed.
type DegradedPolicy int

const (
	// DegradedAbort fails the whole campaign on the first degraded cell,
	// returning the underlying error. This is the zero value and exactly
	// the historical fail-fast behaviour of Run/RunParallel.
	DegradedAbort DegradedPolicy = iota
	// DegradedSkip omits the failed case from the tool's confusion
	// matrices; the ledger records which cases are missing. Metrics are
	// computed over the sinks the tool actually analysed.
	DegradedSkip
	// DegradedCountMiss scores every sink of a failed case as unflagged:
	// vulnerable sinks become false negatives, clean sinks true
	// negatives. The synthesized outcomes carry Degraded=true.
	DegradedCountMiss
)

// ParseDegradedPolicy maps the textual policy names ("abort", "skip",
// "count-miss") onto policy values; both daemons' CLI flags accept
// exactly this set.
func ParseDegradedPolicy(s string) (DegradedPolicy, error) {
	switch s {
	case "abort", "":
		return DegradedAbort, nil
	case "skip":
		return DegradedSkip, nil
	case "count-miss":
		return DegradedCountMiss, nil
	default:
		return 0, fmt.Errorf("harness: unknown degraded policy %q (want abort, skip or count-miss)", s)
	}
}

// String implements fmt.Stringer.
func (p DegradedPolicy) String() string {
	switch p {
	case DegradedAbort:
		return "abort"
	case DegradedSkip:
		return "skip"
	case DegradedCountMiss:
		return "count-miss"
	default:
		return "unknown"
	}
}

// RetryPolicy bounds re-execution of attempts that failed with an error
// the tool marked retryable (detectors.MarkRetryable). Panics and
// deadline expiries are never retried: a panic is a tool bug and a hung
// tool would just burn another full deadline.
type RetryPolicy struct {
	// MaxRetries is the number of extra attempts after the first
	// (0 = never retry).
	MaxRetries int
	// Backoff is the wait before the first retry; retry i waits
	// Backoff << (i-1). Zero retries immediately. The wait is
	// interruptible by campaign cancellation.
	Backoff time.Duration
}

// Options configures the execution engine.
type Options struct {
	// Seed drives the simulated tools, exactly as in Run/RunParallel.
	Seed uint64
	// Workers sets the pool size; <= 0 selects runtime.GOMAXPROCS(0)
	// and 1 runs inline without goroutines. Results are identical for
	// every worker count.
	Workers int
	// PerToolTimeout bounds each attempt of each (tool, case) pair;
	// 0 means no deadline. Context-aware tools (detectors.ContextAnalyzer)
	// are expected to return promptly once the deadline fires; plain
	// tools run on a watchdog goroutine that is abandoned on expiry.
	PerToolTimeout time.Duration
	// Retry bounds re-execution of retryable failures.
	Retry RetryPolicy
	// Degraded is the scoring policy for cells whose attempts all
	// failed. The zero value aborts, matching the historical behaviour.
	Degraded DegradedPolicy
	// Interpreter switches service execution from the default bytecode VM
	// (internal/svclang/compile) back to the reference tree-walking
	// interpreter. The two engines are locked together by a differential
	// test suite and produce identical campaigns; the flag exists as an
	// escape hatch and as the reference side of end-to-end equality tests.
	Interpreter bool
}

// Validate rejects unusable option combinations.
func (o Options) Validate() error {
	if o.PerToolTimeout < 0 {
		return fmt.Errorf("harness: negative PerToolTimeout %v", o.PerToolTimeout)
	}
	if o.Retry.MaxRetries < 0 {
		return fmt.Errorf("harness: negative MaxRetries %d", o.Retry.MaxRetries)
	}
	if o.Retry.Backoff < 0 {
		return fmt.Errorf("harness: negative retry backoff %v", o.Retry.Backoff)
	}
	switch o.Degraded {
	case DegradedAbort, DegradedSkip, DegradedCountMiss:
	default:
		return fmt.Errorf("harness: unknown degraded policy %d", int(o.Degraded))
	}
	return nil
}

// FailureKind classifies how a (tool, case) cell finally failed.
type FailureKind int

const (
	// FailPanic is a panic recovered from the tool.
	FailPanic FailureKind = iota + 1
	// FailTimeout is an attempt that outlived PerToolTimeout.
	FailTimeout
	// FailError is an ordinary analysis error (after exhausting any
	// retry budget, if the error was retryable).
	FailError
)

// String implements fmt.Stringer.
func (k FailureKind) String() string {
	switch k {
	case FailPanic:
		return "panic"
	case FailTimeout:
		return "timeout"
	case FailError:
		return "error"
	default:
		return "unknown"
	}
}

// ExecError records the final failure of one (tool, case) cell. The
// exported fields are the complete wire representation: a record decoded
// from JSON (the distributed shard protocol, internal/dist) reproduces
// the same Error() text and the same merged ledger as the original.
type ExecError struct {
	// Tool and Service name the cell; Case is the corpus index.
	Tool    string `json:"tool"`
	Service string `json:"service"`
	Case    int    `json:"case"`
	// Attempt is the 1-based attempt the cell finally failed on.
	Attempt int `json:"attempt"`
	// Kind classifies the failure; Msg is the underlying error text.
	Kind FailureKind `json:"kind"`
	Msg  string      `json:"msg"`

	// err keeps the original error for the abort policy and errors.Is.
	// It does not cross the wire; Underlying reconstructs an equivalent.
	err error
}

// Error implements the error interface.
func (e *ExecError) Error() string {
	return fmt.Sprintf("%s on %s (case %d, attempt %d): %s: %s",
		e.Tool, e.Service, e.Case, e.Attempt, e.Kind, e.Msg)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *ExecError) Unwrap() error { return e.err }

// Underlying returns the original error the cell failed with. For a
// record decoded from the wire (where the original error value is gone)
// it returns an error with the recorded message, so the abort policy
// reports identical text whether the cell failed locally or on a remote
// worker.
func (e *ExecError) Underlying() error {
	if e.err != nil {
		return e.err
	}
	return errors.New(e.Msg)
}

// ExecLedger is the per-tool execution accounting attached to every
// ToolResult. Invariants (checked by Reconcile and the property tests):
//
//	Cases     == Succeeded + Failed
//	Attempts  == Succeeded + Failed + Retries
//	Failed    == RecoveredPanics + Timeouts + Errors
//	Failed    == len(FailedCases) == len(Faults)
type ExecLedger struct {
	// Cases is the number of corpus cases the tool was scheduled on;
	// Succeeded of them produced outcomes, Failed exhausted every
	// attempt.
	Cases     int
	Succeeded int
	Failed    int
	// Attempts counts every tool invocation including retries; Retries
	// counts re-invocations after a retryable error.
	Attempts int
	Retries  int
	// RecoveredPanics, Timeouts and Errors split Failed by FailureKind.
	RecoveredPanics int
	Timeouts        int
	Errors          int
	// FailedCases lists the corpus indices of failed cases in ascending
	// order; Faults carries the matching failure records.
	FailedCases []int
	Faults      []ExecError
}

// Reconcile checks the ledger's internal invariants, returning a
// description of the first violation or nil.
func (l ExecLedger) Reconcile() error {
	if l.Cases != l.Succeeded+l.Failed {
		return fmt.Errorf("harness: ledger cases %d != succeeded %d + failed %d", l.Cases, l.Succeeded, l.Failed)
	}
	if l.Attempts != l.Succeeded+l.Failed+l.Retries {
		return fmt.Errorf("harness: ledger attempts %d != succeeded %d + failed %d + retries %d",
			l.Attempts, l.Succeeded, l.Failed, l.Retries)
	}
	if l.Failed != l.RecoveredPanics+l.Timeouts+l.Errors {
		return fmt.Errorf("harness: ledger failed %d != panics %d + timeouts %d + errors %d",
			l.Failed, l.RecoveredPanics, l.Timeouts, l.Errors)
	}
	if l.Failed != len(l.FailedCases) || l.Failed != len(l.Faults) {
		return fmt.Errorf("harness: ledger failed %d != %d failed cases / %d faults",
			l.Failed, len(l.FailedCases), len(l.Faults))
	}
	for i := 1; i < len(l.FailedCases); i++ {
		if l.FailedCases[i-1] >= l.FailedCases[i] {
			return fmt.Errorf("harness: ledger failed cases not ascending at %d", i)
		}
	}
	return nil
}

// ExecTotals is a process-wide snapshot of engine fault counters, the
// source for the serving layer's /metrics export.
type ExecTotals struct {
	RecoveredPanics uint64
	Timeouts        uint64
	Errors          uint64
	Retries         uint64
}

var (
	execPanics   atomic.Uint64
	execTimeouts atomic.Uint64
	execErrors   atomic.Uint64
	execRetries  atomic.Uint64
)

// ExecTotalsSnapshot returns the cumulative fault counters across every
// campaign this process has run. Totals are monotone; consumers fold
// deltas (see internal/service).
func ExecTotalsSnapshot() ExecTotals {
	return ExecTotals{
		RecoveredPanics: execPanics.Load(),
		Timeouts:        execTimeouts.Load(),
		Errors:          execErrors.Load(),
		Retries:         execRetries.Load(),
	}
}

// CellResult is the execution engine's record of one (tool, case) cell:
// the outcomes of a successful cell or the fault of a failed one, plus
// the attempt accounting the ledger is built from. It is the unit the
// distributed shard protocol ships between workers and the coordinator
// (internal/dist); the JSON encoding carries every field the merge
// reads, so a campaign merged from decoded records is byte-identical to
// one merged from local records.
type CellResult struct {
	// Outcomes holds the scored per-sink outcomes of a successful cell,
	// in truth order; nil when the cell failed.
	Outcomes []SinkOutcome `json:"outcomes,omitempty"`
	// Fault records the final failure of a failed cell; nil on success.
	Fault *ExecError `json:"fault,omitempty"`
	// Attempts counts every invocation of the cell including retries;
	// Retries counts re-invocations after a retryable error.
	Attempts int `json:"attempts"`
	Retries  int `json:"retries"`
}

// engine carries the immutable campaign state shared by every worker.
type engine struct {
	opts   Options
	corpus *workload.Corpus
	tools  []detectors.Tool
	rngs   [][]*stats.RNG
	valid  []map[int]bool
}

// RunCtx executes the campaign under ctx with fault-tolerant semantics.
// Every tool invocation runs under panic isolation and, when
// opts.PerToolTimeout is set, a per-attempt deadline; errors the tool
// marked retryable are retried up to opts.Retry.MaxRetries times with
// deterministic backoff. What happens to cells that still fail is
// decided by opts.Degraded: abort the campaign (zero value, historical
// behaviour), skip them, or count them as misses. Under the skip and
// count-miss policies the campaign always completes with partial
// results and a populated ExecLedger per tool.
//
// Cancelling ctx aborts the campaign at the next case boundary; the
// returned error wraps ctx.Err().
func RunCtx(ctx context.Context, corpus *workload.Corpus, tools []detectors.Tool, opts Options) (*Campaign, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := validate(corpus, tools); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	eng := newEngine(corpus, tools, opts)
	cells, err := eng.runCells(ctx, 0, len(corpus.Cases), workers, opts.Degraded == DegradedAbort)
	if err != nil {
		return nil, err
	}
	return mergeCampaign(corpus, eng.tools, cells, opts.Degraded), nil
}

// newEngine assembles the immutable campaign state shared by every
// worker: campaign-scoped compile cache and execution engine bindings,
// the pre-split per-(tool, case) RNG streams, and the per-case valid
// sink sets. The RNG streams always cover the FULL corpus, so a shard
// execution (runCells over a sub-range) sees exactly the generator
// state a local full run would.
func newEngine(corpus *workload.Corpus, tools []detectors.Tool, opts Options) *engine {
	tools = bindCompileCache(tools)
	tools = bindExecEngine(tools, opts.Interpreter)
	return &engine{
		opts:   opts,
		corpus: corpus,
		tools:  tools,
		rngs:   preSplitRNGs(len(tools), len(corpus.Cases), opts.Seed),
		valid:  validSinkSets(corpus),
	}
}

// runCells executes every (tool, case) cell whose case index lies in
// [lo, hi) and returns the records indexed [tool][case-lo]. When
// abortOnFault is set (DegradedAbort), the first cell fault is
// campaign-fatal: serial execution returns it immediately, parallel
// execution drains the queue and returns the earliest error in (tool,
// case) order — the one serial execution would have hit first.
func (e *engine) runCells(ctx context.Context, lo, hi, workers int, abortOnFault bool) ([][]CellResult, error) {
	nTools, nCases := len(e.tools), hi-lo
	cells := make([][]CellResult, nTools)
	for t := range cells {
		cells[t] = make([]CellResult, nCases)
	}

	// Progress reporting is pure observation on the side of execution:
	// events never alter scheduling or results, so a campaign with a
	// listener is byte-identical to one without.
	var done atomic.Int64
	listener := ProgressFromContext(ctx)
	report := func(t, c int, ce CellResult) {
		if listener == nil {
			return
		}
		listener(ProgressEvent{
			Done:      int(done.Add(1)),
			Total:     nTools * nCases,
			Tool:      e.tools[t].Name(),
			Case:      c,
			Confusion: cellConfusion(ce.Outcomes),
			Failed:    ce.Fault != nil,
		})
	}

	if workers == 1 {
		for t := 0; t < nTools; t++ {
			for c := lo; c < hi; c++ {
				if err := ctx.Err(); err != nil {
					return nil, abortErr(err)
				}
				ce, err := e.executeCase(ctx, t, c)
				if err != nil {
					return nil, err
				}
				if ce.Fault != nil && abortOnFault {
					return nil, ce.Fault.err
				}
				cells[t][c-lo] = ce
				report(t, c, ce)
			}
		}
		return cells, nil
	}

	// Parallel: the task pool mirrors the historical RunParallel. Fatal
	// conditions (cancellation, or any fault under DegradedAbort) flip
	// the failed flag so the remaining queue drains; the earliest error
	// in (tool, case) order is returned, matching serial execution
	// whenever the same task set got to run.
	errs := make([][]error, nTools)
	for t := range errs {
		errs[t] = make([]error, nCases)
	}
	type task struct{ tool, cs int }
	tasks := make(chan task, workers)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range tasks {
				if failed.Load() {
					continue // fatal error elsewhere; drain the queue
				}
				if err := ctx.Err(); err != nil {
					errs[tk.tool][tk.cs-lo] = abortErr(err)
					failed.Store(true)
					continue
				}
				ce, err := e.executeCase(ctx, tk.tool, tk.cs)
				if err != nil {
					errs[tk.tool][tk.cs-lo] = err
					failed.Store(true)
					continue
				}
				if ce.Fault != nil && abortOnFault {
					errs[tk.tool][tk.cs-lo] = ce.Fault.err
					failed.Store(true)
					continue
				}
				cells[tk.tool][tk.cs-lo] = ce
				report(tk.tool, tk.cs, ce)
			}
		}()
	}
	for t := 0; t < nTools; t++ {
		for c := lo; c < hi; c++ {
			tasks <- task{tool: t, cs: c}
		}
	}
	close(tasks)
	wg.Wait()

	if failed.Load() {
		for t := range errs {
			for c := range errs[t] {
				if errs[t][c] != nil {
					return nil, errs[t][c]
				}
			}
		}
	}
	return cells, nil
}

// executeCase runs the attempt loop for one (tool, case) cell. The
// returned error is campaign-fatal (cancellation); per-cell failures are
// reported through CellResult.Fault so the policy layer can decide.
func (e *engine) executeCase(ctx context.Context, t, c int) (CellResult, error) {
	tool, cs := e.tools[t], e.corpus.Cases[c]
	var ce CellResult
	maxAttempts := 1 + e.opts.Retry.MaxRetries
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return ce, abortErr(err)
		}
		ce.Attempts++
		outs, kind, err := e.runAttempt(ctx, t, c)
		if err == nil {
			ce.Outcomes = outs
			return ce, nil
		}
		if ctx.Err() != nil {
			// The attempt died because the campaign did.
			return ce, abortErr(ctx.Err())
		}
		if kind == FailError && detectors.IsRetryable(err) && attempt < maxAttempts {
			ce.Retries++
			execRetries.Add(1)
			if e.opts.Retry.Backoff > 0 {
				if serr := sleepCtx(ctx, backoffFor(e.opts.Retry.Backoff, attempt)); serr != nil {
					return ce, abortErr(serr)
				}
			}
			continue
		}
		ce.Fault = &ExecError{
			Tool:    tool.Name(),
			Service: cs.Service.Name,
			Case:    c,
			Attempt: attempt,
			Kind:    kind,
			Msg:     err.Error(),
			err:     err,
		}
		switch kind {
		case FailPanic:
			execPanics.Add(1)
		case FailTimeout:
			execTimeouts.Add(1)
		default:
			execErrors.Add(1)
		}
		return ce, nil
	}
}

// runAttempt performs one isolated, deadline-bounded tool invocation.
// kind is zero on success and classifies the failure otherwise. The
// attempt consumes a value copy of the cell's RNG stream, so every
// attempt of a cell replays identical draws.
func (e *engine) runAttempt(ctx context.Context, t, c int) (outs []SinkOutcome, kind FailureKind, err error) {
	tool, cs := e.tools[t], e.corpus.Cases[c]
	attemptRNG := *e.rngs[t][c]
	timeout := e.opts.PerToolTimeout

	actx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	call := func() (outs []SinkOutcome, kind FailureKind, err error) {
		defer func() {
			if v := recover(); v != nil {
				outs, kind = nil, FailPanic
				err = fmt.Errorf("harness: %s on %s: recovered panic: %v", tool.Name(), cs.Service.Name, v)
			}
		}()
		outs, err = analyzeCaseCtx(actx, tool, cs, &attemptRNG, e.valid[c])
		return outs, 0, err
	}

	// classify maps an attempt error onto a FailureKind, converting
	// deadline expiry into a deterministic timeout record.
	classify := func(outs []SinkOutcome, kind FailureKind, err error) ([]SinkOutcome, FailureKind, error) {
		if err == nil || kind != 0 {
			return outs, kind, err
		}
		if timeout > 0 && actx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
			return nil, FailTimeout, timeoutError(tool, cs, timeout)
		}
		return nil, FailError, err
	}

	if _, ok := tool.(detectors.ContextAnalyzer); ok || timeout == 0 {
		// Context-aware tools observe the deadline themselves; tools
		// without a deadline cannot outlive one. Either way the call can
		// run inline on this worker — panic isolation is the deferred
		// recover above.
		return classify(call())
	}

	// Plain tool under a deadline: run on a watchdog goroutine we can
	// abandon. The buffered channel lets a late-finishing tool complete
	// and be collected by the GC; a tool that never returns leaks its
	// goroutine — that is the price of deadlines without tool
	// cooperation, and why detectors.ContextAnalyzer exists.
	type attemptResult struct {
		outs []SinkOutcome
		kind FailureKind
		err  error
	}
	ch := make(chan attemptResult, 1)
	go func() {
		o, k, e := call()
		ch <- attemptResult{o, k, e}
	}()
	select {
	case r := <-ch:
		return classify(r.outs, r.kind, r.err)
	case <-actx.Done():
		if ctx.Err() != nil {
			return nil, FailTimeout, abortErr(ctx.Err())
		}
		return nil, FailTimeout, timeoutError(tool, cs, timeout)
	}
}

// timeoutError is the canonical deadline-expiry record: its text depends
// only on configuration, never on how far the tool got.
func timeoutError(tool detectors.Tool, cs workload.Case, timeout time.Duration) error {
	return fmt.Errorf("harness: %s on %s: tool deadline %v exceeded", tool.Name(), cs.Service.Name, timeout)
}

// abortErr wraps a context error as the campaign-level abort error.
func abortErr(err error) error {
	return fmt.Errorf("harness: campaign aborted: %w", err)
}

// backoffFor returns the wait before retry number `attempt` (1-based
// failing attempt): base << (attempt-1), i.e. base, 2*base, 4*base, ...
func backoffFor(base time.Duration, attempt int) time.Duration {
	shift := attempt - 1
	if shift > 16 {
		shift = 16
	}
	return base << shift
}

// sleepCtx blocks for d or until ctx is done. The deadline timer lives
// inside a derived context — the only timing primitive the
// deterministic-package lint permits here. Backoff sleeping exists only
// on the retry path, which fault-free campaigns never take, so campaign
// results stay a pure function of seed and inputs.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	sctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	<-sctx.Done()
	return ctx.Err()
}

// degradedOutcomes synthesizes the count-as-miss outcomes for a failed
// case: every sink unflagged, so vulnerable sinks score as false
// negatives and clean sinks as true negatives, each marked Degraded.
func degradedOutcomes(cs workload.Case) []SinkOutcome {
	out := make([]SinkOutcome, len(cs.Truths))
	for i, tr := range cs.Truths {
		out[i] = SinkOutcome{
			Service:    cs.Service.Name,
			SinkID:     tr.SinkID,
			Kind:       tr.Kind,
			Difficulty: cs.Difficulty,
			Template:   cs.Template,
			Vulnerable: tr.Vulnerable,
			Degraded:   true,
		}
	}
	return out
}
