package harness

import (
	"testing"

	"github.com/dsn2015/vdbench/internal/detectors"
	"github.com/dsn2015/vdbench/internal/metrics"
	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/workload"
)

func testCorpus(t *testing.T, services int, seed uint64) *workload.Corpus {
	t.Helper()
	c, err := workload.Generate(workload.Config{
		Services:         services,
		TargetPrevalence: 0.4,
		Seed:             seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testTools(t *testing.T) []detectors.Tool {
	t.Helper()
	tools, err := detectors.StandardSuite()
	if err != nil {
		t.Fatal(err)
	}
	return tools
}

func runCampaign(t *testing.T, services int) *Campaign {
	t.Helper()
	camp, err := Run(testCorpus(t, services, 1), testTools(t), 42)
	if err != nil {
		t.Fatal(err)
	}
	return camp
}

func TestRunBasicInvariants(t *testing.T) {
	camp := runCampaign(t, 60)
	corpusSinks := camp.Corpus.TotalSinks()
	corpusVuln := camp.Corpus.VulnerableSinks()
	for _, res := range camp.Results {
		if res.Overall.Total() != corpusSinks {
			t.Errorf("%s classified %d sinks, corpus has %d", res.Tool, res.Overall.Total(), corpusSinks)
		}
		if res.Overall.Positives() != corpusVuln {
			t.Errorf("%s sees %d positives, corpus has %d", res.Tool, res.Overall.Positives(), corpusVuln)
		}
		if len(res.Outcomes) != corpusSinks {
			t.Errorf("%s has %d outcomes", res.Tool, len(res.Outcomes))
		}
		// Split matrices must sum to the overall matrix.
		var kindSum, diffSum metrics.Confusion
		for _, m := range res.ByKind {
			kindSum = kindSum.Add(m)
		}
		for _, m := range res.ByDifficulty {
			diffSum = diffSum.Add(m)
		}
		if kindSum != res.Overall || diffSum != res.Overall {
			t.Errorf("%s split matrices do not sum to overall", res.Tool)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	corpus := testCorpus(t, 40, 5)
	c1, err1 := Run(corpus, testTools(t), 7)
	c2, err2 := Run(corpus, testTools(t), 7)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range c1.Results {
		if c1.Results[i].Overall != c2.Results[i].Overall {
			t.Fatalf("campaign nondeterministic for %s", c1.Results[i].Tool)
		}
	}
}

func TestRunSeedAffectsOnlySimulatedTools(t *testing.T) {
	corpus := testCorpus(t, 40, 5)
	c1, _ := Run(corpus, testTools(t), 1)
	c2, _ := Run(corpus, testTools(t), 2)
	for i := range c1.Results {
		same := c1.Results[i].Overall == c2.Results[i].Overall
		if c1.Results[i].Class == detectors.ClassSimulated {
			if same {
				t.Errorf("simulated tool %s ignored the seed", c1.Results[i].Tool)
			}
		} else if !same {
			t.Errorf("deterministic tool %s changed with the seed", c1.Results[i].Tool)
		}
	}
}

func TestCampaignShape(t *testing.T) {
	// The paper's qualitative expectation: pentesting precise but
	// incomplete, static analysis the reverse.
	camp := runCampaign(t, 150)
	prec := metrics.MustByID(metrics.IDPrecision)
	rec := metrics.MustByID(metrics.IDRecall)

	pt, ok := camp.ResultFor("pt-deep")
	if !ok {
		t.Fatal("pt-deep missing")
	}
	ptPrec, err := pt.MetricValue(prec)
	if err != nil {
		t.Fatal(err)
	}
	ptRec, err := pt.MetricValue(rec)
	if err != nil {
		t.Fatal(err)
	}
	if ptPrec < 0.95 {
		t.Errorf("pt-deep precision = %g, expected >= 0.95 (differential confirmation)", ptPrec)
	}
	if ptRec > 0.95 {
		t.Errorf("pt-deep recall = %g, expected misses from silent sinks", ptRec)
	}

	agg, ok := camp.ResultFor("ts-aggressive")
	if !ok {
		t.Fatal("ts-aggressive missing")
	}
	aggRec, err := agg.MetricValue(rec)
	if err != nil {
		t.Fatal(err)
	}
	aggPrec, err := agg.MetricValue(prec)
	if err != nil {
		t.Fatal(err)
	}
	if aggRec < 0.95 {
		t.Errorf("ts-aggressive recall = %g, expected ~1", aggRec)
	}
	if aggPrec >= ptPrec {
		t.Errorf("ts-aggressive precision %g should be below pt-deep %g", aggPrec, ptPrec)
	}
}

func TestRunValidation(t *testing.T) {
	corpus := testCorpus(t, 10, 1)
	tools := testTools(t)
	if _, err := Run(nil, tools, 1); err == nil {
		t.Error("nil corpus accepted")
	}
	if _, err := Run(&workload.Corpus{}, tools, 1); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := Run(corpus, nil, 1); err == nil {
		t.Error("no tools accepted")
	}
	if _, err := Run(corpus, []detectors.Tool{nil}, 1); err == nil {
		t.Error("nil tool accepted")
	}
	dup := []detectors.Tool{detectors.NewSignatureSAST("x"), detectors.NewSignatureSAST("x")}
	if _, err := Run(corpus, dup, 1); err == nil {
		t.Error("duplicate tool names accepted")
	}
}

func TestResultForAndToolNames(t *testing.T) {
	camp := runCampaign(t, 20)
	names := camp.ToolNames()
	if len(names) != 9 {
		t.Fatalf("names = %v", names)
	}
	if _, ok := camp.ResultFor("no-such-tool"); ok {
		t.Fatal("bogus tool resolved")
	}
	r, ok := camp.ResultFor(names[0])
	if !ok || r.Tool != names[0] {
		t.Fatal("ResultFor failed")
	}
}

func TestMetricScoresOrientation(t *testing.T) {
	camp := runCampaign(t, 60)
	fpr := metrics.MustByID(metrics.IDFPR)
	rec := metrics.MustByID(metrics.IDRecall)
	fprScores, err := camp.MetricScores(fpr, 1)
	if err != nil {
		t.Fatal(err)
	}
	recScores, err := camp.MetricScores(rec, 0)
	if err != nil {
		t.Fatal(err)
	}
	// FPR goodness is negated: all scores must be <= 0.
	for i, s := range fprScores {
		if s > 0 {
			t.Errorf("FPR goodness for %s = %g > 0", camp.Results[i].Tool, s)
		}
	}
	for i, s := range recScores {
		if s < 0 || s > 1 {
			t.Errorf("recall goodness for %s = %g out of [0,1]", camp.Results[i].Tool, s)
		}
	}
}

func TestSinkOutcomeConfusion(t *testing.T) {
	cases := []struct {
		o    SinkOutcome
		want metrics.Confusion
	}{
		{SinkOutcome{Vulnerable: true, Flagged: true}, metrics.Confusion{TP: 1}},
		{SinkOutcome{Vulnerable: true}, metrics.Confusion{FN: 1}},
		{SinkOutcome{Flagged: true}, metrics.Confusion{FP: 1}},
		{SinkOutcome{}, metrics.Confusion{TN: 1}},
	}
	for _, c := range cases {
		if got := c.o.Confusion(); got != c.want {
			t.Errorf("Confusion(%+v) = %+v", c.o, got)
		}
	}
}

func TestConfusionDelta(t *testing.T) {
	camp := runCampaign(t, 60)
	a, _ := camp.ResultFor("ts-aggressive")
	b, _ := camp.ResultFor("pt-deep")
	rec := metrics.MustByID(metrics.IDRecall)
	idx := make([]int, len(a.Outcomes))
	for i := range idx {
		idx[i] = i
	}
	delta, err := ConfusionDelta(a, b, rec, idx)
	if err != nil {
		t.Fatal(err)
	}
	// Full-index delta must equal the difference of the overall values.
	va, _ := a.MetricValue(rec)
	vb, _ := b.MetricValue(rec)
	if diff := delta - (va - vb); diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("delta = %g, want %g", delta, va-vb)
	}
	if _, err := ConfusionDelta(a, b, rec, []int{-1}); err == nil {
		t.Fatal("bad index accepted")
	}
}

func TestConfusionDeltaWithBootstrap(t *testing.T) {
	camp := runCampaign(t, 80)
	a, _ := camp.ResultFor("ts-aggressive")
	b, _ := camp.ResultFor("grep-sast")
	rec := metrics.MustByID(metrics.IDRecall)
	frac, err := stats.SignStability(stats.NewRNG(3), len(a.Outcomes), 200, func(idx []int) float64 {
		d, err := ConfusionDelta(a, b, rec, idx)
		if err != nil {
			return 0
		}
		return d
	})
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.5 || frac > 1 {
		t.Fatalf("sign stability = %g out of range", frac)
	}
}

func TestScoredInstances(t *testing.T) {
	camp := runCampaign(t, 40)
	res, _ := camp.ResultFor("ts-precise")
	xs := res.ScoredInstances()
	if len(xs) != len(res.Outcomes) {
		t.Fatal("length mismatch")
	}
	auc, err := metrics.AUC(xs)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.5 {
		t.Fatalf("ts-precise AUC = %g, should beat chance", auc)
	}
}
