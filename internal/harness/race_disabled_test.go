//go:build !race

package harness

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
