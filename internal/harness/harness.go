// Package harness runs benchmark campaigns: it executes every tool over
// every case of a workload corpus, scores the reports against ground
// truth at sink granularity, and aggregates confusion matrices overall,
// per vulnerability class and per difficulty bucket.
package harness

import (
	"context"
	"errors"
	"fmt"

	"github.com/dsn2015/vdbench/internal/detectors"
	"github.com/dsn2015/vdbench/internal/metrics"
	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/workload"
)

// SinkOutcome is the scored result of one tool on one sink: the unit the
// bootstrap analyses resample.
type SinkOutcome struct {
	Service    string
	SinkID     int
	Kind       svclang.SinkKind
	Difficulty workload.Difficulty
	// Template names the workload pattern the sink came from.
	Template string
	// Vulnerable is the ground-truth label.
	Vulnerable bool
	// Flagged is true when the tool reported this sink.
	Flagged bool
	// Confidence is the report confidence (zero when not flagged).
	Confidence float64
	// Degraded is true for outcomes synthesized by the count-as-miss
	// policy when the tool failed on the case: the sink was never
	// actually analysed. Synthesized outcomes are always unflagged.
	Degraded bool
}

// Confusion classifies the outcome into its confusion-matrix cell.
func (o SinkOutcome) Confusion() metrics.Confusion {
	switch {
	case o.Vulnerable && o.Flagged:
		return metrics.Confusion{TP: 1}
	case o.Vulnerable:
		return metrics.Confusion{FN: 1}
	case o.Flagged:
		return metrics.Confusion{FP: 1}
	default:
		return metrics.Confusion{TN: 1}
	}
}

// ToolResult aggregates one tool's campaign outcome.
type ToolResult struct {
	// Tool is the tool's display name; Class its technology family.
	Tool  string
	Class detectors.Class
	// Overall is the pooled (micro) confusion matrix over all sinks.
	Overall metrics.Confusion
	// ByKind, ByDifficulty and ByTemplate split the matrix by
	// vulnerability class, case difficulty and workload pattern.
	ByKind       map[svclang.SinkKind]metrics.Confusion
	ByDifficulty map[workload.Difficulty]metrics.Confusion
	ByTemplate   map[string]metrics.Confusion
	// Outcomes lists the per-sink outcomes in corpus order. Under
	// DegradedSkip the sinks of failed cases are absent; under
	// DegradedCountMiss they appear unflagged with Degraded set.
	Outcomes []SinkOutcome
	// Exec is the execution ledger: how many attempts the tool's cases
	// took and which cases failed how. A fault-free campaign has
	// Succeeded == Cases == Attempts and no faults.
	Exec ExecLedger
}

// MetricValue computes a metric on the overall matrix.
func (r *ToolResult) MetricValue(m metrics.Metric) (float64, error) {
	return m.Value(r.Overall)
}

// Campaign is the result of running a tool suite over a corpus.
type Campaign struct {
	// Corpus is the workload the campaign ran on.
	Corpus *workload.Corpus
	// Results holds one entry per tool, in the order supplied.
	Results []ToolResult
}

// Run executes the campaign serially. The seed drives the simulated
// tools; real tools are deterministic. Each (tool, case) pair receives an
// independent deterministic RNG stream, so adding or removing tools does
// not perturb the others' draws. Run is RunParallel with one worker; see
// parallel.go for the execution pipeline.
func Run(corpus *workload.Corpus, tools []detectors.Tool, seed uint64) (*Campaign, error) {
	return RunParallel(corpus, tools, seed, 1)
}

// validate checks the campaign inputs shared by Run and RunParallel.
func validate(corpus *workload.Corpus, tools []detectors.Tool) error {
	if corpus == nil || len(corpus.Cases) == 0 {
		return errors.New("harness: empty corpus")
	}
	if len(tools) == 0 {
		return errors.New("harness: no tools")
	}
	names := make(map[string]bool, len(tools))
	for _, tool := range tools {
		if tool == nil {
			return errors.New("harness: nil tool")
		}
		if names[tool.Name()] {
			return fmt.Errorf("harness: duplicate tool name %q", tool.Name())
		}
		names[tool.Name()] = true
	}
	return nil
}

// validSinkSets precomputes, per case, the set of sink IDs a tool may
// legitimately report. The sets depend only on the corpus, so they are
// built once and shared across every tool (and every worker: read-only
// after construction).
func validSinkSets(corpus *workload.Corpus) []map[int]bool {
	sets := make([]map[int]bool, len(corpus.Cases))
	for i, cs := range corpus.Cases {
		m := make(map[int]bool, len(cs.Truths))
		for _, tr := range cs.Truths {
			m[tr.SinkID] = true
		}
		sets[i] = m
	}
	return sets
}

// analyzeCase runs one tool over one case and scores the reports into
// per-sink outcomes in truth order. It touches no shared mutable state, so
// distinct (tool, case) pairs can be analysed concurrently as long as each
// gets its own RNG.
func analyzeCase(tool detectors.Tool, cs workload.Case, rng *stats.RNG, valid map[int]bool) ([]SinkOutcome, error) {
	return analyzeCaseCtx(context.Background(), tool, cs, rng, valid)
}

// analyzeCaseCtx is analyzeCase with cancellation: tools implementing
// detectors.ContextAnalyzer receive ctx (the execution engine passes the
// per-attempt deadline context); plain tools are invoked as before.
func analyzeCaseCtx(ctx context.Context, tool detectors.Tool, cs workload.Case, rng *stats.RNG, valid map[int]bool) ([]SinkOutcome, error) {
	var reports []detectors.Report
	var err error
	if ca, ok := tool.(detectors.ContextAnalyzer); ok {
		reports, err = ca.AnalyzeContext(ctx, cs, rng)
	} else {
		reports, err = tool.Analyze(cs, rng)
	}
	if err != nil {
		return nil, fmt.Errorf("harness: %s on %s: %w", tool.Name(), cs.Service.Name, err)
	}
	flagged := make(map[int]float64, len(reports))
	for _, r := range reports {
		if r.Service != cs.Service.Name {
			return nil, fmt.Errorf("harness: %s reported foreign service %q while analysing %q", tool.Name(), r.Service, cs.Service.Name)
		}
		if !valid[r.SinkID] {
			return nil, fmt.Errorf("harness: %s reported unknown sink %d in %s", tool.Name(), r.SinkID, cs.Service.Name)
		}
		if prev, dup := flagged[r.SinkID]; !dup || r.Confidence > prev {
			flagged[r.SinkID] = r.Confidence
		}
	}
	out := make([]SinkOutcome, len(cs.Truths))
	for i, tr := range cs.Truths {
		conf, isFlagged := flagged[tr.SinkID]
		out[i] = SinkOutcome{
			Service:    cs.Service.Name,
			SinkID:     tr.SinkID,
			Kind:       tr.Kind,
			Difficulty: cs.Difficulty,
			Template:   cs.Template,
			Vulnerable: tr.Vulnerable,
			Flagged:    isFlagged,
			Confidence: conf,
		}
	}
	return out, nil
}

// mergeCampaign folds per-(tool, case) execution records back into a
// Campaign in corpus order. Because aggregation happens tool-by-tool,
// case-by-case in the same order the serial loop used, the result is
// identical to serial execution regardless of the order the records were
// produced in — or, for distributed campaigns, of which worker process
// produced them. Failed cells are scored per the degraded policy:
// skipped (absent from the matrices) or counted as misses via
// synthesized unflagged outcomes; either way the ledger records them.
func mergeCampaign(corpus *workload.Corpus, tools []detectors.Tool, execs [][]CellResult, policy DegradedPolicy) *Campaign {
	camp := &Campaign{Corpus: corpus}
	total := corpus.TotalSinks()
	for toolIdx, tool := range tools {
		res := ToolResult{
			Tool:         tool.Name(),
			Class:        tool.Class(),
			ByKind:       map[svclang.SinkKind]metrics.Confusion{},
			ByDifficulty: map[workload.Difficulty]metrics.Confusion{},
			ByTemplate:   map[string]metrics.Confusion{},
			Outcomes:     make([]SinkOutcome, 0, total),
		}
		for caseIdx := range corpus.Cases {
			ce := execs[toolIdx][caseIdx]
			res.Exec.Cases++
			res.Exec.Attempts += ce.Attempts
			res.Exec.Retries += ce.Retries
			outcomes := ce.Outcomes
			if ce.Fault != nil {
				res.Exec.Failed++
				res.Exec.FailedCases = append(res.Exec.FailedCases, caseIdx)
				res.Exec.Faults = append(res.Exec.Faults, *ce.Fault)
				switch ce.Fault.Kind {
				case FailPanic:
					res.Exec.RecoveredPanics++
				case FailTimeout:
					res.Exec.Timeouts++
				default:
					res.Exec.Errors++
				}
				if policy != DegradedCountMiss {
					continue
				}
				outcomes = degradedOutcomes(corpus.Cases[caseIdx])
			} else {
				res.Exec.Succeeded++
			}
			for _, outcome := range outcomes {
				cell := outcome.Confusion()
				res.Overall = res.Overall.Add(cell)
				res.ByKind[outcome.Kind] = res.ByKind[outcome.Kind].Add(cell)
				res.ByDifficulty[outcome.Difficulty] = res.ByDifficulty[outcome.Difficulty].Add(cell)
				res.ByTemplate[outcome.Template] = res.ByTemplate[outcome.Template].Add(cell)
				res.Outcomes = append(res.Outcomes, outcome)
			}
		}
		camp.Results = append(camp.Results, res)
	}
	return camp
}

// ResultFor returns the result for a tool by name.
func (c *Campaign) ResultFor(tool string) (*ToolResult, bool) {
	for i := range c.Results {
		if c.Results[i].Tool == tool {
			return &c.Results[i], true
		}
	}
	return nil, false
}

// ToolNames lists the tools in campaign order.
func (c *Campaign) ToolNames() []string {
	out := make([]string, len(c.Results))
	for i, r := range c.Results {
		out[i] = r.Tool
	}
	return out
}

// MetricScores computes the goodness-oriented score of every tool under
// one metric (lower-is-better metrics are negated so that higher is always
// better). Tools on which the metric is undefined receive the fallback.
func (c *Campaign) MetricScores(m metrics.Metric, fallback float64) ([]float64, error) {
	out := make([]float64, len(c.Results))
	for i := range c.Results {
		v, err := m.ValueOr(c.Results[i].Overall, fallback)
		if err != nil {
			return nil, fmt.Errorf("harness: %s on %s: %w", m.ID, c.Results[i].Tool, err)
		}
		out[i] = m.Goodness(v)
	}
	return out, nil
}

// ConfusionDelta computes, for two tools and a metric, the metric delta
// (goodness-oriented, tool a minus tool b) over a resampled subset of sink
// outcomes identified by indices into the outcome slices. Both tools must
// come from the same campaign so their outcome slices align sink-for-sink.
func ConfusionDelta(a, b *ToolResult, m metrics.Metric, idx []int) (float64, error) {
	if len(a.Outcomes) != len(b.Outcomes) {
		return 0, errors.New("harness: tools come from different campaigns")
	}
	var ca, cb metrics.Confusion
	for _, i := range idx {
		if i < 0 || i >= len(a.Outcomes) {
			return 0, fmt.Errorf("harness: outcome index %d out of range", i)
		}
		ca = ca.Add(a.Outcomes[i].Confusion())
		cb = cb.Add(b.Outcomes[i].Confusion())
	}
	va, err := m.ValueOr(ca, worstValue(m))
	if err != nil {
		return 0, err
	}
	vb, err := m.ValueOr(cb, worstValue(m))
	if err != nil {
		return 0, err
	}
	return m.Goodness(va) - m.Goodness(vb), nil
}

// worstValue returns a pessimistic fallback for undefined metric values in
// resamples: the worst end of the metric's range (or 0 for unbounded).
func worstValue(m metrics.Metric) float64 {
	if !m.Bounded() {
		return 0
	}
	if m.Orientation == metrics.LowerIsBetter {
		return m.Hi
	}
	return m.Lo
}

// ScoredInstances converts a tool's outcomes into scored instances for
// threshold-free analysis (ROC / average precision). Unflagged sinks get
// score zero.
func (r *ToolResult) ScoredInstances() []metrics.ScoredInstance {
	out := make([]metrics.ScoredInstance, len(r.Outcomes))
	for i, o := range r.Outcomes {
		out[i] = metrics.ScoredInstance{Score: o.Confidence, Positive: o.Vulnerable}
	}
	return out
}
