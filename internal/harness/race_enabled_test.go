//go:build race

package harness

// raceEnabled reports whether the race detector is compiled in; the
// allocation-budget tests skip under it because instrumentation
// allocates.
const raceEnabled = true
