package harness

// Progress reporting is a context-carried seam, not an Options field:
// Options must stay comparable and JSON-round-trippable (the distributed
// shard protocol marshals it, and the experiments layer compares configs
// for cache identity), and a func field would break both. A callback
// installed with WithProgress rides the campaign context down through
// experiments.Runner into runCells, which invokes it once per finished
// (tool, case) cell. Reporting is observation only — it never influences
// execution, so campaigns stay byte-identical with or without a listener.

import (
	"context"

	"github.com/dsn2015/vdbench/internal/metrics"
)

// ProgressEvent describes one finished (tool, case) cell of a running
// campaign. Done counts finished cells across the whole run (monotone,
// each event carries a unique value); Total is the number of cells the
// run will execute, so Done == Total on the final event.
type ProgressEvent struct {
	// Done is the number of cells finished so far, this one included;
	// Total is the cell count of the run (tools × cases in range).
	Done  int `json:"done"`
	Total int `json:"total"`
	// Tool and Case name the finished cell.
	Tool string `json:"tool"`
	Case int    `json:"case"`
	// Confusion is this cell's confusion-matrix delta (zero for a failed
	// cell); accumulating deltas per tool yields incremental metric
	// estimates while the campaign runs.
	Confusion metrics.Confusion `json:"confusion"`
	// Failed marks a cell that exhausted every attempt; under non-abort
	// degraded policies the campaign continues past it.
	Failed bool `json:"failed,omitempty"`
}

// ProgressFunc receives per-cell progress events. It is called from
// campaign worker goroutines — implementations must be safe for
// concurrent use and must return quickly; a slow listener stalls the
// worker that called it (buffer and shed in the listener, not here).
type ProgressFunc func(ProgressEvent)

type progressCtxKey struct{}

// WithProgress returns a context that carries fn as the campaign
// progress listener. Any campaign executed under the returned context
// (directly via RunCtx or through the experiments layer) reports each
// finished cell to fn.
func WithProgress(ctx context.Context, fn ProgressFunc) context.Context {
	if fn == nil {
		return ctx
	}
	return context.WithValue(ctx, progressCtxKey{}, fn)
}

// ProgressFromContext extracts the progress listener installed by
// WithProgress, or nil.
func ProgressFromContext(ctx context.Context) ProgressFunc {
	if ctx == nil {
		return nil
	}
	fn, _ := ctx.Value(progressCtxKey{}).(ProgressFunc)
	return fn
}

// cellConfusion pools a cell's outcome deltas for progress reporting.
func cellConfusion(outs []SinkOutcome) metrics.Confusion {
	var c metrics.Confusion
	for _, o := range outs {
		c = c.Add(o.Confusion())
	}
	return c
}
