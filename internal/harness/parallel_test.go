package harness

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/dsn2015/vdbench/internal/detectors"
	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/workload"
)

// TestRunParallelEquivalence is the admissibility proof for the worker
// pool: for every tested seed and worker count, RunParallel must produce a
// Campaign deep-equal to serial Run — same Outcomes order, same confusion
// matrices, same By* split maps. Any divergence means parallelism changed
// the science, which is never acceptable.
func TestRunParallelEquivalence(t *testing.T) {
	corpus := testCorpus(t, 50, 3)
	tools := testTools(t)
	for _, seed := range []uint64{1, 7, 42} {
		serial, err := Run(corpus, tools, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 13} {
			t.Run(fmt.Sprintf("seed=%d/workers=%d", seed, workers), func(t *testing.T) {
				par, err := RunParallel(corpus, tools, seed, workers)
				if err != nil {
					t.Fatal(err)
				}
				if len(par.Results) != len(serial.Results) {
					t.Fatalf("parallel produced %d results, serial %d", len(par.Results), len(serial.Results))
				}
				for i := range serial.Results {
					s, p := &serial.Results[i], &par.Results[i]
					if !reflect.DeepEqual(s.Outcomes, p.Outcomes) {
						t.Errorf("%s: outcome sequences differ", s.Tool)
					}
					if s.Overall != p.Overall {
						t.Errorf("%s: overall matrix differs: serial %s, parallel %s", s.Tool, s.Overall, p.Overall)
					}
					if !reflect.DeepEqual(s.ByKind, p.ByKind) ||
						!reflect.DeepEqual(s.ByDifficulty, p.ByDifficulty) ||
						!reflect.DeepEqual(s.ByTemplate, p.ByTemplate) {
						t.Errorf("%s: split maps differ", s.Tool)
					}
				}
				if !reflect.DeepEqual(serial, par) {
					t.Error("campaigns not deep-equal")
				}
			})
		}
	}
}

// TestRunParallelDefaultWorkers exercises the workers<=0 =>
// GOMAXPROCS(0) path.
func TestRunParallelDefaultWorkers(t *testing.T) {
	corpus := testCorpus(t, 20, 1)
	tools := testTools(t)
	serial, err := Run(corpus, tools, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, -1} {
		par, err := RunParallel(corpus, tools, 9, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d diverged from serial", workers)
		}
	}
}

// TestRunParallelValidation mirrors the serial input checks on the
// parallel entry point.
func TestRunParallelValidation(t *testing.T) {
	corpus := testCorpus(t, 5, 1)
	tools := testTools(t)
	if _, err := RunParallel(nil, tools, 1, 4); err == nil {
		t.Error("nil corpus accepted")
	}
	if _, err := RunParallel(corpus, nil, 1, 4); err == nil {
		t.Error("no tools accepted")
	}
	dup := []detectors.Tool{detectors.NewSignatureSAST("x"), detectors.NewSignatureSAST("x")}
	if _, err := RunParallel(corpus, dup, 1, 4); err == nil {
		t.Error("duplicate tool names accepted")
	}
}

// failingTool errors on every case, exercising the pool's abort path.
type failingTool struct{ name string }

func (f failingTool) Name() string { return f.name }

func (f failingTool) Class() detectors.Class { return detectors.ClassSAST }

func (f failingTool) Analyze(cs workload.Case, _ *stats.RNG) ([]detectors.Report, error) {
	return nil, fmt.Errorf("%s always fails", f.name)
}

// TestRunParallelPropagatesErrors asserts a failing tool aborts the
// campaign under every worker count.
func TestRunParallelPropagatesErrors(t *testing.T) {
	corpus := testCorpus(t, 10, 1)
	tools := []detectors.Tool{failingTool{name: "broken"}}
	for _, workers := range []int{1, 4} {
		if _, err := RunParallel(corpus, tools, 1, workers); err == nil {
			t.Errorf("workers=%d: failing tool did not abort the campaign", workers)
		}
	}
}
