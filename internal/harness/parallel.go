package harness

import (
	"context"

	"github.com/dsn2015/vdbench/internal/detectors"
	"github.com/dsn2015/vdbench/internal/stats"
	"github.com/dsn2015/vdbench/internal/svclang/cfg"
	"github.com/dsn2015/vdbench/internal/svclang/compile"
	"github.com/dsn2015/vdbench/internal/workload"
)

// RunParallel executes the campaign across a pool of workers and produces
// a Campaign identical, field for field, to serial Run with the same seed.
//
// Determinism rests on two invariants (enforced by the engine in exec.go,
// which all entry points share):
//
//  1. RNG pre-split: the per-(tool, case) RNG streams are derived up front
//     by walking toolRNG.Split() in exactly the order the serial loop
//     would, so every task sees the same generator state it would have
//     seen serially, no matter which worker runs it or when.
//  2. Ordered merge: workers write each task's outcome slice into a
//     dedicated (tool, case) slot, and the final aggregation folds the
//     slots in corpus order — the same accumulation sequence as the
//     serial loop.
//
// workers <= 0 selects runtime.GOMAXPROCS(0); workers == 1 runs inline
// without spawning goroutines. Tool implementations must be safe for
// concurrent Analyze calls on distinct cases (the standard suite is: all
// per-request state lives in the call frame).
//
// On failure the campaign is aborted and one of the task errors is
// returned; with workers == 1 it is exactly the error serial execution
// would have hit first. For partial-result semantics, deadlines, retries
// and cancellation, call RunCtx with explicit Options.
func RunParallel(corpus *workload.Corpus, tools []detectors.Tool, seed uint64, workers int) (*Campaign, error) {
	return RunCtx(context.Background(), corpus, tools, Options{Seed: seed, Workers: workers})
}

// bindCompileCache rebinds every cache-aware tool to one shared compile
// cache scoped to this campaign, so a case's CFG is lowered once per
// distinct option set instead of once per tool per pass. The rebinding is
// a copy (callers' tools are untouched) and reports are identical with or
// without the cache. Tools that do not implement detectors.CompileCacheable
// pass through unchanged.
func bindCompileCache(tools []detectors.Tool) []detectors.Tool {
	anyCacheable := false
	for _, t := range tools {
		if _, ok := t.(detectors.CompileCacheable); ok {
			anyCacheable = true
			break
		}
	}
	if !anyCacheable {
		return tools
	}
	cc := cfg.NewCache()
	bound := make([]detectors.Tool, len(tools))
	for i, t := range tools {
		if cct, ok := t.(detectors.CompileCacheable); ok {
			bound[i] = cct.WithCompileCache(cc)
		} else {
			bound[i] = t
		}
	}
	return bound
}

// bindExecEngine rebinds every service-executing tool to one shared
// execution engine scoped to this campaign — the bytecode VM by default,
// the reference interpreter when interpret is set — so each service
// compiles once no matter how many tools and workers probe it. Mirrors
// bindCompileCache: rebinding is a copy, results are engine-independent
// (pinned by the differential suite), and tools that do not implement
// detectors.ExecEngineBindable pass through unchanged.
func bindExecEngine(tools []detectors.Tool, interpret bool) []detectors.Tool {
	anyExec := false
	for _, t := range tools {
		if _, ok := t.(detectors.ExecEngineBindable); ok {
			anyExec = true
			break
		}
	}
	if !anyExec {
		return tools
	}
	eng := compile.NewEngine(interpret)
	bound := make([]detectors.Tool, len(tools))
	for i, t := range tools {
		if et, ok := t.(detectors.ExecEngineBindable); ok {
			bound[i] = et.WithExecEngine(eng)
		} else {
			bound[i] = t
		}
	}
	return bound
}

// preSplitRNGs derives the per-(tool, case) RNG streams by replaying the
// serial harness's split sequence: an independent root stream per tool,
// split once per case in corpus order. The derived generators are
// independent, so handing them to concurrent workers cannot perturb any
// draw.
func preSplitRNGs(nTools, nCases int, seed uint64) [][]*stats.RNG {
	rngs := make([][]*stats.RNG, nTools)
	for t := range rngs {
		toolRNG := stats.NewRNG(seed ^ (uint64(t)+1)*0x9e3779b97f4a7c15)
		rngs[t] = make([]*stats.RNG, nCases)
		for c := range rngs[t] {
			rngs[t][c] = toolRNG.Split()
		}
	}
	return rngs
}
