// Package dist shards benchmark campaigns across worker processes while
// preserving the repo's byte-identity guarantee: a campaign distributed
// over any number of workers produces exactly the Campaign a local run
// would, execution ledgers included.
//
// The design leans on three existing invariants rather than inventing
// new machinery:
//
//   - Corpora are pure functions of workload.Config, so the coordinator
//     never ships cases over the wire — a shard is just a case range
//     [lo, hi) plus the config, and every party regenerates the corpus
//     locally (through a small content-addressed cache).
//   - The harness pre-splits per-(tool, case) RNG streams over the FULL
//     corpus in serial order (harness.RunShardCtx), so a shard executed
//     on a remote worker draws exactly what a local run would.
//   - The merge folds cells in (tool, case) order (harness.MergeShards),
//     so which process produced a cell is invisible in the output, and
//     the degraded policy — including abort, with its error text — is
//     applied over the assembled grid exactly as serial execution would.
//
// The protocol is stdlib HTTP+JSON: workers register with the
// coordinator, heartbeat, pull content-addressed shards, execute them
// under the fault-tolerant engine and report the raw CellResult records
// back. A worker that stops heartbeating has its shards deterministically
// reassigned (bounded by MaxReassign); a shard reported under a stale
// lease is politely discarded — by determinism the surviving execution
// is byte-identical anyway.
//
// This package is part of the deterministic set checked by
// internal/vdlint: non-test code never reads the wall clock directly
// (latency observation goes through an injected now function, waits and
// heartbeat expiry through context deadlines) and never iterates maps
// into ordered output.
package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"

	"github.com/dsn2015/vdbench/internal/harness"
	"github.com/dsn2015/vdbench/internal/svclang"
	"github.com/dsn2015/vdbench/internal/svclang/compile"
	"github.com/dsn2015/vdbench/internal/telemetry"
	"github.com/dsn2015/vdbench/internal/workload"
)

// DefaultShardCases is the shard granularity used when a spec leaves
// ShardCases zero: small enough to spread a quick campaign over a few
// workers, large enough to amortise per-shard corpus regeneration.
const DefaultShardCases = 32

// Sentinel errors of the distributed layer.
var (
	// ErrClosed is returned for operations on a closed coordinator.
	ErrClosed = errors.New("dist: coordinator closed")
	// ErrUnknownWorker is returned for pulls and heartbeats from a worker
	// the coordinator does not know (never registered, or expired). The
	// worker's recovery is to register again.
	ErrUnknownWorker = errors.New("dist: unknown worker")
	// ErrUnknownCampaign is returned for lookups of campaign IDs the
	// coordinator does not track.
	ErrUnknownCampaign = errors.New("dist: unknown campaign")
	// ErrStaleLease is returned for a shard report whose (worker, lease)
	// pair lost the assignment — the worker expired and the shard moved
	// on. The result is discarded; by determinism the re-execution
	// produces byte-identical cells.
	ErrStaleLease = errors.New("dist: stale shard lease")
	// ErrNotDone is returned when a campaign's cells are requested before
	// every shard has reported.
	ErrNotDone = errors.New("dist: campaign not done")
)

// CampaignSpec is the wire description of one distributed campaign. The
// corpus itself never crosses the wire: Workload is the generation
// config, and every party (workers for execution, coordinator and client
// for the merge) regenerates the corpus deterministically from it.
type CampaignSpec struct {
	// Workload is the corpus generation config.
	Workload workload.Config `json:"workload"`
	// Suite names the tool suite, resolved through the process-local
	// registry (RegisterSuite). "standard" is always available.
	Suite string `json:"suite"`
	// Options is the harness execution policy. Seed, Retry.MaxRetries
	// and Degraded are output-affecting (the latter two only under
	// injected faults) and enter shard keys; Workers, PerToolTimeout,
	// Retry.Backoff and Interpreter are operational knobs the byte-
	// identity guarantee makes output-invariant, so they do not.
	Options harness.Options `json:"options"`
	// ShardCases is the number of corpus cases per shard; zero selects
	// DefaultShardCases.
	ShardCases int `json:"shard_cases"`
}

// Validate reports whether the spec is usable: a generatable workload, a
// registered suite, valid execution options and a sane shard size.
func (s CampaignSpec) Validate() error {
	if err := s.Workload.Validate(); err != nil {
		return fmt.Errorf("dist: %w", err)
	}
	if _, err := BuildSuite(s.Suite); err != nil {
		return err
	}
	if err := s.Options.Validate(); err != nil {
		return fmt.Errorf("dist: %w", err)
	}
	if s.ShardCases < 0 {
		return fmt.Errorf("dist: negative shard size %d", s.ShardCases)
	}
	return nil
}

// shardCases resolves the shard granularity.
func (s CampaignSpec) shardCases() int {
	if s.ShardCases <= 0 {
		return DefaultShardCases
	}
	return s.ShardCases
}

// ShardKey is the content address of one shard: a SHA-256 over the
// spec's output-affecting fields and the case range, in the canonical
// encoding style of experiments.CacheKey (%.17g floats, fixed field
// order). Operational knobs (Workers, PerToolTimeout, Retry.Backoff,
// Interpreter, Workload.OracleExhaustive) are excluded for the same
// reason they are excluded from experiment cache keys: the
// byte-identity guarantee makes them output-invariant. Retry.MaxRetries and Degraded stay in — under
// injected faults a retry budget decides whether a cell succeeds, and
// the policy decides what the merge does with it.
func (s CampaignSpec) ShardKey(lo, hi int) string {
	h := sha256.New()
	fmt.Fprintf(h, "vdbench-dist-shard-v1\n")
	fmt.Fprintf(h, "workload.services=%d\nworkload.prevalence=%.17g\nworkload.seed=%d\n",
		s.Workload.Services, s.Workload.TargetPrevalence, s.Workload.Seed)
	fmt.Fprintf(h, "workload.kinds=%v\nworkload.mix=%v\n", s.Workload.Kinds, s.Workload.Mix)
	fmt.Fprintf(h, "suite=%s\n", s.Suite)
	fmt.Fprintf(h, "exec.seed=%d\nexec.retries=%d\nexec.degraded=%s\n",
		s.Options.Seed, s.Options.Retry.MaxRetries, s.Options.Degraded)
	fmt.Fprintf(h, "range=[%d,%d)\n", lo, hi)
	return hex.EncodeToString(h.Sum(nil))
}

// shardRange is one shard's half-open case range.
type shardRange struct{ lo, hi int }

// shardRanges splits n cases into consecutive ranges of the spec's shard
// size. The split depends only on (n, shardCases), so every party
// derives identical shard sets.
func (s CampaignSpec) shardRanges(n int) []shardRange {
	size := s.shardCases()
	var out []shardRange
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, shardRange{lo: lo, hi: hi})
	}
	return out
}

// corpusCacheSize bounds the process-local corpus cache. Coordinators,
// in-process workers and merging clients share it, so one campaign's
// corpus is generated once per process no matter how many shards touch
// it.
const corpusCacheSize = 4

var (
	corpusCacheMu sync.Mutex
	corpusCache   []corpusCacheEntry // most recently used last
)

type corpusCacheEntry struct {
	key    string
	corpus *workload.Corpus
}

// corpusKey is the content address of a generation config. Unlike shard
// keys it includes every field — the cached value is the corpus itself,
// and Corpus.Config must echo the requested config exactly for merged
// campaigns to compare deep-equal with local runs.
func corpusKey(cfg workload.Config) string {
	return fmt.Sprintf("services=%d prevalence=%.17g seed=%d kinds=%v mix=%v interpreter=%t oracleexhaustive=%t",
		cfg.Services, cfg.TargetPrevalence, cfg.Seed, cfg.Kinds, cfg.Mix, cfg.Interpreter, cfg.OracleExhaustive)
}

// corpusFor returns the corpus for cfg, generating it on first use and
// serving repeats from the bounded cache. Corpora are immutable after
// generation (the harness only reads them), so sharing one instance
// across goroutines is safe.
func corpusFor(cfg workload.Config) (*workload.Corpus, error) {
	key := corpusKey(cfg)
	corpusCacheMu.Lock()
	for i, e := range corpusCache {
		if e.key == key {
			// Move to the back: most recently used.
			corpusCache = append(append(corpusCache[:i:i], corpusCache[i+1:]...), e)
			corpusCacheMu.Unlock()
			return e.corpus, nil
		}
	}
	corpusCacheMu.Unlock()

	corpus, err := workload.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("dist: corpus: %w", err)
	}

	corpusCacheMu.Lock()
	defer corpusCacheMu.Unlock()
	for _, e := range corpusCache {
		if e.key == key {
			// A concurrent generation won; identical by determinism.
			return e.corpus, nil
		}
	}
	corpusCache = append(corpusCache, corpusCacheEntry{key: key, corpus: corpus})
	if len(corpusCache) > corpusCacheSize {
		corpusCache = corpusCache[1:]
	}
	return corpus, nil
}

// oracleObserver folds the process-wide ground-truth oracle counters —
// the probe search totals and the content-addressed oracle cache — onto
// one registry as vd_oracle_* counters, using the same monotone-delta
// scheme internal/service applies to the engine counters: the baseline
// is taken at construction, so only growth that happens while this
// observer's owner is running is attributed to it.
type oracleObserver struct {
	mu                   sync.Mutex
	last                 svclang.OracleTotals
	lastHits, lastMisses uint64

	probes, pruned, earlyExits *telemetry.Counter
	cacheHits, cacheMisses     *telemetry.Counter
}

func newOracleObserver(reg *telemetry.Registry) *oracleObserver {
	o := &oracleObserver{
		probes:      reg.Counter("vd_oracle_probes_total", "ground-truth oracle probes executed"),
		pruned:      reg.Counter("vd_oracle_pruned_total", "ground-truth oracle probes pruned by the influence analysis"),
		earlyExits:  reg.Counter("vd_oracle_early_exits_total", "oracle sweeps stopped early with every sink proven vulnerable"),
		cacheHits:   reg.Counter("vd_oracle_cache_hits_total", "ground-truth derivations served from the content-addressed oracle cache"),
		cacheMisses: reg.Counter("vd_oracle_cache_misses_total", "ground-truth derivations the oracle cache had to compute"),
	}
	o.last = svclang.OracleTotalsSnapshot()
	o.lastHits, o.lastMisses = compile.OracleCacheTotals()
	return o
}

// observe folds counter growth since the previous observation into the
// registry. Call it after any operation that may regenerate a corpus.
func (o *oracleObserver) observe() {
	tot := svclang.OracleTotalsSnapshot()
	hits, misses := compile.OracleCacheTotals()
	o.mu.Lock()
	dp := tot.Probes - o.last.Probes
	dq := tot.Pruned - o.last.Pruned
	de := tot.EarlyExits - o.last.EarlyExits
	dh, dm := hits-o.lastHits, misses-o.lastMisses
	o.last = tot
	o.lastHits, o.lastMisses = hits, misses
	o.mu.Unlock()
	o.probes.Add(dp)
	o.pruned.Add(dq)
	o.earlyExits.Add(de)
	o.cacheHits.Add(dh)
	o.cacheMisses.Add(dm)
}
